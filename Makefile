GO ?= go

.PHONY: check build vet test race bench

# check is the tier-1 gate: build, vet, the full test suite, and the test
# suite again under the race detector (the supervisor's parallel validation
# runs cloned machines on separate goroutines, so every PR must stay
# race-clean).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
