GO ?= go

.PHONY: check build vet test race bench bench-smoke bench-json cover \
	fuzz-smoke accuracy accuracy-sync accuracy-parallel accuracy-stream

# check is the tier-1 gate: build, vet, the full test suite, and the test
# suite again under the race detector (the supervisor's parallel validation
# runs cloned machines on separate goroutines, so every PR must stay
# race-clean).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke is the CI step: every benchmark (including the telemetry and
# trace overhead guards) runs once, repo-wide, so a perf regression or a
# bit-rotted benchmark fails the build without paying for full -benchtime.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# bench-json records the perf trajectory across PRs: the MMU/allocator
# benchmarks and the standby-clone warm cost (with allocation stats) plus
# every perf guard run once, and the combined output is distilled into
# BENCH_7.json (name → ns/op, B/op, allocs/op, guard metrics — including
# the speculative-vs-serial recovery speedup from
# BenchmarkSpeculativeRecoveryGuard), which CI uploads as an artifact next
# to the committed earlier floors (BENCH_5.json, BENCH_6.json). Guards run
# at -benchtime 1x because they do their own fixed-size interleaved
# timing; the plain benchmarks get a real sampling budget. BENCH_8.json
# records the batched serving path separately: the fleet-ingest throughput
# guard (ev/s, allocs/ev), so the 1M events/s floor's trajectory is
# trackable across PRs without re-running the whole suite.
bench-json:
	{ $(GO) test -bench '^(BenchmarkSnapshot|BenchmarkRestore|BenchmarkClone|BenchmarkCloneCOW|BenchmarkWrite64|BenchmarkSnapshotRestore|BenchmarkMallocFreeThroughProc)$$' \
		-benchmem -benchtime 0.2s -run '^$$' ./internal/vmem ./internal/proc ; \
	  $(GO) test -bench '^BenchmarkStandbyCloneWarm$$' \
		-benchmem -benchtime 0.2s -run '^$$' ./internal/core ; \
	  $(GO) test -bench 'Guard$$' -benchtime 1x -run '^$$' \
		./internal/vmem ./internal/proc ./internal/core ./internal/checkpoint ./internal/chaos ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_7.json
	$(GO) test -bench '^BenchmarkFleetIngestThroughput$$' -benchtime 1x -run '^$$' . \
	| $(GO) run ./cmd/benchjson -o BENCH_8.json

# cover is the coverage ratchet: the whole internal tree runs with a
# coverage profile, the HTML render is kept as a CI artifact, and the
# recovery pipeline's packages (core, the stage/speculation layer it was
# decomposed into, and the replay log under the batched ingest path) must
# not drop below the floors recorded when each landed. Raise the floors
# when coverage rises; never lower them.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	$(GO) tool cover -html=coverage.out -o coverage.html
	$(GO) run ./cmd/coverfloor -profile coverage.out \
		-floor firstaid/internal/core=80 \
		-floor firstaid/internal/stages=94 \
		-floor firstaid/internal/replay=85

# fuzz-smoke gives the chaos mutator a bounded budget in CI on top of the
# committed seed corpus (which plain `go test` already replays). The corpus
# spans both wire versions: the PR-4 v1 single-bug seeds plus v2 seeds for
# the multi-bug combos, churn, actors and protected-region scenarios, so
# the mutator starts from every scenario axis. The minimization budget is
# capped separately: shrinking an interesting chaos program re-runs a whole
# supervised machine per attempt, and an uncapped minimizer can eat the
# entire fuzz window.
fuzz-smoke:
	$(GO) test -fuzz=FuzzChaosProgram -fuzztime=30s -fuzzminimizetime=5s ./internal/chaos

# accuracy is the diagnosis-accuracy gate: the exhaustive matrix (scenario
# kind × bug class(es) × protected/unprotected, over the full seed set)
# must hold 100% class accuracy and exact-site attribution. Sharded by
# execution mode so CI parallelizes the shards and a red run names the mode
# that broke; each shard stays well under two minutes.
accuracy: accuracy-sync accuracy-parallel accuracy-stream

accuracy-sync accuracy-parallel accuracy-stream: accuracy-%:
	$(GO) test -count=1 -run 'TestDiagnosisAccuracyMatrix/$*$$' ./internal/chaos
