GO ?= go

.PHONY: check build vet test race bench bench-smoke bench-json fuzz-smoke \
	accuracy accuracy-sync accuracy-parallel accuracy-stream

# check is the tier-1 gate: build, vet, the full test suite, and the test
# suite again under the race detector (the supervisor's parallel validation
# runs cloned machines on separate goroutines, so every PR must stay
# race-clean).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke is the CI step: every benchmark (including the telemetry and
# trace overhead guards) runs once, repo-wide, so a perf regression or a
# bit-rotted benchmark fails the build without paying for full -benchtime.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# bench-json records the perf trajectory across PRs: the MMU/allocator
# benchmarks (with allocation stats) and every perf guard run once, and the
# combined output is distilled into BENCH_6.json (name → ns/op, B/op,
# allocs/op, guard metrics), which CI uploads as an artifact next to the
# committed PR-5 floor (BENCH_5.json). Guards run at
# -benchtime 1x because they do their own fixed-size interleaved timing;
# the plain benchmarks get a real sampling budget.
bench-json:
	{ $(GO) test -bench '^(BenchmarkSnapshot|BenchmarkRestore|BenchmarkClone|BenchmarkCloneCOW|BenchmarkWrite64|BenchmarkSnapshotRestore|BenchmarkMallocFreeThroughProc)$$' \
		-benchmem -benchtime 0.2s -run '^$$' ./internal/vmem ./internal/proc ; \
	  $(GO) test -bench 'Guard$$' -benchtime 1x -run '^$$' \
		./internal/vmem ./internal/proc ./internal/core ./internal/checkpoint ./internal/chaos ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_6.json

# fuzz-smoke gives the chaos mutator a bounded budget in CI on top of the
# committed seed corpus (which plain `go test` already replays). The corpus
# spans both wire versions: the PR-4 v1 single-bug seeds plus v2 seeds for
# the multi-bug combos, churn, actors and protected-region scenarios, so
# the mutator starts from every scenario axis. The minimization budget is
# capped separately: shrinking an interesting chaos program re-runs a whole
# supervised machine per attempt, and an uncapped minimizer can eat the
# entire fuzz window.
fuzz-smoke:
	$(GO) test -fuzz=FuzzChaosProgram -fuzztime=30s -fuzzminimizetime=5s ./internal/chaos

# accuracy is the diagnosis-accuracy gate: the exhaustive matrix (scenario
# kind × bug class(es) × protected/unprotected, over the full seed set)
# must hold 100% class accuracy and exact-site attribution. Sharded by
# execution mode so CI parallelizes the shards and a red run names the mode
# that broke; each shard stays well under two minutes.
accuracy: accuracy-sync accuracy-parallel accuracy-stream

accuracy-sync accuracy-parallel accuracy-stream: accuracy-%:
	$(GO) test -count=1 -run 'TestDiagnosisAccuracyMatrix/$*$$' ./internal/chaos
