// Root benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§7). Each benchmark runs the corresponding
// experiment at a representative size and reports the headline quantity as
// a custom metric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation in miniature. The full-size tables/figures come from
// cmd/experiments.
package firstaid_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"firstaid"
	"firstaid/internal/app"
	"firstaid/internal/apps"
	"firstaid/internal/baseline"
	"firstaid/internal/core"
	"firstaid/internal/experiments"
	"firstaid/internal/fleet"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/trace"
	"firstaid/internal/workloads"
)

// BenchmarkTable3Recovery measures the complete failure→diagnosis→patch→
// recovery→validation cycle per application (Table 3's recovery and
// validation times, rollback counts).
func BenchmarkTable3Recovery(b *testing.B) {
	for _, name := range apps.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var rollbacks, patches int
			for i := 0; i < b.N; i++ {
				a, _ := apps.New(name)
				log := a.Workload(700, []int{230})
				sup := firstaid.New(a, log, firstaid.Config{})
				st := sup.Run()
				if st.Failures == 0 || len(sup.Recoveries) == 0 {
					b.Fatal("no recovery exercised")
				}
				rollbacks = sup.Recoveries[0].Result.Rollbacks
				patches = len(sup.Recoveries[0].Patches)
			}
			b.ReportMetric(float64(rollbacks), "rollbacks")
			b.ReportMetric(float64(patches), "patches")
		})
	}
}

// BenchmarkTable4PatchWeight measures First-Aid vs Rx change footprint in
// the buggy region (Table 4).
func BenchmarkTable4PatchWeight(b *testing.B) {
	b.Run("first-aid", func(b *testing.B) {
		var sites int
		for i := 0; i < b.N; i++ {
			a, _ := apps.New("squid")
			sup := firstaid.New(a, a.Workload(700, []int{230}), firstaid.Config{})
			sup.Run()
			sites = len(sup.Recoveries[0].Patches)
		}
		b.ReportMetric(float64(sites), "changed-sites")
	})
	b.Run("rx", func(b *testing.B) {
		var sites int
		for i := 0; i < b.N; i++ {
			a, _ := apps.New("squid")
			rx := baseline.NewRx(a, a.Workload(700, []int{230}), core.MachineConfig{})
			st := rx.Run()
			sites = st.ChangedSites
		}
		b.ReportMetric(float64(sites), "changed-sites")
	})
}

// BenchmarkTable5PatchSpace measures patch space overhead (Table 5).
func BenchmarkTable5PatchSpace(b *testing.B) {
	var padBytes uint64
	for i := 0; i < b.N; i++ {
		a, _ := apps.New("squid")
		sup := firstaid.New(a, a.Workload(700, []int{230}), firstaid.Config{})
		sup.Run()
		padBytes = sup.Ext().PadPeak()
	}
	b.ReportMetric(float64(padBytes), "pad-bytes")
}

// BenchmarkTable6ExtSpace measures the allocator extension's heap overhead
// on the worst-case small-object benchmark (Table 6).
func BenchmarkTable6ExtSpace(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		k, _ := workloads.New("cfrac")
		raw := experiments.RunProgram(k, experiments.RunConfig{Events: 60})
		k2, _ := workloads.New("cfrac")
		ext := experiments.RunProgram(k2, experiments.RunConfig{Events: 60, WithExt: true})
		frac = float64(ext.HeapPeak)/float64(raw.HeapPeak) - 1
	}
	b.ReportMetric(100*frac, "space-overhead-%")
}

// BenchmarkTable7CkptSpace measures checkpoint retention on the fattest
// dirtier (Table 7).
func BenchmarkTable7CkptSpace(b *testing.B) {
	var mbPerCkpt float64
	for i := 0; i < b.N; i++ {
		k, _ := workloads.New("255.vortex")
		m := experiments.RunProgram(k, experiments.RunConfig{Events: 100, WithExt: true, WithCkpt: true})
		mbPerCkpt = m.CkptStats.MBPerCheckpoint()
	}
	b.ReportMetric(mbPerCkpt, "MB-per-ckpt")
}

// BenchmarkFigure4Throughput measures sustained event processing under the
// three recovery disciplines with periodic bug triggers (Figure 4).
func BenchmarkFigure4Throughput(b *testing.B) {
	triggers := []int{300, 700, 1100}
	b.Run("first-aid", func(b *testing.B) {
		var failures int
		for i := 0; i < b.N; i++ {
			a, _ := apps.New("squid")
			sup := firstaid.New(a, a.Workload(1400, triggers), firstaid.Config{})
			st := sup.Run()
			failures = st.Failures
		}
		b.ReportMetric(float64(failures), "failures")
	})
	b.Run("rx", func(b *testing.B) {
		var failures int
		for i := 0; i < b.N; i++ {
			a, _ := apps.New("squid")
			rx := baseline.NewRx(a, a.Workload(1400, triggers), core.MachineConfig{})
			st := rx.Run()
			failures = st.Failures
		}
		b.ReportMetric(float64(failures), "failures")
	})
	b.Run("restart", func(b *testing.B) {
		var failures int
		for i := 0; i < b.N; i++ {
			a, _ := apps.New("squid")
			rs := baseline.NewRestart(a, a.Workload(1400, triggers), core.MachineConfig{})
			st := rs.Run()
			failures = st.Failures
		}
		b.ReportMetric(float64(failures), "failures")
	})
}

// BenchmarkFigure6Overhead measures normal-run overhead configurations on
// a representative pair of programs (Figure 6).
func BenchmarkFigure6Overhead(b *testing.B) {
	for _, name := range []string{"164.gzip", "cfrac"} {
		name := name
		for _, cfg := range []struct {
			label string
			rc    experiments.RunConfig
		}{
			{"original", experiments.RunConfig{Events: 100}},
			{"allocator", experiments.RunConfig{Events: 100, WithExt: true}},
			{"overall", experiments.RunConfig{Events: 100, WithExt: true, WithCkpt: true}},
		} {
			cfg := cfg
			b.Run(name+"/"+cfg.label, func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					k, _ := workloads.New(name)
					m := experiments.RunProgram(k, cfg.rc)
					cycles = m.Cycles
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// BenchmarkSupervisedSteadyState measures per-event cost of supervised
// execution after patches are installed — the normal-mode fast path.
func BenchmarkSupervisedSteadyState(b *testing.B) {
	a, _ := apps.New("squid")
	log := a.Workload(b.N+400, nil)
	sup := firstaid.New(a, log, firstaid.Config{})
	b.ResetTimer()
	sup.Run()
}

// benchSteadyState runs the supervised steady-state workload with the given
// telemetry registry (nil = telemetry off).
func benchSteadyState(b *testing.B, reg *firstaid.Metrics) {
	a, _ := apps.New("squid")
	log := a.Workload(b.N+400, nil)
	cfg := firstaid.Config{}
	cfg.Machine.Metrics = reg
	sup := firstaid.New(a, log, cfg)
	b.ResetTimer()
	sup.Run()
}

// BenchmarkTelemetryOff / BenchmarkTelemetryOn are the comparable pair for
// `go test -bench 'Telemetry(Off|On)'`: the supervised hot path with the
// registry detached vs attached.
func BenchmarkTelemetryOff(b *testing.B) { benchSteadyState(b, nil) }
func BenchmarkTelemetryOn(b *testing.B)  { benchSteadyState(b, firstaid.NewMetrics()) }

// BenchmarkTelemetryOverheadGuard is the regression guard for the
// telemetry layer's design budget: instrumentation must cost < 5% on the
// supervised hot path (every update is a single pre-resolved atomic add; a
// nil registry is free). testing.Benchmark cannot be nested inside a
// benchmark (it deadlocks on the global benchmark lock), so the guard
// times fixed-size supervised runs directly, interleaving off/on and
// taking the best of several rounds to shed scheduler noise; a measurement
// above the budget is re-measured once before failing.
func BenchmarkTelemetryOverheadGuard(b *testing.B) {
	const (
		budget = 5.0 // percent
		events = 4000
		rounds = 5
	)

	run := func(reg *firstaid.Metrics) time.Duration {
		a, _ := apps.New("squid")
		log := a.Workload(events, nil)
		cfg := firstaid.Config{}
		cfg.Machine.Metrics = reg
		sup := firstaid.New(a, log, cfg)
		t0 := time.Now()
		sup.Run()
		return time.Since(t0)
	}

	measure := func() float64 {
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var off, on time.Duration
		run(nil)                      // warmup
		run(firstaid.NewMetrics())    // warmup
		for r := 0; r < rounds; r++ { // interleaved: drift hits both sides
			off = best(run(nil), off)
			on = best(run(firstaid.NewMetrics()), on)
		}
		return 100 * (float64(on)/float64(off) - 1)
	}

	overhead := 0.0
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			overhead = measure()
			if overhead < budget {
				break
			}
		}
	}
	b.ReportMetric(overhead, "overhead-%")
	if overhead >= budget {
		b.Fatalf("telemetry overhead %.2f%% exceeds the %.0f%% budget", overhead, budget)
	}
}

// benchNilEmitter lives at package level so the compiler cannot prove its
// tracer is nil and eliminate the Emit calls the guard below is timing.
var benchNilEmitter trace.Emitter

// BenchmarkTraceOverheadGuard is the regression guard for the execution
// tracer's two design budgets on the hot allocation path:
//
//   - the off switch must be free: the zero Emitter's per-record cost,
//     multiplied by the records a traced event actually produces, must stay
//     under 1% of an untraced event's cost;
//   - an enabled ring must cost < 10% end to end (one atomic add, one
//     uncontended shard mutex and a 48-byte store per record).
//
// Like the telemetry guard, it times fixed-size supervised runs directly
// (testing.Benchmark cannot nest), interleaves off/on rounds and takes the
// best of each to shed scheduler noise, and re-measures once before
// failing.
func BenchmarkTraceOverheadGuard(b *testing.B) {
	const (
		nilBudget = 1.0  // percent, the disabled (zero-Emitter) path
		onBudget  = 10.0 // percent, the enabled ring
		events    = 4000
		rounds    = 5
	)

	run := func(trc *firstaid.Tracer) time.Duration {
		a, _ := apps.New("squid")
		log := a.Workload(events, nil)
		cfg := firstaid.Config{}
		cfg.Machine.Trace = trc
		sup := firstaid.New(a, log, cfg)
		t0 := time.Now()
		sup.Run()
		return time.Since(t0)
	}

	measure := func() (nilPct, onPct float64) {
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var off, on time.Duration
		run(nil)                         // warmup
		run(firstaid.NewTracer(1 << 20)) // warmup
		var recorded uint64
		for r := 0; r < rounds; r++ { // interleaved: drift hits both sides
			off = best(run(nil), off)
			trc := firstaid.NewTracer(1 << 20)
			on = best(run(trc), on)
			recorded = trc.Emitted()
		}
		onPct = 100 * (float64(on)/float64(off) - 1)

		// The zero-Emitter cost cannot be read off two whole runs — it is
		// nanoseconds against run-to-run noise — so time it directly and
		// scale by the records an event of this workload produces.
		const emits = 1 << 24
		t0 := time.Now()
		for i := 0; i < emits; i++ {
			benchNilEmitter.Emit(trace.KMalloc, uint64(i), 8)
		}
		nsPerEmit := float64(time.Since(t0)) / emits
		recsPerEvent := float64(recorded) / events
		nsPerEvent := float64(off) / events
		nilPct = 100 * nsPerEmit * recsPerEvent / nsPerEvent
		return nilPct, onPct
	}

	var nilPct, onPct float64
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			nilPct, onPct = measure()
			if nilPct < nilBudget && onPct < onBudget {
				break
			}
		}
	}
	b.ReportMetric(nilPct, "nil-overhead-%")
	b.ReportMetric(onPct, "on-overhead-%")
	if nilPct >= nilBudget {
		b.Fatalf("disabled tracer costs %.3f%% of the hot path, budget %.0f%%", nilPct, nilBudget)
	}
	if onPct >= onBudget {
		b.Fatalf("enabled tracer overhead %.2f%% exceeds the %.0f%% budget", onPct, onBudget)
	}
}

// BenchmarkFleetThroughput measures the fleet subsystem end to end
// (dispatch → bounded inbox → streaming supervisor → shared pool) at 1, 4
// and 8 workers, reporting events/s plus the p50/p99 service latency from
// the fleet's own telemetry histograms. On a multi-core host throughput
// must scale with the worker count (the workers share nothing but the
// patch pool and atomic counters); single-core runs report the numbers but
// skip the scaling assertion, which would measure the scheduler, not us.
func BenchmarkFleetThroughput(b *testing.B) {
	const (
		perClient = 400
		clients   = 8
	)
	run := func(workers int) (evPerSec float64, p50, p99 float64) {
		f := fleet.New(func() app.Program {
			a, _ := apps.New("apache")
			return a
		}, fleet.Config{Workers: workers, Dispatch: fleet.HashBySource})
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			a, _ := apps.New("apache")
			wl := a.Workload(perClient, nil)
			src := fmt.Sprintf("c%d", c)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ev, ok := wl.Next()
					if !ok {
						return
					}
					f.Do(fleet.Request{Kind: ev.Kind, Data: ev.Data, N: ev.N, Src: src})
				}
			}()
		}
		wg.Wait()
		wall := time.Since(t0)
		snap := f.Snapshot()
		f.Close()
		h := snap.Histograms["fleet.latency_us"]
		return float64(clients*perClient) / wall.Seconds(), float64(h.P50), float64(h.P99)
	}

	scales := runtime.GOMAXPROCS(0) >= 4
	var t1, t4 float64
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			var p50, p99 float64
			t1, _, _ = run(1)
			t4, p50, p99 = run(4)
			t8, _, _ := run(8)
			b.ReportMetric(t1, "ev/s-1w")
			b.ReportMetric(t4, "ev/s-4w")
			b.ReportMetric(t8, "ev/s-8w")
			b.ReportMetric(p50, "p50-µs-4w")
			b.ReportMetric(p99, "p99-µs-4w")
			if !scales || t4 > 1.5*t1 {
				break
			}
		}
	}
	if scales && t4 <= 1.5*t1 {
		b.Fatalf("fleet does not scale: %0.f ev/s at 1 worker, %0.f ev/s at 4", t1, t4)
	}
}

// ingestBench is the minimal hot-path program for the batched-ingest
// throughput guard: one root object, a one-cycle tick per event, no heap
// churn. It isolates the serving-path cost — dispatch, batch splitting, the
// worker inbox, the supervisor's fenced drain and the rolling log — from
// application work, which the apps.* programs deliberately make expensive.
type ingestBench struct{}

func (ingestBench) Name() string                         { return "ingestbench" }
func (ingestBench) Bugs() []mmbug.Type                   { return nil }
func (ingestBench) Init(p *proc.Proc)                    { p.SetRoot(0, p.Malloc(64)) }
func (ingestBench) Handle(p *proc.Proc, ev replay.Event) { p.Tick(1) }

// BenchmarkFleetIngestThroughput is the regression guard for the batched
// zero-copy ingest path: an 8-worker fleet fed pre-built binary batches
// must sustain at least 1M events/s on a ≥4-way host (proportionally less
// on smaller ones — the fleet can use at most GOMAXPROCS cores), at no
// more than 1 amortized heap allocation per event across the whole path
// (batch split, inbox hand-off, arena-backed log append, fenced drain,
// amortized telemetry). A measurement below the floor is re-measured once
// before failing, like the other guards.
func BenchmarkFleetIngestThroughput(b *testing.B) {
	const (
		workers          = 8
		clients          = 8
		batch            = 512
		batchesPerClient = 64
	)
	floorEv := 1e6
	allocBudget := 1.0
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		floorEv = 1e6 * float64(procs) / 4
	}

	items := make([]fleet.BatchItem, batch)
	for i := range items {
		items[i] = fleet.BatchItem{Kind: []byte("req"), N: i}
	}

	run := func() (evPerSec, allocsPerEvent float64) {
		f := fleet.New(func() app.Program { return ingestBench{} },
			fleet.Config{Workers: workers, Dispatch: fleet.RoundRobin, QueueDepth: 4})
		// Warm up: size the inboxes, the scratch pool, each log's first
		// arena chunk and events slice, and the intern tables.
		for c := 0; c < clients; c++ {
			if _, err := f.DoBatch(items); err != nil {
				b.Fatal(err)
			}
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < batchesPerClient; i++ {
					f.DoBatch(items)
				}
			}()
		}
		wg.Wait()
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		st := f.Close()
		events := clients * batchesPerClient * batch
		if st.Core.Events != events+clients*batch {
			b.Fatalf("fleet served %d events, want %d", st.Core.Events, events+clients*batch)
		}
		return float64(events) / wall.Seconds(),
			float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
	}

	var evPerSec, allocs float64
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			evPerSec, allocs = run()
			if evPerSec >= floorEv && allocs <= allocBudget {
				break
			}
		}
	}
	b.ReportMetric(evPerSec, "ev/s")
	b.ReportMetric(allocs, "allocs/ev")
	if evPerSec < floorEv {
		b.Fatalf("batched ingest sustained %.0f ev/s, floor %.0f (GOMAXPROCS %d)",
			evPerSec, floorEv, runtime.GOMAXPROCS(0))
	}
	if allocs > allocBudget {
		b.Fatalf("batched ingest costs %.2f allocs/event, budget %.1f", allocs, allocBudget)
	}
}
