// Command benchjson converts `go test -bench` output on stdin into a JSON
// perf report: one object per benchmark, keyed by name, with ns/op,
// B/op, allocs/op and any custom ReportMetric units (speedup-x, B/restore,
// …) as numeric fields. The Makefile's bench-json target pipes the guard
// benchmarks through it to produce BENCH_<PR>.json, the artifact that
// tracks the perf trajectory across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// metricKey maps a benchmark unit to a stable JSON field name.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "MB/s":
		return "mb_per_s"
	}
	var b strings.Builder
	for _, r := range unit {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// trimProcs strips the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkRestore/16MiB-8" → "BenchmarkRestore/16MiB").
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report := map[string]map[string]float64{}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		name := trimProcs(f[0])
		if _, taken := report[name]; taken {
			// The same benchmark name in a second package: qualify both
			// ways of reading it by prefixing the package path tail.
			name = pkg[strings.LastIndexByte(pkg, '/')+1:] + "." + name
		}
		m := map[string]float64{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			m[metricKey(f[i+1])] = v
		}
		if len(m) > 0 {
			report[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(report) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report), *out)
}
