// Command coverfloor enforces per-package coverage ratchets on a Go cover
// profile. CI runs the full test suite with -coverprofile and then checks
// the packages named by -floor flags against their recorded floors, so a
// change that erodes test coverage of a ratcheted package fails the build
// instead of landing silently.
//
// Usage:
//
//	coverfloor -profile coverage.out -floor firstaid/internal/core=80 ...
//
// Coverage is computed the way `go tool cover -func` does: the fraction of
// profiled statements inside the package with a non-zero execution count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// floors collects repeated -floor pkg=pct flags.
type floors map[string]float64

func (f floors) String() string { return fmt.Sprint(map[string]float64(f)) }

func (f floors) Set(v string) error {
	pkg, pct, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want pkg=pct, got %q", v)
	}
	p, err := strconv.ParseFloat(pct, 64)
	if err != nil {
		return fmt.Errorf("bad floor %q: %v", v, err)
	}
	f[pkg] = p
	return nil
}

type tally struct{ total, covered int }

func main() {
	profile := flag.String("profile", "coverage.out", "cover profile to check")
	want := floors{}
	flag.Var(want, "floor", "package=minimum-percent (repeatable)")
	flag.Parse()
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "coverfloor: no -floor flags given")
		os.Exit(2)
	}

	got, err := tallyProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverfloor: %v\n", err)
		os.Exit(2)
	}

	pkgs := make([]string, 0, len(want))
	for pkg := range want {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	failed := false
	for _, pkg := range pkgs {
		t, ok := got[pkg]
		if !ok || t.total == 0 {
			fmt.Printf("coverfloor: %-32s no profiled statements (floor %.1f%%) FAIL\n", pkg, want[pkg])
			failed = true
			continue
		}
		pct := 100 * float64(t.covered) / float64(t.total)
		status := "ok"
		if pct < want[pkg] {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("coverfloor: %-32s %6.1f%% of %d statements (floor %.1f%%) %s\n",
			pkg, pct, t.total, want[pkg], status)
	}
	if failed {
		os.Exit(1)
	}
}

// tallyProfile sums profiled statement counts per package directory.
func tallyProfile(name string) (map[string]tally, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	got := map[string]tally{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmts count
		file, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			continue
		}
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		t := got[path.Dir(file)]
		t.total += stmts
		if count > 0 {
			t.covered += stmts
		}
		got[path.Dir(file)] = t
	}
	return got, sc.Err()
}
