// Command experiments regenerates the tables and figures of the paper's
// evaluation (§7).
//
// Usage:
//
//	experiments -all                 # everything (few minutes)
//	experiments -table 3             # one table (2..7)
//	experiments -figure 4 -app squid # one figure (4 or 6)
//	experiments -figure 6 -events 300
package main

import (
	"flag"
	"fmt"
	"os"

	"firstaid/internal/experiments"
	"firstaid/internal/telemetry"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate one table (2..7)")
		figure    = flag.Int("figure", 0, "regenerate one figure (4, 5 or 6)")
		all       = flag.Bool("all", false, "regenerate everything")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		appName   = flag.String("app", "", "application for figure 4 (apache, squid; empty = both)")
		events    = flag.Int("events", 300, "events per measurement run (tables 6/7, figure 6)")
		metrics   = flag.Bool("metrics", false, "collect telemetry across all supervised runs and dump the JSON snapshot at exit")
	)
	flag.Parse()

	if *metrics {
		experiments.Metrics = telemetry.NewRegistry()
	}

	if !*all && *table == 0 && *figure == 0 && !*ablations {
		flag.Usage()
		os.Exit(2)
	}

	run := func(n int) bool { return *all || *table == n }
	runFig := func(n int) bool { return *all || *figure == n }

	if run(2) {
		fmt.Println(experiments.Table2())
	}
	if run(3) {
		fmt.Println(experiments.RenderTable3(experiments.Table3()))
	}
	if run(4) {
		fmt.Println(experiments.RenderTable4(experiments.Table4()))
	}
	if run(5) {
		fmt.Println(experiments.RenderTable5(experiments.Table5()))
	}
	if run(6) {
		fmt.Println(experiments.RenderTable6(experiments.Table6(*events)))
	}
	if run(7) {
		fmt.Println(experiments.RenderTable7(experiments.Table7(*events)))
	}
	if runFig(4) {
		names := []string{"apache", "squid"}
		if *appName != "" {
			names = []string{*appName}
		}
		for _, n := range names {
			fmt.Println(experiments.RenderFigure4(experiments.Figure4(n)))
		}
	}
	if runFig(5) {
		fmt.Println(experiments.Figure5())
	}
	if runFig(6) {
		fmt.Println(experiments.RenderFigure6(experiments.Figure6(*events)))
	}
	if *ablations || *all {
		fmt.Println(experiments.RenderAblationSearch(experiments.AblationSearch()))
		fmt.Println(experiments.RenderAblationCheckpoint(experiments.AblationCheckpoint(*events)))
		fmt.Println(experiments.RenderAblationDelayLimit(experiments.AblationDelayLimit()))
	}

	if experiments.Metrics != nil {
		out, err := experiments.Metrics.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rendering metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntelemetry snapshot (all runs):\n%s\n", out)
	}
}
