// Command firstaid-run executes one of the paper's evaluation applications
// under First-Aid supervision, triggers its bug, and prints recovery
// statistics and (optionally) the full bug report.
//
// Usage:
//
//	firstaid-run -app apache -report
//	firstaid-run -app squid -events 2000 -triggers 300,900,1500
//	firstaid-run -app cvs -pool /tmp/cvs-patches.json   # persist patches
//	firstaid-run -app apache -guard-rate 4096           # sampled guard pages
//	firstaid-run -list
//
// Chaos mode replays a generated bug-injection program from a single
// seed through the differential oracle (reproduces any chaos-harness
// failure):
//
//	firstaid-run -chaos-seed 0x2a -chaos-class double-free
//	firstaid-run -chaos-seed 7 -chaos-class overflow -chaos-mode stream
//	firstaid-run -chaos-seed 13 -chaos-class multi -chaos-combo 0
//	firstaid-run -chaos-seed 5 -chaos-scenario churn -chaos-class overflow
//	firstaid-run -chaos-seed 8 -chaos-class dangling-write -chaos-protect
//	firstaid-run -chaos-seed 0xF34 -chaos-scenario churn -chaos-guard
//
// With -postmortem <dir>, both modes write one postmortem bundle
// (diagnosis-<id>.tar.gz: diagnosis JSON, report artifacts, trace slice,
// span journal, metrics snapshot, and — for chaos runs — a REPRO.txt with
// the exact firstaid-run command) per recovery at exit. A bundle's
// REPRO.txt replays the identical diagnosis offline:
//
//	firstaid-run -chaos-seed 0x2a -chaos-class overflow -postmortem /tmp/pm
//	tar -xzf /tmp/pm/diagnosis-1.tar.gz REPRO.txt && sh REPRO.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"firstaid"
	"firstaid/internal/apps"
	"firstaid/internal/chaos"
)

func main() {
	var (
		appName    = flag.String("app", "apache", "application to run (see -list)")
		events     = flag.Int("events", 1200, "workload length in events")
		triggers   = flag.String("triggers", "230", "comma-separated bug-trigger positions (empty = clean run)")
		report     = flag.Bool("report", false, "print the full Figure-5-style bug report")
		reportDir  = flag.String("report-dir", "", "write the report artifacts (failure.core, diag.log, traces) into this directory")
		poolPath   = flag.String("pool", "", "patch-pool file to load before and save after the run")
		list       = flag.Bool("list", false, "list available applications and exit")
		system     = flag.String("system", "first-aid", "recovery discipline: first-aid, rx, restart")
		parallel   = flag.Bool("parallel-validation", false, "validate patches on a cloned machine in parallel")
		speculate  = flag.Bool("speculate", true, "race diagnosis hypotheses on COW clones with a pre-warmed standby (identical verdicts, shorter recoveries); -speculate=false re-executes serially")
		metrics    = flag.Bool("metrics", false, "collect telemetry and dump the JSON snapshot (counters, histograms, per-recovery spans) at exit")
		tracePath  = flag.String("trace", "", "record an execution trace and write it to this file at exit (inspect with firstaid-trace)")
		traceCap   = flag.Int("trace-cap", 0, "execution-trace ring capacity in records (0 = default 64Ki)")
		guardRate  = flag.Int("guard-rate", 0, "guard-page sampling: redirect ~1/N of allocations onto guard pages so stray accesses trap at the faulting instruction (0 = off; 4096 is the always-on default)")
		guardForce = flag.String("guard-force", "", "comma-separated call-site substrings to guard-sample on every allocation (suspect-site hunting; enables the guard tier even with -guard-rate 0)")

		chaosSeed     = flag.String("chaos-seed", "", "run the chaos harness with this program seed (decimal or 0x hex) instead of an application")
		chaosClass    = flag.String("chaos-class", "none", "chaos bug class to inject: none, overflow, dangling-write, dangling-read, double-free, uninit-read (or 'multi' as shorthand for -chaos-scenario multi)")
		chaosOps      = flag.Int("chaos-ops", 0, "chaos benign-op budget (0 = default 110)")
		chaosMode     = flag.String("chaos-mode", "sync", "chaos execution mode: sync, parallel, stream")
		chaosScenario = flag.String("chaos-scenario", "single", "chaos program shape: single, multi, churn, actors")
		chaosCombo    = flag.Int("chaos-combo", 0, "multi scenario: index into the interacting-bug combo library")
		chaosProtect  = flag.Bool("chaos-protect", false, "mark the corruptible script object a Selfie-style sensitive region (eager detection)")
		chaosGuard    = flag.Bool("chaos-guard", false, "generate the chaos program with guard-page sampling always on (rate 1/2 unless -guard-rate/-guard-force is set)")
		postmortem    = flag.String("postmortem", "", "write one postmortem bundle per recovery (diagnosis-<id>.tar.gz) into this directory at exit")
	)
	flag.Parse()

	var guardSites []string
	for _, part := range strings.Split(*guardForce, ",") {
		if s := strings.TrimSpace(part); s != "" {
			guardSites = append(guardSites, s)
		}
	}

	if *chaosSeed != "" {
		runChaos(*chaosSeed, *chaosClass, *chaosOps, *chaosMode, *chaosScenario, *chaosCombo, *chaosProtect,
			*chaosGuard, *speculate, *guardRate, guardSites, *postmortem)
		return
	}

	if *list {
		fmt.Println("available applications (paper Table 2):")
		for _, n := range apps.Names() {
			fmt.Printf("  %-12s %s\n", n, apps.Describe(n))
		}
		return
	}

	prog, err := apps.New(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var trig []int
	if *triggers != "" {
		for _, part := range strings.Split(*triggers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad trigger %q: %v\n", part, err)
				os.Exit(1)
			}
			trig = append(trig, v)
		}
	}

	log := prog.Workload(*events, trig)

	var reg *firstaid.Metrics
	if *metrics {
		reg = firstaid.NewMetrics()
	}
	var trc *firstaid.Tracer
	if *tracePath != "" {
		trc = firstaid.NewTracer(*traceCap)
	}
	dumpMetrics := func() {
		if reg == nil {
			return
		}
		out, err := reg.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rendering metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntelemetry snapshot:\n%s\n", out)
	}
	dumpTrace := func() {
		if trc == nil {
			return
		}
		if err := firstaid.SaveTrace(*tracePath, trc); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nexecution trace: %d record(s) written to %s (%d dropped by ring wrap)\n",
			len(trc.Snapshot()), *tracePath, trc.Dropped())
	}

	mcfg := firstaid.MachineConfig{Metrics: reg, Trace: trc, GuardRate: *guardRate, GuardForce: guardSites}

	switch *system {
	case "rx":
		rx := firstaid.NewRx(prog, log, mcfg)
		st := rx.Run()
		fmt.Printf("%s under Rx: %d events in %.2f simulated seconds\n", prog.Name(), st.Events, st.SimSeconds)
		fmt.Printf("failures: %d, recoveries: %d, skipped: %d (Rx cannot prevent recurrences)\n",
			st.Failures, st.Recoveries, st.Skipped)
		dumpMetrics()
		dumpTrace()
		return
	case "restart":
		rs := firstaid.NewRestart(prog, log, mcfg)
		st := rs.Run()
		fmt.Printf("%s under restart: %d events in %.2f simulated seconds\n", prog.Name(), st.Events, st.SimSeconds)
		fmt.Printf("failures: %d, restarts: %d (state lost each time)\n", st.Failures, st.Restarts)
		dumpMetrics()
		dumpTrace()
		return
	case "first-aid":
		// fall through
	default:
		fmt.Fprintf(os.Stderr, "unknown -system %q\n", *system)
		os.Exit(1)
	}

	cfg := firstaid.Config{ParallelValidation: *parallel, Speculate: *speculate}
	cfg.Machine = mcfg
	if *poolPath != "" {
		switch pool, err := firstaid.LoadPool(*poolPath); {
		case err == nil:
			cfg.Pool = pool
			fmt.Printf("loaded %d patch(es) from %s\n", pool.Len(), *poolPath)
		case os.IsNotExist(err):
			// First run against this pool file: legitimate, start empty.
			fmt.Printf("pool file %s not found; starting with an empty pool\n", *poolPath)
		default:
			// A corrupt pool must not silently degrade into an empty one —
			// that would discard every previously diagnosed patch on save.
			fmt.Fprintf(os.Stderr, "loading pool %s: %v\n", *poolPath, err)
			os.Exit(1)
		}
	}
	sup := firstaid.New(prog, log, cfg)
	stats := sup.Run()

	fmt.Printf("%s: %d events in %.2f simulated seconds\n", prog.Name(), stats.Events, stats.SimSeconds)
	fmt.Printf("failures: %d, recoveries: %d, skipped: %d, patches: %d\n",
		stats.Failures, stats.Recoveries, stats.Skipped, stats.PatchesMade)
	for i, rec := range sup.Recoveries {
		fmt.Printf("\nrecovery %d: %v at event #%d\n", i+1, rec.Fault.Kind, rec.Fault.Event)
		for _, fd := range rec.Result.Findings {
			fmt.Printf("  diagnosed: %v at %d call-site(s)\n", fd.Bug, len(fd.Sites))
		}
		fmt.Printf("  rollbacks: %d, recovery: %.3fs, validation: %.3fs (consistent: %v)\n",
			rec.Result.Rollbacks, rec.RecoveryWall.Seconds(), rec.ValidationWall.Seconds(), rec.Validated)
	}
	for _, p := range sup.Pool.Active() {
		fmt.Printf("  %v\n", p)
	}

	if *report && len(sup.Recoveries) > 0 && sup.Recoveries[0].Report != nil {
		fmt.Println()
		fmt.Println(sup.Recoveries[0].Report)
	}
	if *reportDir != "" && len(sup.Recoveries) > 0 && sup.Recoveries[0].Report != nil {
		paths, err := sup.Recoveries[0].Report.WriteFiles(*reportDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing report artifacts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nreport artifacts written:\n")
		for _, p := range paths {
			fmt.Printf("  %s\n", p)
		}
	}
	if *postmortem != "" {
		paths, err := sup.WritePostmortems(*postmortem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing postmortems: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\npostmortem bundles written:\n")
		for _, p := range paths {
			fmt.Printf("  %s\n", p)
		}
	}
	if *poolPath != "" {
		if err := sup.Pool.SaveFile(*poolPath); err != nil {
			fmt.Fprintf(os.Stderr, "saving pool: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\npatch pool saved to %s\n", *poolPath)
	}
	if reg != nil {
		out, err := reg.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rendering metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntelemetry snapshot:\n%s\n", out)
	}
	dumpTrace()
}

// runChaos reproduces one chaos-harness run from its seed and exits
// non-zero if the differential oracle rejects the recovered state or the
// diagnosis misses the program's ground-truth bug set — the one-liner that
// replays any cell of the accuracy matrix or any failure a chaos test or
// fuzz run reports.
func runChaos(seedStr, classStr string, ops int, modeStr, scenarioStr string, combo int, protect bool,
	guard, speculate bool, guardRate int, guardForce []string, postmortemDir string) {
	seed, err := strconv.ParseUint(seedStr, 0, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -chaos-seed %q: %v\n", seedStr, err)
		os.Exit(1)
	}
	if classStr == "multi" {
		// Shorthand: -chaos-class multi == -chaos-scenario multi.
		classStr, scenarioStr = "none", "multi"
	}
	class, err := chaos.ParseClassFlag(classStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -chaos-class: %v\n", err)
		os.Exit(1)
	}
	mode, err := chaos.ParseModeFlag(modeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -chaos-mode: %v\n", err)
		os.Exit(1)
	}
	scenario, err := chaos.ParseScenarioFlag(scenarioStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -chaos-scenario: %v\n", err)
		os.Exit(1)
	}
	cfg := chaos.RunConfig{
		Seed: seed, Class: class, Ops: ops, Mode: mode,
		Scenario: scenario, Combo: combo, Protect: protect, Guard: guard,
		Speculate: speculate,
	}
	cfg.Machine.GuardRate = guardRate
	cfg.Machine.GuardForce = guardForce
	out := chaos.Run(cfg)
	fmt.Print(out.Verdict())
	if postmortemDir != "" {
		paths, err := out.WritePostmortems(postmortemDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing postmortems: %v\n", err)
			os.Exit(1)
		}
		for _, p := range paths {
			fmt.Printf("postmortem bundle: %s\n", p)
		}
	}
	if !out.OK() {
		os.Exit(1)
	}
	if err := out.CheckExpected(); err != nil {
		fmt.Printf("ground truth: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ground truth: every injected bug diagnosed or neutralized at its exact site")
}
