// Command firstaid-run executes one of the paper's evaluation applications
// under First-Aid supervision, triggers its bug, and prints recovery
// statistics and (optionally) the full bug report.
//
// Usage:
//
//	firstaid-run -app apache -report
//	firstaid-run -app squid -events 2000 -triggers 300,900,1500
//	firstaid-run -app cvs -pool /tmp/cvs-patches.json   # persist patches
//	firstaid-run -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"firstaid"
	"firstaid/internal/apps"
)

func main() {
	var (
		appName   = flag.String("app", "apache", "application to run (see -list)")
		events    = flag.Int("events", 1200, "workload length in events")
		triggers  = flag.String("triggers", "230", "comma-separated bug-trigger positions (empty = clean run)")
		report    = flag.Bool("report", false, "print the full Figure-5-style bug report")
		reportDir = flag.String("report-dir", "", "write the report artifacts (failure.core, diag.log, traces) into this directory")
		poolPath  = flag.String("pool", "", "patch-pool file to load before and save after the run")
		list      = flag.Bool("list", false, "list available applications and exit")
		system    = flag.String("system", "first-aid", "recovery discipline: first-aid, rx, restart")
		parallel  = flag.Bool("parallel-validation", false, "validate patches on a cloned machine in parallel")
		metrics   = flag.Bool("metrics", false, "collect telemetry and dump the JSON snapshot (counters, histograms, per-recovery spans) at exit")
		tracePath = flag.String("trace", "", "record an execution trace and write it to this file at exit (inspect with firstaid-trace)")
		traceCap  = flag.Int("trace-cap", 0, "execution-trace ring capacity in records (0 = default 64Ki)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available applications (paper Table 2):")
		for _, n := range apps.Names() {
			fmt.Printf("  %-12s %s\n", n, apps.Describe(n))
		}
		return
	}

	prog, err := apps.New(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var trig []int
	if *triggers != "" {
		for _, part := range strings.Split(*triggers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad trigger %q: %v\n", part, err)
				os.Exit(1)
			}
			trig = append(trig, v)
		}
	}

	log := prog.Workload(*events, trig)

	var reg *firstaid.Metrics
	if *metrics {
		reg = firstaid.NewMetrics()
	}
	var trc *firstaid.Tracer
	if *tracePath != "" {
		trc = firstaid.NewTracer(*traceCap)
	}
	dumpMetrics := func() {
		if reg == nil {
			return
		}
		out, err := reg.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rendering metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntelemetry snapshot:\n%s\n", out)
	}
	dumpTrace := func() {
		if trc == nil {
			return
		}
		if err := firstaid.SaveTrace(*tracePath, trc); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nexecution trace: %d record(s) written to %s (%d dropped by ring wrap)\n",
			len(trc.Snapshot()), *tracePath, trc.Dropped())
	}

	switch *system {
	case "rx":
		rx := firstaid.NewRx(prog, log, firstaid.MachineConfig{Metrics: reg, Trace: trc})
		st := rx.Run()
		fmt.Printf("%s under Rx: %d events in %.2f simulated seconds\n", prog.Name(), st.Events, st.SimSeconds)
		fmt.Printf("failures: %d, recoveries: %d, skipped: %d (Rx cannot prevent recurrences)\n",
			st.Failures, st.Recoveries, st.Skipped)
		dumpMetrics()
		dumpTrace()
		return
	case "restart":
		rs := firstaid.NewRestart(prog, log, firstaid.MachineConfig{Metrics: reg, Trace: trc})
		st := rs.Run()
		fmt.Printf("%s under restart: %d events in %.2f simulated seconds\n", prog.Name(), st.Events, st.SimSeconds)
		fmt.Printf("failures: %d, restarts: %d (state lost each time)\n", st.Failures, st.Restarts)
		dumpMetrics()
		dumpTrace()
		return
	case "first-aid":
		// fall through
	default:
		fmt.Fprintf(os.Stderr, "unknown -system %q\n", *system)
		os.Exit(1)
	}

	cfg := firstaid.Config{ParallelValidation: *parallel}
	cfg.Machine.Metrics = reg
	cfg.Machine.Trace = trc
	if *poolPath != "" {
		switch pool, err := firstaid.LoadPool(*poolPath); {
		case err == nil:
			cfg.Pool = pool
			fmt.Printf("loaded %d patch(es) from %s\n", pool.Len(), *poolPath)
		case os.IsNotExist(err):
			// First run against this pool file: legitimate, start empty.
			fmt.Printf("pool file %s not found; starting with an empty pool\n", *poolPath)
		default:
			// A corrupt pool must not silently degrade into an empty one —
			// that would discard every previously diagnosed patch on save.
			fmt.Fprintf(os.Stderr, "loading pool %s: %v\n", *poolPath, err)
			os.Exit(1)
		}
	}
	sup := firstaid.New(prog, log, cfg)
	stats := sup.Run()

	fmt.Printf("%s: %d events in %.2f simulated seconds\n", prog.Name(), stats.Events, stats.SimSeconds)
	fmt.Printf("failures: %d, recoveries: %d, skipped: %d, patches: %d\n",
		stats.Failures, stats.Recoveries, stats.Skipped, stats.PatchesMade)
	for i, rec := range sup.Recoveries {
		fmt.Printf("\nrecovery %d: %v at event #%d\n", i+1, rec.Fault.Kind, rec.Fault.Event)
		for _, fd := range rec.Result.Findings {
			fmt.Printf("  diagnosed: %v at %d call-site(s)\n", fd.Bug, len(fd.Sites))
		}
		fmt.Printf("  rollbacks: %d, recovery: %.3fs, validation: %.3fs (consistent: %v)\n",
			rec.Result.Rollbacks, rec.RecoveryWall.Seconds(), rec.ValidationWall.Seconds(), rec.Validated)
	}
	for _, p := range sup.Pool.Active() {
		fmt.Printf("  %v\n", p)
	}

	if *report && len(sup.Recoveries) > 0 && sup.Recoveries[0].Report != nil {
		fmt.Println()
		fmt.Println(sup.Recoveries[0].Report)
	}
	if *reportDir != "" && len(sup.Recoveries) > 0 && sup.Recoveries[0].Report != nil {
		paths, err := sup.Recoveries[0].Report.WriteFiles(*reportDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing report artifacts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nreport artifacts written:\n")
		for _, p := range paths {
			fmt.Printf("  %s\n", p)
		}
	}
	if *poolPath != "" {
		if err := sup.Pool.SaveFile(*poolPath); err != nil {
			fmt.Fprintf(os.Stderr, "saving pool: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\npatch pool saved to %s\n", *poolPath)
	}
	if reg != nil {
		out, err := reg.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rendering metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntelemetry snapshot:\n%s\n", out)
	}
	dumpTrace()
}
