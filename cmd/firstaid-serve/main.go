// Command firstaid-serve runs a fleet of supervised machines behind a TCP
// HTTP front-end: JSON events in, per-event outcomes out. It is the
// deployment shape of the paper's evaluation — several server processes of
// one program running at once, all protected by one central patch pool —
// turned into a single service.
//
// Usage:
//
//	firstaid-serve -app apache -addr :8080 -workers 4
//	firstaid-serve -app squid -pool /var/lib/firstaid/squid.json
//	firstaid-serve -app apache -guard-rate 4096     # sampled guard pages fleet-wide
//	firstaid-serve -app apache -load -clients 8 -events 1000 \
//	    -trigger-clients 2 -triggers 120 -trigger-stagger 400
//	firstaid-serve -app apache -load -batch 256 -compact-log   # batched ingest
//
// Endpoints:
//
//	POST /events        {"kind":"search","data":"uid=user7","src":"c0"}
//	POST /events/batch  length-prefixed binary batch of events (wire format
//	                    v1); one request carries N events, split across
//	                    workers by the dispatch mode
//	GET  /metrics       merged telemetry (fleet + every worker); ?format=prom
//	                    for the Prometheus text exposition
//	GET  /trace         execution-trace ring; ?format=chrome or ?format=text
//	GET  /trace/stream  live SSE tail of trace records
//	GET  /patches       the shared patch pool as JSON
//	GET  /healthz       per-worker readiness: inbox depth, busy state,
//	                    last-event clock, in-flight diagnoses
//	GET  /diagnoses     recovery lifecycle objects from the diagnosis
//	                    ledger; ?phase=, ?source=, ?worker= filter
//	GET  /diagnoses/stream      live SSE feed of phase transitions
//	GET  /diagnoses/{id}        one full diagnosis (conditions + evidence)
//	GET  /diagnoses/{id}/trace  its trace slice; ?format=chrome or text
//	GET  /diagnoses/{id}/bundle its postmortem bundle (tar.gz)
//
// With -load the binary starts its own fleet, drives the built-in
// concurrent load generator against it over a real TCP socket, prints
// throughput and latency percentiles, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/apps"
	"firstaid/internal/core"
	"firstaid/internal/fleet"
	"firstaid/internal/patch"
)

func main() {
	var (
		appName    = flag.String("app", "apache", "application to serve (see firstaid-run -list)")
		addr       = flag.String("addr", "127.0.0.1:8080", "TCP listen address")
		workers    = flag.Int("workers", 4, "supervised machines in the fleet")
		queue      = flag.Int("queue", 64, "per-worker inbox depth")
		dispatch   = flag.String("dispatch", "hash", "request dispatch: hash (sticky by source) or roundrobin")
		poolPath   = flag.String("pool", "", "patch-pool file to load at start and save at exit")
		parallel   = flag.Bool("parallel-validation", false, "validate patches on cloned machines in parallel")
		speculate  = flag.Bool("speculate", true, "per worker: race diagnosis hypotheses on COW clones with a pre-warmed standby (identical verdicts, shorter recoveries); -speculate=false re-executes serially")
		traceCap   = flag.Int("trace-cap", 0, "execution-trace ring capacity in records (0 = default 64Ki)")
		ledgerCap  = flag.Int("ledger-cap", 0, "diagnosis-ledger ring capacity in entries (0 = default 256)")
		journal    = flag.Int("journal-spans", 0, "recovery spans retained per worker journal (0 = default 512)")
		guardRate  = flag.Int("guard-rate", 0, "guard-page sampling per worker: redirect ~1/N of allocations onto guard pages so stray accesses trap at the faulting instruction (0 = off; 4096 is the always-on default)")
		guardForce = flag.String("guard-force", "", "comma-separated call-site substrings to guard-sample on every allocation across the fleet")
		compactLog = flag.Bool("compact-log", false, "bound each worker's rolling replay log: discard the prefix older than its oldest retained checkpoint (live memory stays flat; whole-run offline replay is given up)")

		load           = flag.Bool("load", false, "run the built-in load generator against this fleet, print the report, and exit")
		clients        = flag.Int("clients", 4, "load: concurrent clients")
		events         = flag.Int("events", 500, "load: events per client")
		batch          = flag.Int("batch", 0, "load: send events in binary batches of this size via POST /events/batch (0 or 1 = one JSON request per event)")
		triggerClients = flag.Int("trigger-clients", 1, "load: how many clients carry bug triggers")
		triggers       = flag.String("triggers", "110", "load: comma-separated trigger offsets within a client's workload (empty = clean)")
		stagger        = flag.Int("trigger-stagger", 300, "load: per-client shift of the trigger offsets")
	)
	flag.Parse()

	if _, err := apps.New(*appName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	newApp := func() app.App {
		prog, err := apps.New(*appName)
		if err != nil {
			panic(err) // validated above
		}
		return prog
	}

	mcfg := core.MachineConfig{GuardRate: *guardRate}
	for _, part := range strings.Split(*guardForce, ",") {
		if s := strings.TrimSpace(part); s != "" {
			mcfg.GuardForce = append(mcfg.GuardForce, s)
		}
	}
	cfg := fleet.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Supervisor:     core.Config{ParallelValidation: *parallel, Speculate: *speculate, CompactLog: *compactLog, Machine: mcfg},
		TraceCapacity:  *traceCap,
		JournalSpans:   *journal,
		LedgerCapacity: *ledgerCap,
	}
	switch *dispatch {
	case "hash":
		cfg.Dispatch = fleet.HashBySource
	case "roundrobin":
		cfg.Dispatch = fleet.RoundRobin
	default:
		fmt.Fprintf(os.Stderr, "unknown -dispatch %q (want hash or roundrobin)\n", *dispatch)
		os.Exit(1)
	}

	if *poolPath != "" {
		switch pool, err := patch.LoadFile(*poolPath); {
		case err == nil:
			cfg.Pool = pool
			fmt.Printf("loaded %d patch(es) from %s\n", pool.Len(), *poolPath)
		case os.IsNotExist(err):
			fmt.Printf("pool file %s not found; starting with an empty pool\n", *poolPath)
		default:
			fmt.Fprintf(os.Stderr, "loading pool %s: %v\n", *poolPath, err)
			os.Exit(1)
		}
	}

	f := fleet.New(func() app.Program { return newApp() }, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: fleet.NewServer(f)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("firstaid-serve: %s fleet of %d worker(s) on http://%s (dispatch %s)\n",
		*appName, f.Workers(), ln.Addr(), *dispatch)

	if *load {
		lcfg := fleet.LoadConfig{
			Clients:         *clients,
			EventsPerClient: *events,
			Batch:           *batch,
			TriggerClients:  *triggerClients,
			TriggerStagger:  *stagger,
		}
		if *triggers != "" {
			for _, part := range strings.Split(*triggers, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad trigger %q: %v\n", part, err)
					os.Exit(1)
				}
				lcfg.Triggers = append(lcfg.Triggers, v)
			}
		}
		rep, err := fleet.RunLoad("http://"+ln.Addr().String(), newApp, lcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load generator: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		shutdown(srv, f, *poolPath)
		return
	}

	// Serve until SIGINT/SIGTERM, then drain and report.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("\n%v: shutting down\n", s)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	shutdown(srv, f, *poolPath)
}

// shutdown stops accepting traffic, drains the fleet, prints its final
// stats, and persists the patch pool.
func shutdown(srv *http.Server, f *fleet.Fleet, poolPath string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)

	st := f.Close()
	fmt.Printf("fleet: %d request(s) across %d worker(s); rerouted %d, blocked %d\n",
		st.Requests, st.Workers, st.Rerouted, st.Blocked)
	fmt.Printf("core: failures %d, recoveries %d, skipped %d, patches made %d, active patches %d\n",
		st.Core.Failures, st.Core.Recoveries, st.Core.Skipped, st.Core.PatchesMade, st.ActivePatches)

	if poolPath != "" {
		if err := f.Pool().SaveFile(poolPath); err != nil {
			fmt.Fprintf(os.Stderr, "saving pool: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("patch pool saved to %s\n", poolPath)
	}
}
