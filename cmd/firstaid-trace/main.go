// Command firstaid-trace inspects execution traces written by
// firstaid-run -trace (or any trace.WriteFile caller).
//
// Usage:
//
//	firstaid-trace dump run.trace              # text timeline to stdout
//	firstaid-trace convert run.trace run.json  # Chrome trace-event JSON
//	firstaid-trace summarize run.trace         # per-phase + call-site summary
//	firstaid-trace summarize -top 20 run.trace
//
// convert writes chrome://tracing / Perfetto-loadable JSON; with no output
// path it writes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"firstaid/internal/trace"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := args[0], args[1:]

	var err error
	switch cmd {
	case "dump":
		err = runDump(args)
	case "convert":
		err = runConvert(args)
	case "summarize":
		err = runSummarize(args)
	default:
		fmt.Fprintf(os.Stderr, "firstaid-trace: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "firstaid-trace %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  firstaid-trace dump <file>                text timeline to stdout
  firstaid-trace convert <file> [out.json]  Chrome trace-event JSON (stdout if no out)
  firstaid-trace summarize [-top N] <file>  per-phase breakdown and top call-sites
`)
}

func runDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	fs.Parse(args)
	recs, err := load(fs.Args())
	if err != nil {
		return err
	}
	return trace.WriteText(os.Stdout, recs)
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	fs.Parse(args)
	recs, err := load(fs.Args())
	if err != nil {
		return err
	}
	if len(fs.Args()) >= 2 {
		out, err := os.Create(fs.Args()[1])
		if err != nil {
			return err
		}
		if err := trace.ChromeTrace(out, recs); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("%d record(s) converted to %s (load in chrome://tracing or Perfetto)\n",
			len(recs), fs.Args()[1])
		return nil
	}
	return trace.ChromeTrace(os.Stdout, recs)
}

func runSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	topN := fs.Int("top", 10, "call-sites to list, by allocation volume")
	fs.Parse(args)
	recs, err := load(fs.Args())
	if err != nil {
		return err
	}
	fmt.Printf("%d record(s)\n\n", len(recs))
	return trace.Summarize(recs).Format(os.Stdout, *topN)
}

// load reads the trace file named by the first positional argument.
func load(args []string) ([]trace.Record, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("missing trace file argument")
	}
	return trace.ReadFile(args[0])
}
