// Errormonitor: deploying a pluggable error detector (paper §3: "one can
// deploy more sophisticated error detectors such as AccMon if they incur
// low overhead").
//
// This program's overflow smashes the boundary tag of a long-lived archive
// record that nothing ever frees or reads again: with only the default
// monitors (exceptions + assertions) the corruption is perfectly silent
// and First-Aid never gets a failure to diagnose. Deploying the
// heap-integrity detector turns the corruption into a caught failure at
// the very event that caused it, and the normal diagnose→patch→prevent
// pipeline takes over.
//
//	go run ./examples/errormonitor
package main

import (
	"fmt"
	"strings"

	"firstaid"
)

// archiveServer appends sessions and archive records forever; oversized
// session payloads overflow into the next record's boundary tag.
type archiveServer struct{}

func (a *archiveServer) Name() string             { return "archive" }
func (a *archiveServer) Bugs() []firstaid.BugType { return []firstaid.BugType{firstaid.BufferOverflow} }
func (a *archiveServer) Init(p *firstaid.Proc) {
	defer p.Enter("main")()
	p.SetRoot(0, 0)
}

func (a *archiveServer) Handle(p *firstaid.Proc, ev firstaid.Event) {
	defer p.Enter("serve")()
	p.Tick(100_000)
	session := func() firstaid.Addr {
		defer p.Enter("session_alloc")()
		return p.Malloc(48)
	}()
	record := func() firstaid.Addr {
		defer p.Enter("archive_alloc")()
		return p.Malloc(80)
	}()
	p.Memset(record, byte(ev.N), 80)
	p.At("store_payload")
	p.StoreString(session, ev.Data) // THE BUG: no bounds check
	_ = record                      // kept forever, never re-read
}

func (a *archiveServer) Workload(n int, triggers []int) *firstaid.Log {
	log := firstaid.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < n; i++ {
		payload := "normal payload"
		if trig[i] {
			payload = strings.Repeat("X", 64) // 16 bytes past the session buffer
		}
		log.Append("put", payload, i)
	}
	return log
}

func main() {
	// Without a detector: the corruption slips through (§6's limitation).
	{
		prog := &archiveServer{}
		sup := firstaid.New(prog, prog.Workload(300, []int{100, 200}), firstaid.Config{})
		st := sup.Run()
		fmt.Printf("default monitors:   %d failures detected (corruption is silent!)\n", st.Failures)
	}
	// With the heap-integrity detector: caught at the triggering event.
	{
		prog := &archiveServer{}
		sup := firstaid.New(prog, prog.Workload(300, []int{100, 200}), firstaid.Config{
			Machine: firstaid.MachineConfig{IntegrityCheckEvery: 1},
		})
		st := sup.Run()
		fmt.Printf("integrity detector: %d failure detected, %d patch(es) generated\n",
			st.Failures, st.PatchesMade)
		for _, rec := range sup.Recoveries {
			fmt.Printf("  caught at event #%d: %v\n", rec.Fault.Event, rec.Fault.Kind)
			for _, fd := range rec.Result.Findings {
				fmt.Printf("  diagnosed: %v\n", fd.Bug)
			}
		}
		if st.Failures == 1 {
			fmt.Println("  the second trigger was absorbed by the padding patch")
		}
	}
}
