// Patchreuse: runtime patches outlive the process that generated them.
//
// The paper (§2): "since the patches are specific to the program executable
// (not only the running process), First-Aid applies them to the subsequent
// runs of the same program and other processes running the same
// executable." This example runs one Squid process that hits the overflow
// and generates a patch, persists the patch pool to disk, then starts a
// *fresh* process with the loaded pool: the same exploit input never causes
// a failure.
//
//	go run ./examples/patchreuse
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"firstaid"
	"firstaid/internal/apps"
)

func main() {
	poolPath := filepath.Join(os.TempDir(), "firstaid-squid-patches.json")
	defer os.Remove(poolPath)

	// First run: hits the bug, diagnoses, patches.
	{
		prog, _ := apps.New("squid")
		sup := firstaid.New(prog, prog.Workload(700, []int{200}), firstaid.Config{})
		st := sup.Run()
		fmt.Printf("run 1: %d failure(s), %d patch(es) generated\n", st.Failures, st.PatchesMade)
		if err := sup.Pool.SaveFile(poolPath); err != nil {
			panic(err)
		}
		fmt.Printf("patch pool saved to %s\n\n", poolPath)
	}

	// Second run: fresh process, inherited patches, same exploit.
	{
		pool, err := firstaid.LoadPool(poolPath)
		if err != nil {
			panic(err)
		}
		fmt.Printf("loaded pool for %q with %d patch(es):\n", pool.Program, pool.Len())
		for _, p := range pool.Active() {
			fmt.Printf("  %v\n", p)
		}

		prog, _ := apps.New("squid")
		sup := firstaid.New(prog, prog.Workload(700, []int{120, 400}), firstaid.Config{Pool: pool})
		st := sup.Run()
		fmt.Printf("\nrun 2: %d failure(s) across 2 exploit attempts\n", st.Failures)
		if st.Failures == 0 {
			fmt.Println("OK: inherited patches protected the fresh process from its first request on.")
		} else {
			fmt.Println("UNEXPECTED: the fresh process still failed.")
		}
	}
}
