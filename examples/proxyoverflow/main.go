// Proxyoverflow: the Squid 2.3 buffer overflow under the three recovery
// disciplines of the paper's Figure 4 — First-Aid, Rx, and restart — with
// the bug triggered periodically by oversized URLs.
//
// First-Aid fails once, patches the URL-buffer allocation site with
// padding, and sails through every later exploit attempt; Rx survives each
// failure but pays a full rollback-and-re-execute every time; restart loses
// its cache and pays a cold start every time.
//
//	go run ./examples/proxyoverflow
package main

import (
	"fmt"

	"firstaid"
	"firstaid/internal/apps"
)

const (
	events   = 1500
	triggers = 3
)

func triggerAt() []int {
	var t []int
	for i := 1; i <= triggers; i++ {
		t = append(t, i*events/(triggers+1))
	}
	return t
}

func main() {
	// First-Aid.
	{
		prog, _ := apps.New("squid")
		sup := firstaid.New(prog, prog.Workload(events, triggerAt()), firstaid.Config{})
		st := sup.Run()
		fmt.Printf("%-9s: %d triggers -> %d failures, %d recoveries, sim time %6.2fs\n",
			"First-Aid", triggers, st.Failures, st.Recoveries, st.SimSeconds)
		for _, p := range sup.Pool.Active() {
			fmt.Printf("           %v\n", p)
		}
	}
	// Rx.
	{
		prog, _ := apps.New("squid")
		rx := firstaid.NewRx(prog, prog.Workload(events, triggerAt()), firstaid.MachineConfig{})
		st := rx.Run()
		fmt.Printf("%-9s: %d triggers -> %d failures, %d recoveries, sim time %6.2fs\n",
			"Rx", triggers, st.Failures, st.Recoveries, st.SimSeconds)
	}
	// Restart.
	{
		prog, _ := apps.New("squid")
		rs := firstaid.NewRestart(prog, prog.Workload(events, triggerAt()), firstaid.MachineConfig{})
		st := rs.Run()
		fmt.Printf("%-9s: %d triggers -> %d failures, %d restarts,   sim time %6.2fs\n",
			"Restart", triggers, st.Failures, st.Restarts, st.SimSeconds)
	}
	fmt.Println("\nFirst-Aid fails once and prevents the rest; the baselines fail every time.")
}
