// Quickstart: a minimal buggy program surviving under First-Aid.
//
// The program is a tiny note-keeping service written the way a C program
// is: explicit Malloc/Free against the simulated process API, with a
// classic buffer overflow — notes are copied into fixed 64-byte buffers
// with no bounds check. One oversized note corrupts the neighbouring
// index block and crashes the service; under First-Aid the failure is
// diagnosed, an add-padding patch is generated for the one allocation
// call-site, and every later oversized note is absorbed harmlessly.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"firstaid"
	"firstaid/internal/mmbug"
)

const noteBufLen = 64

// notebook is the buggy program.
type notebook struct{}

func (n *notebook) Name() string             { return "notebook" }
func (n *notebook) Bugs() []firstaid.BugType { return []firstaid.BugType{mmbug.BufferOverflow} }

// Init builds the index block the overflow will corrupt.
func (n *notebook) Init(p *firstaid.Proc) {
	defer p.Enter("main")()
	defer p.Enter("notebook_init")()
	idx := p.Malloc(64)
	p.StoreU32(idx, 0x494E4458) // "INDX"
	p.Memset(idx+4, 0, 60)
	p.SetRoot(0, idx)
}

// Handle processes one "note" command.
func (n *notebook) Handle(p *firstaid.Proc, ev firstaid.Event) {
	defer p.Enter("handle_note")()
	p.Tick(100_000)

	buf := func() firstaid.Addr {
		defer p.Enter("note_alloc")()
		return p.Malloc(noteBufLen)
	}()
	// Per-note metadata record, allocated right after the buffer — the
	// object the overflow destroys.
	meta := func() firstaid.Addr {
		defer p.Enter("meta_alloc")()
		return p.Malloc(32)
	}()
	p.StoreU32(meta, 0x4D455441) // "META"
	p.Memset(meta+4, 0, 28)

	// THE BUG: strcpy with no bounds check.
	p.At("copy_note")
	p.StoreString(buf, ev.Data)

	// Registering the note requires intact metadata.
	p.At("register")
	p.Assert(p.LoadU32(meta) == 0x4D455441, "note metadata corrupted")
	p.Assert(p.LoadU32(p.RootAddr(0)) == 0x494E4458, "note index corrupted")

	func() {
		defer p.Enter("note_free")()
		p.Free(meta)
		p.Free(buf)
	}()
}

// Workload generates notes; triggers inject oversized ones.
func (n *notebook) Workload(count int, triggers []int) *firstaid.Log {
	log := firstaid.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < count; i++ {
		if trig[i] {
			log.Append("note", strings.Repeat("A", 200), i)
		}
		log.Append("note", fmt.Sprintf("note number %d", i), i)
	}
	return log
}

func main() {
	prog := &notebook{}
	// 600 notes with oversized ones at positions 100, 300 and 500.
	log := prog.Workload(600, []int{100, 300, 500})

	sup := firstaid.New(prog, log, firstaid.Config{})
	stats := sup.Run()

	fmt.Printf("processed %d events in %.1f simulated seconds\n", stats.Events, stats.SimSeconds)
	fmt.Printf("failures: %d (three bug triggers; only the first may fail)\n", stats.Failures)
	fmt.Printf("recoveries: %d, patches generated: %d\n", stats.Recoveries, stats.PatchesMade)

	for _, p := range sup.Pool.Active() {
		fmt.Printf("  %v\n", p)
	}
	if len(sup.Recoveries) > 0 {
		rec := sup.Recoveries[0]
		fmt.Printf("\ndiagnosed: %v after %d diagnostic rollbacks (recovery %.2f ms)\n",
			rec.Result.Findings[0].Bug, rec.Result.Rollbacks,
			float64(rec.RecoveryWall.Microseconds())/1000)
		fmt.Printf("validated: %v\n", rec.Validated)
	}
	if stats.Failures == 1 {
		fmt.Println("\nOK: the runtime patch prevented both later triggers.")
	} else {
		fmt.Println("\nUNEXPECTED: later triggers were not prevented.")
	}
}
