// Webserver: the paper's flagship case study — the Apache 2.0.51 LDAP-cache
// dangling-pointer-read bug (Figure 5) — run under First-Aid.
//
// A cache purge frees nodes through seven call-sites while a recent-results
// index still references them; a later request reads the recycled memory
// and crashes. First-Aid diagnoses the dangling read via Phase-2 binary
// search over deallocation call-sites, delay-frees the seven purge sites,
// validates the patches under randomized allocation, and prints the
// Figure-5-style bug report.
//
//	go run ./examples/webserver
package main

import (
	"fmt"

	"firstaid"
	"firstaid/internal/apps"
)

func main() {
	prog, err := apps.New("apache")
	if err != nil {
		panic(err)
	}
	// ~900 requests with the bug-triggering insert burst at position 230
	// and a second burst later to demonstrate prevention.
	log := prog.Workload(1600, []int{230, 900})

	sup := firstaid.New(prog, log, firstaid.Config{})
	stats := sup.Run()

	fmt.Printf("apache: %d events, %d failure(s), %d recovery(ies), %d patch(es)\n",
		stats.Events, stats.Failures, stats.Recoveries, stats.PatchesMade)
	if stats.Failures == 1 {
		fmt.Println("the second bug trigger was absorbed by the runtime patches")
	}
	fmt.Println()

	if len(sup.Recoveries) > 0 && sup.Recoveries[0].Report != nil {
		fmt.Println(sup.Recoveries[0].Report)
	}
}
