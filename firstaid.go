// Package firstaid is a reproduction of "First-Aid: Surviving and
// Preventing Memory Management Bugs during Production Runs" (Gao, Zhang,
// Tang, Qin — EuroSys 2009) as a Go library.
//
// First-Aid is a lightweight runtime that survives failures caused by
// common memory-management bugs — buffer overflow, dangling pointer
// read/write, double free, uninitialized read — and prevents the same bugs
// from striking again. On a failure it diagnoses the bug class and the
// allocation/deallocation call-sites of the bug-triggering objects by
// rolling back to checkpoints and re-executing under exposing and
// preventive environmental changes; it then generates runtime patches
// (preventive changes scoped to those call-sites), applies them for
// recovery and for all future execution, validates their effect under
// randomized allocation, and emits a detailed bug report.
//
// Because Go's garbage-collected runtime cannot host allocator-level
// patching of C programs, the library is built on a simulated machine: a
// paged virtual memory with copy-on-write snapshots, a Lea-style
// boundary-tag allocator, and deterministic simulated processes that
// allocate and fault exactly the way C programs do. Programs implement the
// Program interface against the Proc API (explicit Malloc/Free, virtual
// call stacks, integrity asserts); see examples/quickstart for a complete
// buggy program surviving under supervision.
//
// # Quick start
//
//	prog := &MyServer{}                      // implements firstaid.Program
//	log := prog.Workload(1000, []int{200})   // inputs with a bug trigger
//	sup := firstaid.New(prog, log, firstaid.Config{})
//	stats := sup.Run()
//	// stats.Failures == 1; the generated patches prevented the rest.
//	fmt.Println(sup.Recoveries[0].Report)
//
// The emulated applications of the paper's evaluation live in
// internal/apps and are runnable through cmd/firstaid-run; every table and
// figure of the paper regenerates through cmd/experiments.
package firstaid

import (
	"firstaid/internal/app"
	"firstaid/internal/baseline"
	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/report"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
	"firstaid/internal/vmem"
)

// Core supervision types.
type (
	// Program is a simulated application: Init builds heap state,
	// Handle processes one input event.
	Program = app.Program
	// App is a Program that can also generate its own workloads.
	App = app.App
	// Supervisor runs a Program under First-Aid.
	Supervisor = core.Supervisor
	// Config tunes a Supervisor.
	Config = core.Config
	// MachineConfig tunes the simulated machine.
	MachineConfig = core.MachineConfig
	// Stats summarises a supervised run.
	Stats = core.Stats
	// Recovery records one failure-recovery episode.
	Recovery = core.Recovery
	// Report is the Figure-5-style bug report.
	Report = report.Report
)

// Machine-facing types used when writing Programs.
type (
	// Proc is the simulated process handle passed to Programs.
	Proc = proc.Proc
	// Fault is a trapped memory error or assertion failure.
	Fault = proc.Fault
	// Event is one recorded input event.
	Event = replay.Event
	// Log is the replayable input log.
	Log = replay.Log
	// Addr is a virtual-memory address.
	Addr = vmem.Addr
)

// Patch management types.
type (
	// Patch is one runtime patch (preventive change + call-site).
	Patch = patch.Patch
	// Pool is the persistent per-program patch store.
	Pool = patch.Pool
)

// Telemetry types. A Registry wired into MachineConfig.Metrics collects
// counters, gauges and histograms from every layer of the runtime plus one
// journal span per recovery episode; Snapshot() renders it all as JSON.
type (
	// Metrics is the telemetry registry (see internal/telemetry).
	Metrics = telemetry.Registry
	// MetricsSnapshot is the JSON view of a registry.
	MetricsSnapshot = telemetry.Snapshot
)

// Execution-trace types. A Tracer wired into MachineConfig.Trace records
// every allocation, page fault, checkpoint, rollback and pipeline phase as
// a cycle-stamped record in a bounded ring; see internal/trace for the
// exporters (Chrome trace-event JSON, text timeline, summarizer) and
// cmd/firstaid-trace for the file tooling.
type (
	// Tracer is the execution-trace ring (see internal/trace).
	Tracer = trace.Tracer
	// TraceRecord is one fixed-size execution-trace record.
	TraceRecord = trace.Record
)

// NewTracer creates an execution tracer retaining about capacity records
// (<= 0 selects the default, 64Ki). Assign it to Config.Machine.Trace
// before New; dump it afterwards:
//
//	trc := firstaid.NewTracer(0)
//	cfg := firstaid.Config{}
//	cfg.Machine.Trace = trc
//	sup := firstaid.New(prog, log, cfg)
//	sup.Run()
//	firstaid.SaveTrace("run.trace", trc)
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// SaveTrace writes the tracer's retained records to path in the binary
// trace format read by firstaid-trace.
func SaveTrace(path string, t *Tracer) error { return trace.WriteFile(path, t.Snapshot()) }

// NewMetrics creates a telemetry registry. Assign it to
// Config.Machine.Metrics before New to instrument a supervised run:
//
//	reg := firstaid.NewMetrics()
//	cfg := firstaid.Config{}
//	cfg.Machine.Metrics = reg
//	sup := firstaid.New(prog, log, cfg)
//	sup.Run()
//	out, _ := reg.Snapshot().JSON()
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// BugType identifies a memory-management bug class.
type BugType = mmbug.Type

// Bug classes (paper Table 1).
const (
	BufferOverflow = mmbug.BufferOverflow
	DanglingWrite  = mmbug.DanglingWrite
	DanglingRead   = mmbug.DanglingRead
	DoubleFree     = mmbug.DoubleFree
	UninitRead     = mmbug.UninitRead
)

// New creates a Supervisor for prog over the input log.
func New(prog Program, log *Log, cfg Config) *Supervisor {
	return core.NewSupervisor(prog, log, cfg)
}

// NewLog returns an empty input log.
func NewLog() *Log { return replay.NewLog() }

// NewPool creates an empty patch pool for the named program.
func NewPool(program string) *Pool { return patch.NewPool(program) }

// LoadPool reads a patch pool persisted with Pool.SaveFile — the mechanism
// by which patches protect subsequent runs and other processes of the same
// program.
func LoadPool(path string) (*Pool, error) { return patch.LoadFile(path) }

// Baseline recovery disciplines (for comparison experiments).
type (
	// Rx is the rollback + whole-heap environmental-change baseline.
	Rx = baseline.Rx
	// Restart is the kill-and-relaunch baseline.
	Restart = baseline.Restart
)

// NewRx creates an Rx-supervised run of prog.
func NewRx(prog Program, log *Log, cfg MachineConfig) *Rx {
	return baseline.NewRx(prog, log, cfg)
}

// NewRestart creates a restart-disciplined run of prog.
func NewRestart(prog Program, log *Log, cfg MachineConfig) *Restart {
	return baseline.NewRestart(prog, log, cfg)
}
