package firstaid_test

import (
	"path/filepath"
	"testing"

	"firstaid"
	"firstaid/internal/apps"
)

// miniApp is a minimal Program written purely against the public API,
// proving the exported surface is sufficient to build and supervise a
// program (the quickstart example, in test form).
type miniApp struct{}

func (m *miniApp) Name() string             { return "mini" }
func (m *miniApp) Bugs() []firstaid.BugType { return []firstaid.BugType{firstaid.BufferOverflow} }
func (m *miniApp) Init(p *firstaid.Proc) {
	defer p.Enter("main")()
	p.SetRoot(0, 0)
}

func (m *miniApp) Handle(p *firstaid.Proc, ev firstaid.Event) {
	defer p.Enter("serve")()
	p.Tick(100_000)
	buf := func() firstaid.Addr {
		defer p.Enter("buf_alloc")()
		return p.Malloc(32)
	}()
	guard := func() firstaid.Addr {
		defer p.Enter("guard_alloc")()
		return p.Malloc(24)
	}()
	p.StoreU32(guard, 0xFEEDFACE)
	p.StoreString(buf, ev.Data) // no bounds check
	p.At("check")
	p.Assert(p.LoadU32(guard) == 0xFEEDFACE, "guard corrupted")
	p.Free(guard)
	p.Free(buf)
}

func (m *miniApp) Workload(n int, triggers []int) *firstaid.Log {
	log := firstaid.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < n; i++ {
		data := "short"
		if trig[i] {
			data = "this payload is far longer than the thirty-two byte buffer can hold!"
		}
		log.Append("req", data, i)
	}
	return log
}

func TestPublicAPISuperviseCustomProgram(t *testing.T) {
	prog := &miniApp{}
	log := prog.Workload(300, []int{80, 200})
	sup := firstaid.New(prog, log, firstaid.Config{})
	stats := sup.Run()
	if stats.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (second trigger prevented)", stats.Failures)
	}
	if stats.PatchesMade != 1 {
		t.Fatalf("patches = %d", stats.PatchesMade)
	}
	rec := sup.Recoveries[0]
	if !rec.Validated || rec.Report == nil {
		t.Fatalf("recovery incomplete: %+v", rec)
	}
	if rec.Result.Findings[0].Bug != firstaid.BufferOverflow {
		t.Fatalf("diagnosed %v", rec.Result.Findings[0].Bug)
	}
}

func TestPublicAPIPoolPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.json")
	prog := &miniApp{}
	sup := firstaid.New(prog, prog.Workload(200, []int{80}), firstaid.Config{})
	sup.Run()
	if err := sup.Pool.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	pool, err := firstaid.LoadPool(path)
	if err != nil {
		t.Fatal(err)
	}
	prog2 := &miniApp{}
	sup2 := firstaid.New(prog2, prog2.Workload(200, []int{50}), firstaid.Config{Pool: pool})
	if st := sup2.Run(); st.Failures != 0 {
		t.Fatalf("inherited patches did not protect: %+v", st)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	a, _ := apps.New("squid")
	rx := firstaid.NewRx(a, a.Workload(500, []int{150, 350}), firstaid.MachineConfig{})
	if st := rx.Run(); st.Failures != 2 || st.Recoveries != 2 {
		t.Fatalf("rx stats = %+v", st)
	}

	b, _ := apps.New("squid")
	rs := firstaid.NewRestart(b, b.Workload(500, []int{150, 350}), firstaid.MachineConfig{})
	if st := rs.Run(); st.Failures != 2 || st.Restarts != 2 {
		t.Fatalf("restart stats = %+v", st)
	}
}

func TestPublicAPIParallelValidation(t *testing.T) {
	prog := &miniApp{}
	sup := firstaid.New(prog, prog.Workload(300, []int{80}), firstaid.Config{ParallelValidation: true})
	sup.Run()
	if len(sup.Recoveries) != 1 || !sup.Recoveries[0].Validated {
		t.Fatalf("parallel validation through public API failed: %+v", sup.Recoveries)
	}
}
