module firstaid

go 1.22
