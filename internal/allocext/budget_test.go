package allocext

import (
	"testing"

	"firstaid/internal/callsite"
)

func TestMaxPatchBytesDisablesPatching(t *testing.T) {
	f := newFixture(t)
	f.ext.MaxPatchBytes = 4096 // a handful of padded objects
	patches := &fakePatches{
		alloc: map[callsite.ID]AllocAction{f.site: {Pad: true}},
	}
	f.ext.SetPatches(patches)

	// Padded objects cost ~1 KiB each; the budget trips after ~4.
	var padded, plain int
	for i := 0; i < 20; i++ {
		a, err := f.ext.Malloc(64, f.site)
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := f.ext.Object(a)
		if obj.PadFront > 0 {
			padded++
		} else {
			plain++
		}
	}
	if padded == 0 {
		t.Fatal("no object was ever patched")
	}
	if plain == 0 {
		t.Fatal("budget never tripped: all 20 objects padded")
	}
	if !f.ext.PatchingDisabled() {
		t.Fatal("PatchingDisabled not latched")
	}

	// Re-enabling restores patching.
	f.ext.ResetPatchBudget()
	f.ext.MaxPatchBytes = 1 << 30
	a, _ := f.ext.Malloc(64, f.site)
	if obj, _ := f.ext.Object(a); obj.PadFront == 0 {
		t.Fatal("patching not restored after budget reset")
	}
}

func TestZeroMaxPatchBytesMeansUnlimited(t *testing.T) {
	f := newFixture(t)
	patches := &fakePatches{
		alloc: map[callsite.ID]AllocAction{f.site: {Pad: true}},
	}
	f.ext.SetPatches(patches)
	for i := 0; i < 50; i++ {
		a, err := f.ext.Malloc(64, f.site)
		if err != nil {
			t.Fatal(err)
		}
		if obj, _ := f.ext.Object(a); obj.PadFront == 0 {
			t.Fatal("patching stopped without a budget")
		}
	}
}

func TestDiagnosticModeIgnoresPatchBudget(t *testing.T) {
	// Environmental changes during diagnosis are not "patching"; the
	// budget must not interfere with recovery itself.
	f := newFixture(t)
	f.ext.MaxPatchBytes = 1 // absurdly small
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(AllPreventive())
	a, err := f.ext.Malloc(64, f.site)
	if err != nil {
		t.Fatal(err)
	}
	if obj, _ := f.ext.Object(a); obj.PadFront == 0 {
		t.Fatal("diagnostic changes suppressed by patch budget")
	}
}
