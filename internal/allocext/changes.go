// Environmental changes (paper Table 1): the preventive and exposing
// actions First-Aid applies at allocation and deallocation time, and the
// ChangeSet machinery that scopes them to all objects, to specific
// call-sites, or to half of a candidate set during the Phase-2 binary
// search.
package allocext

import (
	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
)

// AllocAction is the set of changes applied when an object is allocated.
type AllocAction struct {
	Pad       bool // add padding to both ends (preventive: buffer overflow)
	PadCanary bool // fill the padding with canary (exposing: buffer overflow); implies Pad
	Zero      bool // zero-fill the payload (preventive: uninitialized read)
	CanaryNew bool // canary-fill the payload (exposing: uninitialized read)
}

// Or merges two actions. Exposing wins over plain preventive for the same
// mechanism (canary-filled padding is still padding).
func (a AllocAction) Or(b AllocAction) AllocAction {
	return AllocAction{
		Pad:       a.Pad || b.Pad || a.PadCanary || b.PadCanary,
		PadCanary: a.PadCanary || b.PadCanary,
		Zero:      a.Zero || b.Zero,
		CanaryNew: a.CanaryNew || b.CanaryNew,
	}
}

// Any reports whether the action does anything.
func (a AllocAction) Any() bool { return a.Pad || a.PadCanary || a.Zero || a.CanaryNew }

// FreeAction is the set of changes applied when an object is deallocated.
type FreeAction struct {
	Delay      bool // delay recycling (preventive: dangling r/w, double free)
	CanaryFill bool // fill the delayed object with canary (exposing: dangling r/w); implies Delay
}

// Or merges two actions.
func (a FreeAction) Or(b FreeAction) FreeAction {
	return FreeAction{
		Delay:      a.Delay || b.Delay || a.CanaryFill || b.CanaryFill,
		CanaryFill: a.CanaryFill || b.CanaryFill,
	}
}

// Any reports whether the action does anything.
func (a FreeAction) Any() bool { return a.Delay || a.CanaryFill }

// PreventiveAlloc returns the allocation-time preventive change for the bug
// class, with ok=false if the class is prevented at deallocation instead.
func PreventiveAlloc(b mmbug.Type) (AllocAction, bool) {
	switch b {
	case mmbug.BufferOverflow:
		return AllocAction{Pad: true}, true
	case mmbug.UninitRead:
		return AllocAction{Zero: true}, true
	}
	return AllocAction{}, false
}

// PreventiveFree returns the deallocation-time preventive change for the
// bug class.
func PreventiveFree(b mmbug.Type) (FreeAction, bool) {
	switch b {
	case mmbug.DanglingRead, mmbug.DanglingWrite, mmbug.DoubleFree:
		return FreeAction{Delay: true}, true
	}
	return FreeAction{}, false
}

// ExposingAlloc returns the allocation-time exposing change for the bug
// class.
func ExposingAlloc(b mmbug.Type) (AllocAction, bool) {
	switch b {
	case mmbug.BufferOverflow:
		return AllocAction{Pad: true, PadCanary: true}, true
	case mmbug.UninitRead:
		return AllocAction{CanaryNew: true}, true
	}
	return AllocAction{}, false
}

// ExposingFree returns the deallocation-time exposing change for the bug
// class. Double free has no fill component: its exposing change is the
// deallocation parameter check, which the extension performs whenever it is
// in diagnostic mode.
func ExposingFree(b mmbug.Type) (FreeAction, bool) {
	switch b {
	case mmbug.DanglingRead, mmbug.DanglingWrite:
		return FreeAction{Delay: true, CanaryFill: true}, true
	case mmbug.DoubleFree:
		return FreeAction{Delay: true}, true
	}
	return FreeAction{}, false
}

// ChangeSet is the collection of environmental changes active during one
// diagnostic re-execution. Each rule applies an action either to every
// object (Sites == nil) or to objects allocated/deallocated at the given
// call-sites.
type ChangeSet struct {
	allocRules []allocRule
	freeRules  []freeRule
}

type allocRule struct {
	sites *callsite.Set // nil means all call-sites
	act   AllocAction
}

type freeRule struct {
	sites *callsite.Set
	act   FreeAction
}

// NewChangeSet returns an empty change set (no environmental changes: the
// configuration of the Phase-1 "plain re-execution" that screens for
// non-deterministic bugs).
func NewChangeSet() *ChangeSet { return &ChangeSet{} }

// AddAlloc scopes an allocation-time action to sites (nil = all).
func (cs *ChangeSet) AddAlloc(sites *callsite.Set, act AllocAction) *ChangeSet {
	cs.allocRules = append(cs.allocRules, allocRule{sites: sites, act: act})
	return cs
}

// AddFree scopes a deallocation-time action to sites (nil = all).
func (cs *ChangeSet) AddFree(sites *callsite.Set, act FreeAction) *ChangeSet {
	cs.freeRules = append(cs.freeRules, freeRule{sites: sites, act: act})
	return cs
}

// AddPreventive adds the preventive change for bug class b scoped to sites.
func (cs *ChangeSet) AddPreventive(b mmbug.Type, sites *callsite.Set) *ChangeSet {
	if act, ok := PreventiveAlloc(b); ok {
		cs.AddAlloc(sites, act)
	}
	if act, ok := PreventiveFree(b); ok {
		cs.AddFree(sites, act)
	}
	return cs
}

// AddExposing adds the exposing change for bug class b scoped to sites.
func (cs *ChangeSet) AddExposing(b mmbug.Type, sites *callsite.Set) *ChangeSet {
	if act, ok := ExposingAlloc(b); ok {
		cs.AddAlloc(sites, act)
	}
	if act, ok := ExposingFree(b); ok {
		cs.AddFree(sites, act)
	}
	return cs
}

// AllPreventive returns a change set with every preventive change applied
// to every object — the Phase-1 probe for "is this failure patchable from
// this checkpoint at all".
func AllPreventive() *ChangeSet {
	cs := NewChangeSet()
	for _, b := range mmbug.All {
		cs.AddPreventive(b, nil)
	}
	return cs
}

// AllPreventiveCanaried is AllPreventive with the overflow padding
// canary-filled: prevention is unchanged, but any write landing in a pad
// leaves evidence. The Phase-1 checkpoint probe uses it so that a
// checkpoint whose apparent success only means a *pre-checkpoint* object's
// overflow was absorbed by a neighbour's front padding is rejected — the
// allocation that needs the patch predates the checkpoint, exactly the
// §4.1 misidentification the heap marks cannot see inside allocated space.
func AllPreventiveCanaried() *ChangeSet {
	cs := NewChangeSet()
	for _, b := range mmbug.All {
		if b == mmbug.BufferOverflow {
			cs.AddAlloc(nil, AllocAction{Pad: true, PadCanary: true})
			continue
		}
		cs.AddPreventive(b, nil)
	}
	return cs
}

// AllocFor resolves the merged allocation action for a call-site.
func (cs *ChangeSet) AllocFor(site callsite.ID) AllocAction {
	var act AllocAction
	for _, r := range cs.allocRules {
		if r.sites == nil || r.sites.Contains(site) {
			act = act.Or(r.act)
		}
	}
	return act
}

// FreeFor resolves the merged deallocation action for a call-site.
func (cs *ChangeSet) FreeFor(site callsite.ID) FreeAction {
	var act FreeAction
	for _, r := range cs.freeRules {
		if r.sites == nil || r.sites.Contains(site) {
			act = act.Or(r.act)
		}
	}
	return act
}

// Empty reports whether the set contains no rules.
func (cs *ChangeSet) Empty() bool {
	return len(cs.allocRules) == 0 && len(cs.freeRules) == 0
}
