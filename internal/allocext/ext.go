// Package allocext implements First-Aid's lightweight memory allocator
// extension (paper §3).
//
// The extension wraps the underlying Lea-style allocator and operates in
// one of three modes:
//
//   - normal mode: each allocation/deallocation call-site is checked
//     against the patch pool; matching preventive changes are applied.
//   - diagnostic mode: preventive and exposing changes from a ChangeSet
//     are applied to all or a subset of objects, multi-level call-site
//     information is collected, and deallocation parameters are checked
//     for double frees.
//   - validation mode: allocation is randomized and full traces of memory
//     management operations, patch triggers and illegal accesses are kept.
//
// Every object carries 16 bytes of in-heap metadata (magic, allocation
// call-site, user size, flags) — the figure behind the paper's Table 6
// space-overhead measurements. Padding adds 1016 bytes around an object
// (Table 5); delay-freed objects accumulate until a configurable threshold
// (1 MB in the paper's experiments) and are then recycled oldest-first.
package allocext

import (
	"fmt"

	"firstaid/internal/callsite"
	"firstaid/internal/canary"
	"firstaid/internal/guard"
	"firstaid/internal/heap"
	"firstaid/internal/mmbug"
	"firstaid/internal/vmem"
)

// Mode selects the extension's operating mode.
type Mode int

// Operating modes.
const (
	ModeNormal Mode = iota
	ModeDiagnostic
	ModeValidation
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeDiagnostic:
		return "diagnostic"
	case ModeValidation:
		return "validation"
	}
	return "unknown"
}

// Object metadata layout constants.
const (
	// HeaderLen is the in-heap metadata added to every object.
	HeaderLen = 16
	// PadFront and PadBack are the padding sizes of the add-padding
	// change; together 1016 bytes, matching the paper's Table 5.
	PadFront = 512
	PadBack  = 504

	headerMagic = 0xFA1D0BEE // "First-AID OBject
)

// PatchSource supplies the preventive actions of currently-installed
// runtime patches; package patch implements it. A nil PatchSource means no
// patches are installed.
type PatchSource interface {
	// AllocPatch returns the allocation-time action patched at site.
	AllocPatch(site callsite.ID) (AllocAction, bool)
	// FreePatch returns the deallocation-time action patched at site.
	FreePatch(site callsite.ID) (FreeAction, bool)
}

// Object is the extension's record of one allocated (or delay-freed)
// object.
type Object struct {
	User      vmem.Addr // address returned to the program
	Base      vmem.Addr // underlying heap payload (= metadata header address)
	UserSize  uint32
	PadFront  uint32
	PadBack   uint32
	AllocSite callsite.ID
	FreeSite  callsite.ID // set when delay-freed
	Alloc     AllocAction // actions applied at allocation
	Free      FreeAction  // actions applied at deallocation
	Delayed   bool        // currently delay-freed
	Protected bool        // Selfie-style sensitive region: always canaried, eagerly validated
	Guarded   bool        // backed by a sampled guard-page slot, not the raw heap
	written   []uint64    // per-byte init bitmap (validation of zero-fill patches)
}

func (o *Object) overhead() uint64 {
	return uint64(HeaderLen) + uint64(o.PadFront) + uint64(o.PadBack)
}

// totalLen is the full heap payload length backing the object.
func (o *Object) totalLen() uint32 {
	return HeaderLen + o.PadFront + o.UserSize + o.PadBack
}

type markRange struct {
	addr vmem.Addr
	n    int
}

// extState is the checkpointable part of the extension.
type extState struct {
	objects    map[vmem.Addr]*Object // by user address; live and delay-freed
	delayQ     []vmem.Addr           // FIFO of delay-freed user addresses
	delayBytes uint64
	freed      map[vmem.Addr]callsite.ID // first-free site of recently freed addrs
	freedOrder []vmem.Addr               // FIFO cap for freed
	padded     []vmem.Addr               // live canary-padded objects (scan registry)
	protected  []vmem.Addr               // sensitive-region objects (eager-validation registry)
	marks      []markRange               // Phase-1 heap-marking regions
	metaBytes  uint64                    // current metadata+padding overhead
	metaPeak   uint64
	padBytes   uint64 // current padding bytes (live + delayed objects)
	padPeak    uint64 // peak concurrent padding bytes (Table 5)
}

const freedCap = 4096

func newExtState() extState {
	return extState{
		objects: make(map[vmem.Addr]*Object),
		freed:   make(map[vmem.Addr]callsite.ID),
	}
}

// clone deep-copies the state for a checkpoint.
func (s *extState) clone() extState {
	cp := extState{
		objects:    make(map[vmem.Addr]*Object, len(s.objects)),
		delayQ:     append([]vmem.Addr(nil), s.delayQ...),
		delayBytes: s.delayBytes,
		freed:      make(map[vmem.Addr]callsite.ID, len(s.freed)),
		freedOrder: append([]vmem.Addr(nil), s.freedOrder...),
		padded:     append([]vmem.Addr(nil), s.padded...),
		protected:  append([]vmem.Addr(nil), s.protected...),
		marks:      append([]markRange(nil), s.marks...),
		metaBytes:  s.metaBytes,
		metaPeak:   s.metaPeak,
		padBytes:   s.padBytes,
		padPeak:    s.padPeak,
	}
	for k, o := range s.objects {
		oc := *o
		if o.written != nil {
			oc.written = append([]uint64(nil), o.written...)
		}
		cp.objects[k] = &oc
	}
	for k, v := range s.freed {
		cp.freed[k] = v
	}
	return cp
}

// Ext is the allocator extension.
type Ext struct {
	H     *heap.Heap
	Sites *callsite.Table

	mode    Mode
	changes *ChangeSet  // diagnostic mode
	patches PatchSource // normal and validation modes
	s       extState

	// DelayLimit caps the memory held by delay-freed objects; beyond it
	// the oldest are recycled ("1 MB in our experiments", §7.6.1).
	DelayLimit uint64

	// MaxPatchBytes, when non-zero, disables runtime patching entirely
	// once the extension's space overhead (metadata + padding + delayed
	// objects) exceeds it — the paper's §2 escape hatch: "First-Aid can
	// disable runtime patching … when the memory usage reaches a
	// user-defined threshold. First-Aid allows users to decide how much
	// extra memory space they are willing to pay for better system
	// reliability."
	MaxPatchBytes uint64

	// patchingDisabled latches once MaxPatchBytes is crossed.
	patchingDisabled bool

	manifests ManifestSet
	trace     *Trace // non-nil in validation mode

	// lifetime patch-trigger counters (not rolled back), for Tables 4/5.
	triggers map[callsite.ID]uint64

	// guard, when non-nil, is the sampled guard-page tier: a configurable
	// 1/N of Malloc requests is redirected to guard-page-backed slots
	// instead of the raw heap. Nil keeps the hot path a single pointer
	// check (the telemetry/trace off-discipline).
	guard *guard.Guard

	// watch is a Base-sorted index of "interesting" objects (padded,
	// delay-freed, or init-tracked) used by validation-mode access
	// classification; rebuilt lazily when dirty.
	watch      []*Object
	watchDirty bool

	// Call-sites observed since ResetSeen, in first-seen order: the
	// Phase-2 binary search's candidate sets ("a search range covering
	// all N call-sites after the checkpoint", §4.2).
	seenAllocOrder []callsite.ID
	seenFreeOrder  []callsite.ID
	seenAlloc      map[callsite.ID]bool
	seenFree       map[callsite.ID]bool

	// cost accumulates the simulated cycles the extension itself spends
	// (patch-pool lookups, metadata maintenance, fills); the process
	// drains it via TakeCost after each request. This is the source of
	// the "allocator" bars in the paper's Figure 6.
	cost uint64
}

// New wraps the allocator h. Site information is interned in sites, which
// must be the same table the process uses.
func New(h *heap.Heap, sites *callsite.Table) *Ext {
	return &Ext{
		H:          h,
		Sites:      sites,
		changes:    NewChangeSet(),
		s:          newExtState(),
		DelayLimit: 1 << 20,
		triggers:   map[callsite.ID]uint64{},
	}
}

// Mode returns the current operating mode.
func (e *Ext) Mode() Mode { return e.mode }

// SetMode switches the operating mode.
func (e *Ext) SetMode(m Mode) { e.mode = m }

// SetChanges installs the diagnostic-mode change set.
func (e *Ext) SetChanges(cs *ChangeSet) {
	if cs == nil {
		cs = NewChangeSet()
	}
	e.changes = cs
}

// SetPatches installs the patch source consulted in normal and validation
// modes.
func (e *Ext) SetPatches(p PatchSource) { e.patches = p }

// BeginTrace starts validation tracing; EndTrace returns and detaches the
// trace.
func (e *Ext) BeginTrace() { e.trace = NewTrace() }

// EndTrace stops tracing and returns the collected trace.
func (e *Ext) EndTrace() *Trace {
	t := e.trace
	e.trace = nil
	return t
}

// Manifests returns the manifestations observed since the last reset.
func (e *Ext) Manifests() *ManifestSet { return &e.manifests }

// ResetManifests clears observed manifestations (before a re-execution).
func (e *Ext) ResetManifests() { e.manifests = ManifestSet{} }

// Cost-model constants (cycles). The fixed per-request overhead models the
// patch-pool query and the 16-byte metadata bookkeeping; fills cost per
// byte like any memory traffic.
const (
	costPerRequest  = 38 // pool lookup + header write/check
	costFillPerByte = 4  // zero/canary fill, per 8 bytes
)

// TakeCost drains the extension's accumulated cycle cost; package proc
// charges it to the process clock after each request.
func (e *Ext) TakeCost() uint64 {
	c := e.cost
	e.cost = 0
	return c
}

func (e *Ext) chargeFill(n int) { e.cost += uint64(n) / 8 * costFillPerByte }

// ResetSeen clears the observed call-site sets (before a re-execution).
func (e *Ext) ResetSeen() {
	e.seenAllocOrder, e.seenFreeOrder = nil, nil
	e.seenAlloc = make(map[callsite.ID]bool)
	e.seenFree = make(map[callsite.ID]bool)
}

// SeenAllocSites returns the allocation call-sites observed since
// ResetSeen, in first-seen order.
func (e *Ext) SeenAllocSites() []callsite.ID {
	return append([]callsite.ID(nil), e.seenAllocOrder...)
}

// SeenFreeSites returns the deallocation call-sites observed since
// ResetSeen, in first-seen order.
func (e *Ext) SeenFreeSites() []callsite.ID {
	return append([]callsite.ID(nil), e.seenFreeOrder...)
}

func (e *Ext) noteSeen(site callsite.ID, alloc bool) {
	if e.seenAlloc == nil {
		return
	}
	if alloc {
		if !e.seenAlloc[site] {
			e.seenAlloc[site] = true
			e.seenAllocOrder = append(e.seenAllocOrder, site)
		}
	} else if !e.seenFree[site] {
		e.seenFree[site] = true
		e.seenFreeOrder = append(e.seenFreeOrder, site)
	}
}

// Triggers returns the lifetime patch trigger counts by application point.
func (e *Ext) Triggers() map[callsite.ID]uint64 { return e.triggers }

// ResetTriggers clears the lifetime trigger counters.
func (e *Ext) ResetTriggers() { e.triggers = map[callsite.ID]uint64{} }

// SetGuard attaches the sampled guard-page tier (nil detaches). Attach
// before any allocation and before SetState: the guard's sampling-decision
// state checkpoints together with the extension's.
func (e *Ext) SetGuard(g *guard.Guard) { e.guard = g }

// Guard returns the attached guard tier (nil when sampling is off).
func (e *Ext) Guard() *guard.Guard { return e.guard }

// GuardHit classifies a trapped unmapped-page access against the guard
// tier's live and quarantined slots; ok is false when sampling is off or
// the address belongs to no guarded slot.
func (e *Ext) GuardHit(addr vmem.Addr, n int, write bool) (guard.Hit, bool) {
	if e.guard == nil {
		return guard.Hit{}, false
	}
	return e.guard.Hit(addr, n, write)
}

// GuardBoost promotes a call-site to the guard tier's always-sample set
// (no-op when sampling is off).
func (e *Ext) GuardBoost(site callsite.ID) {
	if e.guard != nil {
		e.guard.Boost(site)
	}
}

// extCheckpoint bundles the extension state with the guard tier's
// sampling-decision state: re-execution must replay the exact same
// sampling decisions or guarded layouts would diverge across rollbacks.
type extCheckpoint struct {
	ext   extState
	guard interface{}
}

// State snapshots the extension for a checkpoint.
func (e *Ext) State() interface{} {
	st := e.s.clone()
	if e.guard == nil {
		return &st
	}
	return &extCheckpoint{ext: st, guard: e.guard.State()}
}

// SetState restores a snapshot taken by State.
func (e *Ext) SetState(v interface{}) {
	switch st := v.(type) {
	case *extState:
		e.s = st.clone()
	case *extCheckpoint:
		e.s = st.ext.clone()
		if e.guard != nil {
			e.guard.SetState(st.guard)
		}
	default:
		panic("allocext: unknown checkpoint state type")
	}
	e.watchDirty = true
}

// --- statistics -------------------------------------------------------------

// LiveObjects returns the number of live (non-delayed) objects.
func (e *Ext) LiveObjects() int {
	n := 0
	for _, o := range e.s.objects {
		if !o.Delayed {
			n++
		}
	}
	return n
}

// DelayedBytes returns the memory currently held by delay-freed objects.
func (e *Ext) DelayedBytes() uint64 { return e.s.delayBytes }

// DelayedObjects returns the number of delay-freed objects held.
func (e *Ext) DelayedObjects() int { return len(e.s.delayQ) }

// MetaBytes returns the current metadata+padding overhead in bytes.
func (e *Ext) MetaBytes() uint64 { return e.s.metaBytes }

// MetaPeak returns the peak metadata+padding overhead.
func (e *Ext) MetaPeak() uint64 { return e.s.metaPeak }

// PadPeak returns the peak concurrent padding bytes (Table 5's padding
// space overhead).
func (e *Ext) PadPeak() uint64 { return e.s.padPeak }

// --- action resolution -------------------------------------------------------

// patchBudgetOK enforces MaxPatchBytes; once latched, patches stay off
// until ResetPatchBudget (a policy decision left to the operator).
func (e *Ext) patchBudgetOK() bool {
	if e.patchingDisabled {
		return false
	}
	if e.MaxPatchBytes != 0 && e.s.metaBytes+e.s.delayBytes > e.MaxPatchBytes {
		e.patchingDisabled = true
		return false
	}
	return true
}

// PatchingDisabled reports whether the space budget shut patching off.
func (e *Ext) PatchingDisabled() bool { return e.patchingDisabled }

// ResetPatchBudget re-enables patching after a budget trip.
func (e *Ext) ResetPatchBudget() { e.patchingDisabled = false }

func (e *Ext) allocActionFor(site callsite.ID) (act AllocAction, patched bool) {
	switch e.mode {
	case ModeDiagnostic:
		return e.changes.AllocFor(site), false
	default:
		if e.patches != nil && e.patchBudgetOK() {
			if a, ok := e.patches.AllocPatch(site); ok {
				return a, true
			}
		}
		return AllocAction{}, false
	}
}

func (e *Ext) freeActionFor(site callsite.ID) (act FreeAction, patched bool) {
	switch e.mode {
	case ModeDiagnostic:
		return e.changes.FreeFor(site), false
	default:
		if e.patches != nil && e.patchBudgetOK() {
			if a, ok := e.patches.FreePatch(site); ok {
				return a, true
			}
		}
		return FreeAction{}, false
	}
}

// paramCheckActive reports whether the deallocation parameter check guards
// this free site: in diagnostic mode whenever environmental changes are
// active (the check is double free's exposing change, Table 1 — but a
// *plain* re-execution must reproduce the original crash), and in
// normal/validation mode when a delay-free patch is installed at the site.
func (e *Ext) paramCheckActive(site callsite.ID) bool {
	if e.mode == ModeDiagnostic {
		return !e.changes.Empty()
	}
	if e.patches != nil {
		if a, ok := e.patches.FreePatch(site); ok && a.Delay {
			return true
		}
	}
	return false
}

// --- allocation ---------------------------------------------------------------

// Malloc implements the allocation half of proc.MM.
func (e *Ext) Malloc(n uint32, site callsite.ID) (vmem.Addr, error) {
	e.noteSeen(site, true)
	e.cost += costPerRequest
	act, patched := e.allocActionFor(site)
	var user vmem.Addr
	var err error
	if e.guard != nil && e.guard.Decide(n, site) {
		user, err = e.guardMalloc(n, site, act)
	} else {
		user, err = e.mallocWithAction(n, site, act)
	}
	if err != nil {
		return 0, err
	}
	if patched {
		e.triggers[site]++
	}
	if e.trace != nil {
		e.trace.Ops = append(e.trace.Ops, MMOp{Alloc: true, Site: site, Addr: user, Size: n, Patched: patched && act.Any()})
		if patched && act.Any() {
			e.trace.Triggers[site]++
		}
	}
	return user, nil
}

// mallocWithAction carves and initialises one object with an explicit
// action set; the action-resolution and patch-accounting policy stays with
// the callers (Malloc, and Protect's guarded migration).
func (e *Ext) mallocWithAction(n uint32, site callsite.ID, act AllocAction) (vmem.Addr, error) {
	var padF, padB uint32
	if act.Pad || act.PadCanary {
		padF, padB = PadFront, PadBack
	}
	total := HeaderLen + padF + n + padB
	base, err := e.H.Malloc(total)
	if err != nil {
		return 0, err
	}
	mem := e.H.Mem()
	user := base + HeaderLen + padF

	// In-heap metadata header.
	if err := mem.WriteU32(base, headerMagic); err != nil {
		return 0, err
	}
	mem.WriteU32(base+4, uint32(site))
	mem.WriteU32(base+8, n)
	var flags uint32
	if padF > 0 {
		flags |= 1
	}
	mem.WriteU32(base+12, flags)

	if act.PadCanary {
		canary.Fill(mem, base+HeaderLen, int(padF), canary.Pad)
		canary.Fill(mem, user+n, int(padB), canary.Pad)
		e.chargeFill(int(padF) + int(padB))
	}
	if act.Zero {
		mem.Fill(user, 0, int(n))
		e.chargeFill(int(n))
	}
	if act.CanaryNew {
		canary.Fill(mem, user, int(n), canary.Fresh)
		e.chargeFill(int(n))
	}

	obj := &Object{
		User:      user,
		Base:      base,
		UserSize:  n,
		PadFront:  padF,
		PadBack:   padB,
		AllocSite: site,
		Alloc:     act,
	}
	if e.mode == ModeValidation && act.Zero {
		obj.written = make([]uint64, (n+63)/64)
	}
	e.s.objects[user] = obj
	if act.PadCanary {
		e.s.padded = append(e.s.padded, user)
	}
	e.accountAlloc(obj)
	e.markWatchDirtyFor(obj)

	// The address may recycle a previously freed object's slot; the old
	// "freed" record is now stale.
	delete(e.s.freed, user)
	e.dropMarksNear(base, total)
	return user, nil
}

// guardMalloc places one sampled object in a guard-page-backed vmem slot
// instead of the raw heap. The object honours the same action set as the
// heap path (padding, canaries, zero fill, identical fill costs) so that a
// diagnostic probe's environmental changes behave identically on sampled
// objects — but it writes no in-heap metadata header: the slot's bounds
// live in the guard tier, and Object.Base is the *virtual* header position
// (used only in address comparisons, never dereferenced). On guard-zone
// exhaustion the request falls back to the raw heap.
func (e *Ext) guardMalloc(n uint32, site callsite.ID, act AllocAction) (vmem.Addr, error) {
	var padF, padB uint32
	if act.Pad || act.PadCanary {
		padF, padB = PadFront, PadBack
	}
	sl, err := e.guard.Alloc(n, padF, padB, site)
	if err != nil {
		return e.mallocWithAction(n, site, act)
	}
	mem := e.H.Mem()
	user := sl.User

	if act.PadCanary {
		canary.Fill(mem, user-vmem.Addr(padF), int(padF), canary.Pad)
		canary.Fill(mem, user+vmem.Addr(n), int(padB), canary.Pad)
		e.chargeFill(int(padF) + int(padB))
	}
	if act.Zero {
		mem.Fill(user, 0, int(n))
		e.chargeFill(int(n))
	}
	if act.CanaryNew {
		canary.Fill(mem, user, int(n), canary.Fresh)
		e.chargeFill(int(n))
	}

	obj := &Object{
		User:      user,
		Base:      user - vmem.Addr(padF) - HeaderLen,
		UserSize:  n,
		PadFront:  padF,
		PadBack:   padB,
		AllocSite: site,
		Alloc:     act,
		Guarded:   true,
	}
	if e.mode == ModeValidation && act.Zero {
		obj.written = make([]uint64, (n+63)/64)
	}
	e.s.objects[user] = obj
	if act.PadCanary {
		e.s.padded = append(e.s.padded, user)
	}
	e.accountAlloc(obj)
	e.markWatchDirtyFor(obj)
	return user, nil
}

func (e *Ext) accountAlloc(o *Object) {
	e.s.metaBytes += o.overhead()
	if e.s.metaBytes > e.s.metaPeak {
		e.s.metaPeak = e.s.metaBytes
	}
	if pad := uint64(o.PadFront) + uint64(o.PadBack); pad > 0 {
		e.s.padBytes += pad
		if e.s.padBytes > e.s.padPeak {
			e.s.padPeak = e.s.padBytes
		}
	}
}

// accountRelease reverses accountAlloc when an object's memory is actually
// returned to the raw allocator.
func (e *Ext) accountRelease(o *Object) {
	e.s.metaBytes -= o.overhead()
	e.s.padBytes -= uint64(o.PadFront) + uint64(o.PadBack)
}

// --- deallocation --------------------------------------------------------------

// Free implements the deallocation half of proc.MM.
func (e *Ext) Free(ptr vmem.Addr, site callsite.ID) error {
	e.noteSeen(site, false)
	e.cost += costPerRequest
	obj, ok := e.s.objects[ptr]
	if !ok {
		// Not a live object: double free of a fully-recycled pointer,
		// or a wild free.
		if first, wasFreed := e.s.freed[ptr]; wasFreed {
			// The patch application point is the *first* deallocation
			// site — the premature free that characterises the
			// bug-triggering objects; delaying there keeps the object
			// alive so the re-free is caught by the parameter check.
			e.manifests.Add(Manifestation{
				Bug:      mmbug.DoubleFree,
				FreeSite: first,
				Addr:     ptr,
				Detail:   fmt.Sprintf("object freed at site %d re-freed at site %d", first, site),
			})
			// The parameter check guards the re-free when the patch covers
			// either site: the re-free's own, or the first deallocation
			// site — the patch application point. The latter matters when
			// the recovery checkpoint falls between the two frees: the
			// first free is then history (executed unpatched, before the
			// checkpoint), so only its site's patch can vouch for this
			// pointer. Found by the chaos harness (seed 0x2a, double
			// free): the re-free kept crashing the patched re-execution
			// and the event was dropped instead of survived.
			if e.paramCheckActive(site) || e.paramCheckActive(first) {
				e.recordBlockedRefree(ptr, site)
				return nil
			}
		}
		// A re-freed guarded pointer: the guard tier's quarantine, not the
		// freed ring, remembers sampled frees — guard addresses never
		// recycle, so ring entries for them would pile up and permanently
		// grow the freed map every raw free pays to probe. Same
		// manifestation and parameter-check handling as the ring path;
		// unprotected, the pointer must still not reach the raw allocator
		// (its backing pages are unmapped — the heap would trap reading a
		// header that was never written), so surface the allocator's own
		// invalid-free error instead.
		if e.guard != nil {
			if first, quarantined := e.guard.QuarFreeSite(ptr); quarantined {
				e.manifests.Add(Manifestation{
					Bug:      mmbug.DoubleFree,
					FreeSite: first,
					Addr:     ptr,
					Detail:   fmt.Sprintf("guarded object freed at site %d re-freed at site %d", first, site),
				})
				if e.paramCheckActive(site) || e.paramCheckActive(first) {
					e.recordBlockedRefree(ptr, site)
					return nil
				}
				return fmt.Errorf("%w: pointer %#x re-freed after guard-page quarantine", heap.ErrBadFree, ptr)
			}
		}
		// Unprotected: hand the bogus pointer to the raw allocator,
		// which faults the way glibc would.
		return e.H.Free(ptr)
	}

	if obj.Delayed {
		// Double free caught while the first free is still delayed.
		e.manifests.Add(Manifestation{
			Bug:       mmbug.DoubleFree,
			AllocSite: obj.AllocSite,
			FreeSite:  obj.FreeSite,
			Addr:      ptr,
			Detail:    fmt.Sprintf("object delay-freed at site %d re-freed at site %d", obj.FreeSite, site),
		})
		// The delay-free itself neutralises the re-free; this is the
		// "delay free + check parameters" patch of Table 1.
		e.recordBlockedRefree(ptr, site)
		return nil
	}

	// Overflow evidence check at object death: corrupted pad canary.
	if obj.Alloc.PadCanary {
		e.checkPadding(obj)
		e.removePadded(ptr)
	}

	act, patched := e.freeActionFor(site)
	if obj.Protected && e.protectionActive() {
		// Sensitive regions always quarantine: the freed object keeps its
		// canary so a dangling write to it is trapped at the next
		// touchpoint, and any re-free is blocked by the Delayed branch
		// above — regardless of installed patches.
		act.Delay = true
		act.CanaryFill = true
	}
	if patched {
		e.triggers[site]++
	}
	if act.Delay {
		obj.Delayed = true
		obj.FreeSite = site
		obj.Free = act
		e.watchDirty = true
		if act.CanaryFill {
			canary.Fill(e.H.Mem(), obj.User, int(obj.UserSize), canary.Freed)
			e.chargeFill(int(obj.UserSize))
		}
		e.s.delayQ = append(e.s.delayQ, ptr)
		e.s.delayBytes += uint64(obj.totalLen())
		if !obj.Guarded {
			e.rememberFreed(ptr, site)
		}
		if e.trace != nil {
			e.trace.Ops = append(e.trace.Ops, MMOp{Site: site, Addr: ptr, Size: obj.UserSize, Patched: patched, Delayed: true})
			if patched {
				e.trace.Triggers[site]++
			}
		}
		e.enforceDelayLimit()
		return nil
	}

	// Immediate free.
	if obj.Protected {
		// Only reachable while protection is dormant (probe replays).
		e.Unprotect(ptr, site)
	}
	delete(e.s.objects, ptr)
	e.accountRelease(obj)
	e.markWatchDirtyFor(obj)
	// Guarded frees are remembered by the quarantine instead of the freed
	// ring: their addresses never recycle, so ring entries would only pile
	// up (see the re-free branch above).
	if !obj.Guarded {
		e.rememberFreed(ptr, site)
	}
	if e.trace != nil {
		e.trace.Ops = append(e.trace.Ops, MMOp{Site: site, Addr: ptr, Size: obj.UserSize, Patched: patched})
		if patched {
			e.trace.Triggers[site]++
		}
	}
	if obj.Guarded {
		// Unmap the slot and quarantine it: any dangling access through
		// this pointer now traps at the faulting instruction.
		e.guard.Release(ptr, site)
		return nil
	}
	return e.H.Free(obj.Base)
}

func (e *Ext) recordBlockedRefree(ptr vmem.Addr, site callsite.ID) {
	e.triggers[site]++
	if e.trace != nil {
		e.trace.Ops = append(e.trace.Ops, MMOp{Site: site, Addr: ptr, Patched: true})
		e.trace.Triggers[site]++
		e.trace.Illegal = append(e.trace.Illegal, IllegalAccess{
			Kind:      RefreeBlocked,
			PatchSite: site,
			Instr:     "free",
			Obj:       ptr,
		})
	}
}

func (e *Ext) rememberFreed(ptr vmem.Addr, site callsite.ID) {
	if _, dup := e.s.freed[ptr]; !dup {
		e.s.freedOrder = append(e.s.freedOrder, ptr)
	}
	e.s.freed[ptr] = site
	for len(e.s.freedOrder) > freedCap {
		old := e.s.freedOrder[0]
		e.s.freedOrder = e.s.freedOrder[1:]
		delete(e.s.freed, old)
	}
}

// enforceDelayLimit recycles the oldest delay-freed objects once their
// accumulated footprint exceeds DelayLimit. Protected objects are never
// recycled: releasing a sensitive region's quarantine would hand its memory
// back to the raw allocator while stale pointers may still target it,
// silently voiding the guarantee the application paid for.
func (e *Ext) enforceDelayLimit() {
	var kept []vmem.Addr
	for e.s.delayBytes > e.DelayLimit && len(e.s.delayQ) > 0 {
		old := e.s.delayQ[0]
		e.s.delayQ = e.s.delayQ[1:]
		obj, ok := e.s.objects[old]
		if !ok || !obj.Delayed {
			continue
		}
		if obj.Protected {
			kept = append(kept, old)
			continue
		}
		delete(e.s.objects, old)
		e.s.delayBytes -= uint64(obj.totalLen())
		e.accountRelease(obj)
		e.watchDirty = true
		// Deallocating very old delay-freed objects is usually safe
		// (paper §2); a re-triggered bug would surface again and be
		// re-diagnosed. A guarded object's slot is unmapped instead of
		// handed back to the heap — late dangling accesses still trap.
		if obj.Guarded {
			e.guard.Release(old, obj.FreeSite)
		} else {
			e.H.Free(obj.Base)
		}
	}
	if len(kept) > 0 {
		e.s.delayQ = append(kept, e.s.delayQ...)
	}
}

func (e *Ext) removePadded(ptr vmem.Addr) {
	for i, p := range e.s.padded {
		if p == ptr {
			e.s.padded = append(e.s.padded[:i], e.s.padded[i+1:]...)
			return
		}
	}
}

// --- sensitive regions (Selfie-style protected objects) -----------------------

// protectionActive reports whether sensitive-region semantics (migration,
// forced quarantine, eager validation) are in force. They hold in normal
// mode and during plain diagnostic re-execution (so a protected-region trap
// reproduces deterministically for the nondeterminism screen), but are
// dormant under diagnostic change sets and in validation replays, where the
// probe's change set alone must decide the object layout and outcome.
func (e *Ext) protectionActive() bool {
	switch e.mode {
	case ModeNormal:
		return true
	case ModeDiagnostic:
		return e.changes.Empty()
	default:
		return false
	}
}

// Protect marks the live object at user as a sensitive region. When
// protection is active and the object is not already canary-padded it is
// migrated to a fresh padded+canaried allocation (contents copied, original
// allocation site preserved, old chunk released); the possibly-new user
// address is returned. Protecting an unknown or delay-freed address, or
// re-protecting, is a no-op.
func (e *Ext) Protect(user vmem.Addr, site callsite.ID) (vmem.Addr, error) {
	e.cost += costPerRequest
	obj, ok := e.s.objects[user]
	if !ok || obj.Delayed {
		return user, nil
	}
	if obj.Protected {
		return user, nil
	}
	if !e.protectionActive() || obj.Alloc.PadCanary {
		// Dormant (probe replay), or the object already carries canaried
		// padding (e.g. an installed add-padding patch): mark in place.
		obj.Protected = true
		e.s.protected = append(e.s.protected, user)
		return user, nil
	}
	act := AllocAction{PadCanary: true}
	nu, err := e.mallocWithAction(obj.UserSize, obj.AllocSite, act)
	if err != nil {
		return 0, err
	}
	mem := e.H.Mem()
	if obj.UserSize > 0 {
		data, rerr := mem.Read(obj.User, int(obj.UserSize))
		if rerr != nil {
			return 0, rerr
		}
		if werr := mem.Write(nu, data); werr != nil {
			return 0, werr
		}
		e.chargeFill(int(obj.UserSize))
	}
	nobj := e.s.objects[nu]
	nobj.Protected = true
	e.s.protected = append(e.s.protected, nu)
	// Release the original immediately: this is an internal move, not a
	// program free, so it records no freed-site history.
	delete(e.s.objects, obj.User)
	e.accountRelease(obj)
	e.markWatchDirtyFor(obj)
	if obj.Guarded {
		e.guard.Release(obj.User, site)
	} else if err := e.H.Free(obj.Base); err != nil {
		return 0, err
	}
	return nu, nil
}

// Unprotect clears the sensitive-region mark on the object at user; its
// padding (if any) stays, it simply loses eager validation and forced
// quarantine.
func (e *Ext) Unprotect(user vmem.Addr, site callsite.ID) {
	e.cost += costPerRequest
	obj, ok := e.s.objects[user]
	if !ok || !obj.Protected {
		return
	}
	obj.Protected = false
	for i, p := range e.s.protected {
		if p == user {
			e.s.protected = append(e.s.protected[:i], e.s.protected[i+1:]...)
			break
		}
	}
}

// IsProtected reports whether the object at user is a sensitive region
// (proc.ProtectingMM support; realloc uses it to carry protection over).
func (e *Ext) IsProtected(user vmem.Addr) bool {
	obj, ok := e.s.objects[user]
	return ok && obj.Protected
}

// ProtectedObjects returns the number of registered sensitive regions.
func (e *Ext) ProtectedObjects() int { return len(e.s.protected) }

// ProtectedViolation describes corruption of a sensitive region caught by
// the eager check.
type ProtectedViolation struct {
	Addr      vmem.Addr
	AllocSite callsite.ID
	FreeSite  callsite.ID
	Delayed   bool
	Detail    string
}

// CheckProtected eagerly validates every sensitive region's canaries —
// padding of live objects, fill of quarantined ones. The monitor calls it
// after each event, so corruption of a protected object traps at the event
// that caused it instead of the next checkpoint scan. Corruption already
// neutralised by an installed patch at the object's allocation or
// deallocation site is suppressed (the patched re-execution must not
// re-trap on the absorbed write).
func (e *Ext) CheckProtected() *ProtectedViolation {
	if len(e.s.protected) == 0 || !e.protectionActive() {
		return nil
	}
	mem := e.H.Mem()
	for _, p := range e.s.protected {
		obj, ok := e.s.objects[p]
		if !ok || !obj.Protected {
			// Released while protection was dormant, or the address was
			// recycled by an unrelated allocation.
			continue
		}
		e.cost += uint64(obj.UserSize)/8*costFillPerByte + costPerRequest
		if obj.Delayed {
			if !obj.Free.CanaryFill {
				continue
			}
			if c := canary.Check(mem, obj.User, int(obj.UserSize), canary.Freed); c.Corrupted() {
				if e.suppressedByPatch(obj) {
					continue
				}
				return &ProtectedViolation{
					Addr:      obj.User,
					AllocSite: obj.AllocSite,
					FreeSite:  obj.FreeSite,
					Delayed:   true,
					Detail:    fmt.Sprintf("protected quarantined object at %#x overwritten (%d bytes)", obj.User, len(c.Offsets)),
				}
			}
			continue
		}
		if !obj.Alloc.PadCanary {
			continue
		}
		back := canary.Check(mem, obj.User+obj.UserSize, int(obj.PadBack), canary.Pad)
		front := canary.Check(mem, obj.Base+HeaderLen, int(obj.PadFront), canary.Pad)
		if back.Corrupted() || front.Corrupted() {
			if e.suppressedByPatch(obj) {
				continue
			}
			return &ProtectedViolation{
				Addr:      obj.User,
				AllocSite: obj.AllocSite,
				Detail:    fmt.Sprintf("protected object at %#x: guard canary overwritten", obj.User),
			}
		}
	}
	return nil
}

// suppressedByPatch reports whether an installed patch already absorbs the
// corruption of this protected object: padding at its allocation site for
// live objects, delay-free at its deallocation site for quarantined ones.
func (e *Ext) suppressedByPatch(obj *Object) bool {
	if e.mode != ModeNormal || e.patches == nil {
		return false
	}
	if obj.Delayed {
		a, ok := e.patches.FreePatch(obj.FreeSite)
		return ok && a.Delay
	}
	a, ok := e.patches.AllocPatch(obj.AllocSite)
	return ok && (a.Pad || a.PadCanary)
}

// --- canary scanning -----------------------------------------------------------

// checkPadding scans one padded object's canaries and records an overflow
// manifestation if they were overwritten.
func (e *Ext) checkPadding(obj *Object) {
	mem := e.H.Mem()
	if c := canary.Check(mem, obj.User+obj.UserSize, int(obj.PadBack), canary.Pad); c.Corrupted() {
		offs := make([]int, len(c.Offsets))
		for i, o := range c.Offsets {
			offs[i] = int(obj.UserSize) + o
		}
		e.manifests.Add(Manifestation{
			Bug:       mmbug.BufferOverflow,
			AllocSite: obj.AllocSite,
			Addr:      obj.User,
			Offsets:   offs,
			Detail:    fmt.Sprintf("%d bytes of rear padding overwritten", len(offs)),
		})
	}
	if c := canary.Check(mem, obj.Base+HeaderLen, int(obj.PadFront), canary.Pad); c.Corrupted() {
		offs := make([]int, len(c.Offsets))
		for i, o := range c.Offsets {
			offs[i] = o - int(obj.PadFront)
		}
		e.manifests.Add(Manifestation{
			Bug:       mmbug.BufferOverflow,
			AllocSite: obj.AllocSite,
			Addr:      obj.User,
			Offsets:   offs,
			Detail:    fmt.Sprintf("%d bytes of front padding overwritten (underflow)", len(offs)),
		})
	}
}

// Scan checks every canary region — padded objects, canary-filled
// delay-freed objects and heap-marking regions — recording manifestations
// for corrupted ones. The error monitor calls this between events during
// diagnostic re-execution and at the failure point.
func (e *Ext) Scan() {
	mem := e.H.Mem()
	for _, p := range e.s.padded {
		if obj, ok := e.s.objects[p]; ok && !obj.Delayed {
			e.checkPadding(obj)
		}
	}
	for _, p := range e.s.delayQ {
		obj, ok := e.s.objects[p]
		if !ok || !obj.Delayed || !obj.Free.CanaryFill {
			continue
		}
		if c := canary.Check(mem, obj.User, int(obj.UserSize), canary.Freed); c.Corrupted() {
			e.manifests.Add(Manifestation{
				Bug:       mmbug.DanglingWrite,
				AllocSite: obj.AllocSite,
				FreeSite:  obj.FreeSite,
				Addr:      obj.User,
				Offsets:   c.Offsets,
				Detail:    fmt.Sprintf("%d bytes of delay-freed object overwritten", len(c.Offsets)),
			})
		}
	}
	for _, m := range e.s.marks {
		if c := canary.Check(mem, m.addr, m.n, canary.Mark); c.Corrupted() {
			e.manifests.Add(Manifestation{
				Bug:      mmbug.DanglingWrite, // or overflow: either way, pre-checkpoint
				Addr:     m.addr,
				Offsets:  c.Offsets,
				FromMark: true,
				Detail:   "heap-marking canary overwritten: bug triggered before checkpoint",
			})
		}
	}
	// A canary-filled delay-freed object that was *fully* re-corrupted
	// would be caught above; scanning is deduplicated by the diagnosis
	// engine, which treats manifests as evidence sets.
}

// MarkHeap canary-fills every free chunk (skipping the allocator's
// free-list links) and the head of the top chunk — the Phase-1 heap-marking
// technique of §4.1 that exposes bugs triggered before the checkpoint.
func (e *Ext) MarkHeap() error {
	e.s.marks = nil
	chunks, err := e.H.FreeChunks()
	if err != nil {
		return err
	}
	mem := e.H.Mem()
	for _, c := range chunks {
		// Skip the 8-byte fd/bk links at the start of the payload.
		start := c.Payload + 8
		n := int(c.Size) - heapHeaderLen - 8
		if c.Top {
			// "Padding after the last memory object": mark only the
			// head of the top chunk.
			if n > 1024 {
				n = 1024
			}
		}
		if n <= 0 {
			continue
		}
		if err := canary.Fill(mem, start, n, canary.Mark); err != nil {
			return err
		}
		e.s.marks = append(e.s.marks, markRange{addr: start, n: n})
	}
	return nil
}

// heapHeaderLen mirrors the chunk header size of package heap.
const heapHeaderLen = 8

// dropMarksNear discards heap-marking ranges that overlap (or closely
// neighbour) a newly carved chunk: the allocator legitimately writes
// split-chunk headers and free-list links there, which must not read as
// corruption.
func (e *Ext) dropMarksNear(base vmem.Addr, total uint32) {
	if len(e.s.marks) == 0 {
		return
	}
	const slack = 64
	lo := int64(base) - slack - heapHeaderLen
	hi := int64(base) + int64(total) + slack
	kept := e.s.marks[:0]
	for _, m := range e.s.marks {
		mlo, mhi := int64(m.addr), int64(m.addr)+int64(m.n)
		if mhi <= lo || mlo >= hi {
			kept = append(kept, m)
		}
	}
	e.s.marks = kept
}

// ClearMarks removes heap-marking state (when leaving Phase 1).
func (e *Ext) ClearMarks() { e.s.marks = nil }

// --- object queries -------------------------------------------------------------

// ObjectAt returns the object whose user region or padding contains addr,
// searching live and delay-freed objects.
func (e *Ext) ObjectAt(addr vmem.Addr) *Object {
	// Fast path: exact user address.
	if o, ok := e.s.objects[addr]; ok {
		return o
	}
	for _, o := range e.s.objects {
		if addr >= o.Base && addr < o.Base+o.totalLen() {
			return o
		}
	}
	return nil
}

// Object returns the record for the exact user address, if any.
func (e *Ext) Object(user vmem.Addr) (*Object, bool) {
	o, ok := e.s.objects[user]
	return o, ok
}

// UserSize reports the live object's user size (proc.Realloc support).
func (e *Ext) UserSize(user vmem.Addr) (uint32, bool) {
	if o, ok := e.s.objects[user]; ok && !o.Delayed {
		return o.UserSize, true
	}
	return 0, false
}

// LiveSites returns the deduplicated allocation call-sites of live objects.
func (e *Ext) LiveSites() []callsite.ID {
	seen := map[callsite.ID]bool{}
	var out []callsite.ID
	for _, o := range e.s.objects {
		if !seen[o.AllocSite] {
			seen[o.AllocSite] = true
			out = append(out, o.AllocSite)
		}
	}
	return out
}

// --- validation-mode access instrumentation --------------------------------------

// interesting reports whether the object must be visible to access
// classification: it has padding, is delay-freed, or tracks initialisation.
func interesting(o *Object) bool {
	return o.Delayed || o.PadFront > 0 || o.PadBack > 0 || o.written != nil
}

func (e *Ext) markWatchDirtyFor(o *Object) {
	if interesting(o) {
		e.watchDirty = true
	}
}

// rebuildWatch regenerates the Base-sorted index of interesting objects.
func (e *Ext) rebuildWatch() {
	e.watch = e.watch[:0]
	for _, o := range e.s.objects {
		if interesting(o) {
			e.watch = append(e.watch, o)
		}
	}
	sortObjectsByBase(e.watch)
	e.watchDirty = false
}

func sortObjectsByBase(objs []*Object) {
	// Insertion sort: the list is small and often nearly sorted.
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objs[j-1].Base > objs[j].Base; j-- {
			objs[j-1], objs[j] = objs[j], objs[j-1]
		}
	}
}

// watchAt finds the interesting object whose backing region contains addr.
func (e *Ext) watchAt(addr vmem.Addr) *Object {
	if e.watchDirty {
		e.rebuildWatch()
	}
	lo, hi := 0, len(e.watch)
	for lo < hi {
		mid := (lo + hi) / 2
		o := e.watch[mid]
		switch {
		case addr < o.Base:
			hi = mid
		case addr >= o.Base+o.totalLen():
			lo = mid + 1
		default:
			return o
		}
	}
	return nil
}

// Access implements proc.AccessChecker: in validation mode it classifies
// every program access against patched objects and records the illegal
// ones (the Pin instrumentation of §5). Outside validation mode it is a
// no-op so normal execution stays cheap.
func (e *Ext) Access(addr vmem.Addr, n int, write bool, instr string) {
	if e.mode != ModeValidation || e.trace == nil || n <= 0 {
		return
	}
	end := addr + vmem.Addr(n)
	obj := e.watchAt(addr)
	if obj == nil && n > 1 {
		// The access may start outside any interesting object and run
		// into one (an overflow from an unpatched neighbour).
		obj = e.watchAt(end - 1)
	}
	if obj == nil {
		return
	}
	if obj.Delayed {
		kind := FreedRead
		if write {
			kind = FreedWrite
		}
		e.trace.Illegal = append(e.trace.Illegal, IllegalAccess{
			Kind:      kind,
			PatchSite: obj.FreeSite,
			Instr:     instr,
			Obj:       obj.User,
			Offset:    int(addr) - int(obj.User),
			Len:       n,
		})
		return
	}
	if obj.PadFront > 0 || obj.PadBack > 0 {
		e.checkPadHit(obj, addr, end, write, instr)
	}
	if obj.written != nil {
		e.trackInit(obj, addr, end, write, instr)
	}
}

// checkPadHit records an access overlapping the object's padding.
func (e *Ext) checkPadHit(obj *Object, addr, end vmem.Addr, write bool, instr string) {
	padFrontStart := obj.Base + HeaderLen
	userEnd := obj.User + obj.UserSize
	padBackEnd := userEnd + obj.PadBack
	overlapsFront := obj.PadFront > 0 && addr < obj.User && end > padFrontStart
	overlapsBack := obj.PadBack > 0 && end > userEnd && addr < padBackEnd
	if !overlapsFront && !overlapsBack {
		return
	}
	kind := PadRead
	if write {
		kind = PadWrite
	}
	off := int(addr) - int(obj.User)
	e.trace.Illegal = append(e.trace.Illegal, IllegalAccess{
		Kind:      kind,
		PatchSite: obj.AllocSite,
		Instr:     instr,
		Obj:       obj.User,
		Offset:    off,
		Len:       int(end - addr),
	})
}

// trackInit maintains the per-byte init bitmap of zero-filled objects and
// records reads of never-written bytes.
func (e *Ext) trackInit(obj *Object, addr, end vmem.Addr, write bool, instr string) {
	lo := int(addr) - int(obj.User)
	hi := int(end) - int(obj.User)
	if lo < 0 {
		lo = 0
	}
	if hi > int(obj.UserSize) {
		hi = int(obj.UserSize)
	}
	if lo >= hi {
		return
	}
	if write {
		for i := lo; i < hi; i++ {
			obj.written[i/64] |= 1 << (uint(i) % 64)
		}
		return
	}
	uninit := false
	for i := lo; i < hi; i++ {
		if obj.written[i/64]&(1<<(uint(i)%64)) == 0 {
			uninit = true
			break
		}
	}
	if uninit {
		e.trace.Illegal = append(e.trace.Illegal, IllegalAccess{
			Kind:      UninitRead,
			PatchSite: obj.AllocSite,
			Instr:     instr,
			Obj:       obj.User,
			Offset:    lo,
			Len:       hi - lo,
		})
	}
}
