package allocext

import (
	"testing"

	"firstaid/internal/callsite"
	"firstaid/internal/canary"
	"firstaid/internal/heap"
	"firstaid/internal/mmbug"
	"firstaid/internal/vmem"
)

type fixture struct {
	mem   *vmem.Space
	h     *heap.Heap
	sites *callsite.Table
	ext   *Ext
	site  callsite.ID
	site2 callsite.ID
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	mem := vmem.New(64 << 20)
	h := heap.New(mem)
	sites := callsite.NewTable()
	return &fixture{
		mem:   mem,
		h:     h,
		sites: sites,
		ext:   New(h, sites),
		site:  sites.Intern(callsite.Key{"alloc_buf", "handler", "main"}),
		site2: sites.Intern(callsite.Key{"free_buf", "handler", "main"}),
	}
}

// fakePatches implements PatchSource for tests.
type fakePatches struct {
	alloc map[callsite.ID]AllocAction
	free  map[callsite.ID]FreeAction
}

func (p *fakePatches) AllocPatch(site callsite.ID) (AllocAction, bool) {
	a, ok := p.alloc[site]
	return a, ok
}

func (p *fakePatches) FreePatch(site callsite.ID) (FreeAction, bool) {
	a, ok := p.free[site]
	return a, ok
}

func TestMallocAddsMetadataHeader(t *testing.T) {
	f := newFixture(t)
	user, err := f.ext.Malloc(100, f.site)
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := f.ext.Object(user)
	if !ok {
		t.Fatal("object not recorded")
	}
	if obj.Base != user-HeaderLen {
		t.Fatalf("base = %#x, user = %#x", obj.Base, user)
	}
	magic, _ := f.mem.ReadU32(obj.Base)
	if magic != headerMagic {
		t.Fatalf("magic = %#x", magic)
	}
	siteWord, _ := f.mem.ReadU32(obj.Base + 4)
	if callsite.ID(siteWord) != f.site {
		t.Fatalf("site in header = %d", siteWord)
	}
	if f.ext.MetaBytes() != HeaderLen {
		t.Fatalf("MetaBytes = %d", f.ext.MetaBytes())
	}
	if err := f.ext.Free(user, f.site2); err != nil {
		t.Fatal(err)
	}
	if f.ext.MetaBytes() != 0 {
		t.Fatalf("MetaBytes after free = %d", f.ext.MetaBytes())
	}
}

func TestRecycledMemoryIsDirtyWithoutChanges(t *testing.T) {
	f := newFixture(t)
	a, _ := f.ext.Malloc(64, f.site)
	f.mem.Fill(a, 0x5A, 64)
	f.ext.Free(a, f.site2)
	b, _ := f.ext.Malloc(64, f.site)
	if b != a {
		t.Skipf("allocator did not recycle (a=%#x b=%#x)", a, b)
	}
	buf, _ := f.mem.Read(b+16, 16)
	dirty := false
	for _, x := range buf {
		if x != 0 {
			dirty = true
		}
	}
	if !dirty {
		t.Fatal("recycled object unexpectedly clean; uninit-read bugs cannot manifest")
	}
}

func TestPaddingAbsorbsOverflowAndCanaryDetectsIt(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddExposing(mmbug.BufferOverflow, nil))

	victim, _ := f.ext.Malloc(32, f.site)
	neighbour, _ := f.ext.Malloc(32, f.site)

	// Overflow 8 bytes past the end of victim: lands in canary padding.
	if err := f.mem.Write(victim+32, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatalf("overflow write should be absorbed: %v", err)
	}
	// The neighbour is untouched (padding isolated it).
	if got, _ := f.mem.Read(neighbour, 4); got[0] != 0xEF && got[0] != 0 {
		// neighbour content is whatever the allocator left; the real
		// check is that the heap is still sound:
	}
	if err := f.h.CheckIntegrity(); err != nil {
		t.Fatalf("heap corrupted despite padding: %v", err)
	}

	f.ext.Scan()
	ms := f.ext.Manifests()
	if !ms.Has(mmbug.BufferOverflow) {
		t.Fatal("overflow not manifested via canary")
	}
	sites := ms.Sites(mmbug.BufferOverflow)
	if len(sites) != 1 || sites[0] != f.site {
		t.Fatalf("implicated sites = %v, want [%d]", sites, f.site)
	}
	m := ms.All[0]
	if m.Addr != victim {
		t.Fatalf("manifestation object = %#x, want %#x", m.Addr, victim)
	}
	if len(m.Offsets) != 8 || m.Offsets[0] != 32 {
		t.Fatalf("offsets = %v", m.Offsets)
	}
}

func TestPlainPaddingPreventsWithoutManifesting(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddPreventive(mmbug.BufferOverflow, nil))

	a, _ := f.ext.Malloc(32, f.site)
	f.mem.Write(a+32, make([]byte, 64)) // overflow absorbed silently
	f.ext.Scan()
	if f.ext.Manifests().Len() != 0 {
		t.Fatalf("preventive padding produced manifestations: %v", f.ext.Manifests().All)
	}
	if err := f.ext.Free(a, f.site2); err != nil {
		t.Fatal(err)
	}
}

func TestDelayFreePreservesContents(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddPreventive(mmbug.DanglingRead, nil))

	a, _ := f.ext.Malloc(64, f.site)
	f.mem.Write(a, []byte("precious data"))
	if err := f.ext.Free(a, f.site2); err != nil {
		t.Fatal(err)
	}
	// Dangling read: contents still there.
	got, _ := f.mem.Read(a, 13)
	if string(got) != "precious data" {
		t.Fatalf("delay-freed contents = %q", got)
	}
	// The object is not recycled by the next same-size malloc.
	b, _ := f.ext.Malloc(64, f.site)
	if b == a {
		t.Fatal("delay-freed object recycled immediately")
	}
	if f.ext.DelayedObjects() != 1 {
		t.Fatalf("DelayedObjects = %d", f.ext.DelayedObjects())
	}
}

func TestCanaryFillExposesDanglingWrite(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddExposing(mmbug.DanglingWrite, nil))

	a, _ := f.ext.Malloc(64, f.site)
	f.ext.Free(a, f.site2)
	// Dangling write through the stale pointer.
	f.mem.Write(a+8, []byte{0xDE, 0xAD})
	f.ext.Scan()
	ms := f.ext.Manifests()
	if !ms.Has(mmbug.DanglingWrite) {
		t.Fatal("dangling write not manifested")
	}
	sites := ms.Sites(mmbug.DanglingWrite)
	if len(sites) != 1 || sites[0] != f.site2 {
		t.Fatalf("implicated free sites = %v, want [%d]", sites, f.site2)
	}
}

func TestCanaryFillExposesDanglingReadAsPoisonedData(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddExposing(mmbug.DanglingRead, nil))

	a, _ := f.ext.Malloc(64, f.site)
	f.mem.WriteU32(a, 0x1234)
	f.ext.Free(a, f.site2)
	v, _ := f.mem.ReadU32(a)
	if !canary.IsPoisoned32(v) {
		t.Fatalf("dangling read returned %#x, want poisoned canary", v)
	}
}

func TestDoubleFreeParamCheck(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddPreventive(mmbug.DoubleFree, nil))

	a, _ := f.ext.Malloc(32, f.site)
	if err := f.ext.Free(a, f.site2); err != nil {
		t.Fatal(err)
	}
	// Second free is caught by the parameter check and neutralised.
	if err := f.ext.Free(a, f.site2); err != nil {
		t.Fatalf("protected double free crashed: %v", err)
	}
	ms := f.ext.Manifests()
	if !ms.Has(mmbug.DoubleFree) {
		t.Fatal("double free not manifested")
	}
	if sites := ms.Sites(mmbug.DoubleFree); len(sites) != 1 || sites[0] != f.site2 {
		t.Fatalf("sites = %v", sites)
	}
}

func TestUnprotectedDoubleFreeCrashes(t *testing.T) {
	f := newFixture(t)
	// Normal mode, no patches: raw allocator behaviour.
	a, _ := f.ext.Malloc(32, f.site)
	if err := f.ext.Free(a, f.site2); err != nil {
		t.Fatal(err)
	}
	if err := f.ext.Free(a, f.site2); err == nil {
		t.Fatal("unprotected double free did not fault")
	}
}

func TestZeroFillPreventsUninitRead(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	cs := NewChangeSet().AddPreventive(mmbug.UninitRead, nil)
	f.ext.SetChanges(cs)

	// Dirty a chunk, free it, realloc: with zero-fill the new object is
	// clean despite recycling.
	a, _ := f.ext.Malloc(64, f.site)
	f.mem.Fill(a, 0x77, 64)
	f.ext.Free(a, f.site2)
	b, _ := f.ext.Malloc(64, f.site)
	buf, _ := f.mem.Read(b, 64)
	for i, x := range buf {
		if x != 0 {
			t.Fatalf("byte %d = %#x after zero-fill", i, x)
		}
	}
}

func TestCanaryFillNewExposesUninitRead(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddExposing(mmbug.UninitRead, nil))
	a, _ := f.ext.Malloc(16, f.site)
	v, _ := f.mem.ReadU32(a)
	if !canary.IsPoisoned32(v) {
		t.Fatalf("fresh object reads %#x, want canary", v)
	}
}

func TestSiteScopedChanges(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	scope := callsite.NewSet(f.site)
	f.ext.SetChanges(NewChangeSet().AddAlloc(scope, AllocAction{Zero: true}))

	other := f.sites.Intern(callsite.Key{"other_alloc", "x", "y"})
	// Dirty the recycling path.
	a, _ := f.ext.Malloc(64, f.site)
	f.mem.Fill(a, 0x77, 64)
	f.ext.Free(a, f.site2)
	b, _ := f.ext.Malloc(64, other) // unscoped: stays dirty
	dirty := false
	buf, _ := f.mem.Read(b, 64)
	for _, x := range buf {
		if x != 0 {
			dirty = true
		}
	}
	if !dirty {
		t.Skip("chunk not recycled; cannot observe scoping")
	}
	f.ext.Free(b, f.site2)
	c, _ := f.ext.Malloc(64, f.site) // scoped: zeroed
	buf, _ = f.mem.Read(c, 64)
	for i, x := range buf {
		if x != 0 {
			t.Fatalf("scoped zero-fill missed byte %d = %#x", i, x)
		}
	}
}

func TestDelayLimitReleasesOldest(t *testing.T) {
	f := newFixture(t)
	f.ext.DelayLimit = 4096
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddPreventive(mmbug.DanglingRead, nil))

	var ptrs []vmem.Addr
	for i := 0; i < 10; i++ {
		p, _ := f.ext.Malloc(1024, f.site)
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := f.ext.Free(p, f.site2); err != nil {
			t.Fatal(err)
		}
	}
	if f.ext.DelayedBytes() > 4096+1100 {
		t.Fatalf("DelayedBytes = %d exceeds limit", f.ext.DelayedBytes())
	}
	if f.ext.DelayedObjects() >= 10 {
		t.Fatal("no delayed objects were released")
	}
	// The oldest were released; the newest are still held.
	if _, ok := f.ext.Object(ptrs[0]); ok {
		t.Fatal("oldest delay-freed object still held")
	}
	if _, ok := f.ext.Object(ptrs[9]); !ok {
		t.Fatal("newest delay-freed object was released")
	}
}

func TestStateSnapshotRestore(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddPreventive(mmbug.DanglingRead, nil))

	a, _ := f.ext.Malloc(64, f.site)
	snapExt := f.ext.State()
	snapHeap := f.h.State()
	snapMem := f.mem.Snapshot()
	defer snapMem.Release()

	f.ext.Free(a, f.site2)
	b, _ := f.ext.Malloc(32, f.site)
	_ = b

	f.mem.Restore(snapMem)
	f.h.SetState(snapHeap)
	f.ext.SetState(snapExt)

	if _, ok := f.ext.Object(a); !ok {
		t.Fatal("object lost after rollback")
	}
	if f.ext.DelayedObjects() != 0 {
		t.Fatal("delay queue not rolled back")
	}
	// And the world still works.
	c, err := f.ext.Malloc(16, f.site)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ext.Free(c, f.site2); err != nil {
		t.Fatal(err)
	}
}

func TestHeapMarkingDetectsWriteIntoFreeSpace(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)

	// Create a free hole surrounded by live objects.
	a, _ := f.ext.Malloc(128, f.site)
	guard, _ := f.ext.Malloc(16, f.site)
	_ = guard
	f.ext.Free(a, f.site2)

	if err := f.ext.MarkHeap(); err != nil {
		t.Fatal(err)
	}
	// A pre-checkpoint dangling pointer writes into the hole.
	f.mem.Write(a+32, []byte{9, 9, 9})
	f.ext.Scan()
	if !f.ext.Manifests().HasMark() {
		t.Fatal("heap marking missed the write into free space")
	}
}

func TestHeapMarkingSurvivesAllocatorActivity(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	a, _ := f.ext.Malloc(512, f.site)
	guard, _ := f.ext.Malloc(16, f.site)
	_ = guard
	f.ext.Free(a, f.site2)
	if err := f.ext.MarkHeap(); err != nil {
		t.Fatal(err)
	}
	// Allocate from the marked hole and elsewhere: the allocator's own
	// metadata writes must not read as corruption.
	for i := 0; i < 20; i++ {
		p, err := f.ext.Malloc(uint32(32+i*16), f.site)
		if err != nil {
			t.Fatal(err)
		}
		f.mem.Fill(p, 0xFF, 32) // legitimate writes to fresh objects
	}
	f.ext.Scan()
	if f.ext.Manifests().HasMark() {
		t.Fatalf("false-positive mark corruption: %v", f.ext.Manifests().All)
	}
}

func TestNormalModeAppliesPatches(t *testing.T) {
	f := newFixture(t)
	patches := &fakePatches{
		alloc: map[callsite.ID]AllocAction{f.site: {Pad: true}},
		free:  map[callsite.ID]FreeAction{f.site2: {Delay: true}},
	}
	f.ext.SetPatches(patches)

	a, _ := f.ext.Malloc(32, f.site)
	obj, _ := f.ext.Object(a)
	if obj.PadFront != PadFront || obj.PadBack != PadBack {
		t.Fatalf("padding patch not applied: %d/%d", obj.PadFront, obj.PadBack)
	}
	// Overflow absorbed; heap intact.
	f.mem.Write(a+32, make([]byte, 100))
	if err := f.h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	f.ext.Free(a, f.site2)
	if obj2, ok := f.ext.Object(a); !ok || !obj2.Delayed {
		t.Fatal("delay-free patch not applied")
	}
	// Double free neutralised by the patch's parameter check.
	if err := f.ext.Free(a, f.site2); err != nil {
		t.Fatalf("patched double free crashed: %v", err)
	}
	trig := f.ext.Triggers()
	if trig[f.site] == 0 || trig[f.site2] == 0 {
		t.Fatalf("trigger counts = %v", trig)
	}
	// Unpatched site gets nothing.
	other := f.sites.Intern(callsite.Key{"u", "v", "w"})
	b, _ := f.ext.Malloc(32, other)
	if obj, _ := f.ext.Object(b); obj.PadFront != 0 {
		t.Fatal("patch leaked to unpatched site")
	}
}

func TestValidationTraceRecordsOpsAndIllegalAccesses(t *testing.T) {
	f := newFixture(t)
	patches := &fakePatches{
		alloc: map[callsite.ID]AllocAction{f.site: {Pad: true}},
		free:  map[callsite.ID]FreeAction{f.site2: {Delay: true}},
	}
	f.ext.SetPatches(patches)
	f.ext.SetMode(ModeValidation)
	f.ext.BeginTrace()

	a, _ := f.ext.Malloc(32, f.site)
	// Overflow into padding.
	f.ext.Access(a+32, 8, true, "handler:copy")
	// Free, then dangling read.
	f.ext.Free(a, f.site2)
	f.ext.Access(a+4, 4, false, "handler:later_read")

	tr := f.ext.EndTrace()
	if len(tr.Ops) != 2 {
		t.Fatalf("ops = %d", len(tr.Ops))
	}
	if !tr.Ops[0].Alloc || !tr.Ops[0].Patched {
		t.Fatalf("op0 = %+v", tr.Ops[0])
	}
	if tr.Ops[1].Alloc || !tr.Ops[1].Delayed {
		t.Fatalf("op1 = %+v", tr.Ops[1])
	}
	if len(tr.Illegal) != 2 {
		t.Fatalf("illegal accesses = %v", tr.Illegal)
	}
	if tr.Illegal[0].Kind != PadWrite || tr.Illegal[0].Offset != 32 {
		t.Fatalf("illegal[0] = %+v", tr.Illegal[0])
	}
	if tr.Illegal[1].Kind != FreedRead || tr.Illegal[1].Offset != 4 {
		t.Fatalf("illegal[1] = %+v", tr.Illegal[1])
	}
	if tr.TriggerCount() != 2 {
		t.Fatalf("TriggerCount = %d", tr.TriggerCount())
	}
	sigs := tr.Signatures()
	if len(sigs) != 2 {
		t.Fatalf("signatures = %v", sigs)
	}
}

func TestValidationUninitReadTracking(t *testing.T) {
	f := newFixture(t)
	patches := &fakePatches{alloc: map[callsite.ID]AllocAction{f.site: {Zero: true}}}
	f.ext.SetPatches(patches)
	f.ext.SetMode(ModeValidation)
	f.ext.BeginTrace()

	a, _ := f.ext.Malloc(32, f.site)
	f.ext.Access(a, 4, true, "init_field")     // initialise bytes 0..4
	f.ext.Access(a, 4, false, "read_field")    // legit read
	f.ext.Access(a+8, 4, false, "read_uninit") // read before init

	tr := f.ext.EndTrace()
	if len(tr.Illegal) != 1 {
		t.Fatalf("illegal = %v", tr.Illegal)
	}
	ill := tr.Illegal[0]
	if ill.Kind != UninitRead || ill.Offset != 8 || ill.Instr != "read_uninit" {
		t.Fatalf("illegal = %+v", ill)
	}
}

func TestAccessIsNoopOutsideValidation(t *testing.T) {
	f := newFixture(t)
	a, _ := f.ext.Malloc(32, f.site)
	f.ext.Access(a, 4, false, "x") // must not panic or record anything
}

func TestChangeSetResolution(t *testing.T) {
	tab := callsite.NewTable()
	s1 := tab.Intern(callsite.Key{"a", "", ""})
	s2 := tab.Intern(callsite.Key{"b", "", ""})

	cs := NewChangeSet().
		AddExposing(mmbug.UninitRead, callsite.NewSet(s1)).
		AddPreventive(mmbug.UninitRead, callsite.NewSet(s2)).
		AddPreventive(mmbug.BufferOverflow, nil)

	a1 := cs.AllocFor(s1)
	if !a1.CanaryNew || a1.Zero || !a1.Pad {
		t.Fatalf("s1 action = %+v", a1)
	}
	a2 := cs.AllocFor(s2)
	if a2.CanaryNew || !a2.Zero || !a2.Pad {
		t.Fatalf("s2 action = %+v", a2)
	}
}

func TestExposingPreventiveTableMatchesPaper(t *testing.T) {
	// Table 1 of the paper, encoded as expectations.
	if a, ok := PreventiveAlloc(mmbug.BufferOverflow); !ok || !a.Pad || a.PadCanary {
		t.Fatal("overflow preventive")
	}
	if a, ok := ExposingAlloc(mmbug.BufferOverflow); !ok || !a.PadCanary {
		t.Fatal("overflow exposing")
	}
	if a, ok := PreventiveFree(mmbug.DanglingRead); !ok || !a.Delay || a.CanaryFill {
		t.Fatal("dangling read preventive")
	}
	if a, ok := ExposingFree(mmbug.DanglingWrite); !ok || !a.CanaryFill {
		t.Fatal("dangling write exposing")
	}
	if a, ok := PreventiveAlloc(mmbug.UninitRead); !ok || !a.Zero {
		t.Fatal("uninit preventive")
	}
	if a, ok := ExposingAlloc(mmbug.UninitRead); !ok || !a.CanaryNew {
		t.Fatal("uninit exposing")
	}
	if _, ok := PreventiveAlloc(mmbug.DoubleFree); ok {
		t.Fatal("double free has no alloc-time preventive")
	}
	if a, ok := PreventiveFree(mmbug.DoubleFree); !ok || !a.Delay {
		t.Fatal("double free preventive")
	}
}

func TestAllPreventiveCoversEverything(t *testing.T) {
	cs := AllPreventive()
	act := cs.AllocFor(1)
	if !act.Pad || !act.Zero {
		t.Fatalf("alloc action = %+v", act)
	}
	fact := cs.FreeFor(1)
	if !fact.Delay || fact.CanaryFill {
		t.Fatalf("free action = %+v", fact)
	}
}

func BenchmarkExtMallocFreeNormalNoPatches(b *testing.B) {
	f := newFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := f.ext.Malloc(uint32(16+i%256), f.site)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.ext.Free(p, f.site2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMallocFreeAllPreventive(b *testing.B) {
	f := newFixture(b)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(AllPreventive())
	f.ext.DelayLimit = 1 << 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := f.ext.Malloc(uint32(16+i%256), f.site)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.ext.Free(p, f.site2); err != nil {
			b.Fatal(err)
		}
	}
}
