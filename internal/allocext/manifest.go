// Bug manifestations: the observable evidence that exposing changes turn a
// silent memory error into (paper §2, Table 1 "bug manifestation" column).
package allocext

import (
	"fmt"

	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
	"firstaid/internal/vmem"
)

// Manifestation records one piece of bug evidence observed during
// re-execution: corrupted padding canary (buffer overflow), corrupted
// delay-freed canary (dangling write), a deallocation parameter-check hit
// (double free), or corruption of a Phase-1 heap-marking region (a bug
// whose trigger predates the checkpoint).
type Manifestation struct {
	Bug       mmbug.Type
	AllocSite callsite.ID // allocation call-site of the affected object (0 if unknown)
	FreeSite  callsite.ID // deallocation call-site (0 if unknown)
	Addr      vmem.Addr   // user address of the affected object or region
	Offsets   []int       // corrupted byte offsets relative to the user region
	FromMark  bool        // detected via heap marking: bug triggered before the checkpoint
	Detail    string
}

func (m Manifestation) String() string {
	site := m.AllocSite
	kind := "alloc"
	if site == 0 {
		site = m.FreeSite
		kind = "free"
	}
	mark := ""
	if m.FromMark {
		mark = " [pre-checkpoint, via heap marking]"
	}
	return fmt.Sprintf("%v at obj %#x (%s site %d)%s: %s", m.Bug, m.Addr, kind, site, mark, m.Detail)
}

// ManifestSet aggregates manifestations from one re-execution, with
// convenience queries used by the diagnosis engine.
type ManifestSet struct {
	All []Manifestation
}

// Add appends a manifestation.
func (s *ManifestSet) Add(m Manifestation) { s.All = append(s.All, m) }

// Has reports whether any manifestation of bug class b was observed
// (ignoring heap-marking evidence, which speaks about the pre-checkpoint
// past, not the probed window).
func (s *ManifestSet) Has(b mmbug.Type) bool {
	for _, m := range s.All {
		if m.Bug == b && !m.FromMark {
			return true
		}
	}
	return false
}

// HasMark reports whether heap-marking corruption was observed, i.e. a bug
// triggered before the checkpoint under probe.
func (s *ManifestSet) HasMark() bool {
	for _, m := range s.All {
		if m.FromMark {
			return true
		}
	}
	return false
}

// HasUnderflow reports whether any overflow manifestation hit an object's
// *front* padding (negative offsets). A write arriving from before an
// object's base comes from its heap predecessor — and a padded
// predecessor would have absorbed it, so the overflowing object must have
// been allocated before the padding took effect (i.e. before the
// checkpoint under probe).
func (s *ManifestSet) HasUnderflow() bool {
	for _, m := range s.All {
		if m.Bug != mmbug.BufferOverflow || m.FromMark {
			continue
		}
		for _, o := range m.Offsets {
			if o < 0 {
				return true
			}
		}
	}
	return false
}

// Sites returns the deduplicated call-sites implicated for bug class b:
// allocation sites for classes patched at allocation, deallocation sites
// otherwise.
func (s *ManifestSet) Sites(b mmbug.Type) []callsite.ID {
	seen := map[callsite.ID]bool{}
	var out []callsite.ID
	for _, m := range s.All {
		if m.Bug != b || m.FromMark {
			continue
		}
		site := m.FreeSite
		if b.AtAllocation() {
			site = m.AllocSite
		}
		if site != 0 && !seen[site] {
			seen[site] = true
			out = append(out, site)
		}
	}
	return out
}

// Len returns the number of recorded manifestations.
func (s *ManifestSet) Len() int { return len(s.All) }
