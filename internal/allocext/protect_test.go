package allocext

import "testing"

// TestProtectMigratesPreservingContentsAndSite: protecting a live object
// that carries no canaried padding migrates it to a guarded allocation —
// contents copied, allocation site preserved (diagnosis must keep
// attributing the object to the site that allocated it, not the protect
// call), original chunk released, heap still sound.
func TestProtectMigratesPreservingContentsAndSite(t *testing.T) {
	f := newFixture(t)
	a, err := f.ext.Malloc(64, f.site)
	if err != nil {
		t.Fatal(err)
	}
	f.mem.Fill(a, 0xAB, 64)
	na, err := f.ext.Protect(a, f.site2)
	if err != nil {
		t.Fatal(err)
	}
	if na == a {
		t.Fatal("protect did not migrate to a guarded allocation")
	}
	if _, ok := f.ext.Object(a); ok {
		t.Fatal("original object still registered after migration")
	}
	obj, ok := f.ext.Object(na)
	if !ok {
		t.Fatal("migrated object not registered")
	}
	if !obj.Protected || !f.ext.IsProtected(na) {
		t.Fatal("migrated object not marked protected")
	}
	if obj.AllocSite != f.site {
		t.Fatalf("allocation site %d after migration, want the original %d", obj.AllocSite, f.site)
	}
	if obj.PadFront == 0 || obj.PadBack == 0 {
		t.Fatal("migrated object carries no guard padding")
	}
	data, err := f.mem.Read(na, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0xAB {
			t.Fatalf("byte %d lost in migration: %#02x", i, b)
		}
	}
	if err := f.h.CheckIntegrity(); err != nil {
		t.Fatalf("heap corrupted by migration: %v", err)
	}
}

// TestDoubleProtectIsIdempotent: re-protecting keeps one registry entry and
// the same address; unprotect empties the registry and clears the mark;
// protecting or unprotecting bogus addresses is a no-op.
func TestDoubleProtectIsIdempotent(t *testing.T) {
	f := newFixture(t)
	a, _ := f.ext.Malloc(32, f.site)
	na, err := f.ext.Protect(a, f.site)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := f.ext.Protect(na, f.site)
	if err != nil {
		t.Fatal(err)
	}
	if nb != na {
		t.Fatalf("double protect moved the object: %#x -> %#x", na, nb)
	}
	if got := f.ext.ProtectedObjects(); got != 1 {
		t.Fatalf("%d registry entries after double protect, want 1", got)
	}
	f.ext.Unprotect(na, f.site)
	if f.ext.IsProtected(na) || f.ext.ProtectedObjects() != 0 {
		t.Fatal("unprotect did not clear the mark")
	}
	f.ext.Unprotect(na, f.site)       // second unprotect: no-op
	f.ext.Unprotect(0xDEAD00, f.site) // unknown address: no-op
	if _, err := f.ext.Protect(0xDEAD00, f.site); err != nil {
		t.Fatalf("protect of unknown address must be a no-op, got %v", err)
	}
	if f.ext.ProtectedObjects() != 0 {
		t.Fatal("bogus protect registered something")
	}
}

// TestProtectEagerDetection: corruption of a protected object's guard
// canary is caught by the eager per-event check, attributed to the
// object's allocation site; unprotected neighbours stay silent.
func TestProtectEagerDetection(t *testing.T) {
	f := newFixture(t)
	a, _ := f.ext.Malloc(48, f.site)
	na, err := f.ext.Protect(a, f.site)
	if err != nil {
		t.Fatal(err)
	}
	if v := f.ext.CheckProtected(); v != nil {
		t.Fatalf("clean protected object flagged: %+v", v)
	}
	f.mem.Fill(na+48, 0x77, 8) // smash the back guard
	v := f.ext.CheckProtected()
	if v == nil {
		t.Fatal("eager check missed guard-canary corruption")
	}
	if v.AllocSite != f.site {
		t.Fatalf("violation attributed to site %d, want %d", v.AllocSite, f.site)
	}
	if v.Delayed {
		t.Fatal("live-object violation reported as quarantined")
	}
}

// TestProtectThenFreeQuarantinesWithCanary: freeing a protected object
// forces canary-filled quarantine even with no patch installed, so the
// chunk is not recycled and a dangling write into it trips the eager check
// at the writing event.
func TestProtectThenFreeQuarantinesWithCanary(t *testing.T) {
	f := newFixture(t)
	a, _ := f.ext.Malloc(40, f.site)
	na, err := f.ext.Protect(a, f.site)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ext.Free(na, f.site2); err != nil {
		t.Fatal(err)
	}
	b, _ := f.ext.Malloc(40, f.site)
	if b == na {
		t.Fatal("protected object recycled immediately after free")
	}
	if v := f.ext.CheckProtected(); v != nil {
		t.Fatalf("clean quarantine flagged: %+v", v)
	}
	f.mem.Fill(na, 0x13, 8) // the dangling write
	v := f.ext.CheckProtected()
	if v == nil {
		t.Fatal("eager check missed a write into the protected quarantine")
	}
	if !v.Delayed {
		t.Fatal("quarantine violation not marked delayed")
	}
	if v.FreeSite != f.site2 {
		t.Fatalf("violation free-site %d, want %d", v.FreeSite, f.site2)
	}
}
