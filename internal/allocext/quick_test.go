package allocext

import (
	"math/rand"
	"testing"
	"testing/quick"

	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
	"firstaid/internal/vmem"
)

// Property: a LEGAL program (no out-of-bounds writes, no use-after-free,
// no double free) must behave identically under every combination of
// environmental changes — no faults, no manifestations, contents
// preserved. This is the transparency guarantee the whole diagnosis
// design rests on: environmental changes may only affect buggy accesses.
func TestQuickChangesAreTransparentToLegalPrograms(t *testing.T) {
	f := func(seed int64, exposeMask, preventMask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := newFixture(t)
		fx.ext.SetMode(ModeDiagnostic)
		fx.ext.DelayLimit = 1 << 22

		cs := NewChangeSet()
		for i, b := range mmbug.All {
			if exposeMask&(1<<uint(i)) != 0 {
				cs.AddExposing(b, nil)
			} else if preventMask&(1<<uint(i)) != 0 {
				cs.AddPreventive(b, nil)
			}
		}
		fx.ext.SetChanges(cs)

		type obj struct {
			addr vmem.Addr
			n    uint32
			fill byte
		}
		var live []obj
		sites := []callsite.ID{fx.site, fx.site2,
			fx.sites.Intern(callsite.Key{"third", "x", "y"})}

		for op := 0; op < 250; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				o := live[k]
				// A legal program reads only bytes it wrote.
				buf, err := fx.mem.Read(o.addr, int(o.n))
				if err != nil {
					t.Logf("read failed: %v", err)
					return false
				}
				for _, x := range buf {
					if x != o.fill {
						t.Logf("contents changed under changes: %#x vs %#x", x, o.fill)
						return false
					}
				}
				if err := fx.ext.Free(o.addr, sites[rng.Intn(len(sites))]); err != nil {
					t.Logf("legal free failed: %v", err)
					return false
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				n := uint32(rng.Intn(300) + 1)
				a, err := fx.ext.Malloc(n, sites[rng.Intn(len(sites))])
				if err != nil {
					t.Logf("malloc failed: %v", err)
					return false
				}
				fill := byte(rng.Intn(255) + 1)
				if err := fx.mem.Fill(a, fill, int(n)); err != nil {
					return false
				}
				live = append(live, obj{a, n, fill})
			}
		}
		fx.ext.Scan()
		if fx.ext.Manifests().Len() != 0 {
			t.Logf("legal program manifested: %v", fx.ext.Manifests().All)
			return false
		}
		return fx.h.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: extension state snapshot/restore is a perfect round trip under
// arbitrary operation sequences — the foundation of checkpoint rollback.
func TestQuickStateRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := newFixture(t)
		fx.ext.SetMode(ModeDiagnostic)
		fx.ext.SetChanges(AllPreventive())
		fx.ext.DelayLimit = 1 << 20

		var live []vmem.Addr
		step := func(n int) {
			for i := 0; i < n; i++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(live))
					fx.ext.Free(live[k], fx.site2)
					live = append(live[:k], live[k+1:]...)
				} else {
					a, err := fx.ext.Malloc(uint32(rng.Intn(200)+1), fx.site)
					if err != nil {
						continue
					}
					live = append(live, a)
				}
			}
		}
		step(60)

		extSnap := fx.ext.State()
		heapSnap := fx.h.State()
		memSnap := fx.mem.Snapshot()
		defer memSnap.Release()
		wantDelayed := fx.ext.DelayedBytes()
		wantObjects := fx.ext.LiveObjects()
		wantMeta := fx.ext.MetaBytes()
		liveSnap := append([]vmem.Addr(nil), live...)

		step(80)

		fx.mem.Restore(memSnap)
		fx.h.SetState(heapSnap)
		fx.ext.SetState(extSnap)
		live = liveSnap

		if fx.ext.DelayedBytes() != wantDelayed ||
			fx.ext.LiveObjects() != wantObjects ||
			fx.ext.MetaBytes() != wantMeta {
			return false
		}
		// The machine must still work identically after rollback.
		step(40)
		return fx.h.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
