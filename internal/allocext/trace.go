// Validation-mode tracing: memory-management operation traces, patch
// trigger counts, and the illegal-access trace that the paper collects with
// Pin (§5). The validation engine compares these across randomized
// re-executions; the report generator renders them (Figure 5, items 4–5).
package allocext

import (
	"fmt"

	"firstaid/internal/callsite"
	"firstaid/internal/vmem"
)

// IllegalKind classifies an access neutralised by a runtime patch.
type IllegalKind int

// Illegal access classes.
const (
	// PadWrite: a write landed in the padding added by an add-padding
	// patch — the buffer overflow, absorbed.
	PadWrite IllegalKind = iota
	// PadRead: an out-of-bounds read from the padding.
	PadRead
	// FreedRead: a read from a delay-freed object — the dangling read,
	// served with preserved contents.
	FreedRead
	// FreedWrite: a write to a delay-freed object — the dangling write,
	// absorbed harmlessly.
	FreedWrite
	// UninitRead: a read of a never-written byte in a zero-filled object
	// — the uninitialized read, served with a defined zero.
	UninitRead
	// RefreeBlocked: a deallocation of an already-freed object stopped
	// by the parameter check — the double free, ignored.
	RefreeBlocked
)

func (k IllegalKind) String() string {
	switch k {
	case PadWrite:
		return "write to padding"
	case PadRead:
		return "read from padding"
	case FreedRead:
		return "read of freed object"
	case FreedWrite:
		return "write to freed object"
	case UninitRead:
		return "read before initialization"
	case RefreeBlocked:
		return "re-free blocked"
	}
	return "unknown"
}

// IsWrite reports whether the access class is a store.
func (k IllegalKind) IsWrite() bool { return k == PadWrite || k == FreedWrite }

// IllegalAccess is one neutralised illegal access.
type IllegalAccess struct {
	Kind      IllegalKind
	PatchSite callsite.ID // call-site of the patch that neutralised it
	Instr     string      // instruction label of the accessing code
	Obj       vmem.Addr   // user address of the object involved
	Offset    int         // byte offset relative to the user region start
	Len       int
}

func (a IllegalAccess) String() string {
	return fmt.Sprintf("%v by %s: obj %#x offset %d len %d (patch site %d)",
		a.Kind, a.Instr, a.Obj, a.Offset, a.Len, a.PatchSite)
}

// MMOp is one entry of the allocation/deallocation trace.
type MMOp struct {
	Alloc   bool
	Site    callsite.ID
	Addr    vmem.Addr // user address
	Size    uint32    // user size
	Patched bool      // a runtime patch fired on this operation
	Delayed bool      // the free was converted to a delay free
}

func (op MMOp) String() string {
	if op.Alloc {
		s := fmt.Sprintf("malloc(%d): %#x", op.Size, op.Addr)
		if op.Patched {
			s += "  (padded/filled, patched)"
		}
		return s
	}
	s := fmt.Sprintf("free(%#x)", op.Addr)
	if op.Delayed {
		s += "  (delayed, patched)"
	} else if op.Patched {
		s += "  (patched)"
	}
	return s
}

// Trace accumulates one validation iteration's observations.
type Trace struct {
	Ops      []MMOp
	Illegal  []IllegalAccess
	Triggers map[callsite.ID]int // patch trigger counts per application point
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{Triggers: map[callsite.ID]int{}}
}

// TriggerCount returns the total number of patch firings.
func (t *Trace) TriggerCount() int {
	n := 0
	for _, c := range t.Triggers {
		n += c
	}
	return n
}

// IllegalBySite groups the illegal accesses by patch application point.
func (t *Trace) IllegalBySite() map[callsite.ID][]IllegalAccess {
	m := map[callsite.ID][]IllegalAccess{}
	for _, a := range t.Illegal {
		m[a.PatchSite] = append(m[a.PatchSite], a)
	}
	return m
}

// AccessSignature is the layout-independent identity of an illegal access:
// the instruction and the offset within the object, but not the (randomized)
// object address. The validation consistency criterion (c) of §5 compares
// multisets of these.
type AccessSignature struct {
	Kind   IllegalKind
	Instr  string
	Offset int
	Len    int
}

// Signatures returns the multiset of access signatures as a count map.
func (t *Trace) Signatures() map[AccessSignature]int {
	m := map[AccessSignature]int{}
	for _, a := range t.Illegal {
		m[AccessSignature{Kind: a.Kind, Instr: a.Instr, Offset: a.Offset, Len: a.Len}]++
	}
	return m
}
