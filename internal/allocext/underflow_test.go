package allocext

import (
	"testing"

	"firstaid/internal/mmbug"
)

func TestFrontPaddingCatchesUnderflow(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddExposing(mmbug.BufferOverflow, nil))

	a, _ := f.ext.Malloc(64, f.site)
	// Underflow: write BEFORE the start of the object (a negative index
	// bug), landing in the front padding.
	if err := f.mem.Write(a-8, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("underflow write should be absorbed: %v", err)
	}
	f.ext.Scan()
	ms := f.ext.Manifests()
	if !ms.Has(mmbug.BufferOverflow) {
		t.Fatal("underflow not manifested via front canary")
	}
	m := ms.All[0]
	if len(m.Offsets) != 4 || m.Offsets[0] != -8 {
		t.Fatalf("offsets = %v, want negative offsets relative to user start", m.Offsets)
	}
	if m.AllocSite != f.site {
		t.Fatalf("implicated site = %d", m.AllocSite)
	}
}

func TestUnderflowDetectedAtFreeToo(t *testing.T) {
	f := newFixture(t)
	f.ext.SetMode(ModeDiagnostic)
	f.ext.SetChanges(NewChangeSet().AddExposing(mmbug.BufferOverflow, nil))

	a, _ := f.ext.Malloc(32, f.site)
	f.mem.Write(a-4, []byte{0xFF})
	// No interim scan: the free-time check must catch it.
	if err := f.ext.Free(a, f.site2); err != nil {
		t.Fatal(err)
	}
	if !f.ext.Manifests().Has(mmbug.BufferOverflow) {
		t.Fatal("free-time padding check missed the underflow")
	}
}
