// Package app defines the interface simulated programs implement and small
// shared helpers for writing them.
//
// A simulated program is an event-driven state machine: Init builds its
// data structures in the virtual heap, Handle processes one recorded input
// event. All mutable program state must live in the virtual heap (rooted
// through the proc root registers) so that checkpoint rollback restores it
// completely; the supervisor checkpoints only at event boundaries, where
// the virtual stack is empty.
package app

import (
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
)

// Program is a simulated application.
type Program interface {
	// Name returns the program identifier (also the patch-pool key).
	Name() string
	// Bugs returns the ground-truth bug classes embedded in the program,
	// used by the experiment harness to score diagnosis accuracy.
	Bugs() []mmbug.Type
	// Init builds the program's initial heap state. It runs under a
	// virtual stack frame and may allocate.
	Init(p *proc.Proc)
	// Handle processes one input event. Memory errors trap out of it.
	Handle(p *proc.Proc, ev replay.Event)
}

// Workloader is implemented by programs that can generate their own input
// logs for the evaluation harness.
type Workloader interface {
	// Workload returns an event log of about n events with the program's
	// bug-triggering input sequence injected at each index in triggers
	// (indices refer to positions in the normal stream).
	Workload(n int, triggers []int) *replay.Log
}

// App combines the two; every evaluated application implements it.
type App interface {
	Program
	Workloader
}

// EventCost is the baseline simulated cost of processing one input event
// (~10 ms at the simulated clock: a 100-requests/second server). Individual
// programs add to it; with the default 200 ms checkpoint interval this
// yields roughly 20 events per checkpoint.
const EventCost = 100_000
