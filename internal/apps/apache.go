// The Apache emulation: a web server front end over an LDAP connection
// cache, carrying the dangling-pointer-read bug of the paper's flagship
// case study (Table 2, Figure 5).
//
// The real bug lives in Apache 2.0.51's util_ldap module: the cache cleanup
// operation util_ald_cache_purge frees cache nodes through the util_ald_free
// wrapper while a search-result index still references them; later requests
// read the freed nodes. The paper's patch delay-frees 7 call-sites — all
// frees issued (directly or through per-node-type helpers) from the purge —
// and its report shows each patch triggering 44 times in the buggy region
// (Table 4: 315 objects across the 7 sites).
//
// The emulation mirrors that structure: a capacity-bounded cache whose
// purge evicts purgeBatch nodes, freeing each node plus its six satellite
// objects through seven distinct 3-level call-sites; a "recent results"
// array that keeps dangling references across the purge; and a periodic
// revisit request that dereferences them.
package apps

import (
	"fmt"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// Heap object magics. Distinct magics per node kind make corrupted or
// poisoned reads fail the integrity asserts, the way a C program crashes on
// a garbage pointer loaded from recycled memory.
const (
	magicNode  = 0x4E4F4445 // "NODE"
	magicValue = 0x56414C55 // "VALU"
	magicKey   = 0x4B455953 // "KEYS"
	magicURL   = 0x55524C53 // "URLS"
	magicCmp   = 0x434D5052 // "CMPR"
	magicWeak  = 0x5745414B // "WEAK"
	magicSib   = 0x53494253 // "SIBS"
)

// Cache geometry.
const (
	apacheCacheCap   = 200 // nodes before a purge fires
	apachePurgeBatch = 45  // nodes evicted per purge (7 objects each → 315)
	apacheRecentCap  = 32  // dangling-reference index capacity
)

// Root register layout.
const (
	rootCacheArr   = 0 // address of the node-pointer array (cap entries)
	rootCacheCount = 1 // number of live nodes
	rootRecentArr  = 2 // address of the recent-results array
	rootRecentLen  = 3
	rootNextVictim = 4 // eviction cursor (index of oldest live slot)
)

// Apache is the emulated server. The three paper variants share its cache:
// the base variant carries the dangling-read bug; InjectUIR and InjectDPW
// add the paper's injected uninitialized-read and dangling-write bugs
// (Apache-uir, Apache-dpw).
type Apache struct {
	InjectUIR bool
	InjectDPW bool
}

// Name implements app.Program.
func (a *Apache) Name() string {
	switch {
	case a.InjectUIR:
		return "apache-uir"
	case a.InjectDPW:
		return "apache-dpw"
	}
	return "apache"
}

// Bugs implements app.Program.
func (a *Apache) Bugs() []mmbug.Type {
	switch {
	case a.InjectUIR:
		return []mmbug.Type{mmbug.UninitRead}
	case a.InjectDPW:
		return []mmbug.Type{mmbug.DanglingWrite}
	}
	return []mmbug.Type{mmbug.DanglingRead}
}

// Init implements app.Program.
func (a *Apache) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("util_ldap_init")()
	staticData(p, apacheStaticKB)
	cache := a.allocTable(p, apacheCacheCap)
	// The recent-results index stores (node pointer, key) pairs; the key
	// copy is the consistency check that fails when the pointer dangles.
	recent := a.allocTable(p, 2*apacheRecentCap)
	p.SetRoot(rootCacheArr, cache)
	p.SetRoot(rootCacheCount, 0)
	p.SetRoot(rootRecentArr, recent)
	p.SetRoot(rootRecentLen, 0)
	p.SetRoot(rootNextVictim, 0)
	p.SetRoot(rootDPWStale, 0)
}

func (a *Apache) allocTable(p *proc.Proc, slots int) vmem.Addr {
	defer p.Enter("util_ald_alloc")()
	t := p.Malloc(uint32(4 * slots))
	p.Memset(t, 0, 4*slots)
	return t
}

// Handle implements app.Program.
func (a *Apache) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("ap_process_request")()
	p.Tick(app.EventCost)
	switch ev.Kind {
	case "search":
		a.search(p, uint32(ev.N))
	case "insert":
		a.insert(p, uint32(ev.N))
	case "revisit":
		a.revisit(p)
	case "stat":
		a.stat(p, uint32(ev.N))
	case "unbind":
		a.unbind(p, ev.N)
	case "scribble":
		a.scribble(p)
	case "verify":
		a.verifyNote(p)
	default:
		p.Assert(false, "apache: unknown request %q", ev.Kind)
	}
}

// --- cache operations ---------------------------------------------------------

// requestScratch models the per-request work of unrelated server
// subsystems — logging, auth, header parsing, connection bookkeeping —
// each with its own allocation and deallocation call-sites. This benign
// call-site diversity is what Rx's whole-heap environmental changes sweep
// up and First-Aid's scoped patches ignore (Table 4).
func (a *Apache) requestScratch(p *proc.Proc, key uint32) {
	subsystems := []string{"ap_log_transaction", "ap_check_auth", "ap_parse_headers", "ap_conn_note", "ap_dns_lookup"}
	sub := subsystems[key%uint32(len(subsystems))]
	defer p.Enter(sub)()
	buf := func() vmem.Addr {
		defer p.Enter("apr_palloc")()
		return p.Malloc(48 + key%64)
	}()
	p.Memset(buf, byte(key), 48)
	func() {
		defer p.Enter("apr_pfree")()
		p.Free(buf)
	}()
}

// search looks the key up, inserting on miss, and records the node in the
// recent-results index — the reference that goes stale across a purge.
func (a *Apache) search(p *proc.Proc, key uint32) {
	a.requestScratch(p, key)
	defer p.Enter("util_ldap_cache_search")()
	node := a.lookup(p, key)
	if node == 0 {
		node = a.cacheInsert(p, key)
	}
	// Record in the recent-results index.
	n := p.Root(rootRecentLen)
	if n < apacheRecentCap {
		p.At("record_recent")
		entry := p.RootAddr(rootRecentArr) + vmem.Addr(8*n)
		p.StoreU32(entry, node)
		p.StoreU32(entry+4, key)
		p.SetRoot(rootRecentLen, n+1)
	}
	// Serve the value.
	p.At("read_value")
	val := p.LoadU32(node + 8)
	p.Assert(p.LoadU32(val) == magicValue, "search: value magic lost for key %d", key)
}

func (a *Apache) insert(p *proc.Proc, key uint32) {
	defer p.Enter("util_ldap_cache_insert_req")()
	if a.lookup(p, key) == 0 {
		a.cacheInsert(p, key)
	}
}

func (a *Apache) lookup(p *proc.Proc, key uint32) vmem.Addr {
	defer p.Enter("util_ald_cache_fetch")()
	arr := p.RootAddr(rootCacheArr)
	count := p.Root(rootCacheCount)
	victim := p.Root(rootNextVictim)
	for i := uint32(0); i < count; i++ {
		slot := (victim + i) % apacheCacheCap
		p.At("fetch_slot")
		node := p.LoadU32(arr + vmem.Addr(4*slot))
		if node == 0 {
			continue
		}
		p.At("fetch_magic")
		p.Assert(p.LoadU32(node) == magicNode, "fetch: node magic lost in slot %d", slot)
		if p.LoadU32(node+4) == key {
			return node
		}
	}
	return 0
}

// cacheInsert adds a node for key, purging when full. This is the call
// path through which the purge — and so all seven buggy frees — executes.
func (a *Apache) cacheInsert(p *proc.Proc, key uint32) vmem.Addr {
	defer p.Enter("util_ald_cache_insert")()
	if p.Root(rootCacheCount) >= apacheCacheCap {
		a.purge(p)
	}
	node := a.newNode(p, key)
	arr := p.RootAddr(rootCacheArr)
	count := p.Root(rootCacheCount)
	slot := (p.Root(rootNextVictim) + count) % apacheCacheCap
	p.At("install_node")
	p.StoreU32(arr+vmem.Addr(4*slot), node)
	p.SetRoot(rootCacheCount, count+1)
	return node
}

// newNode builds a node and its six satellite objects.
func (a *Apache) newNode(p *proc.Proc, key uint32) vmem.Addr {
	defer p.Enter("util_ald_create_node")()
	mk := func(magic uint32, size uint32) vmem.Addr {
		defer p.Enter("util_ald_alloc")()
		o := p.Malloc(size)
		p.StoreU32(o, magic)
		p.StoreU32(o+4, key)
		// Initialise the body so later reads are defined.
		p.Memset(o+8, byte(key), int(size-8))
		return o
	}
	node := mk(magicNode, 36)
	p.StoreU32(node+8, mk(magicValue, 100))
	p.StoreU32(node+12, mk(magicKey, 24))
	p.StoreU32(node+16, mk(magicURL, 48))
	p.StoreU32(node+20, mk(magicCmp, 40))
	p.StoreU32(node+24, mk(magicWeak, 16))
	p.StoreU32(node+28, mk(magicSib, 20))
	return node
}

// utilAldFree is the free wrapper all cache deallocations flow through, as
// in Apache's util_ald_free.
func utilAldFree(p *proc.Proc, a vmem.Addr) {
	defer p.Enter("util_ald_free")()
	p.Free(a)
}

// purge evicts the oldest purgeBatch nodes. THE BUG: the recent-results
// index is not invalidated, leaving dangling pointers to every freed node.
// Each eviction frees seven objects through seven distinct call-sites.
func (a *Apache) purge(p *proc.Proc) {
	defer p.Enter("util_ald_cache_purge")()
	arr := p.RootAddr(rootCacheArr)
	victim := p.Root(rootNextVictim)
	count := p.Root(rootCacheCount)
	n := uint32(apachePurgeBatch)
	if n > count {
		n = count
	}
	for i := uint32(0); i < n; i++ {
		slot := (victim + i) % apacheCacheCap
		p.At("purge_load")
		node := p.LoadU32(arr + vmem.Addr(4*slot))
		if node == 0 {
			continue
		}
		// Satellite frees through per-kind helpers: six call-sites.
		free := func(helper string, off vmem.Addr) {
			defer p.Enter(helper)()
			p.At("load_sat")
			sat := p.LoadU32(node + off)
			utilAldFree(p, sat)
		}
		free("util_ldap_search_node_free", 8)
		free("util_ald_strdup_free", 12)
		free("util_ldap_url_node_free", 16)
		free("util_ldap_compare_node_free", 20)
		free("util_ald_weak_free", 24)
		free("util_ald_sib_free", 28)
		// The node itself: seventh call-site, directly under purge.
		utilAldFree(p, node)
		p.StoreU32(arr+vmem.Addr(4*slot), 0)
	}
	p.SetRoot(rootNextVictim, (victim+n)%apacheCacheCap)
	p.SetRoot(rootCacheCount, count-n)
}

// revisit walks the recent-results index re-reading every recorded node —
// the dangling reads. Without First-Aid the purged nodes have been recycled
// and the magic asserts fail; with the delay-free patches the reads return
// the preserved (stale but consistent) entries and the request succeeds.
func (a *Apache) revisit(p *proc.Proc) {
	defer p.Enter("util_ldap_cache_check")()
	recent := p.RootAddr(rootRecentArr)
	n := p.Root(rootRecentLen)
	for i := uint32(0); i < n; i++ {
		p.At("load_recent")
		entry := recent + vmem.Addr(8*i)
		node := p.LoadU32(entry)
		key := p.LoadU32(entry + 4)
		if node == 0 {
			continue
		}
		p.At("check_node")
		p.Assert(p.LoadU32(node) == magicNode, "revisit: node %d magic lost", i)
		p.At("check_key")
		p.Assert(p.LoadU32(node+4) == key, "revisit: node %d key changed (cache entry recycled under us)", i)
		checks := []struct {
			off   vmem.Addr
			magic uint32
			what  string
		}{
			{8, magicValue, "value"}, {12, magicKey, "key"}, {16, magicURL, "url"},
			{20, magicCmp, "compare"}, {24, magicWeak, "weak"}, {28, magicSib, "sib"},
		}
		for _, c := range checks {
			p.At("check_" + c.what)
			sat := p.LoadU32(node + c.off)
			p.Assert(p.LoadU32(sat) == c.magic, "revisit: %s magic lost (node %d)", c.what, i)
		}
	}
	p.SetRoot(rootRecentLen, 0)
}

// --- injected bugs (Apache-uir, Apache-dpw) -------------------------------------

// stat is the request carrying the injected uninitialized read: it
// allocates a result descriptor and consumes its flags field without
// initialising it, assuming calloc semantics. A scratch buffer freed just
// before makes the recycled memory deterministically dirty, as in the
// paper's injection.
func (a *Apache) stat(p *proc.Proc, key uint32) {
	defer p.Enter("util_ldap_stat")()
	// Scratch churn: dirties the free list with 0xFF bytes.
	func() {
		defer p.Enter("util_ldap_stat_scratch")()
		s := p.Malloc(96)
		p.Memset(s, 0xFF, 96)
		utilAldFree(p, s)
	}()
	desc := func() vmem.Addr {
		defer p.Enter("util_ldap_stat_alloc")()
		defer p.Enter("util_ald_alloc")()
		return p.Malloc(96)
	}()
	p.StoreU32(desc, key) // initialises only the key field
	if a.InjectUIR {
		// BUG: flags (offset 8) is read before any write.
		p.At("read_flags")
		flags := p.LoadU32(desc + 8)
		p.Assert(flags == 0, "stat: unexpected flags %#x for key %d", flags, key)
	} else {
		p.StoreU32(desc+8, 0) // the correct code initialises flags
	}
	utilAldFree(p, desc)
}

const rootDPWStale = 5 // stale connection-buffer pointer (apache-dpw)

// unbind carries the injected dangling write. Phase n=0 allocates a
// connection buffer and frees it while keeping the pointer; phase n=1
// writes through the stale pointer, corrupting whatever now occupies the
// memory; the victim's next integrity check fails.
func (a *Apache) unbind(p *proc.Proc, phase int) {
	defer p.Enter("util_ldap_connection_unbind")()
	if !a.InjectDPW {
		return
	}
	switch phase {
	case 0:
		conn := func() vmem.Addr {
			defer p.Enter("util_ldap_conn_alloc")()
			defer p.Enter("util_ald_alloc")()
			return p.Malloc(64)
		}()
		p.StoreU32(conn, 0x434F4E4E)
		// BUG: the buffer is freed but the pointer is kept.
		func() {
			defer p.Enter("util_ldap_conn_free")()
			utilAldFree(p, conn)
		}()
		p.SetRoot(rootDPWStale, conn)
	case 1:
		stale := p.RootAddr(rootDPWStale)
		if stale != 0 {
			p.At("stale_write")
			// Write the "connection closed" marker through the
			// dangling pointer.
			p.StoreU32(stale, 0xDEADC0DE)
			p.StoreU32(stale+4, 0xDEADC0DE)
			p.StoreU32(stale+8, 0xDEADC0DE)
			p.SetRoot(rootDPWStale, 0)
		}
	}
}

// scribble allocates a victim buffer in the hole left by the unbind free so
// the dangling write has a deterministic victim, then verifies it — the
// failing integrity check of the dangling-write scenario.
func (a *Apache) scribble(p *proc.Proc) {
	defer p.Enter("util_ldap_session_note")()
	note := func() vmem.Addr {
		defer p.Enter("util_ald_alloc")()
		return p.Malloc(64)
	}()
	p.StoreU32(note, magicValue)
	p.Memset(note+4, 0x11, 60)
	p.SetRoot(rootDPWVictim, note)
}

const rootDPWVictim = 6

// verifyNote re-checks the session note; a dangling write through the stale
// unbind pointer lands here.
func (a *Apache) verifyNote(p *proc.Proc) {
	defer p.Enter("util_ldap_session_verify")()
	note := p.RootAddr(rootDPWVictim)
	if note == 0 {
		return
	}
	p.At("verify_note")
	p.Assert(p.LoadU32(note) == magicValue, "session note corrupted")
}

// --- workload -------------------------------------------------------------------

// Workload implements app.Workloader. Normal traffic is a stream of
// searches over a 40-key working set with a revisit every revisitEvery
// events. A trigger injects an insert burst of fresh keys that overflows
// the cache, firing a purge ~3 checkpoint intervals before the next
// revisit — reproducing the paper's "bug-triggering point a little farther
// (3 checkpoints) from the failure point".
func (a *Apache) Workload(n int, triggers []int) *replay.Log {
	switch {
	case a.InjectUIR:
		return a.workloadUIR(n, triggers)
	case a.InjectDPW:
		return a.workloadDPW(n, triggers)
	}
	return a.workloadBase(n, triggers)
}

const apacheRevisitEvery = 60

func (a *Apache) workloadBase(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	const ws = 40 // working-set keys 0..39
	fresh := uint32(1000)
	step := 0
	for log.Len() < n {
		if trig[step] {
			// Insert burst: fills the cache past capacity → purge.
			burst := apacheCacheCap // guaranteed to overflow whatever is resident
			for j := 0; j < burst; j++ {
				log.Append("insert", fmt.Sprintf("uid=crawl%d", fresh), int(fresh))
				fresh++
			}
		}
		if step%apacheRevisitEvery == apacheRevisitEvery-1 {
			log.Append("revisit", "", 0)
		} else {
			key := step * 7 % ws
			log.Append("search", fmt.Sprintf("uid=user%d", key), key)
		}
		step++
	}
	return log
}

func (a *Apache) workloadUIR(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	const ws = 40
	step := 0
	for log.Len() < n {
		if trig[step] {
			log.Append("stat", "uid=admin", 7)
		}
		if step%apacheRevisitEvery == apacheRevisitEvery-1 {
			log.Append("revisit", "", 0)
		} else {
			key := step * 7 % ws
			log.Append("search", fmt.Sprintf("uid=user%d", key), key)
		}
		step++
	}
	return log
}

func (a *Apache) workloadDPW(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	const ws = 40
	step := 0
	for log.Len() < n {
		if trig[step] {
			// free-with-stale-pointer → victim alloc → stale write →
			// victim check: the full dangling-write manifestation.
			log.Append("unbind", "", 0)
			log.Append("scribble", "", 0)
			log.Append("unbind", "", 1)
			log.Append("verify", "", 0)
		}
		if step%apacheRevisitEvery == apacheRevisitEvery-1 {
			log.Append("revisit", "", 0)
		} else {
			key := step * 7 % ws
			log.Append("search", fmt.Sprintf("uid=user%d", key), key)
		}
		step++
	}
	return log
}
