package apps

import (
	"strings"
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/app"
	"firstaid/internal/callsite"
	"firstaid/internal/heap"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// rawMachine is a bare machine: allocator extension in normal mode with no
// patches — equivalent to running the program without First-Aid.
type rawMachine struct {
	p   *proc.Proc
	ext *allocext.Ext
}

func newRawMachine(t testing.TB) *rawMachine {
	t.Helper()
	mem := vmem.New(256 << 20)
	h := heap.New(mem)
	sites := callsite.NewTable()
	ext := allocext.New(h, sites)
	p := proc.New(mem, ext)
	p.Sites = sites
	return &rawMachine{p: p, ext: ext}
}

// runRaw executes the whole log, returning the first fault and the faulting
// event's sequence number (-1 if the run completes).
func runRaw(t testing.TB, a app.App, log *replay.Log) (*proc.Fault, int) {
	t.Helper()
	m := newRawMachine(t)
	if f := proc.Catch(func() { a.Init(m.p) }); f != nil {
		t.Fatalf("%s: Init faulted: %v", a.Name(), f)
	}
	for {
		ev, ok := log.Next()
		if !ok {
			return nil, -1
		}
		if f := proc.Catch(func() { a.Handle(m.p, ev) }); f != nil {
			return f, ev.Seq
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != 9 {
		t.Fatalf("Names = %v", Names())
	}
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, a.Name())
		}
		if len(a.Bugs()) == 0 {
			t.Fatalf("%s has no declared bugs", name)
		}
		if !strings.Contains(Describe(name), "|") {
			t.Fatalf("Describe(%q) = %q", name, Describe(name))
		}
	}
	if _, err := New("emacs"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestNormalWorkloadsRunClean(t *testing.T) {
	// Without bug-triggering inputs every application must process its
	// whole workload without a fault.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, _ := New(name)
			log := a.Workload(600, nil)
			if f, at := runRaw(t, a, log); f != nil {
				t.Fatalf("clean workload faulted at event %d: %v", at, f)
			}
		})
	}
}

func TestTriggersCauseDeterministicFailure(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, _ := New(name)
			log := a.Workload(600, []int{230})
			f1, at1 := runRaw(t, a, log)
			if f1 == nil {
				t.Fatal("trigger did not cause a failure")
			}
			// Deterministic: a second identical run fails at the same
			// event with the same kind.
			b, _ := New(name)
			log2 := b.Workload(600, []int{230})
			f2, at2 := runRaw(t, b, log2)
			if f2 == nil || at2 != at1 || f2.Kind != f1.Kind {
				t.Fatalf("nondeterministic failure: run1 %v@%d, run2 %v@%d", f1, at1, f2, at2)
			}
			t.Logf("%s fails with %v at event %d (%s)", name, f1.Kind, at1, f1.Msg)
		})
	}
}

func TestTriggerPositionsFailureDistance(t *testing.T) {
	// The Apache dangling read must fail several tens of events after the
	// purge (the paper's 3-checkpoint error-propagation distance), while
	// Squid must fail in the trigger event itself.
	a, _ := New("apache")
	log := a.Workload(600, []int{230})
	f, at := runRaw(t, a, log)
	if f == nil {
		t.Fatal("apache trigger did not fail")
	}
	if f.Kind != proc.AssertFailure {
		t.Fatalf("apache failure kind = %v", f.Kind)
	}
	// The trigger at step 230 expands to a burst; the failure must come
	// at the revisit tens of events after the burst's purge.
	if at < 250 {
		t.Fatalf("apache failed too early: event %d", at)
	}

	s, _ := New("squid")
	slog := s.Workload(600, []int{230})
	sf, sat := runRaw(t, s, slog)
	if sf == nil {
		t.Fatal("squid trigger did not fail")
	}
	// Squid's oversized URL is one injected event around position 230.
	if sat < 225 || sat > 240 {
		t.Fatalf("squid failed at event %d, expected ~230", sat)
	}
}

func TestDeclaredBugClassesMatchFailures(t *testing.T) {
	wantKind := map[string][]proc.FaultKind{
		"apache":     {proc.AssertFailure},
		"squid":      {proc.AssertFailure},
		"cvs":        {proc.BadFree, proc.HeapCorruption},
		"pine":       {proc.AssertFailure},
		"mutt":       {proc.AssertFailure},
		"m4":         {proc.AssertFailure},
		"bc":         {proc.AssertFailure},
		"apache-uir": {proc.AssertFailure},
		"apache-dpw": {proc.AssertFailure},
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, _ := New(name)
			log := a.Workload(600, []int{230})
			f, _ := runRaw(t, a, log)
			if f == nil {
				t.Fatal("no failure")
			}
			ok := false
			for _, k := range wantKind[name] {
				if f.Kind == k {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("failure kind %v not in expected set %v (msg: %s)", f.Kind, wantKind[name], f.Msg)
			}
		})
	}
}

func TestAllPreventiveChangesPreventEveryBug(t *testing.T) {
	// With every preventive change applied to all objects (Rx-style), the
	// triggers must be survivable — the foundation of Phase 1.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, _ := New(name)
			log := a.Workload(600, []int{230})
			m := newRawMachine(t)
			m.ext.SetMode(allocext.ModeDiagnostic)
			m.ext.SetChanges(allocext.AllPreventive())
			m.ext.DelayLimit = 64 << 20 // don't recycle during the run
			if f := proc.Catch(func() { a.Init(m.p) }); f != nil {
				t.Fatalf("Init: %v", f)
			}
			for {
				ev, ok := log.Next()
				if !ok {
					break
				}
				if f := proc.Catch(func() { a.Handle(m.p, ev) }); f != nil {
					t.Fatalf("faulted at event %d despite all preventive changes: %v", ev.Seq, f)
				}
			}
		})
	}
}

func TestExposingChangesManifestTheBug(t *testing.T) {
	// For each app, apply the exposing change for its ground-truth bug
	// class (and preventive for all others): the class must manifest.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, _ := New(name)
			bug := a.Bugs()[0]
			log := a.Workload(600, []int{230})
			m := newRawMachine(t)
			m.ext.SetMode(allocext.ModeDiagnostic)
			cs := allocext.NewChangeSet().AddExposing(bug, nil)
			for _, other := range mmbug.All {
				if other != bug {
					cs.AddPreventive(other, nil)
				}
			}
			m.ext.SetChanges(cs)
			m.ext.DelayLimit = 64 << 20
			if f := proc.Catch(func() { a.Init(m.p) }); f != nil {
				t.Fatalf("Init: %v", f)
			}
			var fault *proc.Fault
			for {
				ev, ok := log.Next()
				if !ok {
					break
				}
				if fault = proc.Catch(func() { a.Handle(m.p, ev) }); fault != nil {
					break
				}
				m.ext.Scan()
			}
			m.ext.Scan()
			ms := m.ext.Manifests()
			switch bug {
			case mmbug.BufferOverflow, mmbug.DanglingWrite, mmbug.DoubleFree:
				if !ms.Has(bug) {
					t.Fatalf("%v not manifested; manifests: %v, fault: %v", bug, ms.All, fault)
				}
				if len(ms.Sites(bug)) == 0 {
					t.Fatalf("no sites implicated for %v", bug)
				}
			case mmbug.DanglingRead, mmbug.UninitRead:
				// Read-type bugs manifest as failures under exposure.
				if fault == nil {
					t.Fatalf("%v did not manifest as a failure", bug)
				}
			}
		})
	}
}

func TestApacheManifestsAtSevenFreeSites(t *testing.T) {
	// The flagship structure check: exposing the dangling read (canary
	// fill) and watching which delay-freed objects the program reads is
	// not directly observable here, but the purge must free through 7
	// distinct call-sites. Count them via delay-free.
	a, _ := New("apache")
	log := a.Workload(600, []int{230})
	m := newRawMachine(t)
	m.ext.SetMode(allocext.ModeDiagnostic)
	m.ext.SetChanges(allocext.AllPreventive())
	m.ext.DelayLimit = 64 << 20
	m.ext.ResetSeen()
	if f := proc.Catch(func() { a.Init(m.p) }); f != nil {
		t.Fatal(f)
	}
	for {
		ev, ok := log.Next()
		if !ok {
			break
		}
		if f := proc.Catch(func() { a.Handle(m.p, ev) }); f != nil {
			t.Fatalf("fault: %v", f)
		}
	}
	// All frees in apache flow through util_ald_free; the purge
	// contributes exactly 7 three-level sites with that leaf.
	var purgeSites int
	for _, id := range m.ext.SeenFreeSites() {
		key := m.p.Sites.Key(id)
		if key.Leaf() == "util_ald_free" {
			purgeSites++
		}
	}
	if purgeSites != 7 {
		t.Fatalf("apache purge free sites = %d, want 7", purgeSites)
	}
}

func BenchmarkApacheRawThroughput(b *testing.B) {
	a, _ := New("apache")
	m := newRawMachine(b)
	proc.Catch(func() { a.Init(m.p) })
	log := a.Workload(b.N+10, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, ok := log.Next()
		if !ok {
			break
		}
		if f := proc.Catch(func() { a.Handle(m.p, ev) }); f != nil {
			b.Fatal(f)
		}
	}
}
