// The BC emulation: the arbitrary-precision calculator with the two buffer
// overflows of BC 1.06 (paper Table 2: "two buffer overflows", patched with
// add padding(3)).
//
// Bug A lives in the array-table growth path: more_arrays/more_variables
// copy count+8 entries into the freshly allocated count-entry name tables
// (two call-sites). Bug B is an off-by-one in array stores: index == size
// copies a 32-byte number one slot past the data block (a third call-site).
// Guard objects sit adjacent to each victim — object sizes are chosen so
// each class has its own allocator bin and the victim/guard pairing is
// stable across recycling — and the corruption surfaces through the
// program's own bookkeeping asserts.
package apps

import (
	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

const magicGuard = 0x47554152 // "GUAR"

// Object geometry. Every class gets a unique chunk size so each object
// recycles its own previous chunk from the exact-size bin, keeping the
// victim/guard adjacency deterministic across grows.
const (
	bcATableEntries = 16  // array name-table entries (4 bytes each)
	bcVTableEntries = 18  // variable name-table entries
	bcAGuardLen     = 200 // guard object sizes, one per class
	bcVGuardLen     = 184
	bcDGuardLen     = 168
	bcDataElems     = 8  // data block elements
	bcNumLen        = 32 // a bc number value (multi-precision limbs)
)

// Root registers.
const (
	bcRootANames = 0
	bcRootAGuard = 1
	bcRootVNames = 2
	bcRootVGuard = 3
	bcRootData   = 4
	bcRootDGuard = 5
	bcRootCount  = 6 // current name-table capacity (entries)
	bcRootDSize  = 7 // current data block size (elements)
)

// BC is the emulated calculator.
type BC struct{}

// Name implements app.Program.
func (b *BC) Name() string { return "bc" }

// Bugs implements app.Program.
func (b *BC) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow} }

// Init implements app.Program.
func (b *BC) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("bc_init")()
	staticData(p, bcStaticKB)
	b.allocTables(p, false)
	b.allocData(p)
}

// allocTables (re)allocates the two name tables with their guards. When
// buggy is true the copy loops overrun by 8 entries (32 bytes) — bug A.
func (b *BC) allocTables(p *proc.Proc, buggy bool) {
	oldA, oldAG := p.RootAddr(bcRootANames), p.RootAddr(bcRootAGuard)
	oldV, oldVG := p.RootAddr(bcRootVNames), p.RootAddr(bcRootVGuard)

	a := func() vmem.Addr {
		defer p.Enter("more_arrays")()
		defer p.Enter("bc_malloc")()
		return p.Malloc(4 * bcATableEntries)
	}()
	ag := b.newGuard(p, "array_guard_alloc", bcAGuardLen)
	v := func() vmem.Addr {
		defer p.Enter("more_variables")()
		defer p.Enter("bc_malloc")()
		return p.Malloc(4 * bcVTableEntries)
	}()
	vg := b.newGuard(p, "var_guard_alloc", bcVGuardLen)

	over := uint32(0)
	if buggy {
		over = 8 // BUG A: copies count+8 entries into both tables
	}
	p.At("copy_arrays")
	for i := uint32(0); i < bcATableEntries+over; i++ {
		var val uint32
		if oldA != 0 && i < bcATableEntries {
			val = p.LoadU32(oldA + vmem.Addr(4*i))
		}
		p.StoreU32(a+vmem.Addr(4*i), val)
	}
	p.At("copy_variables")
	for i := uint32(0); i < bcVTableEntries+over; i++ {
		var val uint32
		if oldV != 0 && i < bcVTableEntries {
			val = p.LoadU32(oldV + vmem.Addr(4*i))
		}
		p.StoreU32(v+vmem.Addr(4*i), val)
	}

	if oldA != 0 {
		for _, old := range []vmem.Addr{oldA, oldAG, oldV, oldVG} {
			func() {
				defer p.Enter("bc_free")()
				p.Free(old)
			}()
		}
	}
	p.SetRoot(bcRootANames, a)
	p.SetRoot(bcRootAGuard, ag)
	p.SetRoot(bcRootVNames, v)
	p.SetRoot(bcRootVGuard, vg)
	p.SetRoot(bcRootCount, bcATableEntries)
}

// allocData (re)allocates the array storage block and its guard. Called at
// init and again on every grow, so the store path's victim is allocated
// after the diagnostic checkpoint and the third call-site is patchable.
func (b *BC) allocData(p *proc.Proc) {
	oldD, oldDG := p.RootAddr(bcRootData), p.RootAddr(bcRootDGuard)
	d := func() vmem.Addr {
		defer p.Enter("lookup_array")()
		defer p.Enter("bc_malloc")()
		return p.Malloc(bcNumLen * bcDataElems)
	}()
	dg := b.newGuard(p, "data_guard_alloc", bcDGuardLen)
	if oldD != 0 {
		p.Memcpy(d, oldD, bcNumLen*bcDataElems)
		for _, old := range []vmem.Addr{oldD, oldDG} {
			func() {
				defer p.Enter("bc_free")()
				p.Free(old)
			}()
		}
	} else {
		p.Memset(d, 0, bcNumLen*bcDataElems)
	}
	p.SetRoot(bcRootData, d)
	p.SetRoot(bcRootDGuard, dg)
	p.SetRoot(bcRootDSize, bcDataElems)
}

func (b *BC) newGuard(p *proc.Proc, site string, size uint32) vmem.Addr {
	defer p.Enter(site)()
	g := func() vmem.Addr {
		defer p.Enter("bc_malloc")()
		return p.Malloc(size)
	}()
	p.StoreU32(g, magicGuard)
	p.Memset(g+4, 0, int(size)-4)
	return g
}

// Handle implements app.Program.
func (b *BC) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("bc_program")()
	p.Tick(app.EventCost / 2)
	switch ev.Kind {
	case "calc":
		b.calc(p, ev.N)
	case "grow":
		b.allocTables(p, true)
		b.allocData(p)
	case "store":
		b.store(p, uint32(ev.N))
	default:
		p.Assert(false, "bc: unknown statement %q", ev.Kind)
	}
}

// calc is benign arithmetic with number-object churn. Number sizes stay
// below the table/guard bins so churn cannot disturb victim adjacency.
func (b *BC) calc(p *proc.Proc, n int) {
	defer p.Enter("exec_expr")()
	num := func() vmem.Addr {
		defer p.Enter("bc_new_num")()
		defer p.Enter("bc_malloc")()
		return p.Malloc(uint32(16 + n%33)) // ≤ 48: below every table/guard bin
	}()
	p.Memset(num, byte(n), 16)
	func() {
		defer p.Enter("bc_free_num")()
		p.Free(num)
	}()
}

// store copies a 32-byte number into a[idx]. BUG B: the bound check
// accepts idx == size, writing one full slot past the data block. The
// statement then re-checks the interpreter's bookkeeping guards — where
// corruption from bugs A and B surfaces as the original failure.
func (b *BC) store(p *proc.Proc, idx uint32) {
	defer p.Enter("exec_store")()
	size := p.Root(bcRootDSize)
	p.Assert(idx <= size, "store: index %d beyond array bound %d", idx, size) // buggy: <= instead of <
	p.At("store_elem")
	num := make([]byte, bcNumLen)
	for i := range num {
		num[i] = byte(idx + uint32(i))
	}
	p.Store(p.RootAddr(bcRootData)+vmem.Addr(bcNumLen*idx), num)

	p.At("check_guards")
	p.Assert(p.LoadU32(p.RootAddr(bcRootDGuard)) == magicGuard, "array bookkeeping corrupted")
	p.Assert(p.LoadU32(p.RootAddr(bcRootAGuard)) == magicGuard, "array name table bookkeeping corrupted")
	p.Assert(p.LoadU32(p.RootAddr(bcRootVGuard)) == magicGuard, "variable name table bookkeeping corrupted")
}

// Workload implements app.Workloader: arithmetic with occasional in-bounds
// stores; each trigger injects a grow (bug A, two overflowed tables) and an
// out-of-bounds store (bug B) whose guard checks fail.
func (b *BC) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for step := 0; log.Len() < n; step++ {
		if trig[step] {
			log.Append("grow", "", 0)
			// A few statements of separation, then the off-by-one
			// store: the failure point observing both bugs.
			for j := 0; j < 4; j++ {
				log.Append("calc", "", step+j)
			}
			log.Append("store", "", bcDataElems) // idx == size: bug B
		}
		if step%6 == 5 {
			log.Append("store", "", step%bcDataElems)
		} else {
			log.Append("calc", "", step)
		}
	}
	return log
}
