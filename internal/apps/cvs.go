// The CVS emulation: a version-control server whose error path frees a
// request buffer that the common cleanup path frees again — the double
// free of CVS 1.11.4 in the paper's Table 2.
package apps

import (
	"fmt"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// CVS is the emulated server.
type CVS struct{}

// Name implements app.Program.
func (c *CVS) Name() string { return "cvs" }

// Bugs implements app.Program.
func (c *CVS) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.DoubleFree} }

// Init implements app.Program.
func (c *CVS) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("server_init")()
	staticData(p, cvsStaticKB)
	// Repository entry list: a standing linked structure.
	defer p.Enter("xmalloc")()
	head := p.Malloc(16)
	p.Memset(head, 0, 16)
	p.SetRoot(0, head)
}

// Handle implements app.Program.
func (c *CVS) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("do_cvs_command")()
	p.Tick(app.EventCost)
	switch ev.Kind {
	case "entry":
		c.serveEntry(p, ev.Data, ev.N != 0)
	case "log":
		c.serveLog(p, ev.Data)
	default:
		p.Assert(false, "cvs: unknown command %q", ev.Kind)
	}
}

// serveEntry processes one Entry line. malformed selects the error path —
// THE BUG: error_cleanup frees the line buffer, and the common cleanup at
// the end frees it again.
func (c *CVS) serveEntry(p *proc.Proc, entry string, malformed bool) {
	defer p.Enter("serve_entry")()
	buf := func() vmem.Addr {
		defer p.Enter("xmalloc")()
		return p.Malloc(128)
	}()
	p.Memset(buf, 0, 128)
	p.StoreString(buf, clip(entry, 120))

	if malformed {
		// Error path: reject the entry and release the buffer…
		func() {
			defer p.Enter("error_cleanup")()
			defer p.Enter("xfree")()
			p.Free(buf)
		}()
		// …but fall through to the common cleanup below (the bug:
		// a missing early return).
	} else {
		c.recordEntry(p, buf)
	}

	// Common cleanup: frees buf a second time on the error path.
	func() {
		defer p.Enter("buf_free")()
		defer p.Enter("xfree")()
		p.Free(buf)
	}()
}

// recordEntry copies the entry into the repository list (so the buffer is
// "consumed" and the common cleanup's free is the only one on this path).
func (c *CVS) recordEntry(p *proc.Proc, buf vmem.Addr) {
	defer p.Enter("register_entry")()
	node := func() vmem.Addr {
		defer p.Enter("xmalloc")()
		return p.Malloc(32)
	}()
	p.Memcpy(node, buf, 24)
	p.StoreU32(node+28, p.LoadU32(p.RootAddr(0)))
	p.StoreU32(p.RootAddr(0), node)
}

// serveLog is benign traffic with allocator churn.
func (c *CVS) serveLog(p *proc.Proc, msg string) {
	defer p.Enter("serve_log")()
	tmp := func() vmem.Addr {
		defer p.Enter("xmalloc")()
		return p.Malloc(uint32(64 + len(msg)%32))
	}()
	p.StoreString(tmp, clip(msg, 60))
	func() {
		defer p.Enter("xfree")()
		p.Free(tmp)
	}()
}

// Workload implements app.Workloader: normal entry/log traffic; each
// trigger injects one malformed Entry line.
func (c *CVS) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for step := 0; log.Len() < n; step++ {
		if trig[step] {
			log.Append("entry", "/broken//entry//line", 1)
		}
		if step%3 == 0 {
			log.Append("entry", fmt.Sprintf("/src/file%d.c/1.%d///", step%50, step%9), 0)
		} else {
			log.Append("log", fmt.Sprintf("commit message %d", step), 0)
		}
	}
	return log
}
