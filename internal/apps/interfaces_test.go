package apps

import "firstaid/internal/app"

// Compile-time checks: every evaluation application satisfies the full
// app.App contract (Program + Workloader).
var (
	_ app.App = (*Apache)(nil)
	_ app.App = (*Squid)(nil)
	_ app.App = (*CVS)(nil)
	_ app.App = (*Pine)(nil)
	_ app.App = (*Mutt)(nil)
	_ app.App = (*M4)(nil)
	_ app.App = (*BC)(nil)
)
