// The M4 emulation: a macro processor where undefining a macro frees its
// definition while a pending expansion still references it — the dangling
// pointer reads of M4 1.4.4 in the paper's Table 2. Two objects dangle per
// macro (the definition text and the symbol entry), freed at two distinct
// call-sites; the paper's patch is delay free(2).
package apps

import (
	"fmt"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

const (
	magicSymbol = 0x53594D42 // "SYMB"
	magicDef    = 0x44454653 // "DEFS"

	m4TableCap   = 64
	m4PendingCap = 16
)

// Root registers.
const (
	m4RootTable   = 0 // symbol table: array of entry pointers
	m4RootPending = 1 // pending-expansion stack: (defPtr, entryPtr, hash) triples
	m4RootPendLen = 2
)

// M4 is the emulated macro processor.
type M4 struct{}

// Name implements app.Program.
func (m *M4) Name() string { return "m4" }

// Bugs implements app.Program.
func (m *M4) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.DanglingRead} }

// Init implements app.Program.
func (m *M4) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("symtab_init")()
	staticData(p, m4StaticKB)
	defer p.Enter("xmalloc")()
	table := p.Malloc(4 * m4TableCap)
	p.Memset(table, 0, 4*m4TableCap)
	pending := p.Malloc(12 * m4PendingCap)
	p.Memset(pending, 0, 12*m4PendingCap)
	p.SetRoot(m4RootTable, table)
	p.SetRoot(m4RootPending, pending)
	p.SetRoot(m4RootPendLen, 0)
}

// Handle implements app.Program.
func (m *M4) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("expand_input")()
	p.Tick(app.EventCost / 2) // a fast batch tool
	switch ev.Kind {
	case "define":
		m.define(p, uint32(ev.N), ev.Data)
	case "expand":
		m.expand(p, uint32(ev.N))
	case "queue":
		m.queue(p, uint32(ev.N))
	case "undefine":
		m.undefine(p, uint32(ev.N))
	case "flush":
		m.flush(p)
	default:
		p.Assert(false, "m4: unknown input %q", ev.Kind)
	}
}

func m4Slot(hash uint32) vmem.Addr { return vmem.Addr(4 * (hash % m4TableCap)) }

// define installs (or replaces) a macro: a symbol entry referencing a
// definition-text object.
func (m *M4) define(p *proc.Proc, hash uint32, text string) {
	defer p.Enter("define_macro")()
	m.undefineIfPresent(p, hash)
	def := func() vmem.Addr {
		defer p.Enter("xmalloc")()
		return p.Malloc(uint32(16 + len(text)))
	}()
	p.StoreU32(def, magicDef)
	p.StoreU32(def+4, hash)
	p.StoreU32(def+8, uint32(len(text)))
	p.StoreString(def+16, text)
	entry := func() vmem.Addr {
		defer p.Enter("symtab_insert")()
		defer p.Enter("xmalloc")()
		return p.Malloc(16)
	}()
	p.StoreU32(entry, magicSymbol)
	p.StoreU32(entry+4, hash)
	p.StoreU32(entry+8, def)
	p.StoreU32(p.RootAddr(m4RootTable)+m4Slot(hash), entry)
}

// expand reads the macro's definition immediately — always safe.
func (m *M4) expand(p *proc.Proc, hash uint32) {
	defer p.Enter("expand_macro")()
	p.At("lookup")
	entry := p.LoadU32(p.RootAddr(m4RootTable) + m4Slot(hash))
	if entry == 0 {
		return
	}
	p.Assert(p.LoadU32(entry) == magicSymbol, "expand: symbol entry corrupt")
	def := p.LoadU32(entry + 8)
	p.At("read_def")
	p.Assert(p.LoadU32(def) == magicDef, "expand: definition corrupt")
	n := p.LoadU32(def + 8)
	p.Load(def+16, int(n))
	// Emit the expansion through a transient output token — the
	// allocation churn that recycles prematurely freed symbol entries.
	tok := func() vmem.Addr {
		defer p.Enter("obstack_output")()
		defer p.Enter("xmalloc")()
		return p.Malloc(16)
	}()
	p.Memset(tok, 0x51, 16)
	func() {
		defer p.Enter("obstack_output")()
		defer p.Enter("xfree")()
		p.Free(tok)
	}()
}

// queue records a pending (nested) expansion: pointers into the symbol
// table that survive across inputs — the references that go stale.
func (m *M4) queue(p *proc.Proc, hash uint32) {
	defer p.Enter("push_pending_expansion")()
	entry := p.LoadU32(p.RootAddr(m4RootTable) + m4Slot(hash))
	if entry == 0 {
		return
	}
	def := p.LoadU32(entry + 8)
	n := p.Root(m4RootPendLen)
	if n >= m4PendingCap {
		return
	}
	rec := p.RootAddr(m4RootPending) + vmem.Addr(12*n)
	p.StoreU32(rec, def)
	p.StoreU32(rec+4, entry)
	p.StoreU32(rec+8, hash)
	p.SetRoot(m4RootPendLen, n+1)
}

// undefine frees the macro's definition and entry. THE BUG: pending
// expansions are not checked, leaving dangling references. The two frees go
// through two distinct call-sites — the two application points of the
// paper's delay free(2) patch.
func (m *M4) undefine(p *proc.Proc, hash uint32) {
	defer p.Enter("handle_undefine")()
	m.undefineIfPresent(p, hash)
}

func (m *M4) undefineIfPresent(p *proc.Proc, hash uint32) {
	defer p.Enter("undefine_macro")()
	slot := p.RootAddr(m4RootTable) + m4Slot(hash)
	entry := p.LoadU32(slot)
	if entry == 0 {
		return
	}
	def := p.LoadU32(entry + 8)
	func() {
		defer p.Enter("free_macro_def")()
		defer p.Enter("xfree")()
		p.Free(def)
	}()
	func() {
		defer p.Enter("free_symbol")()
		defer p.Enter("xfree")()
		p.Free(entry)
	}()
	p.StoreU32(slot, 0)
}

// flush replays the pending expansions — the dangling reads when an
// undefine intervened.
func (m *M4) flush(p *proc.Proc) {
	defer p.Enter("flush_pending")()
	n := p.Root(m4RootPendLen)
	for i := uint32(0); i < n; i++ {
		rec := p.RootAddr(m4RootPending) + vmem.Addr(12*i)
		def := p.LoadU32(rec)
		entry := p.LoadU32(rec + 4)
		hash := p.LoadU32(rec + 8)
		p.At("deref_entry")
		p.Assert(p.LoadU32(entry) == magicSymbol, "flush: stale symbol entry %d", i)
		p.Assert(p.LoadU32(entry+4) == hash, "flush: symbol entry %d rebound", i)
		p.At("deref_def")
		p.Assert(p.LoadU32(def) == magicDef, "flush: stale definition %d", i)
		p.Assert(p.LoadU32(def+4) == hash, "flush: definition %d rebound", i)
		sz := p.LoadU32(def + 8)
		p.Assert(sz < 4096, "flush: absurd definition length %d", sz)
		p.Load(def+16, int(sz))
	}
	p.SetRoot(m4RootPendLen, 0)
}

// Workload implements app.Workloader: macro definitions and expansions;
// each trigger queues a pending expansion, later undefines the macro, lets
// normal traffic recycle the freed objects, then flushes.
func (m *M4) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	// A standing set of macros.
	for h := 0; h < 8; h++ {
		log.Append("define", fmt.Sprintf("body of macro %d", h), h)
	}
	pendingFlush := -1
	for step := 8; log.Len() < n; step++ {
		switch {
		case trig[step]:
			victim := 40 + step%8 // a macro outside the working set
			log.Append("define", "doomed macro body with some text", victim)
			log.Append("queue", "", victim)
			log.Append("undefine", "", victim)
			// Normal traffic recycles the freed objects; the flush
			// lands ~1–2 checkpoint intervals after the undefine.
			pendingFlush = step + 50
		case step == pendingFlush:
			log.Append("flush", "", 0)
			pendingFlush = -1
		case step%17 == 16 && pendingFlush < 0:
			// Benign pending use: queue and flush back to back.
			log.Append("queue", "", step%8)
			log.Append("flush", "", 0)
		case step%5 == 4:
			log.Append("define", fmt.Sprintf("updated body %d", step), step%8)
		default:
			log.Append("expand", "", step%8)
		}
	}
	return log
}
