// The Mutt emulation: a mail client whose IMAP folder-name conversion
// (UTF-7 to modified UTF-8) writes up to twice the input length into a
// fixed 64-byte output buffer — the buffer overflow of Mutt 1.3.99i in the
// paper's Table 2. The conversion allocates two buffers (input copy and
// output) at the same call-site; the paper's Table 4 reports 2 objects
// patched in the buggy region.
package apps

import (
	"fmt"
	"strings"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

const (
	muttConvBufLen = 64
	magicMailbox   = 0x4D424F58 // "MBOX"
)

// Mutt is the emulated mail client.
type Mutt struct{}

// Name implements app.Program.
func (m *Mutt) Name() string { return "mutt" }

// Bugs implements app.Program.
func (m *Mutt) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow} }

// Init implements app.Program.
func (m *Mutt) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("mutt_init")()
	staticData(p, muttStaticKB)
	defer p.Enter("safe_malloc")()
	mbox := p.Malloc(128)
	p.StoreU32(mbox, magicMailbox)
	p.Memset(mbox+4, 0, 124)
	p.SetRoot(0, mbox)
}

// Handle implements app.Program.
func (m *Mutt) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("imap_exec")()
	p.Tick(app.EventCost)
	switch ev.Kind {
	case "select":
		m.selectFolder(p, ev.Data)
	case "headers":
		m.fetchHeaders(p, ev.N)
	default:
		p.Assert(false, "mutt: unknown command %q", ev.Kind)
	}
}

// selectFolder converts the folder name. THE BUG: utf7_to_utf8 can emit up
// to 2× the input into the 64-byte output buffer.
func (m *Mutt) selectFolder(p *proc.Proc, name string) {
	defer p.Enter("imap_utf7_decode")()
	alloc := func() vmem.Addr {
		defer p.Enter("conv_buf_alloc")()
		defer p.Enter("safe_malloc")()
		return p.Malloc(muttConvBufLen)
	}()
	in := alloc
	out := func() vmem.Addr {
		defer p.Enter("conv_buf_alloc")()
		defer p.Enter("safe_malloc")()
		return p.Malloc(muttConvBufLen)
	}()
	// Session state allocated right after the conversion buffers: the
	// overflow's victim.
	sess := func() vmem.Addr {
		defer p.Enter("imap_new_session")()
		defer p.Enter("safe_malloc")()
		return p.Malloc(80)
	}()
	p.StoreU32(sess, magicMailbox)
	p.Memset(sess+4, 0, 76)

	p.Memset(in, 0, muttConvBufLen)
	p.StoreString(in, clip(name, muttConvBufLen))

	// The "decode": every input byte expands to two output bytes, with no
	// bound on the output buffer.
	p.At("utf7_expand")
	expanded := make([]byte, 2*len(clip(name, muttConvBufLen)))
	for i := 0; i < len(expanded); i += 2 {
		expanded[i] = name[i/2]
		expanded[i+1] = '.'
	}
	p.Store(out, expanded)

	p.At("use_session")
	p.Assert(p.LoadU32(sess) == magicMailbox, "imap session corrupted selecting %q…", clip(name, 20))

	for _, a := range []vmem.Addr{sess, out, in} {
		func() {
			defer p.Enter("safe_free")()
			p.Free(a)
		}()
	}
}

// fetchHeaders is benign traffic with allocator churn.
func (m *Mutt) fetchHeaders(p *proc.Proc, count int) {
	defer p.Enter("imap_fetch_headers")()
	for i := 0; i < count%5+1; i++ {
		h := func() vmem.Addr {
			defer p.Enter("safe_malloc")()
			return p.Malloc(uint32(40 + i*8))
		}()
		p.Memset(h, byte(i), 40)
		func() {
			defer p.Enter("safe_free")()
			p.Free(h)
		}()
	}
}

// Workload implements app.Workloader: folder selection and header fetches;
// each trigger selects a folder whose UTF-7 name expands past the buffer.
func (m *Mutt) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for step := 0; log.Len() < n; step++ {
		if trig[step] {
			log.Append("select", "&"+strings.Repeat("JBje", 15)+"-", 0)
		}
		if step%3 == 0 {
			log.Append("select", fmt.Sprintf("INBOX.lists.%d", step%12), 0)
		} else {
			log.Append("headers", "", step)
		}
	}
	return log
}
