// The Pine emulation: a mail client whose RFC 822 address parser copies a
// From: header into a fixed-size address buffer — the buffer overflow of
// Pine 4.44 in the paper's Table 2. Reading one message parses ten generic
// headers plus one address header; the address buffer comes from the
// parser's own call-site, the patch application point (the paper's Table 4
// reports 11 padded objects in its buggy region — one per message parsed).
package apps

import (
	"fmt"
	"strings"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

const (
	pineHdrBufLen  = 128
	pineAddrBufLen = 136 // distinct size: the address buffer recycles its own chunk
	pineHdrPerMail = 11
	magicEnvelope  = 0x454E5650 // "ENVP"
)

// Pine is the emulated mail client.
type Pine struct{}

// Name implements app.Program.
func (pi *Pine) Name() string { return "pine" }

// Bugs implements app.Program.
func (pi *Pine) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow} }

// Init implements app.Program.
func (pi *Pine) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("pine_init")()
	staticData(p, pineStaticKB)
	defer p.Enter("fs_get")()
	folder := p.Malloc(256)
	p.Memset(folder, 0, 256)
	p.SetRoot(0, folder)
}

// Handle implements app.Program.
func (pi *Pine) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("mail_fetch_message")()
	p.Tick(app.EventCost)
	switch ev.Kind {
	case "read":
		pi.readMail(p, ev.Data)
	case "next":
		p.Tick(20_000) // navigation, no parsing
	default:
		p.Assert(false, "pine: unknown action %q", ev.Kind)
	}
}

// readMail parses one message: ten generic header buffers, one address
// buffer from the address-parser's own call-site, and an envelope. THE
// BUG: rfc822_parse_adrlist copies the From: value into its fixed 128-byte
// address buffer without a bounds check, overrunning into the envelope
// allocated right after it. The paper's patch pads the address-parser
// allocation site; in its buggy region 11 objects received padding (one
// address buffer per message parsed).
func (pi *Pine) readMail(p *proc.Proc, from string) {
	defer p.Enter("mail_parse_headers")()
	var bufs [pineHdrPerMail - 1]vmem.Addr
	for i := range bufs {
		bufs[i] = func() vmem.Addr {
			defer p.Enter("rfc822_parse_header")()
			defer p.Enter("fs_get")()
			return p.Malloc(pineHdrBufLen)
		}()
		p.Memset(bufs[i], 0, pineHdrBufLen)
	}
	// THE VICTIM'S SOURCE: the address buffer, from the address parser's
	// dedicated call-site — the future patch application point.
	addrBuf := func() vmem.Addr {
		defer p.Enter("rfc822_parse_adrlist")()
		defer p.Enter("fs_get")()
		return p.Malloc(pineAddrBufLen)
	}()
	p.Memset(addrBuf, 0, pineAddrBufLen)
	env := func() vmem.Addr {
		defer p.Enter("mail_newenvelope")()
		defer p.Enter("fs_get")()
		return p.Malloc(96)
	}()
	p.StoreU32(env, magicEnvelope)
	p.Memset(env+4, 0, 92)

	// The buggy copy: no bounds check against the 128-byte buffer.
	func() {
		defer p.Enter("rfc822_parse_adrlist")()
		p.At("copy_from")
		p.StoreString(addrBuf, from)
	}()
	// Generic headers are parsed correctly.
	for i := range bufs {
		p.StoreString(bufs[i], fmt.Sprintf("Header-%d: value", i))
	}

	p.At("render")
	p.Assert(p.LoadU32(env) == magicEnvelope, "envelope corrupted while rendering message")

	for i := range bufs {
		func() {
			defer p.Enter("fs_give_hdr")()
			defer p.Enter("fs_give")()
			p.Free(bufs[i])
		}()
	}
	func() {
		defer p.Enter("rfc822_free_adr")()
		defer p.Enter("fs_give")()
		p.Free(addrBuf)
	}()
	func() {
		defer p.Enter("mail_free_envelope")()
		defer p.Enter("fs_give")()
		p.Free(env)
	}()
}

// Workload implements app.Workloader: reading a mailbox message by
// message; each trigger injects a message with an oversized From: header.
func (pi *Pine) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for step := 0; log.Len() < n; step++ {
		if trig[step] {
			long := "\"" + strings.Repeat("spoofed name ", 18) + "\" <evil@example.com>"
			log.Append("read", long, 0)
		}
		if step%4 == 3 {
			log.Append("next", "", 0)
		} else {
			log.Append("read", fmt.Sprintf("Alice Example <alice%d@example.com>", step%23), 0)
		}
	}
	return log
}
