// Package apps contains the emulated applications of the paper's
// evaluation (Table 2): three servers (Apache, Squid, CVS) and four desktop
// programs (Pine, Mutt, M4, BC), plus the two injected-bug Apache variants
// (Apache-uir, Apache-dpw). Each embeds its published bug class with the
// published call-site structure and provides a workload generator that
// mixes bug-triggering inputs with normal inputs.
package apps

import (
	"fmt"
	"sort"

	"firstaid/internal/app"
)

// New returns a fresh instance of the named application.
func New(name string) (app.App, error) {
	switch name {
	case "apache":
		return &Apache{}, nil
	case "apache-uir":
		return &Apache{InjectUIR: true}, nil
	case "apache-dpw":
		return &Apache{InjectDPW: true}, nil
	case "squid":
		return &Squid{}, nil
	case "cvs":
		return &CVS{}, nil
	case "pine":
		return &Pine{}, nil
	case "mutt":
		return &Mutt{}, nil
	case "m4":
		return &M4{}, nil
	case "bc":
		return &BC{}, nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names lists every application in the evaluation order of the paper's
// Table 3.
func Names() []string {
	return []string{"apache", "squid", "cvs", "pine", "mutt", "m4", "bc", "apache-uir", "apache-dpw"}
}

// RealBugNames lists the seven applications with developer-introduced bugs
// (Tables 4 and 5 exclude the injected variants).
func RealBugNames() []string {
	return []string{"apache", "squid", "cvs", "pine", "mutt", "m4", "bc"}
}

// Describe returns the Table 2 row for an application.
func Describe(name string) string {
	rows := map[string]string{
		"apache":     "Apache 2.0.51 | dangling pointer read | 263K LOC | web server",
		"apache-uir": "Apache 2.0.51 | uninitialized read (injected) | 263K LOC | web server",
		"apache-dpw": "Apache 2.0.51 | dangling pointer write (injected) | 263K LOC | web server",
		"squid":      "Squid 2.3 | buffer overflow | 93K LOC | proxy cache",
		"cvs":        "CVS 1.11.4 | double free | 114K LOC | version control",
		"pine":       "Pine 4.44 | buffer overflow | 330K LOC | email client",
		"mutt":       "Mutt 1.3.99i | buffer overflow | 86K LOC | email client",
		"m4":         "M4 1.4.4 | dangling pointer read | 17K LOC | macro processor",
		"bc":         "BC 1.06 | buffer overflow | 14K LOC | calculator",
	}
	if r, ok := rows[name]; ok {
		return r
	}
	return name + " | unknown"
}

// SortedNames returns Names in lexical order (for deterministic iteration
// in tooling that doesn't need paper order).
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
