// The Squid emulation: a proxy cache whose request parser copies the URL
// into a fixed 256-byte buffer without a bounds check — the buffer overflow
// of Squid 2.3 in the paper's Table 2.
//
// Request handling allocates the URL buffer and then the per-request state
// block; in steady state the allocator hands back the same adjacent chunk
// pair every request (LIFO bins), so an oversized URL deterministically
// overruns the buffer into the state block, destroying its integrity magic
// and its chunk's boundary tag — the crash First-Aid's padding patch
// absorbs.
package apps

import (
	"fmt"
	"strings"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

const (
	squidURLBufLen = 256
	magicReqState  = 0x52455153 // "REQS"
)

// Squid is the emulated proxy.
type Squid struct{}

// Name implements app.Program.
func (s *Squid) Name() string { return "squid" }

// Bugs implements app.Program.
func (s *Squid) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow} }

// Init implements app.Program.
func (s *Squid) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("squid_init")()
	// A modest object cache so the heap has realistic standing content.
	staticData(p, squidStaticKB)
	defer p.Enter("storeInit")()
	idx := p.Malloc(4 * 64)
	p.Memset(idx, 0, 4*64)
	p.SetRoot(0, idx)
	p.SetRoot(1, 0) // cached-object count
}

// Handle implements app.Program.
func (s *Squid) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("clientProcessRequest")()
	p.Tick(app.EventCost)
	switch ev.Kind {
	case "GET":
		s.get(p, ev.Data)
	default:
		p.Assert(false, "squid: unknown request %q", ev.Kind)
	}
}

func (s *Squid) get(p *proc.Proc, url string) {
	// Header scratch, exercised and released per request.
	hdr := func() vmem.Addr {
		defer p.Enter("httpHeaderAlloc")()
		defer p.Enter("xmalloc")()
		return p.Malloc(64)
	}()
	p.Memset(hdr, 0, 64)

	// THE VICTIM: fixed-size URL buffer.
	buf := func() vmem.Addr {
		defer p.Enter("parseHttpRequest")()
		defer p.Enter("xmalloc")()
		return p.Malloc(squidURLBufLen)
	}()
	// Per-request state, allocated right after the buffer: the object the
	// overflow destroys.
	state := func() vmem.Addr {
		defer p.Enter("clientCreateStateBlock")()
		defer p.Enter("xmalloc")()
		return p.Malloc(200)
	}()
	p.StoreU32(state, magicReqState)
	p.Memset(state+4, 0, 196)

	// THE BUG: strcpy(buf, url) with no length check.
	p.At("copy_url")
	p.StoreString(buf, url)

	// Serve the object; the state block must still be intact.
	p.At("check_state")
	p.Assert(p.LoadU32(state) == magicReqState, "request state corrupted while serving %q…", clip(url, 24))
	s.cacheTouch(p, url)

	func() {
		defer p.Enter("clientFreeState")()
		defer p.Enter("xfree")()
		p.Free(state)
	}()
	func() {
		defer p.Enter("parseCleanup")()
		defer p.Enter("xfree")()
		p.Free(buf)
	}()
	func() {
		defer p.Enter("httpHeaderClean")()
		defer p.Enter("xfree")()
		p.Free(hdr)
	}()
}

// cacheTouch keeps a small rotating object cache so the heap carries state
// across requests.
func (s *Squid) cacheTouch(p *proc.Proc, url string) {
	defer p.Enter("storeAppend")()
	idx := p.RootAddr(0)
	n := p.Root(1)
	slot := n % 64
	p.At("load_slot")
	old := p.LoadU32(idx + vmem.Addr(4*slot))
	if old != 0 {
		defer p.Enter("storeRelease")()
		func() {
			defer p.Enter("xfree")()
			p.Free(old)
		}()
	}
	obj := func() vmem.Addr {
		defer p.Enter("xmalloc")()
		return p.Malloc(uint32(48 + len(url)%64))
	}()
	p.Memset(obj, byte(len(url)), 48)
	p.StoreU32(idx+vmem.Addr(4*slot), obj)
	p.SetRoot(1, n+1)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Workload implements app.Workloader: normal GETs with short URLs; each
// trigger injects one request whose URL exceeds the 256-byte buffer.
func (s *Squid) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for step := 0; log.Len() < n; step++ {
		if trig[step] {
			long := "/exploit/" + strings.Repeat("A", 300)
			log.Append("GET", long, 0)
		}
		log.Append("GET", fmt.Sprintf("/site%d/page%d.html", step%9, step%37), 0)
	}
	return log
}
