package apps

import "firstaid/internal/proc"

// staticData gives an application the standing heap footprint of its
// real-world counterpart (paper Tables 5/6: Apache 0.8 MB … M4 16 MB).
// The block models code-adjacent long-lived state — configuration, locale
// tables, parsed templates — that exists from startup and is never freed
// or rewritten, so it costs nothing at checkpoint time (untouched pages
// are never COW-copied) but anchors the space-overhead ratios.
func staticData(p *proc.Proc, kb int) {
	defer p.Enter("static_data_alloc")()
	p.Malloc(uint32(kb) * 1024)
	// Fresh Sbrk pages arrive zeroed; no initialisation needed.
}

// Standing heap sizes in KiB, matching the paper's measured original
// heaps (Table 6) minus the dynamic structures the emulations build.
const (
	apacheStaticKB = 600
	squidStaticKB  = 2300
	cvsStaticKB    = 200
	pineStaticKB   = 630
	muttStaticKB   = 350
	m4StaticKB     = 16000
	bcStaticKB     = 50
)
