package baseline

import (
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/core"
)

func TestRxSurvivesButDoesNotPrevent(t *testing.T) {
	// Rx must survive every trigger (recover each time) but, unlike
	// First-Aid, must keep failing on each new trigger.
	a, _ := apps.New("squid")
	log := a.Workload(1500, []int{200, 600, 1000})
	rx := NewRx(a, log, core.MachineConfig{})
	st := rx.Run()
	if st.Failures != 3 {
		t.Fatalf("failures = %d, want 3 (one per trigger)", st.Failures)
	}
	if st.Recoveries != 3 {
		t.Fatalf("recoveries = %d, want 3", st.Recoveries)
	}
	if st.Skipped != 0 {
		t.Fatalf("skipped = %d", st.Skipped)
	}
	if st.ChangedSites == 0 || st.ChangedObjects == 0 {
		t.Fatalf("change footprint not measured: %+v", st)
	}
}

func TestRxApacheSurvives(t *testing.T) {
	a, _ := apps.New("apache")
	log := a.Workload(900, []int{230})
	rx := NewRx(a, log, core.MachineConfig{})
	st := rx.Run()
	if st.Failures != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Rx applies changes to every object in the region: far more than
	// First-Aid's 7 call-sites / 315 objects.
	if st.ChangedSites <= 7 {
		t.Errorf("Rx changed sites = %d, expected well above First-Aid's 7", st.ChangedSites)
	}
	if st.ChangedObjects <= 315 {
		t.Errorf("Rx changed objects = %d, expected well above First-Aid's 315", st.ChangedObjects)
	}
	t.Logf("Rx apache: %d sites, %d objects", st.ChangedSites, st.ChangedObjects)
}

func TestRestartLosesStateAndKeepsFailing(t *testing.T) {
	a, _ := apps.New("squid")
	log := a.Workload(1500, []int{200, 600, 1000})
	rs := NewRestart(a, log, core.MachineConfig{})
	st := rs.Run()
	if st.Failures != 3 || st.Restarts != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// The restart penalty must appear in the timeline: 1500 events at
	// ~10ms plus 3×2s restarts.
	if st.SimSeconds < 15+3*2-1 {
		t.Fatalf("SimSeconds = %.2f, restart penalties missing", st.SimSeconds)
	}
}

func TestRestartCleanRunMatchesEventCount(t *testing.T) {
	a, _ := apps.New("cvs")
	log := a.Workload(300, nil)
	rs := NewRestart(a, log, core.MachineConfig{})
	st := rs.Run()
	if st.Failures != 0 || st.Restarts != 0 {
		t.Fatalf("clean run restarted: %+v", st)
	}
	if st.Events != log.Len() {
		t.Fatalf("events = %d, want %d", st.Events, log.Len())
	}
}

func TestRxTimelineAdvancesThroughRecovery(t *testing.T) {
	a, _ := apps.New("squid")
	clean := a.Workload(600, nil)
	rxClean := NewRx(a, clean, core.MachineConfig{})
	cleanStats := rxClean.Run()

	b, _ := apps.New("squid")
	buggy := b.Workload(600, []int{200})
	rxBuggy := NewRx(b, buggy, core.MachineConfig{})
	buggyStats := rxBuggy.Run()

	if buggyStats.SimSeconds <= cleanStats.SimSeconds {
		t.Fatalf("recovery work invisible in timeline: clean %.3fs vs buggy %.3fs",
			cleanStats.SimSeconds, buggyStats.SimSeconds)
	}
}
