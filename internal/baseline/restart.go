package baseline

import (
	"firstaid/internal/app"
	"firstaid/internal/core"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
)

// RestartPenaltyCycles models the cold-start cost of killing and relaunching
// the process (2 simulated seconds: exec, config parse, socket setup).
const RestartPenaltyCycles = 2 * proc.CyclesPerSecond

// RestartStats summarises a restart-discipline run.
type RestartStats struct {
	Events     int
	Failures   int
	Restarts   int
	SimSeconds float64
}

// Restart runs a program under the classic restart discipline: any failure
// kills the process; a fresh process resumes with the next input. All
// session state (caches, tables) is lost, so deterministic bug inputs fail
// again every time and throughput recovers slowly after each restart.
type Restart struct {
	Trace TraceFunc

	prog  app.Program
	log   *replay.Log
	cfg   core.MachineConfig
	m     *core.Machine
	stats RestartStats

	// simBase carries the monotonic timeline across process
	// generations.
	simBase uint64
}

// NewRestart builds the first process generation.
func NewRestart(prog app.Program, log *replay.Log, cfg core.MachineConfig) *Restart {
	return &Restart{prog: prog, log: log, cfg: cfg, m: core.NewMachine(prog, log, cfg)}
}

func (r *Restart) simNow() uint64 { return r.simBase + r.m.SimNow() }

// Run processes the whole log.
func (r *Restart) Run() RestartStats {
	for {
		r.m.Ckpt.MaybeCheckpoint() // checkpoints exist but are never used for recovery
		r.m.SyncClock()
		cursorBefore := r.m.Log.Cursor()
		f, ok := r.m.Step()
		if !ok {
			break
		}
		r.stats.Events++
		if r.Trace != nil {
			r.Trace(r.m.Log.At(cursorBefore), r.simNow(), f)
		}
		if f != nil {
			r.stats.Failures++
			r.restart()
		}
	}
	r.stats.SimSeconds = float64(r.simNow()) / proc.CyclesPerSecond
	return r.stats
}

// restart replaces the machine with a fresh one: new heap, re-initialised
// program state, cold caches. The replay log (external input) is shared;
// the failing request is lost with the process.
func (r *Restart) restart() {
	r.stats.Restarts++
	cursor := r.log.Cursor()
	r.simBase = r.simNow() + RestartPenaltyCycles
	r.m = core.NewMachine(r.prog, r.log, r.cfg)
	r.log.SetCursor(cursor) // NewMachine does not move the cursor, but be explicit
}
