// Package baseline implements the two recovery baselines the paper
// compares First-Aid against (§7.3, Figure 4, Table 4):
//
//   - Rx [Qin 2005b]: checkpoint rollback plus environmental changes
//     applied to ALL memory objects during re-execution, disabled again
//     once the failure region is passed. Rx survives each failure but —
//     because the changes are too heavy to leave enabled — cannot prevent
//     the same bug from striking again.
//   - Restart [Gray 1986, Sullivan 1991]: kill and re-initialise the
//     process, losing all session state and paying a cold-start penalty;
//     deterministic bug-triggering inputs fail again every time.
package baseline

import (
	"firstaid/internal/allocext"
	"firstaid/internal/app"
	"firstaid/internal/core"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
)

// TraceFunc observes main-loop events for throughput measurement.
type TraceFunc func(ev replay.Event, simNow uint64, fault *proc.Fault)

// RxStats summarises an Rx run.
type RxStats struct {
	Events     int
	Failures   int
	Recoveries int
	Skipped    int
	SimSeconds float64
	// ChangedSites / ChangedObjects measure the footprint of Rx's
	// environmental changes in the buggy region of the *first* recovery:
	// distinct allocation+deallocation call-sites exercised, and memory
	// objects allocated or freed, all of which receive changes (the Rx
	// columns of Table 4).
	ChangedSites   int
	ChangedObjects uint64
}

// Rx runs a program under the Rx recovery discipline.
type Rx struct {
	M     *core.Machine
	Trace TraceFunc

	cfg   core.MachineConfig
	stats RxStats
}

// NewRx builds an Rx-supervised machine.
func NewRx(prog app.Program, log *replay.Log, cfg core.MachineConfig) *Rx {
	return &Rx{M: core.NewMachine(prog, log, cfg), cfg: cfg}
}

// Run processes the whole log.
func (r *Rx) Run() RxStats {
	for {
		r.M.Ckpt.MaybeCheckpoint()
		r.M.SyncClock()
		cursorBefore := r.M.Log.Cursor()
		f, ok := r.M.Step()
		if !ok {
			break
		}
		r.stats.Events++
		if r.Trace != nil {
			r.Trace(r.M.Log.At(cursorBefore), r.M.SimNow(), f)
		}
		if f != nil {
			r.stats.Failures++
			r.recover(f)
		}
	}
	r.stats.SimSeconds = r.M.SimSeconds()
	return r.stats
}

// window mirrors the supervisor's ~3-checkpoint-interval success horizon.
func (r *Rx) window() int {
	cps := r.M.Ckpt.Checkpoints()
	if len(cps) >= 2 {
		span := cps[len(cps)-1].Cursor - cps[0].Cursor
		if per := span / (len(cps) - 1); per > 0 {
			w := 3 * per
			if w < 5 {
				w = 5
			}
			if w > 400 {
				w = 400
			}
			return w
		}
	}
	return 30
}

// recover is Rx's survival loop: roll back, re-execute with all
// environmental changes on all objects, and — crucially — disable the
// changes once past the failure region.
func (r *Rx) recover(f *proc.Fault) {
	failCursor := r.M.Log.Cursor()
	until := failCursor + r.window()
	cps := r.M.Ckpt.Checkpoints()

	for i := len(cps) - 1; i >= 0 && i >= len(cps)-8; i-- {
		cp := cps[i]
		r.M.Rollback(cp)
		heapM0, heapF0 := heapCounts(r.M)
		out := r.M.ReExecute(allocext.AllPreventive(), until)
		if out.Fault == nil {
			// Survived. The changes are now disabled (ReExecute
			// restored normal mode with no patch source) and
			// execution continues from the post-region state.
			r.stats.Recoveries++
			if r.stats.Recoveries == 1 {
				heapM1, heapF1 := heapCounts(r.M)
				r.stats.ChangedObjects = (heapM1 - heapM0) + (heapF1 - heapF0)
				r.stats.ChangedSites = len(r.M.SeenAllocSites()) + len(r.M.SeenFreeSites())
			}
			r.M.Ckpt.DropAfter(cp)
			return
		}
	}
	// Unsurvivable: drop the failing request.
	r.stats.Skipped++
	cp := r.M.Ckpt.Latest()
	r.M.Rollback(cp)
	for r.M.Log.Cursor() < failCursor-1 {
		if f, ok := r.M.Step(); !ok || f != nil {
			break
		}
	}
	r.M.Log.SetCursor(failCursor)
}

func heapCounts(m *core.Machine) (uint64, uint64) {
	return heapMallocs(m), heapFrees(m)
}

func heapMallocs(m *core.Machine) uint64 { n, _ := m.Heap.Counts(); return n }
func heapFrees(m *core.Machine) uint64   { _, n := m.Heap.Counts(); return n }
