// Package callsite implements the multi-level call-site signatures that
// First-Aid uses as patch application points.
//
// The paper defines a call-site as "the return addresses of the most recent
// three functions on the stack" (§2): memory objects allocated or freed
// under the same three-level call chain tend to share characteristics (the
// same buffer overflows, the same premature frees), so a call-site is the
// natural signature for a runtime patch. The simulated machine has no
// native return addresses; the equivalent here is the names of the top
// three frames of the virtual call stack maintained by package proc, which
// has the same aliasing/precision trade-off.
package callsite

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Depth is the number of stack levels included in a signature.
const Depth = 3

// ID is the interned identifier of a call-site signature. The zero ID is
// never assigned and means "no call-site".
type ID uint32

// Key is a call-site signature: the innermost Depth frames, leaf first.
// Shallower stacks leave trailing entries empty.
type Key [Depth]string

// String renders the key leaf-first, e.g. "util_ald_free<util_ald_cache_purge<main".
func (k Key) String() string {
	parts := make([]string, 0, Depth)
	for _, f := range k {
		if f == "" {
			break
		}
		parts = append(parts, f)
	}
	if len(parts) == 0 {
		return "<empty>"
	}
	return strings.Join(parts, "<")
}

// Leaf returns the innermost frame, the function that issued the request.
func (k Key) Leaf() string { return k[0] }

// FromStack builds a Key from a call stack ordered outermost-first, the
// order in which package proc stores frames.
func FromStack(stack []string) Key {
	var k Key
	for i := 0; i < Depth && i < len(stack); i++ {
		k[i] = stack[len(stack)-1-i]
	}
	return k
}

// Table interns call-site keys and assigns stable IDs. A Table belongs to
// one simulated process tree; IDs are only meaningful within their table.
// The zero value is not usable; call NewTable.
type Table struct {
	byKey map[Key]ID
	byID  []Key // index id-1
}

// NewTable returns an empty interning table.
func NewTable() *Table {
	return &Table{byKey: make(map[Key]ID)}
}

// Intern returns the ID for key, assigning a fresh one on first sight.
func (t *Table) Intern(key Key) ID {
	if id, ok := t.byKey[key]; ok {
		return id
	}
	t.byID = append(t.byID, key)
	id := ID(len(t.byID))
	t.byKey[key] = id
	return id
}

// Lookup returns the ID for key, or 0 if it has never been interned.
func (t *Table) Lookup(key Key) ID { return t.byKey[key] }

// Key returns the signature for id. It panics on an unknown ID, which would
// indicate IDs leaking across tables.
func (t *Table) Key(id ID) Key {
	if id == 0 || int(id) > len(t.byID) {
		panic(fmt.Sprintf("callsite: unknown id %d", id))
	}
	return t.byID[id-1]
}

// Len returns the number of interned call-sites.
func (t *Table) Len() int { return len(t.byID) }

// Clone returns an independent copy of the table with identical IDs, so a
// forked machine (parallel validation) can intern new sites without racing
// the original. Existing IDs remain valid in both.
func (t *Table) Clone() *Table {
	cp := &Table{
		byKey: make(map[Key]ID, len(t.byKey)),
		byID:  append([]Key(nil), t.byID...),
	}
	for k, id := range t.byKey {
		cp.byKey[k] = id
	}
	return cp
}

// All returns every interned ID in assignment order.
func (t *Table) All() []ID {
	ids := make([]ID, len(t.byID))
	for i := range ids {
		ids[i] = ID(i + 1)
	}
	return ids
}

// Hash64 returns a stable 64-bit hash of the key, used for the synthetic
// "return address" values printed in bug reports so they resemble the
// paper's 0x4022f971@util_ald_free notation.
func Hash64(key Key) uint64 {
	h := fnv.New64a()
	for _, f := range key {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// FormatFrame renders one frame as the paper's reports do:
// "0x4022f971@util_ald_free".
func FormatFrame(key Key, level int) string {
	if level < 0 || level >= Depth || key[level] == "" {
		return ""
	}
	// Derive a per-level synthetic address from the whole-key hash so the
	// same function appearing in different chains prints differently,
	// like distinct return addresses would.
	addr := uint32(Hash64(key)>>uint(8*level)) | 0x0800_0000
	return fmt.Sprintf("%#x@%s", addr, key[level])
}

// Set is an ordered set of call-site IDs, used by the diagnosis engine's
// binary search over candidate application points.
type Set struct {
	ids map[ID]struct{}
}

// NewSet builds a Set from ids.
func NewSet(ids ...ID) *Set {
	s := &Set{ids: make(map[ID]struct{}, len(ids))}
	for _, id := range ids {
		s.ids[id] = struct{}{}
	}
	return s
}

// Add inserts id.
func (s *Set) Add(id ID) { s.ids[id] = struct{}{} }

// Remove deletes id.
func (s *Set) Remove(id ID) { delete(s.ids, id) }

// Contains reports membership.
func (s *Set) Contains(id ID) bool {
	_, ok := s.ids[id]
	return ok
}

// Len returns the set size.
func (s *Set) Len() int { return len(s.ids) }

// Sorted returns the members in increasing ID order, giving the binary
// search a deterministic partition.
func (s *Set) Sorted() []ID {
	out := make([]ID, 0, len(s.ids))
	for id := range s.ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Halves splits the set into two deterministic halves (first half gets the
// extra element on odd sizes).
func (s *Set) Halves() (lo, hi *Set) {
	ids := s.Sorted()
	mid := (len(ids) + 1) / 2
	return NewSet(ids[:mid]...), NewSet(ids[mid:]...)
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	return NewSet(s.Sorted()...)
}
