package callsite

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFromStack(t *testing.T) {
	k := FromStack([]string{"main", "handle", "wrapper", "alloc"})
	want := Key{"alloc", "wrapper", "handle"}
	if k != want {
		t.Fatalf("FromStack = %v, want %v", k, want)
	}
}

func TestFromStackShallow(t *testing.T) {
	k := FromStack([]string{"main"})
	if k != (Key{"main", "", ""}) {
		t.Fatalf("shallow key = %v", k)
	}
	if k.Leaf() != "main" {
		t.Fatalf("leaf = %q", k.Leaf())
	}
}

func TestKeyString(t *testing.T) {
	k := Key{"free", "purge", "insert"}
	if got := k.String(); got != "free<purge<insert" {
		t.Fatalf("String = %q", got)
	}
	if (Key{}).String() != "<empty>" {
		t.Fatal("empty key render")
	}
}

func TestInternStableIDs(t *testing.T) {
	tab := NewTable()
	a := tab.Intern(Key{"a", "b", "c"})
	b := tab.Intern(Key{"x", "y", "z"})
	if a == b {
		t.Fatal("distinct keys share an ID")
	}
	if got := tab.Intern(Key{"a", "b", "c"}); got != a {
		t.Fatalf("re-intern changed ID: %d vs %d", got, a)
	}
	if tab.Key(a) != (Key{"a", "b", "c"}) {
		t.Fatal("Key round trip")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestLookupUnknown(t *testing.T) {
	tab := NewTable()
	if id := tab.Lookup(Key{"nope", "", ""}); id != 0 {
		t.Fatalf("unknown key got id %d", id)
	}
}

func TestKeyPanicsOnBadID(t *testing.T) {
	tab := NewTable()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown id")
		}
	}()
	tab.Key(42)
}

func TestAllOrder(t *testing.T) {
	tab := NewTable()
	tab.Intern(Key{"a", "", ""})
	tab.Intern(Key{"b", "", ""})
	ids := tab.All()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("All = %v", ids)
	}
}

func TestFormatFrame(t *testing.T) {
	k := Key{"util_ald_free", "util_ald_cache_purge", "util_ald_cache_insert"}
	s := FormatFrame(k, 0)
	if !strings.Contains(s, "@util_ald_free") || !strings.HasPrefix(s, "0x") {
		t.Fatalf("FormatFrame = %q", s)
	}
	if FormatFrame(k, 3) != "" || FormatFrame(Key{"f", "", ""}, 1) != "" {
		t.Fatal("out-of-range frames should render empty")
	}
}

func TestSetHalves(t *testing.T) {
	s := NewSet(5, 1, 3, 2, 4)
	lo, hi := s.Halves()
	if lo.Len() != 3 || hi.Len() != 2 {
		t.Fatalf("halves %d/%d", lo.Len(), hi.Len())
	}
	for _, id := range []ID{1, 2, 3} {
		if !lo.Contains(id) {
			t.Fatalf("lo missing %d", id)
		}
	}
	for _, id := range []ID{4, 5} {
		if !hi.Contains(id) {
			t.Fatalf("hi missing %d", id)
		}
	}
}

func TestSetAddRemoveClone(t *testing.T) {
	s := NewSet(1, 2)
	c := s.Clone()
	s.Remove(1)
	s.Add(9)
	if !c.Contains(1) || c.Contains(9) {
		t.Fatal("clone not independent")
	}
	if s.Contains(1) || !s.Contains(9) {
		t.Fatal("add/remove broken")
	}
}

// Property: interning is injective — distinct keys never collide on ID, and
// IDs always map back to their keys.
func TestQuickInternBijective(t *testing.T) {
	tab := NewTable()
	seen := map[Key]ID{}
	f := func(a, b, c string) bool {
		k := Key{a, b, c}
		id := tab.Intern(k)
		if prev, ok := seen[k]; ok && prev != id {
			return false
		}
		seen[k] = id
		return tab.Key(id) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Halves partitions the set.
func TestQuickHalvesPartition(t *testing.T) {
	f := func(raw []uint32) bool {
		s := NewSet()
		for _, r := range raw {
			if r != 0 {
				s.Add(ID(r))
			}
		}
		lo, hi := s.Halves()
		if lo.Len()+hi.Len() != s.Len() {
			return false
		}
		for _, id := range s.Sorted() {
			if lo.Contains(id) == hi.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableClone(t *testing.T) {
	tab := NewTable()
	a := tab.Intern(Key{"a", "b", "c"})
	cp := tab.Clone()
	if cp.Lookup(Key{"a", "b", "c"}) != a {
		t.Fatal("clone lost existing interning")
	}
	// Divergent interning does not cross over.
	b := tab.Intern(Key{"only-orig", "", ""})
	c := cp.Intern(Key{"only-clone", "", ""})
	if b != c {
		// Same numeric ID in both tables is expected (divergent
		// namespaces); what matters is isolation:
		t.Logf("ids diverged: %d vs %d", b, c)
	}
	if cp.Lookup(Key{"only-orig", "", ""}) != 0 {
		t.Fatal("clone saw original's new interning")
	}
	if tab.Lookup(Key{"only-clone", "", ""}) != 0 {
		t.Fatal("original saw clone's new interning")
	}
	if cp.Key(a) != (Key{"a", "b", "c"}) {
		t.Fatal("clone Key() broken")
	}
}
