// Package canary defines the canary byte patterns used by First-Aid's
// exposing environmental changes and the helpers that detect their
// corruption.
//
// The paper (§1.2, Table 1) fills padding, delay-freed objects, and
// newly-allocated objects with "certain memory content patterns that are
// unlikely to appear during normal program execution"; a later integrity
// scan that finds a non-canary byte proves an illegal write reached the
// region, and a program that consumes canary bytes as data tends to fail an
// assertion, manifesting read-type bugs.
package canary

import "firstaid/internal/vmem"

// Byte patterns. Distinct patterns per region kind let the diagnosis engine
// attribute a corruption or a poisoned read to the right exposing change.
const (
	// Pad fills the padding added around objects when exposing buffer
	// overflows.
	Pad byte = 0xAB
	// Freed fills delay-freed objects when exposing dangling-pointer
	// reads and writes.
	Freed byte = 0xCD
	// Fresh fills newly allocated objects when exposing uninitialised
	// reads.
	Fresh byte = 0xEF
	// Mark fills free heap chunks during Phase-1 heap marking (paper
	// §4.1, Figure 3), exposing bugs triggered before a checkpoint.
	Mark byte = 0xA5
)

// Word32 returns the canary byte replicated into a 32-bit little-endian
// word, the value a program reads when it loads a poisoned pointer or
// length field.
func Word32(b byte) uint32 {
	w := uint32(b)
	return w | w<<8 | w<<16 | w<<24
}

// IsPoisoned32 reports whether the 32-bit value is one of the replicated
// canary words. Simulated applications use this in their integrity asserts
// to decide that a loaded field is garbage, the analogue of a C program
// crashing on a wild pointer built from canary bytes.
func IsPoisoned32(v uint32) bool {
	switch v {
	case Word32(Pad), Word32(Freed), Word32(Fresh), Word32(Mark):
		return true
	}
	return false
}

// Corruption records a canary check failure: len(Offsets) bytes within the
// region [Addr, Addr+Len) no longer hold the expected pattern.
type Corruption struct {
	Addr    vmem.Addr // start of the scanned region
	Len     int       // length of the scanned region
	Pattern byte      // expected canary byte
	Offsets []int     // offsets within the region that differ
}

// Corrupted reports whether any byte differed.
func (c *Corruption) Corrupted() bool { return c != nil && len(c.Offsets) > 0 }

// Check scans the region [addr, addr+n) in mem for bytes that differ from
// pattern. It returns nil when the region is intact. A region that cannot
// be read (unmapped) is reported as fully corrupted, since that can only
// happen if the heap structure itself was destroyed.
func Check(mem *vmem.Space, addr vmem.Addr, n int, pattern byte) *Corruption {
	buf, err := mem.Read(addr, n)
	if err != nil {
		return &Corruption{Addr: addr, Len: n, Pattern: pattern, Offsets: []int{0}}
	}
	var offs []int
	for i, b := range buf {
		if b != pattern {
			offs = append(offs, i)
		}
	}
	if offs == nil {
		return nil
	}
	return &Corruption{Addr: addr, Len: n, Pattern: pattern, Offsets: offs}
}

// Fill writes the pattern over [addr, addr+n).
func Fill(mem *vmem.Space, addr vmem.Addr, n int, pattern byte) error {
	return mem.Fill(addr, pattern, n)
}
