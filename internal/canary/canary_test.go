package canary

import (
	"testing"

	"firstaid/internal/vmem"
)

func newMem(t *testing.T, pages int) (*vmem.Space, vmem.Addr) {
	t.Helper()
	s := vmem.New(1 << 22)
	base, err := s.Sbrk(uint32(pages) * vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	return s, base
}

func TestPatternsDistinct(t *testing.T) {
	seen := map[byte]bool{}
	for _, b := range []byte{Pad, Freed, Fresh, Mark} {
		if seen[b] {
			t.Fatalf("pattern %#x reused", b)
		}
		seen[b] = true
	}
}

func TestWord32(t *testing.T) {
	if Word32(0xAB) != 0xABABABAB {
		t.Fatalf("Word32 = %#x", Word32(0xAB))
	}
}

func TestIsPoisoned32(t *testing.T) {
	for _, b := range []byte{Pad, Freed, Fresh, Mark} {
		if !IsPoisoned32(Word32(b)) {
			t.Errorf("Word32(%#x) not recognised as poisoned", b)
		}
	}
	for _, v := range []uint32{0, 1, 0xDEADBEEF, 0xABABAB00} {
		if IsPoisoned32(v) {
			t.Errorf("%#x wrongly poisoned", v)
		}
	}
}

func TestFillAndCheckIntact(t *testing.T) {
	mem, base := newMem(t, 1)
	if err := Fill(mem, base+8, 100, Pad); err != nil {
		t.Fatal(err)
	}
	if c := Check(mem, base+8, 100, Pad); c.Corrupted() {
		t.Fatalf("fresh fill reported corrupted: %+v", c)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	mem, base := newMem(t, 1)
	Fill(mem, base, 64, Freed)
	mem.Write(base+10, []byte{0x00, 0x11})
	c := Check(mem, base, 64, Freed)
	if !c.Corrupted() {
		t.Fatal("corruption missed")
	}
	if len(c.Offsets) != 2 || c.Offsets[0] != 10 || c.Offsets[1] != 11 {
		t.Fatalf("offsets = %v, want [10 11]", c.Offsets)
	}
	if c.Pattern != Freed || c.Addr != base {
		t.Fatalf("record fields wrong: %+v", c)
	}
}

func TestCheckUnmappedRegionIsCorrupt(t *testing.T) {
	mem, base := newMem(t, 1)
	if c := Check(mem, base+vmem.PageSize, 16, Pad); !c.Corrupted() {
		t.Fatal("unreadable region should be reported corrupted")
	}
}

func TestNilCorruptionIsNotCorrupted(t *testing.T) {
	var c *Corruption
	if c.Corrupted() {
		t.Fatal("nil must be intact")
	}
}
