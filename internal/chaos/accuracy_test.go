package chaos

import (
	"strings"
	"testing"

	"firstaid/internal/mmbug"
)

// TestDiagnosisAccuracy scores root-cause identification against the
// injected ground truth, class by class: over a seed matrix, the
// diagnosed bug class must be the injected one and the patch site must be
// the script's bug site (allocation site for alloc-point classes, first
// free site for free-point classes). The accuracy ratio is reported per
// class and must be 1.0 — the injection scripts are constructed so the
// bug manifests deterministically whatever the surrounding layout.
func TestDiagnosisAccuracy(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, class := range mmbug.All {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			t.Parallel()
			wantSite := "chaos_bug_free"
			if class.AtAllocation() {
				wantSite = "chaos_bug_alloc"
			}
			correct := 0
			for _, seed := range seeds {
				out := Run(RunConfig{Seed: seed, Class: class, Mode: ModeSync})
				if !out.OK() {
					savePostmortem(t, out)
					t.Fatalf("seed %#x: oracle failed:\n%s", seed, out.Verdict())
				}
				ok := false
				for _, rec := range out.Recoveries {
					for _, f := range rec.Findings {
						if f.Class != class {
							continue
						}
						for _, site := range f.Sites {
							if strings.Contains(site, wantSite) {
								ok = true
							}
						}
					}
				}
				if ok {
					correct++
				} else {
					savePostmortem(t, out)
					t.Errorf("seed %#x: injected %v at %s not diagnosed:\n%s",
						seed, class, wantSite, out.Verdict())
				}
			}
			ratio := float64(correct) / float64(len(seeds))
			t.Logf("diagnosis accuracy for %v: %d/%d = %.2f", class, correct, len(seeds), ratio)
			if ratio != 1.0 {
				t.Fatalf("accuracy %.2f, want 1.0", ratio)
			}
		})
	}
}

// matrixCell is one row of the accuracy matrix: a scenario shape plus its
// injected ground truth. Every cell replays from the command line as
// firstaid-run -chaos-seed <seed> -chaos-scenario <kind> [-class <class>]
// [-chaos-combo <n>] [-chaos-protect].
type matrixCell struct {
	name     string
	scenario Scenario
	class    mmbug.Type
	combo    int
	protect  bool
	sampled  bool // force-sample the injected site (guard tier, rate 1/1)
}

func matrixCells() []matrixCell {
	var cells []matrixCell
	for _, class := range mmbug.All {
		cells = append(cells, matrixCell{name: "single/" + class.String(), class: class})
	}
	// Protected twins exist only for the classes with a silently
	// corrupted object (overflow, dangling write); the other classes trap
	// on their own at the buggy access.
	for _, class := range []mmbug.Type{mmbug.BufferOverflow, mmbug.DanglingWrite} {
		cells = append(cells, matrixCell{name: "single/" + class.String() + "/protected", class: class, protect: true})
	}
	// Sampled twins force the guard tier onto the injected site (rate 1/1
	// via GuardForce, no coin sampling): the overflow or dangling write must
	// trap at the faulting access itself with the exact site attached, and
	// diagnosis must take the evidence fast path. Classes whose faults are
	// not stray accesses (double free, uninit read — guarded pages are
	// zero-filled) keep the ordinary pipeline and are not sampled cells.
	for _, class := range []mmbug.Type{mmbug.BufferOverflow, mmbug.DanglingWrite} {
		cells = append(cells, matrixCell{name: "single/" + class.String() + "/sampled", class: class, sampled: true})
	}
	for combo := 0; combo < NumCombos(); combo++ {
		cells = append(cells, matrixCell{name: "multi/" + combos[combo].name, scenario: ScenarioMulti, combo: combo})
	}
	for _, class := range mmbug.All {
		cells = append(cells, matrixCell{name: "churn/" + class.String(), scenario: ScenarioChurn, class: class})
		cells = append(cells, matrixCell{name: "actors/" + class.String(), scenario: ScenarioActors, class: class})
	}
	return cells
}

// TestDiagnosisAccuracyMatrix is the exhaustive accuracy table: scenario
// kind × bug class(es) × execution mode × protected/unprotected, over a
// seed matrix. Every cell must reach 100%: the oracle accepts the final
// state, every diagnosed finding exactly matches an expected (class, site)
// pair, every injected bug is diagnosed or provably neutralized, and
// protected cells detect the corruption strictly earlier — measured in
// events between the corrupting op and the trap — than their unprotected
// same-seed twins. The top-level subtests are the execution modes, so CI
// shards with -run 'TestDiagnosisAccuracyMatrix/<mode>'.
func TestDiagnosisAccuracyMatrix(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:2]
	}
	cells := matrixCells()
	for _, mode := range []Mode{ModeSync, ModeParallel, ModeStream} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for _, c := range cells {
				c := c
				t.Run(c.name, func(t *testing.T) {
					t.Parallel()
					correct := 0
					for _, seed := range seeds {
						cfg := RunConfig{
							Seed: seed, Mode: mode,
							Scenario: c.scenario, Class: c.class,
							Combo: c.combo, Protect: c.protect,
							// The matrix runs with speculation on — the
							// deployment default; TestStageEquivalence pins
							// it against the serial pipeline.
							Speculate: true,
						}
						if c.sampled {
							cfg.Machine.GuardForce = []string{"chaos_bug"}
						}
						out := Run(cfg)
						if !out.OK() {
							savePostmortem(t, out)
							t.Fatalf("seed %#x: oracle failed:\n%s", seed, out.Verdict())
						}
						if out.Stats.Failures == 0 {
							savePostmortem(t, out)
							t.Fatalf("seed %#x: injected bug never manifested:\n%s", seed, out.Verdict())
						}
						if err := out.CheckExpected(); err != nil {
							savePostmortem(t, out)
							t.Fatalf("seed %#x: %v\n%s", seed, err, out.Verdict())
						}
						if c.protect {
							checkEarlier(t, seed, out, cfg)
						}
						if c.sampled {
							checkSampledEarlier(t, seed, out, cfg)
						}
						correct++
					}
					t.Logf("cell %s/%s: %d/%d = %.2f", mode, c.name,
						correct, len(seeds), float64(correct)/float64(len(seeds)))
				})
			}
		})
	}
}

// checkEarlier asserts the sensitive-region contract for a protected run:
// the first recovery carries the detected-early flag, the trap fires at
// the corrupting event itself, and the detection latency is strictly
// smaller than the unprotected twin's on the same seed.
func checkEarlier(t *testing.T, seed uint64, prot *Outcome, cfg RunConfig) {
	t.Helper()
	if len(prot.Recoveries) == 0 || !prot.Recoveries[0].Early {
		t.Fatalf("seed %#x: protected run not detected early:\n%s", seed, prot.Verdict())
	}
	ci := prot.Prog.CorruptionIndex()
	if ci < 0 {
		t.Fatalf("seed %#x: protected program has no corrupting op", seed)
	}
	protLag := prot.Recoveries[0].Event - ci
	if protLag != 0 {
		t.Fatalf("seed %#x: protected run trapped %d events after the corruption, want 0:\n%s",
			seed, protLag, prot.Verdict())
	}
	cfg.Protect = false
	unprot := Run(cfg)
	if !unprot.OK() || len(unprot.Recoveries) == 0 {
		t.Fatalf("seed %#x: unprotected twin failed:\n%s", seed, unprot.Verdict())
	}
	if uci := unprot.Prog.CorruptionIndex(); uci >= 0 {
		unprotLag := unprot.Recoveries[0].Event - uci
		if protLag >= unprotLag {
			t.Fatalf("seed %#x: protected lag %d not < unprotected lag %d",
				seed, protLag, unprotLag)
		}
		if unprot.Recoveries[0].Early {
			t.Fatalf("seed %#x: unprotected twin claims early detection", seed)
		}
	}
}

// checkSampledEarlier asserts the guard-tier contract for a force-sampled
// run: the first recovery is detected at the faulting access itself (Early,
// zero events after the corrupting op), diagnosis took the evidence fast
// path, and the unsampled twin on the same seed detects strictly later
// through the full pipeline.
func checkSampledEarlier(t *testing.T, seed uint64, samp *Outcome, cfg RunConfig) {
	t.Helper()
	if len(samp.Recoveries) == 0 || !samp.Recoveries[0].Early {
		t.Fatalf("seed %#x: sampled run not detected at the faulting access:\n%s", seed, samp.Verdict())
	}
	if !samp.Recoveries[0].FastPath {
		t.Fatalf("seed %#x: sampled run did not take the evidence fast path:\n%s", seed, samp.Verdict())
	}
	ci := samp.Prog.CorruptionIndex()
	if ci < 0 {
		t.Fatalf("seed %#x: sampled program has no corrupting op", seed)
	}
	if lag := samp.Recoveries[0].Event - ci; lag != 0 {
		t.Fatalf("seed %#x: sampled run trapped %d events after the corruption, want 0:\n%s",
			seed, lag, samp.Verdict())
	}
	cfg.Machine.GuardForce = nil
	unsamp := Run(cfg)
	if !unsamp.OK() || len(unsamp.Recoveries) == 0 {
		t.Fatalf("seed %#x: unsampled twin failed:\n%s", seed, unsamp.Verdict())
	}
	if unsamp.Recoveries[0].Early {
		t.Fatalf("seed %#x: unsampled twin claims access-point detection", seed)
	}
	if unsamp.Recoveries[0].FastPath {
		t.Fatalf("seed %#x: unsampled twin claims the evidence fast path", seed)
	}
	if lag := unsamp.Recoveries[0].Event - ci; lag <= 0 {
		t.Fatalf("seed %#x: unsampled twin lag %d, want > 0 (sampled must be strictly earlier)", seed, lag)
	}
}
