package chaos

import (
	"strings"
	"testing"

	"firstaid/internal/mmbug"
)

// TestDiagnosisAccuracy scores root-cause identification against the
// injected ground truth, class by class: over a seed matrix, the
// diagnosed bug class must be the injected one and the patch site must be
// the script's bug site (allocation site for alloc-point classes, first
// free site for free-point classes). The accuracy ratio is reported per
// class and must be 1.0 — the injection scripts are constructed so the
// bug manifests deterministically whatever the surrounding layout.
func TestDiagnosisAccuracy(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, class := range mmbug.All {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			t.Parallel()
			wantSite := "chaos_bug_free"
			if class.AtAllocation() {
				wantSite = "chaos_bug_alloc"
			}
			correct := 0
			for _, seed := range seeds {
				out := Run(RunConfig{Seed: seed, Class: class, Mode: ModeSync})
				if !out.OK() {
					t.Fatalf("seed %#x: oracle failed:\n%s", seed, out.Verdict())
				}
				ok := false
				for _, rec := range out.Recoveries {
					for _, f := range rec.Findings {
						if f.Class != class {
							continue
						}
						for _, site := range f.Sites {
							if strings.Contains(site, wantSite) {
								ok = true
							}
						}
					}
				}
				if ok {
					correct++
				} else {
					t.Errorf("seed %#x: injected %v at %s not diagnosed:\n%s",
						seed, class, wantSite, out.Verdict())
				}
			}
			ratio := float64(correct) / float64(len(seeds))
			t.Logf("diagnosis accuracy for %v: %d/%d = %.2f", class, correct, len(seeds), ratio)
			if ratio != 1.0 {
				t.Fatalf("accuracy %.2f, want 1.0", ratio)
			}
		})
	}
}
