package chaos

import (
	"strconv"
	"strings"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// The app keeps ALL of its state in the virtual heap so checkpoint
// rollback restores it completely: a slot table at root 0, one 16-byte
// entry per slot.
//
//	+0  addr     user address (0 = never allocated)
//	+4  size     user size in bytes
//	+8  defined  length of the pattern-filled prefix
//	+12 pat|stale  fill pattern (low 8 bits) | stale flag (bit 8)
const rootTable = 0

const staleBit = 1 << 8

// App is the chaos workload interpreter: an app.Program that executes
// chaos ops delivered as replay events. It is stateless in Go — the same
// instance can be replayed, rolled back and cloned freely.
type App struct {
	// Class is the injected ground-truth bug class of the programs this
	// instance will run (None for benign traffic); only Bugs() reports it.
	Class mmbug.Type

	// Classes is the multi-bug ground truth; when non-empty it takes
	// precedence over Class.
	Classes []mmbug.Type
}

// Name implements app.Program.
func (a *App) Name() string { return "chaos" }

// Bugs implements app.Program.
func (a *App) Bugs() []mmbug.Type {
	if len(a.Classes) > 0 {
		out := make([]mmbug.Type, len(a.Classes))
		copy(out, a.Classes)
		return out
	}
	if a.Class == mmbug.None {
		return nil
	}
	return []mmbug.Type{a.Class}
}

// Init implements app.Program: it allocates the zeroed slot table.
func (a *App) Init(p *proc.Proc) {
	defer p.Enter("chaos_main")()
	defer p.Enter("chaos_init")()
	p.SetRoot(rootTable, uint32(p.Calloc(NumSlots*slotBytes)))
}

// Handle implements app.Program. Events that do not decode to a chaos op
// (hostile fleet traffic, fuzz garbage) burn their event cost and do
// nothing, so the machine can never wedge on bad input.
func (a *App) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("chaos_dispatch")()
	p.Tick(app.EventCost)
	op, ok := OpFromEvent(ev)
	if !ok {
		return
	}
	a.exec(p, op)
}

// entry is the decoded slot-table row.
type entry struct {
	addr    vmem.Addr
	size    uint32
	defined uint32
	pat     byte
	stale   bool
}

func (e entry) live() bool  { return e.addr != 0 && !e.stale }
func (e entry) freed() bool { return e.addr != 0 && e.stale }

func slotBase(p *proc.Proc, slot uint8) vmem.Addr {
	return p.RootAddr(rootTable) + vmem.Addr(slot)*slotBytes
}

func loadEntry(p *proc.Proc, slot uint8) entry {
	b := slotBase(p, slot)
	flags := p.LoadU32(b + 12)
	return entry{
		addr:    vmem.Addr(p.LoadU32(b)),
		size:    p.LoadU32(b + 4),
		defined: p.LoadU32(b + 8),
		pat:     byte(flags),
		stale:   flags&staleBit != 0,
	}
}

func storeEntry(p *proc.Proc, slot uint8, e entry) {
	b := slotBase(p, slot)
	flags := uint32(e.pat)
	if e.stale {
		flags |= staleBit
	}
	p.StoreU32(b, uint32(e.addr))
	p.StoreU32(b+4, e.size)
	p.StoreU32(b+8, e.defined)
	p.StoreU32(b+12, flags)
}

// siteNames gives each site family a stable virtual stack frame, so
// callsite identity — and therefore where diagnosed patches land — is a
// pure function of the op stream.
var siteNames = [NumSites]string{
	"chaos_site_0", "chaos_site_1", "chaos_site_2", "chaos_site_3",
	"chaos_site_4", "chaos_site_5", "chaos_site_6", "chaos_site_7",
	"chaos_bug_alloc", "chaos_aux", "chaos_bug_free", "chaos_bug_refree",
	"chaos_bug_alloc_b1", "chaos_aux_b1", "chaos_bug_free_b1", "chaos_bug_refree_b1",
	"chaos_bug_alloc_b2", "chaos_aux_b2", "chaos_bug_free_b2", "chaos_bug_refree_b2",
}

// exec interprets one op. The shadow model's Apply must mirror the state
// transitions here exactly (with the injected-bug kinds mapped to their
// patched, harmless semantics) — that correspondence IS the oracle.
func (a *App) exec(p *proc.Proc, op Op) {
	defer p.Enter(siteNames[op.Site])()
	e := loadEntry(p, op.Slot)
	switch op.Kind {
	case OpMalloc:
		a.malloc(p, op, e)
	case OpRealloc:
		if !e.live() {
			a.malloc(p, op, e)
			return
		}
		var addr vmem.Addr
		func() {
			defer p.Enter("chaos_alloc")()
			addr = p.Realloc(e.addr, op.Size)
		}()
		e.addr, e.size = addr, op.Size
		if e.defined > op.Size {
			e.defined = op.Size
		}
		storeEntry(p, op.Slot, e)
	case OpFree:
		if e.live() {
			func() {
				defer p.Enter("chaos_free")()
				p.Free(e.addr)
			}()
			e.stale = true
			storeEntry(p, op.Slot, e)
		}
	case OpWrite:
		if e.live() && e.size > 0 {
			func() {
				defer p.Enter("chaos_write")()
				p.Memset(e.addr, op.Pat, int(e.size))
			}()
			e.defined, e.pat = e.size, op.Pat
			storeEntry(p, op.Slot, e)
		}
	case OpRead:
		if e.live() && e.size > 0 {
			func() {
				defer p.Enter("chaos_read")()
				p.Load(e.addr, int(e.size))
			}()
		}
	case OpCheck:
		if e.live() && e.defined > 0 {
			var data []byte
			func() {
				defer p.Enter("chaos_read")()
				data = p.Load(e.addr, int(e.defined))
			}()
			bad := -1
			for i, b := range data {
				if b != e.pat {
					bad = i
					break
				}
			}
			p.Assert(bad < 0, "chaos: slot %d byte %d is %#02x, want %#02x",
				op.Slot, bad, data[max(bad, 0)], e.pat)
		}
	case OpProtect:
		// Mark the slot's object a sensitive region. Protection may
		// relocate the object (migration to a canaried layout), so the
		// slot is updated with the address the allocator hands back.
		if e.live() {
			var addr vmem.Addr
			func() {
				defer p.Enter("chaos_protect")()
				addr = p.Protect(e.addr)
			}()
			e.addr = addr
			storeEntry(p, op.Slot, e)
		}
	case OpUnprotect:
		if e.live() {
			func() {
				defer p.Enter("chaos_unprotect")()
				p.Unprotect(e.addr)
			}()
		}
	case OpOverflow:
		// The bug: the in-bounds write plus op.Size bytes beyond the end.
		// The patched (padded) semantics equal OpWrite.
		if e.live() && e.size > 0 {
			func() {
				defer p.Enter("chaos_write")()
				p.Memset(e.addr, op.Pat, int(e.size+op.Size))
			}()
			e.defined, e.pat = e.size, op.Pat
			storeEntry(p, op.Slot, e)
		}
	case OpDangleWrite:
		// The bug: a write through the slot's stale pointer. Patched
		// (delay-free) semantics: the bytes land in quarantined memory —
		// a no-op as far as live state goes.
		if n := min(uint32(dangleWriteLen), e.size); e.freed() && n > 0 {
			func() {
				defer p.Enter("chaos_write")()
				p.Memset(e.addr, op.Pat, int(n))
			}()
		}
	case OpDangleRead:
		// The bug: reads through the stale pointer and insists on the old
		// contents. Patched (delay-free preserves the quarantined bytes)
		// the assert holds; unpatched it sees whoever recycled the chunk.
		if e.freed() && e.size >= probeLen {
			var data []byte
			func() {
				defer p.Enter("chaos_read")()
				data = p.Load(e.addr, probeLen)
			}()
			ok := true
			for _, b := range data {
				if b != e.pat {
					ok = false
					break
				}
			}
			p.Assert(ok, "chaos: slot %d freed contents no longer %#02x", op.Slot, e.pat)
		}
	case OpDoubleFree:
		// The bug: frees the stale pointer again. Patched, the delayed
		// first free makes the re-free a detected (blocked) no-op.
		if e.freed() {
			func() {
				defer p.Enter("chaos_free")()
				p.Free(e.addr)
			}()
		}
	case OpUninitRead:
		// The bug: asserts a never-written allocation reads as zero,
		// which only the zero-fill patch guarantees on a recycled chunk.
		if e.live() && e.defined == 0 && e.size >= probeLen {
			var data []byte
			func() {
				defer p.Enter("chaos_read")()
				data = p.Load(e.addr, probeLen)
			}()
			ok := true
			for _, b := range data {
				if b != 0 {
					ok = false
					break
				}
			}
			p.Assert(ok, "chaos: slot %d fresh allocation is not zeroed", op.Slot)
		}
	}
}

func (a *App) malloc(p *proc.Proc, op Op, e entry) {
	if e.live() {
		func() {
			defer p.Enter("chaos_free")()
			p.Free(e.addr)
		}()
	}
	var addr vmem.Addr
	func() {
		defer p.Enter("chaos_alloc")()
		addr = p.Malloc(op.Size)
	}()
	storeEntry(p, op.Slot, entry{addr: addr, size: op.Size, pat: op.Pat})
}

// Event returns the replay-event encoding of an op: Kind is the op-kind
// name, N the slot, Data "size,pat,site". The representation is plain
// text so chaos traffic flows unchanged through the fleet's JSON API.
func (o Op) Event() (kind, data string, n int) {
	data = strconv.FormatUint(uint64(o.Size), 10) + "," +
		strconv.FormatUint(uint64(o.Pat), 10) + "," +
		strconv.FormatUint(uint64(o.Site), 10)
	return o.Kind.String(), data, int(o.Slot)
}

var kindByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(kindNames))
	for k, name := range kindNames {
		m[name] = OpKind(k)
	}
	return m
}()

// OpFromEvent decodes and validates a replay event. The app executes and
// the model simulates ONLY ops accepted here, so the two sides stay in
// lockstep for any byte stream; everything else is rejected and treated
// as a paid-for no-op by both.
func OpFromEvent(ev replay.Event) (Op, bool) {
	kind, ok := kindByName[ev.Kind]
	if !ok || ev.N < 0 || ev.N >= NumSlots {
		return Op{}, false
	}
	parts := strings.Split(ev.Data, ",")
	if len(parts) != 3 {
		return Op{}, false
	}
	size, err1 := strconv.ParseUint(parts[0], 10, 32)
	pat, err2 := strconv.ParseUint(parts[1], 10, 32)
	site, err3 := strconv.ParseUint(parts[2], 10, 32)
	if err1 != nil || err2 != nil || err3 != nil {
		return Op{}, false
	}
	if pat > 255 || site >= NumSites {
		return Op{}, false
	}
	// Size bounds: allocation sizes up to the largest reserved script
	// size (a hostile 4 GiB malloc must not OOM the worker); overflow
	// deltas within what back padding can absorb.
	switch kind {
	case OpOverflow:
		if size > 256 {
			return Op{}, false
		}
	default:
		if size > sizeUninit && size != sizeSpill {
			return Op{}, false
		}
	}
	return Op{
		Kind: kind,
		Slot: uint8(ev.N),
		Site: uint8(site),
		Size: uint32(size),
		Pat:  byte(pat),
	}, true
}

// AppendTo appends the program's expanded op stream to a replay log.
func (p *Program) AppendTo(log *replay.Log) {
	for _, op := range p.Ops() {
		kind, data, n := op.Event()
		log.Append(kind, data, n)
	}
}

func min(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
