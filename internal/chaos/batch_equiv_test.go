package chaos

import (
	"bytes"
	"reflect"
	"testing"
)

// TestBatchIngestEquivalence is the differential pin for batched ingest:
// every accuracy-matrix cell runs twice on the same seed — once feeding
// events one at a time through Supervisor.Ingest and once through
// IngestBatch with a seed-varied batch size — and the two live runs must
// be observationally identical:
//
//   - the batched run independently satisfies the cell contract (oracle
//     accepted, every injected bug diagnosed at its exact site or provably
//     neutralized);
//   - the recovery summaries and the full run statistics are equal —
//     including SimSeconds, because the visibility fence makes the batched
//     drain re-execute, validate and skip over exactly the horizons the
//     serial drain saw;
//   - the rolling replay logs serialize to identical bytes, so offline
//     replay and postmortem extraction cannot tell the ingest paths apart;
//   - the canonical ledger projections are byte-identical, entry for entry.
//
// The top-level subtests are the live-path supervision variants, mirroring
// the three supervision modes: inline validation (the sync shape),
// parallel validation (the fleet's -parallel-validation shape), and
// speculation (the deployment default).
func TestBatchIngestEquivalence(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:2]
	}
	// Batch sizes chosen to land faults at batch interiors, edges, and in
	// single-batch runs (a generated program stays under a few hundred ops).
	batches := []int{7, 64, 3, 16, 25, 512, 5, 10}
	variants := []struct {
		name     string
		parallel bool
		spec     bool
	}{
		{"inline", false, false},
		{"parallel-validation", true, false},
		{"speculate", false, true},
	}
	cells := matrixCells()
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, c := range cells {
				c := c
				t.Run(c.name, func(t *testing.T) {
					t.Parallel()
					for i, seed := range seeds {
						cfg := RunConfig{
							Seed: seed, Mode: ModeStream,
							Scenario: c.scenario, Class: c.class,
							Combo: c.combo, Protect: c.protect,
							ParallelValidation: v.parallel, Speculate: v.spec,
						}
						if c.sampled {
							cfg.Machine.GuardForce = []string{"chaos_bug"}
						}
						serial := Run(cfg)
						cfg.Batch = batches[i%len(batches)]
						batched := Run(cfg)
						checkBatchEquivalent(t, seed, cfg.Batch, serial, batched)
					}
				})
			}
		})
	}
}

// checkBatchEquivalent asserts that a batched live run matches its
// serial-ingest twin.
func checkBatchEquivalent(t *testing.T, seed uint64, batch int, serial, batched *Outcome) {
	t.Helper()
	if !batched.OK() {
		savePostmortem(t, batched)
		t.Fatalf("seed %#x batch %d: batched run failed the oracle:\n%s",
			seed, batch, batched.Verdict())
	}
	if err := batched.CheckExpected(); err != nil {
		savePostmortem(t, batched)
		t.Fatalf("seed %#x batch %d: batched run: %v\n%s", seed, batch, err, batched.Verdict())
	}
	if !reflect.DeepEqual(serial.Recoveries, batched.Recoveries) {
		t.Fatalf("seed %#x batch %d: recovery summaries diverge\nserial:\n%s\nbatched:\n%s",
			seed, batch, serial.Verdict(), batched.Verdict())
	}
	if serial.Stats != batched.Stats {
		t.Fatalf("seed %#x batch %d: run statistics diverge: serial %+v, batched %+v",
			seed, batch, serial.Stats, batched.Stats)
	}
	if serial.RefreeBlocks != batched.RefreeBlocks {
		t.Fatalf("seed %#x batch %d: re-free blocks diverge: serial %d, batched %d",
			seed, batch, serial.RefreeBlocks, batched.RefreeBlocks)
	}
	if f := batched.Sup.Log().Fence(); f != -1 {
		t.Fatalf("seed %#x batch %d: fence left set after the run: %d", seed, batch, f)
	}
	var sl, bl bytes.Buffer
	if err := serial.Sup.Log().Save(&sl); err != nil {
		t.Fatal(err)
	}
	if err := batched.Sup.Log().Save(&bl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sl.Bytes(), bl.Bytes()) {
		t.Fatalf("seed %#x batch %d: rolling logs diverge (%d vs %d bytes)",
			seed, batch, sl.Len(), bl.Len())
	}
	sc, bc := canonicals(t, serial), canonicals(t, batched)
	if len(sc) != len(bc) {
		t.Fatalf("seed %#x batch %d: ledger sizes diverge: serial %d diagnoses, batched %d",
			seed, batch, len(sc), len(bc))
	}
	for i := range sc {
		if !bytes.Equal(sc[i], bc[i]) {
			t.Fatalf("seed %#x batch %d: canonical projection of diagnosis %d diverges\nserial:\n%s\nbatched:\n%s",
				seed, batch, i, sc[i], bc[i])
		}
	}
}
