package chaos

import (
	"reflect"
	"testing"

	"firstaid/internal/mmbug"
)

var allModes = []Mode{ModeSync, ModeParallel, ModeStream}

// TestBenignPrograms: with no injected bug, every mode must run the
// program failure-free and satisfy the oracle.
func TestBenignPrograms(t *testing.T) {
	for _, seed := range []uint64{1, 0xDEAD, 0xC0FFEE} {
		for _, mode := range allModes {
			out := Run(RunConfig{Seed: seed, Mode: mode})
			if out.Stats.Failures != 0 {
				t.Fatalf("benign program faulted:\n%s", out.Verdict())
			}
			if !out.OK() {
				t.Fatalf("oracle rejected a benign run:\n%s", out.Verdict())
			}
		}
	}
}

// TestInjectionMatrix is the property-test core: for every bug class and
// a seed matrix, in all three modes, the injected bug must manifest, be
// survived, and leave a final state the differential oracle accepts.
func TestInjectionMatrix(t *testing.T) {
	seeds := []uint64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, class := range mmbug.All {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				for _, mode := range allModes {
					out := Run(RunConfig{Seed: seed, Class: class, Mode: mode})
					if out.Stats.Failures == 0 {
						t.Fatalf("injected %v never manifested:\n%s", class, out.Verdict())
					}
					if out.Stats.Skipped != 0 {
						t.Errorf("supervisor dropped events:\n%s", out.Verdict())
					}
					if !out.OK() {
						t.Fatalf("oracle rejected the recovered state:\n%s", out.Verdict())
					}
				}
			}
		})
	}
}

// TestSeedDeterminism: the acceptance bar — one seed yields a
// byte-identical program, the same oracle verdict, and the same
// diagnosis in every execution mode, twice over.
func TestSeedDeterminism(t *testing.T) {
	for _, class := range append([]mmbug.Type{mmbug.None}, mmbug.All...) {
		seed := uint64(0x5EED<<8) | uint64(class)
		prog := Generate(seed, class, 0)
		if again := Generate(seed, class, 0); !reflect.DeepEqual(prog, again) {
			t.Fatalf("class %v: two generations of seed %#x differ", class, seed)
		}
		wire := Encode(prog)
		if again := Encode(Generate(seed, class, 0)); !reflect.DeepEqual(wire, again) {
			t.Fatalf("class %v: encoded bytes differ across generations", class)
		}
		var base *Outcome
		for _, mode := range allModes {
			out := Run(RunConfig{Seed: seed, Class: class, Mode: mode})
			if base == nil {
				base = out
				continue
			}
			if !reflect.DeepEqual(out.Recoveries, base.Recoveries) {
				t.Fatalf("class %v: %s diagnosis diverges from %s:\n%s\nvs\n%s",
					class, out.Mode, base.Mode, out.Verdict(), base.Verdict())
			}
			if out.OK() != base.OK() {
				t.Fatalf("class %v: oracle verdict diverges between %s and %s:\n%s\nvs\n%s",
					class, out.Mode, base.Mode, out.Verdict(), base.Verdict())
			}
		}
	}
}
