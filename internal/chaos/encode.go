package chaos

import "firstaid/internal/mmbug"

// Wire format for the fuzz target. The encoding deliberately expresses
// only *benign* ops plus a class selector: the one bug instance is always
// re-materialised by the trusted injector (Script), never spelled out in
// raw bytes. That keeps every decodable input inside the oracle's strict
// contract — arbitrary bytes can rearrange the heap however they like,
// but the bug that manifests is always a well-formed instance whose
// patched semantics the model knows.
//
//	byte  0    version (1)
//	byte  1    class selector (mod 6: none + the five mmbug classes)
//	bytes 2-3  injection index, little endian (mod len(benign)+1)
//	then 5 bytes per benign op: kind, slot, site, size, pat
const (
	wireVersion  = 1
	wireHeader   = 4
	wireOpBytes  = 5
	sizeSpan     = MaxGenSize - MinGenSize + 1 // encodable size range
	benignKindsN = numBenignKinds
)

// Decode maps arbitrary bytes onto a valid Program. It is total: every
// input decodes to something runnable (possibly empty), and for bytes
// produced by Encode it is the exact inverse.
func Decode(data []byte) *Program {
	p := &Program{}
	if len(data) < wireHeader {
		return p
	}
	p.Class = mmbug.Type(int(data[1]) % (len(mmbug.All) + 1))
	nOps := (len(data) - wireHeader) / wireOpBytes
	if nOps > MaxOps {
		nOps = MaxOps
	}
	p.Benign = make([]Op, 0, nOps)
	for i := 0; i < nOps; i++ {
		b := data[wireHeader+i*wireOpBytes:]
		p.Benign = append(p.Benign, Op{
			Kind: OpKind(int(b[0]) % benignKindsN),
			Slot: b[1] % GenSlots,
			Site: b[2] % GenSites,
			Size: uint32(MinGenSize + int(b[3])%sizeSpan),
			Pat:  1 + b[4]%255,
		})
	}
	p.InjectAt = (int(data[2]) | int(data[3])<<8) % (len(p.Benign) + 1)
	return p
}

// Encode serialises a program into the wire format. Generator output
// round-trips exactly: Decode(Encode(p)) reproduces p's class, injection
// point and benign ops (the seed is not carried — replay of an encoded
// program goes through RunProgram).
func Encode(p *Program) []byte {
	at := p.injectClamped()
	out := make([]byte, wireHeader, wireHeader+len(p.Benign)*wireOpBytes)
	out[0] = wireVersion
	out[1] = byte(p.Class)
	out[2] = byte(at)
	out[3] = byte(at >> 8)
	for _, op := range p.Benign {
		out = append(out, byte(op.Kind), op.Slot, op.Site, byte(op.Size-MinGenSize), op.Pat-1)
	}
	return out
}
