package chaos

import (
	"bytes"
	"reflect"
	"testing"
)

// TestStageEquivalence is the differential pin for speculative recovery:
// every accuracy-matrix cell runs twice on the same seed — once through the
// serial stage pipeline and once with speculation racing the hypothesis
// ladder on clones — and the two runs must be observationally identical.
// "Identical" is checked at three levels:
//
//   - the speculative run independently satisfies the cell contract (the
//     differential oracle accepts the final state and every injected bug is
//     diagnosed at its exact site or provably neutralized);
//   - the recovery summaries (event, fault kind, early/fast-path flags,
//     findings with their sites) and the run statistics are equal, except
//     SimSeconds: clone re-execution work is discarded under speculation,
//     so the parent's simulated-time meter legitimately reads lower;
//   - the canonical ledger projections are byte-identical, entry for entry
//     — the strongest pin, covering verdicts, condition ordering, fault
//     attribution and patch sites.
//
// The top-level subtests are the supervision modes, mirroring the accuracy
// matrix so CI can shard with -run 'TestStageEquivalence/<mode>'.
func TestStageEquivalence(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:2]
	}
	cells := matrixCells()
	for _, mode := range []Mode{ModeSync, ModeParallel, ModeStream} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for _, c := range cells {
				c := c
				t.Run(c.name, func(t *testing.T) {
					t.Parallel()
					launched := 0
					for _, seed := range seeds {
						cfg := RunConfig{
							Seed: seed, Mode: mode,
							Scenario: c.scenario, Class: c.class,
							Combo: c.combo, Protect: c.protect,
						}
						if c.sampled {
							cfg.Machine.GuardForce = []string{"chaos_bug"}
						}
						serial := Run(cfg)
						cfg.Speculate = true
						spec := Run(cfg)
						checkEquivalent(t, seed, serial, spec)
						launched += spec.Sup.Speculation().Launched
					}
					// The pin must not pass vacuously: unless every recovery
					// in the cell took the guard fast path (which resolves
					// before any hypothesis is announced), at least one
					// hypothesis must actually have raced on a clone.
					if launched == 0 && !c.sampled {
						t.Fatalf("speculation never launched a hypothesis in this cell")
					}
				})
			}
		})
	}
}

// checkEquivalent asserts that a speculative run matches its serial twin.
func checkEquivalent(t *testing.T, seed uint64, serial, spec *Outcome) {
	t.Helper()
	if !spec.OK() {
		savePostmortem(t, spec)
		t.Fatalf("seed %#x: speculative run failed the oracle:\n%s", seed, spec.Verdict())
	}
	if err := spec.CheckExpected(); err != nil {
		savePostmortem(t, spec)
		t.Fatalf("seed %#x: speculative run: %v\n%s", seed, err, spec.Verdict())
	}
	if !reflect.DeepEqual(serial.Recoveries, spec.Recoveries) {
		t.Fatalf("seed %#x: recovery summaries diverge\nserial:\n%s\nspeculative:\n%s",
			seed, serial.Verdict(), spec.Verdict())
	}
	ss, ps := serial.Stats, spec.Stats
	ss.SimSeconds, ps.SimSeconds = 0, 0
	if ss != ps {
		t.Fatalf("seed %#x: run statistics diverge: serial %+v, speculative %+v", seed, ss, ps)
	}
	// The re-free counter's magnitude includes trigger hits from diagnostic
	// probe work, which moves onto clones under speculation; only its sign
	// (the collateral-neutralization signal CheckExpected keys on) is part
	// of the observational contract.
	if (serial.RefreeBlocks > 0) != (spec.RefreeBlocks > 0) {
		t.Fatalf("seed %#x: re-free neutralization signal diverges: serial %d, speculative %d",
			seed, serial.RefreeBlocks, spec.RefreeBlocks)
	}
	sc, pc := canonicals(t, serial), canonicals(t, spec)
	if len(sc) != len(pc) {
		t.Fatalf("seed %#x: ledger sizes diverge: serial %d diagnoses, speculative %d",
			seed, len(sc), len(pc))
	}
	for i := range sc {
		if !bytes.Equal(sc[i], pc[i]) {
			t.Fatalf("seed %#x: canonical projection of diagnosis %d diverges\nserial:\n%s\nspeculative:\n%s",
				seed, i, sc[i], pc[i])
		}
	}
}
