package chaos

import (
	"testing"

	"firstaid/internal/core"
	"firstaid/internal/mmbug"
)

// TestFastSlowPathCrossCheck is the MMU fast-path acceptance test: every
// bug class in every execution mode is run twice — once on the fast
// configuration (micro-TLB word accessors, COW machine clones) and once on
// the reference configuration (SlowMemPaths: byte-path accessors, deep
// clones) — and the rendered verdicts must be byte-identical. The verdict
// string covers the oracle result, every recovery's fault, diagnosis sites
// and nondeterminism flags, the run stats and the decoded program, so any
// semantic divergence introduced by the fast paths (a missed fault, a
// perturbed COW count shifting a checkpoint, a different patch site)
// shows up as a diff here.
func TestFastSlowPathCrossCheck(t *testing.T) {
	for _, class := range mmbug.All {
		seed := uint64(0xFA57<<8) | uint64(class)
		for _, mode := range allModes {
			fast := Run(RunConfig{Seed: seed, Class: class, Mode: mode})
			slow := Run(RunConfig{Seed: seed, Class: class, Mode: mode,
				Machine: core.MachineConfig{SlowMemPaths: true}})
			if fast.Verdict() != slow.Verdict() {
				t.Fatalf("class %v mode %s: fast and slow paths diverge:\nfast:\n%s\nslow:\n%s",
					class, mode, fast.Verdict(), slow.Verdict())
			}
			if fast.OK() != slow.OK() {
				t.Fatalf("class %v mode %s: oracle verdict differs", class, mode)
			}
		}
	}
}
