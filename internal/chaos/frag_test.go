package chaos

import (
	"testing"

	"firstaid/internal/core"
	"firstaid/internal/replay"
)

// TestChurnFragmentationBounded is the fragmentation regression gate: the
// churn scenario's fill/free/realloc waves plus mmap spills must leave the
// allocator's invariants intact and its space usage sane on fixed seeds.
// "Sane" is pinned two ways: utilization (live payload over claimed
// footprint) must stay above a floor — a regression in coalescing, bin
// splitting or realloc placement shows up as holes the allocator cannot
// reuse — and the footprint must have shrunk below the payload high-water
// mark, which only happens if the freed mmap spill was actually unmapped.
// Current behaviour is ~0.82 utilization and footprint ≈ 0.61× peak; the
// bounds leave room for layout tweaks but not for a broken reuse path.
func TestChurnFragmentationBounded(t *testing.T) {
	for _, seed := range []uint64{11, 0xFA6} {
		prog := GenerateSpec(GenSpec{Seed: seed, Scenario: ScenarioChurn, Ops: MaxOps})
		log := replay.NewLog()
		prog.AppendTo(log)
		sup := core.NewSupervisor(&App{}, log, core.Config{})
		stats := sup.Run()
		if stats.Failures != 0 {
			t.Fatalf("seed %#x: benign churn workload faulted", seed)
		}
		h := sup.M.Heap
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("seed %#x: invariants violated after churn: %v", seed, err)
		}
		if err := CheckSupervisor(sup); err != nil {
			t.Fatalf("seed %#x: oracle rejected the final state: %v", seed, err)
		}
		if util := h.Utilization(); util < 0.5 {
			t.Fatalf("seed %#x: utilization %.3f below 0.5 — the heap is mostly holes (live=%d footprint=%d)",
				seed, util, h.LiveBytes(), h.Footprint())
		}
		if fp, peak := h.Footprint(), h.PeakBytes(); fp >= peak {
			t.Fatalf("seed %#x: footprint %d did not drop below peak payload %d — the freed spill was never unmapped",
				seed, fp, peak)
		}
	}
}
