package chaos

import (
	"testing"

	"firstaid/internal/mmbug"
)

// FuzzChaosProgram decodes arbitrary bytes into a chaos program (benign
// op soup + at most one injector-materialised bug) and requires the
// differential oracle to accept the recovered final state. The committed
// corpus under testdata/fuzz/FuzzChaosProgram holds one encoded generated
// program per bug class (plus benign), so even the non-fuzzing `go test`
// run replays a representative through this path; `make fuzz-smoke` gives
// the mutator a bounded budget on top.
func FuzzChaosProgram(f *testing.F) {
	for i, class := range append([]mmbug.Type{mmbug.None}, mmbug.All...) {
		f.Add(Encode(Generate(uint64(0xF00+i), class, 48)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := Decode(data)
		out := RunProgram(prog, RunConfig{Mode: ModeSync})
		if !out.OK() {
			t.Fatalf("differential oracle rejected the recovered state:\n%s", out.Verdict())
		}
	})
}
