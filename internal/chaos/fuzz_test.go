package chaos

import "testing"

// FuzzChaosProgram decodes arbitrary bytes into a chaos program (benign
// op soup plus injector-materialised bug scripts) and requires the
// differential oracle to accept the recovered final state. The committed
// corpus under testdata/fuzz/FuzzChaosProgram mirrors CorpusSpecs(): one
// encoded single-bug program per class (plus benign) in the v1 wire
// format, and v2 representatives for the multi-bug combos, churn, actors
// and protected-object scenarios — so even the non-fuzzing `go test` run
// replays one of each through this path; `make fuzz-smoke` gives the
// mutator a bounded budget on top.
func FuzzChaosProgram(f *testing.F) {
	for _, spec := range CorpusSpecs() {
		f.Add(Encode(GenerateSpec(spec)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := Decode(data)
		out := RunProgram(prog, RunConfig{Mode: ModeSync})
		if !out.OK() {
			savePostmortem(t, out)
			t.Fatalf("differential oracle rejected the recovered state:\n%s", out.Verdict())
		}
	})
}
