package chaos

import "firstaid/internal/mmbug"

// rng is a self-contained xorshift64* generator so programs are identical
// across Go versions and platforms — the whole harness replays from a
// single uint64.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds the chaos program for a seed: ops benign operations
// (clamped to [8, MaxOps]) with the class script injected in the 60–80%
// region of the stream, far enough in that the heap is churned and far
// enough from the end that post-bug traffic exercises the patched heap.
// It is a pure function of its arguments; the same seed yields a
// byte-identical program forever.
func Generate(seed uint64, class mmbug.Type, ops int) *Program {
	if ops <= 0 {
		ops = 110
	}
	if ops < 8 {
		ops = 8
	}
	if ops > MaxOps {
		ops = MaxOps
	}
	r := newRng(seed)
	benign := make([]Op, 0, ops)
	// Track which generator slots have ever been allocated so frees and
	// writes mostly land on plausible targets (the app tolerates any slot,
	// but aimless ops waste the budget).
	touched := make([]uint8, 0, GenSlots)
	for len(benign) < ops {
		// Every op carries a full field set (kinds that don't use Size or
		// Pat just ignore them) so the wire format round-trips exactly.
		op := Op{Size: genSize(r), Pat: genPat(r), Site: uint8(r.intn(GenSites))}
		roll := r.intn(100)
		switch {
		case roll < 35 || len(touched) == 0: // malloc
			op.Kind = OpMalloc
			op.Slot = uint8(r.intn(GenSlots))
			touched = appendSlot(touched, op.Slot)
		case roll < 55: // free
			op.Kind = OpFree
			op.Slot = touched[r.intn(len(touched))]
		case roll < 65: // realloc
			op.Kind = OpRealloc
			op.Slot = touched[r.intn(len(touched))]
		case roll < 82: // write
			op.Kind = OpWrite
			op.Slot = touched[r.intn(len(touched))]
		case roll < 92: // read
			op.Kind = OpRead
			op.Slot = touched[r.intn(len(touched))]
		default: // check
			op.Kind = OpCheck
			op.Slot = touched[r.intn(len(touched))]
		}
		benign = append(benign, op)
	}
	at := ops*3/5 + r.intn(ops/5+1)
	return &Program{Seed: seed, Class: class, InjectAt: at, Benign: benign}
}

// genSize draws from a weighted distribution: mostly small objects with a
// tail of larger ones, all well under the reserved script sizes.
func genSize(r *rng) uint32 {
	if r.intn(10) < 7 {
		return uint32(MinGenSize + r.intn(96-MinGenSize+1))
	}
	return uint32(97 + r.intn(MaxGenSize-97+1))
}

// genPat draws a non-zero fill byte (zero means "undefined" to the model).
func genPat(r *rng) byte { return byte(1 + r.intn(255)) }

func appendSlot(s []uint8, v uint8) []uint8 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
