package chaos

import "firstaid/internal/mmbug"

// rng is a self-contained xorshift64* generator so programs are identical
// across Go versions and platforms — the whole harness replays from a
// single uint64.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// GenSpec selects what GenerateSpec builds. The zero value plus a seed is
// the PR-4 single-bug soup.
type GenSpec struct {
	Seed     uint64
	Scenario Scenario
	Class    mmbug.Type // ignored by ScenarioMulti
	Combo    int        // ScenarioMulti: combo library index
	Protect  bool       // mark the corruptible script object sensitive
	Guard    bool       // run with guard-page sampling always on
	Ops      int        // benign op budget; 0 = default 110
}

// Generate builds the single-bug chaos program for a seed: ops benign
// operations (clamped to [8, MaxOps]) with the class script injected in
// the 60–80% region of the stream, far enough in that the heap is churned
// and far enough from the end that post-bug traffic exercises the patched
// heap. It is a pure function of its arguments; the same seed yields a
// byte-identical program forever.
func Generate(seed uint64, class mmbug.Type, ops int) *Program {
	return GenerateSpec(GenSpec{Seed: seed, Class: class, Ops: ops})
}

// GenerateSpec builds the chaos program for a spec — the scenario picks
// the benign-stream shape and the injection plan; everything stays a pure
// function of the spec.
func GenerateSpec(spec GenSpec) *Program {
	ops := spec.Ops
	if ops <= 0 {
		ops = 110
	}
	if ops < 8 {
		ops = 8
	}
	if ops > MaxOps {
		ops = MaxOps
	}
	r := newRng(spec.Seed)
	var benign []Op
	switch spec.Scenario {
	case ScenarioChurn:
		benign = genChurn(r, ops)
	case ScenarioActors:
		benign = genActors(r, ops)
	default:
		benign = genSoup(r, ops)
	}
	p := &Program{
		Seed:     spec.Seed,
		Class:    spec.Class,
		Scenario: spec.Scenario,
		Combo:    spec.Combo,
		Protect:  spec.Protect,
		Guard:    spec.Guard,
		Benign:   benign,
	}
	n := len(benign)
	if spec.Scenario == ScenarioMulti {
		// Spread the parts across the stream: part k lands near
		// (35 + 22k)% so earlier bugs' damage and patches are live while
		// later scripts run.
		p.Class = mmbug.None
		nParts := len(combos[p.comboIndex()].parts)
		for k := 0; k < nParts; k++ {
			at := n*(35+22*k)/100 + r.intn(n/20+1)
			if k == 0 {
				p.InjectAt = at
			} else {
				p.Extra = append(p.Extra, at)
			}
		}
	} else {
		p.InjectAt = n*3/5 + r.intn(n/5+1)
	}
	return p
}

// genSoup is the PR-4 benign stream: weighted random traffic over the
// generator slots.
func genSoup(r *rng, ops int) []Op {
	benign := make([]Op, 0, ops)
	// Track which generator slots have ever been allocated so frees and
	// writes mostly land on plausible targets (the app tolerates any slot,
	// but aimless ops waste the budget).
	touched := make([]uint8, 0, GenSlots)
	for len(benign) < ops {
		// Every op carries a full field set (kinds that don't use Size or
		// Pat just ignore them) so the wire format round-trips exactly.
		op := Op{Size: genSize(r), Pat: genPat(r), Site: uint8(r.intn(GenSites))}
		roll := r.intn(100)
		switch {
		case roll < 35 || len(touched) == 0: // malloc
			op.Kind = OpMalloc
			op.Slot = uint8(r.intn(GenSlots))
			touched = appendSlot(touched, op.Slot)
		case roll < 55: // free
			op.Kind = OpFree
			op.Slot = touched[r.intn(len(touched))]
		case roll < 65: // realloc
			op.Kind = OpRealloc
			op.Slot = touched[r.intn(len(touched))]
		case roll < 82: // write
			op.Kind = OpWrite
			op.Slot = touched[r.intn(len(touched))]
		case roll < 92: // read
			op.Kind = OpRead
			op.Slot = touched[r.intn(len(touched))]
		default: // check
			op.Kind = OpCheck
			op.Slot = touched[r.intn(len(touched))]
		}
		benign = append(benign, op)
	}
	return benign
}

// churnSlots is the slot range churn phases cycle over; the remaining
// generator slots are reserved for the fixed mmap-spill sequence so the
// spill objects never collide with bin traffic.
const churnSlots = 28

// genChurn is the fragmentation scenario: a dense fill, then a
// free/malloc alternation that splits and coalesces bins, a realloc wave
// that grows objects in place or moves them, a fixed mmap-spill sequence
// exercising the dedicated-mapping zone, and a mixed tail.
func genChurn(r *rng, ops int) []Op {
	benign := make([]Op, 0, ops)
	fill := ops * 35 / 100
	churn := ops * 30 / 100
	grow := ops * 15 / 100
	for i := 0; i < fill; i++ {
		benign = append(benign, Op{
			Kind: OpMalloc, Slot: uint8(i % churnSlots),
			Site: uint8(r.intn(GenSites)), Size: genSize(r), Pat: genPat(r),
		})
	}
	for i := 0; i < churn; i++ {
		slot := uint8(r.intn(churnSlots))
		op := Op{Slot: slot, Site: uint8(r.intn(GenSites)), Size: genSize(r), Pat: genPat(r)}
		switch {
		case i%3 == 0:
			op.Kind = OpFree
		case i%3 == 1:
			op.Kind = OpMalloc
		default:
			op.Kind = OpWrite
		}
		benign = append(benign, op)
	}
	for i := 0; i < grow; i++ {
		benign = append(benign, Op{
			Kind: OpRealloc, Slot: uint8(r.intn(churnSlots)),
			Site: uint8(r.intn(GenSites)), Size: genSize(r), Pat: genPat(r),
		})
	}
	// Fixed spill sequence: two objects above the mmap threshold, one
	// written and freed, one left live and unwritten — exercises mapping,
	// content tracking and unmapping in the dedicated zone. Exactly two
	// spills keeps a delayed-free quarantine from overflowing its byte
	// budget during diagnosis probes.
	spillPat := genPat(r)
	benign = append(benign,
		Op{Kind: OpMalloc, Slot: churnSlots + 2, Site: 0, Size: sizeSpill, Pat: spillPat},
		Op{Kind: OpWrite, Slot: churnSlots + 2, Site: 1, Size: genSize(r), Pat: spillPat},
		Op{Kind: OpMalloc, Slot: churnSlots + 3, Site: 2, Size: sizeSpill, Pat: genPat(r)},
		Op{Kind: OpFree, Slot: churnSlots + 2, Site: 3, Size: genSize(r), Pat: genPat(r)},
	)
	for len(benign) < ops {
		benign = append(benign, genMixedOp(r, churnSlots))
	}
	return benign
}

// actorSlots is the per-actor slot span in the multi-actor scenario.
const actorSlots = 9

// genActors interleaves three independent actors, each confined to its
// own slot range, in a random round-robin — the streaming-ingest path
// sees event sequences that switch context every few ops.
func genActors(r *rng, ops int) []Op {
	benign := make([]Op, 0, ops)
	for len(benign) < ops {
		actor := r.intn(3)
		op := genMixedOp(r, actorSlots)
		op.Slot += uint8(actor * actorSlots)
		op.Site = uint8(actor*2 + r.intn(2)) // each actor owns two site families
		benign = append(benign, op)
	}
	return benign
}

// genMixedOp draws one weighted op over slots [0, span).
func genMixedOp(r *rng, span int) Op {
	op := Op{Slot: uint8(r.intn(span)), Site: uint8(r.intn(GenSites)), Size: genSize(r), Pat: genPat(r)}
	switch roll := r.intn(100); {
	case roll < 40:
		op.Kind = OpMalloc
	case roll < 58:
		op.Kind = OpFree
	case roll < 68:
		op.Kind = OpRealloc
	case roll < 84:
		op.Kind = OpWrite
	case roll < 94:
		op.Kind = OpRead
	default:
		op.Kind = OpCheck
	}
	return op
}

// genSize draws from a weighted distribution: mostly small objects with a
// tail of larger ones, all well under the reserved script sizes.
func genSize(r *rng) uint32 {
	if r.intn(10) < 7 {
		return uint32(MinGenSize + r.intn(96-MinGenSize+1))
	}
	return uint32(97 + r.intn(MaxGenSize-97+1))
}

// genPat draws a non-zero fill byte (zero means "undefined" to the model).
func genPat(r *rng) byte { return byte(1 + r.intn(255)) }

func appendSlot(s []uint8, v uint8) []uint8 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
