//go:build ignore

// gen_corpus regenerates the committed fuzz seed corpus:
//
//	cd internal/chaos && go run gen_corpus.go
//
// One encoded generated program per bug class (plus a benign one), in the
// native `go test fuzz v1` format, so FuzzChaosProgram starts from real
// injection scenarios instead of rediscovering the wire format.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"firstaid/internal/chaos"
	"firstaid/internal/mmbug"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzChaosProgram")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	classes := append([]mmbug.Type{mmbug.None}, mmbug.All...)
	for i, class := range classes {
		data := chaos.Encode(chaos.Generate(uint64(0xF00+i), class, 48))
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		name := "seed-" + strings.ReplaceAll(class.String(), " ", "-")
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
