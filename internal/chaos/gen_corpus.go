//go:build ignore

// gen_corpus regenerates the committed fuzz seed corpus:
//
//	cd internal/chaos && go run gen_corpus.go
//
// One file per chaos.CorpusSpecs() entry, in the native `go test fuzz v1`
// format, so FuzzChaosProgram starts from real injection scenarios instead
// of rediscovering the wire format. The single-bug specs encode in the
// version-1 wire format and regenerate their PR-4 files byte-identically;
// the scenario/protection specs emit version-2 bytes under seed-v2-* names.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"firstaid/internal/chaos"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzChaosProgram")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, spec := range chaos.CorpusSpecs() {
		data := chaos.Encode(chaos.GenerateSpec(spec))
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, spec.CorpusName())
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
