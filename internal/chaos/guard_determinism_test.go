package chaos

import (
	"reflect"
	"testing"

	"firstaid/internal/mmbug"
)

// TestGuardDeterminism pins the guard tier's replay contract: the sampling
// coin draws from the machine's seeded xorshift stream and every decision
// input is checkpointed, so a sampled recovery must replay byte-identically
// across sync, parallel-validation and streaming supervision — same faults,
// same early/fast-path flags, same findings, same oracle verdict. It covers
// both sampling modes: the forced 1/1 site (guaranteed guard hit plus the
// evidence fast path) and the 1/2 coin over realloc-heavy churn (guarded
// objects flowing through realloc's malloc-copy-free and the quarantine).
func TestGuardDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
	}{
		{"forced-overflow", RunConfig{Seed: 0x6A1, Class: mmbug.BufferOverflow}},
		{"forced-dangling-write", RunConfig{Seed: 0x6A2, Class: mmbug.DanglingWrite}},
		{"coin-churn", RunConfig{Seed: 0xF34, Scenario: ScenarioChurn, Class: mmbug.DanglingWrite, Guard: true, Ops: 64}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var base *Outcome
			for _, mode := range allModes {
				cfg := tc.cfg
				cfg.Mode = mode
				if !cfg.Guard {
					cfg.Machine.GuardForce = []string{"chaos_bug"}
				}
				out := Run(cfg)
				if !out.OK() {
					t.Fatalf("%s: oracle failed:\n%s", mode, out.Verdict())
				}
				if out.Stats.Failures == 0 {
					t.Fatalf("%s: injected bug never manifested:\n%s", mode, out.Verdict())
				}
				if base == nil {
					base = out
					continue
				}
				if !reflect.DeepEqual(out.Recoveries, base.Recoveries) {
					t.Fatalf("%s recoveries diverge from %s:\n%s\nvs\n%s",
						out.Mode, base.Mode, out.Verdict(), base.Verdict())
				}
			}
			if !tc.cfg.Guard {
				// The forced cases must have taken the access-point fast path
				// in every mode (DeepEqual above makes one check sufficient).
				if len(base.Recoveries) == 0 || !base.Recoveries[0].Early || !base.Recoveries[0].FastPath {
					t.Fatalf("forced site not detected at access with fast path:\n%s", base.Verdict())
				}
			}
		})
	}
}
