package chaos

import (
	"testing"
	"time"

	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/replay"
)

// BenchmarkLedgerOverheadGuard enforces the diagnosis ledger's cost
// contract on both paths it could tax:
//
//   - the malloc/free hot path: a clean event stream through a long-lived
//     streaming supervisor must cost within 1% of the DisableLedger
//     configuration — outside a recovery, the ledger is a nil-field check
//     and nothing more (the same discipline as telemetry and trace);
//   - the recovery wall: a seeded buggy run's summed recovery time
//     (rollback, two-phase diagnosis, patching, validation) must stay
//     within 5% with the ledger on — evidence is recorded from values the
//     recovery already computes, never re-derived.
//
// Rounds alternate configurations and keep the best of each: the minimum
// over interleaved runs is the estimator most robust to the multi-percent
// wall-clock jitter of shared CI machines. Each comparison re-measures
// before failing.
func BenchmarkLedgerOverheadGuard(b *testing.B) {
	const (
		hotBudget = 1.0 // percent, clean ingest path
		recBudget = 5.0 // percent, recovery wall
		rounds    = 8
	)
	best := func(d, prev time.Duration) time.Duration {
		if prev == 0 || d < prev {
			return d
		}
		return prev
	}

	// Hot path: one long-lived streaming supervisor per configuration, the
	// deployment shape — a fresh machine per round would charge setup costs
	// a production worker amortizes. The same benign program is re-ingested
	// every round.
	prog := Generate(0xC1EA7, mmbug.None, 0)
	buildSup := func(disable bool) *core.Supervisor {
		return core.NewSupervisor(&App{}, replay.NewLog(), core.Config{DisableLedger: disable})
	}
	// Each round re-ingests the stream enough times that a 1% difference
	// is milliseconds, not scheduler noise.
	const hotReps = 40
	ingest := func(sup *core.Supervisor) time.Duration {
		t0 := time.Now()
		for rep := 0; rep < hotReps; rep++ {
			for _, op := range prog.Ops() {
				kind, data, n := op.Event()
				sup.Ingest(kind, data, n)
			}
		}
		return time.Since(t0)
	}
	// A single supervisor pair can inherit an unlucky allocation layout
	// for its whole lifetime, so the minimum is also taken across several
	// independently built pairs — both sides converge to their best-case
	// layout, where only the real ledger delta remains.
	measureHot := func() float64 {
		var off, on time.Duration
		for pair := 0; pair < 3; pair++ {
			offSup, onSup := buildSup(true), buildSup(false)
			ingest(offSup) // warmup: page tables, site interning
			ingest(onSup)
			if onSup.Ledger() == nil || offSup.Ledger() != nil {
				b.Fatal("ledger wiring inverted")
			}
			for r := 0; r < rounds; r++ {
				off = best(ingest(offSup), off)
				on = best(ingest(onSup), on)
			}
		}
		return (float64(on)/float64(off) - 1) * 100
	}

	// Recovery wall: the same seeded overflow run, ledger on vs off,
	// comparing only the summed recovery episodes (the paper's survival
	// cost), not program generation or clean execution.
	recover := func(disable bool) time.Duration {
		out := Run(RunConfig{Seed: 0x1D6, Class: mmbug.BufferOverflow, DisableLedger: disable})
		if !out.OK() || out.Stats.Recoveries == 0 {
			b.Fatalf("benchmark run did not recover:\n%s", out.Verdict())
		}
		var wall time.Duration
		for _, rec := range out.Sup.Recoveries {
			wall += rec.RecoveryWall
		}
		return wall
	}
	measureRec := func() float64 {
		var off, on time.Duration
		recover(true) // warmup
		recover(false)
		for r := 0; r < rounds; r++ {
			off = best(recover(true), off)
			on = best(recover(false), on)
		}
		return (float64(on)/float64(off) - 1) * 100
	}

	hot, rec := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 3; attempt++ {
			hot = measureHot()
			if hot < hotBudget {
				break
			}
		}
		for attempt := 0; attempt < 3; attempt++ {
			rec = measureRec()
			if rec < recBudget {
				break
			}
		}
	}
	b.ReportMetric(hot, "hot-overhead-%")
	b.ReportMetric(rec, "recovery-overhead-%")
	if hot >= hotBudget {
		b.Fatalf("ledger costs %.2f%% on the clean ingest path, budget %.1f%%", hot, hotBudget)
	}
	if rec >= recBudget {
		b.Fatalf("ledger costs %.2f%% of recovery wall, budget %.1f%%", rec, recBudget)
	}
}
