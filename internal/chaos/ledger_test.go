package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"firstaid/internal/core"
	"firstaid/internal/ledger"
	"firstaid/internal/mmbug"
	"firstaid/internal/report"
)

// canonicals returns the canonical projection of every ledger diagnosis of
// a finished run, oldest first.
func canonicals(t *testing.T, out *Outcome) [][]byte {
	t.Helper()
	var cs [][]byte
	for _, d := range out.Sup.Ledger().List(ledger.Filter{Worker: ledger.AnyWorker}) {
		c, err := d.Canonical()
		if err != nil {
			t.Fatalf("canonical projection of diagnosis %d: %v", d.ID, err)
		}
		cs = append(cs, c)
	}
	return cs
}

// TestLedgerDeterminism is the mode-invariance contract for the diagnosis
// ledger: the same seeded chaos program must produce exactly one ledger
// Diagnosis per recovery in every supervision mode, and the canonical
// projections — phases, conditions, evidence, clocks — must be
// byte-identical across sync, parallel-validation and streaming, and
// across independent reruns of the same mode.
func TestLedgerDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		cfg   RunConfig
		modes []Mode
	}{
		{"overflow", RunConfig{Seed: 0x1D6, Class: mmbug.BufferOverflow}, allModes},
		{"dangling-write", RunConfig{Seed: 0x1D7, Class: mmbug.DanglingWrite}, allModes},
		// The multi combo consolidates into one recovery under replay modes
		// (the first re-execution's preventive patches absorb the later
		// triggers) but recovers three times under streaming, so the
		// cross-mode comparison pairs replay with replay and streaming with
		// an independent streaming rerun.
		{"multi-combo", RunConfig{Seed: 0x1D8, Scenario: ScenarioMulti, Combo: 2, Ops: 80},
			[]Mode{ModeSync, ModeParallel}},
		{"multi-combo-stream", RunConfig{Seed: 0x1D8, Scenario: ScenarioMulti, Combo: 2, Ops: 80, Mode: ModeStream},
			[]Mode{ModeStream, ModeStream}},
		{"guarded-churn", RunConfig{Seed: 0xF34, Scenario: ScenarioChurn, Class: mmbug.DanglingWrite, Guard: true, Ops: 64}, allModes},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var base [][]byte
			var baseMode Mode
			for _, mode := range tc.modes {
				cfg := tc.cfg
				cfg.Mode = mode
				out := Run(cfg)
				if !out.OK() {
					t.Fatalf("%s: oracle failed:\n%s", mode, out.Verdict())
				}
				if out.Stats.Recoveries == 0 {
					t.Fatalf("%s: no recovery happened:\n%s", mode, out.Verdict())
				}

				// Exactly one ledger diagnosis per recovery, none left open.
				ldg := out.Sup.Ledger()
				if ldg.Len() != len(out.Sup.Recoveries) {
					t.Fatalf("%s: %d ledger diagnoses for %d recoveries",
						mode, ldg.Len(), len(out.Sup.Recoveries))
				}
				if n := ldg.InFlight(ledger.AnyWorker); n != 0 {
					t.Fatalf("%s: %d diagnoses still open after the run", mode, n)
				}
				for i, rec := range out.Sup.Recoveries {
					if rec.Ledger == nil {
						t.Fatalf("%s: recovery %d has no ledger entry", mode, i)
					}
				}

				cs := canonicals(t, out)
				if base == nil {
					base, baseMode = cs, mode
					continue
				}
				if len(cs) != len(base) {
					t.Fatalf("%s has %d diagnoses, %s has %d", mode, len(cs), baseMode, len(base))
				}
				for i := range cs {
					if !bytes.Equal(cs[i], base[i]) {
						t.Fatalf("diagnosis %d canonical form diverges between %s and %s:\n%s\nvs\n%s",
							i, mode, baseMode, cs[i], base[i])
					}
				}
			}

			// Rerunning the same seed in the base mode replays the exact
			// same canonical diagnoses.
			cfg := tc.cfg
			cfg.Mode = tc.modes[0]
			again := canonicals(t, Run(cfg))
			for i := range again {
				if !bytes.Equal(again[i], base[i]) {
					t.Fatalf("rerun diagnosis %d diverges from first sync run:\n%s\nvs\n%s",
						i, again[i], base[i])
				}
			}
		})
	}
}

// TestBundleDeterminism pins the postmortem-bundle byte-identity contract:
// two independent runs of the same seed in the same mode produce
// byte-identical tar.gz bundles once wall-clock content is stripped.
func TestBundleDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeStream} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			bundles := func() [][]byte {
				out := Run(RunConfig{Seed: 0x1D6, Class: mmbug.BufferOverflow, Mode: mode})
				if !out.OK() || out.Stats.Recoveries == 0 {
					t.Fatalf("run did not recover:\n%s", out.Verdict())
				}
				var bs [][]byte
				for _, d := range out.Sup.Ledger().List(ledger.Filter{Worker: ledger.AnyWorker}) {
					in := report.BundleFor(d, nil, nil)
					in.StripWall = true
					var buf bytes.Buffer
					if err := report.WriteBundle(&buf, in); err != nil {
						t.Fatalf("bundle for diagnosis %d: %v", d.ID, err)
					}
					bs = append(bs, buf.Bytes())
				}
				return bs
			}
			a, b := bundles(), bundles()
			if len(a) != len(b) || len(a) == 0 {
				t.Fatalf("bundle counts diverge: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if !bytes.Equal(a[i], b[i]) {
					t.Fatalf("bundle %d differs between two identical runs (%d vs %d bytes)",
						i, len(a[i]), len(b[i]))
				}
			}
		})
	}
}

// TestReproRoundTrip pins ReproCommand/ParseRepro as exact inverses over
// the RunConfig surface they encode.
func TestReproRoundTrip(t *testing.T) {
	cfgs := []RunConfig{
		{Seed: 0x1D6, Class: mmbug.BufferOverflow},
		{Seed: 0x1D7, Class: mmbug.DanglingWrite, Mode: ModeParallel, Protect: true},
		{Seed: 0x1D8, Scenario: ScenarioMulti, Combo: 2, Ops: 80, Mode: ModeStream},
		{Seed: 0xF34, Scenario: ScenarioChurn, Class: mmbug.UninitRead, Guard: true, Ops: 64},
		{Seed: 0xBEEF, Class: mmbug.DoubleFree, Machine: core.MachineConfig{GuardRate: 4096}},
		{Seed: 0xBEF0, Class: mmbug.DanglingRead, Machine: core.MachineConfig{GuardForce: []string{"chaos_bug", "script"}}},
	}
	for _, cfg := range cfgs {
		cmd := ReproCommand(cfg)
		if !strings.HasPrefix(cmd, "firstaid-run ") {
			t.Fatalf("repro command %q does not name the binary", cmd)
		}
		got, err := ParseRepro(cmd)
		if err != nil {
			t.Fatalf("ParseRepro(%q): %v", cmd, err)
		}
		if !reflect.DeepEqual(got, cfg) {
			t.Fatalf("round trip of %q:\ngot  %+v\nwant %+v", cmd, got, cfg)
		}
	}

	for _, bad := range []string{
		"",
		"firstaid-run",
		"firstaid-run -chaos-class overflow", // no seed
		"firstaid-run -chaos-seed 0x1 -chaos-class owl", // unknown class
		"firstaid-run -chaos-seed 0x1 -frobnicate",      // unknown flag
		"firstaid-run -chaos-seed",                      // dangling value
	} {
		if _, err := ParseRepro(bad); err == nil {
			t.Fatalf("ParseRepro(%q) accepted a bad command", bad)
		}
	}
}

// TestPostmortemReproducesOffline is the acceptance loop for bundles: run
// a seeded chaos program, write its postmortem bundles, read the REPRO.txt
// command back out of the bundle, re-run it offline, and require the
// reproduced diagnosis to match the original byte for byte in canonical
// form.
func TestPostmortemReproducesOffline(t *testing.T) {
	cfg := RunConfig{Seed: 0x1D6, Class: mmbug.BufferOverflow, Mode: ModeSync}
	out := Run(cfg)
	if !out.OK() || out.Stats.Recoveries == 0 {
		t.Fatalf("run did not recover:\n%s", out.Verdict())
	}

	dir := t.TempDir()
	paths, err := out.WritePostmortems(dir)
	if err != nil {
		t.Fatalf("WritePostmortems: %v", err)
	}
	if len(paths) != out.Sup.Ledger().Len() {
		t.Fatalf("wrote %d bundles for %d diagnoses", len(paths), out.Sup.Ledger().Len())
	}

	orig := canonicals(t, out)
	for i, path := range paths {
		if filepath.Dir(path) != dir {
			t.Fatalf("bundle %s written outside %s", path, dir)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		files, err := report.ReadBundle(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("bundle %s does not read back: %v", path, err)
		}
		repro, ok := files["REPRO.txt"]
		if !ok {
			t.Fatalf("bundle %s has no REPRO.txt", path)
		}

		// The REPRO.txt command, parsed and re-run offline, replays the
		// same recovery into the same canonical diagnosis.
		rcfg, err := ParseRepro(string(repro))
		if err != nil {
			t.Fatalf("REPRO.txt %q does not parse: %v", repro, err)
		}
		if rcfg.Seed != cfg.Seed || rcfg.Class != cfg.Class || rcfg.Mode != cfg.Mode {
			t.Fatalf("REPRO.txt decodes to %+v, want the original %+v", rcfg, cfg)
		}
		redo := Run(rcfg)
		if !redo.OK() {
			t.Fatalf("offline reproduction failed the oracle:\n%s", redo.Verdict())
		}
		got := canonicals(t, redo)
		if !bytes.Equal(got[i], orig[i]) {
			t.Fatalf("offline reproduction of diagnosis %d diverges:\n%s\nvs\n%s", i, got[i], orig[i])
		}
	}
}
