package chaos

import (
	"fmt"

	"firstaid/internal/replay"
)

// Model is the pure-Go shadow of the chaos app under *patched* semantics:
// each injected-bug op behaves as its First-Aid patch makes it behave
// (overflows stay in bounds, stale accesses are absorbed, re-frees are
// blocked, uninitialized reads see zeroes). After a recovered run, the
// machine's slot table, live-object set and contents must agree with the
// model byte for byte — any drift means recovery corrupted program state.
type Model struct {
	Slots [NumSlots]ModelSlot
}

// ModelSlot mirrors one slot-table entry.
type ModelSlot struct {
	Allocated bool // addr field non-zero
	Stale     bool
	Size      uint32
	Defined   uint32
	Pat       byte
}

func (s ModelSlot) live() bool { return s.Allocated && !s.Stale }

// Apply advances the model by one op, mirroring App.exec exactly.
func (m *Model) Apply(op Op) {
	s := &m.Slots[op.Slot]
	switch op.Kind {
	case OpMalloc:
		*s = ModelSlot{Allocated: true, Size: op.Size, Pat: op.Pat}
	case OpRealloc:
		if !s.live() {
			*s = ModelSlot{Allocated: true, Size: op.Size, Pat: op.Pat}
			return
		}
		s.Size = op.Size
		if s.Defined > op.Size {
			s.Defined = op.Size
		}
	case OpFree:
		if s.live() {
			s.Stale = true
		}
	case OpWrite, OpOverflow:
		// Patched overflow == in-bounds write.
		if s.live() && s.Size > 0 {
			s.Defined, s.Pat = s.Size, op.Pat
		}
	case OpRead, OpCheck, OpProtect, OpUnprotect,
		OpDangleWrite, OpDangleRead, OpDoubleFree, OpUninitRead:
		// Reads never change state; protection moves an object without
		// changing its logical contents; patched stale/uninit accesses
		// and blocked re-frees leave live state untouched.
	}
}

// LiveCount returns the number of live model objects (the slot table
// itself is extra).
func (m *Model) LiveCount() int {
	n := 0
	for _, s := range m.Slots {
		if s.live() {
			n++
		}
	}
	return n
}

// OpsFromLog decodes a replay log back into the op stream, index-aligned
// with event sequence numbers: ops[i] is nil-equivalent (ok=false ops are
// returned as kind-invalid entries the model skips) when event i is not a
// chaos op. Decoding from the log — rather than trusting the program that
// produced it — keeps the oracle honest for streamed and fleet-recorded
// traffic too.
func OpsFromLog(log *replay.Log) []Op {
	ops := make([]Op, log.Len())
	for i := 0; i < log.Len(); i++ {
		if op, ok := OpFromEvent(log.At(i)); ok {
			ops[i] = op
		} else {
			ops[i] = Op{Kind: numOpKinds}
		}
	}
	return ops
}

// RunModel replays ops through a fresh model, skipping the event indices
// in skipped (events the supervisor dropped after exhausting retries).
func RunModel(ops []Op, skipped map[int]bool) *Model {
	m := &Model{}
	for i, op := range ops {
		if skipped[i] || op.Kind >= numOpKinds {
			continue
		}
		m.Apply(op)
	}
	return m
}

func (s ModelSlot) String() string {
	switch {
	case !s.Allocated:
		return "empty"
	case s.Stale:
		return fmt.Sprintf("stale size=%d pat=%#02x", s.Size, s.Pat)
	default:
		return fmt.Sprintf("live size=%d defined=%d pat=%#02x", s.Size, s.Defined, s.Pat)
	}
}
