package chaos

import (
	"strings"
	"testing"

	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/replay"
)

// TestOracleCatchesBrokenAllocator proves the oracle has teeth on the
// allocator side: running an ordinary benign program on a deliberately
// broken allocator (coalescing disabled) must fail CheckInvariants — the
// exact defect class a silent allocator regression would introduce.
func TestOracleCatchesBrokenAllocator(t *testing.T) {
	broken := 0
	for _, seed := range []uint64{1, 2, 3} {
		out := Run(RunConfig{Seed: seed, Mode: ModeSync, TamperNoCoalesce: true})
		if out.OK() {
			continue
		}
		broken++
		if !strings.Contains(out.OracleErr.Error(), "invariants") {
			t.Fatalf("seed %#x: unexpected failure mode:\n%s", seed, out.Verdict())
		}
		// The same seed on the healthy allocator must pass, so the
		// verdict flip is attributable to the tamper alone.
		if healthy := Run(RunConfig{Seed: seed, Mode: ModeSync}); !healthy.OK() {
			t.Fatalf("seed %#x fails even without tampering:\n%s", seed, healthy.Verdict())
		}
	}
	if broken == 0 {
		t.Fatal("no seed exposed the uncoalescing allocator — the oracle has no teeth")
	}
}

// TestOracleCatchesCorruptedContents proves the oracle has teeth on the
// content side: flipping a single byte of a live object after a clean run
// must produce a model mismatch naming the slot.
func TestOracleCatchesCorruptedContents(t *testing.T) {
	prog := Generate(99, 0, 0)
	log := replay.NewLog()
	prog.AppendTo(log)
	sup := core.NewSupervisor(&App{}, log, core.Config{})
	sup.Run()
	if err := CheckSupervisor(sup); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}
	// Find a live slot with defined contents and flip its first byte.
	model := RunModel(OpsFromLog(sup.Log()), nil)
	table := sup.M.Proc.RootAddr(rootTable)
	flipped := false
	for i, s := range model.Slots {
		if !s.live() || s.Defined == 0 {
			continue
		}
		addr, err := sup.M.Mem.ReadU32(table + 16*uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := sup.M.Mem.Write(addr, []byte{s.Pat ^ 0xFF}); err != nil {
			t.Fatal(err)
		}
		flipped = true
		break
	}
	if !flipped {
		t.Fatal("program left no live defined slot to corrupt; pick another seed")
	}
	err := CheckSupervisor(sup)
	if err == nil {
		t.Fatal("oracle accepted corrupted object contents")
	}
	if !strings.Contains(err.Error(), "byte") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}

// TestWireRoundTrip: Encode/Decode must be exact inverses on generator
// output — the fuzz corpus is seeded with encoded real programs, so any
// asymmetry would silently shrink fuzz coverage.
func TestWireRoundTrip(t *testing.T) {
	for class := 0; class <= 5; class++ {
		for _, seed := range []uint64{1, 0xABCDEF, ^uint64(0)} {
			p := Generate(seed, mmbug.Type(class), 0)
			q := Decode(Encode(p))
			if q.Class != p.Class || q.InjectAt != p.InjectAt {
				t.Fatalf("class %d seed %#x: header mangled: %v/%d vs %v/%d",
					class, seed, q.Class, q.InjectAt, p.Class, p.InjectAt)
			}
			if len(q.Benign) != len(p.Benign) {
				t.Fatalf("class %d seed %#x: %d ops decoded, want %d",
					class, seed, len(q.Benign), len(p.Benign))
			}
			for i := range p.Benign {
				if p.Benign[i] != q.Benign[i] {
					t.Fatalf("class %d seed %#x: op %d mangled: %v vs %v",
						class, seed, i, q.Benign[i], p.Benign[i])
				}
			}
		}
	}
}

// TestRegressionRefreeAcrossCheckpoint pins, with the discovering
// program, the recovery bug the harness surfaced: when the recovery
// checkpoint falls between a double free's first free and its re-free,
// the first free is pre-checkpoint history and the delay-free patch at
// its site never fires during re-execution — the re-free (at a different
// site) went to the raw allocator, crashed the patched timeline again
// and again, and the event was dropped instead of survived. The
// parameter check now also honours a patch at the recorded first-free
// site. Seed 0x2a places the injected script exactly astride a
// checkpoint boundary.
func TestRegressionRefreeAcrossCheckpoint(t *testing.T) {
	for _, mode := range allModes {
		out := Run(RunConfig{Seed: 0x2a, Class: mmbug.DoubleFree, Mode: mode})
		if out.Stats.Failures == 0 {
			t.Fatalf("%s: double free never manifested:\n%s", mode, out.Verdict())
		}
		if out.Stats.Skipped != 0 {
			t.Fatalf("%s: re-free across the checkpoint was dropped, not survived:\n%s",
				mode, out.Verdict())
		}
		if !out.OK() {
			t.Fatalf("%s: oracle rejected the recovered state:\n%s", mode, out.Verdict())
		}
	}
}

// TestRegressionImperfectFitAccounting pins the allocator bug this
// harness surfaced during development: recycling a free chunk whose
// remainder is too small to split grants more bytes than requested, and
// Malloc used to credit LiveBytes with the request while Free debits the
// grant — the counter drifted low on every imperfect bin fit and the
// oracle's accounting invariant (LiveBytes == sum of in-use payloads)
// tripped. The explicit program below forces exactly that recycle
// through the chaos app; it fails on the pre-fix allocator.
func TestRegressionImperfectFitAccounting(t *testing.T) {
	prog := &Program{
		Benign: []Op{
			{Kind: OpMalloc, Slot: 0, Site: 0, Size: 32, Pat: 0x11}, // 56-byte chunk
			{Kind: OpMalloc, Slot: 1, Site: 1, Size: 8, Pat: 0x22},  // guard: keeps slot 0 off the top
			{Kind: OpFree, Slot: 0, Site: 2},
			// 24 bytes wants a 48-byte chunk; the 56-byte hole is the
			// best fit and its 8-byte remainder cannot be split off, so
			// the whole chunk is granted — the imperfect fit.
			{Kind: OpMalloc, Slot: 2, Site: 3, Size: 24, Pat: 0x33},
			{Kind: OpWrite, Slot: 2, Site: 3, Pat: 0x44},
			{Kind: OpCheck, Slot: 2, Site: 3},
		},
	}
	for _, mode := range allModes {
		out := RunProgram(prog, RunConfig{Mode: mode})
		if out.Stats.Failures != 0 {
			t.Fatalf("%s: regression program faulted:\n%s", mode, out.Verdict())
		}
		if !out.OK() {
			t.Fatalf("%s: accounting drift is back:\n%s", mode, out.Verdict())
		}
	}
}
