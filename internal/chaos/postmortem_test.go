package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// savePostmortem writes a failing run's postmortem bundles (plus its full
// verdict) into $FIRSTAID_POSTMORTEM_DIR, the directory CI uploads as a
// workflow artifact when the accuracy matrix or the fuzz smoke fails. A
// no-op when the variable is unset, so local runs stay clean.
func savePostmortem(t *testing.T, out *Outcome) {
	dir := os.Getenv("FIRSTAID_POSTMORTEM_DIR")
	if dir == "" || out == nil || out.Prog == nil {
		return
	}
	sub := filepath.Join(dir, fmt.Sprintf("seed-%#x-%s", out.Prog.Seed, out.Mode))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Logf("postmortem: %v", err)
		return
	}
	if err := os.WriteFile(filepath.Join(sub, "VERDICT.txt"), []byte(out.Verdict()), 0o644); err != nil {
		t.Logf("postmortem: %v", err)
	}
	paths, err := out.WritePostmortems(sub)
	if err != nil {
		t.Logf("postmortem: %v", err)
		return
	}
	t.Logf("postmortem: wrote %d bundle(s) under %s", len(paths), sub)
}
