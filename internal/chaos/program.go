// Package chaos is the seeded bug-injection fuzzing harness with a
// differential heap oracle.
//
// A chaos Program is a randomly generated but fully replayable allocation
// workload: a stream of benign malloc/free/realloc/write/read/check
// operations over a fixed slot table, plus (optionally) exactly one
// injected bug script from any mmbug class at a chosen step. The same
// program runs twice — through a real First-Aid machine (sync, parallel
// validation, or streaming ingest) and through a pure-Go shadow model of
// the *patched* semantics — and the oracle asserts, after every recovery,
// that the machine's live-object set, contents and heap.CheckInvariants()
// agree with the model.
//
// Everything is a pure function of the seed: the generator uses its own
// xorshift state, the app keeps all state in the virtual heap, and the
// injected scripts reserve object sizes so large that no generator chunk
// (or coalesced run of generator chunks) can ever satisfy them — script
// objects are therefore always carved from the top chunk with
// deterministic adjacency, and recycle each other's chunks exactly. That
// makes every injected bug manifest deterministically whatever the
// surrounding random layout is, which is what lets the oracle be strict.
package chaos

import (
	"fmt"
	"strings"

	"firstaid/internal/mmbug"
)

// OpKind enumerates chaos operations. The first six are the benign
// vocabulary the generator (and the fuzz decoder) emits; the rest only
// appear inside injected bug scripts.
type OpKind uint8

// Benign operations.
const (
	OpMalloc OpKind = iota // allocate Size bytes into Slot (auto-frees a live occupant)
	OpFree                 // free the object in Slot (keeps the stale address)
	OpRealloc              // resize the object in Slot to Size bytes
	OpWrite                // fill the whole object with Pat
	OpRead                 // read the whole object
	OpCheck                // read the defined prefix and assert every byte == Pat

	numBenignKinds = iota
)

// Injected bug operations (script-only; the wire format cannot express
// them, so fuzz-decoded programs contain them only via a well-formed
// script).
const (
	OpOverflow    OpKind = numBenignKinds + iota // write Size bytes past the object end
	OpDangleWrite                                // write Pat through the slot's stale pointer
	OpDangleRead                                 // read through the stale pointer, assert the old Pat
	OpDoubleFree                                 // free the stale pointer again
	OpUninitRead                                 // read a never-written object, assert zero

	numOpKinds
)

var kindNames = [numOpKinds]string{
	"malloc", "free", "realloc", "write", "read", "check",
	"overflow", "dangle-write", "dangle-read", "double-free", "uninit-read",
}

func (k OpKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Op is one chaos operation. It maps 1:1 onto a replay.Event (Kind = the
// op-kind name, N = Slot, Data = "size,pat,site"), so chaos programs flow
// unchanged through the offline log, streaming Ingest and the fleet's
// JSON front-end.
type Op struct {
	Kind OpKind
	Slot uint8 // slot-table index
	Site uint8 // call-site family
	Size uint32
	Pat  byte
}

func (o Op) String() string {
	return fmt.Sprintf("%s slot=%d site=%d size=%d pat=%#02x", o.Kind, o.Slot, o.Site, o.Size, o.Pat)
}

// Geometry shared by the generator, the app, the model and the fuzz
// decoder. Generator traffic is confined to the first GenSlots slots,
// GenSites site families and small sizes; injected scripts own the
// remaining slots and sites, and reserved sizes so large that the
// generator's whole footprint (MaxOps chunks of at most
// maxGenSize+overhead bytes, ~36 KiB) cannot coalesce into a chunk that
// would satisfy them.
const (
	GenSlots  = 32 // slots the generator uses
	NumSlots  = 36 // + 4 script slots
	GenSites  = 8  // site families the generator uses
	NumSites  = 12 // + 4 script site families
	slotBytes = 16 // table entry: addr, size, defined, pat|stale

	MinGenSize = 8   // smallest generator object
	MaxGenSize = 200 // largest generator object
	MaxOps     = 160 // hard cap on benign ops per program

	sizeVictim = 48000 // overflow victim
	sizeGuard  = 52000 // overflow guard, adjacent to the victim
	sizeDangle = 56000 // dangling/double-free object and its recycler
	sizePin    = 60000 // pins bracketing a to-be-freed object
	sizeUninit = 64000 // uninitialized-read object and the dirtying ancestor

	overflowDelta  = 48 // bytes written past the victim: smashes the guard's boundary tag and header
	dangleWriteLen = 32 // bytes written through the stale pointer
	probeLen       = 8  // bytes read by dangle-read/uninit-read asserts
)

// Script slot indices (outside the generator's range).
const (
	slotScript0 = GenSlots + iota
	slotScript1
	slotScript2
	slotScript3
)

// Script site families (outside the generator's range). Patches diagnosed
// from an injected bug land exactly on these families.
const (
	siteScriptAlloc = GenSites + iota // the buggy object's allocation site
	siteScriptAux                     // guards, pins, recyclers
	siteScriptFree                    // the buggy (first) free site
	siteScriptFree2                   // the re-free site of a double free
)

// Fixed script fill patterns. They only need to be mutually distinct and
// non-zero; fixing them keeps decoded fuzz programs deterministic without
// a seed.
const (
	patVictim  = 0x5A
	patGuard   = 0x69
	patDangled = 0x3C
	patRecycle = 0x7E
	patStale   = 0x99
	patPin     = 0x24
)

// Program is one chaos workload: a benign op stream with at most one bug
// script injected at InjectAt. Ops() expands it to the executable stream.
type Program struct {
	Seed     uint64     // generator seed; 0 for fuzz-decoded programs
	Class    mmbug.Type // injected ground truth (None = benign)
	InjectAt int        // script insertion index into Benign (clamped to [0, len])
	Benign   []Op
}

// Script returns the injection script for a bug class: the op sequence
// that plants exactly one deterministic instance of the bug using the
// reserved slots, sites and sizes.
func Script(class mmbug.Type) []Op {
	switch class {
	case mmbug.BufferOverflow:
		// Victim and guard are carved from the top chunk back to back
		// (no smaller free region can serve their reserved sizes), so
		// the overflow smashes the guard's boundary tag, allocator
		// header and leading content; the check assert trips on the
		// content. Under the padding patch the delta lands in the
		// victim's own back padding and the guard survives.
		return []Op{
			{Kind: OpMalloc, Slot: slotScript0, Site: siteScriptAlloc, Size: sizeVictim, Pat: patVictim},
			{Kind: OpMalloc, Slot: slotScript1, Site: siteScriptAux, Size: sizeGuard, Pat: patGuard},
			{Kind: OpWrite, Slot: slotScript0, Site: siteScriptAlloc, Pat: patVictim},
			{Kind: OpWrite, Slot: slotScript1, Site: siteScriptAux, Pat: patGuard},
			{Kind: OpOverflow, Slot: slotScript0, Site: siteScriptAlloc, Size: overflowDelta, Pat: patVictim},
			{Kind: OpCheck, Slot: slotScript1, Site: siteScriptAux, Pat: patGuard},
		}
	case mmbug.DanglingWrite:
		// Pins on both sides keep the freed chunk from coalescing, so
		// the recycler reuses exactly the dangled address; the stale
		// write then corrupts the recycler and its check trips. Under
		// the delay-free patch the chunk is not recycled and the stale
		// write is absorbed.
		return []Op{
			{Kind: OpMalloc, Slot: slotScript0, Site: siteScriptAux, Size: sizePin, Pat: patPin},
			{Kind: OpMalloc, Slot: slotScript1, Site: siteScriptAlloc, Size: sizeDangle, Pat: patDangled},
			{Kind: OpMalloc, Slot: slotScript2, Site: siteScriptAux, Size: sizePin, Pat: patPin},
			{Kind: OpWrite, Slot: slotScript1, Site: siteScriptAlloc, Pat: patDangled},
			{Kind: OpFree, Slot: slotScript1, Site: siteScriptFree},
			{Kind: OpMalloc, Slot: slotScript3, Site: siteScriptAux, Size: sizeDangle, Pat: patRecycle},
			{Kind: OpWrite, Slot: slotScript3, Site: siteScriptAux, Pat: patRecycle},
			{Kind: OpDangleWrite, Slot: slotScript1, Site: siteScriptFree, Pat: patStale},
			{Kind: OpCheck, Slot: slotScript3, Site: siteScriptAux, Pat: patRecycle},
		}
	case mmbug.DanglingRead:
		// Same recycle construction; the stale read asserts the old
		// pattern and finds the recycler's instead. Delay-free (without
		// canary fill) preserves the contents, so the patched timeline
		// passes.
		return []Op{
			{Kind: OpMalloc, Slot: slotScript0, Site: siteScriptAux, Size: sizePin, Pat: patPin},
			{Kind: OpMalloc, Slot: slotScript1, Site: siteScriptAlloc, Size: sizeDangle, Pat: patDangled},
			{Kind: OpMalloc, Slot: slotScript2, Site: siteScriptAux, Size: sizePin, Pat: patPin},
			{Kind: OpWrite, Slot: slotScript1, Site: siteScriptAlloc, Pat: patDangled},
			{Kind: OpFree, Slot: slotScript1, Site: siteScriptFree},
			{Kind: OpMalloc, Slot: slotScript3, Site: siteScriptAux, Size: sizeDangle, Pat: patRecycle},
			{Kind: OpWrite, Slot: slotScript3, Site: siteScriptAux, Pat: patRecycle},
			{Kind: OpDangleRead, Slot: slotScript1, Site: siteScriptFree},
		}
	case mmbug.DoubleFree:
		// The re-free hands the stale user pointer straight to the raw
		// allocator, which reads the extension header's flags word as an
		// insane chunk size and aborts. Under delay-free the parameter
		// check blocks the re-free.
		return []Op{
			{Kind: OpMalloc, Slot: slotScript0, Site: siteScriptAlloc, Size: sizeDangle, Pat: patDangled},
			{Kind: OpWrite, Slot: slotScript0, Site: siteScriptAlloc, Pat: patDangled},
			{Kind: OpFree, Slot: slotScript0, Site: siteScriptFree},
			{Kind: OpDoubleFree, Slot: slotScript0, Site: siteScriptFree2},
		}
	case mmbug.UninitRead:
		// An ancestor dirties the reserved chunk and dies; the reader
		// recycles it without writing and asserts zeroed content. Under
		// the zero-fill patch the fresh allocation really is zero.
		return []Op{
			{Kind: OpMalloc, Slot: slotScript0, Site: siteScriptAux, Size: sizePin, Pat: patPin},
			{Kind: OpMalloc, Slot: slotScript1, Site: siteScriptAux, Size: sizeUninit, Pat: patDangled},
			{Kind: OpMalloc, Slot: slotScript2, Site: siteScriptAux, Size: sizePin, Pat: patPin},
			{Kind: OpWrite, Slot: slotScript1, Site: siteScriptAux, Pat: patDangled},
			{Kind: OpFree, Slot: slotScript1, Site: siteScriptFree},
			{Kind: OpMalloc, Slot: slotScript1, Site: siteScriptAlloc, Size: sizeUninit},
			{Kind: OpUninitRead, Slot: slotScript1, Site: siteScriptAlloc},
		}
	}
	return nil
}

// Ops expands the program into its executable operation stream: the benign
// ops with the class script spliced in at InjectAt.
func (p *Program) Ops() []Op {
	script := Script(p.Class)
	at := p.InjectAt
	if at < 0 {
		at = 0
	}
	if at > len(p.Benign) {
		at = len(p.Benign)
	}
	out := make([]Op, 0, len(p.Benign)+len(script))
	out = append(out, p.Benign[:at]...)
	out = append(out, script...)
	out = append(out, p.Benign[at:]...)
	return out
}

// String renders the decoded program — part of every failure report, so a
// failing seed reproduces and shrinks trivially.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos program seed=%#x class=%v inject-at=%d (%d benign ops)\n",
		p.Seed, p.Class, p.InjectAt, len(p.Benign))
	for i, op := range p.Ops() {
		marker := "  "
		if s := len(Script(p.Class)); s > 0 && i >= p.injectClamped() && i < p.injectClamped()+s {
			marker = "* " // injected
		}
		fmt.Fprintf(&b, "%s#%-3d %v\n", marker, i, op)
	}
	return b.String()
}

func (p *Program) injectClamped() int {
	at := p.InjectAt
	if at < 0 {
		at = 0
	}
	if at > len(p.Benign) {
		at = len(p.Benign)
	}
	return at
}
