// Package chaos is the seeded bug-injection fuzzing harness with a
// differential heap oracle.
//
// A chaos Program is a randomly generated but fully replayable allocation
// workload: a stream of benign malloc/free/realloc/write/read/check
// operations over a fixed slot table, plus injected bug scripts from the
// mmbug classes at chosen steps. The same program runs twice — through a
// real First-Aid machine (sync, parallel validation, or streaming ingest)
// and through a pure-Go shadow model of the *patched* semantics — and the
// oracle asserts, after every recovery, that the machine's live-object
// set, contents and heap.CheckInvariants() agree with the model.
//
// Programs come in four scenario kinds: single-bug soups (the PR-4
// harness), multi-bug programs whose 2–3 scripts interact through shared
// chunks and banked slot/site families, fragmentation/realloc churn
// workloads with mmap spills, and interleaved multi-actor streams. Any
// scenario can additionally protect its corruptible script object as a
// Selfie-style sensitive region, which moves detection from the next use
// to the corrupting event itself.
//
// Everything is a pure function of the seed: the generator uses its own
// xorshift state, the app keeps all state in the virtual heap, and the
// injected scripts reserve object sizes so large that no generator chunk
// (or coalesced run of generator chunks) can ever satisfy them — script
// objects are therefore always carved from the top chunk with
// deterministic adjacency, and recycle each other's chunks exactly. That
// makes every injected bug manifest deterministically whatever the
// surrounding random layout is, which is what lets the oracle be strict.
package chaos

import (
	"fmt"
	"strings"

	"firstaid/internal/mmbug"
)

// OpKind enumerates chaos operations. The first six are the benign
// vocabulary the generator (and the fuzz decoder) emits; the rest only
// appear inside injected bug scripts.
type OpKind uint8

// Benign operations.
const (
	OpMalloc  OpKind = iota // allocate Size bytes into Slot (auto-frees a live occupant)
	OpFree                  // free the object in Slot (keeps the stale address)
	OpRealloc               // resize the object in Slot to Size bytes
	OpWrite                 // fill the whole object with Pat
	OpRead                  // read the whole object
	OpCheck                 // read the defined prefix and assert every byte == Pat
	OpProtect               // mark the object in Slot as a sensitive region (may relocate it)
	OpUnprotect             // clear the sensitive-region mark

	numBenignKinds = iota
)

// Injected bug operations (script-only; the wire format cannot express
// them, so fuzz-decoded programs contain them only via a well-formed
// script).
const (
	OpOverflow    OpKind = numBenignKinds + iota // write Size bytes past the object end
	OpDangleWrite                                // write Pat through the slot's stale pointer
	OpDangleRead                                 // read through the stale pointer, assert the old Pat
	OpDoubleFree                                 // free the stale pointer again
	OpUninitRead                                 // read a never-written object, assert zero

	numOpKinds
)

var kindNames = [numOpKinds]string{
	"malloc", "free", "realloc", "write", "read", "check", "protect", "unprotect",
	"overflow", "dangle-write", "dangle-read", "double-free", "uninit-read",
}

func (k OpKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Op is one chaos operation. It maps 1:1 onto a replay.Event (Kind = the
// op-kind name, N = Slot, Data = "size,pat,site"), so chaos programs flow
// unchanged through the offline log, streaming Ingest and the fleet's
// JSON front-end.
type Op struct {
	Kind OpKind
	Slot uint8 // slot-table index
	Site uint8 // call-site family
	Size uint32
	Pat  byte
}

func (o Op) String() string {
	return fmt.Sprintf("%s slot=%d site=%d size=%d pat=%#02x", o.Kind, o.Slot, o.Site, o.Size, o.Pat)
}

// Geometry shared by the generator, the app, the model and the fuzz
// decoder. Generator traffic is confined to the first GenSlots slots,
// GenSites site families and small sizes; injected scripts own the
// remaining slots and sites, and reserved sizes so large that the
// generator's whole footprint (MaxOps chunks of at most
// maxGenSize+overhead bytes, ~36 KiB) cannot coalesce into a chunk that
// would satisfy them.
const (
	GenSlots  = 32 // slots the generator uses
	GenSites  = 8  // site families the generator uses
	slotBytes = 16 // table entry: addr, size, defined, pat|stale

	// Script slots and sites come in banks so multi-bug programs can run
	// up to NumBanks non-interfering scripts, each with its own alloc /
	// aux / free / refree site family — exact-site attribution per bug.
	NumBanks     = 3
	perBankSlots = 4
	perBankSites = 4
	NumSlots     = GenSlots + NumBanks*perBankSlots
	NumSites     = GenSites + NumBanks*perBankSites

	MinGenSize = 8   // smallest generator object
	MaxGenSize = 200 // largest generator object
	MaxOps     = 160 // hard cap on benign ops per program

	sizeVictim = 48000 // overflow victim
	sizeGuard  = 52000 // overflow guard, adjacent to the victim
	sizeDangle = 56000 // dangling/double-free object and its recycler
	sizePin    = 60000 // pins bracketing a to-be-freed object
	sizeUninit = 64000 // uninitialized-read object and the dirtying ancestor

	// sizeSpill is above the allocator's mmap threshold (256 KiB): churn
	// scenarios use it to spill objects into the dedicated-mapping zone.
	sizeSpill = 300000

	overflowDelta  = 48 // bytes written past the victim: smashes the guard's boundary tag and header
	dangleWriteLen = 32 // bytes written through the stale pointer
	probeLen       = 8  // bytes read by dangle-read/uninit-read asserts
)

// Script slot indices of bank 0 (outside the generator's range).
const (
	slotScript0 = GenSlots + iota
	slotScript1
	slotScript2
	slotScript3
)

// Script site families of bank 0 (outside the generator's range). Patches
// diagnosed from an injected bug land exactly on these families.
const (
	siteScriptAlloc = GenSites + iota // the buggy object's allocation site
	siteScriptAux                     // guards, pins, recyclers
	siteScriptFree                    // the buggy (first) free site
	siteScriptFree2                   // the re-free site of a double free
)

// bankSlot returns script slot i of a bank; bankSite returns site family j
// (0 alloc, 1 aux, 2 free, 3 refree) of a bank. Bank 0 equals the
// slotScript*/siteScript* constants.
func bankSlot(bank, i int) uint8 { return uint8(GenSlots + bank*perBankSlots + i) }
func bankSite(bank, j int) uint8 { return uint8(GenSites + bank*perBankSites + j) }

// Fixed script fill patterns. They only need to be mutually distinct and
// non-zero; fixing them keeps decoded fuzz programs deterministic without
// a seed.
const (
	patVictim  = 0x5A
	patGuard   = 0x69
	patDangled = 0x3C
	patRecycle = 0x7E
	patStale   = 0x99
	patPin     = 0x24
)

// Scenario selects the shape of a chaos program.
type Scenario uint8

const (
	ScenarioSingle Scenario = iota // PR-4 soup: one benign stream, at most one bug script
	ScenarioMulti                  // 2–3 interacting bug scripts from a combo, banked slots/sites
	ScenarioChurn                  // fragmentation/realloc-heavy benign stream with mmap spills
	ScenarioActors                 // three interleaved actors, each owning a slot range

	numScenarios = iota
)

var scenarioNames = [numScenarios]string{"single", "multi", "churn", "actors"}

func (s Scenario) String() string {
	if int(s) < len(scenarioNames) {
		return scenarioNames[s]
	}
	return "invalid"
}

// Program is one chaos workload: a benign op stream with one or more bug
// scripts injected. Ops() expands it to the executable stream.
type Program struct {
	Seed     uint64     // generator seed; 0 for fuzz-decoded programs
	Class    mmbug.Type // injected ground truth (None = benign; ignored by ScenarioMulti)
	InjectAt int        // script insertion index into Benign (clamped to [0, len])
	Benign   []Op

	Scenario Scenario
	Combo    int   // ScenarioMulti: index into the combo library (mod NumCombos)
	Protect  bool  // mark the corruptible script object as a sensitive region
	Guard    bool  // run with guard-page sampling always on (rate 1/2)
	Extra    []int // ScenarioMulti: insertion indices for parts beyond the first
}

// comboPart is one bug script inside a multi-bug combo.
type comboPart struct {
	class   mmbug.Type
	bank    int    // slot/site bank the part's script runs in
	variant string // "" = the standard class script; see partScript

	// collateral parts are neutralized as a side effect of another part's
	// patch (e.g. a re-free blocked by that patch's parameter check) and
	// may not surface as their own diagnosis finding.
	collateral bool
}

// comboSpec is a library entry: 2–3 bug scripts whose chunks or patches
// interact, with the full expected bug set recorded for the oracle.
type comboSpec struct {
	name  string
	parts []comboPart
}

var combos = []comboSpec{
	// An overflow smashes the header of a neighbor that is freed later
	// (the free traps on the corrupt header), while an independent double
	// free runs in bank 1. Two faults, two diagnoses, two patches.
	{name: "overflow-header-df", parts: []comboPart{
		{class: mmbug.BufferOverflow, bank: 0, variant: "free-guard"},
		{class: mmbug.DoubleFree, bank: 1},
	}},
	// A dangling write and a double free race over the same recycled
	// chunk: the re-free targets the very pointer the dangling write goes
	// through. The delay-free patch for the dangling write also blocks
	// the re-free (parameter check), so the double free is collateral.
	{name: "dw-refree-shared-chunk", parts: []comboPart{
		{class: mmbug.DanglingWrite, bank: 0},
		{class: mmbug.DoubleFree, bank: 0, variant: "refree-only", collateral: true},
	}},
	// Three independent classes in three banks — the densest soup.
	{name: "overflow-dw-uninit", parts: []comboPart{
		{class: mmbug.BufferOverflow, bank: 0},
		{class: mmbug.DanglingWrite, bank: 1},
		{class: mmbug.UninitRead, bank: 2},
	}},
}

// NumCombos reports the size of the multi-bug combo library.
func NumCombos() int { return len(combos) }

func (p *Program) comboIndex() int {
	n := len(combos)
	return ((p.Combo % n) + n) % n
}

// Script returns the injection script for a bug class in bank 0 — the op
// sequence that plants exactly one deterministic instance of the bug using
// the reserved slots, sites and sizes.
func Script(class mmbug.Type) []Op { return scriptFor(class, 0, false) }

// scriptFor builds the class script in a bank. With protect, the script
// additionally marks its corruptible object as a sensitive region right
// after the object's contents are established, so the corrupting op traps
// eagerly instead of at the next use (BufferOverflow and DanglingWrite
// only; the other classes have no silently-corrupted object to protect).
func scriptFor(class mmbug.Type, bank int, protect bool) []Op {
	s0, s1, s2, s3 := bankSlot(bank, 0), bankSlot(bank, 1), bankSlot(bank, 2), bankSlot(bank, 3)
	alloc, aux, free, free2 := bankSite(bank, 0), bankSite(bank, 1), bankSite(bank, 2), bankSite(bank, 3)
	switch class {
	case mmbug.BufferOverflow:
		// Victim and guard are carved from the top chunk back to back
		// (no smaller free region can serve their reserved sizes), so
		// the overflow smashes the guard's boundary tag, allocator
		// header and leading content; the check assert trips on the
		// content. Under the padding patch the delta lands in the
		// victim's own back padding and the guard survives. Protecting
		// the victim gives it padded canaries up front, so the overflow
		// trips the eager scan at the overflowing event itself.
		ops := []Op{
			{Kind: OpMalloc, Slot: s0, Site: alloc, Size: sizeVictim, Pat: patVictim},
			{Kind: OpMalloc, Slot: s1, Site: aux, Size: sizeGuard, Pat: patGuard},
			{Kind: OpWrite, Slot: s0, Site: alloc, Pat: patVictim},
			{Kind: OpWrite, Slot: s1, Site: aux, Pat: patGuard},
			{Kind: OpOverflow, Slot: s0, Site: alloc, Size: overflowDelta, Pat: patVictim},
			{Kind: OpCheck, Slot: s1, Site: aux, Pat: patGuard},
		}
		if protect {
			ops = insertOp(ops, 1, Op{Kind: OpProtect, Slot: s0, Site: alloc})
		}
		return ops
	case mmbug.DanglingWrite:
		// Pins on both sides keep the freed chunk from coalescing, so
		// the recycler reuses exactly the dangled address; the stale
		// write then corrupts the recycler and its check trips. Under
		// the delay-free patch the chunk is not recycled and the stale
		// write is absorbed. Protecting the dangled object forces its
		// free into a canary-filled quarantine, so the stale write
		// trips the eager scan at the writing event itself.
		ops := []Op{
			{Kind: OpMalloc, Slot: s0, Site: aux, Size: sizePin, Pat: patPin},
			{Kind: OpMalloc, Slot: s1, Site: alloc, Size: sizeDangle, Pat: patDangled},
			{Kind: OpMalloc, Slot: s2, Site: aux, Size: sizePin, Pat: patPin},
			{Kind: OpWrite, Slot: s1, Site: alloc, Pat: patDangled},
			{Kind: OpFree, Slot: s1, Site: free},
			{Kind: OpMalloc, Slot: s3, Site: aux, Size: sizeDangle, Pat: patRecycle},
			{Kind: OpWrite, Slot: s3, Site: aux, Pat: patRecycle},
			{Kind: OpDangleWrite, Slot: s1, Site: free, Pat: patStale},
			{Kind: OpCheck, Slot: s3, Site: aux, Pat: patRecycle},
		}
		if protect {
			ops = insertOp(ops, 4, Op{Kind: OpProtect, Slot: s1, Site: alloc})
		}
		return ops
	case mmbug.DanglingRead:
		// Same recycle construction; the stale read asserts the old
		// pattern and finds the recycler's instead. Delay-free (without
		// canary fill) preserves the contents, so the patched timeline
		// passes.
		return []Op{
			{Kind: OpMalloc, Slot: s0, Site: aux, Size: sizePin, Pat: patPin},
			{Kind: OpMalloc, Slot: s1, Site: alloc, Size: sizeDangle, Pat: patDangled},
			{Kind: OpMalloc, Slot: s2, Site: aux, Size: sizePin, Pat: patPin},
			{Kind: OpWrite, Slot: s1, Site: alloc, Pat: patDangled},
			{Kind: OpFree, Slot: s1, Site: free},
			{Kind: OpMalloc, Slot: s3, Site: aux, Size: sizeDangle, Pat: patRecycle},
			{Kind: OpWrite, Slot: s3, Site: aux, Pat: patRecycle},
			{Kind: OpDangleRead, Slot: s1, Site: free},
		}
	case mmbug.DoubleFree:
		// The re-free hands the stale user pointer straight to the raw
		// allocator, which reads the extension header's flags word as an
		// insane chunk size and aborts. Under delay-free the parameter
		// check blocks the re-free.
		return []Op{
			{Kind: OpMalloc, Slot: s0, Site: alloc, Size: sizeDangle, Pat: patDangled},
			{Kind: OpWrite, Slot: s0, Site: alloc, Pat: patDangled},
			{Kind: OpFree, Slot: s0, Site: free},
			{Kind: OpDoubleFree, Slot: s0, Site: free2},
		}
	case mmbug.UninitRead:
		// An ancestor dirties the reserved chunk and dies; the reader
		// recycles it without writing and asserts zeroed content. Under
		// the zero-fill patch the fresh allocation really is zero.
		return []Op{
			{Kind: OpMalloc, Slot: s0, Site: aux, Size: sizePin, Pat: patPin},
			{Kind: OpMalloc, Slot: s1, Site: aux, Size: sizeUninit, Pat: patDangled},
			{Kind: OpMalloc, Slot: s2, Site: aux, Size: sizePin, Pat: patPin},
			{Kind: OpWrite, Slot: s1, Site: aux, Pat: patDangled},
			{Kind: OpFree, Slot: s1, Site: free},
			{Kind: OpMalloc, Slot: s1, Site: alloc, Size: sizeUninit},
			{Kind: OpUninitRead, Slot: s1, Site: alloc},
		}
	}
	return nil
}

// partScript builds the op sequence for one combo part.
func partScript(part comboPart, protect bool) []Op {
	switch part.variant {
	case "free-guard":
		// Overflow variant whose victim's neighbor is freed *after* the
		// overflow: the free traps on the smashed header instead of a
		// content check, exercising the corrupt-the-header-of-a-
		// later-freed-neighbor interaction. The victim stays live.
		s0, s1 := bankSlot(part.bank, 0), bankSlot(part.bank, 1)
		alloc, aux := bankSite(part.bank, 0), bankSite(part.bank, 1)
		return []Op{
			{Kind: OpMalloc, Slot: s0, Site: alloc, Size: sizeVictim, Pat: patVictim},
			{Kind: OpMalloc, Slot: s1, Site: aux, Size: sizeGuard, Pat: patGuard},
			{Kind: OpWrite, Slot: s0, Site: alloc, Pat: patVictim},
			{Kind: OpWrite, Slot: s1, Site: aux, Pat: patGuard},
			{Kind: OpOverflow, Slot: s0, Site: alloc, Size: overflowDelta, Pat: patVictim},
			{Kind: OpFree, Slot: s1, Site: aux},
		}
	case "refree-only":
		// A bare re-free of another part's dangled slot in the same
		// bank — the shared-chunk half of dw-refree-shared-chunk.
		return []Op{
			{Kind: OpDoubleFree, Slot: bankSlot(part.bank, 1), Site: bankSite(part.bank, 3)},
		}
	default:
		return scriptFor(part.class, part.bank, protect)
	}
}

func insertOp(ops []Op, at int, op Op) []Op {
	out := make([]Op, 0, len(ops)+1)
	out = append(out, ops[:at]...)
	out = append(out, op)
	out = append(out, ops[at:]...)
	return out
}

// ExpectedBug is one entry of a program's ground-truth bug set.
type ExpectedBug struct {
	Class mmbug.Type
	Site  string // full joined site key the patch must land on

	// Collateral bugs are neutralized by another bug's patch and may
	// surface as a blocked re-free instead of their own finding.
	Collateral bool
}

// expectedSite is the exact joined site key diagnosis must attribute a
// class in a bank to: the patched site of alloc-side classes is the bank's
// buggy allocation site, of free-side classes the bank's first-free site.
func expectedSite(class mmbug.Type, bank int) string {
	if class.AtAllocation() {
		return "chaos_alloc/" + siteNames[bankSite(bank, 0)] + "/chaos_dispatch"
	}
	return "chaos_free/" + siteNames[bankSite(bank, 2)] + "/chaos_dispatch"
}

// Expected returns the program's full ground-truth bug set: class plus the
// exact site key each patch must be attributed to.
func (p *Program) Expected() []ExpectedBug {
	if p.Scenario == ScenarioMulti {
		spec := combos[p.comboIndex()]
		out := make([]ExpectedBug, len(spec.parts))
		for i, part := range spec.parts {
			out[i] = ExpectedBug{
				Class:      part.class,
				Site:       expectedSite(part.class, part.bank),
				Collateral: part.collateral,
			}
		}
		return out
	}
	if p.Class == mmbug.None {
		return nil
	}
	return []ExpectedBug{{Class: p.Class, Site: expectedSite(p.Class, 0)}}
}

// Classes returns the distinct injected bug classes, in injection order.
func (p *Program) Classes() []mmbug.Type {
	var out []mmbug.Type
	for _, e := range p.Expected() {
		dup := false
		for _, c := range out {
			if c == e.Class {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e.Class)
		}
	}
	return out
}

// CorruptionIndex returns the index in Ops() of the first silently
// corrupting op (overflow or dangling write), or -1 if the program has
// none. Protected runs must trap at exactly this event; unprotected runs
// trap strictly later — the matrix test asserts the gap.
func (p *Program) CorruptionIndex() int {
	for i, op := range p.Ops() {
		if op.Kind == OpOverflow || op.Kind == OpDangleWrite {
			return i
		}
	}
	return -1
}

// injection is one script splice into the benign stream.
type injection struct {
	at  int
	ops []Op
}

func (p *Program) clampAt(at int) int {
	if at < 0 {
		return 0
	}
	if at > len(p.Benign) {
		return len(p.Benign)
	}
	return at
}

func (p *Program) injections() []injection {
	if p.Scenario == ScenarioMulti {
		spec := combos[p.comboIndex()]
		out := make([]injection, len(spec.parts))
		at := p.clampAt(p.InjectAt)
		for i, part := range spec.parts {
			if i > 0 {
				if i-1 < len(p.Extra) {
					at = p.clampAt(p.Extra[i-1])
				}
				// else: reuse the previous part's index (adjacent splice)
			}
			out[i] = injection{at: at, ops: partScript(part, p.Protect)}
		}
		// Stable sort by insertion index: parts injected at the same
		// index keep their library order, which the shared-chunk combos
		// rely on (the re-free must follow the dangling write's free).
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].at < out[j-1].at; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	script := scriptFor(p.Class, 0, p.Protect)
	if len(script) == 0 {
		return nil
	}
	return []injection{{at: p.clampAt(p.InjectAt), ops: script}}
}

// expand splices every injection into the benign stream, returning the
// executable ops and a parallel injected-op mask.
func (p *Program) expand() ([]Op, []bool) {
	injs := p.injections()
	n := len(p.Benign)
	for _, in := range injs {
		n += len(in.ops)
	}
	ops := make([]Op, 0, n)
	mask := make([]bool, 0, n)
	j := 0
	for i := 0; i <= len(p.Benign); i++ {
		for j < len(injs) && injs[j].at == i {
			for _, op := range injs[j].ops {
				ops = append(ops, op)
				mask = append(mask, true)
			}
			j++
		}
		if i < len(p.Benign) {
			ops = append(ops, p.Benign[i])
			mask = append(mask, false)
		}
	}
	return ops, mask
}

// Ops expands the program into its executable operation stream: the benign
// ops with every bug script spliced in at its insertion index.
func (p *Program) Ops() []Op {
	ops, _ := p.expand()
	return ops
}

// String renders the decoded program — part of every failure report, so a
// failing seed reproduces and shrinks trivially.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos program seed=%#x scenario=%v class=%v inject-at=%d",
		p.Seed, p.Scenario, p.Class, p.InjectAt)
	if p.Scenario == ScenarioMulti {
		fmt.Fprintf(&b, " combo=%s", combos[p.comboIndex()].name)
	}
	if p.Protect {
		b.WriteString(" protect")
	}
	if p.Guard {
		b.WriteString(" guard")
	}
	fmt.Fprintf(&b, " (%d benign ops)\n", len(p.Benign))
	ops, mask := p.expand()
	for i, op := range ops {
		marker := "  "
		if mask[i] {
			marker = "* " // injected
		}
		fmt.Fprintf(&b, "%s#%-3d %v\n", marker, i, op)
	}
	return b.String()
}
