package chaos

import (
	"testing"

	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/replay"
)

// TestProtectionFollowsRealloc drives the sensitive-region API through the
// full app/proc path: a protected object is realloc'd, and the replacement
// must still be protected (guard pads and eager validation included) while
// the final state satisfies the oracle. Runs in every mode — the parallel
// mode exercises protection state in validation clones under -race via
// make check.
func TestProtectionFollowsRealloc(t *testing.T) {
	prog := &Program{Benign: []Op{
		{Kind: OpMalloc, Slot: 0, Site: 0, Size: 64, Pat: 0x21},
		{Kind: OpWrite, Slot: 0, Site: 1, Pat: 0x21},
		{Kind: OpProtect, Slot: 0, Site: 1},
		{Kind: OpRealloc, Slot: 0, Site: 2, Size: 128, Pat: 0x21},
		{Kind: OpCheck, Slot: 0, Site: 3, Pat: 0x21},
	}}
	for _, mode := range allModes {
		scfg := core.Config{ParallelValidation: mode == ModeParallel}
		var sup *core.Supervisor
		var stats core.Stats
		if mode == ModeStream {
			sup = core.NewSupervisor(&App{}, replay.NewLog(), scfg)
			for _, op := range prog.Ops() {
				kind, data, n := op.Event()
				sup.Ingest(kind, data, n)
			}
			stats = sup.Finish()
		} else {
			log := replay.NewLog()
			prog.AppendTo(log)
			sup = core.NewSupervisor(&App{}, log, scfg)
			stats = sup.Run()
		}
		if stats.Failures != 0 {
			t.Fatalf("%s: protect+realloc program faulted", mode)
		}
		addr := slotObjAddr(t, sup, 0)
		if addr == 0 {
			t.Fatalf("%s: slot 0 not live after realloc", mode)
		}
		if !sup.M.Ext.IsProtected(addr) {
			t.Fatalf("%s: protection did not follow the object across realloc", mode)
		}
		obj, ok := sup.M.Ext.Object(addr)
		if !ok || obj.PadBack == 0 {
			t.Fatalf("%s: realloc'd protected object carries no guard padding", mode)
		}
		if err := CheckSupervisor(sup); err != nil {
			t.Fatalf("%s: oracle rejected the final state: %v", mode, err)
		}
	}
}

// TestProtectUnprotectRoundTrip pins both halves of the unprotect
// contract. Protected, the overflow program traps at the corrupting event
// itself. With an unprotect inserted right before the overflow, eager
// validation is off but the migration's guard padding remains — so the
// overflow is absorbed silently and the program completes with no failure
// at all, still oracle-clean. (Unprotect documents exactly this: the mark
// goes, the padding stays.)
func TestProtectUnprotectRoundTrip(t *testing.T) {
	prot := Run(RunConfig{Seed: 3, Class: mmbug.BufferOverflow, Mode: ModeSync, Protect: true})
	if !prot.OK() || len(prot.Recoveries) == 0 || !prot.Recoveries[0].Early {
		t.Fatalf("protected run not detected early:\n%s", prot.Verdict())
	}
	prog := GenerateSpec(GenSpec{Seed: 3, Class: mmbug.BufferOverflow, Protect: true})
	var ops []Op
	for _, op := range prog.Ops() {
		if op.Kind == OpOverflow {
			ops = append(ops, Op{Kind: OpUnprotect, Slot: op.Slot, Site: op.Site})
		}
		ops = append(ops, op)
	}
	out := RunProgram(&Program{Benign: ops}, RunConfig{Mode: ModeSync})
	if out.Stats.Failures != 0 {
		t.Fatalf("unprotected-again run still trapped:\n%s", out.Verdict())
	}
	if !out.OK() {
		t.Fatalf("oracle rejected the absorbed-overflow state:\n%s", out.Verdict())
	}
}
