// Repro commands: every chaos diagnosis records the exact firstaid-run
// invocation that reproduces it offline, and the postmortem flow parses
// that command back into a RunConfig. ReproCommand and ParseRepro are
// exact inverses; the flag vocabulary is firstaid-run's.

package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"firstaid/internal/mmbug"
)

// classFlags is the -chaos-class vocabulary (firstaid-run's map).
var classFlags = map[string]mmbug.Type{
	"none":           mmbug.None,
	"overflow":       mmbug.BufferOverflow,
	"dangling-write": mmbug.DanglingWrite,
	"dangling-read":  mmbug.DanglingRead,
	"double-free":    mmbug.DoubleFree,
	"uninit-read":    mmbug.UninitRead,
}

// ClassFlag renders a bug class as its -chaos-class value.
func ClassFlag(t mmbug.Type) string {
	for name, c := range classFlags {
		if c == t {
			return name
		}
	}
	return "none"
}

// ParseClassFlag parses a -chaos-class value.
func ParseClassFlag(s string) (mmbug.Type, error) {
	if c, ok := classFlags[s]; ok {
		return c, nil
	}
	return mmbug.None, fmt.Errorf("unknown chaos class %q", s)
}

// ParseModeFlag parses a -chaos-mode value.
func ParseModeFlag(s string) (Mode, error) {
	switch s {
	case "sync":
		return ModeSync, nil
	case "parallel":
		return ModeParallel, nil
	case "stream":
		return ModeStream, nil
	}
	return ModeSync, fmt.Errorf("unknown chaos mode %q", s)
}

// ParseScenarioFlag parses a -chaos-scenario value.
func ParseScenarioFlag(s string) (Scenario, error) {
	for i, name := range scenarioNames {
		if name == s {
			return Scenario(i), nil
		}
	}
	return ScenarioSingle, fmt.Errorf("unknown chaos scenario %q", s)
}

// ReproCommand renders the firstaid-run invocation that reproduces this
// run offline. Only the generator inputs appear — machine overrides beyond
// the guard flags have no CLI spelling and are omitted.
func ReproCommand(cfg RunConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "firstaid-run -chaos-seed %#x -chaos-class %s -chaos-mode %s -chaos-scenario %s",
		cfg.Seed, ClassFlag(cfg.Class), cfg.Mode, cfg.Scenario)
	if cfg.Ops != 0 {
		fmt.Fprintf(&b, " -chaos-ops %d", cfg.Ops)
	}
	if cfg.Combo != 0 {
		fmt.Fprintf(&b, " -chaos-combo %d", cfg.Combo)
	}
	if cfg.Protect {
		b.WriteString(" -chaos-protect")
	}
	if cfg.Guard {
		b.WriteString(" -chaos-guard")
	}
	if cfg.Machine.GuardRate != 0 {
		fmt.Fprintf(&b, " -guard-rate %d", cfg.Machine.GuardRate)
	}
	if len(cfg.Machine.GuardForce) != 0 {
		fmt.Fprintf(&b, " -guard-force %s", strings.Join(cfg.Machine.GuardForce, ","))
	}
	return b.String()
}

// ParseRepro parses a ReproCommand line back into its RunConfig — the
// offline half of the postmortem loop. Leading non-flag tokens (the binary
// name) are skipped; unknown flags are an error so drift between the two
// sides cannot pass silently.
func ParseRepro(cmd string) (RunConfig, error) {
	var cfg RunConfig
	fields := strings.Fields(cmd)
	i := 0
	for i < len(fields) && !strings.HasPrefix(fields[i], "-") {
		i++
	}
	next := func(flag string) (string, error) {
		i++
		if i >= len(fields) {
			return "", fmt.Errorf("repro: %s needs a value", flag)
		}
		return fields[i], nil
	}
	for ; i < len(fields); i++ {
		var err error
		var v string
		switch f := fields[i]; f {
		case "-chaos-seed":
			if v, err = next(f); err == nil {
				cfg.Seed, err = strconv.ParseUint(v, 0, 64)
			}
		case "-chaos-class":
			if v, err = next(f); err == nil {
				cfg.Class, err = ParseClassFlag(v)
			}
		case "-chaos-mode":
			if v, err = next(f); err == nil {
				cfg.Mode, err = ParseModeFlag(v)
			}
		case "-chaos-scenario":
			if v, err = next(f); err == nil {
				cfg.Scenario, err = ParseScenarioFlag(v)
			}
		case "-chaos-ops":
			if v, err = next(f); err == nil {
				cfg.Ops, err = strconv.Atoi(v)
			}
		case "-chaos-combo":
			if v, err = next(f); err == nil {
				cfg.Combo, err = strconv.Atoi(v)
			}
		case "-chaos-protect":
			cfg.Protect = true
		case "-chaos-guard":
			cfg.Guard = true
		case "-guard-rate":
			if v, err = next(f); err == nil {
				cfg.Machine.GuardRate, err = strconv.Atoi(v)
			}
		case "-guard-force":
			if v, err = next(f); err == nil {
				cfg.Machine.GuardForce = strings.Split(v, ",")
			}
		default:
			return cfg, fmt.Errorf("repro: unknown flag %q", f)
		}
		if err != nil {
			return cfg, err
		}
	}
	if cfg.Seed == 0 {
		return cfg, fmt.Errorf("repro: no -chaos-seed in %q", cmd)
	}
	return cfg, nil
}
