package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// Mode selects how the program is driven through First-Aid. The same
// program must yield the same oracle verdict and diagnosis in every mode
// — that equivalence is itself one of the harness's assertions.
type Mode int

const (
	// ModeSync replays the pre-recorded log with inline validation.
	ModeSync Mode = iota
	// ModeParallel replays the pre-recorded log with parallel (cloned
	// machine, separate goroutine) patch validation.
	ModeParallel
	// ModeStream feeds events one at a time through Supervisor.Ingest,
	// the live front-end path.
	ModeStream
)

func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeParallel:
		return "parallel"
	case ModeStream:
		return "stream"
	}
	return "invalid"
}

// RunConfig parameterises one chaos run.
type RunConfig struct {
	Seed     uint64
	Class    mmbug.Type
	Ops      int // benign op budget (default 110, clamped to MaxOps)
	Mode     Mode
	Scenario Scenario
	Combo    int  // ScenarioMulti: combo library index
	Protect  bool // mark the corruptible script object a sensitive region
	Guard    bool // run with guard-page sampling always on (rate 1/2)
	// TamperNoCoalesce deliberately breaks the allocator (coalescing
	// disabled) so tests can prove the oracle notices — a run with this
	// set MUST fail.
	TamperNoCoalesce bool
	// DisableLedger turns off the diagnosis ledger (overhead benchmarks).
	DisableLedger bool
	// Speculate races diagnosis hypotheses on COW clones (see
	// core.Config.Speculate). Off by default here so differential tests can
	// compare a serial and a speculative run of the same program.
	Speculate bool
	// Batch, when > 1 in ModeStream, feeds events through
	// Supervisor.IngestBatch in batches of that size instead of one Ingest
	// call per event — the live batched front-end path. The outcome must be
	// indistinguishable from serial ingest (TestBatchIngestEquivalence).
	Batch int
	// ParallelValidation validates patches on cloned machines even outside
	// ModeParallel — the streaming twin of the fleet's -parallel-validation
	// deployment shape.
	ParallelValidation bool
	// Machine overrides the machine configuration (zero value = defaults).
	Machine core.MachineConfig
}

// FindingSummary is one diagnosed bug rendered mode-independently: the
// class plus its patch sites as stable stack-key strings, sorted.
type FindingSummary struct {
	Class mmbug.Type
	Sites []string
}

// RecoverySummary distils one recovery episode into the facts that must
// be identical across execution modes.
type RecoverySummary struct {
	Event    int // failing event sequence number
	Fault    string
	Early    bool // detected at the faulting access (guard hit or eager scan)
	FastPath bool // diagnosed from guard evidence with a single confirmation re-execution
	Nondet   bool
	Skipped  bool
	Findings []FindingSummary
}

// Outcome is the result of one chaos run.
type Outcome struct {
	Prog       *Program
	Mode       Mode
	Stats      core.Stats
	Recoveries []RecoverySummary
	OracleErr  error
	// Sup is the finished supervisor: its ledger holds one diagnosis per
	// recovery, and WritePostmortems renders them into bundles.
	Sup *core.Supervisor

	// RefreeBlocks counts re-frees the deployed parameter check blocked
	// at the dedicated re-free sites — how collaterally-neutralized
	// double frees announce themselves.
	RefreeBlocks int
}

// OK reports whether the differential oracle accepted the final state.
func (o *Outcome) OK() bool { return o.OracleErr == nil }

// WritePostmortems writes one postmortem bundle per recovery into dir —
// the offline flow behind firstaid-run -postmortem and the CI
// failing-seed artifacts.
func (o *Outcome) WritePostmortems(dir string) ([]string, error) {
	if o.Sup == nil {
		return nil, nil
	}
	return o.Sup.WritePostmortems(dir)
}

// DiagnosedClasses returns the distinct bug classes diagnosed across all
// recoveries, in mmbug order.
func (o *Outcome) DiagnosedClasses() []mmbug.Type {
	seen := map[mmbug.Type]bool{}
	for _, rec := range o.Recoveries {
		for _, f := range rec.Findings {
			seen[f.Class] = true
		}
	}
	var out []mmbug.Type
	for _, b := range mmbug.All {
		if seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// Verdict renders the full failure report: seed, stats, every recovery's
// diagnosis, the oracle error, and the decoded program — everything
// needed to replay and shrink from a single uint64.
func (o *Outcome) Verdict() string {
	var b strings.Builder
	oracle := "PASS"
	if o.OracleErr != nil {
		oracle = "FAIL: " + o.OracleErr.Error()
	}
	fmt.Fprintf(&b, "chaos run mode=%s seed=%#x scenario=%v class=%v protect=%v: events=%d failures=%d recoveries=%d skipped=%d refree-blocks=%d\n",
		o.Mode, o.Prog.Seed, o.Prog.Scenario, o.Prog.Class, o.Prog.Protect,
		o.Stats.Events, o.Stats.Failures, o.Stats.Recoveries, o.Stats.Skipped, o.RefreeBlocks)
	for _, rec := range o.Recoveries {
		fmt.Fprintf(&b, "  recovery at event #%d fault=%s", rec.Event, rec.Fault)
		if rec.Early {
			b.WriteString(" (early)")
		}
		if rec.FastPath {
			b.WriteString(" (fast-path)")
		}
		switch {
		case rec.Nondet:
			b.WriteString(" -> nondeterministic")
		case rec.Skipped:
			b.WriteString(" -> skipped")
		}
		for _, f := range rec.Findings {
			fmt.Fprintf(&b, " %v@%s", f.Class, strings.Join(f.Sites, "|"))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  oracle: %s\n", oracle)
	b.WriteString(o.Prog.String())
	return b.String()
}

// Run generates the program for a seed and runs it under the oracle.
func Run(cfg RunConfig) *Outcome {
	prog := GenerateSpec(GenSpec{
		Seed:     cfg.Seed,
		Scenario: cfg.Scenario,
		Class:    cfg.Class,
		Combo:    cfg.Combo,
		Protect:  cfg.Protect,
		Guard:    cfg.Guard,
		Ops:      cfg.Ops,
	})
	return RunProgram(prog, cfg)
}

// RunProgram drives an explicit program (fuzz-decoded or generated)
// through a fresh supervised machine in the configured mode, then applies
// the differential oracle to the final state.
func RunProgram(prog *Program, cfg RunConfig) *Outcome {
	scfg := core.Config{
		Machine:            cfg.Machine,
		ParallelValidation: cfg.Mode == ModeParallel || cfg.ParallelValidation,
		DisableLedger:      cfg.DisableLedger,
		Speculate:          cfg.Speculate,
	}
	if cfg.Seed != 0 {
		// Fuzz-decoded programs run with Seed 0: their op stream came from
		// raw bytes, so no firstaid-run command can reproduce them and the
		// diagnoses carry no repro line.
		scfg.Repro = ReproCommand(cfg)
	}
	if prog.Guard && scfg.Machine.GuardRate == 0 && len(scfg.Machine.GuardForce) == 0 {
		// A guarded program with no explicit configuration runs at rate 1/2:
		// aggressive enough that a short fuzz stream actually samples, while
		// still exercising the sampled/unsampled mix.
		scfg.Machine.GuardRate = 2
	}
	var sup *core.Supervisor
	var stats core.Stats
	if cfg.Mode == ModeStream {
		sup = core.NewSupervisor(&App{Class: prog.Class, Classes: prog.Classes()}, replay.NewLog(), scfg)
		if cfg.TamperNoCoalesce {
			sup.M.Heap.SetNoCoalesce(true)
		}
		if ops := prog.Ops(); cfg.Batch > 1 {
			items := make([]replay.Item, 0, cfg.Batch)
			for lo := 0; lo < len(ops); lo += cfg.Batch {
				hi := lo + cfg.Batch
				if hi > len(ops) {
					hi = len(ops)
				}
				items = items[:0]
				for _, op := range ops[lo:hi] {
					kind, data, n := op.Event()
					items = append(items, replay.Item{Kind: []byte(kind), Data: []byte(data), N: n})
				}
				sup.IngestBatch(items)
			}
		} else {
			for _, op := range ops {
				kind, data, n := op.Event()
				sup.Ingest(kind, data, n)
			}
		}
		stats = sup.Finish()
	} else {
		log := replay.NewLog()
		prog.AppendTo(log)
		sup = core.NewSupervisor(&App{Class: prog.Class, Classes: prog.Classes()}, log, scfg)
		if cfg.TamperNoCoalesce {
			sup.M.Heap.SetNoCoalesce(true)
		}
		stats = sup.Run()
	}

	out := &Outcome{Prog: prog, Mode: cfg.Mode, Stats: stats, Sup: sup}
	for _, rec := range sup.Recoveries {
		s := RecoverySummary{
			Event:    rec.Fault.Event,
			Fault:    rec.Fault.Kind.String(),
			Early:    rec.Fault.Early,
			FastPath: rec.Result.FastPath,
			Nondet:   rec.Result.Nondeterministic,
			Skipped:  rec.Skipped,
		}
		for _, fd := range rec.Result.Findings {
			fs := FindingSummary{Class: fd.Bug}
			for _, site := range fd.Sites {
				key := sup.M.SiteKey(site)
				fs.Sites = append(fs.Sites, strings.Join(key[:], "/"))
			}
			sort.Strings(fs.Sites)
			s.Findings = append(s.Findings, fs)
		}
		sort.Slice(s.Findings, func(i, j int) bool { return s.Findings[i].Class < s.Findings[j].Class })
		out.Recoveries = append(out.Recoveries, s)
	}
	for site, n := range sup.M.Ext.Triggers() {
		key := sup.M.SiteKey(site)
		// The re-free site families are never patched directly, so any
		// trigger recorded there is a blocked re-free.
		if strings.HasPrefix(key[1], "chaos_bug_refree") {
			out.RefreeBlocks += int(n)
		}
	}
	out.OracleErr = CheckSupervisor(sup)
	return out
}

// CheckExpected asserts the run's diagnoses against the program's
// ground-truth bug set: every finding must exactly match an expected
// (class, single-site) entry, every non-collateral expected bug must have
// been found, and every collateral bug must have been found OR neutralized
// as a blocked re-free. Together with OK() this is the accuracy-matrix
// cell contract.
func (o *Outcome) CheckExpected() error {
	expected := o.Prog.Expected()
	matched := make([]bool, len(expected))
	for _, rec := range o.Recoveries {
		for _, f := range rec.Findings {
			if len(f.Sites) != 1 {
				return fmt.Errorf("finding %v has %d sites %v, want exactly 1",
					f.Class, len(f.Sites), f.Sites)
			}
			ok := false
			for i, e := range expected {
				if e.Class == f.Class && e.Site == f.Sites[0] {
					matched[i] = true
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("unexpected finding %v@%s (expected set %v)",
					f.Class, f.Sites[0], expected)
			}
		}
	}
	for i, e := range expected {
		if matched[i] {
			continue
		}
		if e.Collateral && o.RefreeBlocks > 0 {
			continue // neutralized by another bug's patch, announced as a blocked re-free
		}
		return fmt.Errorf("expected bug %v@%s was neither diagnosed nor neutralized", e.Class, e.Site)
	}
	return nil
}

// CheckSupervisor runs the differential oracle against a finished
// supervised run: it decodes the op stream back out of the supervisor's
// own log, replays it through the shadow model (minus the events the
// supervisor dropped), and compares the machine's final state.
func CheckSupervisor(sup *core.Supervisor) error {
	skipped := map[int]bool{}
	for _, rec := range sup.Recoveries {
		if rec.Skipped && rec.Fault != nil {
			skipped[rec.Fault.Event] = true
		}
	}
	model := RunModel(OpsFromLog(sup.Log()), skipped)
	return CheckMachine(sup.M, model)
}

// CheckMachine asserts that a machine's final state agrees with the
// model: allocator invariants hold, the slot table matches slot for slot,
// every live slot is backed by a live allocator object of the right size
// whose defined prefix holds the expected pattern, and no extra objects
// exist.
func CheckMachine(m *core.Machine, model *Model) error {
	if err := m.Heap.CheckInvariants(); err != nil {
		return fmt.Errorf("allocator invariants violated: %w", err)
	}
	table := m.Proc.RootAddr(rootTable)
	if table == 0 {
		return errors.New("slot-table root register lost")
	}
	live := 0
	for i := 0; i < NumSlots; i++ {
		base := table + vmem.Addr(i)*slotBytes
		var word [4]uint32
		for j := range word {
			v, err := m.Mem.ReadU32(base + vmem.Addr(4*j))
			if err != nil {
				return fmt.Errorf("slot %d: table unreadable: %w", i, err)
			}
			word[j] = v
		}
		got := entry{
			addr:    vmem.Addr(word[0]),
			size:    word[1],
			defined: word[2],
			pat:     byte(word[3]),
			stale:   word[3]&staleBit != 0,
		}
		want := model.Slots[i]
		if (got.addr != 0) != want.Allocated || (want.Allocated && got.stale != want.Stale) {
			return fmt.Errorf("slot %d: machine has %s, model has %s", i, describe(got), want)
		}
		if !want.Allocated {
			continue
		}
		if got.size != want.Size || got.defined != want.Defined || got.pat != want.Pat {
			return fmt.Errorf("slot %d: machine has %s, model has %s", i, describe(got), want)
		}
		if !got.live() {
			continue
		}
		live++
		obj, ok := m.Ext.Object(got.addr)
		if !ok || obj.Delayed {
			return fmt.Errorf("slot %d: no live allocator object at %#x", i, got.addr)
		}
		if obj.UserSize != got.size {
			return fmt.Errorf("slot %d: allocator object is %d bytes, table says %d",
				i, obj.UserSize, got.size)
		}
		if got.defined > 0 {
			data, err := m.Mem.Read(got.addr, int(got.defined))
			if err != nil {
				return fmt.Errorf("slot %d: contents unreadable: %w", i, err)
			}
			for j, b := range data {
				if b != got.pat {
					return fmt.Errorf("slot %d: byte %d is %#02x, want pattern %#02x",
						i, j, b, got.pat)
				}
			}
		}
	}
	// Exactly the live slots plus the table itself may be live objects.
	if got := m.Ext.LiveObjects(); got != live+1 {
		return fmt.Errorf("%d live allocator objects, want %d (table + %d live slots)",
			got, live+1, live)
	}
	return nil
}

func describe(e entry) string {
	switch {
	case e.addr == 0:
		return "empty"
	case e.stale:
		return fmt.Sprintf("stale size=%d pat=%#02x", e.size, e.pat)
	default:
		return fmt.Sprintf("live size=%d defined=%d pat=%#02x", e.size, e.defined, e.pat)
	}
}
