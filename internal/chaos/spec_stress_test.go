package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"firstaid/internal/mmbug"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// TestSpeculationStress hammers speculative recovery under the race
// detector: many supervisors recover concurrently, each racing several
// hypothesis clones per recovery, with losers force-cancelled mid
// re-execute and the standby clone reused across episodes. Each run is
// audited for balanced clone accounting (every launched hypothesis is
// either consumed or cancelled, and the active gauge drains to zero) and
// for monotonic trace clocks on every track — a rolled-back parent must
// never rewind the tracer, and clone tracks must not interleave
// out of order.
func TestSpeculationStress(t *testing.T) {
	workers := 8
	seedsPerWorker := 4
	if testing.Short() {
		workers, seedsPerWorker = 4, 2
	}
	modes := []Mode{ModeSync, ModeParallel, ModeStream}

	var cancelled, standby atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < seedsPerWorker; s++ {
				cfg := RunConfig{
					Seed:      uint64(0x57E55 + w*seedsPerWorker + s),
					Class:     mmbug.All[(w+s)%len(mmbug.All)],
					Mode:      modes[w%len(modes)],
					Scenario:  ScenarioChurn,
					Speculate: true,
				}
				tel := telemetry.NewRegistry()
				trc := trace.New(1 << 14)
				cfg.Machine.Metrics = tel
				cfg.Machine.Trace = trc
				cfg.Machine.TraceWorker = w
				out := Run(cfg)
				label := fmt.Sprintf("worker %d seed %#x", w, cfg.Seed)
				if !out.OK() {
					t.Errorf("%s: oracle failed:\n%s", label, out.Verdict())
					return
				}
				if err := out.CheckExpected(); err != nil {
					t.Errorf("%s: %v", label, err)
					return
				}
				st := out.Sup.Speculation()
				if st.Launched == 0 {
					t.Errorf("%s: no hypothesis ever raced on a clone", label)
				}
				if st.Launched != st.Won+st.Cancelled {
					t.Errorf("%s: leaked clones: launched %d != won %d + cancelled %d",
						label, st.Launched, st.Won, st.Cancelled)
				}
				if g := tel.Gauge("spec.active").Value(); g != 0 {
					t.Errorf("%s: %d hypotheses still active after the run", label, g)
				}
				checkTraceClocks(t, label, trc)
				cancelled.Add(int64(st.Cancelled))
				standby.Add(int64(st.StandbyHits))
			}
		}()
	}
	wg.Wait()
	// The stress must actually exercise the interesting paths: losers torn
	// down mid re-execute, and launches served by the pre-warmed standby.
	if cancelled.Load() == 0 {
		t.Error("no hypothesis was ever force-cancelled across the whole stress run")
	}
	if standby.Load() == 0 {
		t.Error("the standby clone was never reused across the whole stress run")
	}
}

// checkTraceClocks asserts the simulated-cycle clock never rewinds within
// any single track. Records are appended in Seq order; within one track
// (one machine lineage: the parent worker, a guard track, or one
// speculative clone) cycles must be non-decreasing even though recovery
// rolls the parent's memory image back — the trace clock is monotonic by
// construction and speculation must not break that.
func checkTraceClocks(t *testing.T, label string, trc *trace.Tracer) {
	t.Helper()
	last := make(map[uint16]uint64)
	for _, r := range trc.Snapshot() {
		if prev, seen := last[r.Worker]; seen && r.Cycles < prev {
			t.Errorf("%s: trace clock rewound on track %s: %d after %d (seq %d kind %v)",
				label, trace.TrackName(r.Worker), r.Cycles, prev, r.Seq, r.Kind)
			return
		}
		last[r.Worker] = r.Cycles
	}
}
