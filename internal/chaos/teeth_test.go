package chaos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// TestWireVersioning pins the two-version wire contract: programs the v1
// format can express still emit v1 bytes (so the PR-4 corpus regenerates
// byte-identically), scenario programs emit v2, and both versions
// round-trip every field through Decode.
func TestWireVersioning(t *testing.T) {
	sawV1, sawV2 := false, false
	for _, spec := range CorpusSpecs() {
		p := GenerateSpec(spec)
		data := Encode(p)
		wantV2 := spec.Scenario != ScenarioSingle || spec.Protect
		if wantV2 != (data[0] == wireVersion2) {
			t.Fatalf("%s: version byte %d, want v2=%v", spec.CorpusName(), data[0], wantV2)
		}
		if wantV2 {
			sawV2 = true
		} else {
			sawV1 = true
		}
		q := Decode(data)
		q.Seed = p.Seed // the seed is not carried on the wire
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%s: round trip mangled the program:\n%v\nvs\n%v", spec.CorpusName(), p, q)
		}
		if !bytes.Equal(Encode(q), data) {
			t.Fatalf("%s: re-encode differs from original bytes", spec.CorpusName())
		}
	}
	if !sawV1 || !sawV2 {
		t.Fatalf("corpus must exercise both wire versions (v1=%v v2=%v)", sawV1, sawV2)
	}
}

// TestWireV1IgnoresVersionByte guards the legacy-decode contract: the v1
// decoder never reads byte 0, so corpus inputs whose first byte is anything
// but the v2 tag decode exactly as the v1 grammar says. A "helpful" version
// check added to the v1 path would silently orphan the mutated corpus.
func TestWireV1IgnoresVersionByte(t *testing.T) {
	p := Generate(0xF01, mmbug.BufferOverflow, 48)
	data := Encode(p)
	if data[0] != wireVersion1 {
		t.Fatalf("version byte %d, want %d", data[0], wireVersion1)
	}
	want := Decode(data)
	for _, b := range []byte{0, 1, 3, 7, 255} {
		mut := append([]byte(nil), data...)
		mut[0] = b
		if got := Decode(mut); !reflect.DeepEqual(got, want) {
			t.Fatalf("version byte %d changed the v1 decode", b)
		}
	}
}

// runMultiSupervisor drives a multi-bug program through a sync supervisor
// and returns it for post-run tampering.
func runMultiSupervisor(t *testing.T, seed uint64, combo int) *core.Supervisor {
	t.Helper()
	prog := GenerateSpec(GenSpec{Seed: seed, Scenario: ScenarioMulti, Combo: combo})
	log := replay.NewLog()
	prog.AppendTo(log)
	sup := core.NewSupervisor(&App{Classes: prog.Classes()}, log, core.Config{})
	sup.Run()
	if err := CheckSupervisor(sup); err != nil {
		t.Fatalf("untampered combo %d run rejected: %v", combo, err)
	}
	return sup
}

// slotObjAddr reads the slot table of a finished run and returns the user
// address stored for a slot.
func slotObjAddr(t *testing.T, sup *core.Supervisor, slot uint8) vmem.Addr {
	t.Helper()
	table := sup.M.Proc.RootAddr(rootTable)
	w, err := sup.M.Mem.ReadU32(table + 16*uint32(slot))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestOracleTeethMultiBug proves the oracle still has teeth on multi-bug
// runs, where two recoveries and two patches leave much more room for a
// broken harness to accept damaged state. Each tamper simulates one failure
// the matrix must never let through: residual content corruption (byte
// flip), a dropped overflow patch (the smash past the victim's grant that
// the padding would have absorbed), one of two bugs left unfixed (the
// dangling write's damage re-applied to the recycled chunk), and one of two
// bugs left undiagnosed (a finding dropped from the recovery record).
func TestOracleTeethMultiBug(t *testing.T) {
	t.Run("byte-flip", func(t *testing.T) {
		sup := runMultiSupervisor(t, 7, 2) // overflow-dw-uninit
		addr := slotObjAddr(t, sup, bankSlot(1, 3))
		if addr == 0 {
			t.Fatal("bank-1 recycler slot not live; pick another seed")
		}
		if err := sup.M.Mem.Write(addr, []byte{0xFF}); err != nil {
			t.Fatal(err)
		}
		err := CheckSupervisor(sup)
		if err == nil || !strings.Contains(err.Error(), "byte") {
			t.Fatalf("oracle missed a flipped byte: %v", err)
		}
	})
	t.Run("dropped-patch", func(t *testing.T) {
		sup := runMultiSupervisor(t, 7, 0) // overflow-header-df
		addr := slotObjAddr(t, sup, bankSlot(0, 0))
		obj, ok := sup.M.Ext.Object(addr)
		if !ok {
			t.Fatal("overflow victim not live after recovery")
		}
		if obj.PadBack == 0 {
			t.Fatal("victim carries no padding: the overflow patch was not deployed")
		}
		// Re-apply the overflow as if the padding patch had been dropped:
		// overflowDelta bytes past the *grant* end, beyond what the pads
		// absorb — exactly the write the patch exists to swallow.
		smash := bytes.Repeat([]byte{patVictim}, overflowDelta)
		if err := sup.M.Mem.Write(addr+obj.UserSize+obj.PadBack, smash); err != nil {
			t.Fatal(err)
		}
		err := CheckSupervisor(sup)
		if err == nil || !strings.Contains(err.Error(), "invariants") {
			t.Fatalf("oracle missed the unabsorbed overflow: %v", err)
		}
	})
	t.Run("one-bug-unfixed", func(t *testing.T) {
		sup := runMultiSupervisor(t, 7, 1) // dw-refree-shared-chunk
		addr := slotObjAddr(t, sup, bankSlot(0, 3))
		if addr == 0 {
			t.Fatal("recycler slot not live after recovery")
		}
		// Re-apply the dangling write's damage as if its delay-free patch
		// were missing: the stale-pointer pattern lands in the recycled
		// chunk the patch keeps out of circulation.
		smash := bytes.Repeat([]byte{patStale}, dangleWriteLen)
		if err := sup.M.Mem.Write(addr, smash); err != nil {
			t.Fatal(err)
		}
		err := CheckSupervisor(sup)
		if err == nil || !strings.Contains(err.Error(), "byte") {
			t.Fatalf("oracle missed the unprevented dangling write: %v", err)
		}
	})
	t.Run("one-bug-undiagnosed", func(t *testing.T) {
		out := Run(RunConfig{Seed: 7, Scenario: ScenarioMulti, Combo: 0, Mode: ModeSync})
		if !out.OK() {
			t.Fatalf("untampered run rejected:\n%s", out.Verdict())
		}
		if err := out.CheckExpected(); err != nil {
			t.Fatalf("untampered run fails the ground-truth check: %v", err)
		}
		// Drop every double-free finding from the recovery record: the
		// ground-truth check must notice the second bug went undiagnosed.
		for ri := range out.Recoveries {
			kept := out.Recoveries[ri].Findings[:0]
			for _, f := range out.Recoveries[ri].Findings {
				if f.Class != mmbug.DoubleFree {
					kept = append(kept, f)
				}
			}
			out.Recoveries[ri].Findings = kept
		}
		if err := out.CheckExpected(); err == nil {
			t.Fatal("ground-truth check accepted a run with one of two bugs undiagnosed")
		}
		// And a finding attributed to the wrong site must be rejected too.
		out2 := Run(RunConfig{Seed: 7, Scenario: ScenarioMulti, Combo: 0, Mode: ModeSync})
		out2.Recoveries[0].Findings[0].Sites = []string{"chaos_alloc/chaos_aux/chaos_dispatch"}
		if err := out2.CheckExpected(); err == nil {
			t.Fatal("ground-truth check accepted a mis-attributed finding")
		}
	})
}
