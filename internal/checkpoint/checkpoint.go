// Package checkpoint implements First-Aid's lightweight checkpoint/rollback
// component (paper §3).
//
// A checkpoint is an in-memory snapshot — the fork-like COW snapshot of the
// Flashback kernel support in the paper — consisting of the vmem page-table
// snapshot, the allocator state, the allocator-extension state, the process
// registers/clock/PRNG, and the replay-log cursor. Rollback reinstates all
// five, after which re-execution is deterministic.
//
// Instead of a fixed interval, the manager adapts the checkpointing
// interval to the copy-on-write page rate: if the modelled overhead exceeds
// the user threshold Toverhead, the interval grows (up to Tcheckpoint);
// when the COW rate drops, it shrinks back toward the base interval.
package checkpoint

import (
	"fmt"

	"firstaid/internal/allocext"
	"firstaid/internal/heap"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
	"firstaid/internal/vmem"
)

// DefaultInterval is the base checkpoint interval: the paper's 200 ms at
// the simulated clock rate.
const DefaultInterval = proc.CyclesPerSecond / 5

// CostPerCOWPage models the cycles spent COW-replicating one dirtied page
// after a checkpoint (page-fault trap plus 4 KiB copy). The manager charges
// this to the process clock, which is how checkpointing overhead shows up
// in the Figure-6 measurements. The value is calibrated together with the
// workload kernels' 1/8 memory scaling (see internal/workloads) so that the
// overhead *fractions* match the paper's testbed: a full-scale page costs
// ~3 µs there; our pages stand for 8× the memory, hence 8×3 µs = 24 µs =
// 240 cycles at the simulated 10 MHz.
const CostPerCOWPage = 240

// costTake models the fork-like snapshot operation itself (~200 µs).
const costTake = 2000

// Checkpoint is one saved machine state.
type Checkpoint struct {
	Seq    int
	Clock  uint64 // process clock at snapshot time
	Cursor int    // replay-log cursor at snapshot time

	mem    *vmem.Snapshot
	heapSt heap.State
	procSt proc.State
	extSt  interface{}

	// DirtyPages is the COW page count of the interval that *preceded*
	// this checkpoint: the bytes this snapshot's predecessor had to
	// retain, the quantity of Table 7.
	DirtyPages uint64
}

// Bytes returns the snapshot's heap extent.
func (c *Checkpoint) Bytes() uint64 { return c.mem.Bytes() }

func (c *Checkpoint) String() string {
	return fmt.Sprintf("ckpt#%d @clock=%d cursor=%d", c.Seq, c.Clock, c.Cursor)
}

// Config tunes the manager.
type Config struct {
	// Interval is the base checkpoint interval in cycles (default: the
	// paper's 200 ms).
	Interval uint64
	// MaxInterval is Tcheckpoint, the adaptive scheme's ceiling
	// (default 8× base).
	MaxInterval uint64
	// OverheadTarget is Toverhead, the tolerated fraction of execution
	// time spent on COW replication (default 0.05).
	OverheadTarget float64
	// Keep is the number of checkpoints retained (default 16).
	Keep int
	// Adaptive enables interval adaptation (default on via NewManager).
	Adaptive bool
}

func (c *Config) fillDefaults() {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.MaxInterval == 0 {
		c.MaxInterval = 8 * c.Interval
	}
	if c.OverheadTarget == 0 {
		c.OverheadTarget = 0.05
	}
	if c.Keep == 0 {
		c.Keep = 16
	}
}

// Stats aggregates checkpointing cost for Table 7.
type Stats struct {
	Taken           int
	TotalDirtyPages uint64 // sum of per-interval COW pages
	TotalCycles     uint64 // execution cycles covered while checkpointing
}

// MBPerCheckpoint returns the average megabytes retained per checkpoint.
func (s Stats) MBPerCheckpoint() float64 {
	if s.Taken == 0 {
		return 0
	}
	return float64(s.TotalDirtyPages) * vmem.PageSize / (1 << 20) / float64(s.Taken)
}

// MBPerSecond returns megabytes of checkpoint data per simulated second.
func (s Stats) MBPerSecond() float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	secs := float64(s.TotalCycles) / proc.CyclesPerSecond
	return float64(s.TotalDirtyPages) * vmem.PageSize / (1 << 20) / secs
}

// Manager owns the checkpoint ring of one supervised process.
type Manager struct {
	cfg Config

	mem *vmem.Space
	h   *heap.Heap
	p   *proc.Proc
	ext *allocext.Ext
	log *replay.Log

	cps       []*Checkpoint // oldest first
	nextSeq   int
	lastClock uint64 // clock at the last checkpoint
	interval  uint64 // current adaptive interval
	startMark uint64 // clock when stats started

	stats Stats
	met   metrics
	trc   trace.Emitter
}

// metrics holds the manager's pre-resolved telemetry instruments; the zero
// value (all nil) discards updates.
type metrics struct {
	taken          *telemetry.Counter
	rollbacks      *telemetry.Counter
	dirtyPages     *telemetry.Counter
	intervalGrows  *telemetry.Counter
	intervalShrink *telemetry.Counter
	interval       *telemetry.Gauge
	dirtyPerCkpt   *telemetry.Histogram
}

// SetMetrics wires the manager to a telemetry registry (nil detaches). The
// snapshot count, the per-interval COW page rate that drives the adaptive
// interval, and the interval decisions themselves all become observable.
func (m *Manager) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		m.met = metrics{}
		return
	}
	m.met = metrics{
		taken:          reg.Counter("ckpt.taken"),
		rollbacks:      reg.Counter("ckpt.rollbacks"),
		dirtyPages:     reg.Counter("ckpt.cow_pages"),
		intervalGrows:  reg.Counter("ckpt.interval_grows"),
		intervalShrink: reg.Counter("ckpt.interval_shrinks"),
		interval:       reg.Gauge("ckpt.interval_cycles"),
		dirtyPerCkpt:   reg.Histogram("ckpt.cow_pages_per_ckpt"),
	}
	m.met.interval.Set(int64(m.interval))
}

// SetTracer wires the manager to an execution-trace emitter (the zero
// Emitter detaches). Each Take and Rollback becomes a trace record
// carrying the checkpoint sequence number and, for Take, the dirty-page
// cost of the preceding interval.
func (m *Manager) SetTracer(em trace.Emitter) { m.trc = em }

// NewManager wires a manager to the machine's components.
func NewManager(cfg Config, mem *vmem.Space, h *heap.Heap, p *proc.Proc, ext *allocext.Ext, log *replay.Log) *Manager {
	cfg.fillDefaults()
	return &Manager{
		cfg:      cfg,
		mem:      mem,
		h:        h,
		p:        p,
		ext:      ext,
		log:      log,
		interval: cfg.Interval,
	}
}

// Interval returns the current (possibly adapted) interval in cycles.
func (m *Manager) Interval() uint64 { return m.interval }

// Stats returns the accumulated checkpointing statistics.
func (m *Manager) Stats() Stats { return m.stats }

// Checkpoints returns the retained checkpoints, oldest first.
func (m *Manager) Checkpoints() []*Checkpoint { return m.cps }

// Latest returns the most recent checkpoint, or nil.
func (m *Manager) Latest() *Checkpoint {
	if len(m.cps) == 0 {
		return nil
	}
	return m.cps[len(m.cps)-1]
}

// MaybeCheckpoint is called at every event boundary. It charges the
// interval's COW page-copy cost to the process clock and takes a new
// checkpoint when the interval has elapsed. It returns the checkpoint
// taken, or nil.
func (m *Manager) MaybeCheckpoint() *Checkpoint {
	// Charge COW replication performed since the last call. The dirty
	// counter is read without reset here; it is consumed at Take.
	if m.p.Clock()-m.lastClock < m.interval {
		return nil
	}
	return m.Take()
}

// Take snapshots the machine unconditionally.
func (m *Manager) Take() *Checkpoint {
	dirty := m.mem.TakeDirty()
	// Model the COW replication the previous interval performed plus the
	// snapshot operation itself.
	m.p.Tick(dirty*CostPerCOWPage + costTake)

	cp := &Checkpoint{
		Seq:        m.nextSeq,
		Clock:      m.p.Clock(),
		Cursor:     m.log.Cursor(),
		mem:        m.mem.Snapshot(),
		heapSt:     m.h.State(),
		procSt:     m.p.State(),
		extSt:      m.ext.State(),
		DirtyPages: dirty,
	}
	m.nextSeq++
	m.cps = append(m.cps, cp)
	if len(m.cps) > m.cfg.Keep {
		m.cps[0].mem.Release()
		m.cps = m.cps[1:]
	}
	m.met.taken.Inc()
	m.met.dirtyPages.Add(dirty)
	m.met.dirtyPerCkpt.Observe(dirty)
	m.trc.Emit(trace.KCkptTake, uint64(cp.Seq), dirty)

	interval := m.p.Clock() - m.lastClock
	m.lastClock = m.p.Clock()
	m.stats.Taken++
	m.stats.TotalDirtyPages += dirty
	m.stats.TotalCycles += interval

	if m.cfg.Adaptive && interval > 0 {
		m.adapt(dirty, interval)
	}
	return cp
}

// adapt grows or shrinks the interval based on the observed COW overhead
// fraction.
func (m *Manager) adapt(dirty, interval uint64) {
	overhead := float64(dirty*CostPerCOWPage) / float64(interval)
	switch {
	case overhead > m.cfg.OverheadTarget && m.interval < m.cfg.MaxInterval:
		m.interval += m.interval / 4
		if m.interval > m.cfg.MaxInterval {
			m.interval = m.cfg.MaxInterval
		}
		m.met.intervalGrows.Inc()
	case overhead < m.cfg.OverheadTarget/4 && m.interval > m.cfg.Interval:
		m.interval -= m.interval / 4
		if m.interval < m.cfg.Interval {
			m.interval = m.cfg.Interval
		}
		m.met.intervalShrink.Inc()
	}
	m.met.interval.Set(int64(m.interval))
}

// Rollback reinstates the machine state saved in cp. The checkpoint stays
// valid and may be rolled back to again (diagnosis re-executes from the
// same checkpoint many times). The memory rewind is O(pages dirtied since
// the checkpoint), not O(heap pages): vmem replays its slot journal and
// reuses the existing page table, so the diagnose/re-execute loop pays
// only for what it changed.
func (m *Manager) Rollback(cp *Checkpoint) {
	m.met.rollbacks.Inc()
	m.trc.Emit(trace.KRollback, uint64(cp.Seq), uint64(cp.Cursor))
	m.mem.Restore(cp.mem)
	m.h.SetState(cp.heapSt)
	m.p.SetState(cp.procSt)
	m.ext.SetState(cp.extSt)
	m.log.SetCursor(cp.Cursor)
	m.mem.TakeDirty() // discard dirt attributed to the abandoned timeline
	m.lastClock = cp.Clock
}

// DropAfter discards checkpoints newer than cp (after recovery commits to
// a rolled-back timeline, descendants of the failed timeline are stale).
func (m *Manager) DropAfter(cp *Checkpoint) {
	keep := m.cps[:0]
	for _, c := range m.cps {
		if c.Seq <= cp.Seq {
			keep = append(keep, c)
		} else {
			c.mem.Release()
		}
	}
	m.cps = keep
}
