package checkpoint

import (
	"runtime"
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/heap"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

type world struct {
	mem *vmem.Space
	h   *heap.Heap
	p   *proc.Proc
	ext *allocext.Ext
	log *replay.Log
	mgr *Manager
}

func newWorld(t testing.TB, cfg Config) *world {
	t.Helper()
	mem := vmem.New(64 << 20)
	h := heap.New(mem)
	sites := callsite.NewTable()
	ext := allocext.New(h, sites)
	p := proc.New(mem, ext)
	p.Sites = sites
	log := replay.NewLog()
	for i := 0; i < 100; i++ {
		log.Append("op", "", i)
	}
	return &world{mem: mem, h: h, p: p, ext: ext, log: log,
		mgr: NewManager(cfg, mem, h, p, ext, log)}
}

func (w *world) alloc(t testing.TB, n uint32) vmem.Addr {
	t.Helper()
	var a vmem.Addr
	if f := proc.Catch(func() {
		defer w.p.Enter("test")()
		a = w.p.Malloc(n)
	}); f != nil {
		t.Fatalf("alloc fault: %v", f)
	}
	return a
}

func TestTakeAndRollbackRestoreEverything(t *testing.T) {
	w := newWorld(t, Config{})
	a := w.alloc(t, 64)
	w.mem.Write(a, []byte("checkpointed"))
	w.p.SetRoot(1, 77)
	w.log.Next()
	w.log.Next()

	cp := w.mgr.Take()
	if cp.Cursor != 2 {
		t.Fatalf("cursor = %d", cp.Cursor)
	}

	// Mutate everything.
	b := w.alloc(t, 128)
	w.mem.Write(a, []byte("overwritten!"))
	w.p.SetRoot(1, 0)
	w.p.Tick(12345)
	w.log.Next()
	_ = b

	w.mgr.Rollback(cp)
	got, _ := w.mem.Read(a, 12)
	if string(got) != "checkpointed" {
		t.Fatalf("heap contents = %q", got)
	}
	if w.p.Root(1) != 77 {
		t.Fatal("roots not restored")
	}
	if w.p.Clock() != cp.Clock {
		t.Fatal("clock not restored")
	}
	if w.log.Cursor() != 2 {
		t.Fatalf("log cursor = %d", w.log.Cursor())
	}
	// The extension's object table must be restored too: b is gone.
	if _, ok := w.ext.Object(b); ok {
		t.Fatal("post-checkpoint object survived rollback")
	}
	if _, ok := w.ext.Object(a); !ok {
		t.Fatal("pre-checkpoint object lost")
	}
}

func TestRollbackSameCheckpointRepeatedly(t *testing.T) {
	w := newWorld(t, Config{})
	a := w.alloc(t, 32)
	w.mem.WriteU32(a, 1)
	cp := w.mgr.Take()
	for i := 0; i < 5; i++ {
		w.mem.WriteU32(a, uint32(100+i))
		w.alloc(t, 64)
		w.mgr.Rollback(cp)
		if v, _ := w.mem.ReadU32(a); v != 1 {
			t.Fatalf("iteration %d: %d", i, v)
		}
		if err := w.h.CheckIntegrity(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestMaybeCheckpointHonoursInterval(t *testing.T) {
	w := newWorld(t, Config{Interval: 1000})
	w.mgr.Take()
	if cp := w.mgr.MaybeCheckpoint(); cp != nil {
		t.Fatal("checkpoint before interval elapsed")
	}
	w.p.Tick(1001)
	if cp := w.mgr.MaybeCheckpoint(); cp == nil {
		t.Fatal("no checkpoint after interval elapsed")
	}
}

func TestKeepLimitEvictsOldest(t *testing.T) {
	w := newWorld(t, Config{Keep: 3})
	for i := 0; i < 6; i++ {
		w.mgr.Take()
	}
	cps := w.mgr.Checkpoints()
	if len(cps) != 3 {
		t.Fatalf("kept = %d", len(cps))
	}
	if cps[0].Seq != 3 || cps[2].Seq != 5 {
		t.Fatalf("wrong survivors: %v %v", cps[0], cps[2])
	}
	if w.mgr.Latest() != cps[2] {
		t.Fatal("Latest mismatch")
	}
}

func TestDropAfter(t *testing.T) {
	w := newWorld(t, Config{})
	c0 := w.mgr.Take()
	w.mgr.Take()
	w.mgr.Take()
	w.mgr.DropAfter(c0)
	cps := w.mgr.Checkpoints()
	if len(cps) != 1 || cps[0] != c0 {
		t.Fatalf("checkpoints after drop: %v", cps)
	}
}

func TestCheckpointCostChargedToClock(t *testing.T) {
	w := newWorld(t, Config{})
	a := w.alloc(t, 10*vmem.PageSize)
	w.mgr.Take()
	// Dirty 10 pages.
	for i := 0; i < 10; i++ {
		w.mem.Write(a+vmem.Addr(i*vmem.PageSize), []byte{1})
	}
	before := w.p.Clock()
	w.mgr.Take()
	charged := w.p.Clock() - before
	if charged < 10*CostPerCOWPage {
		t.Fatalf("charged %d cycles for 10 COW pages, want ≥ %d", charged, 10*CostPerCOWPage)
	}
}

func TestAdaptiveIntervalGrowsUnderHeavyDirtying(t *testing.T) {
	cfg := Config{Interval: 100_000, Adaptive: true, OverheadTarget: 0.02}
	w := newWorld(t, cfg)
	a := w.alloc(t, 4<<20)
	w.mgr.Take()
	base := w.mgr.Interval()
	// Dirty heavily across several intervals.
	off := vmem.Addr(0)
	for i := 0; i < 10; i++ {
		for j := 0; j < 200; j++ {
			w.mem.Write(a+off, []byte{byte(j)})
			off = (off + vmem.PageSize) % (4 << 20)
		}
		w.p.Tick(cfg.Interval)
		w.mgr.MaybeCheckpoint()
	}
	if w.mgr.Interval() <= base {
		t.Fatalf("interval did not grow: %d", w.mgr.Interval())
	}
	if w.mgr.Interval() > 8*base {
		t.Fatalf("interval exceeded Tcheckpoint cap: %d", w.mgr.Interval())
	}
}

func TestAdaptiveIntervalShrinksBackWhenQuiet(t *testing.T) {
	cfg := Config{Interval: 100_000, Adaptive: true, OverheadTarget: 0.02}
	w := newWorld(t, cfg)
	a := w.alloc(t, 4<<20)
	w.mgr.Take()
	off := vmem.Addr(0)
	for i := 0; i < 10; i++ {
		for j := 0; j < 200; j++ {
			w.mem.Write(a+off, []byte{1})
			off = (off + vmem.PageSize) % (4 << 20)
		}
		w.p.Tick(cfg.Interval)
		w.mgr.MaybeCheckpoint()
	}
	grown := w.mgr.Interval()
	// Quiet phase: no dirtying at all.
	for i := 0; i < 30; i++ {
		w.p.Tick(grown)
		w.mgr.MaybeCheckpoint()
	}
	if w.mgr.Interval() >= grown {
		t.Fatalf("interval did not shrink back: %d (was %d)", w.mgr.Interval(), grown)
	}
}

func TestStatsAccumulate(t *testing.T) {
	w := newWorld(t, Config{})
	a := w.alloc(t, 8*vmem.PageSize)
	w.mgr.Take()
	for i := 0; i < 8; i++ {
		w.mem.Write(a+vmem.Addr(i*vmem.PageSize), []byte{1})
	}
	w.p.Tick(DefaultInterval)
	w.mgr.Take()
	st := w.mgr.Stats()
	if st.Taken != 2 {
		t.Fatalf("taken = %d", st.Taken)
	}
	if st.TotalDirtyPages < 8 {
		t.Fatalf("dirty pages = %d", st.TotalDirtyPages)
	}
	if st.MBPerCheckpoint() <= 0 || st.MBPerSecond() <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

func TestRollbackDiscardsDirtFromAbandonedTimeline(t *testing.T) {
	w := newWorld(t, Config{})
	a := w.alloc(t, 16*vmem.PageSize)
	cp := w.mgr.Take()
	for i := 0; i < 16; i++ {
		w.mem.Write(a+vmem.Addr(i*vmem.PageSize), []byte{1})
	}
	w.mgr.Rollback(cp)
	before := w.p.Clock()
	w.mgr.Take()
	// The 16 dirtied pages belong to the abandoned timeline; they must
	// not be charged to the new checkpoint.
	if charged := w.p.Clock() - before; charged > 4*CostPerCOWPage+costTake {
		t.Fatalf("abandoned dirt charged: %d cycles", charged)
	}
}

// TestRollbackIsODirty pins the O(dirty) rollback property end to end at
// the manager level: with a 16 MiB resident heap (4096 pages) and a
// steady-state diagnose-style loop that dirties a handful of pages per
// iteration, the bytes allocated per rollback must stay far below the 32
// KiB page-table slice plus mmap map that an O(pages) restore would
// rebuild each time.
func TestRollbackIsODirty(t *testing.T) {
	w := newWorld(t, Config{})
	base := w.alloc(t, 16<<20)
	if f := proc.Catch(func() {
		defer w.p.Enter("test")()
		w.p.Memset(base, 0xA5, 16<<20)
	}); f != nil {
		t.Fatal(f)
	}
	cp := w.mgr.Take()
	loop := func(n int) {
		for i := 0; i < n; i++ {
			for pg := 0; pg < 8; pg++ {
				w.mem.WriteU32(base+vmem.Addr(pg)*vmem.PageSize, uint32(i))
			}
			w.mgr.Rollback(cp)
		}
	}
	loop(32) // steady state: freelist warm, journal capacity settled

	const iters = 512
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	loop(iters)
	runtime.ReadMemStats(&after)
	perOp := float64(after.TotalAlloc-before.TotalAlloc) / iters
	if perOp > 8192 {
		t.Fatalf("rollback allocates %.0f B/op on a 16 MiB heap; want O(dirty), not O(pages)", perOp)
	}

	// And the rollback must still be exact.
	if v, err := w.mem.ReadU32(base); err != nil || v != 0xA5A5A5A5 {
		t.Fatalf("heap after rollback loop: %#x, %v", v, err)
	}
}
