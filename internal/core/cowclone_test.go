package core

import (
	"sync"
	"testing"
	"time"

	"firstaid/internal/apps"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
)

// TestCloneCanMapLargeBlock is the machine-level regression test for the
// Clone budget bug: the cloned Space dropped its memory budget, so the
// first large allocation in a validation clone (>= the allocator's mmap
// threshold, hence a vmem.Map) spuriously failed with out-of-memory and
// the validation run reported a fault the parent could never reproduce.
func TestCloneCanMapLargeBlock(t *testing.T) {
	a, _ := apps.New("squid")
	log := a.Workload(100, nil)
	m := NewMachine(a, log, MachineConfig{})
	for i := 0; i < 20; i++ {
		if f, ok := m.Step(); !ok || f != nil {
			t.Fatalf("step %d: %v", i, f)
		}
	}
	clone := m.Clone()
	var addr uint32
	if f := proc.Catch(func() {
		defer clone.Proc.Enter("validation_big_alloc")()
		addr = clone.Proc.Malloc(1 << 20) // mmap-path allocation
		clone.Proc.Memset(addr, 0x7C, 1<<20)
	}); f != nil {
		t.Fatalf("1 MiB allocation in clone faulted: %v", f)
	}
	if v, err := clone.Mem.ReadU32(addr); err != nil || v != 0x7C7C7C7C {
		t.Fatalf("clone mapped block: %#x, %v", v, err)
	}
	// The parent must not see the clone's mapping.
	if _, err := m.Mem.ReadU32(addr); err == nil {
		t.Fatal("parent can read the clone's private mapping")
	}
}

// bigHeapApp allocates a configurable amount of live sbrk heap in Init and
// then touches it round-robin — the substrate for clone benchmarks and COW
// stress, where the interesting variable is resident heap size.
type bigHeapApp struct {
	blocks int // 64 KiB each
}

func (b *bigHeapApp) Name() string       { return "bigheap" }
func (b *bigHeapApp) Bugs() []mmbug.Type { return nil }

func (b *bigHeapApp) Init(p *proc.Proc) {
	defer p.Enter("bigheap_init")()
	table := p.Malloc(uint32(4 * b.blocks))
	p.SetRoot(0, table)
	for i := 0; i < b.blocks; i++ {
		a := p.Malloc(64 << 10)
		p.Memset(a, 0xB5, 64<<10)
		p.StoreU32(table+uint32(4*i), a)
	}
}

func (b *bigHeapApp) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("bigheap_handle")()
	table := p.RootAddr(0)
	i := ev.Seq % b.blocks
	a := p.LoadU32(table + uint32(4*i))
	p.StoreU32(a+uint32(4*(ev.Seq%1000)), uint32(ev.Seq))
	p.Tick(1000)
}

func bigHeapLog(events int) *replay.Log {
	log := replay.NewLog()
	for i := 0; i < events; i++ {
		log.Append("touch", "", 0)
	}
	return log
}

// TestConcurrentCloneStress runs N validation-style COW clones to
// completion on their own goroutines while the parent keeps executing,
// checkpointing and rolling back. Deterministic machines must all agree,
// and under -race this doubles as the machine-level COW race check.
func TestConcurrentCloneStress(t *testing.T) {
	const clones = 4
	a := &bigHeapApp{blocks: 32} // 2 MiB live heap
	m := NewMachine(a, bigHeapLog(400), MachineConfig{})
	for i := 0; i < 50; i++ {
		if f, ok := m.Step(); !ok || f != nil {
			t.Fatalf("step %d: %v", i, f)
		}
	}

	clocks := make([]uint64, clones)
	var wg sync.WaitGroup
	for c := 0; c < clones; c++ {
		clone := m.Clone()
		wg.Add(1)
		go func(c int, clone *Machine) {
			defer wg.Done()
			for {
				f, ok := clone.Step()
				if !ok {
					break
				}
				if f != nil {
					t.Errorf("clone %d faulted: %v", c, f)
					return
				}
				if clone.Log.Cursor()%40 == 0 {
					clone.Ckpt.Take()
				}
			}
			clocks[c] = clone.Proc.Clock()
		}(c, clone)
	}
	// Parent: keep executing with checkpoint/rollback churn while the
	// clones replay the same events over shared COW pages.
	for i := 0; i < 100; i++ {
		if f, ok := m.Step(); !ok || f != nil {
			break
		}
		if i%20 == 10 {
			cp := m.Ckpt.Take()
			m.Rollback(cp)
		}
	}
	wg.Wait()
	for c := 1; c < clones; c++ {
		if clocks[c] != clocks[0] {
			t.Fatalf("clone %d finished at clock %d, clone 0 at %d", c, clocks[c], clocks[0])
		}
	}
}

// BenchmarkMachineCloneGuard enforces the Machine.Clone acceptance number:
// on a 16 MiB live heap the COW clone must be >= 10x faster than the deep
// (SlowMemPaths) clone. Fixed-size interleaved rounds, best-of, one
// re-measure — the repo's guard shape.
func BenchmarkMachineCloneGuard(b *testing.B) {
	const (
		target = 10.0
		clones = 8
		rounds = 4
	)
	a := &bigHeapApp{blocks: 256} // 16 MiB live heap
	m := NewMachine(a, bigHeapLog(64), MachineConfig{})
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}

	run := func(deep bool) time.Duration {
		m.cfg.SlowMemPaths = deep
		t0 := time.Now()
		for i := 0; i < clones; i++ {
			_ = m.Clone()
		}
		return time.Since(t0)
	}

	measure := func() float64 {
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var deep, cow time.Duration
		run(true) // warmup
		run(false)
		for r := 0; r < rounds; r++ {
			deep = best(run(true), deep)
			cow = best(run(false), cow)
		}
		return float64(deep) / float64(cow)
	}

	speedup := 0.0
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			speedup = measure()
			if speedup >= target {
				break
			}
		}
	}
	m.cfg.SlowMemPaths = false
	b.ReportMetric(speedup, "speedup-x")
	if speedup < target {
		b.Fatalf("COW Machine.Clone is %.2fx the deep clone on a 16 MiB heap, want >= %.1fx", speedup, target)
	}
}
