package core

import (
	"testing"

	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// silentBug overflows into the boundary tag of a never-freed object. The
// program itself never notices — the corrupted chunk is never freed,
// walked, or integrity-asserted — so without a deployed detector the bug
// sails through ("First-Aid cannot handle memory bugs that slip through
// the deployed error monitors", §6). The heap-integrity detector of §3
// turns it into a caught, diagnosable failure at the triggering event.
type silentBug struct{}

func (s *silentBug) Name() string       { return "silentbug" }
func (s *silentBug) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow} }
func (s *silentBug) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("init")()
	list := p.Malloc(4 * 256) // keeper list
	p.Memset(list, 0, 4*256)
	p.SetRoot(0, list)
	p.SetRoot(1, 0)
}

func (s *silentBug) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("serve")()
	p.Tick(100_000)
	// Both objects live for the whole run (an append-only archive), so
	// no later allocator operation ever inspects the smashed boundary
	// tag: the corruption is perfectly silent without a detector.
	buf := func() vmem.Addr {
		defer p.Enter("session_alloc")()
		return p.Malloc(40)
	}()
	keeper := func() vmem.Addr {
		defer p.Enter("archive_alloc")()
		return p.Malloc(72)
	}()
	p.Memset(keeper, byte(ev.N), 72)
	n := p.Root(1)
	if n < 256 {
		p.StoreU32(p.RootAddr(0)+vmem.Addr(4*n), keeper)
		p.SetRoot(1, n+1)
	}

	fill := 40
	if ev.Kind == "long" {
		fill = 56 // THE BUG: 16 bytes past the buffer, into keeper's boundary tag
	}
	p.At("fill_session")
	junk := make([]byte, fill)
	for i := range junk {
		junk[i] = 0xEE
	}
	p.Store(buf, junk)
}

func (s *silentBug) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < n; i++ {
		kind := "req"
		if trig[i] {
			kind = "long"
		}
		log.Append(kind, "", i)
	}
	return log
}

func TestSilentCorruptionSlipsThroughDefaultMonitors(t *testing.T) {
	prog := &silentBug{}
	log := prog.Workload(120, []int{60})
	sup := NewSupervisor(prog, log, Config{})
	stats := sup.Run()
	// The §6 limitation, demonstrated: the corruption is real (the
	// keeper's boundary tag is destroyed) but nothing ever faults.
	if stats.Failures != 0 {
		t.Fatalf("expected the bug to slip through silently, got %d failures", stats.Failures)
	}
	if err := sup.M.Heap.CheckIntegrity(); err == nil {
		t.Fatal("heap expected to be silently corrupted at end of run")
	}
}

func TestIntegrityDetectorCatchesAndCuresSilentCorruption(t *testing.T) {
	prog := &silentBug{}
	log := prog.Workload(240, []int{60, 160})
	sup := NewSupervisor(prog, log, Config{
		Machine: MachineConfig{IntegrityCheckEvery: 1},
	})
	stats := sup.Run()

	if stats.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (detected once, then patched)", stats.Failures)
	}
	if len(sup.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(sup.Recoveries))
	}
	rec := sup.Recoveries[0]
	if rec.Skipped {
		t.Fatalf("diagnosis fell back to skip:\n%v", rec.Result.Log)
	}
	if rec.Fault.Kind != proc.HeapCorruption {
		t.Fatalf("fault kind = %v, want detector-reported heap corruption", rec.Fault.Kind)
	}
	// Detected at (or immediately after) the triggering event.
	if rec.Fault.Event < 60 || rec.Fault.Event > 64 {
		t.Fatalf("detected at event %d, want ~60 (short propagation distance)", rec.Fault.Event)
	}
	found := false
	for _, fd := range rec.Result.Findings {
		if fd.Bug == mmbug.BufferOverflow {
			found = true
		}
	}
	if !found {
		t.Fatalf("overflow not diagnosed: %+v\n%v", rec.Result.Findings, rec.Result.Log)
	}
	// And the heap ends the run sound: the second trigger was absorbed
	// by padding.
	if err := sup.M.Heap.CheckIntegrity(); err != nil {
		t.Fatalf("final heap corrupt despite patch: %v", err)
	}
}
