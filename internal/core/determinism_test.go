package core

import (
	"testing"

	"firstaid/internal/apps"
)

// TestRecoveryIsFullyDeterministic: identical program + identical inputs
// must produce bit-identical recovery behaviour — same failure event, same
// diagnosis log, same rollback count, same patches, same simulated time.
// This is the property the whole diagnosis design rests on ("deterministic
// re-execution from a checkpoint"); any source of hidden nondeterminism
// (map iteration order, pointer-keyed sorting, wall-clock leakage) would
// surface here.
func TestRecoveryIsFullyDeterministic(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			type fingerprint struct {
				failEvent  int
				rollbacks  int
				patchCount int
				simSeconds float64
				logLen     int
				firstPatch string
			}
			run := func() fingerprint {
				a, _ := apps.New(name)
				log := a.Workload(700, []int{230})
				sup := NewSupervisor(a, log, Config{})
				st := sup.Run()
				if len(sup.Recoveries) == 0 {
					t.Fatal("no recovery")
				}
				rec := sup.Recoveries[0]
				fp := fingerprint{
					failEvent:  rec.Fault.Event,
					rollbacks:  rec.Result.Rollbacks,
					patchCount: len(rec.Patches),
					simSeconds: st.SimSeconds,
					logLen:     len(rec.Result.Log),
				}
				if len(rec.Patches) > 0 {
					fp.firstPatch = rec.Patches[0].Site.String()
				}
				return fp
			}
			a := run()
			b := run()
			if a != b {
				t.Fatalf("nondeterministic recovery:\nrun1: %+v\nrun2: %+v", a, b)
			}
		})
	}
}
