package core

import (
	"fmt"
	"testing"
	"time"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/guard"
	"firstaid/internal/heap"
	"firstaid/internal/proc"
	"firstaid/internal/vmem"
)

// BenchmarkGuardOverheadGuard enforces the guard tier's cost contract: at
// the default 1/4096 sampling rate the malloc/free hot path through the
// full machine pipeline (proc → allocext → heap) must stay within 1% of
// the sampling-off configuration — cheap enough to leave on fleet-wide,
// the GWP-ASan bar. With sampling off the tier must cost exactly nothing:
// no Guard is even constructed, the extension's hot path is a nil check
// (the same discipline as telemetry and trace).
//
// Both configurations run on one long-lived machine each, the deployment
// shape the contract is about: a fresh machine per measurement would
// charge the guard tier its one-time setup costs (page-table growth to
// the Map zone, soft faults on fresh page frames) on every round, costs a
// production machine amortizes over its lifetime. Each round enters a
// distinct call-site label so the adaptive policy's per-site decay never
// disables sampling mid-benchmark, and rounds alternate configurations
// with the best of each kept — the minimum over many interleaved runs is
// the estimator most robust to the multi-percent wall-clock jitter of
// shared CI machines. It re-measures once before failing.
func BenchmarkGuardOverheadGuard(b *testing.B) {
	const (
		budget = 1.0 // percent
		ops    = 200_000
		rounds = 12
	)

	build := func(rate int) *proc.Proc {
		mem := vmem.New(64 << 20)
		h := heap.New(mem)
		sites := callsite.NewTable()
		ext := allocext.New(h, sites)
		p := proc.New(mem, ext)
		p.Sites = sites
		if rate > 0 {
			attachGuard(mem, ext, p, sites, MachineConfig{GuardRate: rate})
		} else if ext.Guard() != nil {
			b.Fatal("guard constructed with sampling off")
		}
		return p
	}

	round := func(p *proc.Proc, label string) time.Duration {
		pop := p.Enter(label)
		defer pop()
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			a := p.Malloc(uint32(16 + i%128))
			p.Free(a)
		}
		return time.Since(t0)
	}

	measure := func() float64 {
		offP := build(0)
		onP := build(guard.DefaultRate)
		round(offP, "warmup")
		round(onP, "warmup")
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var off, on time.Duration
		for r := 0; r < rounds; r++ {
			label := fmt.Sprintf("round-%d", r)
			off = best(round(offP, label), off)
			on = best(round(onP, label), on)
		}
		return (float64(on)/float64(off) - 1) * 100
	}

	overhead := 0.0
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			overhead = measure()
			if overhead < budget {
				break
			}
		}
	}
	b.ReportMetric(overhead, "overhead-%")
	if overhead >= budget {
		b.Fatalf("guard sampling at 1/%d costs %.2f%% on malloc/free, budget %.1f%%",
			guard.DefaultRate, overhead, budget)
	}
}
