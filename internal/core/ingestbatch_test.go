package core

import (
	"bytes"
	"fmt"
	"testing"

	"firstaid/internal/app"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// ingestProg is a minimal streaming workload for the batched-ingest pins:
// benign per-request heap churn, plus an injected deterministic failure on
// "boom" events (no memory bug behind it, so recovery lands on the skip
// fallback — exercising rollback and re-execution mid-batch).
type ingestProg struct{}

func (ingestProg) Name() string { return "ingestprog" }

func (ingestProg) Bugs() []mmbug.Type { return nil }

func (ingestProg) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("ingest_init")()
	p.SetRoot(0, p.Malloc(64))
}

func (ingestProg) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("dispatch")()
	p.Tick(app.EventCost)
	switch ev.Kind {
	case "req":
		buf := func() vmem.Addr {
			defer p.Enter("req_scratch")()
			return p.Malloc(uint32(32 + ev.N%64))
		}()
		p.Memset(buf, byte(ev.N), 32)
		func() {
			defer p.Enter("req_done")()
			p.Free(buf)
		}()
	case "boom":
		p.At("boom_site")
		p.Assert(false, "injected failure")
	default:
		p.Assert(false, "ingestprog: unknown event %q", ev.Kind)
	}
}

// ingestItems builds n events with a failure injected at each offset in
// boom (if any), both as strings (serial ingest) and Items (batched).
func ingestItems(n int, boom map[int]bool) []replay.Item {
	items := make([]replay.Item, n)
	for i := range items {
		kind := "req"
		if boom[i] {
			kind = "boom"
		}
		items[i] = replay.Item{
			Kind: []byte(kind),
			Data: []byte(fmt.Sprintf("payload-%d", i)),
			N:    i,
		}
	}
	return items
}

func saveLog(t *testing.T, s *Supervisor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Log().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestBatchMatchesSerial pins the core equivalence contract at the
// unit level: a batched live run's rolling log, statistics and recovery
// count must equal the same events ingested one at a time, including when
// failures (and their rollback/re-execute/skip cycles) land mid-batch.
func TestIngestBatchMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name  string
		boom  map[int]bool
		batch int
	}{
		{"clean", nil, 64},
		{"fault-mid-batch", map[int]bool{100: true}, 64},
		{"fault-at-batch-edges", map[int]bool{64: true, 127: true}, 64},
		{"many-faults-small-batches", map[int]bool{10: true, 11: true, 50: true}, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 300
			items := ingestItems(n, tc.boom)

			serial := NewSupervisor(ingestProg{}, replay.NewLog(), Config{DisableLedger: true})
			for _, it := range items {
				serial.Ingest(string(it.Kind), string(it.Data), it.N)
			}
			serialStats := serial.Finish()

			batched := NewSupervisor(ingestProg{}, replay.NewLog(), Config{DisableLedger: true})
			var agg BatchResult
			for lo := 0; lo < n; lo += tc.batch {
				hi := lo + tc.batch
				if hi > n {
					hi = n
				}
				br := batched.IngestBatch(items[lo:hi])
				if br.First != lo || br.Events != hi-lo {
					t.Fatalf("batch [%d,%d): First=%d Events=%d", lo, hi, br.First, br.Events)
				}
				agg.Failures += br.Failures
				agg.Recoveries += br.Recoveries
				agg.Skipped += br.Skipped
			}
			batchedStats := batched.Finish()

			if serialStats != batchedStats {
				t.Fatalf("stats diverge:\nserial  %+v\nbatched %+v", serialStats, batchedStats)
			}
			if agg.Failures != serialStats.Failures || agg.Skipped != serialStats.Skipped {
				t.Fatalf("batch results (failures %d, skipped %d) disagree with stats %+v",
					agg.Failures, agg.Skipped, serialStats)
			}
			if a, b := saveLog(t, serial), saveLog(t, batched); !bytes.Equal(a, b) {
				t.Fatalf("rolling logs diverge:\nserial  %d bytes\nbatched %d bytes", len(a), len(b))
			}
			if f := batched.Log().Fence(); f != -1 {
				t.Fatalf("fence left set after IngestBatch: %d", f)
			}
		})
	}
}

// TestIngestBatchEmpty pins the trivial edges: an empty batch is a no-op
// and reports the current tail.
func TestIngestBatchEmpty(t *testing.T) {
	s := NewSupervisor(ingestProg{}, replay.NewLog(), Config{DisableLedger: true})
	s.IngestBatch(ingestItems(3, nil))
	br := s.IngestBatch(nil)
	if br.First != 3 || br.Events != 0 || br.Failures != 0 {
		t.Fatalf("empty batch result: %+v", br)
	}
	if st := s.Finish(); st.Events != 3 {
		t.Fatalf("events = %d", st.Events)
	}
}

// TestCompactLogBoundsStreamingMemory is the streaming soak for the
// bounded rolling log: with CompactLog on, a long live run must hold the
// retained window (and its payload footprint) flat instead of growing
// with the event count — while the retained window still replays offline
// from the oldest retained checkpoint, and the compacted log round-trips
// through Save/Load.
func TestCompactLogBoundsStreamingMemory(t *testing.T) {
	s := NewSupervisor(ingestProg{}, replay.NewLog(), Config{DisableLedger: true, CompactLog: true})
	const (
		total = 4000
		batch = 50
	)
	// With EventCost ticks and the default adaptive checkpoint interval,
	// checkpoints land every few dozen events and the manager retains 16;
	// the retained window should stay well under 2000 events forever.
	const retainedCap = 2000
	items := ingestItems(total, nil)
	peak := 0
	for lo := 0; lo < total; lo += batch {
		s.IngestBatch(items[lo : lo+batch])
		if r := s.Log().Retained(); r > peak {
			peak = r
		}
	}
	if st := s.Finish(); st.Events != total || st.Failures != 0 {
		t.Fatalf("soak stats: %+v", st)
	}
	log := s.Log()
	if log.Len() != total {
		t.Fatalf("absolute length %d, want %d", log.Len(), total)
	}
	if log.Base() == 0 {
		t.Fatal("log was never compacted")
	}
	if peak > retainedCap {
		t.Fatalf("retained window peaked at %d events (cap %d): log memory is not flat", peak, retainedCap)
	}
	if fp := log.Footprint(); fp > retainedCap*32 {
		t.Fatalf("retained footprint %d bytes", fp)
	}

	// The retained window must still replay: roll back to the oldest
	// retained checkpoint and re-execute to the tail without faults.
	cps := s.M.Ckpt.Checkpoints()
	if len(cps) == 0 {
		t.Fatal("no retained checkpoints")
	}
	oldest := cps[0]
	if oldest.Cursor < log.Base() {
		t.Fatalf("oldest checkpoint cursor %d precedes log base %d", oldest.Cursor, log.Base())
	}
	s.M.Rollback(oldest)
	if c := log.Cursor(); c != oldest.Cursor {
		t.Fatalf("rollback cursor %d, want %d", c, oldest.Cursor)
	}
	replayed := 0
	for {
		f, ok := s.M.Step()
		if !ok {
			break
		}
		if f != nil {
			t.Fatalf("fault during offline replay of the retained window: %v", f)
		}
		s.M.SyncClock()
		replayed++
	}
	if want := total - oldest.Cursor; replayed != want {
		t.Fatalf("replayed %d events, want %d", replayed, want)
	}

	// And the compacted log survives persistence.
	var buf bytes.Buffer
	if err := log.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := replay.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Base() != log.Base() || got.Len() != log.Len() {
		t.Fatalf("round-trip base=%d len=%d, want %d/%d", got.Base(), got.Len(), log.Base(), log.Len())
	}
}
