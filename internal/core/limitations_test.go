package core

import (
	"testing"

	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// leaker embodies the §6 limitation: "First-Aid cannot deal with memory
// leak bugs, whose negative effects are cumulative and cannot be reverted
// by simply rolling back to a recent checkpoint." Every request leaks a
// buffer; the process eventually exhausts its address space. No
// environmental change helps — the leak is not an illegal access — so
// diagnosis must conclude non-patchable and the supervisor must degrade
// gracefully rather than loop or crash the harness.
type leaker struct{}

func (l *leaker) Name() string       { return "leaker" }
func (l *leaker) Bugs() []mmbug.Type { return nil }
func (l *leaker) Init(p *proc.Proc)  { defer p.Enter("main")(); p.SetRoot(0, 0) }
func (l *leaker) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("serve")()
	p.Tick(100_000)
	buf := func() vmem.Addr {
		defer p.Enter("xmalloc")()
		return p.Malloc(256 << 10)
	}()
	p.StoreU32(buf, uint32(ev.N))
	// THE BUG: buf is never freed (and never rooted — it just leaks).
}

func (l *leaker) Workload(n int, _ []int) *replay.Log {
	log := replay.NewLog()
	for i := 0; i < n; i++ {
		log.Append("req", "", i)
	}
	return log
}

func TestMemoryLeakIsNotPatchable(t *testing.T) {
	prog := &leaker{}
	log := prog.Workload(60, nil)
	// A tight address space forces the OOM quickly; a shallow diagnosis
	// budget keeps the repeated (hopeless) diagnoses cheap.
	sup := NewSupervisor(prog, log, Config{
		Machine:   MachineConfig{MemLimit: 8 << 20, Checkpoint: checkpoint.Config{Keep: 3}},
		Diagnosis: diagnosisShallow(),
	})
	stats := sup.Run()

	if stats.Failures == 0 {
		t.Fatal("the leak never exhausted memory")
	}
	// No patch can exist for a leak.
	if stats.PatchesMade != 0 {
		t.Fatalf("patches fabricated for a leak: %d", stats.PatchesMade)
	}
	for _, rec := range sup.Recoveries {
		if rec.Result.OK() {
			t.Fatalf("diagnosis claimed a patchable memory bug: %+v", rec.Result.Findings)
		}
	}
	// Graceful degradation: the supervisor kept going (skipping), not
	// hanging — but a leak re-fails fast, so most events after
	// exhaustion are casualties. The run itself must complete.
	t.Logf("stats: %+v (leak correctly non-patchable)", stats)
}

// TestLatentBugBeyondCheckpointHistory exercises the other §6 limitation:
// a bug whose trigger is farther in the past than any retained checkpoint
// ("First-Aid cannot deal with latent bugs — bugs whose root causes are far
// away from the error symptoms"). Diagnosis must time out cleanly and fall
// back to dropping the request.
func TestLatentBugBeyondCheckpointHistory(t *testing.T) {
	prog := &latentBug{}
	log := prog.Workload(600, []int{10}) // trigger long before the failure
	sup := NewSupervisor(prog, log, Config{
		// Keep very few checkpoints so the trigger falls off the end.
		Machine: MachineConfig{Checkpoint: checkpoint.Config{Keep: 4}},
	})
	stats := sup.Run()
	if stats.Failures == 0 {
		t.Fatal("latent bug never failed")
	}
	if stats.Skipped == 0 {
		t.Fatalf("latent bug was not handled by the fallback: %+v", stats)
	}
	for _, rec := range sup.Recoveries {
		if rec.Result.OK() {
			t.Fatalf("diagnosis claimed success beyond its checkpoint history")
		}
		if !rec.Result.Unpatchable {
			t.Fatalf("expected unpatchable, got %+v", rec.Result)
		}
	}
}

func diagnosisShallow() diagnosis.Config {
	return diagnosis.Config{MaxCheckpoints: 2, MaxRollbacks: 10}
}

// latentBug frees an object at the very start of the run, then reads it
// hundreds of events — and many checkpoint generations — later.
type latentBug struct{}

func (l *latentBug) Name() string       { return "latent" }
func (l *latentBug) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.DanglingRead} }
func (l *latentBug) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("init")()
	obj := p.Malloc(64)
	p.StoreU32(obj, 0x4C415445) // "LATE"
	p.SetRoot(0, obj)
}

func (l *latentBug) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("serve")()
	p.Tick(100_000)
	switch ev.Kind {
	case "drop":
		// The latent trigger: free the rooted object, keep the pointer.
		func() {
			defer p.Enter("xfree")()
			p.Free(p.RootAddr(0))
		}()
	case "churn":
		// Recycle the freed chunk.
		buf := func() vmem.Addr {
			defer p.Enter("xmalloc")()
			return p.Malloc(64)
		}()
		p.Memset(buf, 0x77, 64)
		func() {
			defer p.Enter("xfree")()
			p.Free(buf)
		}()
	case "use":
		// The symptom, hundreds of events later.
		p.At("late_read")
		p.Assert(p.LoadU32(p.RootAddr(0)) == 0x4C415445, "stale object gone")
	}
}

func (l *latentBug) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < n; i++ {
		switch {
		case trig[i]:
			log.Append("drop", "", i)
		case i == 500:
			log.Append("use", "", i)
		default:
			log.Append("churn", "", i)
		}
	}
	return log
}
