// Package core implements the First-Aid supervisor: it runs a simulated
// program under checkpointing, catches failures, drives the diagnosis
// engine, generates and applies runtime patches, re-executes for recovery,
// validates the patches, and produces the bug report (paper Figure 1).
package core

import (
	"strings"
	"sync/atomic"

	"firstaid/internal/allocext"
	"firstaid/internal/app"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/guard"
	"firstaid/internal/heap"
	"firstaid/internal/monitor"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
	"firstaid/internal/vmem"
)

// Machine bundles one supervised process: address space, allocator,
// allocator extension, process, program, input log, checkpoint manager and
// error monitor. It provides the rollback/re-execution primitives the
// diagnosis and validation engines are built on.
type Machine struct {
	Mem  *vmem.Space
	Heap *heap.Heap
	Ext  *allocext.Ext
	Proc *proc.Proc
	Prog app.Program
	Log  *replay.Log
	Ckpt *checkpoint.Manager
	Mon  *monitor.Monitor

	// Tel is the machine's telemetry registry (nil when telemetry is off).
	// Every component of the machine is wired to it; a clone receives a
	// fresh registry of its own so validation goroutines never contend
	// with the main loop — the supervisor merges it back on collect.
	Tel *telemetry.Registry

	// currentPatches mirrors the attached patch source (allocext does
	// not expose it) so validation can detach and re-attach it around
	// the unpatched baseline run.
	currentPatches allocext.PatchSource

	// cfg is retained for Clone.
	cfg MachineConfig

	// simNow is the monotonic simulated timeline: process-clock progress
	// accumulates here and is never rewound by rollback, so recovery
	// work (re-executions, checkpoint costs) shows up as elapsed time —
	// the x-axis of the Figure-4 throughput plots.
	simNow    uint64
	lastClock uint64

	// trc is the machine's execution-trace emitter (zero when tracing is
	// off); every component is wired to it with TraceClock as the cycle
	// stamp. cloneSeq numbers validation clones and specSeq speculative
	// recovery clones, so each gets a distinct derived trace track.
	trc      trace.Emitter
	cloneSeq atomic.Uint64
	specSeq  atomic.Uint64

	// cancel, when set on a speculative clone, is polled between
	// re-executed events: a losing hypothesis tears down mid-window
	// instead of running to the horizon.
	cancel *atomic.Bool
}

// MachineConfig tunes a machine.
type MachineConfig struct {
	// MemLimit bounds the simulated address space (default 256 MiB).
	MemLimit uint32
	// Checkpoint configures the checkpoint manager.
	Checkpoint checkpoint.Config
	// DelayLimit caps delay-freed memory (default 1 MiB, the paper's
	// threshold).
	DelayLimit uint64
	// IntegrityCheckEvery, when non-zero, deploys the heap-integrity
	// error detector with the given event cadence (paper §3's pluggable
	// detectors). Silent heap corruption is then caught near its cause
	// instead of at the eventual crash.
	IntegrityCheckEvery int
	// Metrics, when set, wires every machine component (heap, checkpoint
	// manager, monitor, patch binding) to the registry. Nil keeps
	// telemetry off at zero cost.
	Metrics *telemetry.Registry
	// Trace, when set, wires every machine component to the execution
	// tracer: allocations, page faults, COW copies, checkpoints,
	// rollbacks and traps become cycle-stamped ring records. Nil keeps
	// tracing off at zero cost. (Distinct from the supervisor Config's
	// Trace callback, which observes replayed events for experiments.)
	Trace *trace.Tracer
	// TraceWorker is the trace track records are attributed to — the
	// fleet worker index, 0 for a standalone machine.
	TraceWorker int
	// SlowMemPaths disables the vmem fast paths (micro-TLB, aligned-word
	// accessors) and makes Clone deep-copy every heap page instead of
	// sharing them copy-on-write. The machine then runs on the original
	// reference implementation — the chaos cross-check runs every seed in
	// both configurations and asserts byte-identical outcomes.
	SlowMemPaths bool

	// GuardRate enables sampled guard-page detection (internal/guard): on
	// average one of every GuardRate allocation requests is redirected to
	// a guard-page-backed slot, so overflows and dangling accesses on
	// sampled objects trap at the faulting instruction with exact-site
	// attribution. 0 keeps sampling off at zero cost. The sampling coin
	// draws from the machine's seeded PRNG stream, so replays and clones
	// make identical decisions.
	GuardRate int
	// GuardForce lists call-site substrings that are always sampled
	// (rate 1/1), matched against the "/"-joined 3-level site key. A
	// non-empty list enables the guard tier even when GuardRate is 0.
	GuardForce []string
}

// guardEnabled reports whether this configuration constructs a guard tier.
func (c *MachineConfig) guardEnabled() bool {
	return c.GuardRate > 0 || len(c.GuardForce) > 0
}

// NewMachine builds a machine for prog over the input log, runs the
// program's Init, and takes checkpoint #0 so a pre-bug checkpoint always
// exists. It returns an error-free machine or panics on an Init fault
// (an Init fault is a harness bug, not a scenario First-Aid handles).
func NewMachine(prog app.Program, log *replay.Log, cfg MachineConfig) *Machine {
	if cfg.MemLimit == 0 {
		cfg.MemLimit = 256 << 20
	}
	mem := vmem.New(cfg.MemLimit)
	if cfg.SlowMemPaths {
		mem.SetFastPaths(false)
	}
	h := heap.New(mem)
	sites := callsite.NewTable()
	ext := allocext.New(h, sites)
	if cfg.DelayLimit != 0 {
		ext.DelayLimit = cfg.DelayLimit
	}
	p := proc.New(mem, ext)
	p.Sites = sites
	if cfg.guardEnabled() {
		attachGuard(mem, ext, p, sites, cfg)
	}
	m := &Machine{
		Mem:  mem,
		Heap: h,
		Ext:  ext,
		Proc: p,
		Prog: prog,
		Log:  log,
		Mon:  monitor.New(ext),
		Tel:  cfg.Metrics,
		cfg:  cfg,
	}
	if cfg.IntegrityCheckEvery > 0 {
		m.Mon.Detectors = append(m.Mon.Detectors,
			&monitor.HeapIntegrity{H: h, P: p, Every: cfg.IntegrityCheckEvery})
	}
	m.Ckpt = checkpoint.NewManager(cfg.Checkpoint, mem, h, p, ext, log)
	m.wireMetrics()
	m.wireTrace()
	if f := proc.Catch(func() { prog.Init(p) }); f != nil {
		panic("core: program Init faulted: " + f.Error())
	}
	m.Ckpt.Take()
	return m
}

// attachGuard constructs the sampled guard-page tier and binds it to the
// process's seeded PRNG stream, cycle clock and call-site table. It must
// run before the extension's SetState so checkpointed guard state has a
// home to land in.
func attachGuard(mem *vmem.Space, ext *allocext.Ext, p *proc.Proc, sites *callsite.Table, cfg MachineConfig) {
	g := guard.New(mem, guard.Config{Rate: cfg.GuardRate, Force: cfg.GuardForce})
	g.Bind(p.Rand, p.Clock, func(id callsite.ID) string {
		k := sites.Key(id)
		return strings.Join(k[:], "/")
	})
	ext.SetGuard(g)
}

// wireMetrics attaches every component to m.Tel. With a nil registry the
// components resolve nil instruments and the hot paths stay no-ops.
func (m *Machine) wireMetrics() {
	m.Heap.SetMetrics(m.Tel)
	m.Ckpt.SetMetrics(m.Tel)
	m.Mon.SetMetrics(m.Tel)
	if g := m.Ext.Guard(); g != nil {
		g.SetMetrics(m.Tel)
	}
}

// wireTrace attaches every component to the configured tracer. With a nil
// tracer the emitter is the zero value and every Emit is a nil check.
func (m *Machine) wireTrace() {
	m.trc = m.cfg.Trace.Emitter(m.cfg.TraceWorker, m.TraceClock)
	m.Mem.SetTracer(m.trc)
	m.Heap.SetTracer(m.trc)
	m.Proc.SetTracer(m.trc)
	m.Ckpt.SetTracer(m.trc)
	m.Mon.SetTracer(m.trc)
	if g := m.Ext.Guard(); g != nil {
		// Guard events get their own derived track so the sampled tier
		// reads as a separate timeline lane next to the worker's
		// allocation traffic.
		g.SetTracer(m.cfg.Trace.Emitter(trace.GuardTrack(m.cfg.TraceWorker), m.TraceClock))
	}
}

// TraceEmitter returns the machine's trace emitter (the zero Emitter when
// tracing is off). The supervisor stamps its recovery-phase records
// through this so they land on the machine's track with its clock.
func (m *Machine) TraceEmitter() trace.Emitter { return m.trc }

// TraceClock is the cycle stamp of the machine's trace records: the
// monotonic timeline plus process-clock progress not yet folded in by
// SyncClock. Unlike the raw process clock it never goes backward across a
// rollback, which keeps per-track trace timelines ordered.
func (m *Machine) TraceClock() uint64 {
	if c := m.Proc.Clock(); c > m.lastClock {
		return m.simNow + (c - m.lastClock)
	}
	return m.simNow
}

// Clone returns an independent copy of the machine in its current state:
// memory shared copy-on-write with the parent (cloning is O(page-table
// pointers), the paper's fork-style snapshot — deep page copies only under
// SlowMemPaths), plus cloned allocator, extension, process registers,
// call-site table and replay log. The clone can run on another goroutine —
// the substrate of the paper's parallel patch validation ("on a different
// processor core based on a snapshot of the program"). The Program instance
// is shared and must therefore be stateless (all nine evaluation apps keep
// every mutable byte in the virtual heap). Patches are NOT attached; attach
// a frozen source with SetPatches.
func (m *Machine) Clone() *Machine {
	// A validation clone emits on a derived validation track so its
	// records never interleave with the parent's in per-track timelines.
	return m.clone(trace.ValidationTrack(m.cfg.TraceWorker, m.cloneSeq.Add(1)-1))
}

// CloneForSpeculation clones the machine for a speculative recovery
// hypothesis: identical to Clone except the clone emits on a derived
// speculation track. Patches are not attached — speculative probes run in
// diagnostic mode, which never consults the patch source.
func (m *Machine) CloneForSpeculation() *Machine {
	return m.clone(trace.SpecTrack(m.cfg.TraceWorker, m.specSeq.Add(1)-1))
}

// clone implements Clone/CloneForSpeculation; track is the derived trace
// track the copy emits on.
func (m *Machine) clone(track int) *Machine {
	var mem *vmem.Space
	if m.cfg.SlowMemPaths {
		mem = m.Mem.Clone()
	} else {
		mem = m.Mem.CloneCOW()
	}
	h := heap.New(mem)
	h.SetState(m.Heap.State())
	sites := m.Proc.Sites.Clone()
	ext := allocext.New(h, sites)
	p := proc.New(mem, ext)
	p.Sites = sites
	if m.cfg.guardEnabled() {
		// Attach before SetState: the parent's checkpointed guard state
		// (countdown, slots, quarantine, adaptive records) lands in the
		// clone's tier, so both machines keep making identical decisions.
		attachGuard(mem, ext, p, sites, m.cfg)
	}
	ext.SetState(m.Ext.State())
	ext.DelayLimit = m.Ext.DelayLimit
	ext.MaxPatchBytes = m.Ext.MaxPatchBytes
	p.SetState(m.Proc.State())
	log := m.Log.Clone()
	clone := &Machine{
		Mem:  mem,
		Heap: h,
		Ext:  ext,
		Proc: p,
		Prog: m.Prog,
		Log:  log,
		Mon:  monitor.New(ext),
		cfg:  m.cfg,
	}
	if m.Tel != nil {
		// The clone runs on a validation goroutine: give it a registry of
		// its own so its hot paths never contend with the parent's, and
		// let the supervisor fold it into the parent when it collects the
		// validation result.
		clone.Tel = telemetry.NewRegistry()
		clone.cfg.Metrics = clone.Tel
	}
	if m.cfg.IntegrityCheckEvery > 0 {
		clone.Mon.Detectors = append(clone.Mon.Detectors,
			&monitor.HeapIntegrity{H: h, P: p, Every: m.cfg.IntegrityCheckEvery})
	}
	clone.Ckpt = checkpoint.NewManager(checkpoint.Config{}, mem, h, p, ext, log)
	clone.wireMetrics()
	clone.cfg.TraceWorker = track
	clone.wireTrace()
	clone.lastClock = p.Clock()
	return clone
}

// SetCancel installs the speculation cancel flag; ReExecute polls it
// between events. Call before the clone's goroutine starts.
func (m *Machine) SetCancel(c *atomic.Bool) { m.cancel = c }

// Telemetry returns the machine's registry (nil when telemetry is off);
// the Speculator merges finished clones' registries through it.
func (m *Machine) Telemetry() *telemetry.Registry { return m.Tel }

// Step consumes and executes one event in the current mode. It returns the
// fault (nil on success) and ok=false when the log is exhausted.
func (m *Machine) Step() (f *proc.Fault, ok bool) {
	ev, ok := m.Log.Next()
	if !ok {
		return nil, false
	}
	f = m.Mon.RunEvent(ev.Seq, func() { m.Prog.Handle(m.Proc, ev) })
	m.SyncClock()
	return f, true
}

// SyncClock folds forward process-clock progress into the monotonic
// timeline. Called automatically by Step; call it manually after
// out-of-band clock charges (checkpoint costs).
func (m *Machine) SyncClock() {
	if c := m.Proc.Clock(); c > m.lastClock {
		m.simNow += c - m.lastClock
		m.lastClock = c
	} else {
		m.lastClock = c
	}
}

// SimNow returns the monotonic simulated time in cycles.
func (m *Machine) SimNow() uint64 { return m.simNow }

// SimSeconds returns the monotonic simulated time in seconds.
func (m *Machine) SimSeconds() float64 { return float64(m.simNow) / proc.CyclesPerSecond }

// AddSimTime charges wall-of-machine time that has no process-clock
// counterpart (e.g. a baseline's process restart penalty).
func (m *Machine) AddSimTime(cycles uint64) { m.simNow += cycles }

// --- diagnosis.Machine implementation -------------------------------------------

// Checkpoints implements diagnosis.Machine.
func (m *Machine) Checkpoints() []*checkpoint.Checkpoint { return m.Ckpt.Checkpoints() }

// Rollback implements diagnosis.Machine. The monotonic timeline is rebased,
// not rewound: rollback itself is (nearly) free, but the re-executed work
// will accumulate again.
func (m *Machine) Rollback(cp *checkpoint.Checkpoint) {
	m.Ckpt.Rollback(cp)
	m.lastClock = m.Proc.Clock()
}

// MarkHeap implements diagnosis.Machine (Phase-1 heap marking).
func (m *Machine) MarkHeap() error { return m.Ext.MarkHeap() }

// SiteKey implements diagnosis.Machine.
func (m *Machine) SiteKey(id callsite.ID) callsite.Key { return m.Proc.Sites.Key(id) }

// ReExecute implements diagnosis.Machine: it re-runs events in diagnostic
// mode with the given environmental changes until the log cursor reaches
// `until` (exclusive upper bound on event sequence numbers is until itself)
// or a fault occurs. The machine must already be rolled back to the desired
// checkpoint. Canary scans run after every event so manifestations carry
// fresh context.
func (m *Machine) ReExecute(cs *allocext.ChangeSet, until int) diagnosis.Outcome {
	m.Ext.SetMode(allocext.ModeDiagnostic)
	m.Ext.SetChanges(cs)
	m.Ext.ResetManifests()
	m.Ext.ResetSeen()
	m.Mon.ScanEachEvent = true
	defer func() {
		m.Mon.ScanEachEvent = false
		m.Ext.SetMode(allocext.ModeNormal)
		m.Ext.SetChanges(nil)
	}()

	var fault *proc.Fault
	for m.Log.Cursor() < until {
		if m.cancel != nil && m.cancel.Load() {
			// A losing speculative hypothesis: stop mid-window. The engine
			// never consumes an interrupted outcome, so nothing downstream
			// observes the partial state.
			return diagnosis.Outcome{Interrupted: true}
		}
		f, ok := m.Step()
		if !ok {
			break
		}
		if f != nil {
			fault = f
			break
		}
	}
	m.Ext.Scan()
	// A window that survives to the horizon must also leave the raw
	// allocator's metadata intact: delay-free can mask a smashed chunk
	// header (the free that would trap is deferred) without the smash
	// itself being absorbed by any canaried padding. Such a "pass" is a
	// layout artifact, not evidence the checkpoint precedes the bug.
	var metaErr error
	if fault == nil {
		metaErr = m.Heap.CheckIntegrity()
	}
	// Copy the manifest set: the extension's instance is reset by the
	// next re-execution.
	return diagnosis.Outcome{
		Fault:     fault,
		Manifests: *m.Ext.Manifests(),
		MetaErr:   metaErr,
	}
}

// SeenAllocSites implements diagnosis.Machine (call-sites observed by the
// last ReExecute).
func (m *Machine) SeenAllocSites() []callsite.ID { return m.Ext.SeenAllocSites() }

// SeenFreeSites implements diagnosis.Machine.
func (m *Machine) SeenFreeSites() []callsite.ID { return m.Ext.SeenFreeSites() }

// --- validation support ----------------------------------------------------------

// RunValidation re-runs events in validation mode: randomized allocation
// (when randomize is set), full MM-operation tracing, and illegal-access
// instrumentation on every load/store. When patched is false the patch
// source is detached, producing the "without patch" baseline trace of the
// bug report. The machine must already be rolled back.
func (m *Machine) RunValidation(seed uint64, randomize, patched bool, until int) (*allocext.Trace, *proc.Fault) {
	m.Ext.SetMode(allocext.ModeValidation)
	m.Heap.SetRandom(randomize, seed)
	m.Proc.SetAccessChecker(m.Ext)
	m.Ext.BeginTrace()
	if !patched {
		m.Ext.SetPatches(nil)
	}
	defer func() {
		if !patched {
			m.Ext.SetPatches(m.currentPatches)
		}
		m.Proc.SetAccessChecker(nil)
		m.Heap.SetRandom(false, 0)
		m.Ext.SetMode(allocext.ModeNormal)
	}()

	var fault *proc.Fault
	for m.Log.Cursor() < until {
		f, ok := m.Step()
		if !ok {
			break
		}
		if f != nil {
			fault = f
			break
		}
	}
	return m.Ext.EndTrace(), fault
}

// SetPatches attaches the patch source, remembering it for baseline
// detach/re-attach during validation.
func (m *Machine) SetPatches(ps allocext.PatchSource) {
	m.currentPatches = ps
	m.Ext.SetPatches(ps)
}
