package core

import (
	"fmt"
	"testing"

	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// layoutBug is the §5 misdiagnosis scenario: a *semantic* bug whose wild
// write lands just past a heap object, at an offset derived from the
// object's own address. Diagnosis (which only observes canary corruption)
// concludes "buffer overflow" and pads the allocation site — but under the
// validation engine's randomized allocator the write's offset shifts from
// iteration to iteration, the illegal-access signatures disagree, and the
// patch must be revoked (paper §5: "the random side-effects of a patch
// must be distinguished from the desired effects").
type layoutBug struct{}

func (l *layoutBug) Name() string       { return "layoutbug" }
func (l *layoutBug) Bugs() []mmbug.Type { return nil } // ground truth: NOT a memory-management bug
func (l *layoutBug) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("init")()
	idx := p.Malloc(64)
	p.Memset(idx, 0, 64)
	p.SetRoot(0, idx)
}

func (l *layoutBug) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("handle")()
	p.Tick(100_000)
	buf := func() vmem.Addr {
		defer p.Enter("buf_alloc")()
		return p.Malloc(64)
	}()
	victim := func() vmem.Addr {
		defer p.Enter("victim_alloc")()
		return p.Malloc(48)
	}()
	p.StoreU32(victim, 0x56494354) // "VICT"
	p.Memset(victim+4, 0, 44)
	p.Memset(buf, byte(ev.N), 64)

	if ev.Kind == "wild" {
		// THE SEMANTIC BUG: a miscomputed pointer, derived from the
		// buffer's own address, written through blindly. The landing
		// offset depends on heap layout — the signature of a
		// *non*-memory-management bug that mimics an overflow.
		delta := vmem.Addr((uint32(buf) >> 3) % 32)
		junk := make([]byte, 24)
		for i := range junk {
			junk[i] = 0xBA
		}
		p.At("wild_write")
		p.Store(buf+64+delta, junk)
	}

	p.At("check_victim")
	p.Assert(p.LoadU32(victim) == 0x56494354, "victim record corrupted")
	for off := vmem.Addr(4); off < 44; off += 8 {
		p.Assert(p.LoadU32(victim+off) == 0, "victim payload corrupted at +%d", off)
	}
	func() {
		defer p.Enter("teardown")()
		p.Free(victim)
		p.Free(buf)
	}()
}

func (l *layoutBug) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < n; i++ {
		if trig[i] {
			log.Append("wild", "", i)
		}
		log.Append("work", "", i)
	}
	return log
}

func TestValidationCatchesLayoutDependentMisdiagnosis(t *testing.T) {
	prog := &layoutBug{}
	log := prog.Workload(400, []int{150})
	sup := NewSupervisor(prog, log, Config{})
	stats := sup.Run()

	if stats.Failures == 0 {
		t.Fatal("the semantic bug never failed")
	}
	// Diagnosis plausibly labels it a buffer overflow…
	sawOverflowFinding := false
	sawRevocation := false
	for _, rec := range sup.Recoveries {
		for _, fd := range rec.Result.Findings {
			if fd.Bug == mmbug.BufferOverflow {
				sawOverflowFinding = true
			}
		}
		if rec.ValidationResult != nil && !rec.ValidationResult.Consistent {
			sawRevocation = true
			t.Logf("validation rejected the patch: %s", rec.ValidationResult.Reason)
		}
	}
	if !sawOverflowFinding {
		t.Skip("diagnosis did not mislabel the semantic bug in this layout; scenario not exercised")
	}
	// …but validation must refuse it.
	if !sawRevocation {
		t.Fatal("validation accepted a layout-dependent patch")
	}
	// No validated patch may survive in the pool.
	for _, p := range sup.Pool.Active() {
		if p.Validated {
			t.Fatalf("misdiagnosed patch survived validated: %v", p)
		}
	}
	// The run must still complete (the fallback eventually drops the
	// poisonous request rather than looping forever).
	if stats.Events == 0 || stats.Skipped == 0 {
		t.Fatalf("fallback skip not exercised: %+v", stats)
	}
	t.Logf("stats: %+v, recoveries: %d", stats, len(sup.Recoveries))
}

func TestLayoutBugDescription(t *testing.T) {
	// The scenario itself must be a working program without triggers.
	prog := &layoutBug{}
	log := prog.Workload(100, nil)
	sup := NewSupervisor(prog, log, Config{})
	if stats := sup.Run(); stats.Failures != 0 {
		t.Fatalf("clean run failed: %+v", stats)
	}
	_ = fmt.Sprintf
}
