package core

import (
	"testing"

	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// bigBufServer frees a large (mmap-path) response buffer while an async
// writer still holds the pointer. Unlike small-object dangling reads —
// which silently return recycled bytes until an integrity check trips —
// reading a munmapped region faults instantly (SIGSEGV), the classic
// large-buffer use-after-free. The delay-free patch keeps the mapping
// alive, so the stale read returns preserved data and the request
// completes.
type bigBufServer struct{}

func (b *bigBufServer) Name() string       { return "bigbuf" }
func (b *bigBufServer) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.DanglingRead} }
func (b *bigBufServer) Init(p *proc.Proc) {
	defer p.Enter("main")()
	p.SetRoot(0, 0) // pending async-writer pointer
}

func (b *bigBufServer) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("serve")()
	p.Tick(100_000)
	switch ev.Kind {
	case "respond":
		buf := func() vmem.Addr {
			defer p.Enter("response_alloc")()
			return p.Malloc(512 << 10) // mmap path
		}()
		p.Memset(buf, byte(ev.N), 4096)
		if ev.N != 0 {
			// BUG path: hand the buffer to the async writer…
			p.SetRoot(0, buf)
		}
		// …but free it at the end of the handler regardless.
		func() {
			defer p.Enter("response_free")()
			p.Free(buf)
		}()
	case "flush":
		// The async writer drains the buffer it was handed.
		stale := p.RootAddr(0)
		if stale != 0 {
			p.At("drain")
			p.Load(stale, 4096) // SIGSEGV on a munmapped region
			p.SetRoot(0, 0)
		}
	default:
		p.Assert(false, "bigbuf: unknown event %q", ev.Kind)
	}
}

func (b *bigBufServer) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < n; i++ {
		if trig[i] {
			log.Append("respond", "", i+1) // buggy: pointer escapes
			log.Append("flush", "", 0)
		}
		log.Append("respond", "", 0)
	}
	return log
}

func TestDanglingReadOfMmappedBufferFaultsAndIsCured(t *testing.T) {
	prog := &bigBufServer{}
	log := prog.Workload(500, []int{150, 350})
	sup := NewSupervisor(prog, log, Config{})
	stats := sup.Run()

	if stats.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (second trigger prevented)", stats.Failures)
	}
	rec := sup.Recoveries[0]
	if rec.Skipped {
		t.Fatalf("fell back to skip:\n%v", rec.Result.Log)
	}
	// The original failure is a hard access violation, not an assert.
	if rec.Fault.Kind != proc.AccessViolation {
		t.Fatalf("fault kind = %v, want access violation (munmapped read)", rec.Fault.Kind)
	}
	if len(rec.Result.Findings) != 1 || rec.Result.Findings[0].Bug != mmbug.DanglingRead {
		t.Fatalf("findings = %+v\n%v", rec.Result.Findings, rec.Result.Log)
	}
	site := sup.M.SiteKey(rec.Result.Findings[0].Sites[0])
	if site.Leaf() != "response_free" {
		t.Fatalf("patched site = %v", site)
	}
	if !rec.Validated {
		t.Errorf("validation failed: %s", rec.ValidationResult.Reason)
	}
}
