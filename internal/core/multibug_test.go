package core

import (
	"strings"
	"testing"

	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// multiBug embeds TWO different bug classes whose manifestations land in
// the same failure region — the case §4.2's algorithm "carefully
// separates": a buffer overflow in the request parser AND a dangling
// pointer read through a config cache. The overflow crashes first; the
// dangling read would crash a few events later. The program survives only
// if BOTH are patched, so Phase 2 must identify both classes and the final
// verification must hold with both patches.
type multiBug struct{}

func (m *multiBug) Name() string       { return "multibug" }
func (m *multiBug) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow, mmbug.DanglingRead} }

const (
	mbRootCfg     = 0 // current config object
	mbRootStale   = 1 // stale pointer kept across reloads (the dangling read)
	mbRootStaleID = 2
)

func (m *multiBug) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("init")()
	m.newConfig(p, 1)
	p.SetRoot(mbRootStale, 0)
}

func (m *multiBug) newConfig(p *proc.Proc, id uint32) {
	defer p.Enter("config_load")()
	cfg := func() vmem.Addr {
		defer p.Enter("cfg_alloc")()
		return p.Malloc(88)
	}()
	p.StoreU32(cfg, 0x43464947) // "CFIG"
	p.StoreU32(cfg+4, id)
	p.Memset(cfg+8, byte(id), 80)
	p.SetRoot(mbRootCfg, cfg)
}

func (m *multiBug) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("dispatch")()
	p.Tick(100_000)
	switch ev.Kind {
	case "req":
		m.request(p, ev.Data)
	case "pin":
		// Hand out a reference to the current config (a session caches it).
		p.SetRoot(mbRootStale, p.Root(mbRootCfg))
		p.SetRoot(mbRootStaleID, p.LoadU32(p.RootAddr(mbRootCfg)+4))
	case "reload":
		// BUG 2 (dangling read source): reload frees the old config but
		// sessions keep their cached pointers.
		old := p.RootAddr(mbRootCfg)
		func() {
			defer p.Enter("config_reload")()
			defer p.Enter("cfg_free")()
			p.Free(old)
		}()
		m.newConfig(p, uint32(ev.N))
	case "session":
		// The dangling read: a session revalidates its cached config.
		stale := p.RootAddr(mbRootStale)
		if stale != 0 {
			p.At("session_check")
			p.Assert(p.LoadU32(stale) == 0x43464947, "session config magic lost")
			p.Assert(p.LoadU32(stale+4) == p.Root(mbRootStaleID), "session config rebound")
			p.SetRoot(mbRootStale, 0)
		}
	default:
		p.Assert(false, "multibug: unknown event %q", ev.Kind)
	}
}

// request is the squid-style parser: a fixed 128-byte buffer, a state
// block allocated right after it, and an unchecked copy — BUG 1.
func (m *multiBug) request(p *proc.Proc, url string) {
	defer p.Enter("parse_request")()
	buf := func() vmem.Addr {
		defer p.Enter("url_alloc")()
		return p.Malloc(128)
	}()
	state := func() vmem.Addr {
		defer p.Enter("state_alloc")()
		return p.Malloc(64)
	}()
	p.StoreU32(state, 0x53544154) // "STAT"
	p.Memset(state+4, 0, 60)
	p.At("copy_url")
	p.StoreString(buf, url)
	p.At("check_state")
	p.Assert(p.LoadU32(state) == 0x53544154, "request state corrupted")
	func() {
		defer p.Enter("req_free")()
		p.Free(state)
		p.Free(buf)
	}()
}

// Workload: normal requests with periodic pin/reload/session config churn
// kept safe (session always revalidates before any reload). Each trigger
// injects the combined sequence: pin → reload (creates the dangling
// pointer) → a few requests (recycles the freed config) → an oversized URL
// (overflow crash) → more requests → session (the dangling read, a few
// events after the overflow's failure point).
func (m *multiBug) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	reload := 100
	for i := 0; log.Len() < n; i++ {
		if trig[i] {
			log.Append("pin", "", 0)
			log.Append("reload", "", reload)
			reload++
			for j := 0; j < 6; j++ {
				log.Append("req", "/recycle/page", 0)
			}
			log.Append("req", "/exploit/"+strings.Repeat("A", 200), 0) // BUG 1 fires here
			for j := 0; j < 4; j++ {
				log.Append("req", "/tail/page", 0)
			}
			log.Append("session", "", 0) // BUG 2 would fire here
		}
		switch {
		case i%13 == 12:
			log.Append("pin", "", 0)
			log.Append("session", "", 0) // benign: no reload in between
		case i%9 == 8:
			log.Append("reload", "", reload)
			reload++
		default:
			log.Append("req", "/site/page", 0)
		}
	}
	return log
}

func TestMultipleBugClassesInOneFailureRegion(t *testing.T) {
	prog := &multiBug{}
	log := prog.Workload(900, []int{250})
	sup := NewSupervisor(prog, log, Config{})
	stats := sup.Run()

	if stats.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (both bugs patched from one diagnosis)", stats.Failures)
	}
	if len(sup.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(sup.Recoveries))
	}
	rec := sup.Recoveries[0]
	if rec.Skipped {
		t.Fatalf("fell back to skip\n%v", rec.Result.Log)
	}
	found := map[mmbug.Type][]string{}
	for _, fd := range rec.Result.Findings {
		for _, s := range fd.Sites {
			found[fd.Bug] = append(found[fd.Bug], sup.M.SiteKey(s).String())
		}
	}
	if len(found) != 2 {
		t.Fatalf("bug classes diagnosed = %v, want both overflow and dangling read\nlog:\n%s",
			found, strings.Join(rec.Result.Log, "\n"))
	}
	if sites := found[mmbug.BufferOverflow]; len(sites) != 1 || !strings.HasPrefix(sites[0], "url_alloc") {
		t.Errorf("overflow sites = %v", sites)
	}
	if sites := found[mmbug.DanglingRead]; len(sites) != 1 || !strings.HasPrefix(sites[0], "cfg_free") {
		t.Errorf("dangling-read sites = %v", sites)
	}
	if !rec.Validated {
		reason := ""
		if rec.ValidationResult != nil {
			reason = rec.ValidationResult.Reason
		}
		t.Errorf("validation failed: %s", reason)
	}
	t.Logf("diagnosed both classes in %d rollbacks: %v", rec.Result.Rollbacks, found)
}

func TestMultiBugCleanRun(t *testing.T) {
	prog := &multiBug{}
	log := prog.Workload(400, nil)
	sup := NewSupervisor(prog, log, Config{})
	if stats := sup.Run(); stats.Failures != 0 {
		t.Fatalf("clean run failed: %+v", stats)
	}
}
