package core

import (
	"sync"
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/patch"
)

// TestConcurrentProcessesShareOnePool models the paper's deployment (§3):
// several processes of the same program run at once, all attached to the
// central patch pool. Whichever process hits the bug first diagnoses it
// and publishes the patch; the others pick it up live. Invariants checked:
// every process completes, the pool converges to exactly one validated
// patch, and total failures are far below one-per-trigger-per-process.
func TestConcurrentProcessesShareOnePool(t *testing.T) {
	pool := patch.NewPool("squid")

	// Process 0 hits the bug, diagnoses, and publishes the patch.
	first, _ := apps.New("squid")
	sup0 := NewSupervisor(first, first.Workload(500, []int{150}), Config{Pool: pool})
	if st := sup0.Run(); st.Failures != 1 {
		t.Fatalf("seed process failures = %d", st.Failures)
	}

	// Three further processes now run concurrently against the live
	// shared pool — concurrent readers of a pool that a fourth process
	// could still be mutating — and every exploit must be absorbed.
	const procs = 3
	var wg sync.WaitGroup
	stats := make([]Stats, procs)
	for i := 0; i < procs; i++ {
		i := i
		a, _ := apps.New("squid")
		log := a.Workload(900, []int{100 + i*133, 500 + i*97})
		sup := NewSupervisor(a, log, Config{Pool: pool})
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i] = sup.Run()
		}()
	}
	wg.Wait()

	for i, st := range stats {
		if st.Failures != 0 {
			t.Errorf("process %d failed %d times despite the shared patch", i, st.Failures)
		}
		if st.Events == 0 {
			t.Errorf("process %d processed nothing", i)
		}
	}
	active := pool.Active()
	if len(active) != 1 {
		t.Fatalf("pool has %d active patches, want 1 (coalesced)", len(active))
	}
	if !active[0].Validated {
		t.Error("shared patch never validated")
	}
}

// TestConcurrentDiagnosesCoalesceInPool is the all-concurrent smoke test:
// several processes may race to the same first failure; however many win,
// the pool must coalesce to a single patch and every process must finish.
func TestConcurrentDiagnosesCoalesceInPool(t *testing.T) {
	const procs = 4
	pool := patch.NewPool("squid")
	var wg sync.WaitGroup
	stats := make([]Stats, procs)
	for i := 0; i < procs; i++ {
		i := i
		a, _ := apps.New("squid")
		log := a.Workload(800, []int{100 + i*200})
		sup := NewSupervisor(a, log, Config{Pool: pool})
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i] = sup.Run()
		}()
	}
	wg.Wait()

	total := 0
	for _, st := range stats {
		total += st.Failures
	}
	if total == 0 {
		t.Fatal("no process ever failed")
	}
	if total > procs {
		t.Fatalf("more failures (%d) than first-triggers (%d)", total, procs)
	}
	if active := pool.Active(); len(active) != 1 {
		t.Fatalf("pool did not coalesce: %v", active)
	}
}

// TestConcurrentProcessesDistinctPrograms must not cross-contaminate:
// pools are per-program.
func TestConcurrentProcessesDistinctPrograms(t *testing.T) {
	var wg sync.WaitGroup
	pools := map[string]*patch.Pool{}
	names := []string{"squid", "cvs", "mutt"}
	sups := make([]*Supervisor, len(names))
	for i, name := range names {
		pools[name] = patch.NewPool(name)
		a, _ := apps.New(name)
		log := a.Workload(600, []int{200})
		sups[i] = NewSupervisor(a, log, Config{Pool: pools[name]})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sups[i].Run()
		}(i)
	}
	wg.Wait()
	for name, pool := range pools {
		if len(pool.Active()) == 0 {
			t.Errorf("%s: no patch generated", name)
		}
		for _, p := range pool.Active() {
			// A squid patch must never reference CVS call-sites etc.
			if name == "cvs" && p.Site.Leaf() != "xfree" {
				t.Errorf("cvs pool has foreign patch %v", p)
			}
		}
	}
}
