package core

import (
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/proc"
)

func TestCloneIsIndependent(t *testing.T) {
	a, _ := apps.New("squid")
	log := a.Workload(200, nil)
	m := NewMachine(a, log, MachineConfig{})
	// Advance a bit.
	for i := 0; i < 20; i++ {
		if f, ok := m.Step(); !ok || f != nil {
			t.Fatalf("step %d: %v", i, f)
		}
	}

	clone := m.Clone()
	if clone.Proc.Clock() != m.Proc.Clock() {
		t.Fatal("clone clock differs")
	}
	if clone.Log.Cursor() != m.Log.Cursor() {
		t.Fatal("clone cursor differs")
	}

	// Run both to completion independently; identical deterministic
	// machines must agree, and neither may disturb the other.
	done := make(chan uint64)
	go func() {
		for {
			if f, ok := clone.Step(); !ok {
				break
			} else if f != nil {
				t.Error(f)
				break
			}
		}
		done <- clone.Proc.Clock()
	}()
	for {
		if f, ok := m.Step(); !ok {
			break
		} else if f != nil {
			t.Fatal(f)
		}
	}
	cloneClock := <-done
	if cloneClock != m.Proc.Clock() {
		t.Fatalf("divergence: clone %d vs original %d", cloneClock, m.Proc.Clock())
	}
}

func TestCloneHeapIsolation(t *testing.T) {
	a, _ := apps.New("cvs")
	log := a.Workload(50, nil)
	m := NewMachine(a, log, MachineConfig{})
	clone := m.Clone()

	// Mutate the original heap directly; the clone must not see it.
	var addr uint32
	if f := proc.Catch(func() {
		defer m.Proc.Enter("test")()
		addr = m.Proc.Malloc(64)
		m.Proc.StoreU32(addr, 0xDEAD)
	}); f != nil {
		t.Fatal(f)
	}
	if v, err := clone.Mem.ReadU32(addr); err == nil && v == 0xDEAD {
		t.Fatal("clone observed original's write")
	}
}

func TestParallelValidationMatchesSynchronous(t *testing.T) {
	for _, name := range []string{"squid", "apache", "m4", "cvs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(parallel bool) (*Supervisor, Stats) {
				a, _ := apps.New(name)
				log := a.Workload(900, []int{230, 700})
				sup := NewSupervisor(a, log, Config{ParallelValidation: parallel})
				return sup, sup.Run()
			}
			supSync, stSync := run(false)
			supPar, stPar := run(true)

			if stSync.Failures != stPar.Failures {
				t.Fatalf("failures differ: sync %d, parallel %d", stSync.Failures, stPar.Failures)
			}
			if len(supSync.Recoveries) != len(supPar.Recoveries) {
				t.Fatalf("recovery counts differ")
			}
			for i := range supSync.Recoveries {
				rs, rp := supSync.Recoveries[i], supPar.Recoveries[i]
				if rs.Validated != rp.Validated {
					t.Errorf("recovery %d: validated sync=%v parallel=%v", i, rs.Validated, rp.Validated)
				}
				if rp.ValidationResult == nil {
					t.Fatalf("recovery %d: parallel validation never collected", i)
				}
				if rs.ValidationResult.Consistent != rp.ValidationResult.Consistent {
					t.Errorf("recovery %d: consistency differs", i)
				}
				if rp.Report == nil {
					t.Errorf("recovery %d: report missing after parallel validation", i)
				}
			}
			if len(supPar.Pool.Active()) != len(supSync.Pool.Active()) {
				t.Fatalf("pool sizes differ: %d vs %d", len(supPar.Pool.Active()), len(supSync.Pool.Active()))
			}
		})
	}
}

func TestParallelValidationDoesNotDelayRecovery(t *testing.T) {
	// The recovery wall time in parallel mode must not include the
	// validation iterations. Apache is the heavyweight case.
	a, _ := apps.New("apache")
	log := a.Workload(700, []int{230})
	sup := NewSupervisor(a, log, Config{ParallelValidation: true})
	sup.Run()
	if len(sup.Recoveries) == 0 {
		t.Fatal("no recovery")
	}
	rec := sup.Recoveries[0]
	if !rec.Validated {
		t.Fatalf("parallel validation failed: %+v", rec.ValidationResult)
	}
	// Validation work (4 full region replays with instrumentation) is
	// comparable to diagnosis; if recovery included it the ratio would
	// be ~1. Generous assertion: recovery excludes at least half of the
	// validation time.
	if rec.ValidationWall == 0 {
		t.Fatal("validation wall time not recorded")
	}
	t.Logf("recovery %v, validation (async) %v", rec.RecoveryWall, rec.ValidationWall)
}

func TestParallelValidationRevokesBadPatchEventually(t *testing.T) {
	prog := &layoutBug{}
	log := prog.Workload(500, []int{150})
	sup := NewSupervisor(prog, log, Config{ParallelValidation: true})
	sup.Run()

	sawRevocation := false
	for _, rec := range sup.Recoveries {
		if rec.ValidationResult != nil && !rec.ValidationResult.Consistent {
			sawRevocation = true
		}
	}
	if !sawRevocation {
		t.Skip("layout bug not misdiagnosed in this configuration")
	}
	for _, p := range sup.Pool.Active() {
		if p.Validated {
			t.Fatalf("bad patch validated: %v", p)
		}
	}
}
