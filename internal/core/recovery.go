package core

import (
	"fmt"
	"time"

	"firstaid/internal/diagnosis"
	"firstaid/internal/ledger"
	"firstaid/internal/mmbug"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/report"
	"firstaid/internal/stages"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
	"firstaid/internal/validate"
)

// recoveryEpisode carries one recovery's supervisor-side state across the
// stages of the recovery plan: the wall-clock origin, the replay window,
// the telemetry/ledger handles opened by the monitor stage, and the
// Recovery record built by triage for the later stages to complete.
type recoveryEpisode struct {
	s *Supervisor
	f *proc.Fault

	t0         time.Time
	failCursor int
	until      int

	span  *telemetry.Span
	trc   trace.Emitter
	entry *ledger.Entry

	rec *Recovery
	res diagnosis.Result
}

// recoveryPlan is the supervisor's recovery strategy as data: the monitor
// stage opens the episode, the four diagnosis stages drive the engine
// session (with the guard fast path leading), and triage/patch-gen/
// rollback/validate complete Figure 1's cycle. Terminal outcomes
// (non-deterministic screen, skip after repeated failure) stop the plan
// early from triage.
func (s *Supervisor) recoveryPlan(ep *recoveryEpisode) stages.Plan {
	return stages.Plan{Name: "first-aid", Stages: []stages.Stage{
		&monitorStage{ep},
		stages.EvidenceConfirm,
		stages.Screen,
		stages.CheckpointSelect,
		stages.Identify,
		&triageStage{ep},
		&patchGenStage{ep},
		&rollbackStage{ep},
		&validateStage{ep},
	}}
}

// newSession builds the diagnosis engine for this episode and opens its
// session; installed as Ctx.NewSession so the diagnosis stages stay
// decoupled from engine construction.
func (ep *recoveryEpisode) newSession(c *stages.Ctx) *diagnosis.Session {
	s, f := ep.s, ep.f
	dcfg := s.cfg.Diagnosis
	dcfg.Metrics = s.M.Tel
	dcfg.Span = ep.span
	dcfg.Trace = ep.trc
	dcfg.DetectedEarly = f.Early
	if f.GuardBug != mmbug.None {
		// A sampled guard-page hit carries direct evidence — class, exact
		// call-site, and the clock of the decisive operation. Hand it to the
		// engine so a single confirmation re-execution can replace the
		// phase-1 checkpoint search and phase-2 identification.
		dcfg.Evidence = &diagnosis.Evidence{Bug: f.GuardBug, Site: f.GuardSite, Clock: f.GuardClock}
	}
	dcfg.Ledger = ep.entry
	if s.spec != nil {
		dcfg.Prober = s.spec
	}
	return diagnosis.New(s.M, dcfg).Session(c.Until)
}

// monitorStage opens the recovery episode: the telemetry span, the ledger
// lifecycle entry with the fault and guard-evidence conditions, and the
// trace phase. It leaves the entry/span/trace handles on the context for
// the downstream stages.
type monitorStage struct{ ep *recoveryEpisode }

func (st *monitorStage) Name() string { return "monitor" }

func (st *monitorStage) Run(c *stages.Ctx) stages.Status {
	ep := st.ep
	s, f := ep.s, ep.f

	// One telemetry span per pipeline episode: the diagnosis engine adds
	// the phase-1/phase-2 phases, the later stages the patch-gen, rollback
	// and validation phases plus the terminal outcome. On a nil registry
	// the span is nil and every call is a no-op. The execution trace gets
	// the same structure as nested phase records on the machine's track.
	ep.span = s.M.Tel.Journal().Begin("recovery", f.Event)
	ep.trc = s.M.TraceEmitter()

	// Open the lifecycle object before any recovery work: TraceFrom is the
	// trace cursor at this instant, so the entry's trace slice covers every
	// record the recovery emits.
	ep.entry = s.ldg.Begin(ledger.Meta{
		Source:    s.M.Prog.Name(),
		Worker:    s.cfg.Machine.TraceWorker,
		Mode:      s.mode(),
		Event:     f.Event,
		Repro:     s.cfg.Repro,
		Cycles:    s.M.TraceClock(),
		TraceFrom: ep.trc.Tracer().Emitted(),
	})
	ep.entry.Add(ledger.Condition{
		Type:    ledger.FaultObserved,
		Clock:   f.Clock,
		Message: f.Error(),
		Fault:   ledger.NewFaultInfo(f),
	})
	if f.GuardBug != mmbug.None {
		attribution := "quarantined-free-site"
		if f.GuardBug.AtAllocation() {
			attribution = "alloc-site"
		}
		ep.entry.Add(ledger.Condition{
			Type:    ledger.GuardEvidence,
			Clock:   f.GuardClock,
			Message: fmt.Sprintf("sampled guard page claimed %v at %v", f.GuardBug, s.M.SiteKey(f.GuardSite)),
			Guard: &ledger.GuardInfo{
				Bug:         f.GuardBug.String(),
				Site:        s.M.SiteKey(f.GuardSite).String(),
				Clock:       f.GuardClock,
				Attribution: attribution,
			},
		})
	}
	ep.entry.Run()

	ep.trc.Emit(trace.KPhaseBegin, trace.PhaseRecovery, uint64(f.Event))
	if f.Early {
		// The trap came from a protected region's eager check: corruption
		// was caught at the event that caused it, not at a later use. The
		// journal and trace record the zero-event detection latency.
		ep.span.AddPhase("early-detect", 0, "same-event", 0)
		ep.trc.Emit(trace.KPhaseBegin, trace.PhaseEarlyDetect, uint64(f.Event))
		ep.trc.Emit(trace.KPhaseEnd, trace.PhaseEarlyDetect, 0)
	}

	c.Entry, c.Span, c.Trace = ep.entry, ep.span, ep.trc
	return stages.Next
}

// triageStage seals the diagnosis session, records the Recovery and its
// ledger projection (including the speculation summary), and routes the
// terminal outcomes: non-deterministic failures continue from the screen's
// post-failure state, undiagnosable or repeatedly-failing events are
// skipped. Both stop the plan.
type triageStage struct{ ep *recoveryEpisode }

func (st *triageStage) Name() string { return "triage" }

func (st *triageStage) Run(c *stages.Ctx) stages.Status {
	ep := st.ep
	s, f := ep.s, ep.f

	res := c.Session().Result()
	ep.res = res
	c.Result = &ep.res
	rec := &Recovery{Fault: f, Result: res, Ledger: ep.entry}
	ep.rec = rec
	s.Recoveries = append(s.Recoveries, rec)
	if s.spec != nil {
		if es := s.spec.Episode(); es.Launched > 0 {
			// Excluded from the canonical projection: speculation changes
			// wall time, never verdicts, so the summary is observability
			// only and serial runs must stay byte-identical.
			ep.entry.Add(ledger.Condition{
				Type:  ledger.SpeculationSummary,
				Clock: f.Clock,
				Message: fmt.Sprintf("%d hypothesis(es) raced on clones: %d consumed, %d cancelled, %d standby",
					es.Launched, es.Won, es.Cancelled, es.StandbyHits),
				Speculation: &ledger.SpecInfo{
					Launched:  es.Launched,
					Won:       es.Won,
					Cancelled: es.Cancelled,
					Standby:   es.StandbyHits,
				},
			})
		}
	}
	ep.entry.Update(func(d *ledger.Diagnosis) {
		d.Rollbacks = res.Rollbacks
		d.FastPath = res.FastPath
		d.DiagLog = append([]string(nil), res.Log...)
		d.FaultRef = f
		d.SiteKey = s.M.SiteKey
	})

	if res.Nondeterministic {
		// The plain re-execution already carried the program past the
		// failure region; continue from its state.

		rec.RecoveryWall = time.Since(ep.t0)
		s.met.nondet.Inc()
		s.met.recoveryWallUS.Observe(uint64(rec.RecoveryWall.Microseconds()))
		ep.span.End("nondeterministic")
		ep.trc.Emit(trace.KPhaseEnd, trace.PhaseRecovery, uint64(res.Rollbacks))
		ep.entry.Update(func(d *ledger.Diagnosis) { d.RecoverySec = rec.RecoveryWall.Seconds() })
		ep.entry.Close(true, "nondeterministic", s.M.TraceClock(), ep.trc.Tracer().Emitted())
		rec.Report = report.FromDiagnosis(ep.entry.Snapshot())
		return stages.Stop
	}

	s.retries[f.Event]++
	if !res.OK() || s.retries[f.Event] > s.cfg.MaxRetriesPerEvent {
		s.skipFailingEvent(ep.failCursor)
		rec.Skipped = true
		rec.RecoveryWall = time.Since(ep.t0)
		s.met.skipped.Inc()
		s.met.recoveryWallUS.Observe(uint64(rec.RecoveryWall.Microseconds()))
		ep.span.End("skipped")
		ep.trc.Emit(trace.KPhaseEnd, trace.PhaseRecovery, uint64(res.Rollbacks))
		ep.entry.Update(func(d *ledger.Diagnosis) { d.RecoverySec = rec.RecoveryWall.Seconds() })
		ep.entry.Close(false, "skipped", s.M.TraceClock(), ep.trc.Tracer().Emitted())
		rec.Report = report.FromDiagnosis(ep.entry.Snapshot())
		return stages.Stop
	}
	return stages.Next
}

// patchGenStage turns the diagnosis findings into pool patches.
type patchGenStage struct{ ep *recoveryEpisode }

func (st *patchGenStage) Name() string { return "patch-gen" }

func (st *patchGenStage) Run(c *stages.Ctx) stages.Status {
	ep := st.ep
	s, f := ep.s, ep.f
	rec, res := ep.rec, ep.res

	endGen := ep.span.Phase("patch-gen")
	ep.trc.Emit(trace.KPhaseBegin, trace.PhasePatchGen, uint64(f.Event))
	for _, fd := range res.Findings {
		for _, site := range fd.Sites {
			np := patch.New(fd.Bug, s.M.SiteKey(site))
			np.Origin = fmt.Sprintf("diagnosed from failure at event #%d", f.Event)
			rec.Patches = append(rec.Patches, s.Pool.Add(np))
		}
	}
	s.Bound.Invalidate()
	s.met.patchesMade.Add(uint64(len(rec.Patches)))
	endGen("", len(rec.Patches))
	ep.trc.Emit(trace.KPhaseEnd, trace.PhasePatchGen, uint64(len(rec.Patches)))
	if len(rec.Patches) > 0 {
		pis := make([]ledger.PatchInfo, len(rec.Patches))
		for i, p := range rec.Patches {
			pis[i] = ledger.NewPatchInfo(p)
		}
		ep.entry.Add(ledger.Condition{
			Type:    ledger.PatchGenerated,
			Clock:   f.Clock,
			Message: fmt.Sprintf("%d patch(es) generated from %d finding(s)", len(rec.Patches), len(res.Findings)),
			Patches: pis,
		})
	}
	return stages.Next
}

// rollbackStage rolls back to the chosen checkpoint so the main loop
// re-executes from there in normal mode with the patches active, and
// closes the recovery timing.
type rollbackStage struct{ ep *recoveryEpisode }

func (st *rollbackStage) Name() string { return "rollback" }

func (st *rollbackStage) Run(c *stages.Ctx) stages.Status {
	ep := st.ep
	s, f := ep.s, ep.f
	rec, res := ep.rec, ep.res

	endRb := ep.span.Phase("rollback")
	ep.trc.Emit(trace.KPhaseBegin, trace.PhaseRollback, uint64(res.Checkpoint.Seq))
	s.M.Rollback(res.Checkpoint)
	s.M.Ckpt.DropAfter(res.Checkpoint)
	if f.GuardBug != mmbug.None && f.GuardSite != 0 {
		// The site is a confirmed offender: pin its sampling rate to 1/1
		// before any validation clone is taken so clones inherit the boost.
		s.M.Ext.GuardBoost(f.GuardSite)
	}
	endRb("", 1)
	ep.trc.Emit(trace.KPhaseEnd, trace.PhaseRollback, 1)

	rec.RecoveryWall = time.Since(ep.t0)
	s.met.recoveries.Inc()
	s.met.recoveryWallUS.Observe(uint64(rec.RecoveryWall.Microseconds()))
	return stages.Next
}

// validateStage validates the installed patches on the buggy region. In
// parallel mode a cloned machine validates on another goroutine while the
// main loop resumes immediately — the paper's design; otherwise it runs
// inline, timed apart from recovery.
type validateStage struct{ ep *recoveryEpisode }

func (st *validateStage) Name() string { return "validate" }

func (st *validateStage) Run(c *stages.Ctx) stages.Status {
	ep := st.ep
	s, f := ep.s, ep.f
	rec, res := ep.rec, ep.res
	span, trc, until := ep.span, ep.trc, ep.until

	switch {
	case s.cfg.DisableValidation:
		s.finishRecovery(rec)
		span.End("recovered")
		trc.Emit(trace.KPhaseEnd, trace.PhaseRecovery, uint64(res.Rollbacks))
	case s.cfg.ParallelValidation:
		clone := s.M.Clone()
		frozen := s.Pool.Clone().Bind(clone.Proc.Sites)
		frozen.SetMetrics(clone.Tel)
		clone.SetPatches(frozen)
		cpClone := clone.Ckpt.Take()
		pv := &pendingValidation{
			rec:      rec,
			done:     make(chan struct{}),
			span:     span,
			cloneTel: clone.Tel,
		}
		s.pending = append(s.pending, pv)
		s.met.queueDepth.Set(int64(len(s.pending)))
		// The main loop resumes now; the validation runs concurrently and
		// traces on the clone's derived track, so its B/E pair nests
		// cleanly even while the parent track keeps executing.
		trc.Emit(trace.KPhaseEnd, trace.PhaseRecovery, uint64(res.Rollbacks))
		go func() {
			ctrc := clone.TraceEmitter()
			ctrc.Emit(trace.KPhaseBegin, trace.PhaseValidation, uint64(f.Event))
			tv := time.Now()
			v := validate.New(clone, s.cfg.Validation).Validate(cpClone, until)
			rec.ValidationResult = &v
			rec.ValidationWall = time.Since(tv)
			ctrc.Emit(trace.KPhaseEnd, trace.PhaseValidation, uint64(len(v.Traces)))
			close(pv.done)
		}()
		// The report — and the span — are completed when the validation
		// is collected on the main goroutine.
	default:
		tv := time.Now()
		trc.Emit(trace.KPhaseBegin, trace.PhaseValidation, uint64(f.Event))
		v := validate.New(s.M, s.cfg.Validation).Validate(res.Checkpoint, until)
		rec.ValidationWall = time.Since(tv)
		rec.ValidationResult = &v
		trc.Emit(trace.KPhaseEnd, trace.PhaseValidation, uint64(len(v.Traces)))
		s.applyValidation(rec)
		// Return to the recovery point for resumption.
		s.M.Rollback(res.Checkpoint)
		s.finishRecovery(rec)
		s.finishSpan(span, rec)
		trc.Emit(trace.KPhaseEnd, trace.PhaseRecovery, uint64(res.Rollbacks))
	}
	return stages.Next
}
