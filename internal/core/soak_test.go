package core

import (
	"math/rand"
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/mmbug"
)

// TestSoakRandomTriggerPlacement is the failure-injection sweep: for every
// application, bug triggers are injected at randomized positions and the
// supervision invariants must hold regardless of where in the workload —
// and relative to checkpoint boundaries — the bug lands:
//
//  1. the run completes;
//  2. the first diagnosis identifies only ground-truth bug classes;
//  3. once patched (and validated), later triggers never fail;
//  4. the heap is intact at the end.
func TestSoakRandomTriggerPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(0xF1257A1D))
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 3; round++ {
				first := 120 + rng.Intn(250)
				second := first + 300 + rng.Intn(300)
				a, _ := apps.New(name)
				log := a.Workload(second+400, []int{first, second})
				sup := NewSupervisor(a, log, Config{})
				stats := sup.Run()

				if stats.Failures == 0 {
					t.Fatalf("round %d (triggers %d,%d): no failure", round, first, second)
				}
				if stats.Failures != 1 {
					t.Errorf("round %d (triggers %d,%d): %d failures, want 1 (prevention)",
						round, first, second, stats.Failures)
				}
				if len(sup.Recoveries) == 0 {
					t.Fatalf("round %d: no recovery", round)
				}
				rec := sup.Recoveries[0]
				if rec.Skipped {
					t.Errorf("round %d: diagnosis fell back to skip\n%v", round, rec.Result.Log)
					continue
				}
				want := map[mmbug.Type]bool{}
				for _, b := range a.Bugs() {
					want[b] = true
				}
				for _, fd := range rec.Result.Findings {
					if !want[fd.Bug] {
						t.Errorf("round %d: misdiagnosed %v (truth %v)", round, fd.Bug, a.Bugs())
					}
				}
				if !rec.Validated {
					reason := ""
					if rec.ValidationResult != nil {
						reason = rec.ValidationResult.Reason
					}
					t.Errorf("round %d: validation failed: %s", round, reason)
				}
				if err := sup.M.Heap.CheckIntegrity(); err != nil {
					t.Errorf("round %d: final heap corrupt: %v", round, err)
				}
			}
		})
	}
}

// TestSoakManyTriggersSameRun injects a dense trigger train: the first
// fails, everything after the patch must be absorbed — including triggers
// that arrive while delay-freed memory from earlier triggers is still
// held.
func TestSoakManyTriggersSameRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, name := range []string{"apache", "squid", "cvs", "m4", "bc", "pine", "mutt"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var triggers []int
			for at := 200; at < 3200; at += 300 {
				triggers = append(triggers, at)
			}
			a, _ := apps.New(name)
			log := a.Workload(3600, triggers)
			sup := NewSupervisor(a, log, Config{})
			stats := sup.Run()
			if stats.Failures != 1 {
				t.Fatalf("failures = %d across %d triggers, want 1", stats.Failures, len(triggers))
			}
			if sup.Ext().DelayedBytes() > sup.Ext().DelayLimit+64<<10 {
				t.Fatalf("delay-freed memory unbounded: %d", sup.Ext().DelayedBytes())
			}
		})
	}
}
