package core

import (
	"strings"
	"testing"

	"firstaid/internal/app"
	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/trace"
	"firstaid/internal/vmem"
)

// specBench is the multi-candidate diagnosis workload the speculation
// guard runs on: a buffer overflow whose corruption stays latent for
// dozens of checkpoint intervals. A request buffer and an adjacent state
// block are allocated mid-run; one oversized copy then smashes the state
// block's magic, and the program keeps serving benign requests for ~40
// checkpoints before anything reads the magic and crashes. Every
// checkpoint taken after the smash is a phase-1 ladder candidate that
// re-executes the full window only to fail again — the deep serial
// rollback–re-execute chain speculation collapses to one concurrent
// batch.
type specBench struct{}

const (
	sbMagic  = 0x5AFE5AFE
	sbBufLen = 256

	// Log layout, in events. With app.EventCost per event and the default
	// 200 ms checkpoint interval (~20 events apart), the ~820-event gap
	// puts ~42 checkpoints between the smash and the crash; the ring
	// (Keep below) still retains a pre-setup checkpoint for phase 1 to
	// select, and the ladder budget covers the rejected span.
	sbHistory = 160
	sbGap     = 820
	sbTail    = 40

	sbKeep           = 52
	sbMaxCheckpoints = 48
)

func (specBench) Name() string { return "specbench" }

func (specBench) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow} }

func (specBench) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("specbench_init")()
	// Standing heap content so clones carry a realistic footprint.
	idx := p.Malloc(4 << 10)
	p.Memset(idx, 0, 4<<10)
	p.SetRoot(2, idx)
}

func (specBench) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("dispatch")()
	p.Tick(app.EventCost)
	switch ev.Kind {
	case "req":
		// Benign traffic: per-request scratch, allocated and released.
		hdr := func() vmem.Addr {
			defer p.Enter("reqScratch")()
			defer p.Enter("xmalloc")()
			return p.Malloc(uint32(64 + ev.N%96))
		}()
		p.Memset(hdr, 0, 64)
		func() {
			defer p.Enter("reqDone")()
			defer p.Enter("xfree")()
			p.Free(hdr)
		}()
	case "setup":
		// THE VICTIM PAIR: fixed buffer, then the adjacent state block
		// whose magic the overflow will destroy. Allocated inside the
		// replay window so a preventive re-execution can pad them.
		buf := func() vmem.Addr {
			defer p.Enter("parseSetup")()
			defer p.Enter("xmalloc")()
			return p.Malloc(sbBufLen)
		}()
		state := func() vmem.Addr {
			defer p.Enter("createState")()
			defer p.Enter("xmalloc")()
			return p.Malloc(64)
		}()
		p.StoreU32(state, sbMagic)
		p.Memset(state+4, 0, 60)
		p.SetRoot(0, buf)
		p.SetRoot(1, state)
	case "smash":
		// THE BUG: unchecked copy into the fixed buffer; the excess runs
		// over the neighbor's header into the state block's magic. The
		// program does not notice — yet.
		p.At("copy_payload")
		p.StoreString(p.RootAddr(0), ev.Data)
	case "check":
		// The long-delayed read of the smashed magic: the crash site,
		// ~40 checkpoints after the corrupting write.
		p.At("check_state")
		p.Assert(p.LoadU32(p.RootAddr(1)) == sbMagic, "state magic corrupted")
	default:
		p.Assert(false, "specbench: unknown event %q", ev.Kind)
	}
}

// sbLog lays out the deep-ladder input: history, the victim setup, the
// smash, a long benign gap, the crashing check, and a post-recovery tail.
func sbLog() *replay.Log {
	log := replay.NewLog()
	req := func(n int) {
		for i := 0; i < n; i++ {
			log.Append("req", "", log.Len())
		}
	}
	req(sbHistory)
	log.Append("setup", "", 0)
	req(4)
	log.Append("smash", "/exploit/"+strings.Repeat("A", 300), 0)
	req(sbGap)
	log.Append("check", "", 0)
	req(sbTail)
	return log
}

func runSpecBench(b *testing.B, speculate bool) (*Supervisor, Stats, *trace.Tracer) {
	b.Helper()
	trc := trace.New(1 << 19)
	sup := NewSupervisor(specBench{}, sbLog(), Config{
		Speculate: speculate,
		Diagnosis: diagnosis.Config{MaxCheckpoints: sbMaxCheckpoints},
		Machine: MachineConfig{
			Checkpoint: checkpoint.Config{Keep: sbKeep},
			Trace:      trc,
		},
	})
	stats := sup.Run()
	return sup, stats, trc
}

// checkSpecBenchRun asserts one specBench run recovered exactly as
// expected: one failure, a validated buffer-overflow diagnosis pinned to
// the setup allocation site.
func checkSpecBenchRun(b *testing.B, label string, sup *Supervisor, stats Stats) string {
	b.Helper()
	if stats.Failures != 1 || len(sup.Recoveries) != 1 {
		b.Fatalf("%s: failures=%d recoveries=%d, want exactly 1 of each",
			label, stats.Failures, len(sup.Recoveries))
	}
	rec := sup.Recoveries[0]
	if rec.Skipped || !rec.Validated {
		b.Fatalf("%s: recovery skipped=%v validated=%v; log:\n%v",
			label, rec.Skipped, rec.Validated, rec.Result.Log)
	}
	fds := rec.Result.Findings
	if len(fds) != 1 || fds[0].Bug != mmbug.BufferOverflow || len(fds[0].Sites) != 1 {
		b.Fatalf("%s: findings %+v, want exactly one buffer-overflow site", label, fds)
	}
	return sup.M.SiteKey(fds[0].Sites[0]).String()
}

// diagWindow locates the diagnosis span on the parent track: the cycle
// stamps and global record sequence numbers of phase 1's begin and phase
// 2's end.
func diagWindow(b *testing.B, recs []trace.Record) (beginCyc, endCyc, beginSeq, endSeq uint64) {
	b.Helper()
	var haveBegin, haveEnd bool
	for _, r := range recs {
		if r.Worker != 0 {
			continue
		}
		if !haveBegin && r.Kind == trace.KPhaseBegin && r.Arg1 == trace.PhaseDiag1 {
			beginCyc, beginSeq, haveBegin = r.Cycles, r.Seq, true
		}
		if haveBegin && !haveEnd && r.Kind == trace.KPhaseEnd && r.Arg1 == trace.PhaseDiag2 {
			endCyc, endSeq, haveEnd = r.Cycles, r.Seq, true
		}
	}
	if !haveBegin || !haveEnd {
		b.Fatal("diagnosis phase markers missing from the parent trace track")
	}
	return
}

// specCriticalPath scores the speculative run's diagnosis schedule in
// simulated machine cycles: the parent track's own cycle progress (screen,
// convergence check, final verification — consuming a speculative outcome
// advances no parent cycles) plus, per concurrent hypothesis batch, the
// longest clone-track cycle span. Hypotheses launched before phase 1 ends
// are the candidate-ladder batch; the rest are the phase-2 class batch.
// Taking each batch's maximum over every launched clone — including
// losers that were cancelled later — errs on the conservative side.
func specCriticalPath(b *testing.B, recs []trace.Record) uint64 {
	b.Helper()
	beginCyc, endCyc, _, _ := diagWindow(b, recs)
	var diag1End uint64
	for _, r := range recs {
		if r.Worker == 0 && r.Kind == trace.KPhaseEnd && r.Arg1 == trace.PhaseDiag1 {
			diag1End = r.Seq
			break
		}
	}
	if diag1End == 0 {
		b.Fatal("phase-1 end marker missing from the parent trace track")
	}
	type span struct {
		firstSeq uint64
		lo, hi   uint64
	}
	clones := map[uint16]*span{}
	for _, r := range recs {
		if r.Worker&trace.SpecTrackBit == 0 {
			continue
		}
		s := clones[r.Worker]
		if s == nil {
			s = &span{firstSeq: r.Seq, lo: r.Cycles, hi: r.Cycles}
			clones[r.Worker] = s
		}
		if r.Cycles < s.lo {
			s.lo = r.Cycles
		}
		if r.Cycles > s.hi {
			s.hi = r.Cycles
		}
	}
	if len(clones) == 0 {
		b.Fatal("no speculative clone tracks in the trace")
	}
	var ladderMax, classMax uint64
	for _, s := range clones {
		d := s.hi - s.lo
		if s.firstSeq < diag1End {
			if d > ladderMax {
				ladderMax = d
			}
		} else if d > classMax {
			classMax = d
		}
	}
	return (endCyc - beginCyc) + ladderMax + classMax
}

// BenchmarkSpeculativeRecoveryGuard enforces the speculation acceptance
// number: on a multi-candidate diagnosis (a ~40-deep phase-1 checkpoint
// ladder plus the phase-2 class probes), racing the hypotheses on COW
// clones must cut the diagnosis critical path at least 5× below the
// serial rollback–re-execute chain, while producing the identical
// diagnosis. The comparison is scored in simulated machine cycles — the
// deterministic, host-independent measure every other contract in this
// repository uses — with the speculative schedule charged its full
// critical path: all parent-serial work plus the longest clone in each
// concurrent batch (clone minting is covered separately by
// BenchmarkStandbyCloneWarm). Host wall-clock would instead measure how
// many cores the CI machine happens to have.
func BenchmarkSpeculativeRecoveryGuard(b *testing.B) {
	const budget = 5.0
	var speedup float64
	for i := 0; i < b.N; i++ {
		serialSup, serialStats, serialTrc := runSpecBench(b, false)
		specSup, specStats, specTrc := runSpecBench(b, true)

		serialSite := checkSpecBenchRun(b, "serial", serialSup, serialStats)
		specSite := checkSpecBenchRun(b, "speculative", specSup, specStats)
		if serialSite != specSite {
			b.Fatalf("diagnosed site diverges: serial %s, speculative %s", serialSite, specSite)
		}
		if rb := serialSup.Recoveries[0].Result.Rollbacks; rb < 40 {
			b.Fatalf("serial diagnosis took %d rollbacks; the workload no longer builds a deep ladder", rb)
		}
		st := specSup.Speculation()
		if st.Launched < 40 || st.StandbyHits < 1 {
			b.Fatalf("speculation stats %+v: want a full ladder launched and the standby clone used", st)
		}

		sBegin, sEnd, _, _ := diagWindow(b, serialTrc.Snapshot())
		serialCycles := sEnd - sBegin
		specCycles := specCriticalPath(b, specTrc.Snapshot())
		speedup = float64(serialCycles) / float64(specCycles)

		b.ReportMetric(float64(serialCycles)/1e6, "serial-Mcycles")
		b.ReportMetric(float64(specCycles)/1e6, "spec-Mcycles")
		b.ReportMetric(serialSup.Recoveries[0].RecoveryWall.Seconds()*1e3, "serial-recovery-ms")
		b.ReportMetric(specSup.Recoveries[0].RecoveryWall.Seconds()*1e3, "spec-recovery-ms")
	}
	b.ReportMetric(speedup, "speedup-x")
	if speedup < budget {
		b.Fatalf("speculative diagnosis critical path is only %.2fx shorter than serial, budget %.1fx", speedup, budget)
	}
}

// BenchmarkStandbyCloneWarm prices the standby clone: the cost of minting
// one pre-warmed COW speculation clone from a machine with a warm heap —
// the cost the supervisor pays at every checkpoint so that recovery
// launches its first hypothesis at zero clone latency.
func BenchmarkStandbyCloneWarm(b *testing.B) {
	m := NewMachine(specBench{}, sbLog(), MachineConfig{
		Checkpoint: checkpoint.Config{Keep: sbKeep},
	})
	for i := 0; i < 400; i++ {
		if _, ok := m.Step(); !ok {
			break
		}
		m.Ckpt.MaybeCheckpoint()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := m.CloneForSpeculation(); c == nil {
			b.Fatal("clone failed")
		}
	}
}
