package core

import (
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/stages"
)

// specHost adapts a Machine to stages.CloneSource, and keeps one pre-warmed
// standby clone refreshed at every checkpoint so the first hypothesis of a
// recovery can launch without paying the clone cost. All methods run on the
// supervisor goroutine.
type specHost struct {
	m *Machine

	// standby is a clone taken at standbyCp, immediately after the
	// checkpoint was (so its memory image equals the checkpoint's). Matched
	// by checkpoint pointer identity: a checkpoint dropped by DropAfter can
	// never be requested again, so a stale standby simply never matches and
	// is replaced at the next Refresh.
	standby   *Machine
	standbyCp *checkpoint.Checkpoint
}

// Rollback implements stages.CloneSource.
func (h *specHost) Rollback(cp *checkpoint.Checkpoint) { h.m.Rollback(cp) }

// SpawnProbe implements stages.CloneSource.
func (h *specHost) SpawnProbe() stages.ProbeMachine { return h.m.CloneForSpeculation() }

// TakeStandby implements stages.CloneSource: it surrenders the standby when
// it was taken at exactly cp. The standby's replay log is a snapshot from
// clone time; under streaming supervision the parent log has grown since,
// so it is brought level before handing over.
func (h *specHost) TakeStandby(cp *checkpoint.Checkpoint) stages.ProbeMachine {
	if h.standby == nil || h.standbyCp != cp {
		return nil
	}
	sb := h.standby
	h.standby, h.standbyCp = nil, nil
	sb.Log.CatchUp(h.m.Log)
	return sb
}

// InternSite implements stages.CloneSource.
func (h *specHost) InternSite(k callsite.Key) callsite.ID { return h.m.Proc.Sites.Intern(k) }

// Refresh replaces the standby with a fresh clone of the machine as it
// stands. Called right after a checkpoint is taken, while machine state
// still equals cp's.
func (h *specHost) Refresh(cp *checkpoint.Checkpoint) {
	h.standby = h.m.CloneForSpeculation()
	h.standbyCp = cp
}
