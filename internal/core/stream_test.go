package core

import (
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/replay"
)

// TestStreamingMatchesOfflineRun: streaming supervision is the offline loop
// fed one event at a time — ingesting a workload live must produce exactly
// the statistics of an offline Run over the same inputs, and the log the
// recorder accumulates must re-run offline to the same result. This is the
// paper's network-input-recorder property: live traffic is replayable, and
// replaying it reproduces the failure and the recovery bit for bit.
func TestStreamingMatchesOfflineRun(t *testing.T) {
	for _, name := range []string{"apache", "squid", "cvs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := apps.New(name)
			if err != nil {
				t.Fatal(err)
			}
			workload := prog.Workload(700, []int{230})

			// Offline reference run.
			offProg, _ := apps.New(name)
			off := NewSupervisor(offProg, workload.Clone(), Config{})
			offStats := off.Run()
			if offStats.Failures == 0 {
				t.Fatalf("workload did not trigger the bug offline: %+v", offStats)
			}

			// Streaming run: same events, delivered live over a channel.
			liveProg, _ := apps.New(name)
			live := NewSupervisor(liveProg, replay.NewLog(), Config{})
			src := make(chan replay.Event)
			go func() {
				defer close(src)
				feed := workload.Clone()
				for {
					ev, ok := feed.Next()
					if !ok {
						return
					}
					src <- ev
				}
			}()
			var results []IngestResult
			liveStats := live.Serve(src, func(r IngestResult) { results = append(results, r) })

			// Outcomes must be identical. Simulated elapsed time is not:
			// offline recovery re-executes events past the failure point
			// (they are already in the log), while under streaming those
			// events have not arrived yet — so the offline clock counts
			// some events twice that the live clock counts once.
			liveCmp, offCmp := liveStats, offStats
			liveCmp.SimSeconds, offCmp.SimSeconds = 0, 0
			if liveCmp != offCmp {
				t.Fatalf("streaming diverged from offline:\nlive:    %+v\noffline: %+v", liveStats, offStats)
			}
			if len(results) != workload.Len() {
				t.Fatalf("sink saw %d results for %d events", len(results), workload.Len())
			}

			// Per-event attribution must sum to the run totals.
			var failures, recovered, skipped int
			for i, r := range results {
				if r.Seq != i {
					t.Fatalf("result %d has recorder seq %d", i, r.Seq)
				}
				failures += r.Failures
				if r.Recovered {
					recovered++
				}
				if r.Skipped {
					skipped++
				}
			}
			if failures != liveStats.Failures {
				t.Fatalf("per-event failures sum to %d, stats say %d", failures, liveStats.Failures)
			}
			if skipped != liveStats.Skipped {
				t.Fatalf("per-event skips sum to %d, stats say %d", skipped, liveStats.Skipped)
			}
			if recovered == 0 {
				t.Fatal("no ingest result reported the recovery")
			}

			// The recorded log must hold exactly the ingested stream and
			// re-run offline (fresh supervisor, fresh pool) to statistics
			// bit-identical with the offline reference — record-replay
			// equivalence, SimSeconds included, since both runs are offline.
			recorded := live.Log().Clone()
			recorded.SetCursor(0)
			if recorded.Len() != workload.Len() {
				t.Fatalf("recorded log has %d events, ingested %d", recorded.Len(), workload.Len())
			}
			repProg, _ := apps.New(name)
			rep := NewSupervisor(repProg, recorded, Config{})
			repStats := rep.Run()
			if repStats != offStats {
				t.Fatalf("replaying the recorded log diverged:\nreplay:  %+v\noffline: %+v", repStats, offStats)
			}
		})
	}
}

// TestIngestAttributesFailureToTriggeringEvent: the IngestResult of the
// bug-manifesting event — and only that event — must carry the failure
// and the recovery; clean traffic before and after reports clean results.
func TestIngestAttributesFailureToTriggeringEvent(t *testing.T) {
	prog, _ := apps.New("apache")
	workload := prog.Workload(400, []int{110})

	liveProg, _ := apps.New("apache")
	sup := NewSupervisor(liveProg, replay.NewLog(), Config{})
	var failedAt []int
	for {
		ev, ok := workload.Next()
		if !ok {
			break
		}
		r := sup.IngestEvent(ev)
		if r.Failed {
			if !r.Recovered && !r.Skipped {
				t.Fatalf("event %d failed but was neither recovered nor skipped: %+v", r.Seq, r)
			}
			failedAt = append(failedAt, r.Seq)
		} else if r.Recovered || r.Skipped {
			t.Fatalf("clean event %d reports recovery: %+v", r.Seq, r)
		}
		if r.SimCycles == 0 {
			t.Fatalf("event %d consumed no simulated time", r.Seq)
		}
	}
	st := sup.Finish()
	if len(failedAt) == 0 || st.Failures == 0 {
		t.Fatalf("workload never failed (stats %+v)", st)
	}
	if len(failedAt) != st.Recoveries+st.Skipped {
		t.Fatalf("%d events failed but stats show %d recoveries + %d skips",
			len(failedAt), st.Recoveries, st.Skipped)
	}
}

// TestIngestSkipsUndiagnosableEvent: streaming a layout-dependent semantic
// bug (the §5 misdiagnosis scenario) runs the whole retry→revoke→skip
// cycle inside a single Ingest call; the caller sees one Skipped result
// and the supervisor stays serviceable for subsequent traffic.
func TestIngestSkipsUndiagnosableEvent(t *testing.T) {
	prog := &layoutBug{}
	workload := prog.Workload(120, []int{60})

	sup := NewSupervisor(&layoutBug{}, replay.NewLog(), Config{})
	var skips int
	for {
		ev, ok := workload.Next()
		if !ok {
			break
		}
		r := sup.IngestEvent(ev)
		if r.Skipped {
			skips++
			if !r.Failed {
				t.Fatalf("skipped event not marked failed: %+v", r)
			}
		}
	}
	st := sup.Finish()
	if skips == 0 && st.Skipped == 0 {
		// The semantic bug may be absorbed by a (mis)patch that happens to
		// validate; what matters is the stream kept flowing either way.
		t.Logf("wild write absorbed without skip: %+v", st)
	}
	// Events counts executions (a recovered event runs again after the
	// rollback), so it can exceed the distinct-event count — but every
	// distinct event must have made it into the recorded log.
	if got := sup.Log().Len(); got != workload.Len() {
		t.Fatalf("recorded %d of %d events", got, workload.Len())
	}
	if st.Events < workload.Len() {
		t.Fatalf("processed %d executions for %d events", st.Events, workload.Len())
	}
	if skips != st.Skipped {
		t.Fatalf("per-event skips %d != stats %d", skips, st.Skipped)
	}
}
