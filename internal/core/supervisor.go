package core

import (
	"fmt"
	"time"

	"firstaid/internal/allocext"
	"firstaid/internal/app"
	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/ledger"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/report"
	"firstaid/internal/stages"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
	"firstaid/internal/validate"
)

// Config tunes a supervisor.
type Config struct {
	Machine    MachineConfig
	Diagnosis  diagnosis.Config
	Validation validate.Config
	// DisableValidation skips the post-recovery validation step.
	DisableValidation bool
	// ParallelValidation runs validation on a cloned machine in a
	// separate goroutine — the paper's design: "this step can be done in
	// parallel on a different processor core based on a snapshot of the
	// program so that it does not delay the failure recovery." Inconsistent
	// patches are revoked when the result is collected (each main-loop
	// iteration, and at the end of Run).
	ParallelValidation bool
	// Pool is the shared patch pool; a fresh one is created when nil.
	// Sharing a pool across supervisors models the paper's central
	// per-program pool protecting other processes and later runs.
	Pool *patch.Pool
	// Trace, when set, observes every main-loop event: the event, the
	// monotonic simulated time after processing it, and its fault (nil
	// on success). The throughput experiments (Figure 4) hook in here.
	Trace func(ev replay.Event, simNow uint64, fault *proc.Fault)
	// MaxRetriesPerEvent bounds repeated recovery attempts on the same
	// failing event before it is dropped (default 2).
	MaxRetriesPerEvent int
	// Ledger is the diagnosis ledger recoveries write through. When nil a
	// private ledger is created (unless DisableLedger is set); the fleet
	// passes one shared ledger to all of its workers.
	Ledger *ledger.Ledger
	// DisableLedger turns the ledger off entirely — overhead benchmarks
	// only. Recoveries then carry no Report either (a Report is a render
	// of a ledger entry).
	DisableLedger bool
	// Repro, when set, is the exact offline command that reproduces this
	// run (chaos sources); it is recorded on every diagnosis and lands in
	// the postmortem bundle's REPRO.txt.
	Repro string
	// CompactLog bounds the rolling replay log under streaming supervision:
	// after each checkpoint, the log prefix older than the oldest retained
	// checkpoint's cursor is discarded. Rollback can never reach past the
	// oldest retained checkpoint, so recovery semantics are unchanged; what
	// is given up is only whole-run offline replay (Log().Save still works
	// but replays from the compaction base, and OpsFromLog-style full-log
	// consumers see the retained window only). Off by default.
	CompactLog bool
	// Speculate races diagnosis hypotheses (the phase-1 candidate ladder,
	// the phase-2 class probes) on COW machine clones instead of
	// re-executing them serially, with a pre-warmed standby clone refreshed
	// at every checkpoint so recovery starts at zero clone cost. The engine
	// consumes speculative outcomes in serial program order, so verdicts,
	// ledger projections and site attribution are identical to the serial
	// pipeline — only recovery wall time changes. Forced off when
	// Machine.IntegrityCheckEvery > 1: that detector keeps a call-cadence
	// counter across probes, which is inherently serial state (a cadence of
	// 1 checks every event and is stateless).
	Speculate bool
}

// Recovery records one failure-recovery episode.
type Recovery struct {
	Fault            *proc.Fault
	Result           diagnosis.Result
	Patches          []*patch.Patch
	RecoveryWall     time.Duration
	ValidationWall   time.Duration
	Validated        bool
	ValidationResult *validate.Result
	Report           *report.Report
	// Ledger is the recovery's lifecycle object in the diagnosis ledger
	// (nil when the ledger is disabled).
	Ledger *ledger.Entry
	// Skipped: diagnosis could not produce a patch and the failing
	// request was dropped instead (the "resort to other recovery
	// schemes" fallback of §2).
	Skipped bool
}

// Stats summarises a supervised run.
type Stats struct {
	Events      int
	Failures    int
	Recoveries  int
	Skipped     int
	SimSeconds  float64
	PatchesMade int
}

// Supervisor runs one program under First-Aid.
type Supervisor struct {
	M     *Machine
	Pool  *patch.Pool
	Bound *patch.Bound

	cfg        Config
	Recoveries []*Recovery

	ldg       *ledger.Ledger
	streaming bool // an Ingest/resolve has run: recoveries are "stream" mode

	// spec races diagnosis probes on clones minted by host; both are nil
	// when speculation is off.
	spec *stages.Speculator
	host *specHost

	events   int
	failures int
	retries  map[int]int

	// pending holds in-flight parallel validations.
	pending []*pendingValidation

	met supMetrics
}

// supMetrics holds the supervisor's pre-resolved telemetry instruments; the
// zero value (all nil) discards updates.
type supMetrics struct {
	failures       *telemetry.Counter
	recoveries     *telemetry.Counter
	skipped        *telemetry.Counter
	nondet         *telemetry.Counter
	patchesMade    *telemetry.Counter
	patchRevoked   *telemetry.Counter
	patchValidated *telemetry.Counter
	recoveryWallUS *telemetry.Histogram
	validWallUS    *telemetry.Histogram
	queueDepth     *telemetry.Gauge
}

// pendingValidation tracks one asynchronous validation. The goroutine
// fills rec.ValidationResult/ValidationWall and closes done; the main
// thread applies the verdict (mark validated / revoke) when it collects.
// The clone's telemetry registry and the recovery span ride along so the
// main thread can fold the clone's counters into the parent and close the
// span race-free at collect time.
type pendingValidation struct {
	rec      *Recovery
	done     chan struct{}
	span     *telemetry.Span
	cloneTel *telemetry.Registry
}

// NewSupervisor builds the machine, attaches the patch pool, and leaves the
// program initialised at checkpoint #0.
func NewSupervisor(prog app.Program, log *replay.Log, cfg Config) *Supervisor {
	if cfg.MaxRetriesPerEvent == 0 {
		cfg.MaxRetriesPerEvent = 2
	}
	m := NewMachine(prog, log, cfg.Machine)
	pool := cfg.Pool
	if pool == nil {
		pool = patch.NewPool(prog.Name())
	}
	ldg := cfg.Ledger
	if ldg == nil && !cfg.DisableLedger {
		ldg = ledger.New(ledger.DefaultCapacity)
	}
	s := &Supervisor{
		M:       m,
		Pool:    pool,
		Bound:   pool.Bind(m.Proc.Sites),
		cfg:     cfg,
		ldg:     ldg,
		retries: map[int]int{},
	}
	m.SetPatches(s.Bound)
	s.Bound.SetMetrics(m.Tel)
	if cfg.Pool == nil {
		// A locally-created pool belongs to this supervisor alone: route
		// its mutation records onto this machine's track. A shared pool is
		// wired by its owner (the fleet) instead, so one worker's emitter
		// does not claim mutations made by its siblings.
		pool.SetTracer(m.TraceEmitter())
	}
	// With a nil registry every instrument resolves to nil and stays a
	// no-op; recover() and Run() carry no telemetry conditionals.
	s.met = supMetrics{
		failures:       m.Tel.Counter("core.failures"),
		recoveries:     m.Tel.Counter("core.recoveries"),
		skipped:        m.Tel.Counter("core.skipped_events"),
		nondet:         m.Tel.Counter("core.nondeterministic"),
		patchesMade:    m.Tel.Counter("patch.generated"),
		patchRevoked:   m.Tel.Counter("patch.revocations"),
		patchValidated: m.Tel.Counter("patch.validated"),
		recoveryWallUS: m.Tel.Histogram("core.recovery_wall_us"),
		validWallUS:    m.Tel.Histogram("core.validation_wall_us"),
		queueDepth:     m.Tel.Gauge("core.pending_validations"),
	}
	if cfg.Speculate && cfg.Machine.IntegrityCheckEvery <= 1 {
		s.host = &specHost{m: m}
		s.spec = stages.NewSpeculator(s.host, m.Tel, m.TraceEmitter())
		// Pre-warm the first standby at checkpoint #0: right after
		// NewMachine's Take the machine state is exactly the checkpoint
		// state, so the clone is a faithful stand-in for a rollback.
		s.host.Refresh(m.Ckpt.Latest())
	}
	return s
}

// Telemetry returns the machine's registry (nil when telemetry is off).
func (s *Supervisor) Telemetry() *telemetry.Registry { return s.M.Tel }

// Speculation returns the lifetime speculative-execution stats (the zero
// value when speculation is off).
func (s *Supervisor) Speculation() stages.SpecStats {
	if s.spec == nil {
		return stages.SpecStats{}
	}
	return s.spec.Totals()
}

// Ledger returns the diagnosis ledger (nil when disabled).
func (s *Supervisor) Ledger() *ledger.Ledger { return s.ldg }

// mode names how recoveries execute under this supervisor, for the
// diagnosis record: "stream" once live ingestion has started, otherwise
// "parallel" (clone-validated) or "sync".
func (s *Supervisor) mode() string {
	switch {
	case s.streaming:
		return "stream"
	case s.cfg.ParallelValidation:
		return "parallel"
	default:
		return "sync"
	}
}

// SimSeconds returns the monotonic simulated time consumed so far,
// including re-execution work during recovery (rollbacks rewind the process
// clock, not this timeline).
func (s *Supervisor) SimSeconds() float64 { return s.M.SimSeconds() }

// Run processes the whole input log, recovering from failures as they
// occur, and returns the run statistics.
func (s *Supervisor) Run() Stats {
	s.drain()
	return s.Finish()
}

// drain processes events until the log cursor reaches the tail, recovering
// from failures as they occur. It is the shared main loop of offline Run
// (the whole log is the tail) and streaming Ingest (the tail advances one
// event at a time); a recovery rewinds the cursor, so the loop naturally
// re-executes up to the tail before returning.
func (s *Supervisor) drain() {
	for {
		s.collectValidations(false)
		if cp := s.M.Ckpt.MaybeCheckpoint(); cp != nil {
			if s.host != nil {
				// Refresh the standby clone while the machine state still
				// equals the fresh checkpoint's: the next recovery's first
				// hypothesis then launches at zero clone cost.
				s.host.Refresh(cp)
			}
			if s.cfg.CompactLog && s.streaming {
				// A fresh checkpoint may have evicted the oldest retained
				// one, moving the rollback horizon forward; everything
				// before it is unreachable and can be freed.
				if cps := s.M.Ckpt.Checkpoints(); len(cps) > 0 {
					s.M.Log.Compact(cps[0].Cursor)
				}
			}
		}
		s.M.SyncClock()
		cursorBefore := s.M.Log.Cursor()
		f, ok := s.M.Step()
		if !ok {
			return
		}
		s.events++
		if s.cfg.Trace != nil {
			ev := s.M.Log.At(cursorBefore)
			s.cfg.Trace(ev, s.M.SimNow(), f)
		}
		if f != nil {
			s.failures++
			s.met.failures.Inc()
			s.recover(f)
		}
	}
}

// Finish collects all outstanding parallel validations and returns the
// statistics accumulated so far. The supervisor stays usable: streaming
// callers may keep ingesting after a Finish.
func (s *Supervisor) Finish() Stats {
	s.collectValidations(true)
	st := Stats{
		Events:     s.events,
		Failures:   s.failures,
		SimSeconds: s.SimSeconds(),
	}
	for _, r := range s.Recoveries {
		if r.Skipped {
			st.Skipped++
		} else {
			st.Recoveries++
		}
		st.PatchesMade += len(r.Patches)
	}
	return st
}

// IngestResult reports how one live event was resolved by streaming
// supervision. The event is recorded into the replay log before execution,
// so Seq is also its replay position in the recorded stream.
type IngestResult struct {
	Seq       int    // position assigned by the recorder
	Failed    bool   // the event faulted at least once before resolution
	Recovered bool   // a diagnose→patch→rollback cycle resolved it
	Skipped   bool   // the last-resort fallback dropped it
	Failures  int    // faults observed while resolving it (retries included)
	SimCycles uint64 // simulated time consumed resolving it
}

// Ingest records one live event into the replay log and processes it
// immediately — the streaming counterpart of Run. The front-end calling
// Ingest is the paper's network input recorder: because the event is
// appended before execution, checkpoint/rollback/diagnosis replay it
// exactly as a pre-recorded input, and the accumulated log re-runs
// offline with identical results. On a failure the full recovery cycle
// (including re-execution back to the tail, retries, and the skip
// fallback) completes before Ingest returns.
func (s *Supervisor) Ingest(kind, data string, n int) IngestResult {
	return s.resolve(s.M.Log.Append(kind, data, n))
}

// IngestEvent is Ingest for an already-built event (its Seq is reassigned
// by the recorder).
func (s *Supervisor) IngestEvent(ev replay.Event) IngestResult {
	return s.resolve(s.M.Log.AppendEvent(ev))
}

// resolve drains the log to the tail and attributes everything that
// happened — faults, recoveries, skips, simulated time — to the event at
// seq, the only event that entered the system since the last drain.
func (s *Supervisor) resolve(seq int) IngestResult {
	s.streaming = true
	failures0 := s.failures
	recov0 := len(s.Recoveries)
	sim0 := s.M.SimNow()
	s.M.TraceEmitter().Emit(trace.KEventBegin, uint64(seq), 0)
	s.drain()
	res := IngestResult{
		Seq:       seq,
		Failures:  s.failures - failures0,
		SimCycles: s.M.SimNow() - sim0,
	}
	res.Failed = res.Failures > 0
	for _, rec := range s.Recoveries[recov0:] {
		if rec.Skipped {
			res.Skipped = true
		} else {
			res.Recovered = true
		}
	}
	outcome := uint64(trace.OutcomeOK)
	switch {
	case res.Skipped:
		outcome = trace.OutcomeSkipped
	case res.Recovered:
		outcome = trace.OutcomeRecovered
	}
	s.M.TraceEmitter().Emit(trace.KEventEnd, uint64(seq), outcome)
	return res
}

// BatchResult reports how one ingested batch was resolved. Counts are
// aggregated across the batch; per-event attribution is deliberately not
// materialized on this path (the point of batching is to amortize that
// bookkeeping away).
type BatchResult struct {
	First      int    // sequence assigned to the first event of the batch
	Events     int    // events recorded and executed
	Failures   int    // faults observed (retries included)
	Recoveries int    // diagnose→patch→rollback cycles completed
	Skipped    int    // events dropped by the last-resort fallback
	SimCycles  uint64 // simulated time consumed by the batch
}

// IngestBatch records a whole batch of live events into the replay log and
// then executes them — the amortized counterpart of calling Ingest once
// per event, with identical observable behavior. Record-before-execute
// covers the full batch: every event is durable in the log before the
// first one runs. To keep recovery semantics byte-identical to serial
// ingest, the log's visibility fence is advanced one event at a time, so a
// failure inside the batch re-executes against exactly the tail a serial
// run would have had — later batch events are recorded but not yet
// visible to rollback re-execution, validation, or the skip fallback.
// Per-event KEventBegin/End trace records are replaced by one
// KBatchBegin/End pair.
func (s *Supervisor) IngestBatch(items []replay.Item) BatchResult {
	s.streaming = true
	first := s.M.Log.AppendBatch(items)
	res := BatchResult{First: first, Events: len(items)}
	if len(items) == 0 {
		return res
	}
	failures0, recov0, sim0 := s.failures, len(s.Recoveries), s.M.SimNow()
	s.M.TraceEmitter().Emit(trace.KBatchBegin, uint64(first), uint64(len(items)))
	for seq := first; seq < first+len(items); seq++ {
		s.M.Log.SetFence(seq + 1)
		s.drain()
	}
	s.M.Log.ClearFence()
	s.M.TraceEmitter().Emit(trace.KBatchEnd, uint64(first), uint64(len(items)))
	res.Failures = s.failures - failures0
	res.SimCycles = s.M.SimNow() - sim0
	for _, rec := range s.Recoveries[recov0:] {
		if rec.Skipped {
			res.Skipped++
		} else {
			res.Recoveries++
		}
	}
	return res
}

// Serve consumes live events from src until it is closed, recording each
// into the replay log and processing it immediately. Per-event outcomes are
// delivered to sink when non-nil. Returns the final statistics (pending
// parallel validations are collected first).
func (s *Supervisor) Serve(src <-chan replay.Event, sink func(IngestResult)) Stats {
	for ev := range src {
		r := s.IngestEvent(ev)
		if sink != nil {
			sink(r)
		}
	}
	return s.Finish()
}

// Log returns the supervisor's input log — under streaming supervision,
// the rolling record of every event ingested so far.
func (s *Supervisor) Log() *replay.Log { return s.M.Log }

// window estimates the success horizon: events corresponding to ~3
// checkpoint intervals beyond the failure (§4.1's conservative end point).
func (s *Supervisor) window() int {
	cps := s.M.Ckpt.Checkpoints()
	if len(cps) >= 2 {
		span := cps[len(cps)-1].Cursor - cps[0].Cursor
		if per := span / (len(cps) - 1); per > 0 {
			w := 3 * per
			if w < 5 {
				w = 5
			}
			if w > 400 {
				w = 400
			}
			return w
		}
	}
	return 30
}

// recover diagnoses the failure, generates and applies patches, rolls back,
// validates and reports (Figure 1's full cycle) — by running the
// supervisor's recovery plan, an ordered list of stages over a shared
// context (see internal/stages and recovery.go).
func (s *Supervisor) recover(f *proc.Fault) {
	ep := &recoveryEpisode{s: s, f: f, t0: time.Now()}
	ep.failCursor = s.M.Log.Cursor() // the failing event is consumed
	ep.until = ep.failCursor + s.window()
	c := &stages.Ctx{
		Fault:      f,
		FailCursor: ep.failCursor,
		Until:      ep.until,
		NewSession: ep.newSession,
	}
	s.recoveryPlan(ep).Run(c)
}

// finishSpan records the validation phase and the terminal outcome on a
// completed recovery. Called on the main goroutine only (inline validation,
// or parallel collect).
func (s *Supervisor) finishSpan(span *telemetry.Span, rec *Recovery) {
	if rec.ValidationResult != nil {
		outcome := "consistent"
		if !rec.ValidationResult.Consistent {
			outcome = "inconsistent"
		}
		span.AddPhase("validation", rec.ValidationWall, outcome, len(rec.ValidationResult.Traces))
		s.met.validWallUS.Observe(uint64(rec.ValidationWall.Microseconds()))
	}
	if rec.ValidationResult != nil && !rec.ValidationResult.Consistent {
		span.End("patches-revoked")
		return
	}
	span.End("recovered")
}

// applyValidation applies a completed validation verdict to the pool.
func (s *Supervisor) applyValidation(rec *Recovery) {
	if rec.ValidationResult == nil {
		return
	}
	if rec.ValidationResult.Consistent {
		rec.Validated = true
		for _, p := range rec.Patches {
			s.Pool.MarkValidated(p.ID)
		}
		s.met.patchValidated.Add(uint64(len(rec.Patches)))
		return
	}
	for _, p := range rec.Patches {
		s.Pool.Revoke(p.ID)
	}
	s.met.patchRevoked.Add(uint64(len(rec.Patches)))
	s.Bound.Invalidate()
}

// collectValidations harvests finished (or, when block is set, all)
// parallel validations, applying their verdicts and completing reports.
func (s *Supervisor) collectValidations(block bool) {
	remaining := s.pending[:0]
	for _, pv := range s.pending {
		if block {
			<-pv.done
		} else {
			select {
			case <-pv.done:
			default:
				remaining = append(remaining, pv)
				continue
			}
		}
		s.applyValidation(pv.rec)
		s.finishRecovery(pv.rec)
		// Fold the clone's telemetry into the parent and close the span;
		// both happen on the main goroutine, after the validation
		// goroutine has closed done, so neither races with the clone.
		s.M.Tel.Merge(pv.cloneTel)
		s.finishSpan(pv.span, pv.rec)
	}
	s.pending = remaining
	s.met.queueDepth.Set(int64(len(s.pending)))
}

// finishRecovery records the validation verdict and installed patches on
// the recovery's ledger entry, closes it, and renders the report from the
// closed entry. Called on the main goroutine only (the disabled- and
// inline-validation paths, and the parallel collect).
func (s *Supervisor) finishRecovery(rec *Recovery) {
	// Snapshot the patches under the pool lock: with several processes
	// sharing the pool, flags may be mutating while we render.
	snap := make([]*patch.Patch, 0, len(rec.Patches))
	for _, p := range rec.Patches {
		if q, ok := s.Pool.Get(p.ID); ok {
			snap = append(snap, &q)
		}
	}

	entry := rec.Ledger
	succeeded, outcome := true, "recovered"
	// The condition clocks anchor to the recovery checkpoint — the
	// deterministic process-clock point both the verdict and the installed
	// patches refer to, identical across sync/parallel/stream modes.
	var cpClock uint64
	if rec.Result.Checkpoint != nil {
		cpClock = rec.Result.Checkpoint.Clock
	}
	if v := rec.ValidationResult; v != nil {
		cond := ledger.Condition{Clock: cpClock, Validation: ledger.NewValidationInfo(v)}
		if v.Consistent {
			cond.Type = ledger.ValidationPassed
			cond.Message = fmt.Sprintf("consistent across %d randomized re-executions", len(v.Traces))
		} else {
			cond.Type = ledger.ValidationFailed
			cond.Message = v.Reason
			succeeded, outcome = false, "patches-revoked"
		}
		entry.Add(cond)
	}
	if succeeded && len(snap) > 0 {
		pis := make([]ledger.PatchInfo, len(snap))
		for i, p := range snap {
			pis[i] = ledger.NewPatchInfo(p)
		}
		entry.Add(ledger.Condition{
			Type:    ledger.PatchInstalled,
			Clock:   cpClock,
			Message: fmt.Sprintf("%d patch(es) active in pool", len(snap)),
			Patches: pis,
		})
	}
	entry.Update(func(d *ledger.Diagnosis) {
		d.ValidationRef = rec.ValidationResult
		d.PatchRefs = snap
		d.RecoverySec = rec.RecoveryWall.Seconds()
		d.ValidationSec = rec.ValidationWall.Seconds()
	})
	entry.Close(succeeded, outcome, s.M.TraceClock(), s.M.TraceEmitter().Tracer().Emitted())
	rec.Report = report.FromDiagnosis(entry.Snapshot())
}

// WritePostmortems writes one postmortem bundle per ledger diagnosis into
// dir and returns the paths. Offline flows (firstaid-run -postmortem, CI
// failure hooks) call it after the run completes.
func (s *Supervisor) WritePostmortems(dir string) ([]string, error) {
	if s.ldg == nil {
		return nil, nil
	}
	snap := telemetry.MergedSnapshot(s.M.Tel)
	var paths []string
	for _, d := range s.ldg.List(ledger.Filter{Worker: ledger.AnyWorker}) {
		in := report.BundleFor(d, s.cfg.Machine.Trace, &snap)
		p, err := report.WriteBundleFile(dir, in)
		if err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// skipFailingEvent is the last-resort fallback: roll back to the latest
// checkpoint, replay up to the failing event, and drop it.
func (s *Supervisor) skipFailingEvent(failCursor int) {
	cp := s.M.Ckpt.Latest()
	s.M.Rollback(cp)

	for s.M.Log.Cursor() < failCursor-1 {
		if f, ok := s.M.Step(); !ok || f != nil {
			break
		}
		s.M.SyncClock()
	}
	s.M.Log.SetCursor(failCursor)
}

// Checkpoint exposes the manager (experiments read Table-7 stats from it).
func (s *Supervisor) Checkpoint() *checkpoint.Manager { return s.M.Ckpt }

// Ext exposes the allocator extension (experiments read space stats).
func (s *Supervisor) Ext() *allocext.Ext { return s.M.Ext }
