package core

import (
	"fmt"
	"time"

	"firstaid/internal/allocext"
	"firstaid/internal/app"
	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/report"
	"firstaid/internal/validate"
)

// Config tunes a supervisor.
type Config struct {
	Machine    MachineConfig
	Diagnosis  diagnosis.Config
	Validation validate.Config
	// DisableValidation skips the post-recovery validation step.
	DisableValidation bool
	// ParallelValidation runs validation on a cloned machine in a
	// separate goroutine — the paper's design: "this step can be done in
	// parallel on a different processor core based on a snapshot of the
	// program so that it does not delay the failure recovery." Inconsistent
	// patches are revoked when the result is collected (each main-loop
	// iteration, and at the end of Run).
	ParallelValidation bool
	// Pool is the shared patch pool; a fresh one is created when nil.
	// Sharing a pool across supervisors models the paper's central
	// per-program pool protecting other processes and later runs.
	Pool *patch.Pool
	// Trace, when set, observes every main-loop event: the event, the
	// monotonic simulated time after processing it, and its fault (nil
	// on success). The throughput experiments (Figure 4) hook in here.
	Trace func(ev replay.Event, simNow uint64, fault *proc.Fault)
	// MaxRetriesPerEvent bounds repeated recovery attempts on the same
	// failing event before it is dropped (default 2).
	MaxRetriesPerEvent int
}

// Recovery records one failure-recovery episode.
type Recovery struct {
	Fault            *proc.Fault
	Result           diagnosis.Result
	Patches          []*patch.Patch
	RecoveryWall     time.Duration
	ValidationWall   time.Duration
	Validated        bool
	ValidationResult *validate.Result
	Report           *report.Report
	// Skipped: diagnosis could not produce a patch and the failing
	// request was dropped instead (the "resort to other recovery
	// schemes" fallback of §2).
	Skipped bool
}

// Stats summarises a supervised run.
type Stats struct {
	Events      int
	Failures    int
	Recoveries  int
	Skipped     int
	SimSeconds  float64
	PatchesMade int
}

// Supervisor runs one program under First-Aid.
type Supervisor struct {
	M     *Machine
	Pool  *patch.Pool
	Bound *patch.Bound

	cfg        Config
	Recoveries []*Recovery

	events   int
	failures int
	retries  map[int]int

	// pending holds in-flight parallel validations.
	pending []*pendingValidation
}

// pendingValidation tracks one asynchronous validation. The goroutine
// fills rec.ValidationResult/ValidationWall and closes done; the main
// thread applies the verdict (mark validated / revoke) when it collects.
type pendingValidation struct {
	rec  *Recovery
	done chan struct{}
}

// NewSupervisor builds the machine, attaches the patch pool, and leaves the
// program initialised at checkpoint #0.
func NewSupervisor(prog app.Program, log *replay.Log, cfg Config) *Supervisor {
	if cfg.MaxRetriesPerEvent == 0 {
		cfg.MaxRetriesPerEvent = 2
	}
	m := NewMachine(prog, log, cfg.Machine)
	pool := cfg.Pool
	if pool == nil {
		pool = patch.NewPool(prog.Name())
	}
	s := &Supervisor{
		M:       m,
		Pool:    pool,
		Bound:   pool.Bind(m.Proc.Sites),
		cfg:     cfg,
		retries: map[int]int{},
	}
	m.SetPatches(s.Bound)
	return s
}

// SimSeconds returns the monotonic simulated time consumed so far,
// including re-execution work during recovery (rollbacks rewind the process
// clock, not this timeline).
func (s *Supervisor) SimSeconds() float64 { return s.M.SimSeconds() }

// Run processes the whole input log, recovering from failures as they
// occur, and returns the run statistics.
func (s *Supervisor) Run() Stats {
	for {
		s.collectValidations(false)
		s.M.Ckpt.MaybeCheckpoint()
		s.M.SyncClock()
		cursorBefore := s.M.Log.Cursor()
		f, ok := s.M.Step()
		if !ok {
			break
		}
		s.events++
		if s.cfg.Trace != nil {
			ev := s.M.Log.At(cursorBefore)
			s.cfg.Trace(ev, s.M.SimNow(), f)
		}
		if f != nil {
			s.failures++
			s.recover(f)
		}
	}
	s.collectValidations(true)
	st := Stats{
		Events:     s.events,
		Failures:   s.failures,
		SimSeconds: s.SimSeconds(),
	}
	for _, r := range s.Recoveries {
		if r.Skipped {
			st.Skipped++
		} else {
			st.Recoveries++
		}
		st.PatchesMade += len(r.Patches)
	}
	return st
}

// window estimates the success horizon: events corresponding to ~3
// checkpoint intervals beyond the failure (§4.1's conservative end point).
func (s *Supervisor) window() int {
	cps := s.M.Ckpt.Checkpoints()
	if len(cps) >= 2 {
		span := cps[len(cps)-1].Cursor - cps[0].Cursor
		if per := span / (len(cps) - 1); per > 0 {
			w := 3 * per
			if w < 5 {
				w = 5
			}
			if w > 400 {
				w = 400
			}
			return w
		}
	}
	return 30
}

// recover diagnoses the failure, generates and applies patches, rolls back,
// validates and reports (Figure 1's full cycle).
func (s *Supervisor) recover(f *proc.Fault) {
	t0 := time.Now()
	failCursor := s.M.Log.Cursor() // the failing event is consumed
	until := failCursor + s.window()

	eng := diagnosis.New(s.M, s.cfg.Diagnosis)
	res := eng.Diagnose(until)
	rec := &Recovery{Fault: f, Result: res}
	s.Recoveries = append(s.Recoveries, rec)

	if res.Nondeterministic {
		// The plain re-execution already carried the program past the
		// failure region; continue from its state.

		rec.RecoveryWall = time.Since(t0)
		return
	}

	s.retries[f.Event]++
	if !res.OK() || s.retries[f.Event] > s.cfg.MaxRetriesPerEvent {
		s.skipFailingEvent(failCursor)
		rec.Skipped = true
		rec.RecoveryWall = time.Since(t0)
		return
	}

	// Patch generation and application.
	for _, fd := range res.Findings {
		for _, site := range fd.Sites {
			np := patch.New(fd.Bug, s.M.SiteKey(site))
			np.Origin = fmt.Sprintf("diagnosed from failure at event #%d", f.Event)
			rec.Patches = append(rec.Patches, s.Pool.Add(np))
		}
	}
	s.Bound.Invalidate()

	// Recovery: roll back to the chosen checkpoint; the main loop
	// re-executes from there in normal mode with the patches active.
	s.M.Rollback(res.Checkpoint)
	s.M.Ckpt.DropAfter(res.Checkpoint)

	rec.RecoveryWall = time.Since(t0)

	// Patch validation on the buggy region. In parallel mode a cloned
	// machine validates on another goroutine while the main loop resumes
	// immediately — the paper's design; otherwise it runs inline, timed
	// apart from recovery.
	switch {
	case s.cfg.DisableValidation:
		rec.Report = s.buildReport(rec, f, res)
	case s.cfg.ParallelValidation:
		clone := s.M.Clone()
		frozen := s.Pool.Clone().Bind(clone.Proc.Sites)
		clone.SetPatches(frozen)
		cpClone := clone.Ckpt.Take()
		pv := &pendingValidation{rec: rec, done: make(chan struct{})}
		s.pending = append(s.pending, pv)
		go func() {
			tv := time.Now()
			v := validate.New(clone, s.cfg.Validation).Validate(cpClone, until)
			rec.ValidationResult = &v
			rec.ValidationWall = time.Since(tv)
			close(pv.done)
		}()
		// The report is completed when the validation is collected.
	default:
		tv := time.Now()
		v := validate.New(s.M, s.cfg.Validation).Validate(res.Checkpoint, until)
		rec.ValidationWall = time.Since(tv)
		rec.ValidationResult = &v
		s.applyValidation(rec)
		// Return to the recovery point for resumption.
		s.M.Rollback(res.Checkpoint)
		rec.Report = s.buildReport(rec, f, res)
	}
}

// applyValidation applies a completed validation verdict to the pool.
func (s *Supervisor) applyValidation(rec *Recovery) {
	if rec.ValidationResult == nil {
		return
	}
	if rec.ValidationResult.Consistent {
		rec.Validated = true
		for _, p := range rec.Patches {
			s.Pool.MarkValidated(p.ID)
		}
		return
	}
	for _, p := range rec.Patches {
		s.Pool.Revoke(p.ID)
	}
	s.Bound.Invalidate()
}

// collectValidations harvests finished (or, when block is set, all)
// parallel validations, applying their verdicts and completing reports.
func (s *Supervisor) collectValidations(block bool) {
	remaining := s.pending[:0]
	for _, pv := range s.pending {
		if block {
			<-pv.done
		} else {
			select {
			case <-pv.done:
			default:
				remaining = append(remaining, pv)
				continue
			}
		}
		s.applyValidation(pv.rec)
		pv.rec.Report = s.buildReport(pv.rec, pv.rec.Fault, pv.rec.Result)
	}
	s.pending = remaining
}

func (s *Supervisor) buildReport(rec *Recovery, f *proc.Fault, res diagnosis.Result) *report.Report {
	// Snapshot the patches under the pool lock: with several processes
	// sharing the pool, flags may be mutating while we render.
	snap := make([]*patch.Patch, 0, len(rec.Patches))
	for _, p := range rec.Patches {
		if q, ok := s.Pool.Get(p.ID); ok {
			snap = append(snap, &q)
		}
	}
	return report.Build(
		s.M.Prog.Name(), f, res.Log, res.Rollbacks,
		snap, rec.ValidationResult, s.M.SiteKey,
		rec.RecoveryWall.Seconds(), rec.ValidationWall.Seconds(),
	)
}

// skipFailingEvent is the last-resort fallback: roll back to the latest
// checkpoint, replay up to the failing event, and drop it.
func (s *Supervisor) skipFailingEvent(failCursor int) {
	cp := s.M.Ckpt.Latest()
	s.M.Rollback(cp)

	for s.M.Log.Cursor() < failCursor-1 {
		if f, ok := s.M.Step(); !ok || f != nil {
			break
		}
		s.M.SyncClock()
	}
	s.M.Log.SetCursor(failCursor)
}

// Checkpoint exposes the manager (experiments read Table-7 stats from it).
func (s *Supervisor) Checkpoint() *checkpoint.Manager { return s.M.Ckpt }

// Ext exposes the allocator extension (experiments read space stats).
func (s *Supervisor) Ext() *allocext.Ext { return s.M.Ext }
