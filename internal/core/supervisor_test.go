package core

import (
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/mmbug"
)

// expectSites is the paper's Table-3 "No. of call-sites applied" column.
var expectSites = map[string]int{
	"apache":     7,
	"squid":      1,
	"cvs":        1,
	"pine":       1,
	"mutt":       1,
	"m4":         2,
	"bc":         3,
	"apache-uir": 1,
	"apache-dpw": 1,
}

func runApp(t *testing.T, name string, triggers []int, events int) (*Supervisor, Stats) {
	t.Helper()
	a, err := apps.New(name)
	if err != nil {
		t.Fatal(err)
	}
	log := a.Workload(events, triggers)
	sup := NewSupervisor(a, log, Config{})
	stats := sup.Run()
	return sup, stats
}

func TestSurviveAndDiagnoseEachApplication(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sup, stats := runApp(t, name, []int{230}, 600)
			if stats.Failures == 0 {
				t.Fatal("trigger did not fail under supervision")
			}
			if len(sup.Recoveries) == 0 {
				t.Fatal("no recovery recorded")
			}
			rec := sup.Recoveries[0]
			if rec.Skipped {
				t.Fatalf("diagnosis fell back to skipping; log:\n%v", rec.Result.Log)
			}
			// The diagnosed class must match the ground truth.
			a, _ := apps.New(name)
			want := a.Bugs()[0]
			found := false
			for _, fd := range rec.Result.Findings {
				if fd.Bug == want {
					found = true
				}
				if fd.Bug != want && name != "bc" {
					t.Errorf("spurious finding %v (want only %v)", fd.Bug, want)
				}
			}
			if !found {
				t.Fatalf("bug %v not diagnosed; findings: %+v\nlog:\n%v", want, rec.Result.Findings, rec.Result.Log)
			}
			// Patch application points match the paper's counts.
			if got := len(rec.Patches); got != expectSites[name] {
				t.Errorf("patched call-sites = %d, want %d; patches: %v", got, expectSites[name], rec.Patches)
				for _, l := range rec.Result.Log {
					t.Log(l)
				}
			}
			// The run completed: every event after recovery processed.
			if stats.Events == 0 {
				t.Fatal("no events processed")
			}
			// Validation must pass for a correctly diagnosed memory bug.
			if !rec.Validated {
				reason := ""
				if rec.ValidationResult != nil {
					reason = rec.ValidationResult.Reason
				}
				t.Errorf("validation failed: %s", reason)
			}
			t.Logf("%s: %d rollbacks, %d patches, recovery %.1fms, validation %.1fms",
				name, rec.Result.Rollbacks, len(rec.Patches),
				float64(rec.RecoveryWall.Microseconds())/1000,
				float64(rec.ValidationWall.Microseconds())/1000)
		})
	}
}

func TestPatchesPreventFutureFailures(t *testing.T) {
	// Repeated triggers: only the first may fail; the patches must absorb
	// every later one (paper §7.3 / Figure 4).
	for _, name := range []string{"apache", "squid", "cvs", "m4", "bc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sup, stats := runApp(t, name, []int{230, 700, 1200, 1700}, 2200)
			if stats.Failures != 1 {
				t.Fatalf("failures = %d, want exactly 1 (first trigger only); recoveries: %d",
					stats.Failures, len(sup.Recoveries))
			}
			if len(sup.Recoveries) != 1 || sup.Recoveries[0].Skipped {
				t.Fatalf("unexpected recovery records: %+v", sup.Recoveries)
			}
		})
	}
}

func TestDiagnosisRollbackCountsAreReasonable(t *testing.T) {
	// Shape check against Table 3: direct-evidence bugs take few
	// rollbacks; binary-search bugs (apache, m4, apache-uir) take more.
	direct := []string{"squid", "cvs", "pine", "mutt", "bc", "apache-dpw"}
	for _, name := range direct {
		sup, _ := runApp(t, name, []int{230}, 600)
		rb := sup.Recoveries[0].Result.Rollbacks
		if rb < 2 || rb > 15 {
			t.Errorf("%s rollbacks = %d, want a small count (direct identification)", name, rb)
		}
	}
	searchy := []string{"apache", "m4", "apache-uir"}
	counts := map[string]int{}
	for _, name := range searchy {
		sup, _ := runApp(t, name, []int{230}, 600)
		counts[name] = sup.Recoveries[0].Result.Rollbacks
	}
	// Apache (7 sites) must need more rollbacks than m4 (2 sites).
	if counts["apache"] <= counts["m4"] {
		t.Errorf("apache rollbacks (%d) should exceed m4's (%d): more sites to search", counts["apache"], counts["m4"])
	}
	for name, rb := range counts {
		if rb < 5 {
			t.Errorf("%s rollbacks = %d, suspiciously few for binary search", name, rb)
		}
		t.Logf("%s: %d rollbacks", name, rb)
	}
}

func TestPatchPoolSharedAcrossProcesses(t *testing.T) {
	// First process diagnoses and patches; a second process running the
	// same program with the same pool never fails (paper §2: patches
	// protect other processes running the same executable).
	a1, _ := apps.New("squid")
	log1 := a1.Workload(500, []int{200})
	sup1 := NewSupervisor(a1, log1, Config{})
	st1 := sup1.Run()
	if st1.Failures != 1 {
		t.Fatalf("first process failures = %d", st1.Failures)
	}

	a2, _ := apps.New("squid")
	log2 := a2.Workload(500, []int{100})
	sup2 := NewSupervisor(a2, log2, Config{Pool: sup1.Pool})
	st2 := sup2.Run()
	if st2.Failures != 0 {
		t.Fatalf("second process failed %d times despite inherited patches", st2.Failures)
	}
}

func TestNoTriggersMeansNoRecoveries(t *testing.T) {
	sup, stats := runApp(t, "apache", nil, 500)
	if stats.Failures != 0 || len(sup.Recoveries) != 0 {
		t.Fatalf("clean run produced failures: %+v", stats)
	}
	if sup.Pool.Len() != 0 {
		t.Fatal("patches generated without failures")
	}
}

func TestDiagnosedBugTypesExactlyMatchGroundTruth(t *testing.T) {
	// Correctness property (§4.3): First-Aid never misdiagnoses one
	// memory bug class as another.
	for _, name := range apps.Names() {
		a, _ := apps.New(name)
		sup, _ := runApp(t, name, []int{230}, 600)
		if len(sup.Recoveries) == 0 {
			t.Fatalf("%s: no recovery", name)
		}
		wantSet := map[mmbug.Type]bool{}
		for _, b := range a.Bugs() {
			wantSet[b] = true
		}
		for _, fd := range sup.Recoveries[0].Result.Findings {
			if !wantSet[fd.Bug] {
				t.Errorf("%s: misdiagnosed class %v (ground truth %v)", name, fd.Bug, a.Bugs())
			}
		}
	}
}

func TestRecoveryReportIsComplete(t *testing.T) {
	sup, _ := runApp(t, "apache", []int{230}, 600)
	rec := sup.Recoveries[0]
	if rec.Report == nil {
		t.Fatal("no report")
	}
	text := rec.Report.String()
	for _, want := range []string{
		"1. Failure:", "2. Diagnosis summary", "3. Patch applied",
		"4. Memory allocations", "5. Illegal access",
		"delay free", "util_ald_free",
	} {
		if !containsStr(text, want) {
			t.Errorf("report missing %q\n%s", want, text)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
