package core

import (
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/telemetry"
)

// TestTelemetryConsistency is the reconciliation soak: after a supervised
// run with failures, the telemetry registry must agree with the
// supervisor's own Stats and with itself, under both synchronous and
// parallel validation:
//
//   - one recovery span per failure, every span terminal;
//   - core.failures == Stats.Failures, core.skipped_events == Stats.Skipped;
//   - patch.generated == Stats.PatchesMade;
//   - checkpoints and rollbacks actually counted;
//   - patch-pool hits cannot exceed MM operations (every hit is an
//     allocation or deallocation passing through the extension);
//   - frees never exceed allocations;
//   - no validation left pending (queue depth gauge drained to 0).
func TestTelemetryConsistency(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		mode := "sync"
		if parallel {
			mode = "parallel"
		}
		t.Run(mode, func(t *testing.T) {
			for _, name := range []string{"apache", "squid", "cvs"} {
				name := name
				t.Run(name, func(t *testing.T) {
					reg := telemetry.NewRegistry()
					cfg := Config{ParallelValidation: parallel}
					cfg.Machine.Metrics = reg
					a, _ := apps.New(name)
					log := a.Workload(900, []int{230, 600})
					sup := NewSupervisor(a, log, cfg)
					stats := sup.Run()
					if stats.Failures == 0 {
						t.Fatal("soak produced no failures")
					}

					snap := reg.Snapshot()
					c := snap.Counters

					if got := c["core.failures"]; got != uint64(stats.Failures) {
						t.Errorf("core.failures = %d, Stats.Failures = %d", got, stats.Failures)
					}
					if got := c["core.skipped_events"]; got != uint64(stats.Skipped) {
						t.Errorf("core.skipped_events = %d, Stats.Skipped = %d", got, stats.Skipped)
					}
					if got := c["patch.generated"]; got != uint64(stats.PatchesMade) {
						t.Errorf("patch.generated = %d, Stats.PatchesMade = %d", got, stats.PatchesMade)
					}

					// One span per failure; all spans must have ended.
					if len(snap.Spans) != stats.Failures {
						t.Errorf("%d recovery spans, %d failures", len(snap.Spans), stats.Failures)
					}
					for _, sp := range snap.Spans {
						if !sp.Done || sp.Outcome == "" {
							t.Errorf("span %d not terminal: %+v", sp.ID, sp)
						}
					}

					// The pipeline must actually have exercised its layers.
					if c["ckpt.taken"] == 0 {
						t.Error("no checkpoints counted")
					}
					if c["ckpt.rollbacks"] == 0 {
						t.Error("no rollbacks counted despite failures")
					}
					if c["diag.rollbacks"] == 0 {
						t.Error("no diagnostic re-executions counted")
					}
					if c["diag.rollbacks"] != c["diag.phase1_reexecs"]+c["diag.phase2_reexecs"] {
						t.Errorf("diag.rollbacks = %d but phase1+phase2 = %d+%d",
							c["diag.rollbacks"], c["diag.phase1_reexecs"], c["diag.phase2_reexecs"])
					}

					// Pool hits happen on MM operations: bounded by them.
					hits := c["patch.alloc_hits"] + c["patch.free_hits"]
					ops := c["heap.mallocs"] + c["heap.frees"]
					if hits > ops {
						t.Errorf("patch-pool hits %d exceed MM operations %d", hits, ops)
					}
					if stats.PatchesMade > 0 && hits == 0 {
						t.Error("patches generated but never hit")
					}
					if c["heap.frees"] > c["heap.mallocs"] {
						t.Errorf("frees %d > mallocs %d", c["heap.frees"], c["heap.mallocs"])
					}

					// Run() collects every pending validation before returning.
					if got := snap.Gauges["core.pending_validations"]; got != 0 {
						t.Errorf("pending validations gauge = %d after Run", got)
					}
				})
			}
		})
	}
}

// TestTelemetryCloneMergeAccounting pins the clone-aggregation contract:
// with parallel validation the cloned machines' allocator work is folded
// into the parent registry, so a parallel run counts at least as many
// mallocs as the same run with validation disabled.
func TestTelemetryCloneMergeAccounting(t *testing.T) {
	run := func(parallel, disable bool) (Stats, telemetry.Snapshot) {
		reg := telemetry.NewRegistry()
		cfg := Config{ParallelValidation: parallel, DisableValidation: disable}
		cfg.Machine.Metrics = reg
		a, _ := apps.New("apache")
		log := a.Workload(700, []int{230})
		sup := NewSupervisor(a, log, cfg)
		st := sup.Run()
		return st, reg.Snapshot()
	}

	stNo, snapNo := run(false, true)
	stPar, snapPar := run(true, false)
	if stNo.Failures != stPar.Failures {
		t.Fatalf("failure counts diverge: %d vs %d", stNo.Failures, stPar.Failures)
	}
	base := snapNo.Counters["heap.mallocs"]
	merged := snapPar.Counters["heap.mallocs"]
	if merged <= base {
		t.Errorf("parallel-validation mallocs %d not above no-validation %d: clone work not merged",
			merged, base)
	}
	// The clone's validation re-executions also run the monitor.
	if snapPar.Counters["monitor.events"] <= snapNo.Counters["monitor.events"] {
		t.Errorf("monitor.events %d not above %d", snapPar.Counters["monitor.events"], snapNo.Counters["monitor.events"])
	}
}
