package core

import (
	"bytes"
	"testing"

	"firstaid/internal/apps"
	"firstaid/internal/trace"
)

// TestTraceCoversRecoveryPipeline runs a supervised workload with a bug
// trigger and checks the execution trace tells the whole story: allocation
// records with call-sites, checkpoint/rollback records, a trap, and a
// balanced begin/end pair for every pipeline phase — under both inline and
// parallel validation (where the validation phase lands on the clone's
// derived track).
func TestTraceCoversRecoveryPipeline(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		mode := "sync"
		if parallel {
			mode = "parallel"
		}
		t.Run(mode, func(t *testing.T) {
			trc := trace.New(1 << 18)
			cfg := Config{ParallelValidation: parallel}
			cfg.Machine.Trace = trc
			a, _ := apps.New("apache")
			log := a.Workload(600, []int{230})
			sup := NewSupervisor(a, log, cfg)
			stats := sup.Run()
			if stats.Failures == 0 {
				t.Fatal("run produced no failures — the trace proves nothing")
			}

			recs := trc.Snapshot()
			if trc.Dropped() > 0 {
				t.Fatalf("ring wrapped (%d dropped); grow the test capacity", trc.Dropped())
			}
			kinds := map[trace.Kind]int{}
			begins := map[uint64]int{}
			ends := map[uint64]int{}
			validationTracks := map[uint16]bool{}
			var lastCycles uint64
			for _, r := range recs {
				kinds[r.Kind]++
				switch r.Kind {
				case trace.KPhaseBegin:
					begins[r.Arg1]++
				case trace.KPhaseEnd:
					ends[r.Arg1]++
				}
				if r.Arg1 == trace.PhaseValidation &&
					(r.Kind == trace.KPhaseBegin || r.Kind == trace.KPhaseEnd) {
					validationTracks[r.Worker] = true
				}
				// The cycle stamp is monotonic across rollbacks (single
				// machine, single track here — the validation clone has its
				// own clock, so restrict to the machine track).
				if r.Worker == 0 {
					if r.Cycles < lastCycles {
						t.Fatalf("cycle stamp rewound: %d after %d (seq %d)", r.Cycles, lastCycles, r.Seq)
					}
					lastCycles = r.Cycles
				}
			}

			for _, k := range []trace.Kind{
				trace.KMalloc, trace.KFree, trace.KSnapshot, trace.KCkptTake,
				trace.KRollback, trace.KRestore, trace.KTrap, trace.KPatchAdd,
			} {
				if kinds[k] == 0 {
					t.Errorf("no %v records in a recovered run", k)
				}
			}
			for _, ph := range []uint64{
				trace.PhaseRecovery, trace.PhaseDiag1, trace.PhaseDiag2,
				trace.PhasePatchGen, trace.PhaseRollback, trace.PhaseValidation,
			} {
				if begins[ph] == 0 {
					t.Errorf("phase %s never began", trace.PhaseName(ph))
				}
				if begins[ph] != ends[ph] {
					t.Errorf("phase %s: %d begins, %d ends", trace.PhaseName(ph), begins[ph], ends[ph])
				}
			}
			if parallel {
				for w := range validationTracks {
					if w&trace.ValidationTrackBit == 0 {
						t.Errorf("parallel validation phase on non-clone track %s", trace.TrackName(w))
					}
				}
			} else {
				if !validationTracks[0] {
					t.Error("inline validation phase not on the machine track")
				}
			}

			// The whole trace must export as valid Chrome trace-event JSON.
			var buf bytes.Buffer
			if err := trace.ChromeTrace(&buf, recs); err != nil {
				t.Fatalf("ChromeTrace: %v", err)
			}
			if err := trace.ValidateChrome(buf.Bytes()); err != nil {
				t.Fatalf("recovered-run trace fails chrome validation: %v", err)
			}

			// And summarize must attribute cycles to the phases it found.
			s := trace.Summarize(recs)
			var sawRecovery bool
			for _, p := range s.Phases {
				if p.ID == trace.PhaseRecovery {
					sawRecovery = true
					if p.Count == 0 || p.Cycles == 0 {
						t.Errorf("recovery phase has no attributed time: %+v", p)
					}
				}
			}
			if !sawRecovery {
				t.Error("summary lost the recovery phase")
			}
		})
	}
}
