package diagnosis

import (
	"testing"

	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
)

// Ablation: without heap marking, the Figure-3 scenario misidentifies the
// checkpoint — preventive changes applied *after* the bug-triggering point
// appear effective because they disturb the heap layout.
func TestAblationNoHeapMarkingMisidentifiesCheckpoint(t *testing.T) {
	build := func() *mockMachine {
		m := newMock(4, nil)
		site := m.tab.Intern(callsite.Key{"xfree", "conn_close", "handle"})
		m.bugs = []fakeBug{{Typ: mmbug.DanglingWrite, Site: site, TrigSeq: 1}}
		return m
	}

	with := New(build(), Config{}).Diagnose(100)
	if !with.OK() || with.Checkpoint.Seq != 1 {
		t.Fatalf("with marking: %+v", with)
	}

	without := New(build(), Config{DisableHeapMarking: true}).Diagnose(100)
	// The ablated engine accepts the newest checkpoint (seq 3), which is
	// *after* the trigger — the Figure-3 trap. From there the bug cannot
	// be exposed (its trigger never re-executes), so diagnosis either
	// produces nothing or a wrong patch; the engine here comes up empty.
	if without.Checkpoint == nil || without.Checkpoint.Seq <= 1 {
		t.Fatalf("ablation did not reproduce the misidentification: %+v\n%v", without, without.Log)
	}
	if without.OK() {
		t.Fatalf("ablated diagnosis claims success from a post-trigger checkpoint: %+v", without.Findings)
	}
	t.Logf("with marking: cp %d (correct); without: cp %d (misidentified, diagnosis then dead-ends)",
		with.Checkpoint.Seq, without.Checkpoint.Seq)
}

// Ablation: linear site search finds the same call-sites as the binary
// search but needs far more re-executions once candidates are plentiful —
// the complexity argument behind §4.2's O(M·log N).
func TestAblationLinearSearchCostsMoreRollbacks(t *testing.T) {
	build := func() (*mockMachine, []callsite.ID) {
		m := newMock(3, nil)
		m.freeSites = sitesOf(m, 28, "xfree")
		var buggy []callsite.ID
		for _, name := range []string{"purgeA", "purgeB"} {
			s := m.tab.Intern(callsite.Key{"xfree", name, "insert"})
			buggy = append(buggy, s)
			m.bugs = append(m.bugs, fakeBug{Typ: mmbug.DanglingRead, Site: s, TrigSeq: 99})
		}
		return m, buggy
	}

	mBin, buggy := build()
	bin := New(mBin, Config{}).Diagnose(100)
	mLin, _ := build()
	lin := New(mLin, Config{LinearSiteSearch: true}).Diagnose(100)

	for _, res := range []*Result{&bin, &lin} {
		if !res.OK() {
			t.Fatalf("diagnosis failed: %v", res.Log)
		}
		got := map[callsite.ID]bool{}
		for _, s := range res.Findings[0].Sites {
			got[s] = true
		}
		for _, s := range buggy {
			if !got[s] {
				t.Fatalf("missing site %d in %v", s, res.Findings[0].Sites)
			}
		}
	}
	if lin.Rollbacks <= bin.Rollbacks {
		t.Fatalf("linear (%d rollbacks) not costlier than binary (%d) over 30 candidates",
			lin.Rollbacks, bin.Rollbacks)
	}
	t.Logf("binary: %d rollbacks, linear: %d rollbacks (M=2, N=30)", bin.Rollbacks, lin.Rollbacks)
}
