// Package diagnosis implements First-Aid's two-phase, environmental-change
// based failure diagnosis (paper §4).
//
// Phase 1 finds the latest checkpoint taken before the bug-triggering
// point: it rolls back through checkpoints in reverse chronological order,
// first screening for non-deterministic failures with a plain re-execution,
// then probing each checkpoint with every preventive change applied to all
// objects — with the heap-marking technique (§4.1, Figure 3) rejecting
// checkpoints whose apparent success merely reflects disturbed heap layout
// after a bug that had already been triggered.
//
// Phase 2 identifies the bug types and the call-sites of the
// bug-triggering objects: it probes each candidate type b with the
// exposing change for b plus preventive changes for every other type
// (so only b can manifest), checks convergence after each hit, reads
// call-sites directly from canary and parameter-check evidence for
// overflow / dangling-write / double-free, and runs the O(M·log N)
// binary search over observed call-sites for the read-type bugs
// (dangling read, uninitialized read).
package diagnosis

import (
	"fmt"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/ledger"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// Outcome is the observable result of one diagnostic re-execution.
type Outcome struct {
	Fault     *proc.Fault
	Manifests allocext.ManifestSet
	// MetaErr is non-nil when the re-execution reached the horizon but
	// left the allocator's own metadata corrupted: the window's changes
	// masked a trap (e.g. delay-free never handing a smashed header back
	// to the raw allocator) without neutralizing the corruption itself.
	MetaErr error
	// Interrupted marks a re-execution torn down by a speculation cancel
	// flag before reaching the horizon. Only losing speculative clones
	// produce it; the engine never consumes an interrupted outcome.
	Interrupted bool
}

// Passed reports whether the re-execution survived the failure region.
func (o Outcome) Passed() bool { return o.Fault == nil }

// Machine is the rollback/re-execution substrate the engine drives;
// core.Machine implements it.
type Machine interface {
	// Checkpoints returns the retained checkpoints, oldest first.
	Checkpoints() []*checkpoint.Checkpoint
	// Rollback reinstates the given checkpoint's state.
	Rollback(cp *checkpoint.Checkpoint)
	// MarkHeap canary-fills free heap space (call after Rollback).
	MarkHeap() error
	// ReExecute re-runs events under the given changes until the replay
	// cursor reaches `until` or a fault traps.
	ReExecute(cs *allocext.ChangeSet, until int) Outcome
	// SeenAllocSites / SeenFreeSites return the call-sites observed by
	// the most recent ReExecute.
	SeenAllocSites() []callsite.ID
	SeenFreeSites() []callsite.ID
	// SiteKey resolves an interned call-site for log rendering.
	SiteKey(id callsite.ID) callsite.Key
}

// Config tunes the engine.
type Config struct {
	// MaxCheckpoints bounds the Phase-1 backward search (default 8);
	// beyond it the bug is logged as non-patchable.
	MaxCheckpoints int
	// MaxRollbacks is the overall re-execution budget (default 200).
	MaxRollbacks int

	// DisableHeapMarking is an ablation switch: Phase 1 runs without the
	// §4.1 marking pass, re-enabling the Figure-3 checkpoint
	// misidentification. For experiments only.
	DisableHeapMarking bool
	// LinearSiteSearch is an ablation switch: identify read-type bug
	// call-sites by probing candidates one at a time (O(M·N)
	// re-executions) instead of the paper's O(M·log N) binary search.
	// For experiments only.
	LinearSiteSearch bool

	// DetectedEarly records that the triggering fault came from a
	// protected region's eager check rather than a later use of the
	// corrupted state: the error-propagation distance is zero, which the
	// diagnosis log notes since it shortens the window Phase 1 must cover.
	DetectedEarly bool

	// Evidence, when set, carries direct bug evidence captured at the
	// detection point (a sampled guard-page hit): the manifested class,
	// the implicated call-site and the process clock of the decisive
	// operation. The engine then tries the fast path — one scoped
	// confirmation re-execution instead of the phase-1 checkpoint search
	// and phase-2 class/site identification — falling back to the full
	// pipeline if confirmation fails.
	Evidence *Evidence

	// Ledger, when set, is the recovery's lifecycle entry: the engine
	// appends the Phase1Skipped/Phase1Completed and CheckpointSelected
	// conditions, recording every candidate checkpoint it considered and
	// why the rejected ones were rejected. A nil entry discards appends.
	Ledger *ledger.Entry

	// Prober, when set, may satisfy prefetchable probes (the phase-1
	// candidate ladder and the phase-2 class probes) from speculative
	// re-executions raced on cloned machines. The engine announces each
	// batch with Prefetch and then consumes outcomes strictly in serial
	// program order with Take, so logs, conditions and budget accounting
	// are identical to the serial pipeline; probes the prober cannot serve
	// fall back to the engine's own rollback–re-execute. Nil keeps the
	// engine fully serial.
	Prober Prober

	// Metrics, when set, receives diagnosis counters: total rollbacks and
	// probe re-executions per phase.
	Metrics *telemetry.Registry
	// Span, when set, receives one timed phase per diagnosis phase run,
	// with the phase's rollback count and outcome.
	Span *telemetry.Span
	// Trace, when set, records phase begin/end markers in the execution
	// trace; the end record carries the phase's rollback count.
	Trace trace.Emitter
}

func (c *Config) fillDefaults() {
	if c.MaxCheckpoints == 0 {
		c.MaxCheckpoints = 8
	}
	if c.MaxRollbacks == 0 {
		c.MaxRollbacks = 200
	}
}

// Evidence is direct bug evidence from a detector that traps at the
// faulting access (the guard tier): class, call-site, and the process
// clock of the decisive operation (allocation for overflow, free for
// dangling accesses) — the fast path rolls back to the newest checkpoint
// strictly older than that clock.
type Evidence struct {
	Bug   mmbug.Type
	Site  callsite.ID
	Clock uint64
}

// Finding is one diagnosed bug: its class and the call-sites of the
// bug-triggering memory objects (patch application points).
type Finding struct {
	Bug   mmbug.Type
	Sites []callsite.ID
}

// Result is the diagnosis outcome.
type Result struct {
	// Nondeterministic: plain re-execution succeeded; no patch needed.
	Nondeterministic bool
	// Unpatchable: no checkpoint/change combination survives; resort to
	// other recovery schemes.
	Unpatchable bool
	// Checkpoint is the latest checkpoint before the bug-triggering
	// point — the recovery and patch-validation base.
	Checkpoint *checkpoint.Checkpoint
	// Findings lists the diagnosed bug classes with their call-sites.
	Findings []Finding
	// Rollbacks counts diagnostic re-executions (Table 3's "No. of
	// rollbacks for diagnosis").
	Rollbacks int
	// FastPath marks a diagnosis completed from detection-point evidence
	// with a single confirmation re-execution — phase 1 and phase 2 were
	// skipped entirely.
	FastPath bool
	// Log is the human-readable diagnosis log included in the bug
	// report.
	Log []string
}

// OK reports whether patches can be generated from the result.
func (r *Result) OK() bool {
	return !r.Nondeterministic && !r.Unpatchable && len(r.Findings) > 0
}

// Engine drives diagnosis over a Machine.
type Engine struct {
	m   Machine
	cfg Config

	rollbacks int
	log       []string

	metRollbacks *telemetry.Counter
	metPhase1    *telemetry.Counter
	metPhase2    *telemetry.Counter
	metGuard     *telemetry.Counter
	curPhase     *telemetry.Counter // phase counter reexec charges to
}

// New creates an engine.
func New(m Machine, cfg Config) *Engine {
	cfg.fillDefaults()
	return &Engine{
		m:   m,
		cfg: cfg,
		// A nil Metrics registry resolves to nil counters, whose methods
		// are no-ops — the probe loop carries no conditionals.
		metRollbacks: cfg.Metrics.Counter("diag.rollbacks"),
		metPhase1:    cfg.Metrics.Counter("diag.phase1_reexecs"),
		metPhase2:    cfg.Metrics.Counter("diag.phase2_reexecs"),
		metGuard:     cfg.Metrics.Counter("diag.guard_confirms"),
	}
}

func (e *Engine) logf(format string, args ...interface{}) {
	e.log = append(e.log, fmt.Sprintf(format, args...))
}

// reexec rolls back to cp (marking the heap when mark is set) and performs
// one diagnostic re-execution.
func (e *Engine) reexec(cp *checkpoint.Checkpoint, cs *allocext.ChangeSet, until int, mark bool) Outcome {
	e.m.Rollback(cp)
	if mark {
		if err := e.m.MarkHeap(); err != nil {
			e.logf("heap marking failed: %v", err)
		}
	}
	e.rollbacks++
	e.metRollbacks.Inc()
	e.curPhase.Inc()
	return e.m.ReExecute(cs, until)
}

// reexecReq performs one prefetchable probe. When a Prober holds the probe's
// speculative outcome, the engine consumes it in serial program order — the
// rollback budget, counters and log lines advance exactly as if the probe
// had just run — and its own machine is left untouched; otherwise the probe
// falls back to the serial rollback–re-execute.
func (e *Engine) reexecReq(r *ProbeReq) Outcome {
	if e.cfg.Prober != nil {
		if pr, ok := e.cfg.Prober.Take(r); ok {
			if r.Mark && pr.MarkErr != nil {
				e.logf("heap marking failed: %v", pr.MarkErr)
			}
			e.rollbacks++
			e.metRollbacks.Inc()
			e.curPhase.Inc()
			return pr.Out
		}
	}
	return e.reexec(r.Ckpt, r.CS, r.Until, r.Mark)
}

func (e *Engine) budgetExceeded() bool { return e.rollbacks >= e.cfg.MaxRollbacks }

// ProbeReq describes one prefetchable diagnostic re-execution: roll back to
// Ckpt (marking the heap when Mark is set) and re-execute under CS until the
// replay cursor reaches Until. The engine builds each request exactly once
// and matches prober answers by request identity, so a ChangeSet is never
// shared between two probes.
type ProbeReq struct {
	Ckpt  *checkpoint.Checkpoint
	CS    *allocext.ChangeSet
	Until int
	Mark  bool
}

// ProbeResult is a completed probe: the re-execution outcome plus the
// heap-marking error, if any (the engine logs it exactly where the serial
// pipeline would).
type ProbeResult struct {
	Out     Outcome
	MarkErr error
}

// Prober races prefetched probes on behalf of the engine. Implementations
// must be cheap to call from the supervisor goroutine: Prefetch launches
// hypotheses asynchronously, Take blocks only for the one requested probe,
// and CancelAll tears down everything still in flight (the session calls it
// once, when the diagnosis resolves).
type Prober interface {
	// Prefetch announces probes the engine will consume in order. The
	// prober may launch any subset; unserved requests fall back to serial
	// re-execution.
	Prefetch(reqs []*ProbeReq)
	// Take returns the finished outcome for a previously prefetched
	// request, blocking until its race completes. ok=false means the
	// prober never launched it.
	Take(r *ProbeReq) (ProbeResult, bool)
	// CancelAll tears down in-flight probes that were never consumed.
	CancelAll()
}

// candidate renders a checkpoint as ledger evidence.
func candidate(cp *checkpoint.Checkpoint, rejected string) ledger.CandidateInfo {
	return ledger.CandidateInfo{
		CheckpointInfo: ledger.CheckpointInfo{Seq: cp.Seq, Clock: cp.Clock, Cursor: cp.Cursor},
		Rejected:       rejected,
	}
}

// Diagnose runs both phases. until is the success horizon: a re-execution
// that reaches this replay-cursor position without a fault has "passed the
// original failure region" (the supervisor sets it to the failure cursor
// plus ~3 checkpoint intervals of events, per §4.1). It is the canonical
// serial plan over the Session phase methods; a stage plan may drive the
// same methods itself.
func (e *Engine) Diagnose(until int) Result {
	s := e.Session(until)
	s.TryEvidence()
	s.Screen()
	s.SelectCheckpoint()
	s.Identify()
	return s.Result()
}

// Session is one diagnosis split into its externally steerable phases:
// TryEvidence (guard fast path), Screen (non-determinism screen),
// SelectCheckpoint (phase-1 backward search), Identify (phase-2 class and
// site identification), Result (seal and cancel speculation). Each method
// no-ops once the session has resolved, so a stage plan can run any
// prefix, reorder around the fast path, or skip phases entirely; the
// observable output (log lines, ledger conditions, rollback counts) of the
// phases that do run is byte-identical to Diagnose's.
type Session struct {
	e     *Engine
	until int

	done     bool // a terminal or final result exists
	finished bool // Result sealed the session and cancelled the prober
	res      Result

	cp              *checkpoint.Checkpoint
	endPhase1       func(outcome string, n int)
	phase1Rollbacks int
	ladder          []*ProbeReq
	classReqs       map[mmbug.Type]*ProbeReq
}

// Session opens a diagnosis session, resetting the engine's per-diagnosis
// state exactly as Diagnose does.
func (e *Engine) Session(until int) *Session {
	e.rollbacks = 0
	e.log = nil
	if e.cfg.DetectedEarly {
		e.logf("failure detected early at a protected-region touchpoint: corruption trapped at the causing event (zero-event propagation)")
	}
	return &Session{e: e, until: until}
}

// Resolved reports whether the session has produced a result.
func (s *Session) Resolved() bool { return s.done }

// Checkpoint returns the phase-1 selection (nil until SelectCheckpoint, or
// when the session resolved without one).
func (s *Session) Checkpoint() *checkpoint.Checkpoint {
	if s.done && s.res.Checkpoint != nil {
		return s.res.Checkpoint
	}
	return s.cp
}

// TryEvidence attempts the guard-evidence fast path: one scoped
// confirmation re-execution replaces both search phases. A session without
// evidence, or whose confirmation fails, stays unresolved.
func (s *Session) TryEvidence() {
	if s.done || s.e.cfg.Evidence == nil {
		return
	}
	if res, ok := s.e.confirmEvidence(s.until); ok {
		s.res = res
		s.done = true
	}
}

// terminal seals a phase-1 terminal result (non-deterministic or
// unpatchable), closing the phase-1 span and trace records.
func (s *Session) terminal(res Result) {
	e := s.e
	outcome := "unpatchable"
	if res.Nondeterministic {
		outcome = "nondeterministic"
	}
	s.endPhase1(outcome, e.rollbacks)
	e.cfg.Trace.Emit(trace.KPhaseEnd, trace.PhaseDiag1, uint64(e.rollbacks))
	res.Rollbacks = e.rollbacks
	res.Log = e.log
	s.res = res
	s.done = true
}

// Screen opens phase 1 and screens for a non-deterministic failure with a
// plain re-execution from the newest checkpoint. The screen always runs
// serially on the engine's own machine: when it passes, the supervisor
// continues from the re-executed state, so that state must land on the
// parent, never on a clone. Before the screen runs, the phase-1 candidate
// ladder is built and handed to the prober — speculative clones race the
// ladder hypotheses while the parent executes the screen.
func (s *Session) Screen() {
	if s.done {
		return
	}
	e := s.e
	e.curPhase = e.metPhase1
	s.endPhase1 = e.cfg.Span.Phase("phase1")
	e.cfg.Trace.Emit(trace.KPhaseBegin, trace.PhaseDiag1, uint64(s.until))

	cps := e.m.Checkpoints()
	if len(cps) == 0 {
		e.logf("no checkpoints available")
		e.cfg.Ledger.Add(ledger.Condition{
			Type:    ledger.Phase1Completed,
			Message: "no checkpoints available: non-patchable",
		})
		s.terminal(Result{Unpatchable: true})
		return
	}

	// The candidate ladder, newest first, bounded by MaxCheckpoints. Each
	// request owns a freshly built change set; serial and speculative
	// consumption share these exact request objects.
	tried := 0
	for i := len(cps) - 1; i >= 0 && tried < e.cfg.MaxCheckpoints; i-- {
		s.ladder = append(s.ladder, &ProbeReq{
			Ckpt:  cps[i],
			CS:    allocext.AllPreventiveCanaried(),
			Until: s.until,
			Mark:  !e.cfg.DisableHeapMarking,
		})
		tried++
	}
	if e.cfg.Prober != nil {
		e.cfg.Prober.Prefetch(s.ladder)
	}

	newest := cps[len(cps)-1]
	out := e.reexec(newest, allocext.NewChangeSet(), s.until, false)
	if out.Passed() {
		e.logf("plain re-execution from %v passed: non-deterministic failure", newest)
		e.cfg.Ledger.Add(ledger.Condition{
			Type:       ledger.Phase1Completed,
			Clock:      newest.Clock,
			Message:    "plain re-execution passed: non-deterministic failure, no patch needed",
			Candidates: []ledger.CandidateInfo{candidate(newest, "")},
		})
		s.terminal(Result{Nondeterministic: true})
		return
	}
	e.logf("plain re-execution from %v failed again (%v): deterministic bug", newest, out.Fault.Kind)
}

// SelectCheckpoint walks the phase-1 ladder: each candidate is probed with
// every preventive change applied to all objects, heap marking rejecting
// checkpoints whose apparent success merely reflects disturbed layout after
// an already-triggered bug. On success the phase-2 class probes are
// prefetched from the chosen checkpoint before the session moves on.
func (s *Session) SelectCheckpoint() {
	if s.done || s.endPhase1 == nil {
		return
	}
	e := s.e
	var cands []ledger.CandidateInfo
	tried := 0
	for _, r := range s.ladder {
		cp := r.Ckpt
		tried++
		out := e.reexecReq(r)
		switch {
		case out.Passed() && !out.Manifests.HasMark() && !out.Manifests.HasUnderflow() && out.MetaErr == nil:
			e.logf("all-preventive re-execution from %v passed with clean heap marks: checkpoint precedes the bug-triggering point", cp)
			cands = append(cands, candidate(cp, ""))
			e.cfg.Ledger.Add(ledger.Condition{
				Type:    ledger.Phase1Completed,
				Clock:   cp.Clock,
				Message: fmt.Sprintf("checkpoint found after %d candidate(s)", tried),
			})
			e.cfg.Ledger.Add(ledger.Condition{
				Type:       ledger.CheckpointSelected,
				Clock:      cp.Clock,
				Message:    cp.String(),
				Checkpoint: &ledger.CheckpointInfo{Seq: cp.Seq, Clock: cp.Clock, Cursor: cp.Cursor},
				Candidates: cands,
			})
			s.endPhase1("checkpoint found", e.rollbacks)
			e.cfg.Trace.Emit(trace.KPhaseEnd, trace.PhaseDiag1, uint64(e.rollbacks))
			s.phase1Rollbacks = e.rollbacks
			s.cp = cp
			s.prefetchClassProbes()
			return
		case out.Manifests.HasMark():
			e.logf("heap-marking canaries corrupted re-executing from %v: bug triggered before this checkpoint, searching earlier", cp)
			cands = append(cands, candidate(cp, "heap-marking canaries corrupted: bug triggered before this checkpoint"))
		case out.Passed() && out.Manifests.HasUnderflow():
			e.logf("front-padding canaries corrupted re-executing from %v: the overflowing allocation predates this checkpoint, searching earlier", cp)
			cands = append(cands, candidate(cp, "front-padding canaries corrupted: the overflowing allocation predates this checkpoint"))
		case out.Passed() && out.MetaErr != nil:
			e.logf("allocator metadata corrupted after re-executing from %v (%v): an unprotected pre-checkpoint object was smashed in-window, searching earlier", cp, out.MetaErr)
			cands = append(cands, candidate(cp, fmt.Sprintf("allocator metadata corrupted after re-execution (%v)", out.MetaErr)))
		default:
			e.logf("all-preventive re-execution from %v still failed (%v): searching earlier", cp, out.Fault.Kind)
			cands = append(cands, candidate(cp, fmt.Sprintf("all-preventive re-execution still failed (%v)", out.Fault.Kind)))
		}
		if e.budgetExceeded() {
			break
		}
	}
	e.logf("no surviving checkpoint within %d candidates: non-patchable", e.cfg.MaxCheckpoints)
	e.cfg.Ledger.Add(ledger.Condition{
		Type:       ledger.Phase1Completed,
		Message:    fmt.Sprintf("no surviving checkpoint within %d candidates: non-patchable", e.cfg.MaxCheckpoints),
		Candidates: cands,
	})
	s.terminal(Result{Unpatchable: true})
}

// prefetchClassProbes builds the phase-2 exposing probes (one per bug
// class, in mmbug order — the order Identify consumes them) and hands them
// to the prober.
func (s *Session) prefetchClassProbes() {
	s.classReqs = make(map[mmbug.Type]*ProbeReq, len(mmbug.All))
	reqs := make([]*ProbeReq, 0, len(mmbug.All))
	for _, b := range mmbug.All {
		r := &ProbeReq{Ckpt: s.cp, CS: exposePlusPrevent(b), Until: s.until}
		s.classReqs[b] = r
		reqs = append(reqs, r)
	}
	if s.e.cfg.Prober != nil {
		s.e.cfg.Prober.Prefetch(reqs)
	}
}

// Identify runs phase 2 from the selected checkpoint and seals the final
// result.
func (s *Session) Identify() {
	if s.done || s.cp == nil {
		return
	}
	e := s.e
	e.curPhase = e.metPhase2
	endPhase2 := e.cfg.Span.Phase("phase2")
	e.cfg.Trace.Emit(trace.KPhaseBegin, trace.PhaseDiag2, uint64(s.until))
	findings, ok := e.phase2(s.cp, s.until, s.classReqs)
	result := Result{Checkpoint: s.cp, Findings: findings, Rollbacks: e.rollbacks}
	if !ok {
		result.Unpatchable = true
		e.logf("phase 2 failed to isolate a patchable bug set; marking non-patchable")
		endPhase2("unpatchable", e.rollbacks-s.phase1Rollbacks)
	} else {
		endPhase2("identified", e.rollbacks-s.phase1Rollbacks)
	}
	e.cfg.Trace.Emit(trace.KPhaseEnd, trace.PhaseDiag2, uint64(e.rollbacks-s.phase1Rollbacks))
	result.Log = e.log
	s.res = result
	s.done = true
}

// Result seals the session: outstanding speculative probes are cancelled
// and joined, and the diagnosis result is returned. A plan that ends
// without resolving (e.g. a truncated stage list) yields non-patchable.
// Idempotent; every caller after the first gets the same result.
func (s *Session) Result() Result {
	if !s.finished {
		if s.e.cfg.Prober != nil {
			s.e.cfg.Prober.CancelAll()
		}
		if !s.done {
			s.e.logf("diagnosis plan ended without resolving; marking non-patchable")
			s.res = Result{Unpatchable: true, Rollbacks: s.e.rollbacks, Log: s.e.log}
			s.done = true
		}
		s.finished = true
	}
	return s.res
}

// confirmEvidence tries the guard-evidence fast path: one confirmation
// re-execution from the newest checkpoint predating the evidence clock,
// with the preventive change for the evidenced class applied only at the
// evidenced call-site. If that scoped change alone survives the failure
// region, class and site are confirmed and both search phases are skipped
// (§4's diagnosis collapses to a single rollback when the detector already
// caught the bug at the faulting instruction). On any mismatch — no old
// enough checkpoint, re-execution still faults, residual metadata
// corruption — diagnosis falls through to the full pipeline.
func (e *Engine) confirmEvidence(until int) (Result, bool) {
	ev := e.cfg.Evidence
	var cp *checkpoint.Checkpoint
	for _, c := range e.m.Checkpoints() {
		if c.Clock < ev.Clock {
			cp = c
		}
	}
	if cp == nil {
		e.logf("guard evidence (%v at %v): no checkpoint predates the decisive operation (clock %d); falling back to full diagnosis", ev.Bug, ev.Site, ev.Clock)
		return Result{}, false
	}

	e.curPhase = e.metGuard
	endPhase := e.cfg.Span.Phase("guard-confirm")
	e.cfg.Trace.Emit(trace.KPhaseBegin, trace.PhaseGuardConfirm, uint64(until))
	cs := allocext.NewChangeSet()
	cs.AddPreventive(ev.Bug, callsite.NewSet(ev.Site))
	out := e.reexec(cp, cs, until, false)
	if out.Passed() && out.MetaErr == nil {
		e.logf("guard evidence confirmed: preventive %v at %v alone survives the failure region from %v", ev.Bug, ev.Site, cp)
		endPhase("confirmed", 1)
		e.cfg.Trace.Emit(trace.KPhaseEnd, trace.PhaseGuardConfirm, uint64(e.rollbacks))
		var cands []ledger.CandidateInfo
		for _, c := range e.m.Checkpoints() {
			switch {
			case c.Clock >= ev.Clock:
				cands = append(cands, candidate(c, "postdates the guard evidence's decisive operation"))
			case c != cp:
				cands = append(cands, candidate(c, "superseded by a newer pre-evidence checkpoint"))
			default:
				cands = append(cands, candidate(c, ""))
			}
		}
		e.cfg.Ledger.Add(ledger.Condition{
			Type:    ledger.Phase1Skipped,
			Clock:   ev.Clock,
			Message: "guard evidence confirmed by one scoped re-execution; phase-1 search skipped",
		})
		e.cfg.Ledger.Add(ledger.Condition{
			Type:       ledger.CheckpointSelected,
			Clock:      cp.Clock,
			Message:    cp.String(),
			Checkpoint: &ledger.CheckpointInfo{Seq: cp.Seq, Clock: cp.Clock, Cursor: cp.Cursor},
			Candidates: cands,
		})
		return Result{
			Checkpoint: cp,
			Findings:   []Finding{{Bug: ev.Bug, Sites: []callsite.ID{ev.Site}}},
			Rollbacks:  e.rollbacks,
			FastPath:   true,
			Log:        e.log,
		}, true
	}
	if out.Fault != nil {
		e.logf("guard evidence not confirmed (re-execution faulted: %v); falling back to full diagnosis", out.Fault.Kind)
	} else {
		e.logf("guard evidence not confirmed (metadata corruption: %v); falling back to full diagnosis", out.MetaErr)
	}
	endPhase("fallback", 1)
	e.cfg.Trace.Emit(trace.KPhaseEnd, trace.PhaseGuardConfirm, uint64(e.rollbacks))
	return Result{}, false
}

// --- Phase 2 ---------------------------------------------------------------------

// exposePlusPrevent builds the change set that exposes b and prevents every
// other class (all objects).
func exposePlusPrevent(b mmbug.Type) *allocext.ChangeSet {
	cs := allocext.NewChangeSet().AddExposing(b, nil)
	for _, t := range mmbug.All {
		if t != b {
			cs.AddPreventive(t, nil)
		}
	}
	return cs
}

// manifested interprets an outcome as evidence for class b per Table 1:
// canary corruption for overflow and dangling write, the parameter check
// for double free, and program failure for the read-type classes.
func manifested(b mmbug.Type, out Outcome) bool {
	switch b {
	case mmbug.BufferOverflow, mmbug.DanglingWrite, mmbug.DoubleFree:
		return out.Manifests.Has(b)
	case mmbug.DanglingRead, mmbug.UninitRead:
		return out.Fault != nil
	}
	return false
}

// phase2 identifies bug classes and call-sites from cp. classReqs, when
// non-nil, holds the prefetched class-probe requests (built by the session
// in mmbug order) so a prober can race them; classes without a request
// probe serially.
func (e *Engine) phase2(cp *checkpoint.Checkpoint, until int, classReqs map[mmbug.Type]*ProbeReq) ([]Finding, bool) {
	identified := []mmbug.Type{}
	directSites := map[mmbug.Type][]callsite.ID{}
	undecided := append([]mmbug.Type(nil), mmbug.All...)

	for len(undecided) > 0 && !e.budgetExceeded() {
		b := undecided[0]
		undecided = undecided[1:]

		var out Outcome
		if r := classReqs[b]; r != nil {
			out = e.reexecReq(r)
		} else {
			out = e.reexec(cp, exposePlusPrevent(b), until, false)
		}
		if !manifested(b, out) {
			e.logf("probe %v: no manifestation, ruled out", b)
			continue
		}
		identified = append(identified, b)
		if sites := out.Manifests.Sites(b); len(sites) > 0 {
			directSites[b] = sites
			e.logf("probe %v: manifested at %d call-site(s) %v", b, len(sites), e.renderSites(sites))
		} else {
			e.logf("probe %v: manifested as failure (%v); call-sites need binary search", b, out.Fault.Kind)
		}

		// Convergence check: preventive for the identified set plus
		// exposing for the still-undecided set; if nothing manifests,
		// the identified set covers every occurring bug type.
		if len(undecided) == 0 {
			break
		}
		cs := allocext.NewChangeSet()
		for _, t := range identified {
			cs.AddPreventive(t, nil)
		}
		for _, t := range undecided {
			cs.AddExposing(t, nil)
		}
		out = e.reexec(cp, cs, until, false)
		rest := false
		for _, t := range undecided {
			if manifested(t, out) {
				rest = true
			}
		}
		if !rest && out.Passed() {
			e.logf("convergence check passed: identified set {%v} covers all occurring bug types", identified)
			undecided = nil
		}
	}

	if len(identified) == 0 {
		// Extension beyond the paper: some dangling reads never consume
		// the poisoned data in a checkable way (e.g. a bulk copy out of
		// a large munmapped buffer — the failure is the unmapped page
		// itself, which the exposing change's delay-free suppresses).
		// No exposing probe manifests, yet Phase 1 proved the failure
		// preventable. Fall back to identifying the class by which
		// single preventive change suffices, and its call-sites by
		// *omission* of prevention.
		e.logf("no bug type manifested under any exposing change; falling back to prevention-based identification")
		return e.phase2ByPrevention(cp, until)
	}

	// Call-site identification.
	var findings []Finding
	for _, b := range identified {
		if !b.ReadType() {
			findings = append(findings, Finding{Bug: b, Sites: directSites[b]})
			continue
		}
		sites, ok := e.searchSites(cp, b, identified, until)
		if !ok {
			return nil, false
		}
		findings = append(findings, Finding{Bug: b, Sites: sites})
	}

	// Final verification: the preventive changes scoped exactly to the
	// findings (the future runtime patches) must survive the region.
	cs := allocext.NewChangeSet()
	for _, f := range findings {
		cs.AddPreventive(f.Bug, callsite.NewSet(f.Sites...))
	}
	out := e.reexec(cp, cs, until, false)
	if !out.Passed() {
		e.logf("final verification failed: scoped preventive changes did not survive (%v)", out.Fault.Kind)
		return nil, false
	}
	e.logf("final verification passed: scoped preventive changes survive the failure region")
	return findings, true
}

func (e *Engine) renderSites(sites []callsite.ID) []string {
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = e.m.SiteKey(s).String()
	}
	return out
}

// --- binary search over call-sites (read-type bugs, §4.2) -------------------------

// candidateSites runs one fully-preventive pass from cp to collect the
// complete set of call-sites exercised in the window: deallocation sites
// for dangling reads, allocation sites for uninitialized reads.
func (e *Engine) candidateSites(cp *checkpoint.Checkpoint, b mmbug.Type, until int) []callsite.ID {
	e.reexec(cp, allocext.AllPreventive(), until, false)
	if b == mmbug.UninitRead {
		return e.m.SeenAllocSites()
	}
	return e.m.SeenFreeSites()
}

// searchChanges builds one binary-search iteration's change set: expose b
// at `exposed`, prevent b at every other candidate site, prevent every
// other identified class everywhere. When exposeByOmission is set the
// "exposed" sites simply receive no change (the prevention-based fallback:
// the bug manifests as the original failure whenever its site is left
// unprotected).
func searchChanges(b mmbug.Type, identified []mmbug.Type, exposed, prevented *callsite.Set, exposeByOmission bool) *allocext.ChangeSet {
	cs := allocext.NewChangeSet()
	if !exposeByOmission {
		cs.AddExposing(b, exposed)
	}
	cs.AddPreventive(b, prevented)
	for _, t := range identified {
		if t != b {
			cs.AddPreventive(t, nil)
		}
	}
	return cs
}

// phase2ByPrevention identifies the bug class by probing each preventive
// change alone against the whole heap, then locates call-sites with the
// omission-based binary search.
func (e *Engine) phase2ByPrevention(cp *checkpoint.Checkpoint, until int) ([]Finding, bool) {
	var class mmbug.Type
	for _, b := range mmbug.All {
		if e.budgetExceeded() {
			return nil, false
		}
		cs := allocext.NewChangeSet().AddPreventive(b, nil)
		if cs.Empty() {
			continue
		}
		out := e.reexec(cp, cs, until, false)
		if out.Passed() {
			class = b
			e.logf("preventive change for %v alone survives the region", b)
			break
		}
	}
	if class == mmbug.None {
		e.logf("no single preventive change survives; non-patchable")
		return nil, false
	}
	// Delay-free covers three classes; with no corruption or re-free
	// evidence from the earlier exposing probes, the read is what's left.
	if class == mmbug.DanglingWrite || class == mmbug.DoubleFree {
		class = mmbug.DanglingRead
	}
	sites, ok := e.searchSitesMode(cp, class, []mmbug.Type{class}, until, true)
	if !ok {
		return nil, false
	}
	findings := []Finding{{Bug: class, Sites: sites}}
	cs := allocext.NewChangeSet().AddPreventive(class, callsite.NewSet(sites...))
	out := e.reexec(cp, cs, until, false)
	if !out.Passed() {
		e.logf("final verification failed in prevention-based mode (%v)", out.Fault.Kind)
		return nil, false
	}
	e.logf("final verification passed: scoped preventive changes survive the failure region")
	return findings, true
}

// searchSites finds every bug-triggering call-site of read-type class b via
// repeated binary search: each round isolates one site (exposing half the
// range, preventing the rest), and rounds continue until exposing all
// remaining candidates no longer fails — O(M·log N) re-executions for M
// sites among N candidates.
func (e *Engine) searchSites(cp *checkpoint.Checkpoint, b mmbug.Type, identified []mmbug.Type, until int) ([]callsite.ID, bool) {
	return e.searchSitesMode(cp, b, identified, until, false)
}

// searchSitesMode implements searchSites; exposeByOmission selects the
// prevention-based fallback semantics.
func (e *Engine) searchSitesMode(cp *checkpoint.Checkpoint, b mmbug.Type, identified []mmbug.Type, until int, exposeByOmission bool) ([]callsite.ID, bool) {
	candidates := e.candidateSites(cp, b, until)
	if len(candidates) == 0 {
		e.logf("binary search for %v: no candidate call-sites observed", b)
		return nil, false
	}
	e.logf("binary search for %v over %d candidate call-sites", b, len(candidates))

	found := callsite.NewSet()
	remaining := callsite.NewSet(candidates...)

	for remaining.Len() > 0 && !e.budgetExceeded() {
		// Any buggy sites left? Expose everything unidentified.
		out := e.reexec(cp, searchChanges(b, identified, remaining, found, exposeByOmission), until, false)
		if out.Passed() {
			break
		}

		var site callsite.ID
		if e.cfg.LinearSiteSearch {
			site = e.linearRound(cp, b, identified, found, remaining, until, exposeByOmission)
			if site == 0 {
				e.logf("linear search found no failing candidate")
				return nil, false
			}
		} else {
			// One binary-search round: narrow to a single site.
			rng := remaining.Clone()
			for rng.Len() > 1 && !e.budgetExceeded() {
				lo, hi := rng.Halves()
				// Prevent everything except lo: hi, candidates
				// outside the range, and already-found sites.
				prevented := found.Clone()
				for _, s := range remaining.Sorted() {
					if !lo.Contains(s) {
						prevented.Add(s)
					}
				}
				out := e.reexec(cp, searchChanges(b, identified, lo, prevented, exposeByOmission), until, false)
				if out.Fault != nil {
					rng = lo
				} else {
					rng = hi
				}
			}
			site = rng.Sorted()[0]
		}
		found.Add(site)
		remaining.Remove(site)
		e.logf("search round: identified %v call-site %s", b, e.m.SiteKey(site))
	}
	if remaining.Len() > 0 && e.budgetExceeded() {
		e.logf("binary search for %v exceeded the rollback budget", b)
		return nil, false
	}
	if found.Len() == 0 {
		e.logf("binary search for %v found no bug-triggering call-site", b)
		return nil, false
	}
	return found.Sorted(), true
}

// linearRound is the ablation alternative to one binary-search round:
// expose one candidate at a time (preventing all others) until one fails.
func (e *Engine) linearRound(cp *checkpoint.Checkpoint, b mmbug.Type, identified []mmbug.Type, found, remaining *callsite.Set, until int, exposeByOmission bool) callsite.ID {
	for _, s := range remaining.Sorted() {
		if e.budgetExceeded() {
			return 0
		}
		prevented := found.Clone()
		for _, o := range remaining.Sorted() {
			if o != s {
				prevented.Add(o)
			}
		}
		out := e.reexec(cp, searchChanges(b, identified, callsite.NewSet(s), prevented, exposeByOmission), until, false)
		if out.Fault != nil {
			return s
		}
	}
	return 0
}
