package diagnosis

import (
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
)

// fakeBug models one latent bug for the mock machine: its class, the
// call-site of the bug-triggering objects, and the checkpoint sequence
// number after which the bug's trigger (the bad free, the overflowing
// write…) executes. A rollback to cp with cp.Seq <= TrigSeq re-executes
// the trigger, so environmental changes can prevent or expose it; a later
// checkpoint cannot.
type fakeBug struct {
	Typ     mmbug.Type
	Site    callsite.ID
	TrigSeq int
}

// mockMachine simulates re-execution outcomes from Table-1 semantics
// without running a real heap — an independent check of the engine's
// logic.
type mockMachine struct {
	cps        []*checkpoint.Checkpoint
	bugs       []fakeBug
	allocSites []callsite.ID // benign candidate sites
	freeSites  []callsite.ID

	rolledBack *checkpoint.Checkpoint
	marked     bool
	tab        *callsite.Table
	reexecs    int
}

func newMock(nCps int, bugs []fakeBug) *mockMachine {
	m := &mockMachine{bugs: bugs, tab: callsite.NewTable()}
	for i := 0; i < nCps; i++ {
		m.cps = append(m.cps, &checkpoint.Checkpoint{Seq: i, Cursor: i * 10})
	}
	return m
}

func (m *mockMachine) Checkpoints() []*checkpoint.Checkpoint { return m.cps }

func (m *mockMachine) Rollback(cp *checkpoint.Checkpoint) {
	m.rolledBack = cp
	m.marked = false
}

func (m *mockMachine) MarkHeap() error { m.marked = true; return nil }

func (m *mockMachine) SiteKey(id callsite.ID) callsite.Key {
	return callsite.Key{"site", "", ""}
}

func (m *mockMachine) SeenAllocSites() []callsite.ID {
	out := append([]callsite.ID(nil), m.allocSites...)
	for _, b := range m.bugs {
		if b.Typ.AtAllocation() {
			out = append(out, b.Site)
		}
	}
	return out
}

func (m *mockMachine) SeenFreeSites() []callsite.ID {
	out := append([]callsite.ID(nil), m.freeSites...)
	for _, b := range m.bugs {
		if !b.Typ.AtAllocation() {
			out = append(out, b.Site)
		}
	}
	return out
}

// ReExecute computes the outcome per Table 1: for each bug whose trigger
// re-executes (cp.Seq <= TrigSeq), the active changes at its site decide
// prevention, exposure, or failure; for pre-checkpoint bugs, heap marking
// is the only detector.
func (m *mockMachine) ReExecute(cs *allocext.ChangeSet, until int) Outcome {
	m.reexecs++
	var out Outcome
	fail := func() {
		if out.Fault == nil {
			out.Fault = &proc.Fault{Kind: proc.AssertFailure, Msg: "mock failure"}
		}
	}
	plain := cs.Empty()
	for _, b := range m.bugs {
		if m.rolledBack != nil && m.rolledBack.Seq > b.TrigSeq {
			// Trigger predates the checkpoint: changes cannot help.
			switch b.Typ {
			case mmbug.DanglingRead:
				// The stale read still happens and still fails
				// (marking or recycled garbage either way).
				fail()
			default:
				if plain {
					// Original layout: the corruption lands where
					// it did before → same failure.
					fail()
				} else if m.marked {
					// Layout disturbed: failure masked, but the
					// wild write lands in marked free space.
					out.Manifests.Add(allocext.Manifestation{
						Bug: b.Typ, FromMark: true,
					})
				}
				// Changes active but no marking: silently masked —
				// the misidentification trap of Figure 3.
			}
			continue
		}
		// Trigger re-executes under the change set.
		switch b.Typ {
		case mmbug.BufferOverflow:
			act := cs.AllocFor(b.Site)
			switch {
			case act.PadCanary:
				out.Manifests.Add(allocext.Manifestation{Bug: b.Typ, AllocSite: b.Site})
			case act.Pad:
				// absorbed silently
			default:
				fail()
			}
		case mmbug.DanglingWrite:
			act := cs.FreeFor(b.Site)
			switch {
			case act.CanaryFill:
				out.Manifests.Add(allocext.Manifestation{Bug: b.Typ, FreeSite: b.Site})
			case act.Delay:
				// absorbed silently
			default:
				fail()
			}
		case mmbug.DanglingRead:
			act := cs.FreeFor(b.Site)
			switch {
			case act.CanaryFill:
				fail() // poisoned read
			case act.Delay:
				// preserved contents: survives
			default:
				fail() // recycled garbage
			}
		case mmbug.DoubleFree:
			act := cs.FreeFor(b.Site)
			if plain {
				fail() // raw allocator aborts
			} else {
				_ = act // parameter check catches it either way
				out.Manifests.Add(allocext.Manifestation{Bug: b.Typ, FreeSite: b.Site})
			}
		case mmbug.UninitRead:
			act := cs.AllocFor(b.Site)
			switch {
			case act.CanaryNew:
				fail() // poisoned flags
			case act.Zero:
				// defined zeros: survives
			default:
				fail() // recycled garbage
			}
		}
	}
	return out
}

func sitesOf(m *mockMachine, n int, leaf string) []callsite.ID {
	var out []callsite.ID
	for i := 0; i < n; i++ {
		out = append(out, m.tab.Intern(callsite.Key{leaf, "mid", string(rune('a' + i))}))
	}
	return out
}

// --- tests ------------------------------------------------------------------------

func TestSingleOverflowDirectIdentification(t *testing.T) {
	m := newMock(4, nil)
	site := m.tab.Intern(callsite.Key{"xmalloc", "parse", "handle"})
	m.bugs = []fakeBug{{Typ: mmbug.BufferOverflow, Site: site, TrigSeq: 99}}
	m.freeSites = sitesOf(m, 3, "xfree")

	res := New(m, Config{}).Diagnose(100)
	if !res.OK() {
		t.Fatalf("not OK: %+v\n%v", res, res.Log)
	}
	if res.Checkpoint.Seq != 3 {
		t.Fatalf("checkpoint = %d, want newest (3)", res.Checkpoint.Seq)
	}
	if len(res.Findings) != 1 || res.Findings[0].Bug != mmbug.BufferOverflow {
		t.Fatalf("findings = %+v", res.Findings)
	}
	if len(res.Findings[0].Sites) != 1 || res.Findings[0].Sites[0] != site {
		t.Fatalf("sites = %v", res.Findings[0].Sites)
	}
	// Direct identification: phase1 (plain + preventive) + 5 probes at
	// most + convergence + final ≈ few rollbacks.
	if res.Rollbacks > 10 {
		t.Fatalf("rollbacks = %d, too many for direct identification", res.Rollbacks)
	}
}

func TestHeapMarkingRejectsPostBugCheckpoint(t *testing.T) {
	// The Figure-3 scenario: a dangling write triggered between cp1 and
	// cp2. From cp2/cp3 the preventive changes mask the failure by
	// disturbing the layout — only heap marking reveals that the bug
	// predates them. The engine must select cp1.
	m := newMock(4, nil)
	site := m.tab.Intern(callsite.Key{"xfree", "conn_close", "handle"})
	m.bugs = []fakeBug{{Typ: mmbug.DanglingWrite, Site: site, TrigSeq: 1}}

	res := New(m, Config{}).Diagnose(100)
	if !res.OK() {
		t.Fatalf("not OK: %+v\n%v", res, res.Log)
	}
	if res.Checkpoint.Seq != 1 {
		t.Fatalf("checkpoint = %d, want 1 (last before the trigger)\nlog: %v", res.Checkpoint.Seq, res.Log)
	}
	if res.Findings[0].Bug != mmbug.DanglingWrite || res.Findings[0].Sites[0] != site {
		t.Fatalf("findings = %+v", res.Findings)
	}
}

func TestNondeterministicFailure(t *testing.T) {
	m := newMock(3, nil) // no bugs: plain re-execution passes
	res := New(m, Config{}).Diagnose(100)
	if !res.Nondeterministic {
		t.Fatalf("res = %+v", res)
	}
	if res.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want exactly 1 (the plain screen)", res.Rollbacks)
	}
}

func TestUnpatchableWhenBugPredatesAllCheckpoints(t *testing.T) {
	m := newMock(3, nil)
	site := m.tab.Intern(callsite.Key{"xfree", "old", "x"})
	m.bugs = []fakeBug{{Typ: mmbug.DanglingRead, Site: site, TrigSeq: -1}}
	res := New(m, Config{}).Diagnose(100)
	if !res.Unpatchable {
		t.Fatalf("res = %+v\n%v", res, res.Log)
	}
}

func TestDoubleFreeIdentifiedFromParameterCheck(t *testing.T) {
	m := newMock(3, nil)
	site := m.tab.Intern(callsite.Key{"xfree", "error_path", "serve"})
	m.bugs = []fakeBug{{Typ: mmbug.DoubleFree, Site: site, TrigSeq: 99}}
	res := New(m, Config{}).Diagnose(100)
	if !res.OK() || res.Findings[0].Bug != mmbug.DoubleFree {
		t.Fatalf("res = %+v\n%v", res, res.Log)
	}
	if res.Findings[0].Sites[0] != site {
		t.Fatalf("sites = %v", res.Findings[0].Sites)
	}
}

func TestBinarySearchFindsSingleReadSite(t *testing.T) {
	m := newMock(3, nil)
	m.freeSites = sitesOf(m, 15, "xfree") // benign candidates
	buggy := m.tab.Intern(callsite.Key{"xfree", "purge", "insert"})
	m.bugs = []fakeBug{{Typ: mmbug.DanglingRead, Site: buggy, TrigSeq: 99}}

	res := New(m, Config{}).Diagnose(100)
	if !res.OK() {
		t.Fatalf("res = %+v\n%v", res, res.Log)
	}
	f := res.Findings[0]
	if f.Bug != mmbug.DanglingRead || len(f.Sites) != 1 || f.Sites[0] != buggy {
		t.Fatalf("findings = %+v", res.Findings)
	}
	// O(log 16) ≈ 4 narrowing steps + bookkeeping; generous bound.
	if res.Rollbacks > 20 {
		t.Fatalf("rollbacks = %d for 1 site among 16 candidates", res.Rollbacks)
	}
}

func TestBinarySearchFindsAllOfSeveralReadSites(t *testing.T) {
	m := newMock(3, nil)
	m.freeSites = sitesOf(m, 9, "xfree")
	var buggy []callsite.ID
	for _, name := range []string{"purgeA", "purgeB", "purgeC"} {
		s := m.tab.Intern(callsite.Key{"xfree", name, "insert"})
		buggy = append(buggy, s)
		m.bugs = append(m.bugs, fakeBug{Typ: mmbug.DanglingRead, Site: s, TrigSeq: 99})
	}

	res := New(m, Config{}).Diagnose(100)
	if !res.OK() {
		t.Fatalf("res = %+v\n%v", res, res.Log)
	}
	got := map[callsite.ID]bool{}
	for _, s := range res.Findings[0].Sites {
		got[s] = true
	}
	for _, s := range buggy {
		if !got[s] {
			t.Fatalf("missing buggy site %d; found %v", s, res.Findings[0].Sites)
		}
	}
	if len(got) != len(buggy) {
		t.Fatalf("extra sites found: %v", res.Findings[0].Sites)
	}
}

func TestUninitReadSearchesAllocSites(t *testing.T) {
	m := newMock(3, nil)
	m.allocSites = sitesOf(m, 7, "xmalloc")
	buggy := m.tab.Intern(callsite.Key{"xmalloc", "stat_alloc", "stat"})
	m.bugs = []fakeBug{{Typ: mmbug.UninitRead, Site: buggy, TrigSeq: 99}}

	res := New(m, Config{}).Diagnose(100)
	if !res.OK() || res.Findings[0].Bug != mmbug.UninitRead {
		t.Fatalf("res = %+v\n%v", res, res.Log)
	}
	if len(res.Findings[0].Sites) != 1 || res.Findings[0].Sites[0] != buggy {
		t.Fatalf("sites = %v", res.Findings[0].Sites)
	}
}

func TestMultipleBugTypesSeparated(t *testing.T) {
	// §4.2: "the case where multiple types of bugs are triggered and the
	// program will not survive unless all of them are avoided."
	m := newMock(3, nil)
	ovf := m.tab.Intern(callsite.Key{"bc_malloc", "more_arrays", "grow"})
	dr := m.tab.Intern(callsite.Key{"xfree", "purge", "insert"})
	m.bugs = []fakeBug{
		{Typ: mmbug.BufferOverflow, Site: ovf, TrigSeq: 99},
		{Typ: mmbug.DanglingRead, Site: dr, TrigSeq: 99},
	}
	m.freeSites = sitesOf(m, 5, "xfree")

	res := New(m, Config{}).Diagnose(100)
	if !res.OK() {
		t.Fatalf("res = %+v\n%v", res, res.Log)
	}
	found := map[mmbug.Type][]callsite.ID{}
	for _, f := range res.Findings {
		found[f.Bug] = f.Sites
	}
	if len(found) != 2 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	if len(found[mmbug.BufferOverflow]) != 1 || found[mmbug.BufferOverflow][0] != ovf {
		t.Fatalf("overflow sites = %v", found[mmbug.BufferOverflow])
	}
	if len(found[mmbug.DanglingRead]) != 1 || found[mmbug.DanglingRead][0] != dr {
		t.Fatalf("dangling-read sites = %v", found[mmbug.DanglingRead])
	}
}

func TestNoMisdiagnosisAcrossClasses(t *testing.T) {
	// §4.3 Correctness: for each single-bug scenario the engine must
	// report exactly that class, never a sibling.
	for _, typ := range mmbug.All {
		typ := typ
		m := newMock(3, nil)
		var site callsite.ID
		if typ.AtAllocation() {
			site = m.tab.Intern(callsite.Key{"xmalloc", "leaf", "h"})
		} else {
			site = m.tab.Intern(callsite.Key{"xfree", "leaf", "h"})
		}
		m.bugs = []fakeBug{{Typ: typ, Site: site, TrigSeq: 99}}
		m.allocSites = sitesOf(m, 4, "xmalloc")
		m.freeSites = sitesOf(m, 4, "xfree")

		res := New(m, Config{}).Diagnose(100)
		if !res.OK() {
			t.Fatalf("%v: not OK: %v", typ, res.Log)
		}
		if len(res.Findings) != 1 || res.Findings[0].Bug != typ {
			t.Fatalf("%v misdiagnosed: %+v", typ, res.Findings)
		}
	}
}

func TestRollbackBudgetExhaustion(t *testing.T) {
	m := newMock(8, nil)
	buggy := m.tab.Intern(callsite.Key{"xfree", "purge", "insert"})
	m.freeSites = sitesOf(m, 30, "xfree")
	m.bugs = []fakeBug{{Typ: mmbug.DanglingRead, Site: buggy, TrigSeq: 99}}

	res := New(m, Config{MaxRollbacks: 3}).Diagnose(100)
	if res.OK() {
		t.Fatal("diagnosis claimed success within an impossible budget")
	}
	if !res.Unpatchable {
		t.Fatalf("res = %+v", res)
	}
	if res.Rollbacks > 10 {
		t.Fatalf("budget not respected: %d rollbacks", res.Rollbacks)
	}
}

func TestNoCheckpointsIsUnpatchable(t *testing.T) {
	m := newMock(0, nil)
	res := New(m, Config{}).Diagnose(100)
	if !res.Unpatchable {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiagnosisLogIsInformative(t *testing.T) {
	m := newMock(3, nil)
	site := m.tab.Intern(callsite.Key{"xmalloc", "parse", "handle"})
	m.bugs = []fakeBug{{Typ: mmbug.BufferOverflow, Site: site, TrigSeq: 99}}
	res := New(m, Config{}).Diagnose(100)
	if len(res.Log) < 3 {
		t.Fatalf("log too sparse: %v", res.Log)
	}
}

// silentDanglingRead models the consumer-never-checks case: the read of a
// delay-freed (canary-filled) object does NOT fail — only the plain run's
// recycled/unmapped access does. The mock: exposing canary-fill behaves
// exactly like plain delay (no failure); absence of any change fails.
type silentDanglingRead struct{ *mockMachine }

func (m silentDanglingRead) ReExecute(cs *allocext.ChangeSet, until int) Outcome {
	m.reexecs++
	var out Outcome
	for _, b := range m.bugs {
		if b.Typ != mmbug.DanglingRead {
			continue
		}
		act := cs.FreeFor(b.Site)
		if !act.Delay {
			// Unprotected: the munmap-style fault.
			out.Fault = &proc.Fault{Kind: proc.AccessViolation, Msg: "unmapped"}
		}
		// Delay (with or without canary fill) survives: the program
		// never inspects the bytes.
	}
	return out
}

func TestPreventionFallbackIdentifiesUncheckedDanglingRead(t *testing.T) {
	inner := newMock(3, nil)
	buggy := inner.tab.Intern(callsite.Key{"xfree", "response_free", "serve"})
	inner.freeSites = sitesOf(inner, 6, "xfree")
	inner.bugs = []fakeBug{{Typ: mmbug.DanglingRead, Site: buggy, TrigSeq: 99}}
	m := silentDanglingRead{inner}

	res := New(m, Config{}).Diagnose(100)
	if !res.OK() {
		t.Fatalf("fallback failed: %+v\n%v", res, res.Log)
	}
	if len(res.Findings) != 1 || res.Findings[0].Bug != mmbug.DanglingRead {
		t.Fatalf("findings = %+v", res.Findings)
	}
	if len(res.Findings[0].Sites) != 1 || res.Findings[0].Sites[0] != buggy {
		t.Fatalf("sites = %v, want [%d]", res.Findings[0].Sites, buggy)
	}
	// The log must record the fallback route.
	sawFallback := false
	for _, l := range res.Log {
		if l == "no bug type manifested under any exposing change; falling back to prevention-based identification" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatalf("fallback not logged:\n%v", res.Log)
	}
}
