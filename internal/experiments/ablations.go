package experiments

import (
	"fmt"
	"strings"

	"firstaid/internal/apps"
	"firstaid/internal/checkpoint"
	"firstaid/internal/core"
	"firstaid/internal/diagnosis"
	"firstaid/internal/workloads"
)

// Ablations quantify the design choices DESIGN.md calls out: the Phase-2
// binary search (vs linear probing), the adaptive checkpoint interval (vs
// fixed), and the delay-free threshold. (The heap-marking ablation lives in
// the diagnosis package's tests: it changes correctness, not cost.)

// AblationSearchRow compares call-site search strategies on one app.
type AblationSearchRow struct {
	App             string
	Sites           int
	BinaryRollbacks int
	LinearRollbacks int
}

// AblationSearch runs the two search strategies on the binary-search apps.
func AblationSearch() []AblationSearchRow {
	var rows []AblationSearchRow
	for _, name := range []string{"apache", "m4", "apache-uir"} {
		row := AblationSearchRow{App: name}
		for _, linear := range []bool{false, true} {
			a, _ := apps.New(name)
			log := a.Workload(700, []int{defaultTrigger})
			sup := newSupervisor(a, log, core.Config{
				Diagnosis: diagnosis.Config{LinearSiteSearch: linear, MaxRollbacks: 600},
			})
			sup.Run()
			if len(sup.Recoveries) == 0 {
				continue
			}
			rec := sup.Recoveries[0]
			row.Sites = len(rec.Patches)
			if linear {
				row.LinearRollbacks = rec.Result.Rollbacks
			} else {
				row.BinaryRollbacks = rec.Result.Rollbacks
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderAblationSearch formats the rows.
func RenderAblationSearch(rows []AblationSearchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: Phase-2 call-site search strategy (rollbacks to identify all sites).\n")
	fmt.Fprintf(&b, "%-12s %8s %18s %18s\n", "Application", "Sites", "Binary (paper)", "Linear (ablated)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %18d %18d\n", r.App, r.Sites, r.BinaryRollbacks, r.LinearRollbacks)
	}
	return b.String()
}

// AblationCheckpointRow compares adaptive vs fixed checkpoint intervals on
// one heavy-dirtying workload.
type AblationCheckpointRow struct {
	Program       string
	Mode          string
	OverheadFrac  float64 // vs no checkpointing
	MBPerCkpt     float64
	FinalInterval float64 // seconds
}

// AblationCheckpoint measures the adaptive controller's effect on the
// heaviest dirtier (vortex) and a light one (eon).
func AblationCheckpoint(events int) []AblationCheckpointRow {
	var rows []AblationCheckpointRow
	for _, name := range []string{"255.vortex", "252.eon"} {
		k, _ := workloads.New(name)
		base := RunProgram(k, RunConfig{Events: events, WithExt: true})
		for _, adaptive := range []bool{false, true} {
			k2, _ := workloads.New(name)
			m := RunProgram(k2, RunConfig{
				Events:   events,
				WithExt:  true,
				WithCkpt: true,
				CheckpointCfg: checkpoint.Config{
					Adaptive: adaptive,
				},
			})
			mode := "fixed-200ms"
			if adaptive {
				mode = "adaptive"
			}
			rows = append(rows, AblationCheckpointRow{
				Program:      name,
				Mode:         mode,
				OverheadFrac: float64(m.Cycles)/float64(base.Cycles) - 1,
				MBPerCkpt:    m.CkptStats.MBPerCheckpoint(),
			})
		}
	}
	return rows
}

// RenderAblationCheckpoint formats the rows.
func RenderAblationCheckpoint(rows []AblationCheckpointRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: adaptive vs fixed checkpoint interval.\n")
	fmt.Fprintf(&b, "%-14s %-14s %12s %14s\n", "Program", "Mode", "Overhead", "MB/checkpoint")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14s %11.2f%% %14.3f\n", r.Program, r.Mode, 100*r.OverheadFrac, r.MBPerCkpt)
	}
	return b.String()
}

// AblationDelayLimitRow measures the delay-free threshold trade-off.
type AblationDelayLimitRow struct {
	LimitKB      int
	Failures     int
	DelayedBytes uint64
}

// AblationDelayLimit sweeps the delay-free threshold on Apache with
// repeated triggers: a too-small threshold recycles delay-freed objects
// that stale pointers still read, re-exposing the bug (the paper's §2
// "can potentially undermine patch effectiveness — the program may fail
// again").
func AblationDelayLimit() []AblationDelayLimitRow {
	var rows []AblationDelayLimitRow
	for _, limitKB := range []int{4, 64, 1024} {
		a, _ := apps.New("apache")
		log := a.Workload(1600, []int{defaultTrigger, 900})
		sup := newSupervisor(a, log, core.Config{
			Machine: core.MachineConfig{DelayLimit: uint64(limitKB) * 1024},
		})
		st := sup.Run()
		rows = append(rows, AblationDelayLimitRow{
			LimitKB:      limitKB,
			Failures:     st.Failures,
			DelayedBytes: sup.Ext().DelayedBytes(),
		})
	}
	return rows
}

// RenderAblationDelayLimit formats the rows.
func RenderAblationDelayLimit(rows []AblationDelayLimitRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: delay-free threshold on Apache (2 bug triggers; 1 failure = full prevention).\n")
	fmt.Fprintf(&b, "%12s %10s %16s\n", "Limit (KB)", "Failures", "Delayed bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %10d %16d\n", r.LimitKB, r.Failures, r.DelayedBytes)
	}
	return b.String()
}
