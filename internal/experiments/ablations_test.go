package experiments

import "testing"

func TestAblationSearchBinaryBeatsLinear(t *testing.T) {
	rows := AblationSearch()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BinaryRollbacks == 0 || r.LinearRollbacks == 0 {
			t.Errorf("%s: missing measurement %+v", r.App, r)
			continue
		}
		// With few candidates the strategies can tie; apache (7 buggy
		// sites among ~12 candidates) must show the gap.
		if r.App == "apache" && r.LinearRollbacks <= r.BinaryRollbacks {
			t.Errorf("apache: linear (%d) not costlier than binary (%d)", r.LinearRollbacks, r.BinaryRollbacks)
		}
	}
	t.Logf("\n%s", RenderAblationSearch(rows))
}

func TestAblationCheckpointAdaptiveCutsOverhead(t *testing.T) {
	rows := AblationCheckpoint(150)
	byKey := map[string]AblationCheckpointRow{}
	for _, r := range rows {
		byKey[r.Program+"/"+r.Mode] = r
	}
	vFixed := byKey["255.vortex/fixed-200ms"]
	vAdapt := byKey["255.vortex/adaptive"]
	if vAdapt.OverheadFrac >= vFixed.OverheadFrac {
		t.Errorf("adaptive (%.2f%%) did not beat fixed (%.2f%%) on vortex",
			100*vAdapt.OverheadFrac, 100*vFixed.OverheadFrac)
	}
	// On a light dirtier the two must be near-identical (the controller
	// leaves the interval alone).
	eFixed := byKey["252.eon/fixed-200ms"]
	eAdapt := byKey["252.eon/adaptive"]
	if diff := eAdapt.OverheadFrac - eFixed.OverheadFrac; diff > 0.01 || diff < -0.01 {
		t.Errorf("adaptive changed eon's overhead by %.2f%%", 100*diff)
	}
	t.Logf("\n%s", RenderAblationCheckpoint(rows))
}

func TestAblationDelayLimitTradeoff(t *testing.T) {
	rows := AblationDelayLimit()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's 1 MB threshold must give full prevention (1 failure);
	// the 4 KB threshold recycles still-referenced objects and fails
	// again.
	small, big := rows[0], rows[2]
	if big.Failures != 1 {
		t.Errorf("1MB threshold: failures = %d, want 1", big.Failures)
	}
	if small.Failures <= big.Failures {
		t.Errorf("4KB threshold did not undermine the patch: %d vs %d failures",
			small.Failures, big.Failures)
	}
	if small.DelayedBytes > big.DelayedBytes {
		t.Errorf("smaller threshold holds more delayed bytes: %+v", rows)
	}
	t.Logf("\n%s", RenderAblationDelayLimit(rows))
}
