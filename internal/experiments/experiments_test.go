package experiments

import (
	"strings"
	"testing"
)

func TestTable2Inventory(t *testing.T) {
	out := Table2()
	for _, want := range []string{"apache", "squid", "cvs", "pine", "mutt", "m4", "bc", "dangling pointer read", "double free"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3AllCorrectAndPreventive(t *testing.T) {
	if testing.Short() {
		t.Skip("full recovery sweep")
	}
	rows := Table3()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("%s: diagnosis incorrect (%q)", r.App, r.Diagnosed)
		}
		if !r.AvoidFuture {
			t.Errorf("%s: future errors not avoided", r.App)
		}
		if r.Rollbacks == 0 {
			t.Errorf("%s: no rollbacks recorded", r.App)
		}
		if r.ValidationSec <= 0 {
			t.Errorf("%s: validation time missing", r.App)
		}
	}
	t.Logf("\n%s", RenderTable3(rows))
}

func TestTable4FirstAidIsLighterThanRx(t *testing.T) {
	if testing.Short() {
		t.Skip("full recovery sweep")
	}
	rows := Table4()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FASites == 0 || r.RxSites == 0 {
			t.Errorf("%s: degenerate measurement %+v", r.App, r)
			continue
		}
		if r.FASites >= r.RxSites {
			t.Errorf("%s: First-Aid sites (%d) not lighter than Rx (%d)", r.App, r.FASites, r.RxSites)
		}
		if r.FAObjects >= r.RxObjects {
			t.Errorf("%s: First-Aid objects (%d) not lighter than Rx (%d)", r.App, r.FAObjects, r.RxObjects)
		}
	}
	t.Logf("\n%s", RenderTable4(rows))
}

func TestTable5PatchSpaceIsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full recovery sweep")
	}
	rows := Table5()
	for _, r := range rows {
		if r.Overhead == 0 {
			t.Errorf("%s: patch space overhead not measured", r.App)
		}
		// The paper's worst ratio is ~5%; allow an order of margin but
		// catch runaway growth.
		if r.Ratio > 0.5 {
			t.Errorf("%s: patch overhead ratio %.1f%% is runaway", r.App, 100*r.Ratio)
		}
	}
	t.Logf("\n%s", RenderTable5(rows))
}

func TestTable6ShapeMatchesPaper(t *testing.T) {
	rows := Table6(150)
	byName := map[string]Table6Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if len(rows) != 22 {
		t.Fatalf("programs = %d, want 22", len(rows))
	}
	// Allocation-intensive small-object programs pay heavily…
	if byName["cfrac"].OverheadFrac < 0.3 {
		t.Errorf("cfrac overhead %.1f%%, want tens of %%", 100*byName["cfrac"].OverheadFrac)
	}
	if byName["300.twolf"].OverheadFrac < 0.2 {
		t.Errorf("twolf overhead %.1f%%, want tens of %%", 100*byName["300.twolf"].OverheadFrac)
	}
	// …big-block programs pay nothing.
	for _, name := range []string{"181.mcf", "256.bzip2", "164.gzip"} {
		if byName[name].OverheadFrac > 0.02 {
			t.Errorf("%s overhead %.2f%%, want ~0", name, 100*byName[name].OverheadFrac)
		}
	}
	t.Logf("\n%s", RenderTable6(rows))
}

func TestTable7ShapeMatchesPaper(t *testing.T) {
	rows := Table7(150)
	byName := map[string]Table7Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// vortex has the fattest checkpoints; eon the slimmest of SPEC.
	if byName["255.vortex"].MBPerCkpt <= byName["252.eon"].MBPerCkpt {
		t.Errorf("vortex (%.2f MB/ckpt) should exceed eon (%.2f)",
			byName["255.vortex"].MBPerCkpt, byName["252.eon"].MBPerCkpt)
	}
	if byName["255.vortex"].MBPerCkpt <= byName["164.gzip"].MBPerCkpt {
		t.Errorf("vortex should exceed gzip")
	}
	// Adaptive checkpointing caps MB/second: the heaviest dirtier must
	// not have proportionally heavy MB/s.
	if v := byName["255.vortex"]; v.MBPerSecond > 3*byName["164.gzip"].MBPerSecond+5 {
		t.Logf("note: vortex MB/s %.2f vs gzip %.2f (adaptive cap working less aggressively)", v.MBPerSecond, byName["164.gzip"].MBPerSecond)
	}
	t.Logf("\n%s", RenderTable7(rows))
}

func TestFigure6OverheadIsLowOnAverage(t *testing.T) {
	rows := Figure6(150)
	if len(rows) != 22 {
		t.Fatalf("programs = %d, want 22", len(rows))
	}
	avg := Figure6Average(rows)
	if avg < 0 || avg > 0.15 {
		t.Errorf("average overall overhead %.1f%%, paper reports 3.7%% (0.4–11.6%%)", 100*avg)
	}
	for _, r := range rows {
		if r.Overall < r.Allocator-1e-9 {
			t.Errorf("%s: overall (%.3f) below allocator-only (%.3f)", r.Name, r.Overall, r.Allocator)
		}
		if r.Overall > 1.30 {
			t.Errorf("%s: overall overhead %.1f%% is runaway", r.Name, 100*(r.Overall-1))
		}
	}
	t.Logf("average overall overhead: %.2f%%\n%s", 100*avg, RenderFigure6(rows))
}

func TestFigure4ShapeFirstAidVsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("long throughput runs")
	}
	for _, appName := range []string{"apache", "squid"} {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			series := Figure4(appName)
			if len(series) != 3 {
				t.Fatalf("series = %d", len(series))
			}
			bySys := map[string]Figure4Series{}
			for _, s := range series {
				bySys[s.System] = s
			}
			fa := DipCount(bySys["First-Aid"])
			rx := DipCount(bySys["Rx"])
			rs := DipCount(bySys["Restart"])
			// First-Aid: a single dip (the first trigger). Rx and
			// restart: a dip at (almost) every trigger.
			nTriggers := len(fig4Triggers())
			if fa > 2 {
				t.Errorf("First-Aid dips = %d, want ≤2 (patch prevents recurrences)", fa)
			}
			if rx < nTriggers-1 {
				t.Errorf("Rx dips = %d, want ~%d (one per trigger)", rx, nTriggers)
			}
			if rs < nTriggers-1 {
				t.Errorf("Restart dips = %d, want ~%d", rs, nTriggers)
			}
			t.Logf("%s: triggers=%d FA=%d Rx=%d Restart=%d\n%s",
				appName, nTriggers, fa, rx, rs, RenderFigure4(series))
		})
	}
}
