package experiments

import (
	"fmt"
	"strings"

	"firstaid/internal/apps"
	"firstaid/internal/baseline"
	"firstaid/internal/core"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
)

// Figure-4 workload geometry: a ~25-simulated-second window with the bug
// triggered periodically, as in §7.3 ("we periodically triggered the real
// bugs by sending bug-triggering requests mixed with normal inputs").
const (
	fig4Events       = 2600
	fig4BinSeconds   = 0.5
	fig4TriggerEvery = 450 // events ≈ 4.5 simulated seconds
)

// eventKB models the response size of one successful request, so that the
// y-axis is MB/s as in the paper. Bug-triggering/maintenance inputs carry
// little payload.
func eventKB(app string, ev replay.Event) float64 {
	switch ev.Kind {
	case "search", "GET", "revisit":
		return 100
	case "insert", "stat", "unbind", "scribble", "verify":
		return 4
	}
	return 8
}

// ThroughputPoint is one time-bin sample.
type ThroughputPoint struct {
	T    float64 // bin start, simulated seconds
	MBps float64
}

// Figure4Series is one system's throughput timeline.
type Figure4Series struct {
	App    string
	System string // "First-Aid" | "Rx" | "Restart"
	Points []ThroughputPoint
}

func fig4Triggers() []int {
	var t []int
	for at := fig4TriggerEvery; at < fig4Events-200; at += fig4TriggerEvery {
		t = append(t, at)
	}
	return t
}

// collector bins successful-event payload by simulated time.
type collector struct {
	app  string
	bins map[int]float64
	last float64
}

func (c *collector) trace(ev replay.Event, simNow uint64, fault *proc.Fault) {
	t := float64(simNow) / proc.CyclesPerSecond
	if t > c.last {
		c.last = t
	}
	if fault != nil {
		return
	}
	c.bins[int(t/fig4BinSeconds)] += eventKB(c.app, ev)
}

func (c *collector) series(app, system string) Figure4Series {
	n := int(c.last/fig4BinSeconds) + 1
	pts := make([]ThroughputPoint, n)
	for i := 0; i < n; i++ {
		pts[i] = ThroughputPoint{
			T:    float64(i) * fig4BinSeconds,
			MBps: c.bins[i] / 1024 / fig4BinSeconds,
		}
	}
	return Figure4Series{App: app, System: system, Points: pts}
}

// Figure4 produces the three throughput timelines for the named server
// application (apache or squid).
func Figure4(appName string) []Figure4Series {
	triggers := fig4Triggers()
	var out []Figure4Series

	// First-Aid.
	{
		a, _ := apps.New(appName)
		log := a.Workload(fig4Events, triggers)
		c := &collector{app: appName, bins: map[int]float64{}}
		sup := newSupervisor(a, log, core.Config{Trace: c.trace})
		sup.Run()
		out = append(out, c.series(appName, "First-Aid"))
	}
	// Rx.
	{
		a, _ := apps.New(appName)
		log := a.Workload(fig4Events, triggers)
		c := &collector{app: appName, bins: map[int]float64{}}
		rx := baseline.NewRx(a, log, core.MachineConfig{})
		rx.Trace = c.trace
		rx.Run()
		out = append(out, c.series(appName, "Rx"))
	}
	// Restart.
	{
		a, _ := apps.New(appName)
		log := a.Workload(fig4Events, triggers)
		c := &collector{app: appName, bins: map[int]float64{}}
		rs := baseline.NewRestart(a, log, core.MachineConfig{})
		rs.Trace = c.trace
		rs.Run()
		out = append(out, c.series(appName, "Restart"))
	}
	return out
}

// DipCount returns how many distinct throughput dips (bins below half the
// series median) the series contains — the quantitative shape check for
// Figure 4: First-Aid dips once, Rx and restart dip at every trigger.
func DipCount(s Figure4Series) int {
	if len(s.Points) == 0 {
		return 0
	}
	med := medianMBps(s.Points)
	dips, inDip := 0, false
	for _, p := range s.Points {
		low := p.MBps < med/2
		if low && !inDip {
			dips++
		}
		inDip = low
	}
	return dips
}

func medianMBps(pts []ThroughputPoint) float64 {
	vals := make([]float64, 0, len(pts))
	for _, p := range pts {
		vals = append(vals, p.MBps)
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j-1] > vals[j]; j-- {
			vals[j-1], vals[j] = vals[j], vals[j-1]
		}
	}
	return vals[len(vals)/2]
}

// RenderFigure4 formats the series as aligned sparkline rows plus CSV.
func RenderFigure4(series []Figure4Series) string {
	var b strings.Builder
	if len(series) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Figure 4. Throughput for %s under periodic bug triggers (MB/s vs seconds).\n", series[0].App)
	maxV := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if p.MBps > maxV {
				maxV = p.MBps
			}
		}
	}
	glyphs := []rune(" .:-=+*#%@")
	for _, s := range series {
		var spark strings.Builder
		for _, p := range s.Points {
			idx := 0
			if maxV > 0 {
				idx = int(p.MBps / maxV * float64(len(glyphs)-1))
			}
			spark.WriteRune(glyphs[idx])
		}
		fmt.Fprintf(&b, "%-9s |%s| dips=%d\n", s.System, spark.String(), DipCount(s))
	}
	fmt.Fprintf(&b, "\nCSV (t_sec,%s):\n", strings.Join(systemNames(series), ","))
	n := 0
	for _, s := range series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%.1f", float64(i)*fig4BinSeconds)
		for _, s := range series {
			v := 0.0
			if i < len(s.Points) {
				v = s.Points[i].MBps
			}
			fmt.Fprintf(&b, ",%.2f", v)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

func systemNames(series []Figure4Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.System
	}
	return out
}
