package experiments

import (
	"strings"
	"testing"
)

func TestFigure5ReproducesThePapersReportStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full apache recovery")
	}
	out := Figure5()
	// The paper's five items, with the Apache-specific content: the
	// delay-free patches on the util_ald_free wrapper under the cache
	// purge, and illegal (read-only) accesses from the LDAP cache
	// functions.
	for _, want := range []string{
		"1. Failure:",
		"2. Diagnosis summary",
		"3. Patch applied: 7 runtime patch(es)",
		"delay free for dangling pointer read",
		"@util_ald_free",
		"@util_ald_cache_purge",
		"4. Memory allocations",
		"(delayed, patch",
		"5. Illegal access",
		"0 write",
		"consistent across randomized re-executions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 5 missing %q", want)
		}
	}
	// Dangling reads only: no illegal writes may appear.
	if strings.Contains(out, "write to padding") {
		t.Error("unexpected overflow evidence in a dangling-read report")
	}
}
