// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): Table 2 (application inventory), Table 3 (overall
// effectiveness), Table 4 (patch weight vs Rx), Table 5 (patch space
// overhead), Table 6 (allocator-extension space overhead), Table 7
// (checkpoint space overhead), Figure 4 (throughput under repeated bug
// triggers: First-Aid vs Rx vs restart) and Figure 6 (normal-run time
// overhead). Each experiment returns structured rows plus a text rendering;
// cmd/experiments and the root benchmarks are thin wrappers.
package experiments

import (
	"firstaid/internal/allocext"
	"firstaid/internal/app"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/core"
	"firstaid/internal/heap"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/telemetry"
	"firstaid/internal/vmem"
)

// Metrics, when set, instruments every supervised run the experiments
// launch. cmd/experiments -metrics assigns a registry here and dumps its
// snapshot at exit; successive runs accumulate into the same registry.
var Metrics *telemetry.Registry

// newSupervisor builds a supervisor with the package registry injected.
// Every experiment goes through it so -metrics covers them uniformly.
func newSupervisor(prog app.Program, log *replay.Log, cfg core.Config) *core.Supervisor {
	cfg.Machine.Metrics = Metrics
	return core.NewSupervisor(prog, log, cfg)
}

// RunConfig selects one of the three measurement configurations of §7.5:
// original allocator only; plus the memory allocator extension; plus
// checkpointing.
type RunConfig struct {
	WithExt  bool
	WithCkpt bool
	// Events is the workload length (defaults to 400).
	Events int
	// CheckpointCfg overrides checkpoint parameters.
	CheckpointCfg checkpoint.Config
}

// Measurement is the outcome of one configuration run.
type Measurement struct {
	Cycles    uint64 // simulated execution time
	HeapPeak  uint64 // allocator peak payload bytes (incl. ext metadata)
	CkptStats checkpoint.Stats
}

// RunProgram executes prog's normal workload (no bug triggers) under the
// given configuration and measures it.
func RunProgram(prog app.App, cfg RunConfig) Measurement {
	if cfg.Events == 0 {
		cfg.Events = 400
	}
	mem := vmem.New(512 << 20)
	h := heap.New(mem)
	var p *proc.Proc
	var ext *allocext.Ext
	if cfg.WithExt {
		sites := callsite.NewTable()
		ext = allocext.New(h, sites)
		p = proc.New(mem, ext)
		p.Sites = sites
	} else {
		p = proc.New(mem, proc.RawMM{H: h})
	}

	log := prog.Workload(cfg.Events, nil)

	var mgr *checkpoint.Manager
	if cfg.WithCkpt {
		if ext == nil {
			panic("experiments: checkpointing requires the extension")
		}
		mgr = checkpoint.NewManager(cfg.CheckpointCfg, mem, h, p, ext, log)
	}

	if f := proc.Catch(func() { prog.Init(p) }); f != nil {
		panic("experiments: " + prog.Name() + " init faulted: " + f.Error())
	}
	if mgr != nil {
		mgr.Take()
	}
	for {
		ev, ok := log.Next()
		if !ok {
			break
		}
		if f := proc.Catch(func() { prog.Handle(p, ev) }); f != nil {
			panic("experiments: " + prog.Name() + " faulted on normal input: " + f.Error())
		}
		if mgr != nil {
			mgr.MaybeCheckpoint()
		}
	}

	meas := Measurement{Cycles: p.Clock(), HeapPeak: h.PeakBytes()}
	if mgr != nil {
		meas.CkptStats = mgr.Stats()
	}
	return meas
}
