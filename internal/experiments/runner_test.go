package experiments

import (
	"testing"

	"firstaid/internal/app"
	"firstaid/internal/apps"
	"firstaid/internal/workloads"
)

func TestRunProgramConfigurationsAreOrdered(t *testing.T) {
	// For any program: baseline ≤ allocator-only ≤ overall simulated
	// time, and heap peaks grow monotonically with the extension.
	for _, name := range []string{"squid", "cfrac", "164.gzip"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := mustProgram(t, name)
			base := RunProgram(prog, RunConfig{Events: 80})
			prog2 := mustProgram(t, name)
			ext := RunProgram(prog2, RunConfig{Events: 80, WithExt: true})
			prog3 := mustProgram(t, name)
			all := RunProgram(prog3, RunConfig{Events: 80, WithExt: true, WithCkpt: true})

			if ext.Cycles < base.Cycles {
				t.Errorf("allocator config faster than baseline: %d < %d", ext.Cycles, base.Cycles)
			}
			if all.Cycles < ext.Cycles {
				t.Errorf("overall config faster than allocator-only: %d < %d", all.Cycles, ext.Cycles)
			}
			if ext.HeapPeak < base.HeapPeak {
				t.Errorf("extension shrank the heap: %d < %d", ext.HeapPeak, base.HeapPeak)
			}
			if base.CkptStats.Taken != 0 {
				t.Error("baseline took checkpoints")
			}
			if all.CkptStats.Taken == 0 {
				t.Error("checkpointed config took no checkpoints")
			}
		})
	}
}

func TestRunProgramDeterministic(t *testing.T) {
	a := RunProgram(mustProgram(t, "175.vpr"), RunConfig{Events: 60, WithExt: true, WithCkpt: true})
	b := RunProgram(mustProgram(t, "175.vpr"), RunConfig{Events: 60, WithExt: true, WithCkpt: true})
	if a.Cycles != b.Cycles || a.HeapPeak != b.HeapPeak ||
		a.CkptStats.TotalDirtyPages != b.CkptStats.TotalDirtyPages {
		t.Fatalf("nondeterministic measurement: %+v vs %+v", a, b)
	}
}

func mustProgram(t *testing.T, name string) app.App {
	t.Helper()
	if a, err := apps.New(name); err == nil {
		return a
	}
	k, err := workloads.New(name)
	if err != nil {
		t.Fatalf("unknown program %q", name)
	}
	return k
}
