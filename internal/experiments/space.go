package experiments

import (
	"fmt"
	"strings"

	"firstaid/internal/app"
	"firstaid/internal/apps"
	"firstaid/internal/workloads"
)

// allPrograms returns the full 22-program roster of the overhead
// experiments: the seven real-bug applications, the SPEC INT2000 kernels
// and the allocation-intensive kernels, with their class labels.
func allPrograms() []struct {
	Prog  app.App
	Class string
} {
	var out []struct {
		Prog  app.App
		Class string
	}
	for _, name := range apps.RealBugNames() {
		a, _ := apps.New(name)
		out = append(out, struct {
			Prog  app.App
			Class string
		}{a, "Applications"})
	}
	for _, name := range workloads.Names() {
		k, _ := workloads.New(name)
		out = append(out, struct {
			Prog  app.App
			Class string
		}{k, k.P.Class})
	}
	return out
}

// --- Table 6 ----------------------------------------------------------------------

// Table6Row is one program's allocator-extension space overhead.
type Table6Row struct {
	Name         string
	Class        string
	OriginalMB   float64
	FirstAidMB   float64
	OverheadFrac float64
}

// Table6 measures heap peaks with the raw allocator vs with the extension
// (16 bytes of in-heap metadata per object).
func Table6(events int) []Table6Row {
	var rows []Table6Row
	for _, pr := range allPrograms() {
		raw := RunProgram(pr.Prog, RunConfig{Events: events})
		ext := RunProgram(pr.Prog, RunConfig{Events: events, WithExt: true})
		row := Table6Row{
			Name:       pr.Prog.Name(),
			Class:      pr.Class,
			OriginalMB: float64(raw.HeapPeak) / (1 << 20),
			FirstAidMB: float64(ext.HeapPeak) / (1 << 20),
		}
		if raw.HeapPeak > 0 {
			row.OverheadFrac = float64(ext.HeapPeak)/float64(raw.HeapPeak) - 1
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable6 formats the rows.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6. Space overhead incurred by the memory allocator extension.\n")
	fmt.Fprintf(&b, "(memory scaled ~1/8 of the paper's testbed; see EXPERIMENTS.md)\n")
	fmt.Fprintf(&b, "%-14s %-22s %14s %14s %10s\n", "Program", "Class", "Original(MB)", "First-Aid(MB)", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-22s %14.3f %14.3f %9.2f%%\n",
			r.Name, r.Class, r.OriginalMB, r.FirstAidMB, 100*r.OverheadFrac)
	}
	return b.String()
}

// --- Table 7 ----------------------------------------------------------------------

// Table7Row is one program's checkpointing space overhead.
type Table7Row struct {
	Name        string
	Class       string
	MBPerCkpt   float64
	MBPerSecond float64
}

// Table7 measures the COW page retention of checkpointing under the
// adaptive-interval scheme.
func Table7(events int) []Table7Row {
	var rows []Table7Row
	for _, pr := range allPrograms() {
		m := RunProgram(pr.Prog, RunConfig{Events: events, WithExt: true, WithCkpt: true})
		rows = append(rows, Table7Row{
			Name:        pr.Prog.Name(),
			Class:       pr.Class,
			MBPerCkpt:   m.CkptStats.MBPerCheckpoint(),
			MBPerSecond: m.CkptStats.MBPerSecond(),
		})
	}
	return rows
}

// RenderTable7 formats the rows.
func RenderTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7. Space overhead incurred by checkpointing (adaptive intervals).\n")
	fmt.Fprintf(&b, "(memory scaled ~1/8 of the paper's testbed; see EXPERIMENTS.md)\n")
	fmt.Fprintf(&b, "%-14s %-22s %16s %14s\n", "Program", "Class", "MB/checkpoint", "MB/second")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-22s %16.3f %14.3f\n", r.Name, r.Class, r.MBPerCkpt, r.MBPerSecond)
	}
	return b.String()
}

// --- Figure 6 ---------------------------------------------------------------------

// Figure6Row is one program's normalized execution time under the two
// First-Aid configurations.
type Figure6Row struct {
	Name      string
	Class     string
	Allocator float64 // ext-only time / baseline time
	Overall   float64 // ext+checkpointing time / baseline time
}

// Figure6 measures normal-run time overhead across all 22 programs.
func Figure6(events int) []Figure6Row {
	var rows []Figure6Row
	for _, pr := range allPrograms() {
		base := RunProgram(pr.Prog, RunConfig{Events: events})
		ext := RunProgram(pr.Prog, RunConfig{Events: events, WithExt: true})
		all := RunProgram(pr.Prog, RunConfig{Events: events, WithExt: true, WithCkpt: true})
		rows = append(rows, Figure6Row{
			Name:      pr.Prog.Name(),
			Class:     pr.Class,
			Allocator: float64(ext.Cycles) / float64(base.Cycles),
			Overall:   float64(all.Cycles) / float64(base.Cycles),
		})
	}
	return rows
}

// Figure6Average returns the mean overall overhead fraction.
func Figure6Average(rows []Figure6Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Overall - 1
	}
	return sum / float64(len(rows))
}

// RenderFigure6 formats the rows as the bar-chart data of Figure 6.
func RenderFigure6(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6. Overhead for First-Aid during normal execution (normalized time).\n")
	fmt.Fprintf(&b, "%-14s %-22s %10s %10s  %s\n", "Program", "Class", "allocator", "overall", "bar (overall overhead)")
	for _, r := range rows {
		bar := strings.Repeat("#", int(100*(r.Overall-1)+0.5))
		fmt.Fprintf(&b, "%-14s %-22s %10.3f %10.3f  %s\n", r.Name, r.Class, r.Allocator, r.Overall, bar)
	}
	fmt.Fprintf(&b, "%-14s %-22s %10s %10.3f\n", "Average", "", "", 1+Figure6Average(rows))
	return b.String()
}
