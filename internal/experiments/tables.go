package experiments

import (
	"fmt"
	"sort"
	"strings"

	"firstaid/internal/apps"
	"firstaid/internal/baseline"
	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
)

// defaultTrigger is the workload position where the bug-triggering input
// sequence is injected in the recovery experiments.
const defaultTrigger = 230

// --- Table 2 ----------------------------------------------------------------------

// Table2 renders the application-and-bug inventory.
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Applications and bugs used in evaluation.\n")
	fmt.Fprintf(&b, "%-12s | %s\n", "Application", "Version | Bug | LOC | Description")
	for _, name := range apps.Names() {
		fmt.Fprintf(&b, "%-12s | %s\n", name, apps.Describe(name))
	}
	return b.String()
}

// --- Table 3 ----------------------------------------------------------------------

// Table3Row is one application's overall-effectiveness result.
type Table3Row struct {
	App           string
	Diagnosed     string // e.g. "dangling pointer read"
	Patch         string // e.g. "delay free(7)"
	RecoverySec   float64
	AvoidFuture   bool
	Rollbacks     int
	ValidationSec float64
	Correct       bool // diagnosis matches ground truth
}

// Table3 reproduces the overall-effectiveness experiment: every
// application runs with bug-triggering inputs mixed into normal traffic;
// repeated triggers later in the log test future-error avoidance.
func Table3() []Table3Row {
	var rows []Table3Row
	for _, name := range apps.Names() {
		a, _ := apps.New(name)
		log := a.Workload(2200, []int{defaultTrigger, 800, 1400, 1900})
		sup := newSupervisor(a, log, core.Config{})
		stats := sup.Run()

		row := Table3Row{App: name}
		if len(sup.Recoveries) > 0 {
			rec := sup.Recoveries[0]
			var bugs, patches []string
			nSites := 0
			for _, fd := range rec.Result.Findings {
				bugs = append(bugs, fd.Bug.String())
				nSites += len(fd.Sites)
			}
			byChange := map[string]int{}
			for _, p := range rec.Patches {
				byChange[p.ChangeName()] += 1
			}
			names := make([]string, 0, len(byChange))
			for n := range byChange {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				patches = append(patches, fmt.Sprintf("%s(%d)", n, byChange[n]))
			}
			row.Diagnosed = strings.Join(bugs, ", ")
			row.Patch = strings.Join(patches, ", ")
			row.RecoverySec = rec.RecoveryWall.Seconds()
			row.ValidationSec = rec.ValidationWall.Seconds()
			row.Rollbacks = rec.Result.Rollbacks
			row.Correct = diagnosisCorrect(a.Bugs(), rec)
		}
		row.AvoidFuture = stats.Failures == 1
		rows = append(rows, row)
	}
	return rows
}

func diagnosisCorrect(want []mmbug.Type, rec *core.Recovery) bool {
	wantSet := map[mmbug.Type]bool{}
	for _, b := range want {
		wantSet[b] = true
	}
	if len(rec.Result.Findings) == 0 {
		return false
	}
	for _, fd := range rec.Result.Findings {
		if !wantSet[fd.Bug] {
			return false
		}
	}
	return true
}

// RenderTable3 formats the rows in the paper's layout.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Overall results for First-Aid in surviving and preventing memory bugs.\n")
	fmt.Fprintf(&b, "%-12s %-26s %-18s %12s %8s %10s %12s\n",
		"Application", "Diagnosed bugs", "Runtime patch", "Recovery(s)", "Avoid?", "Rollbacks", "Validate(s)")
	for _, r := range rows {
		avoid := "Yes"
		if !r.AvoidFuture {
			avoid = "NO"
		}
		fmt.Fprintf(&b, "%-12s %-26s %-18s %12.4f %8s %10d %12.4f\n",
			r.App, r.Diagnosed, r.Patch, r.RecoverySec, avoid, r.Rollbacks, r.ValidationSec)
	}
	return b.String()
}

// --- Table 4 ----------------------------------------------------------------------

// Table4Row compares the patch/change footprint of First-Aid and Rx in the
// buggy region.
type Table4Row struct {
	App                    string
	FASites, RxSites       int
	FAObjects, RxObjects   uint64
	SiteRatio, ObjectRatio float64
}

// Table4 measures, for the seven real-bug applications, how many call-sites
// and memory objects receive changes: First-Aid's scoped patches vs Rx's
// everything-everywhere environmental changes.
func Table4() []Table4Row {
	var rows []Table4Row
	for _, name := range apps.RealBugNames() {
		// First-Aid: patched sites; objects = patch triggers in the
		// validated buggy region.
		a, _ := apps.New(name)
		log := a.Workload(700, []int{defaultTrigger})
		sup := newSupervisor(a, log, core.Config{})
		sup.Run()
		row := Table4Row{App: name}
		if len(sup.Recoveries) > 0 {
			rec := sup.Recoveries[0]
			row.FASites = len(rec.Patches)
			if rec.ValidationResult != nil && len(rec.ValidationResult.Traces) > 0 {
				row.FAObjects = uint64(rec.ValidationResult.Traces[0].TriggerCount())
			}
		}

		// Rx: every object allocated/freed during the surviving
		// re-execution receives changes.
		b, _ := apps.New(name)
		logRx := b.Workload(700, []int{defaultTrigger})
		rx := baseline.NewRx(b, logRx, core.MachineConfig{})
		st := rx.Run()
		row.RxSites = st.ChangedSites
		row.RxObjects = st.ChangedObjects
		if row.RxSites > 0 {
			row.SiteRatio = float64(row.FASites) / float64(row.RxSites)
		}
		if row.RxObjects > 0 {
			row.ObjectRatio = float64(row.FAObjects) / float64(row.RxObjects)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable4 formats the rows.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Call-sites and memory objects affected by the runtime patch in the buggy region.\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %8s %12s %10s %8s\n",
		"Name", "FA sites", "Rx sites", "Ratio", "FA objects", "Rx objects", "Ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %8d %7.2f%% %12d %10d %7.2f%%\n",
			r.App, r.FASites, r.RxSites, 100*r.SiteRatio, r.FAObjects, r.RxObjects, 100*r.ObjectRatio)
	}
	return b.String()
}

// --- Table 5 ----------------------------------------------------------------------

// Table5Row is one application's patch space overhead.
type Table5Row struct {
	App       string
	HeapKB    float64
	PatchType string
	Overhead  uint64 // bytes
	Ratio     float64
}

// Table5 measures the space cost of the applied patches: peak padding bytes
// for add-padding patches, accumulated delay-freed bytes for delay-free
// patches, zero for fill-with-zero patches.
func Table5() []Table5Row {
	var rows []Table5Row
	for _, name := range apps.RealBugNames() {
		a, _ := apps.New(name)
		log := a.Workload(800, []int{defaultTrigger})

		// Sample the delay-freed accumulation through the run: the
		// supervisor's Trace hook fires after every main-loop event.
		var sup *core.Supervisor
		var maxDelayed uint64
		cfg := core.Config{Trace: func(_ replay.Event, _ uint64, _ *proc.Fault) {
			if sup != nil {
				if d := sup.Ext().DelayedBytes(); d > maxDelayed {
					maxDelayed = d
				}
			}
		}}
		sup = newSupervisor(a, log, cfg)
		sup.Run()

		ext := sup.Ext()
		if d := ext.DelayedBytes(); d > maxDelayed {
			maxDelayed = d
		}
		row := Table5Row{App: name, HeapKB: float64(sup.M.Heap.PeakBytes()) / 1024}
		bug := a.Bugs()[0]
		row.PatchType = bug.PatchName()
		switch bug {
		case mmbug.BufferOverflow:
			row.Overhead = ext.PadPeak()
		case mmbug.DanglingRead, mmbug.DanglingWrite, mmbug.DoubleFree:
			row.Overhead = maxDelayed
		}
		if row.HeapKB > 0 {
			row.Ratio = float64(row.Overhead) / (row.HeapKB * 1024)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable5 formats the rows.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. The space overhead for patches.\n")
	fmt.Fprintf(&b, "%-10s %12s %-14s %16s %8s\n", "Name", "Heap(KB)", "Patch type", "Overhead(bytes)", "Ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.0f %-14s %16d %7.2f%%\n", r.App, r.HeapKB, r.PatchType, r.Overhead, 100*r.Ratio)
	}
	return b.String()
}
