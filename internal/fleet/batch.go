// Batched ingest: the high-throughput half of the serving path. Clients
// pack N events into one length-prefixed binary request (POST
// /events/batch); the front-end decodes it zero-copy — every field is a
// byte-slice view into the request body — splits it by sticky source hash
// into per-worker sub-batches, and each worker records and executes its
// share through core.IngestBatch's arena-backed, fence-ordered path.
// Telemetry, trace and channel traffic are amortized to once per
// sub-batch, so the steady-state cost of an event is its decode bytes, a
// memcpy into the log arena, and its execution — no allocations, no JSON,
// no per-event channel operations.
package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"firstaid/internal/replay"
	"firstaid/internal/trace"
)

// Batch wire format v1, versioned alongside the chaos v2 scenario codec.
// All integers are unsigned varints (binary.Uvarint) except N, a signed
// varint (binary.Varint):
//
//	magic   "FAB" 0x01                 (4 bytes)
//	count   uvarint                    events in the batch
//	event   × count:
//	  kindLen uvarint, kind bytes      handler selector (required, non-empty)
//	  dataLen uvarint, data bytes      payload
//	  srcLen  uvarint, src bytes       dispatch key (HashBySource)
//	  n       varint                   numeric argument
//
// Nothing may follow the last event: trailing bytes mean a corrupt or
// mis-framed request, and the whole batch is rejected (all-or-nothing).
var batchMagic = [4]byte{'F', 'A', 'B', 0x01}

// MaxBatchEvents bounds the events one wire batch may carry; a count
// beyond it is rejected before any per-event work.
const MaxBatchEvents = 65536

// ErrBatchTooLarge reports a batch whose declared event count exceeds
// MaxBatchEvents (the body-size bound is enforced separately by the HTTP
// front-end).
var ErrBatchTooLarge = errors.New("fleet: batch exceeds event limit")

// BatchItem is one event of a decoded wire batch: Request with byte-slice
// views (into the wire buffer) instead of strings. The views are only
// valid while the buffer is; everything that outlives the request copies
// what it keeps (replay interning, the Src hash is consumed in place).
type BatchItem struct {
	Kind []byte
	Data []byte
	Src  []byte
	N    int
}

// AppendBatch appends the wire form of items to dst and returns the
// extended slice.
func AppendBatch(dst []byte, items []BatchItem) []byte {
	dst = append(dst, batchMagic[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for i := range items {
		it := &items[i]
		dst = binary.AppendUvarint(dst, uint64(len(it.Kind)))
		dst = append(dst, it.Kind...)
		dst = binary.AppendUvarint(dst, uint64(len(it.Data)))
		dst = append(dst, it.Data...)
		dst = binary.AppendUvarint(dst, uint64(len(it.Src)))
		dst = append(dst, it.Src...)
		dst = binary.AppendVarint(dst, int64(it.N))
	}
	return dst
}

// AppendRequests is AppendBatch for Request values — the client-side
// encoder (load generator, tests) that skips building BatchItems.
func AppendRequests(dst []byte, reqs []Request) []byte {
	dst = append(dst, batchMagic[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(reqs)))
	for i := range reqs {
		rq := &reqs[i]
		dst = binary.AppendUvarint(dst, uint64(len(rq.Kind)))
		dst = append(dst, rq.Kind...)
		dst = binary.AppendUvarint(dst, uint64(len(rq.Data)))
		dst = append(dst, rq.Data...)
		dst = binary.AppendUvarint(dst, uint64(len(rq.Src)))
		dst = append(dst, rq.Src...)
		dst = binary.AppendVarint(dst, int64(rq.N))
	}
	return dst
}

// DecodeBatch parses a wire batch, appending the decoded items to dst
// (pass nil, or a recycled slice to avoid the allocation). The items'
// byte fields alias buf. Decoding is strict and all-or-nothing: any
// framing fault — bad magic, a length running past the buffer, a missing
// kind, trailing bytes — fails the whole batch.
func DecodeBatch(buf []byte, dst []BatchItem) ([]BatchItem, error) {
	if len(buf) < len(batchMagic) || [4]byte(buf[:4]) != batchMagic {
		return dst, errors.New("fleet: bad batch magic")
	}
	rest := buf[4:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return dst, errors.New("fleet: bad batch count")
	}
	if count > MaxBatchEvents {
		return dst, fmt.Errorf("%w: %d events, limit %d", ErrBatchTooLarge, count, MaxBatchEvents)
	}
	rest = rest[n:]
	take := func() ([]byte, bool) {
		l, n := binary.Uvarint(rest)
		if n <= 0 || l > uint64(len(rest)-n) {
			return nil, false
		}
		b := rest[n : n+int(l)]
		rest = rest[n+int(l):]
		return b, true
	}
	for i := uint64(0); i < count; i++ {
		var it BatchItem
		var ok bool
		if it.Kind, ok = take(); !ok || len(it.Kind) == 0 {
			return dst, fmt.Errorf("fleet: batch event %d: bad kind", i)
		}
		if it.Data, ok = take(); !ok {
			return dst, fmt.Errorf("fleet: batch event %d: bad data", i)
		}
		if it.Src, ok = take(); !ok {
			return dst, fmt.Errorf("fleet: batch event %d: bad src", i)
		}
		v, n := binary.Varint(rest)
		if n <= 0 {
			return dst, fmt.Errorf("fleet: batch event %d: bad n", i)
		}
		rest = rest[n:]
		it.N = int(v)
		dst = append(dst, it)
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("fleet: %d trailing bytes after batch", len(rest))
	}
	return dst, nil
}

// WorkerBatch is one worker's share of a batch outcome.
type WorkerBatch struct {
	Worker    int `json:"worker"`
	First     int `json:"first"`  // sequence of the share's first event in the worker's log
	Events    int `json:"events"` // events in the share
	Failures  int `json:"failures"`
	Recovered int `json:"recovered"`
	Skipped   int `json:"skipped"`
}

// BatchResult is the outcome of one batch: aggregate counts plus the
// per-worker shares (ordered by worker index; workers with no share are
// omitted).
type BatchResult struct {
	Events    int           `json:"events"`
	Failures  int           `json:"failures"`
	Recovered int           `json:"recovered"`
	Skipped   int           `json:"skipped"`
	LatencyUS int64         `json:"latencyUs"`
	Workers   []WorkerBatch `json:"workers,omitempty"`
}

// batchJob is one worker's sub-batch in flight: the items to ingest and
// the channel the outcome comes back on (sized for the whole batch's
// jobs, so the worker's send never blocks).
type batchJob struct {
	items []replay.Item
	out   chan<- WorkerBatch
}

// batchScratch recycles DoBatch's fan-out state across calls.
type batchScratch struct {
	per [][]replay.Item // per-worker split, indexed by worker
	by  []WorkerBatch   // per-worker outcomes, indexed by worker
	out chan WorkerBatch
}

var scratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// DoBatch submits a decoded batch and waits for every event to resolve.
// Items are split by the dispatch mode — HashBySource pins each item to
// its source's sticky worker, preserving per-source order; RoundRobin
// deals contiguous chunks starting at the rotor — and each non-empty
// share is ingested by its worker as one unit. A full batch inbox blocks
// the submitter (backpressure, never a drop), like per-event submission.
func (f *Fleet) DoBatch(items []BatchItem) (BatchResult, error) {
	f.closeMu.RLock()
	defer f.closeMu.RUnlock()
	if f.closed {
		return BatchResult{}, ErrClosed
	}
	res := BatchResult{Events: len(items)}
	if len(items) == 0 {
		return res, nil
	}
	enq := time.Now()
	f.met.submitted.Add(uint64(len(items)))

	n := len(f.workers)
	sc := scratchPool.Get().(*batchScratch)
	if len(sc.per) < n {
		sc.per = make([][]replay.Item, n)
		sc.by = make([]WorkerBatch, n)
		sc.out = make(chan WorkerBatch, n)
	}
	per := sc.per[:n]
	switch f.cfg.Dispatch {
	case HashBySource:
		for i := range items {
			w := f.workerForKey(items[i].Src, items[i].Data)
			per[w] = append(per[w], replay.Item{Kind: items[i].Kind, Data: items[i].Data, N: items[i].N})
		}
	default: // RoundRobin: deal ceil(len/n)-sized contiguous chunks
		chunk := (len(items) + n - 1) / n
		start := int(f.rr.Add(1) - 1)
		for j := 0; j*chunk < len(items); j++ {
			lo, hi := j*chunk, (j+1)*chunk
			if hi > len(items) {
				hi = len(items)
			}
			w := (start + j) % n
			for i := lo; i < hi; i++ {
				per[w] = append(per[w], replay.Item{Kind: items[i].Kind, Data: items[i].Data, N: items[i].N})
			}
		}
	}

	jobs := 0
	for w := 0; w < n; w++ {
		if len(per[w]) == 0 {
			continue
		}
		jobs++
		job := batchJob{items: per[w], out: sc.out}
		select {
		case f.workers[w].batches <- job:
		default:
			f.met.blocked.Inc()
			f.workers[w].batches <- job
		}
		f.em.Emit(trace.KDispatch, uint64(w), uint64(len(f.workers[w].batches)))
	}
	by := sc.by[:n]
	for i := 0; i < jobs; i++ {
		wb := <-sc.out
		by[wb.Worker] = wb
	}
	for w := 0; w < n; w++ {
		if len(per[w]) == 0 {
			continue
		}
		res.Failures += by[w].Failures
		res.Recovered += by[w].Recovered
		res.Skipped += by[w].Skipped
		res.Workers = append(res.Workers, by[w])
		per[w] = per[w][:0]
	}
	res.LatencyUS = time.Since(enq).Microseconds()
	f.met.latencyUS.Observe(uint64(res.LatencyUS))
	scratchPool.Put(sc)
	return res, nil
}

// serveBatch ingests one sub-batch on the worker goroutine: one supervisor
// call, one telemetry update, one outcome send — the per-event loop's
// bookkeeping amortized over the share.
func (w *worker) serveBatch(f *Fleet, bq batchJob) {
	w.busy.Store(true)
	t0 := time.Now()
	br := w.sup.IngestBatch(bq.items)
	ingest := time.Since(t0)
	w.lastClock.Store(w.sup.M.SimNow())
	w.busy.Store(false)
	w.processed.Add(int64(br.Events))

	f.met.ingestUS.Observe(uint64(ingest.Microseconds()))
	f.met.completed.Add(uint64(br.Events))
	f.met.failures.Add(uint64(br.Failures))
	f.met.recoveries.Add(uint64(br.Recoveries))
	f.met.skipped.Add(uint64(br.Skipped))
	bq.out <- WorkerBatch{
		Worker:    w.id,
		First:     br.First,
		Events:    br.Events,
		Failures:  br.Failures,
		Recovered: br.Recoveries,
		Skipped:   br.Skipped,
	}
}
