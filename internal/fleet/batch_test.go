package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"firstaid/internal/app"
)

func wireItems(n int, src string) []BatchItem {
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{
			Kind: []byte("note"),
			Data: []byte(fmt.Sprintf("note %d", i)),
			Src:  []byte(src),
			N:    i - 2, // exercise negative N through the signed varint
		}
	}
	return items
}

func TestBatchCodecRoundTrip(t *testing.T) {
	items := wireItems(17, "c3")
	items[5].Data = nil // empty payload
	wire := AppendBatch(nil, items)
	got, err := DecodeBatch(wire, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if !bytes.Equal(got[i].Kind, items[i].Kind) || !bytes.Equal(got[i].Data, items[i].Data) ||
			!bytes.Equal(got[i].Src, items[i].Src) || got[i].N != items[i].N {
			t.Fatalf("item %d: %+v vs %+v", i, got[i], items[i])
		}
	}
	// AppendRequests must produce the identical wire form.
	reqs := make([]Request, len(items))
	for i, it := range items {
		reqs[i] = Request{Kind: string(it.Kind), Data: string(it.Data), N: it.N, Src: string(it.Src)}
	}
	if wire2 := AppendRequests(nil, reqs); !bytes.Equal(wire, wire2) {
		t.Fatal("AppendRequests wire form diverges from AppendBatch")
	}
}

func TestBatchDecodeRejectsGarbage(t *testing.T) {
	good := AppendBatch(nil, wireItems(3, "s"))
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      []byte("JSON{not a batch}"),
		"magic only":     good[:4],
		"truncated mid":  good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xFF),
	}
	// A declared count far beyond the actual items.
	overCount := append([]byte{}, batchMagic[:]...)
	overCount = binary.AppendUvarint(overCount, 1<<40)
	cases["count overflow"] = overCount
	// An inner length running past the buffer.
	runaway := append([]byte{}, batchMagic[:]...)
	runaway = binary.AppendUvarint(runaway, 1)
	runaway = binary.AppendUvarint(runaway, 1<<30)
	cases["runaway length"] = runaway
	// A present but empty kind.
	noKind := append([]byte{}, batchMagic[:]...)
	noKind = binary.AppendUvarint(noKind, 1)
	noKind = binary.AppendUvarint(noKind, 0)
	cases["empty kind"] = noKind

	for name, wire := range cases {
		if _, err := DecodeBatch(wire, nil); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeBatch(overCount, nil); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("count overflow: err = %v, want ErrBatchTooLarge", err)
	}
}

// TestDoBatchSplitsBySource: a mixed-source batch under HashBySource must
// land each source's events, in order, on that source's sticky worker —
// the same placement per-event submission would have chosen.
func TestDoBatchSplitsBySource(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} },
		Config{Workers: 3, QueueDepth: 8, Dispatch: HashBySource})
	srcs := []string{srcForWorker(t, f, 0), srcForWorker(t, f, 1), srcForWorker(t, f, 2)}

	// Interleave the three sources in one batch.
	var items []BatchItem
	const perSrc = 10
	for i := 0; i < perSrc; i++ {
		for w, src := range srcs {
			items = append(items, BatchItem{
				Kind: []byte("note"),
				Data: []byte(fmt.Sprintf("w%d-%d", w, i)),
				Src:  []byte(src),
			})
		}
	}
	res, err := f.DoBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != len(items) || res.Failures != 0 {
		t.Fatalf("batch result: %+v", res)
	}
	if len(res.Workers) != 3 {
		t.Fatalf("expected shares on 3 workers, got %+v", res.Workers)
	}
	for w, wb := range res.Workers {
		if wb.Worker != w || wb.Events != perSrc {
			t.Fatalf("share %d: %+v", w, wb)
		}
	}
	f.Close()
	for w := range srcs {
		log := f.RecordedLog(w)
		if log.Len() != perSrc {
			t.Fatalf("worker %d recorded %d events, want %d", w, log.Len(), perSrc)
		}
		for i := 0; i < perSrc; i++ {
			if want := fmt.Sprintf("w%d-%d", w, i); log.At(i).Data != want {
				t.Fatalf("worker %d event %d = %q, want %q (order broken)", w, i, log.At(i).Data, want)
			}
		}
	}
}

// TestDoBatchRoundRobinChunks: round-robin batches deal contiguous chunks
// across workers and every event resolves exactly once.
func TestDoBatchRoundRobinChunks(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} },
		Config{Workers: 2, QueueDepth: 8, Dispatch: RoundRobin})
	res, err := f.DoBatch(wireItems(11, "s"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 11 {
		t.Fatalf("events = %d", res.Events)
	}
	total := 0
	for _, wb := range res.Workers {
		total += wb.Events
	}
	if total != 11 {
		t.Fatalf("shares cover %d events, want 11", total)
	}
	st := f.Close()
	if st.Core.Events != 11 {
		t.Fatalf("core events = %d", st.Core.Events)
	}
}

// TestDoBatchRecovery: a trigger mid-batch is diagnosed and patched
// exactly as per-event traffic; the aggregate counts surface it.
func TestDoBatchRecovery(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} },
		Config{Workers: 1, QueueDepth: 8, Dispatch: HashBySource})
	items := wireItems(20, "c0")
	items[7].Data = []byte(oversized) // the notesvc overflow trigger
	res, err := f.DoBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 || res.Recovered == 0 {
		t.Fatalf("trigger not recovered: %+v", res)
	}
	st := f.Close()
	if st.ActivePatches == 0 {
		t.Fatal("no patch in the shared pool after batch recovery")
	}
}

func TestDoBatchClosed(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} }, Config{Workers: 1})
	f.Close()
	if _, err := f.DoBatch(wireItems(1, "s")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestHTTPBatchErrors drives the POST /events/batch error contract:
// oversized bodies and counts are 413 with the limit echoed, framing
// faults are 400, and a rejected batch ingests nothing (all-or-nothing).
func TestHTTPBatchErrors(t *testing.T) {
	ts, f := newTestServer(t)
	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/events/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Body over maxBatchBody: 413, limit echoed.
	resp := post(make([]byte, maxBatchBody+1))
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %s", resp.Status)
	}
	if !strings.Contains(string(msg), fmt.Sprint(maxBatchBody)) {
		t.Fatalf("413 does not echo the body limit: %q", msg)
	}

	// Declared count over MaxBatchEvents: 413, limit echoed.
	over := append([]byte{}, batchMagic[:]...)
	over = binary.AppendUvarint(over, MaxBatchEvents+1)
	resp = post(over)
	msg, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized count: %s", resp.Status)
	}
	if !strings.Contains(string(msg), fmt.Sprint(MaxBatchEvents)) {
		t.Fatalf("413 does not echo the event limit: %q", msg)
	}

	// Garbage and truncated payloads: 400, and — all-or-nothing — no
	// event from any rejected batch may have been ingested.
	good := AppendBatch(nil, wireItems(5, "c1"))
	for name, body := range map[string][]byte{
		"garbage":   []byte("this is not a batch"),
		"truncated": good[:len(good)-4],
		"trailing":  append(append([]byte{}, good...), 0x00),
	} {
		resp = post(body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s, want 400", name, resp.Status)
		}
	}
	for _, wh := range f.Health().Workers {
		if wh.Processed != 0 {
			t.Fatalf("worker %d ingested %d events from rejected batches", wh.ID, wh.Processed)
		}
	}

	// And a well-formed batch on the same connection still lands.
	resp = post(good)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good batch after errors: %s", resp.Status)
	}
	var res BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Events != 5 {
		t.Fatalf("batch result: %+v", res)
	}
}

// TestRunLoadBatchMode drives the load generator in batch mode end to end
// over real TCP: every event acknowledged, HTTP round-trips amortized by
// the batch size, and the error breakdown clean.
func TestRunLoadBatchMode(t *testing.T) {
	ts, f := newTestServer(t)
	rep, err := RunLoad(ts.URL, func() app.App { return &notesvc{} }, LoadConfig{
		Clients:         2,
		EventsPerClient: 100,
		Batch:           32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 200 || rep.Responses != 200 {
		t.Fatalf("sent %d, acknowledged %d", rep.Requests, rep.Responses)
	}
	if rep.Errors != 0 || rep.TransportErrors != 0 || rep.HTTPErrors != 0 {
		t.Fatalf("errors in clean batch run: %+v", rep)
	}
	// ceil(100/32) = 4 batches per client.
	if rep.HTTPRequests != 8 {
		t.Fatalf("HTTP round-trips = %d, want 8", rep.HTTPRequests)
	}
	st := f.Close()
	if st.Core.Events != 200 {
		t.Fatalf("fleet served %d events", st.Core.Events)
	}
}

// TestRunLoadErrorBreakdown: transport failures (server gone) and HTTP
// failures (a 404 route) land in their respective counters.
func TestRunLoadErrorBreakdown(t *testing.T) {
	ts, _ := newTestServer(t)
	// Point the per-event path at a bad route: every request is a non-200.
	rep, err := RunLoad(ts.URL+"/nosuch", func() app.App { return &notesvc{} }, LoadConfig{
		Clients:         1,
		EventsPerClient: 3,
	})
	if err == nil { // /metrics under the bad prefix also fails
		t.Fatalf("expected metrics error, got report %+v", rep)
	}
	if rep.HTTPErrors != 3 || rep.TransportErrors != 0 {
		t.Fatalf("http errors = %d, transport = %d, want 3/0", rep.HTTPErrors, rep.TransportErrors)
	}
	ts.Close()
	rep, err = RunLoad(ts.URL, func() app.App { return &notesvc{} }, LoadConfig{
		Clients:         1,
		EventsPerClient: 3,
		Batch:           2,
	})
	if err == nil {
		t.Fatalf("expected metrics error after server close, got %+v", rep)
	}
	if rep.TransportErrors != 2 || rep.HTTPErrors != 0 {
		t.Fatalf("transport errors = %d, http = %d, want 2/0", rep.TransportErrors, rep.HTTPErrors)
	}
}
