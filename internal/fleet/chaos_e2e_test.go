package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"

	"firstaid/internal/app"
	"firstaid/internal/chaos"
	"firstaid/internal/core"
	"firstaid/internal/mmbug"
)

// TestChaosThroughFleet drives seeded chaos programs — one injected bug
// class per traffic source — through the real POST /events TCP path with
// sticky dispatch, and asserts the fleet survives them: every request is
// answered, none is dropped, no worker wedges, the merged stats are
// consistent with the per-worker stats, and each worker's recorded log
// replays offline through a fresh supervisor into a state the chaos
// differential oracle accepts.
func TestChaosThroughFleet(t *testing.T) {
	const workers = 3
	f := New(func() app.Program { return &chaos.App{} }, Config{
		Workers:  workers,
		Dispatch: HashBySource,
		// Speculative diagnosis on: each worker races re-execution
		// hypotheses on its own standby clone while serving traffic, and
		// the offline replay below (a plain serial supervisor) doubles as
		// a serial-vs-speculative differential on the recorded streams.
		Supervisor: core.Config{Speculate: true},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewServer(f)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	post := func(req Request) Result {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/events", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /events: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /events: %s", resp.Status)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Find one sticky source key per worker by probing with harmless
	// events (the chaos app treats unknown kinds as paid-for no-ops).
	srcFor := map[int]string{}
	for i := 0; len(srcFor) < workers && i < 64; i++ {
		src := fmt.Sprintf("chaos-src-%d", i)
		res := post(Request{Kind: "probe", Src: src})
		if _, taken := srcFor[res.Worker]; !taken {
			srcFor[res.Worker] = src
		}
	}
	if len(srcFor) < workers {
		t.Fatalf("probing found sources for only %d of %d workers", len(srcFor), workers)
	}

	// One program per worker, spanning the scenario axes: a churn workload
	// with an uninitialized read, a protected dangling write (eager
	// sensitive-region detection), and a three-bug multi combo. The shared
	// patch pool immunizes the whole fleet after each diagnosis, so the
	// sources are chosen to keep every injected bug manifesting: the
	// zero-fill patch (uninit, bank-0 alloc site) does not absorb the
	// combo's bank-0 overflow, the dangling-write patch lands on bank 0's
	// free site while the combo's dangling write runs in bank 1, and the
	// combo's uninitialized read runs in bank 2.
	specs := []chaos.GenSpec{
		{Seed: 0xF1EE7, Scenario: chaos.ScenarioChurn, Class: mmbug.UninitRead, Ops: 80},
		{Seed: 0xF1EE8, Class: mmbug.DanglingWrite, Protect: true, Ops: 80},
		{Seed: 0xF1EE9, Scenario: chaos.ScenarioMulti, Combo: 2, Ops: 80},
	}
	// The single-bug workers contribute one failure each, the three-bug
	// combo three — anything less means an injected bug never manifested.
	const wantFailures = 5
	failed := 0
	for w := 0; w < workers; w++ {
		prog := chaos.GenerateSpec(specs[w])
		for _, op := range prog.Ops() {
			kind, data, n := op.Event()
			res := post(Request{Kind: kind, Data: data, N: n, Src: srcFor[w]})
			if res.Skipped {
				t.Fatalf("worker %d dropped a chaos event (%v)", w, prog)
			}
			if res.Failed {
				failed++
				if !res.Recovered {
					t.Fatalf("worker %d failed without recovering (%v)", w, prog)
				}
			}
		}
	}
	if failed < wantFailures {
		t.Fatalf("only %d failures across the fleet, want %d — an injected bug never manifested", failed, wantFailures)
	}

	// No worker may be wedged: the fleet still answers health checks and
	// reports drained inboxes.
	var health Health
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("fleet degraded after chaos traffic: %+v", health)
	}
	for _, w := range health.Workers {
		if w.Inbox != 0 {
			t.Fatalf("worker %d wedged with %d queued requests", w.ID, w.Inbox)
		}
	}

	srv.Close()
	st := f.Close()
	t.Logf("fleet: %+v", st.Core)

	// Merged-stats consistency: the fleet totals must be exactly the sum
	// of the per-worker supervisors.
	var sum core.Stats
	for _, ws := range st.PerWorker {
		sum.Events += ws.Events
		sum.Failures += ws.Failures
		sum.Recoveries += ws.Recoveries
		sum.Skipped += ws.Skipped
		sum.PatchesMade += ws.PatchesMade
	}
	if sum.Events != st.Core.Events || sum.Failures != st.Core.Failures ||
		sum.Recoveries != st.Core.Recoveries || sum.Skipped != st.Core.Skipped ||
		sum.PatchesMade != st.Core.PatchesMade {
		t.Fatalf("merged stats %+v disagree with per-worker sum %+v", st.Core, sum)
	}
	if st.Core.Skipped != 0 {
		t.Fatalf("%d events dropped fleet-wide", st.Core.Skipped)
	}

	// Offline differential check: each worker's recorded stream must
	// replay through a fresh supervisor into a model-consistent state.
	for w := 0; w < workers; w++ {
		sup := core.NewSupervisor(&chaos.App{}, f.RecordedLog(w), core.Config{})
		stats := sup.Run()
		if stats.Skipped != 0 {
			t.Fatalf("worker %d replay dropped %d events", w, stats.Skipped)
		}
		if err := chaos.CheckSupervisor(sup); err != nil {
			t.Fatalf("worker %d: replayed state diverges from the model: %v", w, err)
		}
	}
}
