package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/chaos"
	"firstaid/internal/ledger"
	"firstaid/internal/report"
	"firstaid/internal/trace"
)

// newChaosServer starts a fleet of chaos programs behind httptest and
// drives one seeded buggy workload through it, so the diagnosis ledger has
// real entries to serve.
func newChaosServer(t *testing.T) (*httptest.Server, *Fleet) {
	t.Helper()
	f := New(func() app.Program { return &chaos.App{} }, Config{
		Workers:  2,
		Dispatch: HashBySource,
	})
	srv := NewServer(f)
	srv.streamPoll = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})

	// A three-bug multi-scenario combo on one sticky source: three distinct
	// injected bugs, three recoveries, so the ledger holds several
	// diagnoses (and their phase transitions) to serve.
	prog := chaos.GenerateSpec(chaos.GenSpec{Seed: 0xF1EE9, Scenario: chaos.ScenarioMulti, Combo: 2, Ops: 80})
	failed := 0
	for _, op := range prog.Ops() {
		kind, data, n := op.Event()
		res := sendEvent(t, ts.URL, Request{Kind: kind, Data: data, N: n, Src: "diag-src"})
		if res.Failed {
			failed++
		}
	}
	if failed < 2 {
		t.Fatalf("only %d failures from the seeded combo — not enough diagnoses to test against", failed)
	}
	return ts, f
}

func TestHTTPDiagnosesList(t *testing.T) {
	ts, f := newChaosServer(t)

	var ds []*ledger.Diagnosis
	getJSON(t, ts.URL+"/diagnoses", &ds)
	if len(ds) == 0 {
		t.Fatal("/diagnoses is empty after a recovery")
	}
	if len(ds) != f.Ledger().Len() {
		t.Fatalf("/diagnoses returned %d entries, ledger holds %d", len(ds), f.Ledger().Len())
	}
	for _, d := range ds {
		if d.Source != "chaos" {
			t.Fatalf("diagnosis %d has source %q, want chaos", d.ID, d.Source)
		}
		if !d.Done() {
			t.Fatalf("diagnosis %d still open after the run: phase %s", d.ID, d.Phase)
		}
		if len(d.Conditions) == 0 {
			t.Fatalf("diagnosis %d has no conditions", d.ID)
		}
		if d.Conditions[0].Type != ledger.FaultObserved {
			t.Fatalf("diagnosis %d first condition is %s, want FaultObserved", d.ID, d.Conditions[0].Type)
		}
	}

	// Phase and source filters narrow; a non-matching source empties.
	var succeeded []*ledger.Diagnosis
	getJSON(t, ts.URL+"/diagnoses?phase=Succeeded&source=chaos", &succeeded)
	for _, d := range succeeded {
		if d.Phase != ledger.PhaseSucceeded {
			t.Fatalf("phase filter leaked %s diagnosis %d", d.Phase, d.ID)
		}
	}
	var none []*ledger.Diagnosis
	getJSON(t, ts.URL+"/diagnoses?source=apache", &none)
	if len(none) != 0 {
		t.Fatalf("source=apache matched %d chaos diagnoses", len(none))
	}

	// The worker filter partitions the list: per-worker counts must add up
	// to the whole, and worker 0 must not swallow the "any" meaning.
	perWorker := 0
	for w := 0; w < f.Workers(); w++ {
		var ws []*ledger.Diagnosis
		getJSON(t, ts.URL+"/diagnoses?worker="+strconv.Itoa(w), &ws)
		for _, d := range ws {
			if d.Worker != w {
				t.Fatalf("worker=%d filter returned diagnosis %d owned by %d", w, d.ID, d.Worker)
			}
		}
		perWorker += len(ws)
	}
	if perWorker != len(ds) {
		t.Fatalf("worker filters partition %d of %d diagnoses", perWorker, len(ds))
	}

	resp, err := http.Get(ts.URL + "/diagnoses?worker=banana")
	wantStatus(t, resp, err, http.StatusBadRequest)
}

func TestHTTPDiagnosisByID(t *testing.T) {
	ts, f := newChaosServer(t)
	id := f.Ledger().LastID()

	var d ledger.Diagnosis
	getJSON(t, ts.URL+"/diagnoses/"+strconv.FormatUint(id, 10), &d)
	if d.ID != id {
		t.Fatalf("GET /diagnoses/%d returned id %d", id, d.ID)
	}
	if d.Repro != "" {
		t.Fatalf("fleet diagnosis carries a chaos repro command: %q", d.Repro)
	}

	resp, err := http.Get(ts.URL + "/diagnoses/999999")
	wantStatus(t, resp, err, http.StatusNotFound)
	resp, err = http.Get(ts.URL + "/diagnoses/banana")
	wantStatus(t, resp, err, http.StatusBadRequest)
}

func TestHTTPDiagnosisTrace(t *testing.T) {
	ts, f := newChaosServer(t)
	id := f.Ledger().LastID()
	base := ts.URL + "/diagnoses/" + strconv.FormatUint(id, 10) + "/trace"

	// The text timeline must contain the recovery's own records.
	resp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", base, resp.Status)
	}
	if !bytes.Contains(body, []byte("phase")) {
		t.Fatalf("diagnosis trace slice missing recovery records:\n%.500s", body)
	}

	// Chrome export passes the structural validator.
	resp, err = http.Get(base + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := trace.ValidateChrome(body); err != nil {
		t.Fatalf("chrome trace slice fails validation: %v", err)
	}

	resp, err = http.Get(base + "?format=pprof")
	wantStatus(t, resp, err, http.StatusBadRequest)
}

func TestHTTPDiagnosisBundle(t *testing.T) {
	ts, f := newChaosServer(t)
	id := f.Ledger().LastID()

	resp, err := http.Get(ts.URL + "/diagnoses/" + strconv.FormatUint(id, 10) + "/bundle")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("bundle content-type = %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, report.BundleFileName(id)) {
		t.Fatalf("bundle disposition = %q", cd)
	}

	files, err := report.ReadBundle(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("served bundle does not read back: %v", err)
	}
	for _, want := range []string{"diagnosis.json", "diagnosis.canonical.json", "report.txt", "trace.txt", "metrics.json"} {
		if _, ok := files[want]; !ok {
			t.Fatalf("bundle missing %s; has %v", want, keys(files))
		}
	}
	var d ledger.Diagnosis
	if err := json.Unmarshal(files["diagnosis.json"], &d); err != nil {
		t.Fatalf("bundle diagnosis.json: %v", err)
	}
	if d.ID != id {
		t.Fatalf("bundle carries diagnosis %d, want %d", d.ID, id)
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sseRecords reads one SSE response to completion and returns the data
// payloads.
func sseRecords(t *testing.T, url string) [][]byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var out [][]byte
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			out = append(out, []byte(line))
		}
	}
	return out
}

// TestDiagnosesStreamReconnect proves the SSE cursor contract on
// /diagnoses/stream: a client that disconnects and reconnects with
// ?from=<last seq + 1> sees every phase transition exactly once, with no
// gap and no duplicate across the break.
func TestDiagnosesStreamReconnect(t *testing.T) {
	ts, f := newChaosServer(t)
	total := f.Ledger().TransitionsEmitted()
	if total < 4 {
		t.Fatalf("only %d transitions emitted; the reconnect test needs a backlog", total)
	}

	// First connection: roughly half the backlog.
	half := total / 2
	first := sseRecords(t, ts.URL+"/diagnoses/stream?from=0&max="+strconv.FormatUint(half, 10))
	if uint64(len(first)) != half {
		t.Fatalf("first connection delivered %d transitions, want %d", len(first), half)
	}
	var last ledger.Transition
	if err := json.Unmarshal(first[len(first)-1], &last); err != nil {
		t.Fatal(err)
	}

	// Reconnect from the next cursor: the remainder, no overlap, no gap.
	rest := sseRecords(t, ts.URL+"/diagnoses/stream?from="+strconv.FormatUint(last.Seq+1, 10)+
		"&max="+strconv.FormatUint(total-half, 10))
	if uint64(len(rest)) != total-half {
		t.Fatalf("reconnect delivered %d transitions, want %d", len(rest), total-half)
	}

	seq := uint64(0)
	for _, raw := range append(first, rest...) {
		var tr ledger.Transition
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("bad SSE transition %s: %v", raw, err)
		}
		if tr.Seq != seq {
			t.Fatalf("transition stream not contiguous across reconnect: got seq %d, want %d", tr.Seq, seq)
		}
		seq++
	}

	// Every transition names a real diagnosis and a real phase.
	for _, raw := range rest {
		var tr ledger.Transition
		json.Unmarshal(raw, &tr)
		if _, ok := f.Ledger().Get(tr.ID); !ok && f.Ledger().Dropped() == 0 {
			t.Fatalf("transition references unknown diagnosis %d", tr.ID)
		}
		switch tr.Phase {
		case ledger.PhasePending, ledger.PhaseRunning, ledger.PhaseSucceeded, ledger.PhaseFailed:
		default:
			t.Fatalf("transition carries unknown phase %q", tr.Phase)
		}
	}

	resp, err := http.Get(ts.URL + "/diagnoses/stream?from=banana")
	wantStatus(t, resp, err, http.StatusBadRequest)
	resp, err = http.Get(ts.URL + "/diagnoses/stream?max=-1")
	wantStatus(t, resp, err, http.StatusBadRequest)
}

// TestTraceStreamReconnect proves the same cursor contract on
// /trace/stream: disconnect, resume at ?from=<last seq + 1>, and the two
// reads concatenate into a gapless, duplicate-free prefix of the ring.
func TestTraceStreamReconnect(t *testing.T) {
	ts, f := newTestServer(t)
	for i := 0; i < 5; i++ {
		sendEvent(t, ts.URL, Request{Kind: "search", Data: "uid=1", N: i, Src: "c0"})
	}
	if f.Trace().Emitted() < 12 {
		t.Fatalf("only %d trace records; the reconnect test needs a backlog", f.Trace().Emitted())
	}

	type rec struct {
		Seq int64 `json:"seq"`
	}
	first := sseRecords(t, ts.URL+"/trace/stream?from=0&max=6")
	var last rec
	if err := json.Unmarshal(first[len(first)-1], &last); err != nil {
		t.Fatal(err)
	}
	rest := sseRecords(t, ts.URL+"/trace/stream?from="+strconv.FormatInt(last.Seq+1, 10)+"&max=6")

	seq := int64(0)
	for _, raw := range append(first, rest...) {
		var r rec
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("bad SSE trace record %s: %v", raw, err)
		}
		if r.Seq != seq {
			t.Fatalf("trace stream not contiguous across reconnect: got seq %d, want %d", r.Seq, seq)
		}
		seq++
	}
	if seq != 12 {
		t.Fatalf("reconnected reads covered %d records, want 12", seq)
	}
}

// TestHealthReadiness pins the /healthz readiness contract: a serving,
// drained fleet is ready, every worker reports a post-traffic event clock,
// and no diagnosis is left in flight once recoveries complete.
func TestHealthReadiness(t *testing.T) {
	ts, f := newChaosServer(t)

	var h Health
	getJSON(t, ts.URL+"/healthz", &h)
	if !h.Ready || h.Status != "ok" {
		t.Fatalf("drained fleet not ready: %+v", h)
	}
	if h.QueueDepth <= 0 {
		t.Fatalf("healthz missing queue depth: %+v", h)
	}
	if h.InFlight != 0 {
		t.Fatalf("%d diagnoses still in flight after the run", h.InFlight)
	}
	if h.InFlight != f.Ledger().InFlight(ledger.AnyWorker) {
		t.Fatalf("healthz in-flight %d disagrees with ledger %d", h.InFlight, f.Ledger().InFlight(ledger.AnyWorker))
	}
	served := false
	for _, w := range h.Workers {
		if !w.Ready {
			t.Fatalf("worker %d not ready: %+v", w.ID, w)
		}
		if w.Processed > 0 {
			served = true
			if w.LastEventClock == 0 {
				t.Fatalf("worker %d served %d events but reports clock 0", w.ID, w.Processed)
			}
		}
	}
	if !served {
		t.Fatal("no worker reports processed events")
	}
}
