package fleet

import (
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/apps"
	"firstaid/internal/core"
)

// TestServeEndToEndTCP is the fleet acceptance run: ≥10k requests with bug
// triggers mixed in, over a real TCP socket, across ≥4 supervised workers.
// The shared patch pool must hold fleet-wide failures to at most one per
// distinct buggy call-site (the first trigger is diagnosed and everyone
// else is immunized), and not one request may be dropped.
func TestServeEndToEndTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-request end-to-end run")
	}
	newApache := func() app.App {
		a, err := apps.New("apache")
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	f := New(func() app.Program { return newApache() }, Config{
		Workers:    4,
		Dispatch:   HashBySource,
		Supervisor: core.Config{
			// Inline validation keeps each worker single-threaded, so the
			// outcome (one failure fleet-wide) is reproducible.
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewServer(f)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Gate the run on readiness: every serving goroutine up with inbox
	// space, exactly as a deployment's load balancer would before admitting
	// traffic.
	ready := false
	for i := 0; i < 100 && !ready; i++ {
		var h Health
		getJSON(t, base+"/healthz", &h)
		ready = h.Ready
		if !ready {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !ready {
		t.Fatal("fleet never reported ready on /healthz")
	}

	// 8 clients × ~1300 events ≥ 10k requests. Three clients carry the
	// apache cache-purge trigger, staggered 300 events apart so the first
	// diagnosis propagates through the pool before the others trigger.
	rep, err := RunLoad(base, newApache, LoadConfig{
		Clients:         8,
		EventsPerClient: 1300,
		TriggerClients:  3,
		Triggers:        []int{110},
		TriggerStagger:  300,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %v", rep)

	if rep.Requests < 10000 {
		t.Fatalf("load sent %d requests, want ≥ 10000", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport/HTTP errors", rep.Errors)
	}
	if rep.Responses != rep.Requests {
		t.Fatalf("dropped requests: %d sent, %d answered", rep.Requests, rep.Responses)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("telemetry latency percentiles broken: p50=%v p99=%v", rep.P50, rep.P99)
	}

	// The operational surfaces answer over the same socket.
	var health Health
	getJSON(t, base+"/healthz", &health)
	if len(health.Workers) != 4 {
		t.Fatalf("/healthz reports %d workers, want 4", len(health.Workers))
	}
	if !health.Ready {
		t.Fatalf("fleet not ready after the load drained: %+v", health)
	}
	if health.InFlight != 0 {
		t.Fatalf("%d diagnoses still in flight after the load", health.InFlight)
	}
	for _, w := range health.Workers {
		if !w.Ready || w.LastEventClock == 0 {
			t.Fatalf("worker %d unhealthy after serving load: %+v", w.ID, w)
		}
	}
	resp, err := http.Get(base + "/patches")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/patches: %v (%v)", err, resp)
	}
	resp.Body.Close()

	srv.Close()
	st := f.Close()
	t.Logf("fleet: %+v", st.Core)

	if st.Core.Failures == 0 {
		t.Fatal("no trigger manifested — the run proves nothing")
	}
	// At most one failure per distinct buggy call-site fleet-wide: every
	// active patch covers one call-site, so the patch count bounds the
	// distinct-site count.
	if st.ActivePatches == 0 {
		t.Fatalf("failures without patches: %+v", st)
	}
	if st.Core.Failures > st.ActivePatches {
		t.Fatalf("%d failures for %d patched call-sites — the pool did not immunize the fleet",
			st.Core.Failures, st.ActivePatches)
	}
	if st.Core.Skipped != 0 {
		t.Fatalf("%d requests skipped: %+v", st.Core.Skipped, st.Core)
	}
	if uint64(rep.Responses) != st.Requests {
		t.Fatalf("server completed %d requests, clients got %d results", st.Requests, rep.Responses)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
