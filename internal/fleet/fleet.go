// Package fleet runs N supervised machines of one program as a single
// service — the deployment shape of the paper's evaluation, where several
// server processes (Apache, Squid) run at once and share one central patch
// pool.
//
// Each worker owns a streaming Supervisor: requests are recorded into the
// worker's rolling replay log before execution (the paper's network input
// recorder), so checkpoint/rollback/diagnosis behave exactly as in offline
// runs and every worker's live traffic is replayable afterwards. All
// workers bind the same patch.Pool; the first worker to diagnose a bug
// immunizes the rest live — their bindings observe the pool's generation
// counter on the allocation fast path and pick the new patches up before
// their own first trigger.
//
// Dispatch is round-robin or sticky-by-source over bounded per-worker
// inboxes. Degradation is explicit and lossless: while a worker is
// mid-recovery its inbox fills; round-robin traffic re-routes to workers
// with space, sticky traffic queues (preserving per-source order), and
// when every inbox is full the submitter blocks — backpressure, never a
// silent drop. Every accepted request gets exactly one Result.
package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/core"
	"firstaid/internal/ledger"
	"firstaid/internal/patch"
	"firstaid/internal/replay"
	"firstaid/internal/report"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// Dispatch selects how requests map to workers.
type Dispatch int

const (
	// RoundRobin spreads requests evenly; a full inbox re-routes the
	// request to the next worker with space.
	RoundRobin Dispatch = iota
	// HashBySource pins each request source to one worker (sticky
	// load-balancing), preserving per-source event order; a full inbox
	// queues (blocks) rather than re-routes, because re-routing would
	// interleave one source's stream across recorders.
	HashBySource
)

// Config tunes a fleet.
type Config struct {
	// Workers is the number of supervised machines (default 4).
	Workers int
	// QueueDepth bounds each worker's inbox (default 64). A full inbox is
	// the degradation signal: re-route (round-robin) or block (sticky).
	QueueDepth int
	// Dispatch selects the request→worker mapping.
	Dispatch Dispatch
	// Supervisor is the per-worker configuration template. Pool and
	// Machine.Metrics are overridden: every worker shares the fleet pool
	// and gets a telemetry registry of its own.
	Supervisor core.Config
	// Pool is the shared patch pool; a fresh one (keyed by the program
	// name) is created when nil. Passing a loaded pool deploys previously
	// diagnosed patches to every worker from the first request.
	Pool *patch.Pool
	// Metrics is the fleet-level registry (submission counters, latency
	// histograms). A fresh registry is created when nil: fleet telemetry
	// is always on — it is the service's /metrics surface.
	Metrics *telemetry.Registry
	// Trace is the fleet's execution tracer. A fresh ring (TraceCapacity
	// records) is created when nil: like fleet metrics, the trace is
	// always on — it is the service's /trace surface. Every worker
	// machine emits onto it (worker index = trace track) and the
	// front-end records dispatch decisions on the fleet track.
	Trace *trace.Tracer
	// TraceCapacity sizes the ring when Trace is nil (default
	// trace.DefaultCapacity).
	TraceCapacity int
	// JournalSpans caps each worker's telemetry journal (recovery spans
	// retained); 0 keeps the journal default.
	JournalSpans int
	// Ledger is the shared diagnosis ledger all workers write through. A
	// fresh one (LedgerCapacity entries) is created when nil: the ledger
	// is always on — it is the service's /diagnoses surface.
	Ledger *ledger.Ledger
	// LedgerCapacity sizes the ledger ring when Ledger is nil (default
	// ledger.DefaultCapacity).
	LedgerCapacity int
}

// Request is one unit of live traffic: a replay event plus the dispatch
// source key.
type Request struct {
	Kind string `json:"kind"`
	Data string `json:"data,omitempty"`
	N    int    `json:"n,omitempty"`
	// Src is the dispatch key under HashBySource (a client/connection
	// id); empty falls back to Data.
	Src string `json:"src,omitempty"`
}

// Result is the outcome of one request.
type Result struct {
	Worker    int   `json:"worker"`
	Seq       int   `json:"seq"`
	Failed    bool  `json:"failed"`
	Recovered bool  `json:"recovered"`
	Skipped   bool  `json:"skipped"`
	Rerouted  bool  `json:"rerouted"`
	LatencyUS int64 `json:"latencyUs"`
}

// Stats summarises a closed fleet.
type Stats struct {
	Workers   int
	Requests  uint64     // completed requests
	Rerouted  uint64     // requests placed on a non-primary worker
	Blocked   uint64     // submissions that found every (or the sticky) inbox full
	Core      core.Stats // merged across workers
	PerWorker []core.Stats
	// ActivePatches is the shared pool's non-revoked patch count.
	ActivePatches int
}

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("fleet: closed")

// Fleet is a worker pool of supervised machines for one program.
type Fleet struct {
	cfg     Config
	pool    *patch.Pool
	workers []*worker
	reg     *telemetry.Registry
	met     fleetMetrics
	trc     *trace.Tracer
	ldg     *ledger.Ledger
	em      trace.Emitter // front-end emitter on the fleet track

	rr atomic.Uint64

	// closeMu serializes submissions against Close: submissions hold the
	// read side across dispatch (including a blocking send), so Close's
	// write acquisition proves no send can race the inbox close.
	closeMu sync.RWMutex
	closed  bool

	wg        sync.WaitGroup
	closeOnce sync.Once
	final     Stats
}

type fleetMetrics struct {
	submitted  *telemetry.Counter
	completed  *telemetry.Counter
	rerouted   *telemetry.Counter
	blocked    *telemetry.Counter
	failures   *telemetry.Counter
	recoveries *telemetry.Counter
	skipped    *telemetry.Counter
	latencyUS  *telemetry.Histogram // submission → result, the client view
	ingestUS   *telemetry.Histogram // supervisor time alone
}

type worker struct {
	id        int
	sup       *core.Supervisor
	inbox     chan *request
	batches   chan batchJob
	reg       *telemetry.Registry
	processed atomic.Int64
	busy      atomic.Bool
	started   atomic.Bool   // the serving goroutine is running
	lastClock atomic.Uint64 // simulated clock after the last ingested event
	stats     core.Stats    // final, set when the inbox drains after Close
}

type request struct {
	req      Request
	rerouted bool
	enq      time.Time
	done     chan Result
}

// New builds and starts a fleet. newProg is called once per worker so each
// machine gets its own program instance.
func New(newProg func() app.Program, cfg Config) *Fleet {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.New(cfg.TraceCapacity)
	}
	if cfg.Ledger == nil {
		cfg.Ledger = ledger.New(cfg.LedgerCapacity)
	}
	f := &Fleet{cfg: cfg, pool: cfg.Pool, reg: cfg.Metrics, trc: cfg.Trace, ldg: cfg.Ledger}
	f.em = f.trc.Emitter(trace.FleetTrack, nil)
	f.met = fleetMetrics{
		submitted:  f.reg.Counter("fleet.submitted"),
		completed:  f.reg.Counter("fleet.completed"),
		rerouted:   f.reg.Counter("fleet.rerouted"),
		blocked:    f.reg.Counter("fleet.blocked"),
		failures:   f.reg.Counter("fleet.failures"),
		recoveries: f.reg.Counter("fleet.recoveries"),
		skipped:    f.reg.Counter("fleet.skipped"),
		latencyUS:  f.reg.Histogram("fleet.latency_us"),
		ingestUS:   f.reg.Histogram("fleet.ingest_us"),
	}
	for i := 0; i < cfg.Workers; i++ {
		prog := newProg()
		if f.pool == nil {
			f.pool = patch.NewPool(prog.Name())
		}
		scfg := cfg.Supervisor
		scfg.Pool = f.pool
		scfg.Ledger = f.ldg
		wreg := telemetry.NewRegistry()
		if cfg.JournalSpans > 0 {
			wreg.Journal().SetCap(cfg.JournalSpans)
		}
		scfg.Machine.Metrics = wreg
		scfg.Machine.Trace = f.trc
		scfg.Machine.TraceWorker = i
		w := &worker{
			id:      i,
			inbox:   make(chan *request, cfg.QueueDepth),
			batches: make(chan batchJob, cfg.QueueDepth),
			reg:     wreg,
		}
		w.sup = core.NewSupervisor(prog, replay.NewLog(), scfg)
		f.workers = append(f.workers, w)
	}
	// The shared pool's mutation records go on the fleet track: any worker
	// may add or revoke, so no single worker's emitter can claim them.
	f.pool.SetTracer(f.em)
	for _, w := range f.workers {
		f.wg.Add(1)
		go w.loop(f)
	}
	return f
}

// loop is a worker's serving goroutine: it owns the supervisor exclusively,
// so all machine state stays single-threaded; the only cross-worker
// contact is the locked patch pool and the atomic telemetry instruments.
// Per-event and batch submissions drain from separate bounded inboxes
// (batches would otherwise starve behind a deep per-event queue and vice
// versa); within each inbox, order is preserved.
func (w *worker) loop(f *Fleet) {
	defer f.wg.Done()
	w.started.Store(true)
	inbox, batches := w.inbox, w.batches
	for inbox != nil || batches != nil {
		select {
		case rq, ok := <-inbox:
			if !ok {
				inbox = nil
				continue
			}
			w.serve(f, rq)
		case bq, ok := <-batches:
			if !ok {
				batches = nil
				continue
			}
			w.serveBatch(f, bq)
		}
	}
	w.stats = w.sup.Finish()
}

// serve ingests one per-event submission on the worker goroutine.
func (w *worker) serve(f *Fleet, rq *request) {
	w.busy.Store(true)
	t0 := time.Now()
	ir := w.sup.Ingest(rq.req.Kind, rq.req.Data, rq.req.N)
	ingest := time.Since(t0)
	w.lastClock.Store(w.sup.M.SimNow())
	w.busy.Store(false)
	w.processed.Add(1)

	res := Result{
		Worker:    w.id,
		Seq:       ir.Seq,
		Failed:    ir.Failed,
		Recovered: ir.Recovered,
		Skipped:   ir.Skipped,
		Rerouted:  rq.rerouted,
		LatencyUS: time.Since(rq.enq).Microseconds(),
	}
	f.met.ingestUS.Observe(uint64(ingest.Microseconds()))
	f.met.latencyUS.Observe(uint64(res.LatencyUS))
	f.met.completed.Inc()
	f.met.failures.Add(uint64(ir.Failures))
	if ir.Recovered {
		f.met.recoveries.Inc()
	}
	if ir.Skipped {
		f.met.skipped.Inc()
	}
	rq.done <- res
}

// Go submits a request and returns a channel carrying its Result (buffered:
// the worker never blocks on delivery, the caller may collect late). The
// submission itself may block when inboxes are full — that is the fleet's
// backpressure; it never drops.
func (f *Fleet) Go(req Request) (<-chan Result, error) {
	f.closeMu.RLock()
	defer f.closeMu.RUnlock()
	if f.closed {
		return nil, ErrClosed
	}
	rq := &request{req: req, enq: time.Now(), done: make(chan Result, 1)}
	f.met.submitted.Inc()
	f.dispatch(rq)
	return rq.done, nil
}

// Do submits a request and waits for its Result.
func (f *Fleet) Do(req Request) (Result, error) {
	ch, err := f.Go(req)
	if err != nil {
		return Result{}, err
	}
	return <-ch, nil
}

// dispatch places the request on a worker inbox according to the dispatch
// mode. See the package comment for the degradation rules.
func (f *Fleet) dispatch(rq *request) {
	n := len(f.workers)
	switch f.cfg.Dispatch {
	case HashBySource:
		w := f.workers[f.workerFor(rq.req)]
		select {
		case w.inbox <- rq:
			f.em.Emit(trace.KDispatch, uint64(w.id), uint64(len(w.inbox)))
		default:
			// Sticky traffic queues on its worker — re-routing would
			// split one source's recorded stream across machines.
			f.met.blocked.Inc()
			w.inbox <- rq
			f.em.Emit(trace.KDispatch, uint64(w.id), uint64(len(w.inbox)))
		}
	default: // RoundRobin
		start := int(f.rr.Add(1)-1) % n
		for i := 0; i < n; i++ {
			w := f.workers[(start+i)%n]
			// Flag before the send attempt: once the send succeeds the
			// worker owns rq, and the channel gives the write its
			// happens-before edge.
			rq.rerouted = i > 0
			select {
			case w.inbox <- rq:
				if i > 0 {
					f.met.rerouted.Inc()
				}
				f.em.Emit(trace.KDispatch, uint64(w.id), uint64(len(w.inbox)))
				return
			default:
			}
		}
		// Every inbox full: block on the primary — backpressure.
		rq.rerouted = false
		f.met.blocked.Inc()
		f.workers[start].inbox <- rq
		f.em.Emit(trace.KDispatch, uint64(start), uint64(len(f.workers[start].inbox)))
	}
}

// FNV-1a, inlined so the dispatch hot path neither allocates a hasher nor
// copies the key (hash/fnv would do both per request).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv32a(key string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return h
}

func fnv32aBytes(key []byte) uint32 {
	h := uint32(fnvOffset32)
	for _, c := range key {
		h ^= uint32(c)
		h *= fnvPrime32
	}
	return h
}

// workerFor returns the sticky worker index for a request.
func (f *Fleet) workerFor(req Request) int {
	key := req.Src
	if key == "" {
		key = req.Data
	}
	return int(fnv32a(key) % uint32(len(f.workers)))
}

// workerForKey is workerFor over a decoded batch item's byte views; the
// same hash over the same key bytes, so a source's batched and per-event
// traffic land on the same worker.
func (f *Fleet) workerForKey(src, data []byte) int {
	key := src
	if len(key) == 0 {
		key = data
	}
	return int(fnv32aBytes(key) % uint32(len(f.workers)))
}

// Close stops accepting requests, drains every inbox, joins the workers and
// returns the merged fleet statistics. Idempotent; later calls return the
// same stats.
func (f *Fleet) Close() Stats {
	f.closeOnce.Do(func() {
		f.closeMu.Lock()
		f.closed = true
		f.closeMu.Unlock()
		for _, w := range f.workers {
			close(w.inbox)
			close(w.batches)
		}
		f.wg.Wait()

		st := Stats{Workers: len(f.workers)}
		for _, w := range f.workers {
			st.PerWorker = append(st.PerWorker, w.stats)
			st.Core.Events += w.stats.Events
			st.Core.Failures += w.stats.Failures
			st.Core.Recoveries += w.stats.Recoveries
			st.Core.Skipped += w.stats.Skipped
			st.Core.PatchesMade += w.stats.PatchesMade
			st.Core.SimSeconds += w.stats.SimSeconds
		}
		st.Requests = f.met.completed.Value()
		st.Rerouted = f.met.rerouted.Value()
		st.Blocked = f.met.blocked.Value()
		st.ActivePatches = len(f.pool.Active())
		f.final = st
	})
	return f.final
}

// Pool returns the shared patch pool (for persistence and inspection).
func (f *Fleet) Pool() *patch.Pool { return f.pool }

// Trace returns the fleet's execution-trace ring (never nil).
func (f *Fleet) Trace() *trace.Tracer { return f.trc }

// Ledger returns the shared diagnosis ledger (never nil).
func (f *Fleet) Ledger() *ledger.Ledger { return f.ldg }

// BundleInput assembles the postmortem-bundle input for one diagnosis: its
// trace slice from the fleet ring and the owning worker's telemetry
// snapshot (spans and instruments). Safe while the fleet is serving.
func (f *Fleet) BundleInput(id uint64) (report.BundleInput, bool) {
	d, ok := f.ldg.Get(id)
	if !ok {
		return report.BundleInput{}, false
	}
	var snap telemetry.Snapshot
	if d.Worker >= 0 && d.Worker < len(f.workers) {
		snap = telemetry.MergedSnapshot(f.workers[d.Worker].reg)
	} else {
		snap = f.Snapshot()
	}
	return report.BundleFor(d, f.trc, &snap), true
}

// Workers returns the fleet size.
func (f *Fleet) Workers() int { return len(f.workers) }

// Snapshot merges the fleet registry and every worker registry into one
// telemetry view — counters and histograms add, recovery spans concatenate.
// Safe while the fleet is serving.
func (f *Fleet) Snapshot() telemetry.Snapshot {
	regs := make([]*telemetry.Registry, 0, len(f.workers)+1)
	regs = append(regs, f.reg)
	for _, w := range f.workers {
		regs = append(regs, w.reg)
	}
	return telemetry.MergedSnapshot(regs...)
}

// RecordedLog returns a rewound copy of worker i's recorded event stream —
// the replayable capture of the live traffic it served. Only valid after
// Close: while serving, the recorder belongs to the worker goroutine.
func (f *Fleet) RecordedLog(i int) *replay.Log {
	l := f.workers[i].sup.Log().Clone()
	l.SetCursor(0)
	return l
}

// WorkerHealth is one worker's live state.
type WorkerHealth struct {
	ID        int   `json:"id"`
	Inbox     int   `json:"inbox"`   // queued requests (degradation signal)
	Batches   int   `json:"batches"` // queued batch jobs
	Busy      bool  `json:"busy"`
	Processed int64 `json:"processed"`
	// Ready: the serving goroutine is running and the inbox has spare
	// capacity — the worker can accept a request without queuing behind a
	// full inbox. The fleet e2e gates on every worker being ready.
	Ready bool `json:"ready"`
	// LastEventClock is the simulated clock after the worker's most
	// recently ingested event (0 until it serves one).
	LastEventClock uint64 `json:"lastEventClock"`
	// InFlight counts this worker's open (non-terminal) ledger diagnoses.
	InFlight int `json:"inFlight"`
}

// Health is the /healthz view.
type Health struct {
	Status        string         `json:"status"` // "ok" or "degraded"
	Ready         bool           `json:"ready"`  // every worker is ready
	Workers       []WorkerHealth `json:"workers"`
	QueueDepth    int            `json:"queueDepth"`
	ActivePatches int            `json:"activePatches"`
	InFlight      int            `json:"inFlight"` // open diagnoses, fleet-wide
}

// Health reports per-worker readiness — queue depth, last-event clock, and
// the in-flight diagnosis count from the ledger — plus the shared pool
// size. The fleet is "degraded" while any inbox is full (a worker is
// mid-recovery or overloaded and traffic is being re-routed, queued or
// blocked), and "ready" once every serving goroutine is running with inbox
// space to spare.
func (f *Fleet) Health() Health {
	h := Health{Status: "ok", Ready: true, QueueDepth: f.cfg.QueueDepth, ActivePatches: len(f.pool.Active())}
	for _, w := range f.workers {
		depth := len(w.inbox)
		bdepth := len(w.batches)
		if depth >= f.cfg.QueueDepth || bdepth >= f.cfg.QueueDepth {
			h.Status = "degraded"
		}
		wh := WorkerHealth{
			ID:             w.id,
			Inbox:          depth,
			Batches:        bdepth,
			Busy:           w.busy.Load(),
			Processed:      w.processed.Load(),
			Ready:          w.started.Load() && depth < f.cfg.QueueDepth && bdepth < f.cfg.QueueDepth,
			LastEventClock: w.lastClock.Load(),
			InFlight:       f.ldg.InFlight(w.id),
		}
		if !wh.Ready {
			h.Ready = false
		}
		h.InFlight += wh.InFlight
		h.Workers = append(h.Workers, wh)
	}
	return h
}
