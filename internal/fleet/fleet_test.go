package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/core"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// notesvc is the fleet test program: the quickstart note service (a fixed
// 64-byte note buffer copied into with no bounds check) extended with the
// event kinds the fleet tests need — a test-controlled "gate" that parks
// the worker mid-event, and a "poison" semantic failure no environmental
// change can absorb.
type notesvc struct {
	gate chan struct{} // "gate" events block here until the test closes it
}

func (s *notesvc) Name() string       { return "notesvc" }
func (s *notesvc) Bugs() []mmbug.Type { return []mmbug.Type{mmbug.BufferOverflow} }

func (s *notesvc) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter("notesvc_init")()
	idx := p.Malloc(64)
	p.StoreU32(idx, 0x494E4458) // "INDX"
	p.Memset(idx+4, 0, 60)
	p.SetRoot(0, uint32(idx))
}

func (s *notesvc) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter("handle")()
	p.Tick(100_000)

	switch ev.Kind {
	case "gate":
		// Parks the worker goroutine mid-event so a test can fill its
		// inbox deterministically. Harmless on re-execution: once the
		// test closes the channel the receive is instant.
		if s.gate != nil {
			<-s.gate
		}
		return
	case "poison":
		// A plain semantic failure: no allocation is involved, so
		// diagnosis finds no memory-management bug, no patch can absorb
		// it, and the supervisor's last resort is to skip the event.
		p.At("poison_check")
		p.Assert(false, "poisoned request")
		return
	}

	// "note": the quickstart buffer overflow.
	buf := func() vmem.Addr {
		defer p.Enter("note_alloc")()
		return p.Malloc(64)
	}()
	meta := func() vmem.Addr {
		defer p.Enter("meta_alloc")()
		return p.Malloc(32)
	}()
	p.StoreU32(meta, 0x4D455441) // "META"
	p.Memset(meta+4, 0, 28)

	p.At("copy_note")
	p.StoreString(buf, ev.Data) // THE BUG: no bounds check

	p.At("register")
	p.Assert(p.LoadU32(meta) == 0x4D455441, "note metadata corrupted")
	p.Assert(p.LoadU32(p.RootAddr(0)) == 0x494E4458, "note index corrupted")

	func() {
		defer p.Enter("note_free")()
		p.Free(meta)
		p.Free(buf)
	}()
}

func (s *notesvc) Workload(n int, triggers []int) *replay.Log {
	log := replay.NewLog()
	trig := map[int]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	for i := 0; log.Len() < n; i++ {
		if trig[i] {
			log.Append("note", strings.Repeat("A", 200), i)
		}
		log.Append("note", fmt.Sprintf("note %d", i), i)
	}
	return log
}

func note(data, src string) Request { return Request{Kind: "note", Data: data, Src: src} }

var oversized = strings.Repeat("A", 200)

// srcForWorker finds a source key that HashBySource maps to worker w.
func srcForWorker(t *testing.T, f *Fleet, w int) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		src := fmt.Sprintf("client-%d", i)
		if f.workerFor(Request{Src: src}) == w {
			return src
		}
	}
	t.Fatalf("no source hashes to worker %d", w)
	return ""
}

// TestFleetSharesPatchesAcrossWorkers: the first worker to hit the overflow
// diagnoses it and publishes the padding patch to the shared pool; the same
// trigger on a different worker must then be absorbed without any failure —
// the paper's central-pool property ("protects other processes running the
// same program"), live.
func TestFleetSharesPatchesAcrossWorkers(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} }, Config{
		Workers:  2,
		Dispatch: HashBySource,
	})
	srcA, srcB := srcForWorker(t, f, 0), srcForWorker(t, f, 1)

	// Warm both workers with clean traffic.
	for i := 0; i < 40; i++ {
		for _, src := range []string{srcA, srcB} {
			res, err := f.Do(note(fmt.Sprintf("note %d", i), src))
			if err != nil || res.Failed {
				t.Fatalf("clean note failed: %+v err=%v", res, err)
			}
		}
	}

	// First trigger: worker 0 fails, recovers, and patches the pool.
	res, err := f.Do(note(oversized, srcA))
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != 0 || !res.Failed || !res.Recovered {
		t.Fatalf("first trigger: %+v, want a recovered failure on worker 0", res)
	}
	if n := len(f.Pool().Active()); n == 0 {
		t.Fatal("recovery published no patch to the shared pool")
	}

	// Same trigger on worker 1: immunized by the pool, never fails.
	res, err = f.Do(note(oversized, srcB))
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != 1 || res.Failed {
		t.Fatalf("second trigger: %+v, want a clean result on worker 1", res)
	}

	st := f.Close()
	if st.Core.Failures != 1 || st.Core.Recoveries != 1 {
		t.Fatalf("fleet stats: %+v, want exactly one failure and one recovery", st.Core)
	}
	if st.ActivePatches == 0 {
		t.Fatalf("no active patches after close: %+v", st)
	}
}

// TestFleetBackpressureAndReroute drives the degradation rules directly: a
// gated worker with a full inbox re-routes round-robin traffic to its peer,
// and when every inbox is full the submitter blocks — and every accepted
// request still gets its result.
func TestFleetBackpressureAndReroute(t *testing.T) {
	gate := make(chan struct{})
	f := New(func() app.Program { return &notesvc{gate: gate} }, Config{
		Workers:    2,
		QueueDepth: 1,
		Dispatch:   RoundRobin,
	})

	var pending []<-chan Result
	submit := func(req Request) {
		t.Helper()
		ch, err := f.Go(req)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, ch)
	}
	waitBusy := func(w int) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			if f.workers[w].busy.Load() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("worker %d never picked up its gate event", w)
	}

	// Submission k (1-indexed) starts its round-robin sweep at worker
	// (k-1)%2. Park worker 0 on a gate and fill its one-slot inbox.
	submit(Request{Kind: "gate"}) // #1 → worker 0, parked
	waitBusy(0)
	res, err := f.Do(note("clean", "")) // #2 → worker 1
	if err != nil || res.Failed {
		t.Fatalf("worker 1 note: %+v err=%v", res, err)
	}
	submit(note("queued", "")) // #3 → worker 0's inbox, now full

	// #4 starts at worker 1 (free). #5 starts at worker 0: full → must
	// re-route to worker 1.
	res, err = f.Do(note("clean", "")) // #4
	if err != nil {
		t.Fatal(err)
	}
	res, err = f.Do(note("rerouted", "")) // #5
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rerouted || res.Worker != 1 {
		t.Fatalf("expected re-route to worker 1, got %+v", res)
	}

	// Park worker 1 too, fill its inbox via re-route, then the next
	// submission finds every inbox full and must block (backpressure).
	submit(Request{Kind: "gate"}) // #6 → worker 1, parked
	waitBusy(1)
	submit(note("queued", "")) // #7 → worker 0 full → re-routed into worker 1's inbox

	blockedDone := make(chan struct{})
	go func() {
		defer close(blockedDone)
		submit(note("blocked", "")) // #8: both inboxes full → blocks
	}()
	for i := 0; i < 2000 && f.met.blocked.Value() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := f.met.blocked.Value(); got == 0 {
		t.Fatal("submission with every inbox full did not register as blocked")
	}
	select {
	case <-blockedDone:
		t.Fatal("blocked submission completed while every inbox was full")
	case <-time.After(20 * time.Millisecond):
	}

	// Release the gates: everything drains, nothing was dropped.
	close(gate)
	<-blockedDone
	for i, ch := range pending {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never completed", i)
		}
	}
	st := f.Close()
	if st.Requests != 8 {
		t.Fatalf("fleet completed %d of 8 requests", st.Requests)
	}
	if st.Rerouted == 0 || st.Blocked == 0 {
		t.Fatalf("degradation counters: rerouted=%d blocked=%d, want both > 0", st.Rerouted, st.Blocked)
	}
	if st.Core.Failures != 0 {
		t.Fatalf("clean traffic failed: %+v", st.Core)
	}
}

// TestFleetSkipsPoisonEventAndKeepsServing: an event that fails under every
// environmental change exhausts diagnosis and retries inside one submission,
// comes back Skipped, and the worker keeps serving the traffic behind it.
func TestFleetSkipsPoisonEventAndKeepsServing(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} }, Config{
		Workers:  1,
		Dispatch: HashBySource,
	})
	for i := 0; i < 30; i++ {
		if res, err := f.Do(note(fmt.Sprintf("note %d", i), "c0")); err != nil || res.Failed {
			t.Fatalf("warmup note: %+v err=%v", res, err)
		}
	}
	res, err := f.Do(Request{Kind: "poison", Src: "c0"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !res.Skipped || res.Recovered {
		t.Fatalf("poison event: %+v, want failed+skipped", res)
	}
	// The fleet is still serviceable afterwards.
	res, err = f.Do(note("after the storm", "c0"))
	if err != nil || res.Failed {
		t.Fatalf("note after skip: %+v err=%v", res, err)
	}
	st := f.Close()
	if st.Core.Skipped != 1 {
		t.Fatalf("stats: %+v, want exactly one skip", st.Core)
	}
}

// TestFleetRecordReplayEquivalence: every worker's recorded log must re-run
// through a fresh offline supervisor (fresh pool, fresh machine) with the
// same outcomes the worker produced live — the fleet-level statement of the
// network-input-recorder property.
func TestFleetRecordReplayEquivalence(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} }, Config{
		Workers:  1,
		Dispatch: HashBySource,
	})
	feed := (&notesvc{}).Workload(250, []int{80, 160})
	for {
		ev, ok := feed.Next()
		if !ok {
			break
		}
		if _, err := f.Do(Request{Kind: ev.Kind, Data: ev.Data, N: ev.N, Src: "c0"}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Close()
	live := st.PerWorker[0]
	if live.Failures == 0 {
		t.Fatalf("live run never failed: %+v", live)
	}

	recorded := f.RecordedLog(0)
	if recorded.Len() != feed.Len() {
		t.Fatalf("recorded %d of %d events", recorded.Len(), feed.Len())
	}
	rep := core.NewSupervisor(&notesvc{}, recorded, core.Config{})
	repStats := rep.Run()

	// Outcome counters must match exactly. Simulated elapsed time may not:
	// offline recovery re-executes events past the failure point that had
	// not arrived yet when the live worker recovered.
	liveCmp, repCmp := live, repStats
	liveCmp.SimSeconds, repCmp.SimSeconds = 0, 0
	if liveCmp != repCmp {
		t.Fatalf("offline replay diverged from live serving:\nlive:   %+v\nreplay: %+v", live, repStats)
	}
}

// TestFleetClosedRejectsSubmissions: submissions after Close fail fast with
// ErrClosed instead of panicking on a closed inbox.
func TestFleetClosedRejectsSubmissions(t *testing.T) {
	f := New(func() app.Program { return &notesvc{} }, Config{Workers: 1})
	if _, err := f.Do(note("hello", "c0")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Do(note("too late", "c0")); err != ErrClosed {
		t.Fatalf("post-close submission: err=%v, want ErrClosed", err)
	}
	// Close is idempotent and stable.
	if st := f.Close(); st.Requests != 1 {
		t.Fatalf("second Close changed stats: %+v", st)
	}
}
