package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"

	"firstaid/internal/app"
	"firstaid/internal/chaos"
	"firstaid/internal/core"
	"firstaid/internal/guard"
	"firstaid/internal/mmbug"
)

// TestGuardThroughFleet soaks the guard tier through the real TCP path:
// every worker runs with sampling always on — the default 1/4096 coin plus
// forced 1/1 sampling of the chaos bug sites, the configuration a fleet
// hunting a known-suspect site would deploy. The fleet must survive the
// injected bugs with zero drops, the guard counters must surface in the
// merged telemetry snapshot, and each worker's recorded stream must replay
// offline (same guard configuration) into a state the differential oracle
// accepts.
func TestGuardThroughFleet(t *testing.T) {
	const workers = 3
	mcfg := core.MachineConfig{
		GuardRate:  guard.DefaultRate,
		GuardForce: []string{"chaos_bug"},
	}
	f := New(func() app.Program { return &chaos.App{} }, Config{
		Workers:    workers,
		Dispatch:   HashBySource,
		Supervisor: core.Config{Machine: mcfg},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewServer(f)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	post := func(req Request) Result {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/events", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /events: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /events: %s", resp.Status)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	srcFor := map[int]string{}
	for i := 0; len(srcFor) < workers && i < 64; i++ {
		src := fmt.Sprintf("guard-src-%d", i)
		res := post(Request{Kind: "probe", Src: src})
		if _, taken := srcFor[res.Worker]; !taken {
			srcFor[res.Worker] = src
		}
	}
	if len(srcFor) < workers {
		t.Fatalf("probing found sources for only %d of %d workers", len(srcFor), workers)
	}

	// One program per worker: two force-sampled singles (overflow and
	// dangling write trap at the faulting access and take the evidence fast
	// path) and the three-bug combo. The shared patch pool immunizes the
	// fleet as diagnoses land, and guarded pages are zero-filled, so of the
	// combo's three bugs only the bank-1 dangling write still manifests:
	// worker 0's padding patch absorbs the bank-0 overflow and the bank-2
	// uninitialized read observes guard-page zeros. Floor: 3 failures.
	specs := []chaos.GenSpec{
		{Seed: 0x6AF1, Class: mmbug.BufferOverflow, Ops: 80},
		{Seed: 0x6AF2, Class: mmbug.DanglingWrite, Ops: 80},
		{Seed: 0x6AF3, Scenario: chaos.ScenarioMulti, Combo: 2, Ops: 80},
	}
	const wantFailures = 3
	failed := 0
	for w := 0; w < workers; w++ {
		prog := chaos.GenerateSpec(specs[w])
		for _, op := range prog.Ops() {
			kind, data, n := op.Event()
			res := post(Request{Kind: kind, Data: data, N: n, Src: srcFor[w]})
			if res.Skipped {
				t.Fatalf("worker %d dropped a chaos event (%v)", w, prog)
			}
			if res.Failed {
				failed++
				if !res.Recovered {
					t.Fatalf("worker %d failed without recovering (%v)", w, prog)
				}
			}
		}
	}
	if failed < wantFailures {
		t.Fatalf("only %d failures across the fleet, want >= %d — an injected bug never manifested", failed, wantFailures)
	}

	// Guard activity must surface in the merged telemetry: forced sites
	// sampled on every script allocation, and every trapped bug above was a
	// guard-page hit.
	snap := f.Snapshot()
	if snap.Counters["guard.sampled"] == 0 {
		t.Fatalf("no sampled allocations in merged snapshot: %v", snap.Counters)
	}
	if snap.Counters["guard.hits"] < wantFailures {
		t.Fatalf("guard.hits = %d, want >= %d: %v", snap.Counters["guard.hits"], wantFailures, snap.Counters)
	}
	if snap.Counters["guard.quarantined"] == 0 {
		t.Fatalf("no quarantined frees in merged snapshot: %v", snap.Counters)
	}

	var health Health
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("fleet degraded after guarded chaos traffic: %+v", health)
	}
	for _, w := range health.Workers {
		if w.Inbox != 0 {
			t.Fatalf("worker %d wedged with %d queued requests", w.ID, w.Inbox)
		}
	}

	srv.Close()
	st := f.Close()
	t.Logf("fleet: %+v", st.Core)
	if st.Core.Skipped != 0 {
		t.Fatalf("%d events dropped fleet-wide", st.Core.Skipped)
	}

	// Offline differential check under the same guard configuration: the
	// sampling coin is seeded per machine, so a fresh supervisor replaying
	// the recorded stream reproduces the guarded run deterministically.
	for w := 0; w < workers; w++ {
		sup := core.NewSupervisor(&chaos.App{}, f.RecordedLog(w), core.Config{Machine: mcfg})
		stats := sup.Run()
		if stats.Skipped != 0 {
			t.Fatalf("worker %d replay dropped %d events", w, stats.Skipped)
		}
		if err := chaos.CheckSupervisor(sup); err != nil {
			t.Fatalf("worker %d: replayed state diverges from the model: %v", w, err)
		}
	}
}
