// The HTTP front-end: JSON events in, outcomes out, plus the operational
// surfaces a fleet deployment needs — merged telemetry, the live patch
// pool, and worker health.
package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Server exposes a Fleet over HTTP:
//
//	POST /events  {"kind":"search","data":"uid=user7","n":7,"src":"c0"}
//	              → {"worker":2,"seq":41,"failed":false,...,"latencyUs":183}
//	GET  /metrics → merged telemetry snapshot (fleet + every worker)
//	GET  /patches → the shared patch pool as JSON (patch.Pool format)
//	GET  /healthz → per-worker inbox depth / busy state, pool size
type Server struct {
	fleet *Fleet
	mux   *http.ServeMux
}

// NewServer wraps a fleet in the HTTP front-end.
func NewServer(f *Fleet) *Server {
	s := &Server{fleet: f, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /events", s.handleEvent)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /patches", s.handlePatches)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad event: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Kind == "" {
		http.Error(w, "bad event: missing kind", http.StatusBadRequest)
		return
	}
	res, err := s.fleet.Do(req)
	if errors.Is(err, ErrClosed) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	out, err := s.fleet.Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
	w.Write([]byte("\n"))
}

func (s *Server) handlePatches(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.fleet.Pool().Save(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.fleet.Health())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
