// The HTTP front-end: JSON events in, outcomes out, plus the operational
// surfaces a fleet deployment needs — merged telemetry (JSON or Prometheus
// text), the live patch pool, worker health, and the execution trace
// (Chrome trace-event JSON, text timeline, or a live SSE tail).
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"firstaid/internal/ledger"
	"firstaid/internal/report"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// maxEventBody bounds POST /events request bodies: an event is a short
// JSON object; anything near a megabyte is a client bug or abuse.
const maxEventBody = 1 << 20

// maxBatchBody bounds POST /events/batch request bodies. The binary
// format costs a few bytes of framing per event, so 8 MiB comfortably
// fits MaxBatchEvents typical events while still bounding a hostile
// client's buffer.
const maxBatchBody = 8 << 20

// Server exposes a Fleet over HTTP:
//
//	POST /events        {"kind":"search","data":"uid=user7","n":7,"src":"c0"}
//	                    → {"worker":2,"seq":41,"failed":false,...,"latencyUs":183}
//	POST /events/batch  binary batch (wire format v1, see batch.go): N events
//	                    in one request, split across workers by dispatch mode
//	                    → {"events":512,"failures":0,...,"workers":[...]}
//	                    413 when body > 8 MiB or count > 65536 (limit echoed);
//	                    400 on any framing fault — all-or-nothing, nothing
//	                    from a rejected batch is ingested
//	GET  /metrics       → merged telemetry snapshot (fleet + every worker);
//	                      ?format=prom (or a text/plain Accept header) selects
//	                      the Prometheus text exposition
//	GET  /trace         → the execution-trace ring; ?format=chrome (trace-event
//	                      JSON) or ?format=text (timeline, the default)
//	GET  /trace/stream  → live SSE tail of the ring (?from=seq, ?max=n)
//	GET  /patches       → the shared patch pool as JSON (patch.Pool format)
//	GET  /healthz       → per-worker readiness: inbox depth, busy state,
//	                      last-event clock, in-flight diagnoses, pool size
//	GET  /diagnoses     → ledger diagnoses (?phase=, ?source=, ?worker=)
//	GET  /diagnoses/stream → live SSE feed of phase transitions
//	                      (?from=cursor resumes, ?max=n bounds)
//	GET  /diagnoses/{id}       → one full diagnosis object
//	GET  /diagnoses/{id}/trace → its trace slice (?format=chrome|text)
//	GET  /diagnoses/{id}/bundle → its postmortem bundle (tar.gz)
type Server struct {
	fleet *Fleet
	mux   *http.ServeMux

	// streamPoll is the SSE poll cadence (settable in tests).
	streamPoll time.Duration
}

// NewServer wraps a fleet in the HTTP front-end.
func NewServer(f *Fleet) *Server {
	s := &Server{fleet: f, mux: http.NewServeMux(), streamPoll: 100 * time.Millisecond}
	s.mux.HandleFunc("POST /events", s.handleEvent)
	s.mux.HandleFunc("POST /events/batch", s.handleEventBatch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /trace", s.handleTrace)
	s.mux.HandleFunc("GET /trace/stream", s.handleTraceStream)
	s.mux.HandleFunc("GET /patches", s.handlePatches)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /diagnoses", s.handleDiagnoses)
	s.mux.HandleFunc("GET /diagnoses/stream", s.handleDiagnosesStream)
	s.mux.HandleFunc("GET /diagnoses/{id}", s.handleDiagnosis)
	s.mux.HandleFunc("GET /diagnoses/{id}/trace", s.handleDiagnosisTrace)
	s.mux.HandleFunc("GET /diagnoses/{id}/bundle", s.handleDiagnosisBundle)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxEventBody)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "event too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad event: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Kind == "" {
		http.Error(w, "bad event: missing kind", http.StatusBadRequest)
		return
	}
	res, err := s.fleet.Do(req)
	if errors.Is(err, ErrClosed) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, res)
}

// handleEventBatch ingests one binary batch. Validation is all-or-nothing:
// the batch is fully decoded — and every event checked — before anything
// is submitted, so a rejected batch leaves no partial ingest behind.
func (s *Server) handleEventBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	buf, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch too large: body limit %d bytes", maxBatchBody),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	items, err := DecodeBatch(buf, nil)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrBatchTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "bad batch: "+err.Error(), status)
		return
	}
	res, err := s.fleet.DoBatch(items)
	if errors.Is(err, ErrClosed) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && wantsPromText(r.Header.Get("Accept")) {
		format = "prom"
	}
	switch format {
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := telemetry.WritePrometheus(w, s.fleet.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "", "json":
		out, err := s.fleet.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
		w.Write([]byte("\n"))
	default:
		http.Error(w, "unknown format "+strconv.Quote(format)+" (want json or prom)", http.StatusBadRequest)
	}
}

// wantsPromText reports whether an Accept header asks for plain text (the
// Prometheus scraper default) rather than JSON.
func wantsPromText(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "application/json":
			return false
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	recs := s.fleet.Trace().Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := trace.ChromeTrace(w, recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := trace.WriteText(w, recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "unknown format "+strconv.Quote(format)+" (want chrome or text)", http.StatusBadRequest)
	}
}

// handleTraceStream tails the ring as server-sent events, one record per
// event. The ring has no subscription hooks — emits stay a lock and a
// store — so the tail polls Since(cursor) on a ticker. ?from= starts the
// cursor at a sequence number (default: the current tail, i.e. only new
// records); ?max= closes the stream after that many records (0 = until the
// client disconnects), which also makes the endpoint testable.
func (s *Server) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor := s.fleet.Trace().Emitted()
	if v := q.Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
		cursor = n
	}
	var maxRecs uint64
	if v := q.Get("max"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
			return
		}
		maxRecs = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ticker := time.NewTicker(s.streamPoll)
	defer ticker.Stop()
	enc := json.NewEncoder(w)
	var sent uint64
	for {
		for _, rec := range s.fleet.Trace().Since(cursor) {
			cursor = rec.Seq + 1
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if err := enc.Encode(trace.ToJSON(rec)); err != nil {
				return
			}
			// The JSON encoder already wrote one \n; the blank line ends
			// the SSE event.
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			sent++
			if maxRecs > 0 && sent >= maxRecs {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func (s *Server) handlePatches(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.fleet.Pool().Save(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.fleet.Health())
}

// handleDiagnoses lists ledger diagnoses, optionally filtered by phase
// (?phase=Succeeded), source program (?source=chaos) and owning worker
// (?worker=2).
func (s *Server) handleDiagnoses(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	flt := ledger.Filter{Worker: ledger.AnyWorker}
	if v := q.Get("phase"); v != "" {
		flt.Phase = ledger.Phase(v)
	}
	flt.Source = q.Get("source")
	if v := q.Get("worker"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad worker: "+err.Error(), http.StatusBadRequest)
			return
		}
		flt.Worker = n
	}
	ds := s.fleet.Ledger().List(flt)
	if ds == nil {
		ds = []*ledger.Diagnosis{}
	}
	writeJSON(w, ds)
}

// diagnosisByPath resolves the {id} path value against the ledger.
func (s *Server) diagnosisByPath(w http.ResponseWriter, r *http.Request) (*ledger.Diagnosis, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	d, ok := s.fleet.Ledger().Get(id)
	if !ok {
		http.Error(w, "no such diagnosis", http.StatusNotFound)
		return nil, false
	}
	return d, true
}

func (s *Server) handleDiagnosis(w http.ResponseWriter, r *http.Request) {
	if d, ok := s.diagnosisByPath(w, r); ok {
		writeJSON(w, d)
	}
}

// handleDiagnosisTrace renders the diagnosis's slice of the execution
// trace — the records its recovery emitted on the owning worker's tracks.
func (s *Server) handleDiagnosisTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := s.diagnosisByPath(w, r)
	if !ok {
		return
	}
	in := report.BundleFor(d, s.fleet.Trace(), nil)
	switch format := r.URL.Query().Get("format"); format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := trace.ChromeTrace(w, in.Trace); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := trace.WriteText(w, in.Trace); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "unknown format "+strconv.Quote(format)+" (want chrome or text)", http.StatusBadRequest)
	}
}

// handleDiagnosisBundle streams the diagnosis's postmortem bundle.
func (s *Server) handleDiagnosisBundle(w http.ResponseWriter, r *http.Request) {
	d, ok := s.diagnosisByPath(w, r)
	if !ok {
		return
	}
	in, ok := s.fleet.BundleInput(d.ID)
	if !ok {
		http.Error(w, "no such diagnosis", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", "attachment; filename="+strconv.Quote(report.BundleFileName(d.ID)))
	if err := report.WriteBundle(w, in); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleDiagnosesStream feeds ledger phase transitions as server-sent
// events. Like /trace/stream it polls the transition ring: ?from= resumes
// from a stream cursor (default: only new transitions; the cursor of each
// delivered record is seq+1), ?max= closes after n records.
func (s *Server) handleDiagnosesStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ldg := s.fleet.Ledger()
	cursor := ldg.TransitionsEmitted()
	if v := q.Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
		cursor = n
	}
	var maxRecs uint64
	if v := q.Get("max"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
			return
		}
		maxRecs = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ticker := time.NewTicker(s.streamPoll)
	defer ticker.Stop()
	enc := json.NewEncoder(w)
	var sent uint64
	for {
		for _, tr := range ldg.TransitionsSince(cursor) {
			cursor = tr.Seq + 1
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if err := enc.Encode(tr); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			sent++
			if maxRecs > 0 && sent >= maxRecs {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
