package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/apps"
	"firstaid/internal/trace"
)

// newTestServer starts a small fleet behind httptest and tears it down with
// the test.
func newTestServer(t *testing.T) (*httptest.Server, *Fleet) {
	t.Helper()
	f := New(func() app.Program {
		a, err := apps.New("apache")
		if err != nil {
			t.Fatal(err)
		}
		return a
	}, Config{Workers: 2, QueueDepth: 8})
	srv := NewServer(f)
	srv.streamPoll = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})
	return ts, f
}

func sendEvent(t *testing.T, base string, req Request) Result {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /events: %s", resp.Status)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func wantStatus(t *testing.T, resp *http.Response, err error, want int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("got %s, want %d", resp.Status, want)
	}
}

func TestHTTPWrongMethod(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/events"},
		{http.MethodPost, "/metrics"},
		{http.MethodPost, "/trace"},
		{http.MethodPost, "/trace/stream"},
		{http.MethodDelete, "/patches"},
		{http.MethodPut, "/healthz"},
	} {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		wantStatus(t, resp, err, http.StatusMethodNotAllowed)
	}
}

func TestHTTPEventErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/events", "application/json", strings.NewReader("{not json"))
	wantStatus(t, resp, err, http.StatusBadRequest)

	// Valid JSON, missing kind.
	resp, err = http.Post(ts.URL+"/events", "application/json", strings.NewReader(`{"data":"x"}`))
	wantStatus(t, resp, err, http.StatusBadRequest)

	// Oversized body.
	huge := `{"kind":"search","data":"` + strings.Repeat("x", maxEventBody) + `"}`
	resp, err = http.Post(ts.URL+"/events", "application/json", strings.NewReader(huge))
	wantStatus(t, resp, err, http.StatusRequestEntityTooLarge)

	// The fleet still answers after every error path.
	res := sendEvent(t, ts.URL, Request{Kind: "search", Data: "uid=1", N: 1, Src: "c0"})
	if res.Failed {
		t.Fatalf("clean event failed: %+v", res)
	}
}

func TestHTTPMetricsFormats(t *testing.T) {
	ts, _ := newTestServer(t)
	sendEvent(t, ts.URL, Request{Kind: "search", Data: "uid=1", N: 1, Src: "c0"})

	// Default is JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	resp.Body.Close()

	// ?format=prom selects the text exposition.
	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=prom: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content-type = %q", ct)
	}
	if !bytes.Contains(body, []byte("# TYPE firstaid_")) {
		t.Fatalf("prom exposition missing firstaid_ metrics:\n%s", body)
	}

	// A text/plain Accept header (the scraper default) also selects prom.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4, */*")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("# TYPE firstaid_")) {
		t.Fatalf("Accept: text/plain did not select prom:\n%s", body)
	}

	// Unknown format is rejected, not silently defaulted.
	resp, err = http.Get(ts.URL + "/metrics?format=xml")
	wantStatus(t, resp, err, http.StatusBadRequest)
}

func TestHTTPTraceFormats(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 20; i++ {
		sendEvent(t, ts.URL, Request{Kind: "search", Data: "uid=1", N: i, Src: "c0"})
	}

	// Chrome export must pass the structural validator.
	resp, err := http.Get(ts.URL + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace?format=chrome: %s", resp.Status)
	}
	if err := trace.ValidateChrome(body); err != nil {
		t.Fatalf("/trace?format=chrome fails validation: %v", err)
	}

	// Text timeline is the default.
	resp, err = http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("event-begin")) || !bytes.Contains(body, []byte("dispatch")) {
		t.Fatalf("text timeline missing ingest/dispatch records:\n%.500s", body)
	}

	resp, err = http.Get(ts.URL + "/trace?format=pprof")
	wantStatus(t, resp, err, http.StatusBadRequest)
}

func TestHTTPTraceStream(t *testing.T) {
	ts, f := newTestServer(t)
	for i := 0; i < 5; i++ {
		sendEvent(t, ts.URL, Request{Kind: "search", Data: "uid=1", N: i, Src: "c0"})
	}
	if f.Trace().Emitted() < 10 {
		t.Fatalf("only %d records emitted; the stream test needs a backlog", f.Trace().Emitted())
	}

	resp, err := http.Get(ts.URL + "/trace/stream?from=0&max=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace/stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var got int
	lastSeq := int64(-1)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rec struct {
			Seq  int64  `json:"seq"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
			t.Fatalf("bad SSE record %q: %v", line, err)
		}
		if rec.Seq <= lastSeq {
			t.Fatalf("stream out of order: seq %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		got++
	}
	if got != 10 {
		t.Fatalf("stream delivered %d records, want 10", got)
	}

	// Bad cursor parameters are rejected.
	resp, err = http.Get(ts.URL + "/trace/stream?from=banana")
	wantStatus(t, resp, err, http.StatusBadRequest)
	resp, err = http.Get(ts.URL + "/trace/stream?max=-1")
	wantStatus(t, resp, err, http.StatusBadRequest)
}
