// The built-in load generator: concurrent clients firing app workloads at
// a firstaid-serve front-end over real TCP, with a configurable trigger
// mix. Throughput comes from the wall clock; latency percentiles come from
// the server's own telemetry histograms (fleet.latency_us), the numbers an
// operator would scrape from /metrics.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/replay"
	"firstaid/internal/telemetry"
)

// LoadConfig tunes the load generator.
type LoadConfig struct {
	// Clients is the number of concurrent clients (default 4). Each client
	// sends its own generated workload sequentially with a sticky source
	// id ("c0", "c1", …), so HashBySource dispatch preserves per-client
	// event order on one worker.
	Clients int
	// EventsPerClient sizes each client's workload (default 500).
	EventsPerClient int
	// Batch, when > 1, sends events in binary batches of that size via
	// POST /events/batch instead of one JSON request per event. The tail
	// of a workload that doesn't fill a batch is sent as a short batch.
	Batch int
	// TriggerClients is how many clients (the first k) carry bug triggers.
	TriggerClients int
	// Triggers are the bug-trigger offsets within a triggering client's
	// workload; client i's offsets are shifted by i*TriggerStagger.
	Triggers []int
	// TriggerStagger staggers the trigger mix across clients so the first
	// diagnosis lands (and propagates through the shared pool) before the
	// rest of the fleet reaches its own triggers.
	TriggerStagger int
}

// LoadReport is the load generator's result.
type LoadReport struct {
	Requests        int // events sent
	HTTPRequests    int // HTTP round-trips (Requests/Batch when batching)
	Responses       int // events acknowledged by a well-formed result
	Errors          int // TransportErrors + HTTPErrors
	TransportErrors int // connection/transport-level failures
	HTTPErrors      int // non-200 responses (and unparseable 200 bodies)
	Failed          int // results with Failed (faults at the server)
	Recovered       int // results with Recovered
	Skipped         int // results with Skipped
	Rerouted        int // results served off their primary worker
	Wall            time.Duration
	Throughput      float64       // events per second
	P50             time.Duration // from the server's fleet.latency_us histogram
	P99             time.Duration
	Snapshot        telemetry.Snapshot // the server's post-run /metrics view
}

func (r LoadReport) String() string {
	return fmt.Sprintf(
		"%d events in %.2fs (%.0f ev/s over %d HTTP requests), p50 %v p99 %v; failed %d, recovered %d, skipped %d, rerouted %d, errors %d (%d transport, %d http)",
		r.Requests, r.Wall.Seconds(), r.Throughput, r.HTTPRequests, r.P50, r.P99,
		r.Failed, r.Recovered, r.Skipped, r.Rerouted, r.Errors, r.TransportErrors, r.HTTPErrors)
}

// loadClient returns the shared HTTP client all load goroutines use: one
// transport with an idle pool sized to the client count, so every client
// keeps one TCP connection alive for its whole workload instead of
// thrashing sockets (and ephemeral ports) at high concurrency.
func loadClient(clients int) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        clients + 2, // workload conns + /metrics
			MaxIdleConnsPerHost: clients + 2,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// loadCounters aggregates client-side outcomes across goroutines.
type loadCounters struct {
	sent, httpReqs, responses            atomic.Int64
	transportErrs, httpErrs              atomic.Int64
	failed, recovered, skipped, rerouted atomic.Int64
}

// RunLoad drives cfg.Clients concurrent clients against the firstaid-serve
// front-end at baseURL (e.g. "http://127.0.0.1:8080"). newProg is called
// once per client to generate that client's workload.
func RunLoad(baseURL string, newProg func() app.App, cfg LoadConfig) (LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.EventsPerClient <= 0 {
		cfg.EventsPerClient = 500
	}
	client := loadClient(cfg.Clients)

	var ctr loadCounters
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		var triggers []int
		if c < cfg.TriggerClients {
			for _, t := range cfg.Triggers {
				triggers = append(triggers, t+c*cfg.TriggerStagger)
			}
		}
		prog := newProg()
		wl := prog.Workload(cfg.EventsPerClient, triggers)
		src := fmt.Sprintf("c%d", c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cfg.Batch > 1 {
				runBatchClient(client, baseURL, wl, src, cfg.Batch, &ctr)
				return
			}
			for {
				ev, ok := wl.Next()
				if !ok {
					return
				}
				ctr.sent.Add(1)
				ctr.httpReqs.Add(1)
				res, err := postEvent(client, baseURL, Request{
					Kind: ev.Kind, Data: ev.Data, N: ev.N, Src: src,
				})
				if err != nil {
					if err.transport {
						ctr.transportErrs.Add(1)
					} else {
						ctr.httpErrs.Add(1)
					}
					continue
				}
				ctr.responses.Add(1)
				if res.Failed {
					ctr.failed.Add(1)
				}
				if res.Recovered {
					ctr.recovered.Add(1)
				}
				if res.Skipped {
					ctr.skipped.Add(1)
				}
				if res.Rerouted {
					ctr.rerouted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)

	rep := LoadReport{
		Requests:        int(ctr.sent.Load()),
		HTTPRequests:    int(ctr.httpReqs.Load()),
		Responses:       int(ctr.responses.Load()),
		TransportErrors: int(ctr.transportErrs.Load()),
		HTTPErrors:      int(ctr.httpErrs.Load()),
		Failed:          int(ctr.failed.Load()),
		Recovered:       int(ctr.recovered.Load()),
		Skipped:         int(ctr.skipped.Load()),
		Rerouted:        int(ctr.rerouted.Load()),
		Wall:            wall,
	}
	rep.Errors = rep.TransportErrors + rep.HTTPErrors
	if wall > 0 {
		rep.Throughput = float64(rep.Requests) / wall.Seconds()
	}

	// Latency percentiles from the server's own histograms.
	snap, err := fetchMetrics(client, baseURL)
	if err != nil {
		return rep, fmt.Errorf("fetching /metrics: %w", err)
	}
	rep.Snapshot = snap
	if h, ok := snap.Histograms["fleet.latency_us"]; ok {
		rep.P50 = time.Duration(h.P50) * time.Microsecond
		rep.P99 = time.Duration(h.P99) * time.Microsecond
	}
	return rep, nil
}

// runBatchClient drains one client's workload in batches of size batch,
// reusing one encode buffer and request slice across the whole stream.
func runBatchClient(client *http.Client, baseURL string, wl *replay.Log, src string, batch int, ctr *loadCounters) {
	reqs := make([]Request, 0, batch)
	var buf []byte
	flush := func() {
		if len(reqs) == 0 {
			return
		}
		ctr.sent.Add(int64(len(reqs)))
		ctr.httpReqs.Add(1)
		buf = AppendRequests(buf[:0], reqs)
		res, err := postBatch(client, baseURL, buf)
		if err != nil {
			if err.transport {
				ctr.transportErrs.Add(1)
			} else {
				ctr.httpErrs.Add(1)
			}
			reqs = reqs[:0]
			return
		}
		ctr.responses.Add(int64(res.Events))
		ctr.failed.Add(int64(res.Failures))
		ctr.recovered.Add(int64(res.Recovered))
		ctr.skipped.Add(int64(res.Skipped))
		reqs = reqs[:0]
	}
	for {
		ev, ok := wl.Next()
		if !ok {
			flush()
			return
		}
		reqs = append(reqs, Request{Kind: ev.Kind, Data: ev.Data, N: ev.N, Src: src})
		if len(reqs) >= batch {
			flush()
		}
	}
}

// loadError tags a client-side failure with which layer it came from:
// transport (the request never produced an HTTP response) or HTTP (a
// response arrived but was not a usable 200).
type loadError struct {
	err       error
	transport bool
}

func (e *loadError) Error() string { return e.err.Error() }

func postEvent(client *http.Client, baseURL string, req Request) (Result, *loadError) {
	body, err := json.Marshal(req)
	if err != nil {
		return Result{}, &loadError{err: err}
	}
	resp, err := client.Post(baseURL+"/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return Result{}, &loadError{err: err, transport: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return Result{}, &loadError{err: fmt.Errorf("POST /events: %s: %s", resp.Status, msg)}
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return Result{}, &loadError{err: err}
	}
	return res, nil
}

func postBatch(client *http.Client, baseURL string, wire []byte) (BatchResult, *loadError) {
	resp, err := client.Post(baseURL+"/events/batch", "application/octet-stream", bytes.NewReader(wire))
	if err != nil {
		return BatchResult{}, &loadError{err: err, transport: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return BatchResult{}, &loadError{err: fmt.Errorf("POST /events/batch: %s: %s", resp.Status, msg)}
	}
	var res BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return BatchResult{}, &loadError{err: err}
	}
	return res, nil
}

func fetchMetrics(client *http.Client, baseURL string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}
