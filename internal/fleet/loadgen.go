// The built-in load generator: concurrent clients firing app workloads at
// a firstaid-serve front-end over real TCP, with a configurable trigger
// mix. Throughput comes from the wall clock; latency percentiles come from
// the server's own telemetry histograms (fleet.latency_us), the numbers an
// operator would scrape from /metrics.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"firstaid/internal/app"
	"firstaid/internal/telemetry"
)

// LoadConfig tunes the load generator.
type LoadConfig struct {
	// Clients is the number of concurrent clients (default 4). Each client
	// sends its own generated workload sequentially with a sticky source
	// id ("c0", "c1", …), so HashBySource dispatch preserves per-client
	// event order on one worker.
	Clients int
	// EventsPerClient sizes each client's workload (default 500).
	EventsPerClient int
	// TriggerClients is how many clients (the first k) carry bug triggers.
	TriggerClients int
	// Triggers are the bug-trigger offsets within a triggering client's
	// workload; client i's offsets are shifted by i*TriggerStagger.
	Triggers []int
	// TriggerStagger staggers the trigger mix across clients so the first
	// diagnosis lands (and propagates through the shared pool) before the
	// rest of the fleet reaches its own triggers.
	TriggerStagger int
}

// LoadReport is the load generator's result.
type LoadReport struct {
	Requests   int           // requests sent
	Responses  int           // well-formed results received
	Errors     int           // transport or non-200 failures
	Failed     int           // results with Failed (faults at the server)
	Recovered  int           // results with Recovered
	Skipped    int           // results with Skipped
	Rerouted   int           // results served off their primary worker
	Wall       time.Duration // total wall time
	Throughput float64       // requests per second
	P50        time.Duration // from the server's fleet.latency_us histogram
	P99        time.Duration
	Snapshot   telemetry.Snapshot // the server's post-run /metrics view
}

func (r LoadReport) String() string {
	return fmt.Sprintf(
		"%d requests in %.2fs (%.0f req/s), p50 %v p99 %v; failed %d, recovered %d, skipped %d, rerouted %d, errors %d",
		r.Requests, r.Wall.Seconds(), r.Throughput, r.P50, r.P99,
		r.Failed, r.Recovered, r.Skipped, r.Rerouted, r.Errors)
}

// RunLoad drives cfg.Clients concurrent clients against the firstaid-serve
// front-end at baseURL (e.g. "http://127.0.0.1:8080"). newProg is called
// once per client to generate that client's workload.
func RunLoad(baseURL string, newProg func() app.App, cfg LoadConfig) (LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.EventsPerClient <= 0 {
		cfg.EventsPerClient = 500
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients,
			MaxIdleConnsPerHost: cfg.Clients,
		},
	}

	var sent, responses, errs, failed, recovered, skipped, rerouted atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		var triggers []int
		if c < cfg.TriggerClients {
			for _, t := range cfg.Triggers {
				triggers = append(triggers, t+c*cfg.TriggerStagger)
			}
		}
		prog := newProg()
		wl := prog.Workload(cfg.EventsPerClient, triggers)
		src := fmt.Sprintf("c%d", c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ev, ok := wl.Next()
				if !ok {
					return
				}
				sent.Add(1)
				res, err := postEvent(client, baseURL, Request{
					Kind: ev.Kind, Data: ev.Data, N: ev.N, Src: src,
				})
				if err != nil {
					errs.Add(1)
					continue
				}
				responses.Add(1)
				if res.Failed {
					failed.Add(1)
				}
				if res.Recovered {
					recovered.Add(1)
				}
				if res.Skipped {
					skipped.Add(1)
				}
				if res.Rerouted {
					rerouted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)

	rep := LoadReport{
		Requests:  int(sent.Load()),
		Responses: int(responses.Load()),
		Errors:    int(errs.Load()),
		Failed:    int(failed.Load()),
		Recovered: int(recovered.Load()),
		Skipped:   int(skipped.Load()),
		Rerouted:  int(rerouted.Load()),
		Wall:      wall,
	}
	if wall > 0 {
		rep.Throughput = float64(rep.Requests) / wall.Seconds()
	}

	// Latency percentiles from the server's own histograms.
	snap, err := fetchMetrics(client, baseURL)
	if err != nil {
		return rep, fmt.Errorf("fetching /metrics: %w", err)
	}
	rep.Snapshot = snap
	if h, ok := snap.Histograms["fleet.latency_us"]; ok {
		rep.P50 = time.Duration(h.P50) * time.Microsecond
		rep.P99 = time.Duration(h.P99) * time.Microsecond
	}
	return rep, nil
}

func postEvent(client *http.Client, baseURL string, req Request) (Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Result{}, err
	}
	resp, err := client.Post(baseURL+"/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return Result{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return Result{}, fmt.Errorf("POST /events: %s: %s", resp.Status, msg)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return Result{}, err
	}
	return res, nil
}

func fetchMetrics(client *http.Client, baseURL string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}
