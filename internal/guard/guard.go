// Package guard implements sampled guard-page detection (the GWP-ASan
// direction on the roadmap): a configurable 1/N of allocation requests is
// redirected from the raw allocator to a dedicated vmem mapping whose
// neighboring pages are unmapped, so a buffer overflow or underflow on a
// sampled object traps at the faulting instruction instead of corrupting a
// neighbor silently. Freed sampled objects enter a bounded quarantine whose
// pages stay unmapped — a dangling access through a stale pointer traps the
// same way. The trap carries the sampled allocation's exact call-site, which
// lets diagnosis skip its phase-1 checkpoint search entirely.
//
// Design rules:
//
//   - Determinism. The 1/N coin is a countdown drawn from the machine's
//     seeded xorshift stream, and every sampling decision input (countdown,
//     per-site records, orientation sequence, live slots, quarantine ring)
//     lives in the checkpointed state: a diagnostic re-execution or a
//     validation clone replays the exact same guard layout, so recoveries
//     are byte-identical across sync/parallel/streaming supervision.
//   - Zero off-cost. A machine without sampling never constructs a Guard;
//     the allocator extension's hot path stays a nil check, the same
//     discipline as telemetry and trace.
//   - vmem does the heavy lifting. Space.Map rounds to pages, leaves one
//     unmapped page after every region, and never reuses addresses, so a
//     quarantined region's pages stay unmapped forever — even after its
//     ring metadata is evicted, a dangling access still traps (it merely
//     loses its site attribution and falls back to full diagnosis).
package guard

import (
	"sort"

	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
	"firstaid/internal/vmem"
)

// DefaultRate is the default sampling rate: one sampled allocation per
// ~4096 requests, GWP-ASan's production order of magnitude — cheap enough
// to leave on fleet-wide.
const DefaultRate = 4096

// DefaultMaxSize caps the size of sampled objects: a guarded slot costs
// whole pages, so huge requests (which the heap mmaps with its own trailing
// guard page anyway) stay on the raw path.
const DefaultMaxSize = 64 << 10

// DefaultQuarantine is the quarantine ring capacity in freed slots. The
// pages themselves stay unmapped beyond eviction; the ring only bounds how
// long the free-site attribution metadata is retained.
const DefaultQuarantine = 64

// decayAfter is the adaptive policy's cooldown: once a call-site has been
// coin-sampled this many times without a single guard hit, further coin
// selections of it are skipped (forced and boosted sites never decay).
const decayAfter = 64

// Config tunes a Guard.
type Config struct {
	// Rate is the sampling rate N: on average one of every N allocation
	// requests is guarded. 0 disables coin sampling (forced sites are
	// still guarded).
	Rate int
	// Force lists call-site substrings that are always sampled,
	// matched against the "/"-joined 3-level site key. The diagnosis
	// accuracy matrix uses this to pin a rate of 1/1 on injected sites.
	Force []string
	// MaxSize caps sampled object sizes (default DefaultMaxSize).
	MaxSize uint32
	// Quarantine is the quarantine ring capacity (default
	// DefaultQuarantine).
	Quarantine int
}

// Slot is one live guarded allocation.
type Slot struct {
	Start vmem.Addr // mapped region start (page aligned)
	Len   uint32    // mapped region length (page multiple)
	User  vmem.Addr // user pointer handed to the program
	Size  uint32    // requested size
	Left  bool      // left-guard orientation (object at region start)
	Site  callsite.ID
	Clock uint64 // process clock at allocation
}

// quarEntry is one freed guarded allocation whose pages remain unmapped.
type quarEntry struct {
	Start     vmem.Addr
	Len       uint32
	User      vmem.Addr
	Size      uint32
	AllocSite callsite.ID
	FreeSite  callsite.ID
	FreeClock uint64
}

// siteRec is the adaptive policy's per-call-site record.
type siteRec struct {
	Sampled uint64 // times this site was coin-sampled
	Hits    uint64 // guard hits attributed to this site
}

// state is everything a sampling decision depends on. It is captured and
// restored with the machine checkpoints so re-execution replays the same
// decisions.
type state struct {
	next   int64 // checkpointed countdown (working copy lives on Guard.next)
	seq    uint64
	slots  map[vmem.Addr]*Slot
	quar   []quarEntry
	sites  map[callsite.ID]*siteRec
	boosts map[callsite.ID]bool
}

func (st *state) clone() *state {
	cp := &state{
		next:  st.next,
		seq:   st.seq,
		slots: make(map[vmem.Addr]*Slot, len(st.slots)),
		sites: make(map[callsite.ID]*siteRec, len(st.sites)),
	}
	for k, v := range st.slots {
		s := *v
		cp.slots[k] = &s
	}
	if len(st.quar) > 0 {
		cp.quar = append([]quarEntry(nil), st.quar...)
	}
	for k, v := range st.sites {
		r := *v
		cp.sites[k] = &r
	}
	if len(st.boosts) > 0 {
		cp.boosts = make(map[callsite.ID]bool, len(st.boosts))
		for k := range st.boosts {
			cp.boosts[k] = true
		}
	}
	return cp
}

// Hit attributes a trapped access to a guarded object.
type Hit struct {
	// Bug is the manifested class: BufferOverflow for an access beyond a
	// live slot's bounds (either direction — the preventive change for
	// underflow is the same front padding), DanglingWrite/DanglingRead
	// for an access into a quarantined slot.
	Bug mmbug.Type
	// Site is the patch application point: the allocation site for
	// overflow, the free site for dangling accesses.
	Site callsite.ID
	// Clock is the process clock of the decisive operation (allocation
	// for overflow, free for dangling) — the diagnosis fast path picks
	// the newest checkpoint strictly older than this.
	Clock uint64
}

// Guard is the sampling tier of one machine. It is not safe for concurrent
// use; like the allocator extension it belongs to exactly one machine, and
// validation clones receive their own Guard via State/SetState.
type Guard struct {
	mem *vmem.Space
	cfg Config

	// rand and clock tap the owning process's seeded PRNG stream and
	// cycle clock (Bind); until bound, sampling is inert.
	rand  func() uint64
	clock func() uint64

	// siteKey renders a call-site for Force matching; forceMemo caches
	// the pure match result per interned ID (lifetime-only: the memo is
	// a function of the site table, not of execution state).
	siteKey   func(callsite.ID) string
	forceMemo map[callsite.ID]bool

	st *state

	// fast is true when Decide can run its inlined two-instruction path:
	// coin sampling only (bound PRNG, positive rate, no forced patterns, no
	// boosted sites) with a warm countdown. Recomputed by refast whenever an
	// input changes (Bind, Boost, SetState). next is the working copy of the
	// coin countdown (0 = not yet drawn): it lives directly on the Guard —
	// one cache line with fast, no st pointer chase — and is synced with the
	// checkpointed state in State/SetState.
	fast bool
	next int64

	// Pre-resolved telemetry instruments (nil discards) and tracer.
	cSampled *telemetry.Counter
	cHits    *telemetry.Counter
	cQuar    *telemetry.Counter
	cDecayed *telemetry.Counter
	cBoosts  *telemetry.Counter
	trc      trace.Emitter
}

// New creates a Guard over the machine's address space.
func New(mem *vmem.Space, cfg Config) *Guard {
	if cfg.MaxSize == 0 {
		cfg.MaxSize = DefaultMaxSize
	}
	if cfg.Quarantine <= 0 {
		cfg.Quarantine = DefaultQuarantine
	}
	return &Guard{
		mem: mem,
		cfg: cfg,
		st: &state{
			slots: map[vmem.Addr]*Slot{},
			sites: map[callsite.ID]*siteRec{},
		},
	}
}

// Bind connects the guard to the owning process's PRNG stream, cycle clock
// and call-site renderer.
func (g *Guard) Bind(rand func() uint64, clock func() uint64, siteKey func(callsite.ID) string) {
	g.rand = rand
	g.clock = clock
	g.siteKey = siteKey
	g.refast()
}

// refast recomputes the Decide fast-path eligibility flag.
func (g *Guard) refast() {
	g.fast = g.rand != nil && g.cfg.Rate > 0 &&
		len(g.cfg.Force) == 0 && len(g.st.boosts) == 0
}

// SetMetrics wires the guard to a telemetry registry (nil detaches).
func (g *Guard) SetMetrics(reg *telemetry.Registry) {
	g.cSampled = reg.Counter("guard.sampled")
	g.cHits = reg.Counter("guard.hits")
	g.cQuar = reg.Counter("guard.quarantined")
	g.cDecayed = reg.Counter("guard.decayed")
	g.cBoosts = reg.Counter("guard.boosts")
}

// SetTracer wires the guard to an execution-trace emitter (the zero
// Emitter detaches). Guard records land on their own per-worker track —
// core wires a GuardTrack emitter here.
func (g *Guard) SetTracer(em trace.Emitter) { g.trc = em }

// State returns a deep copy of the sampling-decision state for
// checkpointing.
func (g *Guard) State() interface{} {
	cp := g.st.clone()
	cp.next = g.next
	return cp
}

// SetState reinstates checkpointed state.
func (g *Guard) SetState(v interface{}) {
	g.st = v.(*state).clone()
	g.next = g.st.next
	g.refast()
}

func (g *Guard) forced(site callsite.ID) bool {
	if len(g.cfg.Force) == 0 || g.siteKey == nil {
		return false
	}
	if hit, ok := g.forceMemo[site]; ok {
		return hit
	}
	key := g.siteKey(site)
	hit := false
	for _, pat := range g.cfg.Force {
		if pat != "" && contains(key, pat) {
			hit = true
			break
		}
	}
	if g.forceMemo == nil {
		g.forceMemo = map[callsite.ID]bool{}
	}
	g.forceMemo[site] = hit
	return hit
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// redraw picks the next countdown uniformly in [1, 2N], for a geometric-ish
// inter-sample gap with mean ~N.
func (g *Guard) redraw() int64 {
	n := int64(g.cfg.Rate)
	if n <= 0 {
		return 1 << 62
	}
	return 1 + int64(g.rand()%uint64(2*n))
}

// Decide reports whether this allocation request should be guarded. It is
// the sampling hot path, inlined into the allocator extension: in the
// common configuration (coin sampling only, warm countdown) the cost is a
// flag check and a countdown decrement. Everything else — forced patterns,
// boosted sites, countdown expiry, the lazy first draw — takes the slow
// path. (In fast mode an oversized request still ticks the countdown; the
// request itself is never guarded either way, and the decision stream
// stays a pure function of the request stream.)
func (g *Guard) Decide(n uint32, site callsite.ID) bool {
	if g.fast && g.next > 1 {
		g.next--
		return false
	}
	return g.decideSlow(n, site)
}

func (g *Guard) decideSlow(n uint32, site callsite.ID) bool {
	if g.rand == nil || n > g.cfg.MaxSize {
		return false
	}
	if g.forced(site) {
		return true
	}
	if len(g.st.boosts) > 0 && g.st.boosts[site] {
		return true
	}
	if g.cfg.Rate <= 0 {
		return false
	}
	if g.next == 0 {
		g.next = g.redraw()
	}
	g.next--
	if g.next > 0 {
		return false
	}
	g.next = g.redraw()
	// Adaptive decay: a hot site that has been sampled many times and
	// never produced a hit stops consuming guarded slots.
	if rec := g.st.sites[site]; rec != nil && rec.Hits == 0 && rec.Sampled >= decayAfter {
		g.cDecayed.Inc()
		return false
	}
	return true
}

// Alloc maps a fresh guarded slot for an n-byte object with the given
// padding and returns it. Orientation alternates: forced sites always take
// the right guard (overflow is by far the dominant class for them — the
// matrix pins exact-site detection on it), coin samples take the left
// guard every 4th time so underflow is covered too.
//
// Right guard: the object ends at the last 8-aligned offset before the
// back padding, so the region's trailing unmapped page is at most 7 bytes
// past the object's end (the alignment slack GWP-ASan also accepts).
// Left guard: the object starts at the region start; the unmapped page
// *before* the region (Space.Map leaves a gap page between regions and
// never reuses addresses) catches underflow.
func (g *Guard) Alloc(n, padF, padB uint32, site callsite.ID) (Slot, error) {
	want := padF + n + padB
	if want == 0 {
		want = 1
	}
	start, err := g.mem.Map(want)
	if err != nil {
		return Slot{}, err
	}
	length := (want + vmem.PageSize - 1) &^ (vmem.PageSize - 1)
	right := g.forced(site) || g.st.seq%4 != 3
	g.st.seq++
	var user vmem.Addr
	if right {
		user = (start + vmem.Addr(length) - vmem.Addr(padB) - vmem.Addr(n)) &^ 7
	} else {
		user = start + vmem.Addr(padF)
	}
	sl := &Slot{
		Start: start,
		Len:   length,
		User:  user,
		Size:  n,
		Left:  !right,
		Site:  site,
		Clock: g.clock(),
	}
	g.st.slots[user] = sl
	rec := g.st.sites[site]
	if rec == nil {
		rec = &siteRec{}
		g.st.sites[site] = rec
	}
	rec.Sampled++
	g.cSampled.Inc()
	g.trc.Emit(trace.KGuardAlloc, uint64(site), uint64(n))
	return *sl, nil
}

// Lookup returns the live slot owning the given user pointer.
func (g *Guard) Lookup(user vmem.Addr) (Slot, bool) {
	sl, ok := g.st.slots[user]
	if !ok {
		return Slot{}, false
	}
	return *sl, true
}

// Release unmaps a live slot's pages and quarantines its metadata, so a
// dangling access through the stale pointer traps with the free site
// attached. Returns false when the pointer is not a live guarded object.
func (g *Guard) Release(user vmem.Addr, freeSite callsite.ID) bool {
	sl, ok := g.st.slots[user]
	if !ok {
		return false
	}
	delete(g.st.slots, user)
	if err := g.mem.Unmap(sl.Start); err != nil {
		// Cannot happen: Start came from Map and addresses are never
		// reused. Keep the slot dropped regardless.
		return true
	}
	g.st.quar = append(g.st.quar, quarEntry{
		Start:     sl.Start,
		Len:       sl.Len,
		User:      sl.User,
		Size:      sl.Size,
		AllocSite: sl.Site,
		FreeSite:  freeSite,
		FreeClock: g.clock(),
	})
	if n := len(g.st.quar) - g.cfg.Quarantine; n > 0 {
		// Evict oldest metadata; the pages stay unmapped forever.
		g.st.quar = append(g.st.quar[:0], g.st.quar[n:]...)
	}
	g.cQuar.Inc()
	g.trc.Emit(trace.KGuardFree, uint64(freeSite), uint64(sl.Size))
	return true
}

// Quarantined reports whether the pointer is a quarantined guarded object
// (its backing pages are unmapped; touching them traps).
func (g *Guard) Quarantined(user vmem.Addr) bool {
	_, ok := g.QuarFreeSite(user)
	return ok
}

// QuarFreeSite returns the recorded free site of a quarantined guarded
// object. The quarantine is the system of record for sampled frees — their
// addresses never recycle, so the allocator extension keeps them out of its
// freed ring and consults this instead for re-free attribution.
func (g *Guard) QuarFreeSite(user vmem.Addr) (callsite.ID, bool) {
	for i := range g.st.quar {
		if g.st.quar[i].User == user {
			return g.st.quar[i].FreeSite, true
		}
	}
	return 0, false
}

// Hit classifies a trapped access against the guarded slots. The scan is a
// full pass with a deterministic total order (smallest distance to the
// object, live slots over quarantined, lowest region start) so the result
// never depends on map iteration order — cross-mode replays must agree.
//
// A live slot claims faults within one page of its region (the unmapped
// neighbor pages): BufferOverflow, attributed to the allocation site. A
// quarantined slot claims faults inside its exact (unmapped) region:
// DanglingWrite/DanglingRead, attributed to the free site. Anything else —
// e.g. an overflow off a raw mmap spill — is not a guard hit and keeps the
// ordinary full-diagnosis path.
func (g *Guard) Hit(addr vmem.Addr, n int, write bool) (Hit, bool) {
	if n < 1 {
		n = 1
	}
	lo, hi := uint64(addr), uint64(addr)+uint64(n) // [lo, hi)
	const none = ^uint64(0)
	best := Hit{}
	bestDist := none
	bestLive := false
	bestStart := vmem.Addr(0)
	consider := func(h Hit, dist uint64, live bool, start vmem.Addr) {
		if dist < bestDist ||
			(dist == bestDist && live && !bestLive) ||
			(dist == bestDist && live == bestLive && (bestDist == none || start < bestStart)) {
			best, bestDist, bestLive, bestStart = h, dist, live, start
		}
	}
	distTo := func(user vmem.Addr, size uint32) uint64 {
		oLo, oHi := uint64(user), uint64(user)+uint64(size)
		if hi <= oLo {
			return oLo - hi + 1
		}
		if lo >= oHi {
			return lo - oHi + 1
		}
		return 0
	}
	for _, sl := range g.st.slots {
		rLo := uint64(sl.Start) - vmem.PageSize
		rHi := uint64(sl.Start) + uint64(sl.Len) + vmem.PageSize
		if hi <= rLo || lo >= rHi {
			continue
		}
		consider(Hit{Bug: mmbug.BufferOverflow, Site: sl.Site, Clock: sl.Clock},
			distTo(sl.User, sl.Size), true, sl.Start)
	}
	for i := range g.st.quar {
		q := &g.st.quar[i]
		rLo := uint64(q.Start)
		rHi := uint64(q.Start) + uint64(q.Len)
		if hi <= rLo || lo >= rHi {
			continue
		}
		bug := mmbug.DanglingRead
		if write {
			bug = mmbug.DanglingWrite
		}
		consider(Hit{Bug: bug, Site: q.FreeSite, Clock: q.FreeClock},
			distTo(q.User, q.Size), false, q.Start)
	}
	if bestDist == none {
		return Hit{}, false
	}
	g.cHits.Inc()
	g.trc.Emit(trace.KGuardHit, uint64(best.Bug), uint64(addr))
	return best, true
}

// Boost marks a call-site as always-sample (a guard hit or a completed
// diagnosis implicates it) and records the hit for the decay policy.
func (g *Guard) Boost(site callsite.ID) {
	if site == 0 {
		return
	}
	if g.st.boosts == nil {
		g.st.boosts = map[callsite.ID]bool{}
	}
	if !g.st.boosts[site] {
		g.st.boosts[site] = true
		g.fast = false // boosted sites must reach the slow path's site check
		g.cBoosts.Inc()
	}
	rec := g.st.sites[site]
	if rec == nil {
		rec = &siteRec{}
		g.st.sites[site] = rec
	}
	rec.Hits++
}

// Boosted reports whether the site is in the always-sample set.
func (g *Guard) Boosted(site callsite.ID) bool { return g.st.boosts[site] }

// Live returns the number of live guarded slots.
func (g *Guard) Live() int { return len(g.st.slots) }

// QuarantineLen returns the number of quarantined entries retained.
func (g *Guard) QuarantineLen() int { return len(g.st.quar) }

// LiveSlots returns the live slots sorted by region start (for tests and
// introspection).
func (g *Guard) LiveSlots() []Slot {
	out := make([]Slot, 0, len(g.st.slots))
	for _, sl := range g.st.slots {
		out = append(out, *sl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
