package guard

import (
	"testing"

	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
	"firstaid/internal/vmem"
)

// testRand is a tiny deterministic xorshift matching proc's discipline.
type testRand struct{ s uint64 }

func (r *testRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func newTestGuard(t *testing.T, cfg Config) (*Guard, *callsite.Table) {
	t.Helper()
	mem := vmem.New(0)
	tab := callsite.NewTable()
	g := New(mem, cfg)
	r := &testRand{s: 0x9E3779B97F4A7C15}
	var clock uint64
	g.Bind(r.next, func() uint64 { clock++; return clock },
		func(id callsite.ID) string { return tab.Key(id).String() })
	return g, tab
}

func site(tab *callsite.Table, leaf string) callsite.ID {
	return tab.Intern(callsite.Key{leaf, "caller", "main"})
}

func TestDecideDeterministic(t *testing.T) {
	run := func() []bool {
		g, tab := newTestGuard(t, Config{Rate: 8})
		s := site(tab, "alloc_a")
		out := make([]bool, 200)
		for i := range out {
			out[i] = g.Decide(64, s)
		}
		return out
	}
	a, b := run(), run()
	sampled := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical seeded runs", i)
		}
		if a[i] {
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatalf("rate 1/8 over 200 requests sampled nothing")
	}
}

func TestDecideForcedAndOversize(t *testing.T) {
	g, tab := newTestGuard(t, Config{Rate: 0, Force: []string{"hot_site"}})
	forced := site(tab, "hot_site_alloc")
	other := site(tab, "cold")
	if !g.Decide(64, forced) {
		t.Fatalf("forced site not sampled")
	}
	if g.Decide(64, other) {
		t.Fatalf("rate 0 sampled an unforced site")
	}
	if g.Decide(DefaultMaxSize+1, forced) {
		t.Fatalf("oversize request sampled")
	}
}

func TestAllocLayoutRightGuard(t *testing.T) {
	g, tab := newTestGuard(t, Config{Rate: 1, Force: []string{"alloc"}})
	s := site(tab, "alloc_buf")
	sl, err := g.Alloc(100, 16, 16, s)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if sl.Left {
		t.Fatalf("forced site should take the right guard")
	}
	if sl.Start%vmem.PageSize != 0 || sl.Len%vmem.PageSize != 0 {
		t.Fatalf("region not page aligned: start=%v len=%d", sl.Start, sl.Len)
	}
	end := uint64(sl.User) + uint64(sl.Size)
	regionEnd := uint64(sl.Start) + uint64(sl.Len)
	if end > regionEnd {
		t.Fatalf("object spills past region: end=%#x regionEnd=%#x", end, regionEnd)
	}
	if slack := regionEnd - end; slack > 7+16 { // padB(16) + alignment slack(<=7)
		t.Fatalf("right-guard slack too large: %d", slack)
	}
	if uint64(sl.User)%8 != 0 {
		t.Fatalf("user pointer not 8-aligned: %v", sl.User)
	}
	if sl.User < sl.Start {
		t.Fatalf("user pointer before region start")
	}
}

func TestAllocOrientationAlternates(t *testing.T) {
	g, tab := newTestGuard(t, Config{Rate: 1})
	s := site(tab, "churn")
	lefts := 0
	for i := 0; i < 16; i++ {
		sl, err := g.Alloc(64, 8, 8, s)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if sl.Left {
			lefts++
			if sl.User != sl.Start+8 {
				t.Fatalf("left-guard object not at region start+padF: user=%v start=%v", sl.User, sl.Start)
			}
		}
	}
	if lefts != 4 {
		t.Fatalf("expected every 4th coin slot left-guarded, got %d/16", lefts)
	}
}

func TestHitClassification(t *testing.T) {
	g, tab := newTestGuard(t, Config{Rate: 1, Quarantine: 4})
	sAlloc := site(tab, "alloc_site")
	sFree := site(tab, "free_site")

	live, err := g.Alloc(128, 0, 0, sAlloc)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	// Overflow past the live object's region into the trailing guard page.
	h, ok := g.Hit(live.Start+vmem.Addr(live.Len)+8, 8, true)
	if !ok {
		t.Fatalf("overflow into trailing guard page not classified")
	}
	if h.Bug != mmbug.BufferOverflow || h.Site != sAlloc {
		t.Fatalf("overflow misclassified: %v at %v", h.Bug, h.Site)
	}
	if h.Clock != live.Clock {
		t.Fatalf("overflow clock = %d, want alloc clock %d", h.Clock, live.Clock)
	}

	// Dangling: release, then touch the quarantined region.
	victim, err := g.Alloc(64, 0, 0, sAlloc)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if !g.Release(victim.User, sFree) {
		t.Fatalf("Release of live slot returned false")
	}
	if !g.Quarantined(victim.User) {
		t.Fatalf("released slot not quarantined")
	}
	h, ok = g.Hit(victim.User, 4, true)
	if !ok || h.Bug != mmbug.DanglingWrite || h.Site != sFree {
		t.Fatalf("dangling write misclassified: ok=%v %v at %v", ok, h.Bug, h.Site)
	}
	h, ok = g.Hit(victim.User, 4, false)
	if !ok || h.Bug != mmbug.DanglingRead {
		t.Fatalf("dangling read misclassified: ok=%v %v", ok, h.Bug)
	}

	// An address far from every slot is not a guard hit.
	if _, ok := g.Hit(0xDEAD0000, 1, true); ok {
		t.Fatalf("unrelated address classified as guard hit")
	}
}

func TestReleaseUnknownPointer(t *testing.T) {
	g, _ := newTestGuard(t, Config{Rate: 1})
	if g.Release(0x1234, 0) {
		t.Fatalf("Release of unknown pointer returned true")
	}
}

func TestQuarantineEviction(t *testing.T) {
	g, tab := newTestGuard(t, Config{Rate: 1, Quarantine: 2})
	s := site(tab, "churn")
	users := make([]vmem.Addr, 4)
	for i := range users {
		sl, err := g.Alloc(32, 0, 0, s)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		users[i] = sl.User
		g.Release(sl.User, s)
	}
	if g.QuarantineLen() != 2 {
		t.Fatalf("quarantine len = %d, want 2", g.QuarantineLen())
	}
	if g.Quarantined(users[0]) {
		t.Fatalf("oldest entry should be evicted from the ring")
	}
	if !g.Quarantined(users[3]) {
		t.Fatalf("newest entry missing from the ring")
	}
}

func TestStateRoundTrip(t *testing.T) {
	g, tab := newTestGuard(t, Config{Rate: 4})
	s := site(tab, "alloc")
	// Warm up: consume coin state, allocate, quarantine, boost.
	for i := 0; i < 10; i++ {
		g.Decide(64, s)
	}
	sl, err := g.Alloc(64, 0, 0, s)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	g.Release(sl.User, s)
	g.Boost(s)

	snap := g.State()
	// Mutate: new allocation, more coin flips.
	sl2, _ := g.Alloc(64, 0, 0, s)
	for i := 0; i < 50; i++ {
		g.Decide(64, s)
	}
	g.SetState(snap)

	if g.Live() != 0 {
		t.Fatalf("post-restore live = %d, want 0", g.Live())
	}
	if _, ok := g.Lookup(sl2.User); ok {
		t.Fatalf("post-checkpoint slot survived restore")
	}
	if !g.Quarantined(sl.User) {
		t.Fatalf("quarantine lost across restore")
	}
	if !g.Boosted(s) {
		t.Fatalf("boost lost across restore")
	}

	// The restored countdown must replay the same decisions.
	seqFrom := func() []bool {
		out := make([]bool, 40)
		for i := range out {
			out[i] = g.Decide(64, s)
		}
		return out
	}
	g.SetState(snap)
	a := seqFrom()
	g.SetState(snap)
	b := seqFrom()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged after identical restores", i)
		}
	}
}

func TestAdaptiveDecay(t *testing.T) {
	g, tab := newTestGuard(t, Config{Rate: 1})
	s := site(tab, "hot_clean")
	// Rate 1 samples every request; drive the site past the decay budget.
	sampled := 0
	for i := 0; i < decayAfter*3; i++ {
		if g.Decide(64, s) {
			sampled++
			if _, err := g.Alloc(64, 0, 0, s); err != nil {
				t.Fatalf("Alloc: %v", err)
			}
		}
	}
	if sampled > decayAfter {
		t.Fatalf("hot clean site kept sampling past decay: %d > %d", sampled, decayAfter)
	}
	// A boost re-enables sampling despite the decayed record.
	g.Boost(s)
	if !g.Decide(64, s) {
		t.Fatalf("boosted site not sampled after decay")
	}
}
