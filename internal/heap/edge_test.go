package heap

import (
	"errors"
	"testing"

	"firstaid/internal/vmem"
)

func TestMallocOOMPropagates(t *testing.T) {
	h := New(vmem.New(128 * 1024))
	var got []vmem.Addr
	for {
		p, err := h.Malloc(16 * 1024)
		if err != nil {
			if !errors.Is(err, vmem.ErrOutOfMemory) {
				t.Fatalf("unexpected error class: %v", err)
			}
			break
		}
		got = append(got, p)
		if len(got) > 64 {
			t.Fatal("allocator never ran out within the limit")
		}
	}
	if len(got) == 0 {
		t.Fatal("nothing allocated before OOM")
	}
	// The heap must remain usable: freeing returns space for new work.
	for _, p := range got {
		if err := h.Free(p); err != nil {
			t.Fatalf("free after OOM: %v", err)
		}
	}
	if _, err := h.Malloc(16 * 1024); err != nil {
		t.Fatalf("allocation after recovery from OOM: %v", err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListSurvivesHeavyFragmentation(t *testing.T) {
	h := New(vmem.New(32 << 20))
	// Allocate 2000 objects, free every other one (maximum fragmentation),
	// then allocate objects that fit exactly into the holes.
	var ptrs []vmem.Addr
	for i := 0; i < 2000; i++ {
		p, err := h.Malloc(48)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for i := 0; i < len(ptrs); i += 2 {
		if err := h.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	footBefore := h.Footprint()
	// 1000 holes of 48 bytes: the same-size requests must reuse them all
	// without growing the footprint.
	for i := 0; i < 1000; i++ {
		if _, err := h.Malloc(48); err != nil {
			t.Fatal(err)
		}
	}
	if h.Footprint() != footBefore {
		t.Fatalf("footprint grew from %d to %d despite perfect holes", footBefore, h.Footprint())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRemainderIsUsable(t *testing.T) {
	h := New(vmem.New(8 << 20))
	big, _ := h.Malloc(1000)
	guard, _ := h.Malloc(16)
	_ = guard
	h.Free(big)
	// Carve a small piece out of the 1000-byte hole; the remainder must
	// land in a bin and serve the next request.
	a, _ := h.Malloc(100)
	if a != big {
		t.Fatalf("small malloc did not reuse hole: %#x vs %#x", a, big)
	}
	b, err := h.Malloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if b < big || b > big+1100 {
		t.Fatalf("remainder not reused: %#x", b)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndTinyChunksNeverOverlapMetadata(t *testing.T) {
	h := New(vmem.New(8 << 20))
	var ptrs []vmem.Addr
	for i := 0; i < 100; i++ {
		p, err := h.Malloc(uint32(i % 9)) // 0..8 bytes
		if err != nil {
			t.Fatal(err)
		}
		// Fill the full usable size; metadata must be outside it.
		n, _ := h.UsableSize(p)
		h.Mem().Fill(p, 0xEE, int(n))
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatalf("free of tiny object: %v", err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUsableSizeErrors(t *testing.T) {
	h := New(vmem.New(1 << 20))
	p, _ := h.Malloc(64)
	h.Free(p)
	if _, err := h.UsableSize(p); err == nil {
		t.Fatal("usable size of freed object succeeded")
	}
	if _, err := h.UsableSize(0x10); err == nil {
		t.Fatal("usable size of wild pointer succeeded")
	}
}
