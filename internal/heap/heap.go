// Package heap implements a Lea-style (dlmalloc) memory allocator on top of
// a vmem.Space.
//
// The paper's allocator extension modifies "the Lea allocator, the default
// memory allocator used in the GNU C library" (§7.1). This package is the
// underlying allocator that the extension (package allocext) wraps. It is a
// genuine boundary-tag allocator: chunk headers, free-list links and
// footers live inside the simulated heap, so memory-management bugs corrupt
// real allocator state and manifest the way they do under glibc —
//
//   - a buffer overflow smashes the next chunk's boundary tag and the
//     allocator faults on a later malloc/free,
//   - a dangling read of a recycled chunk returns free-list link words,
//   - a double free finds the chunk's in-use bit already clear and faults,
//
// which is exactly the raw material First-Aid's environmental changes
// prevent or expose.
//
// # Chunk layout
//
//	chunk -> +-----------------------------+
//	         | prev_size (u32)             |  valid only if PINUSE clear
//	         | size (u32) | PINUSE|CINUSE  |
//	payload->+-----------------------------+
//	         | user data ...               |  free chunks: fd (u32), bk (u32)
//	         +-----------------------------+
//	         | footer: next.prev_size      |  free chunks only
//
// Sizes are multiples of 8; the minimum chunk is 16 bytes. Small requests
// are served from exact-size bins, larger ones from a size-sorted list, and
// the remainder from the "top" chunk that borders the program break and
// grows via Sbrk.
package heap

import (
	"errors"
	"fmt"
	"math/bits"

	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
	"firstaid/internal/vmem"
)

const (
	align     = 8
	headerLen = 8
	// MinChunk is the smallest chunk the allocator manages (header plus
	// room for the fd/bk free-list links).
	MinChunk = 16

	pinuse   = 1 // previous chunk is in use
	cinuse   = 2 // this chunk is in use
	flagMask = 7

	maxSmall     = 256 // largest request size served by exact bins
	numSmallBins = (maxSmall-MinChunk)/align + 1

	// topReserve is the minimum slack kept in the top chunk so that the
	// next small request does not immediately force another Sbrk.
	topReserve = 64
	// growUnit is the Sbrk granularity, mirroring dlmalloc's 64 KiB
	// DEFAULT_GRANULARITY.
	growUnit = 64 * 1024

	// DefaultMmapThreshold mirrors dlmalloc's DEFAULT_MMAP_THRESHOLD:
	// requests at or above it are served by dedicated page mappings
	// instead of the sbrk heap. Freeing one unmaps it, so use-after-free
	// of a large buffer faults immediately — the munmap failure mode.
	DefaultMmapThreshold = 256 * 1024
)

// Allocator faults. All of them indicate that the program (not the
// allocator) destroyed heap invariants; the simulated process surfaces them
// as crashes.
var (
	// ErrCorrupt reports an inconsistent boundary tag or free-list link.
	ErrCorrupt = errors.New("heap: corrupted heap metadata")
	// ErrBadFree reports a free of a pointer that is not an in-use
	// payload (wild free, or second free of the same object).
	ErrBadFree = errors.New("heap: invalid free")
)

// CorruptError carries the location that failed validation.
type CorruptError struct {
	Addr   vmem.Addr
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("heap: corrupted metadata at %#x: %s", e.Addr, e.Detail)
}

// Unwrap matches ErrCorrupt for errors.Is.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Chunk describes one chunk during a Walk.
type Chunk struct {
	Addr    vmem.Addr // chunk start (header address)
	Payload vmem.Addr // user data address
	Size    uint32    // whole chunk size including header
	InUse   bool
	Top     bool // the trailing top chunk
}

// UsableSize returns the payload capacity of the chunk.
func (c Chunk) UsableSize() uint32 { return c.Size - headerLen }

// State is the allocator's out-of-heap state: bin heads, the top chunk and
// statistics. Free-list links themselves live inside the heap, so a State
// copy plus a vmem snapshot captures the allocator completely — this is
// what the checkpoint manager saves and restores.
type State struct {
	Init      bool
	Start     vmem.Addr // first chunk address
	Top       vmem.Addr // top chunk address
	TopSize   uint32
	Small     [numSmallBins]vmem.Addr
	Large     vmem.Addr // size-sorted list of chunks > maxSmall
	Random    bool      // randomized placement (validation mode)
	Rng       uint64    // xorshift64* state for randomized placement
	NMalloc   uint64
	NFree     uint64
	LiveBytes uint64 // payload bytes currently allocated
	PeakBytes uint64 // high-water mark of LiveBytes

	// MmapThreshold selects the mmap path for large requests
	// (DefaultMmapThreshold unless overridden; 0 disables).
	MmapThreshold uint32
	// Mmapped tracks live mmap-path objects: payload address → usable
	// length. (The vmem mapping itself is part of the address-space
	// snapshot; this is the allocator's view.)
	Mmapped map[vmem.Addr]uint32
}

// clone deep-copies the state (the Mmapped map must not alias across
// checkpoints).
func (st State) clone() State {
	cp := st
	cp.Mmapped = make(map[vmem.Addr]uint32, len(st.Mmapped))
	for k, v := range st.Mmapped {
		cp.Mmapped[k] = v
	}
	return cp
}

// metrics holds the allocator's pre-resolved telemetry instruments. The
// zero value (all nil) is the disabled state: nil counters discard updates,
// so the hot path needs no enable checks.
type metrics struct {
	mallocs      *telemetry.Counter
	frees        *telemetry.Counter
	allocBytes   *telemetry.Counter
	freeBytes    *telemetry.Counter
	smallbinHits *telemetry.Counter
	largebinHits *telemetry.Counter
	topHits      *telemetry.Counter
	mmapHits     *telemetry.Counter
	sbrkGrows    *telemetry.Counter
}

// Heap is the allocator instance. It is not safe for concurrent use.
type Heap struct {
	mem *vmem.Space
	st  State
	met metrics
	trc trace.Emitter

	// noCoalesce disables free-chunk coalescing — a deliberate allocator
	// fault injected by tests to prove CheckInvariants has teeth. It is
	// not part of State: a broken allocator is a harness-level defect,
	// not program state to checkpoint. See SetNoCoalesce.
	noCoalesce bool
}

// SetMetrics wires the allocator to a telemetry registry (nil detaches).
// Instruments are resolved once here; per-operation cost is an atomic add.
func (h *Heap) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		h.met = metrics{}
		return
	}
	h.met = metrics{
		mallocs:      reg.Counter("heap.mallocs"),
		frees:        reg.Counter("heap.frees"),
		allocBytes:   reg.Counter("heap.alloc_bytes"),
		freeBytes:    reg.Counter("heap.free_bytes"),
		smallbinHits: reg.Counter("heap.smallbin_hits"),
		largebinHits: reg.Counter("heap.largebin_hits"),
		topHits:      reg.Counter("heap.top_hits"),
		mmapHits:     reg.Counter("heap.mmap_hits"),
		sbrkGrows:    reg.Counter("heap.sbrk_grows"),
	}
}

// SetTracer wires the allocator to an execution-trace emitter (the zero
// Emitter detaches). The allocator has no call-site knowledge — that lives
// at the proc/allocext layer — so it traces its own growth decisions: sbrk
// extensions of the top chunk and dedicated mappings for large requests.
func (h *Heap) SetTracer(em trace.Emitter) { h.trc = em }

// SizeClass is the power-of-two class of a request: bits.Len32(n), so
// class c holds 2^(c-1) <= n < 2^c (class 0 is n == 0).
func SizeClass(n uint32) uint64 { return uint64(bits.Len32(n)) }

// New creates an allocator that obtains memory from mem. No memory is
// claimed until the first Malloc.
func New(mem *vmem.Space) *Heap {
	return &Heap{mem: mem, st: State{
		MmapThreshold: DefaultMmapThreshold,
		Mmapped:       make(map[vmem.Addr]uint32),
	}}
}

// Mem returns the underlying address space.
func (h *Heap) Mem() *vmem.Space { return h.mem }

// State returns a deep copy of the allocator's out-of-heap state.
func (h *Heap) State() State { return h.st.clone() }

// SetState replaces the allocator state; used by rollback together with a
// vmem restore taken at the same instant.
func (h *Heap) SetState(st State) { h.st = st.clone() }

// SetMmapThreshold overrides the mmap-path threshold (0 disables it).
func (h *Heap) SetMmapThreshold(n uint32) { h.st.MmapThreshold = n }

// SetRandom switches randomized placement on or off and seeds the placement
// PRNG. First-Aid's validation engine re-executes the buggy region "with a
// randomized allocation algorithm" (§5) to separate a patch's desired
// effects from memory-layout accidents.
func (h *Heap) SetRandom(on bool, seed uint64) {
	h.st.Random = on
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	h.st.Rng = seed
}

func (h *Heap) rand() uint64 {
	x := h.st.Rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	h.st.Rng = x
	return x * 0x2545F4914F6CDD1D
}

// Footprint returns the bytes of address space claimed from vmem,
// including dedicated mappings for large objects.
func (h *Heap) Footprint() uint64 {
	if !h.st.Init {
		return h.mem.MmapBytes()
	}
	return uint64(h.mem.Brk()-h.st.Start) + h.mem.MmapBytes()
}

// LiveBytes returns the payload bytes currently allocated.
func (h *Heap) LiveBytes() uint64 { return h.st.LiveBytes }

// PeakBytes returns the high-water mark of allocated payload bytes.
func (h *Heap) PeakBytes() uint64 { return h.st.PeakBytes }

// Utilization returns LiveBytes as a fraction of Footprint — the
// fragmentation gauge watched by the churn regression tests (1.0 means every
// claimed byte backs a live payload; low values mean the arena is mostly
// holes). Returns 1 for an untouched heap.
func (h *Heap) Utilization() float64 {
	fp := h.Footprint()
	if fp == 0 {
		return 1
	}
	return float64(h.st.LiveBytes) / float64(fp)
}

// Counts returns the number of Malloc and Free calls served.
func (h *Heap) Counts() (mallocs, frees uint64) { return h.st.NMalloc, h.st.NFree }

// --- header helpers -------------------------------------------------------
//
// Every boundary-tag and free-list access below goes through
// vmem.ReadU32/WriteU32 at a 4-aligned address: chunks are 8-aligned and
// headerLen is 8, so headers, footers and the fd/bk link words all land on
// word boundaries. That keeps the allocator's entire metadata traffic on
// the vmem aligned-word fast path (micro-TLB hit: bounds check plus a
// direct 4-byte load/store) — the single hottest path in the simulator.

func (h *Heap) readHeader(c vmem.Addr) (size uint32, flags uint32, err error) {
	w, err := h.mem.ReadU32(c + 4)
	if err != nil {
		return 0, 0, &CorruptError{Addr: c, Detail: "header unreadable"}
	}
	return w &^ flagMask, w & flagMask, nil
}

func (h *Heap) writeHeader(c vmem.Addr, size, flags uint32) error {
	return h.mem.WriteU32(c+4, size|flags)
}

func (h *Heap) setFlag(c vmem.Addr, flag uint32, on bool) error {
	w, err := h.mem.ReadU32(c + 4)
	if err != nil {
		return err
	}
	if on {
		w |= flag
	} else {
		w &^= flag
	}
	return h.mem.WriteU32(c+4, w)
}

// validChunk checks that c could be a chunk boundary: aligned and within
// the heap segment.
func (h *Heap) validChunk(c vmem.Addr) bool {
	return c >= h.st.Start && c < h.mem.Brk() && c%align == 0
}

// checkedHeader reads and validates a header, producing ErrCorrupt on
// impossible values — the crash a real allocator suffers after its
// boundary tags are overwritten.
func (h *Heap) checkedHeader(c vmem.Addr) (size, flags uint32, err error) {
	if !h.validChunk(c) {
		return 0, 0, &CorruptError{Addr: c, Detail: "chunk pointer outside heap"}
	}
	size, flags, err = h.readHeader(c)
	if err != nil {
		return 0, 0, err
	}
	if size < MinChunk || size%align != 0 || uint64(c)+uint64(size) > uint64(h.mem.Brk()) {
		return 0, 0, &CorruptError{Addr: c, Detail: fmt.Sprintf("insane size %#x", size)}
	}
	return size, flags, nil
}

// --- free-list plumbing ----------------------------------------------------

func (h *Heap) fd(c vmem.Addr) (vmem.Addr, error) { return h.mem.ReadU32(c + headerLen) }
func (h *Heap) bk(c vmem.Addr) (vmem.Addr, error) { return h.mem.ReadU32(c + headerLen + 4) }

func (h *Heap) setFd(c, v vmem.Addr) error { return h.mem.WriteU32(c+headerLen, v) }
func (h *Heap) setBk(c, v vmem.Addr) error { return h.mem.WriteU32(c+headerLen+4, v) }

func smallBinIndex(size uint32) int {
	if size < MinChunk || size > maxSmall {
		return -1
	}
	return int((size - MinChunk) / align)
}

// binHead returns a pointer to the Go-side head slot for the list that
// holds free chunks of the given size.
func (h *Heap) binHead(size uint32) *vmem.Addr {
	if i := smallBinIndex(size); i >= 0 {
		return &h.st.Small[i]
	}
	return &h.st.Large
}

// insertFree links chunk c of the given size into its bin. Small bins are
// LIFO; the large list is kept sorted by size so the first fit is the best
// fit.
func (h *Heap) insertFree(c vmem.Addr, size uint32) error {
	head := h.binHead(size)
	if smallBinIndex(size) >= 0 {
		old := *head
		if err := h.setFd(c, old); err != nil {
			return err
		}
		if err := h.setBk(c, 0); err != nil {
			return err
		}
		if old != 0 {
			if err := h.setBk(old, c); err != nil {
				return err
			}
		}
		*head = c
		return nil
	}
	// Sorted insert into the large list.
	var prev vmem.Addr
	cur := *head
	for cur != 0 {
		csize, _, err := h.checkedHeader(cur)
		if err != nil {
			return err
		}
		if csize >= size {
			break
		}
		prev = cur
		var err2 error
		cur, err2 = h.fd(cur)
		if err2 != nil {
			return err2
		}
	}
	if err := h.setFd(c, cur); err != nil {
		return err
	}
	if err := h.setBk(c, prev); err != nil {
		return err
	}
	if cur != 0 {
		if err := h.setBk(cur, c); err != nil {
			return err
		}
	}
	if prev == 0 {
		*head = c
	} else if err := h.setFd(prev, c); err != nil {
		return err
	}
	return nil
}

// unlink removes free chunk c (of the given size) from its bin, validating
// the links it follows.
func (h *Heap) unlink(c vmem.Addr, size uint32) error {
	fd, err := h.fd(c)
	if err != nil {
		return err
	}
	bk, err := h.bk(c)
	if err != nil {
		return err
	}
	if fd != 0 && !h.validChunk(fd) {
		return &CorruptError{Addr: c, Detail: fmt.Sprintf("free-list fd %#x outside heap", fd)}
	}
	if bk != 0 && !h.validChunk(bk) {
		return &CorruptError{Addr: c, Detail: fmt.Sprintf("free-list bk %#x outside heap", bk)}
	}
	if bk == 0 {
		head := h.binHead(size)
		if *head != c {
			return &CorruptError{Addr: c, Detail: "free-list head mismatch"}
		}
		*head = fd
	} else if err := h.setFd(bk, fd); err != nil {
		return err
	}
	if fd != 0 {
		if err := h.setBk(fd, bk); err != nil {
			return err
		}
	}
	return nil
}

// --- initialization and growth ---------------------------------------------

func (h *Heap) initHeap() error {
	base, err := h.mem.Sbrk(growUnit)
	if err != nil {
		return err
	}
	h.st.Init = true
	h.st.Start = base
	h.st.Top = base
	h.st.TopSize = growUnit
	// Top header: free, previous "chunk" (heap edge) considered in use.
	return h.writeHeader(base, h.st.TopSize, pinuse)
}

func (h *Heap) growTop(need uint32) error {
	grow := uint32(growUnit)
	if need > grow {
		grow = (need + growUnit - 1) / growUnit * growUnit
	}
	if _, err := h.mem.Sbrk(grow); err != nil {
		return err
	}
	h.met.sbrkGrows.Inc()
	h.trc.Emit(trace.KSbrkGrow, uint64(grow), SizeClass(need))
	h.st.TopSize += grow
	_, flags, err := h.readHeader(h.st.Top)
	if err != nil {
		return err
	}
	return h.writeHeader(h.st.Top, h.st.TopSize, flags&pinuse)
}

// --- malloc -----------------------------------------------------------------

// chunkSize computes the chunk size for a payload request.
func chunkSize(n uint32) uint32 {
	sz := n + headerLen
	if sz < MinChunk {
		sz = MinChunk
	}
	return (sz + align - 1) &^ (align - 1)
}

// Malloc allocates n payload bytes and returns the payload address. The
// returned memory is NOT cleared: like a C allocator it may hand back
// recycled chunk contents, which is what makes uninitialised-read bugs
// possible in the simulation. Fresh pages from Sbrk arrive zeroed, as from
// the OS.
func (h *Heap) Malloc(n uint32) (vmem.Addr, error) {
	if !h.st.Init {
		if err := h.initHeap(); err != nil {
			return 0, err
		}
	}
	if h.st.MmapThreshold != 0 && n >= h.st.MmapThreshold {
		return h.mmapAlloc(n)
	}
	req := chunkSize(n)

	// Randomized placement: occasionally burn a small spacer chunk so
	// object addresses differ between validation iterations even when
	// every request is served from the top chunk.
	if h.st.Random && h.rand()%4 == 0 {
		spacer := uint32(MinChunk + align*(h.rand()%6))
		if c, err := h.carve(spacer); err == nil {
			// Leaked deliberately: validation iterations are
			// rolled back, so the waste is transient.
			_ = c
		}
	}

	c, err := h.carve(req)
	if err != nil {
		return 0, err
	}
	// Account the granted chunk size, not the request: an imperfect bin
	// fit (remainder < MinChunk) hands out a chunk up to MinChunk-1 bytes
	// larger than req, and Free debits the granted size — crediting req
	// here made LiveBytes drift low on every such recycle (found by the
	// chaos harness's accounting invariant; see CheckInvariants).
	granted, _, err := h.readHeader(c)
	if err != nil {
		return 0, err
	}
	h.st.NMalloc++
	h.met.mallocs.Inc()
	h.met.allocBytes.Add(uint64(granted - headerLen))
	h.st.LiveBytes += uint64(granted - headerLen)
	if h.st.LiveBytes > h.st.PeakBytes {
		h.st.PeakBytes = h.st.LiveBytes
	}
	return c + headerLen, nil
}

// mmapAlloc serves a large request from a dedicated page mapping.
func (h *Heap) mmapAlloc(n uint32) (vmem.Addr, error) {
	start, err := h.mem.Map(n)
	if err != nil {
		return 0, err
	}
	h.st.Mmapped[start] = n
	h.st.NMalloc++
	h.met.mallocs.Inc()
	h.met.mmapHits.Inc()
	h.trc.Emit(trace.KMmapAlloc, uint64(n), SizeClass(n))
	h.met.allocBytes.Add(uint64(n))
	h.st.LiveBytes += uint64(n)
	if h.st.LiveBytes > h.st.PeakBytes {
		h.st.PeakBytes = h.st.LiveBytes
	}
	return start, nil
}

// carve obtains an in-use chunk of exactly size req and returns its chunk
// address.
func (h *Heap) carve(req uint32) (vmem.Addr, error) {
	// 1. Exact small bin, then successively larger small bins.
	if i := smallBinIndex(req); i >= 0 {
		for j := i; j < numSmallBins; j++ {
			if h.st.Small[j] != 0 {
				c, err := h.takeFromBin(&h.st.Small[j], req)
				if err != nil {
					return 0, err
				}
				if c != 0 {
					h.met.smallbinHits.Inc()
					return c, nil
				}
			}
		}
	}
	// 2. Large list (sorted): first chunk big enough is best fit.
	if h.st.Large != 0 {
		c, err := h.takeFromLarge(req)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			h.met.largebinHits.Inc()
			return c, nil
		}
	}
	// 3. Top chunk.
	h.met.topHits.Inc()
	return h.takeFromTop(req)
}

// takeFromBin pops a chunk from a small bin (head, or a random element in
// randomized mode), splits it to size req, and marks it in use. Returns 0
// if the bin turned out unusable (shouldn't happen with intact metadata).
func (h *Heap) takeFromBin(head *vmem.Addr, req uint32) (vmem.Addr, error) {
	c := *head
	if h.st.Random {
		// Walk a random number of steps along the list.
		steps := int(h.rand() % 4)
		for steps > 0 {
			fd, err := h.fd(c)
			if err != nil {
				return 0, err
			}
			if fd == 0 {
				break
			}
			c = fd
			steps--
		}
	}
	size, _, err := h.checkedHeader(c)
	if err != nil {
		return 0, err
	}
	if size < req {
		return 0, &CorruptError{Addr: c, Detail: "binned chunk smaller than its bin"}
	}
	if err := h.unlink(c, size); err != nil {
		return 0, err
	}
	return c, h.finishAlloc(c, size, req)
}

func (h *Heap) takeFromLarge(req uint32) (vmem.Addr, error) {
	c := h.st.Large
	for c != 0 {
		size, _, err := h.checkedHeader(c)
		if err != nil {
			return 0, err
		}
		if size >= req {
			if err := h.unlink(c, size); err != nil {
				return 0, err
			}
			return c, h.finishAlloc(c, size, req)
		}
		c, err = h.fd(c)
		if err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func (h *Heap) takeFromTop(req uint32) (vmem.Addr, error) {
	if h.st.TopSize < req+topReserve {
		if err := h.growTop(req + topReserve); err != nil {
			return 0, err
		}
	}
	c := h.st.Top
	_, flags, err := h.readHeader(c)
	if err != nil {
		return 0, err
	}
	h.st.Top = c + req
	h.st.TopSize -= req
	if err := h.writeHeader(c, req, flags&pinuse|cinuse); err != nil {
		return 0, err
	}
	// New top header: previous (the chunk just carved) is in use.
	return c, h.writeHeader(h.st.Top, h.st.TopSize, pinuse)
}

// finishAlloc splits chunk c (currently free, unlinked, of the given size)
// down to req bytes and marks it in use.
func (h *Heap) finishAlloc(c vmem.Addr, size, req uint32) error {
	_, flags, err := h.readHeader(c)
	if err != nil {
		return err
	}
	if size-req >= MinChunk {
		rem := c + req
		remSize := size - req
		if err := h.writeHeader(c, req, flags&pinuse|cinuse); err != nil {
			return err
		}
		// Remainder is free, previous (c) in use.
		if err := h.writeHeader(rem, remSize, pinuse); err != nil {
			return err
		}
		if err := h.setFooter(rem, remSize); err != nil {
			return err
		}
		return h.insertFree(rem, remSize)
	}
	if err := h.writeHeader(c, size, flags&pinuse|cinuse); err != nil {
		return err
	}
	// Whole chunk used: successor's PINUSE must be set.
	return h.setSuccPinuse(c, size, true)
}

// setFooter stores the free chunk's size into the next chunk's prev_size
// slot so backward coalescing can find the chunk start.
func (h *Heap) setFooter(c vmem.Addr, size uint32) error {
	next := c + size
	if next >= h.mem.Brk() {
		return nil // borders the break; no successor header
	}
	return h.mem.WriteU32(next, size)
}

func (h *Heap) setSuccPinuse(c vmem.Addr, size uint32, on bool) error {
	next := c + size
	if next >= h.mem.Brk() {
		return nil
	}
	return h.setFlag(next, pinuse, on)
}

// --- free -------------------------------------------------------------------

// Free releases the payload at p, coalescing with free neighbours. Freeing
// a pointer that is not an in-use payload — including the second free of an
// object — fails with ErrBadFree or ErrCorrupt, the simulated equivalent of
// glibc aborting on free-list corruption.
func (h *Heap) Free(p vmem.Addr) error {
	if !h.st.Init {
		return ErrBadFree
	}
	if n, ok := h.st.Mmapped[p]; ok {
		if err := h.mem.Unmap(p); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFree, err)
		}
		delete(h.st.Mmapped, p)
		h.st.NFree++
		h.met.frees.Inc()
		h.met.freeBytes.Add(uint64(n))
		if uint64(n) <= h.st.LiveBytes {
			h.st.LiveBytes -= uint64(n)
		} else {
			h.st.LiveBytes = 0
		}
		return nil
	}
	c := p - headerLen
	if !h.validChunk(c) {
		return fmt.Errorf("%w: pointer %#x outside heap", ErrBadFree, p)
	}
	size, flags, err := h.checkedHeader(c)
	if err != nil {
		return err
	}
	if flags&cinuse == 0 {
		return fmt.Errorf("%w: chunk %#x already free (double free?)", ErrBadFree, c)
	}
	if c == h.st.Top || c+size > h.mem.Brk() {
		return fmt.Errorf("%w: pointer %#x overlaps top", ErrBadFree, p)
	}
	h.st.NFree++
	h.met.frees.Inc()
	h.met.freeBytes.Add(uint64(size - headerLen))
	if payload := uint64(size - headerLen); payload <= h.st.LiveBytes {
		h.st.LiveBytes -= payload
	} else {
		h.st.LiveBytes = 0
	}

	start, total := c, size

	// Backward coalesce.
	if flags&pinuse == 0 && !h.noCoalesce {
		prevSize, err := h.mem.ReadU32(c)
		if err != nil {
			return &CorruptError{Addr: c, Detail: "prev_size unreadable"}
		}
		prev := c - prevSize
		psize, pflags, err := h.checkedHeader(prev)
		if err != nil {
			return err
		}
		if psize != prevSize || pflags&cinuse != 0 {
			return &CorruptError{Addr: prev, Detail: "backward coalesce mismatch"}
		}
		if err := h.unlink(prev, psize); err != nil {
			return err
		}
		start = prev
		total += psize
	}

	// Forward coalesce (with a free successor or the top chunk).
	next := c + size
	if !h.noCoalesce {
		if next == h.st.Top {
			_, sflags, err := h.readHeader(start)
			if err != nil {
				return err
			}
			h.st.Top = start
			h.st.TopSize += total
			return h.writeHeader(start, h.st.TopSize, sflags&pinuse)
		}
		nsize, nflags, err := h.checkedHeader(next)
		if err != nil {
			return err
		}
		if nflags&cinuse == 0 {
			if err := h.unlink(next, nsize); err != nil {
				return err
			}
			total += nsize
			if start+total == h.st.Top {
				// Merged through to the top chunk's predecessor; if the
				// merged region now borders top, fold into top.
				_, sflags, err := h.readHeader(start)
				if err != nil {
					return err
				}
				h.st.Top = start
				h.st.TopSize += total
				return h.writeHeader(start, h.st.TopSize, sflags&pinuse)
			}
		}
	}

	_, sflags, err := h.readHeader(start)
	if err != nil {
		return err
	}
	if err := h.writeHeader(start, total, sflags&pinuse); err != nil {
		return err
	}
	if err := h.setFooter(start, total); err != nil {
		return err
	}
	if err := h.setSuccPinuse(start, total, false); err != nil {
		return err
	}
	return h.insertFree(start, total)
}

// UsableSize returns the payload capacity of the in-use object at p.
func (h *Heap) UsableSize(p vmem.Addr) (uint32, error) {
	if n, ok := h.st.Mmapped[p]; ok {
		return n, nil
	}
	c := p - headerLen
	size, flags, err := h.checkedHeader(c)
	if err != nil {
		return 0, err
	}
	if flags&cinuse == 0 {
		return 0, fmt.Errorf("%w: %#x not in use", ErrBadFree, p)
	}
	return size - headerLen, nil
}

// InUse reports whether p is currently the payload address of an in-use
// chunk. Unlike UsableSize it never returns an error; wild pointers simply
// report false. The allocator extension's double-free parameter check uses
// this.
func (h *Heap) InUse(p vmem.Addr) bool {
	if !h.st.Init {
		return false
	}
	if _, ok := h.st.Mmapped[p]; ok {
		return true
	}
	if p < h.st.Start+headerLen {
		return false
	}
	c := p - headerLen
	if !h.validChunk(c) || c == h.st.Top {
		return false
	}
	size, flags, err := h.readHeader(c)
	if err != nil {
		return false
	}
	if size < MinChunk || size%align != 0 || uint64(c)+uint64(size) > uint64(h.mem.Brk()) {
		return false
	}
	return flags&cinuse != 0
}

// --- introspection ----------------------------------------------------------

// Walk visits every chunk from the heap start through the top chunk in
// address order. It stops early if fn returns false, and returns ErrCorrupt
// if the chunk chain is inconsistent — Walk doubles as an integrity check.
func (h *Heap) Walk(fn func(Chunk) bool) error {
	if !h.st.Init {
		return nil
	}
	c := h.st.Start
	for c != h.st.Top {
		size, flags, err := h.checkedHeader(c)
		if err != nil {
			return err
		}
		if c+size > h.st.Top {
			return &CorruptError{Addr: c, Detail: "chunk overlaps top"}
		}
		if !fn(Chunk{Addr: c, Payload: c + headerLen, Size: size, InUse: flags&cinuse != 0}) {
			return nil
		}
		c += size
	}
	fn(Chunk{Addr: h.st.Top, Payload: h.st.Top + headerLen, Size: h.st.TopSize, InUse: false, Top: true})
	return nil
}

// FreeChunks returns every free chunk including the top chunk, for the
// Phase-1 heap-marking pass.
func (h *Heap) FreeChunks() ([]Chunk, error) {
	var out []Chunk
	err := h.Walk(func(c Chunk) bool {
		if !c.InUse {
			out = append(out, c)
		}
		return true
	})
	return out, err
}

// CheckIntegrity walks the whole heap validating boundary tags, pairwise
// PINUSE consistency and the no-adjacent-free-chunks coalescing invariant.
// It returns nil when the heap is sound.
func (h *Heap) CheckIntegrity() error {
	lastInUse := true // heap edge counts as in use
	first := true
	var bad error
	err := h.Walk(func(c Chunk) bool {
		if !first {
			_, flags, err := h.readHeader(c.Addr)
			if err != nil {
				bad = err
				return false
			}
			if (flags&pinuse != 0) != lastInUse {
				bad = &CorruptError{Addr: c.Addr, Detail: "PINUSE disagrees with predecessor"}
				return false
			}
			if !lastInUse && !c.InUse {
				bad = &CorruptError{Addr: c.Addr, Detail: "adjacent free chunks (missed coalesce)"}
				return false
			}
		}
		first = false
		lastInUse = c.InUse
		return true
	})
	if err != nil {
		return err
	}
	return bad
}
