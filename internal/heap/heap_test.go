package heap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"firstaid/internal/vmem"
)

func newHeap(t testing.TB) *Heap {
	t.Helper()
	return New(vmem.New(64 << 20))
}

func TestMallocBasics(t *testing.T) {
	h := newHeap(t)
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if p%align != 0 {
		t.Fatalf("payload %#x not aligned", p)
	}
	n, err := h.UsableSize(p)
	if err != nil || n < 100 {
		t.Fatalf("UsableSize = %d, %v", n, err)
	}
	// Payload is writable end to end.
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := h.Mem().Write(p, buf); err != nil {
		t.Fatalf("write payload: %v", err)
	}
}

func TestMallocZero(t *testing.T) {
	h := newHeap(t)
	p, err := h.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := h.UsableSize(p); n < 8 {
		t.Fatalf("zero-byte malloc usable size %d", n)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctObjectsDoNotOverlap(t *testing.T) {
	h := newHeap(t)
	type obj struct {
		p vmem.Addr
		n uint32
	}
	var objs []obj
	for i := 0; i < 100; i++ {
		n := uint32(1 + i*13%500)
		p, err := h.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj{p, n})
	}
	for i, a := range objs {
		for j, b := range objs {
			if i == j {
				continue
			}
			if a.p < b.p+b.n && b.p < a.p+a.n {
				t.Fatalf("objects %d and %d overlap: [%#x,%d) vs [%#x,%d)", i, j, a.p, a.n, b.p, b.n)
			}
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := newHeap(t)
	p1, _ := h.Malloc(64)
	h.Mem().Fill(p1, 0x5A, 64)
	if err := h.Free(p1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// Same-size malloc should recycle the freed chunk (exact small bin).
	p2, _ := h.Malloc(64)
	if p2 != p1 {
		t.Fatalf("expected recycling: p1=%#x p2=%#x", p1, p2)
	}
	// Recycled memory is NOT zeroed — the uninitialised-read substrate.
	b, _ := h.Mem().Read(p2, 1)
	if b[0] == 0 {
		t.Log("first byte zero (free-list link); checking tail bytes")
		tail, _ := h.Mem().Read(p2+16, 8)
		allZero := true
		for _, x := range tail {
			if x != 0 {
				allZero = false
			}
		}
		if allZero {
			t.Fatal("recycled chunk appears zeroed; uninit-read bugs could never manifest")
		}
	}
}

func TestDoubleFreeFaults(t *testing.T) {
	h := newHeap(t)
	p, _ := h.Malloc(32)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	err := h.Free(p)
	if err == nil {
		t.Fatal("double free succeeded")
	}
	if !errors.Is(err, ErrBadFree) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("double free error = %v", err)
	}
}

func TestWildFreeFaults(t *testing.T) {
	h := newHeap(t)
	p, _ := h.Malloc(32)
	cases := []vmem.Addr{0, p + 4, p + 1, 0xFFFF_0000}
	for _, bad := range cases {
		if err := h.Free(bad); err == nil {
			t.Fatalf("free(%#x) succeeded", bad)
		}
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("legitimate free failed after wild attempts: %v", err)
	}
}

func TestOverflowCorruptsNeighborAndFaults(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Malloc(24)
	b, _ := h.Malloc(24)
	_ = b
	n, _ := h.UsableSize(a)
	// Overflow: write 16 bytes past the end of a, smashing b's boundary tag.
	junk := make([]byte, int(n)+16)
	for i := range junk {
		junk[i] = 0xFF
	}
	if err := h.Mem().Write(a, junk); err != nil {
		t.Fatalf("the overflow itself must succeed (it stays in mapped memory): %v", err)
	}
	// The allocator must now detect corruption on operations touching b.
	if err := h.Free(b); err == nil {
		t.Fatal("free of smashed chunk succeeded")
	} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadFree) {
		t.Fatalf("error = %v", err)
	}
}

func TestCoalesceForwardBackward(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Malloc(40)
	bptr, _ := h.Malloc(40)
	c, _ := h.Malloc(40)
	d, _ := h.Malloc(40) // guard against top coalesce
	_ = d
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(c); err != nil {
		t.Fatal(err)
	}
	// Freeing b must merge a+b+c into one free chunk.
	if err := h.Free(bptr); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after coalesce: %v", err)
	}
	free, err := h.FreeChunks()
	if err != nil {
		t.Fatal(err)
	}
	// Expect exactly two free chunks: the merged block and top.
	if len(free) != 2 {
		t.Fatalf("free chunks = %d, want 2 (merged + top)", len(free))
	}
	merged := free[0]
	if merged.Payload != a {
		t.Fatalf("merged chunk starts at %#x, want %#x", merged.Payload, a)
	}
	if merged.Size < 3*48 {
		t.Fatalf("merged size %d too small", merged.Size)
	}
	// The merged block is reusable for a large request.
	big, err := h.Malloc(120)
	if err != nil {
		t.Fatal(err)
	}
	if big != a {
		t.Fatalf("large malloc did not reuse merged block: %#x vs %#x", big, a)
	}
}

func TestFreeAdjacentToTopMergesIntoTop(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Malloc(100)
	st0 := h.State()
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	st := h.State()
	if st.Top >= st0.Top {
		t.Fatalf("top did not move back: %#x -> %#x", st0.Top, st.Top)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeAllocationViaTopGrowth(t *testing.T) {
	h := newHeap(t)
	h.SetMmapThreshold(0) // force the sbrk path
	p, err := h.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Fill(p, 0x11, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	// Freed large block should be reusable.
	q, err := h.Malloc(1 << 19)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("large free block not reused: %#x vs %#x", q, p)
	}
}

func TestLargeBinSortedBestFit(t *testing.T) {
	h := newHeap(t)
	// Create three free large chunks of different sizes, separated by
	// live guards so they cannot coalesce.
	var ptrs []vmem.Addr
	sizes := []uint32{2000, 600, 1200}
	for _, n := range sizes {
		p, _ := h.Malloc(n)
		ptrs = append(ptrs, p)
		h.Malloc(16) // guard
	}
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// Request 500: the 600-byte chunk is the best fit.
	got, err := h.Malloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if got != ptrs[1] {
		t.Fatalf("best fit picked %#x, want %#x (600-byte chunk)", got, ptrs[1])
	}
}

func TestStateSnapshotRestore(t *testing.T) {
	mem := vmem.New(64 << 20)
	h := New(mem)
	a, _ := h.Malloc(64)
	h.Mem().Fill(a, 0x77, 64)

	snap := mem.Snapshot()
	st := h.State()

	b, _ := h.Malloc(128)
	h.Free(a)
	_ = b

	mem.Restore(snap)
	h.SetState(st)
	snap.Release()

	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after rollback: %v", err)
	}
	if !h.InUse(a) {
		t.Fatal("a not live after rollback")
	}
	buf, _ := h.Mem().Read(a, 64)
	for _, x := range buf {
		if x != 0x77 {
			t.Fatal("contents lost after rollback")
		}
	}
	// Allocation continues normally after rollback.
	if _, err := h.Malloc(32); err != nil {
		t.Fatal(err)
	}
}

func TestInUse(t *testing.T) {
	h := newHeap(t)
	p, _ := h.Malloc(32)
	if !h.InUse(p) {
		t.Fatal("live object reported free")
	}
	h.Free(p)
	if h.InUse(p) {
		t.Fatal("freed object reported live")
	}
	if h.InUse(0) || h.InUse(p+4) || h.InUse(0xFF00_0000) {
		t.Fatal("wild pointer reported live")
	}
}

func TestStats(t *testing.T) {
	h := newHeap(t)
	p1, _ := h.Malloc(100)
	p2, _ := h.Malloc(200)
	if h.LiveBytes() < 300 {
		t.Fatalf("LiveBytes = %d", h.LiveBytes())
	}
	peak := h.PeakBytes()
	h.Free(p1)
	h.Free(p2)
	if h.LiveBytes() != 0 {
		t.Fatalf("LiveBytes after frees = %d", h.LiveBytes())
	}
	if h.PeakBytes() != peak {
		t.Fatal("peak changed on free")
	}
	m, f := h.Counts()
	if m != 2 || f != 2 {
		t.Fatalf("counts = %d/%d", m, f)
	}
	if h.Footprint() == 0 {
		t.Fatal("no footprint after allocations")
	}
}

func TestWalkCoversWholeHeap(t *testing.T) {
	h := newHeap(t)
	for i := 0; i < 20; i++ {
		h.Malloc(uint32(16 + i*24))
	}
	var end vmem.Addr
	var sawTop bool
	prevEnd := h.State().Start
	err := h.Walk(func(c Chunk) bool {
		if c.Addr != prevEnd {
			t.Fatalf("gap in chunk chain at %#x (expected %#x)", c.Addr, prevEnd)
		}
		prevEnd = c.Addr + c.Size
		end = prevEnd
		sawTop = sawTop || c.Top
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawTop {
		t.Fatal("walk did not reach top")
	}
	if end != h.Mem().Brk() {
		t.Fatalf("walk ended at %#x, brk %#x", end, h.Mem().Brk())
	}
}

func TestRandomizedModeVariesLayout(t *testing.T) {
	layout := func(seed uint64) []vmem.Addr {
		h := newHeap(t)
		h.SetRandom(seed != 0, seed)
		var ptrs []vmem.Addr
		for i := 0; i < 30; i++ {
			p, err := h.Malloc(uint32(24 + (i%5)*8))
			if err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
			if i%3 == 2 {
				h.Free(ptrs[i-1])
			}
		}
		return ptrs
	}
	a := layout(1)
	b := layout(2)
	c := layout(0) // deterministic
	d := layout(0)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("randomized layouts identical across seeds")
	}
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("deterministic mode not deterministic")
		}
	}
}

func TestRandomizedModeStillSound(t *testing.T) {
	h := newHeap(t)
	h.SetRandom(true, 42)
	var live []vmem.Addr
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			k := rng.Intn(len(live))
			if err := h.Free(live[k]); err != nil {
				t.Fatalf("op %d free: %v", i, err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			p, err := h.Malloc(uint32(rng.Intn(700) + 1))
			if err != nil {
				t.Fatalf("op %d malloc: %v", i, err)
			}
			live = append(live, p)
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// Property: under arbitrary malloc/free/write sequences the heap never hands
// out overlapping objects, survives an integrity check, and object contents
// are preserved until freed.
func TestQuickAllocatorSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(vmem.New(64 << 20))
		type obj struct {
			p    vmem.Addr
			n    uint32
			fill byte
		}
		var live []obj
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				o := live[k]
				// Verify contents survived.
				buf, err := h.Mem().Read(o.p, int(o.n))
				if err != nil {
					return false
				}
				for _, x := range buf {
					if x != o.fill {
						return false
					}
				}
				if err := h.Free(o.p); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				n := uint32(rng.Intn(1000) + 1)
				p, err := h.Malloc(n)
				if err != nil {
					return false
				}
				fill := byte(rng.Intn(255) + 1)
				if err := h.Mem().Fill(p, fill, int(n)); err != nil {
					return false
				}
				// No overlap with any live object.
				for _, o := range live {
					if p < o.p+o.n && o.p < p+n {
						return false
					}
				}
				live = append(live, obj{p, n, fill})
			}
		}
		return h.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMallocFree(b *testing.B) {
	h := New(vmem.New(256 << 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := h.Malloc(uint32(16 + i%256))
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocChurn(b *testing.B) {
	h := New(vmem.New(256 << 20))
	var ring [64]vmem.Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(ring)
		if ring[slot] != 0 {
			if err := h.Free(ring[slot]); err != nil {
				b.Fatal(err)
			}
		}
		p, err := h.Malloc(uint32(16 + (i*37)%512))
		if err != nil {
			b.Fatal(err)
		}
		ring[slot] = p
	}
}
