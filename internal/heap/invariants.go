package heap

import (
	"fmt"

	"firstaid/internal/vmem"
)

// SetNoCoalesce disables free-chunk coalescing — a deliberate allocator
// fault. The chaos harness flips it to prove the differential oracle has
// teeth: a heap growing adjacent free chunks must fail CheckInvariants.
// Never enable it outside tests.
func (h *Heap) SetNoCoalesce(on bool) { h.noCoalesce = on }

// CheckInvariants is the strong allocator consistency walker the chaos
// oracle runs after every recovery. It subsumes CheckIntegrity (boundary
// tags, PINUSE pairing, the no-adjacent-free invariant) and additionally
// validates:
//
//   - the footer of every free chunk (next.prev_size == size), which
//     backward coalescing depends on;
//   - free-list consistency: every chunk linked from a small bin or the
//     large list is a free chunk discovered by the address-order walk,
//     appears in exactly one bin, carries the exact size of its small bin,
//     and has mutually consistent fd/bk links (large list sorted by size);
//   - set equality: every free chunk (top excluded) is reachable from a
//     bin, so no free memory has leaked out of the allocator;
//   - the top chunk's in-heap header against the Go-side state;
//   - byte accounting: LiveBytes equals the payload capacity of the
//     in-use chunks plus the live mmapped regions (skipped in randomized
//     validation mode, whose deliberate spacer leaks are unaccounted);
//   - every Mmapped entry still has a live vmem mapping of its length.
//
// It returns nil when the heap is sound.
func (h *Heap) CheckInvariants() error {
	if err := h.CheckIntegrity(); err != nil {
		return err
	}
	if !h.st.Init {
		return h.checkMmapped()
	}

	// Address-order walk: collect the free-chunk set and usage totals,
	// checking footers as we go.
	free := make(map[vmem.Addr]uint32) // chunk addr -> size, top excluded
	var inUseBytes uint64
	var walkErr error
	err := h.Walk(func(c Chunk) bool {
		if c.Top {
			return true
		}
		if c.InUse {
			inUseBytes += uint64(c.Size - headerLen)
			return true
		}
		free[c.Addr] = c.Size
		if next := c.Addr + c.Size; next < h.mem.Brk() {
			ps, err := h.mem.ReadU32(next)
			if err != nil {
				walkErr = &CorruptError{Addr: c.Addr, Detail: "free chunk footer unreadable"}
				return false
			}
			if ps != c.Size {
				walkErr = &CorruptError{Addr: c.Addr,
					Detail: fmt.Sprintf("free chunk footer %d disagrees with size %d", ps, c.Size)}
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if walkErr != nil {
		return walkErr
	}

	// Top chunk: in-heap header must agree with the Go-side state.
	tsize, tflags, err := h.readHeader(h.st.Top)
	if err != nil {
		return err
	}
	if tsize != h.st.TopSize {
		return &CorruptError{Addr: h.st.Top,
			Detail: fmt.Sprintf("top header size %d disagrees with state %d", tsize, h.st.TopSize)}
	}
	if tflags&cinuse != 0 {
		return &CorruptError{Addr: h.st.Top, Detail: "top chunk marked in use"}
	}

	// Bin walk: every linked chunk must be free, correctly sized, linked
	// exactly once, and back-linked consistently.
	binned := 0
	seen := make(map[vmem.Addr]bool, len(free))
	checkList := func(head vmem.Addr, small bool, want uint32) error {
		var prev vmem.Addr
		var prevSize uint32
		for c := head; c != 0; {
			size, ok := free[c]
			if !ok {
				return &CorruptError{Addr: c, Detail: "binned chunk is not a free chunk"}
			}
			if seen[c] {
				return &CorruptError{Addr: c, Detail: "free chunk linked twice"}
			}
			seen[c] = true
			binned++
			if small && size != want {
				return &CorruptError{Addr: c,
					Detail: fmt.Sprintf("chunk of size %d in the %d-byte bin", size, want)}
			}
			if !small {
				if size <= maxSmall {
					return &CorruptError{Addr: c,
						Detail: fmt.Sprintf("small chunk (%d bytes) on the large list", size)}
				}
				if size < prevSize {
					return &CorruptError{Addr: c, Detail: "large list out of size order"}
				}
			}
			bk, err := h.bk(c)
			if err != nil {
				return err
			}
			if bk != prev {
				return &CorruptError{Addr: c,
					Detail: fmt.Sprintf("bk %#x disagrees with predecessor %#x", bk, prev)}
			}
			fd, err := h.fd(c)
			if err != nil {
				return err
			}
			prev, prevSize = c, size
			c = fd
		}
		return nil
	}
	for i := range h.st.Small {
		if h.st.Small[i] == 0 {
			continue
		}
		want := uint32(MinChunk + align*i)
		if err := checkList(h.st.Small[i], true, want); err != nil {
			return err
		}
	}
	if h.st.Large != 0 {
		if err := checkList(h.st.Large, false, 0); err != nil {
			return err
		}
	}
	if binned != len(free) {
		return &CorruptError{Addr: h.st.Start,
			Detail: fmt.Sprintf("%d free chunk(s) in the heap but %d reachable from bins", len(free), binned)}
	}

	// Byte accounting. Randomized placement leaks deliberate spacer
	// chunks (validation clones only, rolled back afterwards), so the
	// equality cannot hold there.
	if !h.st.Random {
		var mmapBytes uint64
		for _, n := range h.st.Mmapped {
			mmapBytes += uint64(n)
		}
		if want := inUseBytes + mmapBytes; h.st.LiveBytes != want {
			return &CorruptError{Addr: h.st.Start,
				Detail: fmt.Sprintf("LiveBytes %d disagrees with in-use payload %d", h.st.LiveBytes, want)}
		}
	}

	return h.checkMmapped()
}

// checkMmapped verifies each mmap-path object still has a live mapping of
// at least its recorded length.
func (h *Heap) checkMmapped() error {
	for start, n := range h.st.Mmapped {
		length, ok := h.mem.MappedRegion(start)
		if !ok {
			return &CorruptError{Addr: start, Detail: "mmapped object has no vmem mapping"}
		}
		if length < n {
			return &CorruptError{Addr: start,
				Detail: fmt.Sprintf("mmapped object mapping %d bytes short of %d", length, n)}
		}
	}
	return nil
}
