package heap

import (
	"strings"
	"testing"

	"firstaid/internal/vmem"
)

// churn drives a deterministic malloc/free/realloc-style mix and returns
// the live pointers. CheckInvariants must hold at every step.
func churn(t *testing.T, h *Heap, steps int) []vmem.Addr {
	t.Helper()
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var live []vmem.Addr
	for i := 0; i < steps; i++ {
		if len(live) > 0 && next(3) == 0 {
			j := int(next(uint64(len(live))))
			if err := h.Free(live[j]); err != nil {
				t.Fatalf("step %d: free: %v", i, err)
			}
			live = append(live[:j], live[j+1:]...)
		} else {
			size := uint32(8 + next(300))
			if next(16) == 0 {
				size = uint32(1000 + next(8000))
			}
			p, err := h.Malloc(size)
			if err != nil {
				t.Fatalf("step %d: malloc(%d): %v", i, size, err)
			}
			live = append(live, p)
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return live
}

func TestCheckInvariantsHoldsUnderChurn(t *testing.T) {
	h := New(vmem.New(64 << 20))
	live := churn(t, h, 600)
	for _, p := range live {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d after freeing everything", h.LiveBytes())
	}
}

// TestLiveBytesExactOnImperfectBinFit is the regression test for the
// accounting bug the chaos harness's invariant walker surfaced: when a bin
// recycle grants a chunk slightly larger than the request (remainder below
// MinChunk), Malloc used to credit LiveBytes with the requested size while
// Free debits the granted size, so the counter drifted low on every such
// recycle.
func TestLiveBytesExactOnImperfectBinFit(t *testing.T) {
	h := New(vmem.New(1 << 20))
	a, err := h.Malloc(32) // 40-byte chunk
	if err != nil {
		t.Fatal(err)
	}
	guard, err := h.Malloc(16) // keeps a's chunk off the top on free
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	// 24 bytes wants a 32-byte chunk; the 40-byte hole is the best fit
	// and the 8-byte remainder cannot be split off, so the whole 40-byte
	// chunk (32 usable) is granted.
	b, err := h.Malloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("imperfect-fit malloc did not recycle the hole: %#x vs %#x", b, a)
	}
	granted, err := h.UsableSize(b)
	if err != nil {
		t.Fatal(err)
	}
	if granted != 32 {
		t.Fatalf("granted %d bytes, want the whole 32-byte payload", granted)
	}
	if want := uint64(granted + 16); h.LiveBytes() != want {
		t.Fatalf("LiveBytes = %d, want %d (granted sizes)", h.LiveBytes(), want)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []vmem.Addr{b, guard} {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if h.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d after freeing everything", h.LiveBytes())
	}
}

func TestCheckInvariantsDetectsCorruptedBoundaryTag(t *testing.T) {
	h := New(vmem.New(1 << 20))
	p, _ := h.Malloc(64)
	if _, err := h.Malloc(64); err != nil {
		t.Fatal(err)
	}
	// Smash the in-use chunk's size word the way an overflow would.
	if err := h.Mem().WriteU32(p-4, 0x5A5A5A5A); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants accepted a smashed boundary tag")
	}
}

func TestCheckInvariantsDetectsBrokenFooter(t *testing.T) {
	h := New(vmem.New(1 << 20))
	a, _ := h.Malloc(64)
	if _, err := h.Malloc(64); err != nil { // keeps a off the top chunk
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	// a's chunk is free: its footer (next.prev_size) must equal its size.
	chunk := a - headerLen
	size, _, err := h.readHeader(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().WriteU32(chunk+size, size+8); err != nil {
		t.Fatal(err)
	}
	err = h.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted a broken free-chunk footer")
	}
	if !strings.Contains(err.Error(), "footer") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}

func TestCheckInvariantsDetectsMissedCoalesce(t *testing.T) {
	h := New(vmem.New(1 << 20))
	a, _ := h.Malloc(64)
	b, _ := h.Malloc(64)
	if _, err := h.Malloc(64); err != nil { // keeps b off the top chunk
		t.Fatal(err)
	}
	h.SetNoCoalesce(true)
	defer h.SetNoCoalesce(false)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	err := h.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted adjacent uncoalesced free chunks")
	}
	if !strings.Contains(err.Error(), "adjacent free") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}

func TestCheckInvariantsDetectsUnbinnedFreeChunk(t *testing.T) {
	h := New(vmem.New(1 << 20))
	a, _ := h.Malloc(64)
	if _, err := h.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	// Detach the chunk from its bin head without touching the heap: the
	// walk still sees a free chunk, but no bin reaches it.
	size, _, err := h.readHeader(a - headerLen)
	if err != nil {
		t.Fatal(err)
	}
	*h.binHead(size) = 0
	err = h.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted a free chunk reachable from no bin")
	}
	if !strings.Contains(err.Error(), "reachable from bins") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}
