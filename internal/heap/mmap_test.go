package heap

import (
	"errors"
	"testing"

	"firstaid/internal/vmem"
)

func TestLargeAllocationsUseMmapPath(t *testing.T) {
	h := newHeap(t)
	p, err := h.Malloc(DefaultMmapThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if p < vmem.MmapBase {
		t.Fatalf("large allocation at %#x, expected the Map zone (≥ %#x)", p, vmem.MmapBase)
	}
	if n, err := h.UsableSize(p); err != nil || n < DefaultMmapThreshold {
		t.Fatalf("UsableSize = %d, %v", n, err)
	}
	if !h.InUse(p) {
		t.Fatal("mmapped object not reported in use")
	}
	// Fully writable and zeroed.
	buf, _ := h.Mem().Read(p, DefaultMmapThreshold)
	for _, x := range buf {
		if x != 0 {
			t.Fatal("mmapped memory not zeroed")
		}
	}
	// Small allocations stay in the sbrk zone.
	q, _ := h.Malloc(64)
	if q >= vmem.MmapBase {
		t.Fatalf("small allocation at %#x, expected sbrk zone", q)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMmapFreeUnmapsImmediately(t *testing.T) {
	h := newHeap(t)
	p, _ := h.Malloc(512 << 10)
	h.Mem().Fill(p, 0x42, 512<<10)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if h.InUse(p) {
		t.Fatal("freed mmapped object still in use")
	}
	// Use-after-free of a munmapped region faults immediately — unlike
	// recycled sbrk chunks, which silently return stale bytes.
	if _, err := h.Mem().Read(p, 4); !errors.Is(err, vmem.ErrUnmapped) {
		t.Fatalf("read of munmapped region: %v, want unmapped fault", err)
	}
	// Double free is a clean allocator error, not a crash of the harness.
	if err := h.Free(p); err == nil {
		t.Fatal("double free of mmapped object succeeded")
	}
}

func TestMmapOverrunHitsGuardPage(t *testing.T) {
	h := newHeap(t)
	p, _ := h.Malloc(256 << 10)
	n, _ := h.UsableSize(p)
	regionEnd := (n + vmem.PageSize - 1) &^ (vmem.PageSize - 1)
	// Writing past the mapped region faults on the guard page.
	if err := h.Mem().Write(p+regionEnd, []byte{1}); !errors.Is(err, vmem.ErrUnmapped) {
		t.Fatalf("overrun write: %v, want unmapped fault", err)
	}
}

func TestMmapStateSurvivesRollback(t *testing.T) {
	mem := vmem.New(64 << 20)
	h := New(mem)
	p, _ := h.Malloc(300 << 10)
	mem.Write(p, []byte("mapped data"))

	snap := mem.Snapshot()
	st := h.State()

	h.Free(p) // unmaps
	q, _ := h.Malloc(400 << 10)
	_ = q

	mem.Restore(snap)
	h.SetState(st)
	snap.Release()

	// The original mapping is back, contents intact.
	if !h.InUse(p) {
		t.Fatal("mmapped object lost across rollback")
	}
	got, err := mem.Read(p, 11)
	if err != nil || string(got) != "mapped data" {
		t.Fatalf("contents after rollback: %q, %v", got, err)
	}
	// And it can be freed again normally.
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestMmapAccounting(t *testing.T) {
	h := newHeap(t)
	base := h.Footprint()
	p, _ := h.Malloc(1 << 20)
	if h.Footprint() < base+1<<20 {
		t.Fatalf("footprint %d does not include the mapping", h.Footprint())
	}
	if h.LiveBytes() < 1<<20 {
		t.Fatalf("LiveBytes = %d", h.LiveBytes())
	}
	h.Free(p)
	if h.LiveBytes() >= 1<<20 {
		t.Fatalf("LiveBytes after free = %d", h.LiveBytes())
	}
	m, f := h.Counts()
	if m != 1 || f != 1 {
		t.Fatalf("counts = %d/%d", m, f)
	}
}

func TestMmapBudgetEnforced(t *testing.T) {
	mem := vmem.New(2 << 20)
	h := New(mem)
	var got int
	for i := 0; i < 32; i++ {
		if _, err := h.Malloc(256 << 10); err != nil {
			if !errors.Is(err, vmem.ErrOutOfMemory) {
				t.Fatalf("wrong error class: %v", err)
			}
			break
		}
		got++
	}
	if got == 0 || got > 8 {
		t.Fatalf("allocated %d × 256KB within a 2MB budget", got)
	}
}
