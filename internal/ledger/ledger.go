// Package ledger is the diagnosis ledger: every recovery attempt — sync,
// parallel-validated or streaming — is recorded as a first-class Diagnosis
// object with a kubediag-style lifecycle (Pending → Running →
// Succeeded/Failed) and a typed Conditions list carrying the evidence
// chain that drove it: the observed fault, guard-page attribution, the
// candidate checkpoints phase-1 probed and why it rejected them, the
// generated patch parameters and the per-iteration validation verdicts.
//
// The ledger is an in-process store shaped like the telemetry layer:
// bounded rings, monotonic IDs, and a single-writer discipline (the
// supervisor goroutine is the only mutator of an open entry; parallel
// validation results are appended at collect time on that same goroutine)
// so recoveries stay race-clean. Readers (the fleet HTTP surface, report
// rendering, postmortem bundles) get deep copies under the lock.
//
// The object and its JSON are the wire schema the control-plane PR will
// serve between nodes; Canonical() is the mode-invariant projection used
// by the determinism tests — it excludes wall-clock stamps, machine cycle
// counts and other fields that legitimately differ between supervision
// modes of the same seed.
package ledger

import (
	"encoding/json"
	"sync"
	"time"

	"firstaid/internal/callsite"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/validate"
)

// Phase is the lifecycle phase of a Diagnosis.
type Phase string

// Lifecycle phases, kubediag-style.
const (
	PhasePending   Phase = "Pending"   // fault observed, recovery not yet started
	PhaseRunning   Phase = "Running"   // diagnosis/patch/validation in flight
	PhaseSucceeded Phase = "Succeeded" // recovered (or correctly screened as non-deterministic)
	PhaseFailed    Phase = "Failed"    // recovery skipped or patches revoked
)

// ConditionType identifies a step of the evidence chain.
type ConditionType string

// The condition taxonomy. Conditions appear in the order the recovery
// produced them; a Diagnosis never carries two conditions of the same
// type.
const (
	// FaultObserved: the monitor trapped a fault; evidence is the fault.
	FaultObserved ConditionType = "FaultObserved"
	// GuardEvidence: a sampled guard page claimed the fault, with the
	// manifested class, the implicated site (QuarFreeSite attribution
	// for dangling/double-free, alloc site for overflow) and the process
	// clock of the decisive operation.
	GuardEvidence ConditionType = "GuardEvidence"
	// Phase1Skipped: guard evidence was confirmed by a single scoped
	// re-execution, so the phase-1 checkpoint search did not run.
	Phase1Skipped ConditionType = "Phase1Skipped"
	// Phase1Completed: the phase-1 checkpoint search concluded; evidence
	// is every candidate checkpoint probed and why it was rejected.
	Phase1Completed ConditionType = "Phase1Completed"
	// CheckpointSelected: the rollback base for phase 2 and validation.
	CheckpointSelected ConditionType = "CheckpointSelected"
	// PatchGenerated: phase 2 identified class+site and patches were cut.
	PatchGenerated ConditionType = "PatchGenerated"
	// ValidationPassed / ValidationFailed: the randomized consistency
	// check verdict, with per-iteration detail.
	ValidationPassed ConditionType = "ValidationPassed"
	ValidationFailed ConditionType = "ValidationFailed"
	// PatchInstalled: the surviving patches as they entered the pool.
	PatchInstalled ConditionType = "PatchInstalled"
	// SpeculationSummary: the recovery raced diagnosis hypotheses on
	// speculative clones; evidence is how many were launched, consumed and
	// cancelled. Excluded from the canonical projection — speculation is
	// an execution strategy, not an observable verdict.
	SpeculationSummary ConditionType = "SpeculationSummary"
)

// SpecInfo summarizes one recovery's speculative execution: hypotheses
// launched on clones, outcomes the engine actually consumed, losers torn
// down, and how many launches were served by the pre-warmed standby clone.
type SpecInfo struct {
	Launched  int `json:"launched"`
	Won       int `json:"won"`
	Cancelled int `json:"cancelled"`
	Standby   int `json:"standby,omitempty"`
}

// FaultInfo is the wire form of a trapped fault.
type FaultInfo struct {
	Kind  string   `json:"kind"`
	Addr  uint64   `json:"addr,omitempty"`
	Msg   string   `json:"msg,omitempty"`
	Instr string   `json:"instr,omitempty"`
	Stack []string `json:"stack,omitempty"`
	Event int      `json:"event"`
	Clock uint64   `json:"clock"`
	Early bool     `json:"early,omitempty"`
}

// NewFaultInfo projects a proc.Fault onto the wire form.
func NewFaultInfo(f *proc.Fault) *FaultInfo {
	if f == nil {
		return nil
	}
	return &FaultInfo{
		Kind:  f.Kind.String(),
		Addr:  uint64(f.Addr),
		Msg:   f.Msg,
		Instr: f.Instr,
		Stack: append([]string(nil), f.Stack...),
		Event: f.Event,
		Clock: f.Clock,
		Early: f.Early,
	}
}

// GuardInfo is guard-page evidence: which class manifested on a guarded
// slot, which call-site is implicated and how.
type GuardInfo struct {
	Bug   string `json:"bug"`
	Site  string `json:"site"`
	Clock uint64 `json:"clock"` // process clock of the decisive malloc/free
	// Attribution says how Site was derived: "quarantined-free-site"
	// (guard.QuarFreeSite — the slot was dead, so the free site owns the
	// bug) or "alloc-site" (the slot was live, so the allocation site
	// does).
	Attribution string `json:"attribution"`
}

// CheckpointInfo identifies a checkpoint without retaining its snapshot.
type CheckpointInfo struct {
	Seq    int    `json:"seq"`
	Clock  uint64 `json:"clock"`
	Cursor int    `json:"cursor"`
}

// CandidateInfo is one checkpoint the phase-1 search considered. Rejected
// is empty for the checkpoint that was selected.
type CandidateInfo struct {
	CheckpointInfo
	Rejected string `json:"rejected,omitempty"`
}

// PatchInfo is the wire form of a runtime patch's parameters.
type PatchInfo struct {
	ID        int    `json:"id"`
	Bug       string `json:"bug"`
	Site      string `json:"site"`
	AtAlloc   bool   `json:"atAlloc"`
	Validated bool   `json:"validated,omitempty"`
	Revoked   bool   `json:"revoked,omitempty"`
}

// NewPatchInfo projects a patch onto the wire form.
func NewPatchInfo(p *patch.Patch) PatchInfo {
	return PatchInfo{
		ID:        p.ID,
		Bug:       p.Bug.String(),
		Site:      p.Site.String(),
		AtAlloc:   p.AtAlloc,
		Validated: p.Validated,
		Revoked:   p.Revoked,
	}
}

// IterationInfo is one randomized validation re-execution's verdict.
type IterationInfo struct {
	Iteration int    `json:"iteration"`
	Fault     string `json:"fault,omitempty"` // non-empty = the clone still failed
	Illegal   int    `json:"illegalAccesses"`
	Triggers  int    `json:"patchTriggers"`
}

// ValidationInfo is the consistency-check verdict with per-clone detail.
type ValidationInfo struct {
	Consistent bool            `json:"consistent"`
	Reason     string          `json:"reason,omitempty"`
	Iterations []IterationInfo `json:"iterations,omitempty"`
}

// NewValidationInfo projects a validation result onto the wire form.
func NewValidationInfo(v *validate.Result) *ValidationInfo {
	if v == nil {
		return nil
	}
	info := &ValidationInfo{Consistent: v.Consistent, Reason: v.Reason}
	for i, tr := range v.Traces {
		it := IterationInfo{Iteration: i}
		if tr != nil {
			it.Illegal = len(tr.Illegal)
			for _, n := range tr.Triggers {
				it.Triggers += n
			}
		}
		if i < len(v.Faults) && v.Faults[i] != nil {
			it.Fault = v.Faults[i].Error()
		}
		info.Iterations = append(info.Iterations, it)
	}
	return info
}

// Condition is one step of the evidence chain.
//
// Clock is the *process clock* of the evidence itself (the fault's clock,
// the decisive guard operation, the selected checkpoint) and is
// deterministic across supervision modes for the same seed. Cycles is the
// recording machine's trace clock at append time and WallNS the wall
// clock; both are diagnostic only and excluded from the canonical
// projection, because validation advances the parent machine's cycle
// clock in sync mode but a clone's in parallel mode.
type Condition struct {
	Type    ConditionType `json:"type"`
	Clock   uint64        `json:"clock"`
	Cycles  uint64        `json:"cycles,omitempty"`
	WallNS  int64         `json:"wallNs,omitempty"`
	Message string        `json:"message,omitempty"`

	Fault       *FaultInfo      `json:"fault,omitempty"`
	Guard       *GuardInfo      `json:"guard,omitempty"`
	Checkpoint  *CheckpointInfo `json:"checkpoint,omitempty"`
	Candidates  []CandidateInfo `json:"candidates,omitempty"`
	Patches     []PatchInfo     `json:"patches,omitempty"`
	Validation  *ValidationInfo `json:"validation,omitempty"`
	Speculation *SpecInfo       `json:"speculation,omitempty"`
}

// Diagnosis is one recovery attempt's lifecycle object. Exactly one is
// created per supervisor recovery (including skipped and
// non-deterministic outcomes).
type Diagnosis struct {
	ID     uint64 `json:"id"`
	Source string `json:"source"`         // program name
	Worker int    `json:"worker"`         // fleet worker index (0 standalone)
	Mode   string `json:"mode,omitempty"` // sync | parallel | stream
	Event  int    `json:"event"`          // replay cursor of the failing event
	Phase  Phase  `json:"phase"`
	// Outcome refines the terminal phase: recovered, nondeterministic,
	// skipped, patches-revoked.
	Outcome   string `json:"outcome,omitempty"`
	FastPath  bool   `json:"fastPath,omitempty"` // guard evidence skipped phase 1
	Rollbacks int    `json:"rollbacks"`
	// Repro, when the source is a chaos program, is the exact
	// firstaid-run command that reproduces this diagnosis offline.
	Repro string `json:"repro,omitempty"`

	Conditions []Condition `json:"conditions"`
	DiagLog    []string    `json:"diagLog,omitempty"`

	BeginCycles uint64 `json:"beginCycles"`
	EndCycles   uint64 `json:"endCycles,omitempty"`
	BeginWallNS int64  `json:"beginWallNs,omitempty"`
	EndWallNS   int64  `json:"endWallNs,omitempty"`
	// TraceFrom/TraceTo are the tracer's emitted-record sequence numbers
	// at begin/close: the diagnosis's slice of the execution trace.
	TraceFrom uint64 `json:"traceFrom,omitempty"`
	TraceTo   uint64 `json:"traceTo,omitempty"`

	RecoverySec   float64 `json:"recoverySec,omitempty"`
	ValidationSec float64 `json:"validationSec,omitempty"`

	// Render-only references for report generation; never serialized.
	FaultRef      *proc.Fault                    `json:"-"`
	ValidationRef *validate.Result               `json:"-"`
	PatchRefs     []*patch.Patch                 `json:"-"`
	SiteKey       func(callsite.ID) callsite.Key `json:"-"`
}

// Cond returns the first condition of the given type, or nil.
func (d *Diagnosis) Cond(t ConditionType) *Condition {
	for i := range d.Conditions {
		if d.Conditions[i].Type == t {
			return &d.Conditions[i]
		}
	}
	return nil
}

// Done reports whether the diagnosis reached a terminal phase.
func (d *Diagnosis) Done() bool {
	return d.Phase == PhaseSucceeded || d.Phase == PhaseFailed
}

// canonicalCondition mirrors Condition minus the per-mode stamps.
type canonicalCondition struct {
	Type       ConditionType   `json:"type"`
	Clock      uint64          `json:"clock"`
	Message    string          `json:"message,omitempty"`
	Fault      *FaultInfo      `json:"fault,omitempty"`
	Guard      *GuardInfo      `json:"guard,omitempty"`
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`
	Candidates []CandidateInfo `json:"candidates,omitempty"`
	Patches    []PatchInfo     `json:"patches,omitempty"`
	Validation *ValidationInfo `json:"validation,omitempty"`
}

type canonicalDiagnosis struct {
	ID         uint64               `json:"id"`
	Source     string               `json:"source"`
	Event      int                  `json:"event"`
	Phase      Phase                `json:"phase"`
	Outcome    string               `json:"outcome,omitempty"`
	FastPath   bool                 `json:"fastPath,omitempty"`
	Rollbacks  int                  `json:"rollbacks"`
	Conditions []canonicalCondition `json:"conditions"`
	DiagLog    []string             `json:"diagLog,omitempty"`
}

// Canonical returns the mode-invariant JSON projection of the diagnosis:
// the evidence chain, process clocks and outcome, minus wall clocks,
// machine cycle stamps, trace cursors, worker index, supervision mode and
// the repro command (which names the mode). Two runs of the same seed in
// any supervision mode yield byte-identical canonical forms.
func (d *Diagnosis) Canonical() ([]byte, error) {
	cd := canonicalDiagnosis{
		ID:        d.ID,
		Source:    d.Source,
		Event:     d.Event,
		Phase:     d.Phase,
		Outcome:   d.Outcome,
		FastPath:  d.FastPath,
		Rollbacks: d.Rollbacks,
		DiagLog:   d.DiagLog,
	}
	for _, c := range d.Conditions {
		// SpeculationSummary records how the diagnosis was scheduled, not
		// what it concluded; serial and speculative runs must project
		// identically.
		if c.Type == SpeculationSummary {
			continue
		}
		cd.Conditions = append(cd.Conditions, canonicalCondition{
			Type:       c.Type,
			Clock:      c.Clock,
			Message:    c.Message,
			Fault:      c.Fault,
			Guard:      c.Guard,
			Checkpoint: c.Checkpoint,
			Candidates: c.Candidates,
			Patches:    c.Patches,
			Validation: c.Validation,
		})
	}
	return json.MarshalIndent(cd, "", "  ")
}

// Transition is one phase change, for the /diagnoses/stream SSE feed.
type Transition struct {
	Seq     uint64 `json:"seq"` // monotonic stream cursor
	ID      uint64 `json:"id"`
	Phase   Phase  `json:"phase"`
	Outcome string `json:"outcome,omitempty"`
	Event   int    `json:"event"`
	Worker  int    `json:"worker"`
	WallNS  int64  `json:"wallNs"`
}

// DefaultCapacity is the diagnosis ring size when New is given 0.
const DefaultCapacity = 256

// AnyWorker matches every worker in Filter and InFlight.
const AnyWorker = -1

// Ledger is the bounded in-process diagnosis store. A nil *Ledger is a
// valid disabled ledger: Begin returns a nil Entry and every method
// no-ops, so call sites never branch.
type Ledger struct {
	mu      sync.Mutex
	cap     int
	nextID  uint64
	entries []*Diagnosis // ascending ID; bounded to cap
	dropped uint64

	transCap     int
	trans        []Transition
	transSeq     uint64 // seq of the next transition appended
	transDropped uint64

	now func() int64 // wall clock, swappable in tests
}

// New creates a ledger retaining up to capacity diagnoses (DefaultCapacity
// when 0). The transition ring holds 4× that: a full lifecycle is three
// transitions.
func New(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ledger{
		cap:      capacity,
		transCap: 4 * capacity,
		now:      func() int64 { return time.Now().UnixNano() },
	}
}

// Meta is the identity a diagnosis opens with.
type Meta struct {
	Source    string
	Worker    int
	Mode      string
	Event     int
	Repro     string
	Cycles    uint64 // machine trace clock at open
	TraceFrom uint64 // tracer emitted-record count at open
}

// Begin opens a new Diagnosis in PhasePending and returns its writer.
func (l *Ledger) Begin(m Meta) *Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	d := &Diagnosis{
		ID:          l.nextID,
		Source:      m.Source,
		Worker:      m.Worker,
		Mode:        m.Mode,
		Event:       m.Event,
		Repro:       m.Repro,
		Phase:       PhasePending,
		BeginCycles: m.Cycles,
		BeginWallNS: l.now(),
		TraceFrom:   m.TraceFrom,
	}
	if len(l.entries) == l.cap {
		copy(l.entries, l.entries[1:])
		l.entries[len(l.entries)-1] = d
		l.dropped++
	} else {
		l.entries = append(l.entries, d)
	}
	l.transition(d)
	return &Entry{l: l, d: d}
}

// transition records a phase change; callers hold l.mu.
func (l *Ledger) transition(d *Diagnosis) {
	t := Transition{
		Seq:     l.transSeq,
		ID:      d.ID,
		Phase:   d.Phase,
		Outcome: d.Outcome,
		Event:   d.Event,
		Worker:  d.Worker,
		WallNS:  l.now(),
	}
	l.transSeq++
	if len(l.trans) == l.transCap {
		copy(l.trans, l.trans[1:])
		l.trans[len(l.trans)-1] = t
		l.transDropped++
	} else {
		l.trans = append(l.trans, t)
	}
}

// Filter selects diagnoses for List. Zero-value string fields match
// everything; Worker AnyWorker (or any negative) matches every worker, so
// construct filters with Worker: ledger.AnyWorker unless filtering by it.
type Filter struct {
	Phase  Phase
	Source string
	Worker int
}

// List returns deep copies of matching diagnoses in ascending ID order.
func (l *Ledger) List(f Filter) []*Diagnosis {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Diagnosis
	for _, d := range l.entries {
		if f.Phase != "" && d.Phase != f.Phase {
			continue
		}
		if f.Source != "" && d.Source != f.Source {
			continue
		}
		if f.Worker >= 0 && d.Worker != f.Worker {
			continue
		}
		out = append(out, copyDiagnosis(d))
	}
	return out
}

// Get returns a deep copy of the diagnosis with the given ID.
func (l *Ledger) Get(id uint64) (*Diagnosis, bool) {
	if l == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, d := range l.entries {
		if d.ID == id {
			return copyDiagnosis(d), true
		}
	}
	return nil, false
}

// InFlight counts retained diagnoses not yet in a terminal phase, for one
// worker or AnyWorker.
func (l *Ledger) InFlight(worker int) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, d := range l.entries {
		if !d.Done() && (worker < 0 || d.Worker == worker) {
			n++
		}
	}
	return n
}

// Len returns the number of retained diagnoses.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Dropped returns how many diagnoses the bounded ring has evicted.
func (l *Ledger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// LastID returns the most recently assigned diagnosis ID (0 if none).
func (l *Ledger) LastID() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID
}

// TransitionsSince returns retained transitions with Seq >= seq, the SSE
// resume contract of /diagnoses/stream.
func (l *Ledger) TransitionsSince(seq uint64) []Transition {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.trans) == 0 {
		return nil
	}
	first := l.trans[0].Seq
	if seq < first {
		seq = first
	}
	if seq >= l.transSeq {
		return nil
	}
	return append([]Transition(nil), l.trans[seq-first:]...)
}

// TransitionsEmitted returns the total transitions ever recorded — the
// next stream cursor.
func (l *Ledger) TransitionsEmitted() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transSeq
}

// TransitionsDropped returns how many transitions the ring has evicted.
func (l *Ledger) TransitionsDropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transDropped
}

func copyDiagnosis(d *Diagnosis) *Diagnosis {
	cp := *d
	cp.Conditions = make([]Condition, len(d.Conditions))
	for i, c := range d.Conditions {
		cc := c
		if c.Fault != nil {
			f := *c.Fault
			cc.Fault = &f
		}
		if c.Guard != nil {
			g := *c.Guard
			cc.Guard = &g
		}
		if c.Checkpoint != nil {
			k := *c.Checkpoint
			cc.Checkpoint = &k
		}
		cc.Candidates = append([]CandidateInfo(nil), c.Candidates...)
		cc.Patches = append([]PatchInfo(nil), c.Patches...)
		if c.Validation != nil {
			v := *c.Validation
			v.Iterations = append([]IterationInfo(nil), c.Validation.Iterations...)
			cc.Validation = &v
		}
		cp.Conditions[i] = cc
	}
	cp.DiagLog = append([]string(nil), d.DiagLog...)
	cp.PatchRefs = append([]*patch.Patch(nil), d.PatchRefs...)
	return &cp
}

// Entry is the single-writer handle to an open diagnosis. All methods are
// nil-safe no-ops, so a disabled ledger costs call sites one nil check.
// The owning supervisor goroutine is the only writer; the ledger lock
// orders its writes against HTTP readers.
type Entry struct {
	l *Ledger
	d *Diagnosis
}

// ID returns the diagnosis ID (0 for a nil entry).
func (e *Entry) ID() uint64 {
	if e == nil {
		return 0
	}
	return e.d.ID
}

// Add appends a condition, stamping its wall clock.
func (e *Entry) Add(c Condition) {
	if e == nil {
		return
	}
	e.l.mu.Lock()
	defer e.l.mu.Unlock()
	c.WallNS = e.l.now()
	e.d.Conditions = append(e.d.Conditions, c)
}

// Run moves the diagnosis to PhaseRunning.
func (e *Entry) Run() {
	if e == nil {
		return
	}
	e.l.mu.Lock()
	defer e.l.mu.Unlock()
	e.d.Phase = PhaseRunning
	e.l.transition(e.d)
}

// Update applies an arbitrary mutation under the ledger lock — used to
// attach rollback counts, diagnosis logs, wall durations and the
// render-only references.
func (e *Entry) Update(fn func(*Diagnosis)) {
	if e == nil {
		return
	}
	e.l.mu.Lock()
	defer e.l.mu.Unlock()
	fn(e.d)
}

// Close moves the diagnosis to its terminal phase and records the closing
// cycle/trace cursors.
func (e *Entry) Close(succeeded bool, outcome string, cycles, traceTo uint64) {
	if e == nil {
		return
	}
	e.l.mu.Lock()
	defer e.l.mu.Unlock()
	if succeeded {
		e.d.Phase = PhaseSucceeded
	} else {
		e.d.Phase = PhaseFailed
	}
	e.d.Outcome = outcome
	e.d.EndCycles = cycles
	e.d.EndWallNS = e.l.now()
	e.d.TraceTo = traceTo
	e.l.transition(e.d)
}

// Snapshot returns a deep copy of the diagnosis (nil for a nil entry).
func (e *Entry) Snapshot() *Diagnosis {
	if e == nil {
		return nil
	}
	e.l.mu.Lock()
	defer e.l.mu.Unlock()
	return copyDiagnosis(e.d)
}
