package ledger

import (
	"bytes"
	"testing"
)

func testLedger(cap int) *Ledger {
	l := New(cap)
	var tick int64
	l.now = func() int64 { tick++; return tick }
	return l
}

func TestLifecycle(t *testing.T) {
	l := testLedger(8)
	e := l.Begin(Meta{Source: "apache", Worker: 2, Mode: "sync", Event: 41, Cycles: 1000, TraceFrom: 7})
	if e.ID() != 1 {
		t.Fatalf("first ID = %d, want 1", e.ID())
	}
	d, ok := l.Get(1)
	if !ok || d.Phase != PhasePending {
		t.Fatalf("after Begin: %+v ok=%v, want Pending", d, ok)
	}

	e.Add(Condition{Type: FaultObserved, Clock: 990, Fault: &FaultInfo{Kind: "access violation", Event: 41, Clock: 990}})
	e.Run()
	e.Add(Condition{
		Type:  CheckpointSelected,
		Clock: 800,
		Candidates: []CandidateInfo{
			{CheckpointInfo: CheckpointInfo{Seq: 5, Clock: 950}, Rejected: "heap-marking canaries corrupted"},
			{CheckpointInfo: CheckpointInfo{Seq: 4, Clock: 800}},
		},
		Checkpoint: &CheckpointInfo{Seq: 4, Clock: 800, Cursor: 30},
	})
	e.Update(func(d *Diagnosis) { d.Rollbacks = 3 })
	e.Close(true, "recovered", 2000, 19)

	d, _ = l.Get(1)
	if d.Phase != PhaseSucceeded || d.Outcome != "recovered" || !d.Done() {
		t.Fatalf("terminal state: phase=%s outcome=%s", d.Phase, d.Outcome)
	}
	if d.Rollbacks != 3 || d.TraceTo != 19 || d.EndCycles != 2000 {
		t.Fatalf("closing fields: %+v", d)
	}
	if c := d.Cond(CheckpointSelected); c == nil || c.Checkpoint.Seq != 4 || len(c.Candidates) != 2 {
		t.Fatalf("CheckpointSelected condition: %+v", c)
	}
	if c := d.Cond(GuardEvidence); c != nil {
		t.Fatalf("unexpected GuardEvidence condition")
	}
	for _, c := range d.Conditions {
		if c.WallNS == 0 {
			t.Fatalf("condition %s missing wall stamp", c.Type)
		}
	}

	// Pending → Running → Succeeded = three transitions.
	trs := l.TransitionsSince(0)
	if len(trs) != 3 {
		t.Fatalf("transitions = %d, want 3", len(trs))
	}
	wantPhases := []Phase{PhasePending, PhaseRunning, PhaseSucceeded}
	for i, tr := range trs {
		if tr.Phase != wantPhases[i] || tr.ID != 1 || tr.Seq != uint64(i) {
			t.Fatalf("transition %d = %+v", i, tr)
		}
	}
	if got := l.TransitionsSince(2); len(got) != 1 || got[0].Phase != PhaseSucceeded {
		t.Fatalf("TransitionsSince(2) = %+v", got)
	}
	if l.TransitionsEmitted() != 3 {
		t.Fatalf("TransitionsEmitted = %d", l.TransitionsEmitted())
	}
}

func TestRingEvictionAndIDs(t *testing.T) {
	l := testLedger(4)
	for i := 0; i < 10; i++ {
		e := l.Begin(Meta{Source: "s", Event: i})
		e.Close(true, "recovered", 0, 0)
	}
	if l.Len() != 4 || l.Dropped() != 6 || l.LastID() != 10 {
		t.Fatalf("len=%d dropped=%d last=%d", l.Len(), l.Dropped(), l.LastID())
	}
	if _, ok := l.Get(3); ok {
		t.Fatalf("evicted diagnosis still retrievable")
	}
	ds := l.List(Filter{Worker: AnyWorker})
	if len(ds) != 4 || ds[0].ID != 7 || ds[3].ID != 10 {
		t.Fatalf("List after eviction: %d entries, first=%d", len(ds), ds[0].ID)
	}
}

func TestListFiltersAndInFlight(t *testing.T) {
	l := testLedger(16)
	a := l.Begin(Meta{Source: "apache", Worker: 0})
	a.Close(true, "recovered", 0, 0)
	b := l.Begin(Meta{Source: "chaos", Worker: 1})
	b.Run()
	c := l.Begin(Meta{Source: "chaos", Worker: 1})
	c.Close(false, "skipped", 0, 0)

	if got := l.List(Filter{Source: "chaos", Worker: AnyWorker}); len(got) != 2 {
		t.Fatalf("source filter: %d", len(got))
	}
	if got := l.List(Filter{Phase: PhaseFailed, Worker: AnyWorker}); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("phase filter: %+v", got)
	}
	if got := l.List(Filter{Worker: 0}); len(got) != 1 || got[0].Source != "apache" {
		t.Fatalf("worker filter: %+v", got)
	}
	if n := l.InFlight(AnyWorker); n != 1 {
		t.Fatalf("InFlight(any) = %d", n)
	}
	if n := l.InFlight(1); n != 1 {
		t.Fatalf("InFlight(1) = %d", n)
	}
	if n := l.InFlight(0); n != 0 {
		t.Fatalf("InFlight(0) = %d", n)
	}
}

func TestGetReturnsDeepCopy(t *testing.T) {
	l := testLedger(4)
	e := l.Begin(Meta{Source: "s"})
	e.Add(Condition{Type: FaultObserved, Fault: &FaultInfo{Kind: "x"}, Candidates: []CandidateInfo{{}}})
	d1, _ := l.Get(1)
	d1.Conditions[0].Fault.Kind = "mutated"
	d1.Conditions[0].Candidates[0].Rejected = "mutated"
	d2, _ := l.Get(1)
	if d2.Conditions[0].Fault.Kind != "x" || d2.Conditions[0].Candidates[0].Rejected != "" {
		t.Fatalf("Get returned shared state: %+v", d2.Conditions[0])
	}
}

func TestNilLedgerIsInert(t *testing.T) {
	var l *Ledger
	e := l.Begin(Meta{Source: "s"})
	if e != nil {
		t.Fatalf("nil ledger Begin = %v", e)
	}
	// All of these must be no-ops, not panics.
	e.Add(Condition{Type: FaultObserved})
	e.Run()
	e.Update(func(*Diagnosis) { t.Fatal("Update fn called on nil entry") })
	e.Close(true, "recovered", 0, 0)
	if e.ID() != 0 || e.Snapshot() != nil {
		t.Fatalf("nil entry leaked state")
	}
	if l.Len() != 0 || l.Dropped() != 0 || l.InFlight(AnyWorker) != 0 || l.LastID() != 0 {
		t.Fatalf("nil ledger reported state")
	}
	if l.List(Filter{}) != nil || l.TransitionsSince(0) != nil || l.TransitionsEmitted() != 0 {
		t.Fatalf("nil ledger returned data")
	}
	if _, ok := l.Get(1); ok {
		t.Fatalf("nil ledger Get ok")
	}
}

func TestTransitionRingEviction(t *testing.T) {
	l := testLedger(2) // transition cap = 8
	for i := 0; i < 5; i++ {
		e := l.Begin(Meta{})
		e.Close(true, "recovered", 0, 0) // 2 transitions each
	}
	if l.TransitionsDropped() != 2 {
		t.Fatalf("transitions dropped = %d, want 2", l.TransitionsDropped())
	}
	trs := l.TransitionsSince(0)
	if len(trs) != 8 || trs[0].Seq != 2 {
		t.Fatalf("retained %d transitions, first seq %d", len(trs), trs[0].Seq)
	}
	// Resuming below the retained window clamps to the oldest record.
	if got := l.TransitionsSince(1); len(got) != 8 {
		t.Fatalf("clamped resume: %d", len(got))
	}
	if got := l.TransitionsSince(99); got != nil {
		t.Fatalf("future cursor returned %d records", len(got))
	}
}

func TestCanonicalExcludesModeVaryingFields(t *testing.T) {
	build := func(mode string, worker int, cycles uint64, wall int64) *Diagnosis {
		l := New(4)
		l.now = func() int64 { return wall }
		e := l.Begin(Meta{Source: "chaos", Worker: worker, Mode: mode, Event: 9, Cycles: cycles, TraceFrom: cycles})
		e.Add(Condition{Type: FaultObserved, Clock: 500, Cycles: cycles, Fault: &FaultInfo{Kind: "access violation", Event: 9, Clock: 500}})
		e.Run()
		e.Add(Condition{Type: PatchGenerated, Clock: 500, Cycles: cycles * 2, Patches: []PatchInfo{{ID: 1, Bug: "buffer overflow", Site: "a<b<c", AtAlloc: true}}})
		e.Update(func(d *Diagnosis) {
			d.Repro = "firstaid-run -chaos-mode " + mode
			d.RecoverySec = float64(wall)
		})
		e.Close(true, "recovered", cycles*3, cycles)
		d, _ := l.Get(1)
		return d
	}

	a := build("sync", 0, 1000, 11)
	b := build("parallel", 3, 9999, 77)
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical forms differ across modes:\n%s\nvs\n%s", ca, cb)
	}
	for _, banned := range []string{"wallNs", "cycles", "mode", "repro", "worker", "recoverySec", "traceFrom"} {
		if bytes.Contains(ca, []byte(banned)) {
			t.Fatalf("canonical form leaks %q:\n%s", banned, ca)
		}
	}
}
