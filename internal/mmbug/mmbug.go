// Package mmbug enumerates the memory-management bug classes handled by
// First-Aid (paper Table 1). The enum is shared by the allocator extension
// (which implements the preventive/exposing changes per class), the
// diagnosis engine (which searches over classes), the patch layer (a patch
// is a preventive change for one class) and the report generator.
package mmbug

// Type identifies a memory-management bug class.
type Type int

// The bug classes of Table 1, in the order the diagnosis engine probes
// them. The order matters only for determinism of the diagnostic log.
const (
	None Type = iota
	BufferOverflow
	DanglingWrite
	DanglingRead
	DoubleFree
	UninitRead
)

// All lists every diagnosable class, the initial "undecided set" Su of the
// paper's Phase-2 algorithm.
var All = []Type{BufferOverflow, DanglingWrite, DanglingRead, DoubleFree, UninitRead}

var names = map[Type]string{
	None:           "none",
	BufferOverflow: "buffer overflow",
	DanglingWrite:  "dangling pointer write",
	DanglingRead:   "dangling pointer read",
	DoubleFree:     "double free",
	UninitRead:     "uninitialized read",
}

func (t Type) String() string {
	if s, ok := names[t]; ok {
		return s
	}
	return "unknown"
}

// PatchName returns the paper's name for the preventive change that
// patches this bug class (Table 1 / Table 3).
func (t Type) PatchName() string {
	switch t {
	case BufferOverflow:
		return "add padding"
	case DanglingWrite, DanglingRead, DoubleFree:
		return "delay free"
	case UninitRead:
		return "fill with zero"
	}
	return "none"
}

// AtAllocation reports whether this class's patch applies at allocation
// call-sites (true) or deallocation call-sites (false), per Table 1's
// "patch application point" column.
func (t Type) AtAllocation() bool {
	switch t {
	case BufferOverflow, UninitRead:
		return true
	default:
		return false
	}
}

// ReadType reports whether the class manifests only through incorrect
// content reads, so its call-sites must be found by the Phase-2 binary
// search rather than by direct canary/parameter evidence (paper §4.2).
func (t Type) ReadType() bool {
	return t == DanglingRead || t == UninitRead
}
