package mmbug

import "testing"

func TestAllCoversFiveClasses(t *testing.T) {
	if len(All) != 5 {
		t.Fatalf("All = %v", All)
	}
	seen := map[Type]bool{}
	for _, b := range All {
		if b == None || seen[b] {
			t.Fatalf("bad entry %v", b)
		}
		seen[b] = true
	}
}

func TestStrings(t *testing.T) {
	cases := map[Type]string{
		None:           "none",
		BufferOverflow: "buffer overflow",
		DanglingWrite:  "dangling pointer write",
		DanglingRead:   "dangling pointer read",
		DoubleFree:     "double free",
		UninitRead:     "uninitialized read",
		Type(99):       "unknown",
	}
	for b, want := range cases {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestPatchNamesMatchTable1(t *testing.T) {
	cases := map[Type]string{
		BufferOverflow: "add padding",
		DanglingWrite:  "delay free",
		DanglingRead:   "delay free",
		DoubleFree:     "delay free",
		UninitRead:     "fill with zero",
		None:           "none",
	}
	for b, want := range cases {
		if b.PatchName() != want {
			t.Errorf("%v.PatchName() = %q, want %q", b, b.PatchName(), want)
		}
	}
}

func TestApplicationPointsMatchTable1(t *testing.T) {
	// Table 1's "patch application point" column: allocation for buffer
	// overflow and uninitialized read, deallocation for the rest.
	atAlloc := map[Type]bool{
		BufferOverflow: true,
		UninitRead:     true,
		DanglingWrite:  false,
		DanglingRead:   false,
		DoubleFree:     false,
	}
	for b, want := range atAlloc {
		if b.AtAllocation() != want {
			t.Errorf("%v.AtAllocation() = %v, want %v", b, b.AtAllocation(), want)
		}
	}
}

func TestReadTypeClassification(t *testing.T) {
	// §4.2: only dangling read and uninitialized read need the binary
	// search; the others are identified directly from evidence.
	for _, b := range All {
		want := b == DanglingRead || b == UninitRead
		if b.ReadType() != want {
			t.Errorf("%v.ReadType() = %v, want %v", b, b.ReadType(), want)
		}
	}
}
