package monitor

import (
	"testing"

	"firstaid/internal/proc"
	"firstaid/internal/telemetry"
)

// scriptedDetector is a pluggable Detector driven by a per-call fault
// script: entry i is returned by the i-th Check (nil past the end).
type scriptedDetector struct {
	name   string
	script []*proc.Fault
	calls  int
}

func (d *scriptedDetector) Name() string { return d.name }

func (d *scriptedDetector) Check() *proc.Fault {
	d.calls++
	if d.calls <= len(d.script) {
		return d.script[d.calls-1]
	}
	return nil
}

func detFault(msg string) *proc.Fault {
	return &proc.Fault{Kind: proc.HeapCorruption, Msg: msg}
}

// TestDetectorFaultPaths drives RunEvent through a stream of events with
// custom detectors plugged in and checks, per scenario, which event (if
// any) the detector converts into a fault.
func TestDetectorFaultPaths(t *testing.T) {
	cases := []struct {
		name      string
		detectors func() []Detector
		events    int
		wantFault map[int]string // event seq -> expected fault Msg
		wantCount int            // monitor Faults() after the stream
	}{
		{
			name:      "no detectors, clean stream",
			detectors: func() []Detector { return nil },
			events:    4,
			wantFault: map[int]string{},
		},
		{
			name: "nil-fault detector is a no-op",
			detectors: func() []Detector {
				return []Detector{&scriptedDetector{name: "quiet"}}
			},
			events:    4,
			wantFault: map[int]string{},
		},
		{
			name: "detector fires mid-stream",
			detectors: func() []Detector {
				return []Detector{&scriptedDetector{
					name:   "midstream",
					script: []*proc.Fault{nil, nil, detFault("leak at event 2")},
				}}
			},
			events:    5,
			wantFault: map[int]string{2: "leak at event 2"},
			wantCount: 1,
		},
		{
			name: "first firing detector wins",
			detectors: func() []Detector {
				return []Detector{
					&scriptedDetector{name: "first", script: []*proc.Fault{detFault("from first")}},
					&scriptedDetector{name: "second", script: []*proc.Fault{detFault("from second")}},
				}
			},
			events:    1,
			wantFault: map[int]string{0: "from first"},
			wantCount: 1,
		},
		{
			name: "detector fires repeatedly",
			detectors: func() []Detector {
				return []Detector{&scriptedDetector{
					name:   "flappy",
					script: []*proc.Fault{detFault("a"), nil, detFault("b")},
				}}
			},
			events:    3,
			wantFault: map[int]string{0: "a", 2: "b"},
			wantCount: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, p, _ := setup(t)
			m.Detectors = tc.detectors()
			for seq := 0; seq < tc.events; seq++ {
				f := m.RunEvent(seq, func() {
					defer p.Enter("handler")()
					p.Free(p.Malloc(16))
				})
				want, wantHit := tc.wantFault[seq]
				switch {
				case f == nil && wantHit:
					t.Fatalf("event %d: expected fault %q, got none", seq, want)
				case f != nil && !wantHit:
					t.Fatalf("event %d: unexpected fault %v", seq, f)
				case f != nil:
					if f.Msg != want {
						t.Fatalf("event %d: fault %q, want %q", seq, f.Msg, want)
					}
					if f.Event != seq {
						t.Fatalf("event %d: fault stamped with event %d", seq, f.Event)
					}
				}
			}
			if m.Faults() != tc.wantCount {
				t.Fatalf("Faults() = %d, want %d", m.Faults(), tc.wantCount)
			}
		})
	}
}

// TestDetectorsSkippedAfterTrap: a trapped handler fault takes precedence —
// detectors must not run (and cannot mask or replace the original fault).
func TestDetectorsSkippedAfterTrap(t *testing.T) {
	m, p, _ := setup(t)
	det := &scriptedDetector{name: "shadow", script: []*proc.Fault{detFault("detector noise")}}
	m.Detectors = []Detector{det}
	f := m.RunEvent(9, func() {
		defer p.Enter("handler")()
		p.Assert(false, "handler trap")
	})
	if f == nil || f.Kind != proc.AssertFailure {
		t.Fatalf("fault = %v, want the handler's assert", f)
	}
	if det.calls != 0 {
		t.Fatalf("detector ran %d time(s) after a trapped fault", det.calls)
	}
}

// TestScanEachEventToggle verifies the scan-per-event switch both ways via
// the monitor's own telemetry: scans happen iff the toggle is on.
func TestScanEachEventToggle(t *testing.T) {
	for _, scan := range []bool{false, true} {
		m, p, _ := setup(t)
		reg := telemetry.NewRegistry()
		m.SetMetrics(reg)
		m.ScanEachEvent = scan
		const events = 3
		for seq := 0; seq < events; seq++ {
			if f := m.RunEvent(seq, func() {
				defer p.Enter("handler")()
				p.Free(p.Malloc(8))
			}); f != nil {
				t.Fatal(f)
			}
		}
		wantScans := uint64(0)
		if scan {
			wantScans = events
		}
		if got := reg.Counter("monitor.scans").Value(); got != wantScans {
			t.Fatalf("ScanEachEvent=%v: scans = %d, want %d", scan, got, wantScans)
		}
		if got := reg.Counter("monitor.events").Value(); got != events {
			t.Fatalf("events counter = %d, want %d", got, events)
		}
	}
}

// TestMonitorFaultCounter: the telemetry fault counter tracks Faults().
func TestMonitorFaultCounter(t *testing.T) {
	m, p, _ := setup(t)
	reg := telemetry.NewRegistry()
	m.SetMetrics(reg)
	m.RunEvent(0, func() {
		defer p.Enter("handler")()
		p.Assert(false, "boom")
	})
	m.RunEvent(1, func() {
		defer p.Enter("handler")()
		p.Free(p.Malloc(8))
	})
	if got := reg.Counter("monitor.faults").Value(); got != 1 {
		t.Fatalf("faults counter = %d, want 1", got)
	}
	if m.Faults() != 1 {
		t.Fatalf("Faults() = %d", m.Faults())
	}
}
