// Package monitor implements First-Aid's error monitors (paper §3).
//
// The cheapest monitors — and the ones the paper's implementation uses —
// catch assertion failures and exceptions raised from the kernel. Here
// those are the proc.Fault traps (access violations, allocator aborts,
// failed asserts) unwinding out of an event handler. In diagnostic mode the
// monitor additionally runs the allocator extension's canary scan after
// every event, converting silent corruption into manifestation records
// while execution context is still fresh.
package monitor

import (
	"fmt"

	"firstaid/internal/allocext"
	"firstaid/internal/heap"
	"firstaid/internal/proc"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// Detector is a pluggable error detector, the paper's hook for
// "more sophisticated error detectors such as AccMon … if they incur low
// overhead" (§3). Detectors run after each successfully-processed event;
// a non-nil fault is treated exactly like a trapped exception.
type Detector interface {
	// Name identifies the detector in fault messages.
	Name() string
	// Check inspects the machine and reports a detected error, or nil.
	Check() *proc.Fault
}

// Monitor wraps event execution with error detection.
type Monitor struct {
	Ext *allocext.Ext

	// ScanEachEvent enables the per-event canary scan (diagnostic
	// re-execution). Off during normal runs to keep overhead low.
	ScanEachEvent bool

	// Detectors are additional pluggable error detectors.
	Detectors []Detector

	faults int
	events int

	// Pre-resolved instruments; nil (the default) discards updates.
	metEvents *telemetry.Counter
	metFaults *telemetry.Counter
	metScans  *telemetry.Counter

	trc trace.Emitter
}

// New returns a monitor over the given allocator extension.
func New(ext *allocext.Ext) *Monitor { return &Monitor{Ext: ext} }

// SetMetrics wires the monitor to a telemetry registry (nil detaches).
func (m *Monitor) SetMetrics(reg *telemetry.Registry) {
	m.metEvents = reg.Counter("monitor.events")
	m.metFaults = reg.Counter("monitor.faults")
	m.metScans = reg.Counter("monitor.scans")
}

// SetTracer wires the monitor to an execution-trace emitter (the zero
// Emitter detaches). Every trapped fault becomes a KTrap record carrying
// the fault kind and address.
func (m *Monitor) SetTracer(em trace.Emitter) { m.trc = em }

// RunEvent executes fn (one event handler), returning the trapped fault, if
// any. The event's replay sequence number is stamped into the fault.
func (m *Monitor) RunEvent(seq int, fn func()) *proc.Fault {
	m.events++
	m.metEvents.Inc()
	f := proc.Catch(fn)
	if f != nil && f.Access {
		// An unmapped-page trap may be a sampled guard-page hit: classify
		// it against the guard tier's live and quarantined slots. A hit is
		// detection *at the faulting access* — zero propagation distance —
		// and carries the exact call-site evidence diagnosis needs to skip
		// its phase-1 checkpoint search.
		if hit, ok := m.Ext.GuardHit(f.Addr, f.AccessLen, f.AccessWrite); ok {
			f.GuardBug = hit.Bug
			f.GuardSite = hit.Site
			f.GuardClock = hit.Clock
			f.Early = true
		}
	}
	if m.ScanEachEvent {
		m.Ext.Scan()
		m.metScans.Inc()
	}
	if f == nil {
		// Eager validation of sensitive regions: corruption of a protected
		// object traps at the event that caused it (the extension gates the
		// check on mode, so probe replays stay undisturbed).
		if v := m.Ext.CheckProtected(); v != nil {
			f = &proc.Fault{
				Kind:  proc.HeapCorruption,
				Addr:  v.Addr,
				Msg:   v.Detail,
				Instr: "protected-region",
				Stack: []string{"protected-region"},
				Early: true,
			}
		}
	}
	if f == nil {
		for _, d := range m.Detectors {
			if df := d.Check(); df != nil {
				f = df
				break
			}
		}
	}
	if f != nil {
		f.Event = seq
		m.faults++
		m.metFaults.Inc()
		m.trc.Emit(trace.KTrap, uint64(f.Kind), uint64(f.Addr))
	}
	return f
}

// Faults returns the number of faults detected so far.
func (m *Monitor) Faults() int { return m.faults }

// HeapIntegrity is a Detector that walks the allocator's boundary tags
// every Every events, converting silent heap corruption into a detected
// error at (or near) the event that caused it — shortening the
// error-propagation distance the way the paper's optional detectors do.
// The walk's cost is charged to the process clock so the overhead of
// deploying the detector is visible in measurements.
type HeapIntegrity struct {
	H *heap.Heap
	P *proc.Proc
	// Every is the check cadence in events (default 1).
	Every int

	calls int
}

// Name implements Detector.
func (d *HeapIntegrity) Name() string { return "heap-integrity" }

// Check implements Detector.
func (d *HeapIntegrity) Check() *proc.Fault {
	d.calls++
	every := d.Every
	if every <= 0 {
		every = 1
	}
	if d.calls%every != 0 {
		return nil
	}
	// Model the walk's cost: ~2 cycles per chunk visited.
	chunks := 0
	err := d.H.Walk(func(heap.Chunk) bool { chunks++; return true })
	if d.P != nil {
		d.P.Tick(uint64(2 * chunks))
	}
	if err == nil {
		err = d.H.CheckIntegrity()
	}
	if err != nil {
		return &proc.Fault{
			Kind:  proc.HeapCorruption,
			Msg:   fmt.Sprintf("%s detector: %v", d.Name(), err),
			Instr: d.Name(),
			Stack: []string{d.Name()},
		}
	}
	return nil
}
