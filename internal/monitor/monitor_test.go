package monitor

import (
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/canary"
	"firstaid/internal/heap"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/vmem"
)

func setup(t testing.TB) (*Monitor, *proc.Proc, *allocext.Ext) {
	t.Helper()
	mem := vmem.New(16 << 20)
	h := heap.New(mem)
	sites := callsite.NewTable()
	ext := allocext.New(h, sites)
	p := proc.New(mem, ext)
	p.Sites = sites
	return New(ext), p, ext
}

func TestRunEventSuccess(t *testing.T) {
	m, p, _ := setup(t)
	f := m.RunEvent(7, func() {
		defer p.Enter("handler")()
		a := p.Malloc(32)
		p.Free(a)
	})
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if m.Faults() != 0 {
		t.Fatal("fault counted on success")
	}
}

func TestRunEventCatchesAndStampsFault(t *testing.T) {
	m, p, _ := setup(t)
	f := m.RunEvent(42, func() {
		defer p.Enter("handler")()
		p.Assert(false, "boom")
	})
	if f == nil {
		t.Fatal("fault not caught")
	}
	if f.Event != 42 {
		t.Fatalf("event = %d", f.Event)
	}
	if f.Kind != proc.AssertFailure {
		t.Fatalf("kind = %v", f.Kind)
	}
	if m.Faults() != 1 {
		t.Fatalf("Faults = %d", m.Faults())
	}
}

func TestScanEachEventFindsCorruptionPromptly(t *testing.T) {
	m, p, ext := setup(t)
	ext.SetMode(allocext.ModeDiagnostic)
	ext.SetChanges(allocext.NewChangeSet().AddExposing(mmbug.BufferOverflow, nil))
	m.ScanEachEvent = true

	var a vmem.Addr
	if f := m.RunEvent(0, func() {
		defer p.Enter("handler")()
		a = p.Malloc(16)
	}); f != nil {
		t.Fatal(f)
	}
	// Event 1 overflows into the canary padding; the monitor's per-event
	// scan must record the manifestation even though nothing faulted.
	if f := m.RunEvent(1, func() {
		defer p.Enter("handler")()
		p.Store(a+16, []byte{1, 2, 3, 4})
	}); f != nil {
		t.Fatal(f)
	}
	if !ext.Manifests().Has(mmbug.BufferOverflow) {
		t.Fatal("per-event scan missed the corruption")
	}
}

func TestScanDisabledByDefault(t *testing.T) {
	m, p, ext := setup(t)
	ext.SetMode(allocext.ModeDiagnostic)
	ext.SetChanges(allocext.NewChangeSet().AddExposing(mmbug.BufferOverflow, nil))

	var a vmem.Addr
	m.RunEvent(0, func() {
		defer p.Enter("handler")()
		a = p.Malloc(16)
		p.Store(a+16, []byte{0xFF}) // corrupt the pad canary
	})
	if ext.Manifests().Has(mmbug.BufferOverflow) {
		t.Fatal("scan ran although ScanEachEvent is off")
	}
	_ = canary.Pad
}
