// Package patch implements First-Aid's runtime patches and the per-program
// patch pool (paper §2 "Patch generation and application", §3 "Patch
// management").
//
// A runtime patch is a pair of a preventive environmental change (derived
// from the diagnosed bug class) and a patch application point (the 3-level
// allocation or deallocation call-site of the bug-triggering objects). The
// pool stores patches persistently, keyed by call-site signature, so they
// protect the current process, subsequent runs of the same program, and
// other processes running the same executable.
package patch

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// Patch is one runtime patch.
type Patch struct {
	ID        int          `json:"id"`
	Bug       mmbug.Type   `json:"bug"`
	Site      callsite.Key `json:"site"`    // application point signature
	AtAlloc   bool         `json:"atAlloc"` // allocation vs deallocation point
	Validated bool         `json:"validated"`
	Revoked   bool         `json:"revoked"`
	Origin    string       `json:"origin,omitempty"` // free-form provenance for the report
}

// ChangeName returns the paper's name for the patch's preventive change.
func (p *Patch) ChangeName() string { return p.Bug.PatchName() }

func (p *Patch) String() string {
	state := ""
	if p.Revoked {
		state = " [revoked]"
	} else if p.Validated {
		state = " [validated]"
	}
	return fmt.Sprintf("patch %d: %s on callsite %s for %v%s", p.ID, p.ChangeName(), p.Site, p.Bug, state)
}

// AllocAction returns the allocation-time preventive action of the patch.
func (p *Patch) AllocAction() (allocext.AllocAction, bool) {
	if !p.AtAlloc || p.Revoked {
		return allocext.AllocAction{}, false
	}
	return allocext.PreventiveAlloc(p.Bug)
}

// FreeAction returns the deallocation-time preventive action of the patch.
func (p *Patch) FreeAction() (allocext.FreeAction, bool) {
	if p.AtAlloc || p.Revoked {
		return allocext.FreeAction{}, false
	}
	return allocext.PreventiveFree(p.Bug)
}

// New creates a patch for the diagnosed bug class at the given application
// point. The application-point side (allocation vs deallocation) follows
// Table 1.
func New(bug mmbug.Type, site callsite.Key) *Patch {
	return &Patch{Bug: bug, Site: site, AtAlloc: bug.AtAllocation()}
}

// Pool is the per-program patch store — the paper's "central patch pool",
// shared by every process running the same program. All methods are safe
// for concurrent use: one process may be diagnosing and adding a patch
// while another process (or a parallel validation goroutine) queries or
// revokes.
type Pool struct {
	Program string

	mu      sync.Mutex
	patches []*Patch
	nextID  int

	// gen counts pool mutations (adds, revives, revocations, validation
	// flags). Bindings poll it on every allocation to decide whether their
	// resolution maps are stale, so it must be readable without taking the
	// pool lock: with a fleet of workers sharing one pool, a locked read
	// per malloc would serialize every machine on this mutex.
	gen atomic.Uint64

	// trc records pool mutations in the execution trace. Written only
	// under mu (SetTracer takes the lock), so mutating methods may read it
	// while holding mu without a data race.
	trc trace.Emitter
}

// SetTracer wires the pool to an execution-trace emitter (the zero
// Emitter detaches). Adds, revocations and validation flags become trace
// records carrying the patch ID and the post-mutation pool generation.
func (pl *Pool) SetTracer(em trace.Emitter) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.trc = em
}

// NewPool creates an empty pool for the named program.
func NewPool(program string) *Pool { return &Pool{Program: program, nextID: 1} }

// Add inserts a patch, assigning its ID. Duplicate (bug, site) pairs are
// coalesced: re-adding revives a revoked patch rather than stacking
// duplicates.
func (pl *Pool) Add(p *Patch) *Patch {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, old := range pl.patches {
		if old.Bug == p.Bug && old.Site == p.Site {
			old.Revoked = false
			if old.Origin == "" {
				old.Origin = p.Origin
			}
			pl.trc.Emit(trace.KPatchAdd, uint64(old.ID), pl.gen.Add(1))
			return old
		}
	}
	p.ID = pl.nextID
	pl.nextID++
	pl.patches = append(pl.patches, p)
	pl.trc.Emit(trace.KPatchAdd, uint64(p.ID), pl.gen.Add(1))
	return p
}

// Revoke marks the patch with the given ID revoked (validation failure).
func (pl *Pool) Revoke(id int) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, p := range pl.patches {
		if p.ID == id {
			p.Revoked = true
			pl.trc.Emit(trace.KPatchRevoke, uint64(id), pl.gen.Add(1))
			return true
		}
	}
	return false
}

// MarkValidated flags the patch as having passed validation.
func (pl *Pool) MarkValidated(id int) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, p := range pl.patches {
		if p.ID == id {
			p.Validated = true
			pl.trc.Emit(trace.KPatchValidate, uint64(id), pl.gen.Add(1))
			return true
		}
	}
	return false
}

// Active returns the non-revoked patches, ID-ordered.
func (pl *Pool) Active() []*Patch {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	var out []*Patch
	for _, p := range pl.patches {
		if !p.Revoked {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns every patch including revoked ones, ID-ordered.
func (pl *Pool) All() []*Patch {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := append([]*Patch(nil), pl.patches...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of patches (including revoked).
func (pl *Pool) Len() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.patches)
}

// Get returns a value copy of the patch with the given ID — a race-free
// read for report generation while other processes may be mutating flags.
func (pl *Pool) Get(id int) (Patch, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, p := range pl.patches {
		if p.ID == id {
			return *p, true
		}
	}
	return Patch{}, false
}

// ActiveSnapshot returns value copies of the non-revoked patches,
// ID-ordered — a race-free view for binding resolution.
func (pl *Pool) ActiveSnapshot() []Patch {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	var out []Patch
	for _, p := range pl.patches {
		if !p.Revoked {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Generation returns a counter that changes whenever the pool's content
// may have changed; Bound polls it on every allocation to refresh its
// resolution maps. It is a single atomic load — no lock — because in a
// fleet every worker's allocator fast path reads it concurrently.
func (pl *Pool) Generation() uint64 { return pl.gen.Load() }

// Clone returns a deep copy of the pool — a frozen view for a forked
// machine (parallel validation reads patch actions while the live pool may
// gain or lose patches).
func (pl *Pool) Clone() *Pool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	cp := &Pool{Program: pl.Program, nextID: pl.nextID}
	for _, p := range pl.patches {
		q := *p
		cp.patches = append(cp.patches, &q)
	}
	return cp
}

// --- persistence ---------------------------------------------------------------

type poolFile struct {
	Program string   `json:"program"`
	NextID  int      `json:"nextId"`
	Patches []*Patch `json:"patches"`
}

// Save writes the pool as JSON.
func (pl *Pool) Save(w io.Writer) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(poolFile{Program: pl.Program, NextID: pl.nextID, Patches: pl.patches})
}

// Load reads a pool written by Save.
func Load(r io.Reader) (*Pool, error) {
	var pf poolFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("patch: decoding pool: %w", err)
	}
	pl := &Pool{Program: pf.Program, nextID: pf.NextID, patches: pf.Patches}
	if pl.nextID < 1 {
		pl.nextID = 1
	}
	return pl, nil
}

// SaveFile writes the pool to path.
func (pl *Pool) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pl.Save(f)
}

// LoadFile reads a pool from path.
func LoadFile(path string) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// --- binding to a process -------------------------------------------------------

// Bound adapts a Pool to one process's call-site table, implementing
// allocext.PatchSource. In normal mode the allocator extension queries it
// on every allocation and deallocation; resolution maps are rebuilt when
// the pool changes.
type Bound struct {
	pool  *Pool
	table *callsite.Table

	gen     uint64 // pool generation observed at last rebuild
	byAlloc map[callsite.ID]*Patch
	byFree  map[callsite.ID]*Patch
	dirty   bool

	// Pre-resolved instruments; nil (the default) discards updates.
	allocHits *telemetry.Counter
	freeHits  *telemetry.Counter
}

// SetMetrics wires the binding to a telemetry registry (nil detaches):
// every allocation or deallocation that resolves to an active patch counts
// as a pool hit.
func (b *Bound) SetMetrics(reg *telemetry.Registry) {
	b.allocHits = reg.Counter("patch.alloc_hits")
	b.freeHits = reg.Counter("patch.free_hits")
}

// Bind attaches the pool to a call-site table.
func (pl *Pool) Bind(table *callsite.Table) *Bound {
	return &Bound{pool: pl, table: table, dirty: true}
}

// Invalidate forces re-resolution (after Add/Revoke).
func (b *Bound) Invalidate() { b.dirty = true }

func (b *Bound) resolve() {
	// Read the generation BEFORE snapshotting: a mutation that lands while
	// the maps are being rebuilt then leaves b.gen behind the pool's, and
	// the next resolution rebuilds again instead of serving a stale view.
	gen := b.pool.Generation()
	if !b.dirty && b.gen == gen {
		return
	}
	b.byAlloc = make(map[callsite.ID]*Patch)
	b.byFree = make(map[callsite.ID]*Patch)
	for _, snap := range b.pool.ActiveSnapshot() {
		p := snap // value copy: immune to concurrent pool mutation
		id := b.table.Intern(p.Site)
		if p.AtAlloc {
			b.byAlloc[id] = &p
		} else {
			b.byFree[id] = &p
		}
	}
	b.gen = gen
	b.dirty = false
}

// AllocPatch implements allocext.PatchSource.
func (b *Bound) AllocPatch(site callsite.ID) (allocext.AllocAction, bool) {
	b.resolve()
	if p, ok := b.byAlloc[site]; ok {
		if act, ok := p.AllocAction(); ok {
			b.allocHits.Inc()
			return act, true
		}
	}
	return allocext.AllocAction{}, false
}

// FreePatch implements allocext.PatchSource.
func (b *Bound) FreePatch(site callsite.ID) (allocext.FreeAction, bool) {
	b.resolve()
	if p, ok := b.byFree[site]; ok {
		if act, ok := p.FreeAction(); ok {
			b.freeHits.Inc()
			return act, true
		}
	}
	return allocext.FreeAction{}, false
}

// PatchAt returns the active patch bound to the given interned site, on
// either side.
func (b *Bound) PatchAt(site callsite.ID) (*Patch, bool) {
	b.resolve()
	if p, ok := b.byAlloc[site]; ok {
		return p, true
	}
	p, ok := b.byFree[site]
	return p, ok
}

// Sites returns the interned application points of all active patches.
func (b *Bound) Sites() []callsite.ID {
	b.resolve()
	var out []callsite.ID
	for id := range b.byAlloc {
		out = append(out, id)
	}
	for id := range b.byFree {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
