package patch

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
)

var (
	siteA = callsite.Key{"xmalloc", "parse_request", "handle"}
	siteB = callsite.Key{"xfree", "cleanup", "handle"}
)

func TestNewPatchSides(t *testing.T) {
	p := New(mmbug.BufferOverflow, siteA)
	if !p.AtAlloc {
		t.Fatal("overflow patch must apply at allocation")
	}
	if a, ok := p.AllocAction(); !ok || !a.Pad {
		t.Fatalf("alloc action = %+v, %v", a, ok)
	}
	if _, ok := p.FreeAction(); ok {
		t.Fatal("overflow patch has no free action")
	}

	q := New(mmbug.DanglingRead, siteB)
	if q.AtAlloc {
		t.Fatal("dangling-read patch must apply at deallocation")
	}
	if a, ok := q.FreeAction(); !ok || !a.Delay {
		t.Fatalf("free action = %+v, %v", a, ok)
	}

	z := New(mmbug.UninitRead, siteA)
	if a, ok := z.AllocAction(); !ok || !a.Zero {
		t.Fatalf("uninit action = %+v, %v", a, ok)
	}
}

func TestRevokedPatchHasNoActions(t *testing.T) {
	p := New(mmbug.BufferOverflow, siteA)
	p.Revoked = true
	if _, ok := p.AllocAction(); ok {
		t.Fatal("revoked patch still acts")
	}
}

func TestPoolAddAssignsIDsAndCoalesces(t *testing.T) {
	pl := NewPool("squid")
	p1 := pl.Add(New(mmbug.BufferOverflow, siteA))
	p2 := pl.Add(New(mmbug.DanglingRead, siteB))
	if p1.ID == 0 || p1.ID == p2.ID {
		t.Fatalf("ids: %d %d", p1.ID, p2.ID)
	}
	// Re-adding the same (bug, site) coalesces.
	p3 := pl.Add(New(mmbug.BufferOverflow, siteA))
	if p3 != p1 || pl.Len() != 2 {
		t.Fatal("duplicate not coalesced")
	}
	// Re-adding revives a revoked patch.
	pl.Revoke(p1.ID)
	if len(pl.Active()) != 1 {
		t.Fatal("revoke failed")
	}
	pl.Add(New(mmbug.BufferOverflow, siteA))
	if len(pl.Active()) != 2 {
		t.Fatal("revive failed")
	}
}

func TestRevokeAndValidateUnknownIDs(t *testing.T) {
	pl := NewPool("x")
	if pl.Revoke(99) || pl.MarkValidated(99) {
		t.Fatal("unknown id accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pl := NewPool("apache")
	p1 := pl.Add(New(mmbug.DanglingRead, siteB))
	pl.MarkValidated(p1.ID)
	p2 := pl.Add(New(mmbug.BufferOverflow, siteA))
	pl.Revoke(p2.ID)

	var buf bytes.Buffer
	if err := pl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "apache" || got.Len() != 2 {
		t.Fatalf("loaded: %q len %d", got.Program, got.Len())
	}
	active := got.Active()
	if len(active) != 1 || active[0].Bug != mmbug.DanglingRead || !active[0].Validated {
		t.Fatalf("active after load: %+v", active)
	}
	// IDs continue from where they left off.
	p3 := got.Add(New(mmbug.DoubleFree, callsite.Key{"f", "g", "h"}))
	if p3.ID != 3 {
		t.Fatalf("next id = %d", p3.ID)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.json")
	pl := NewPool("cvs")
	pl.Add(New(mmbug.DoubleFree, siteB))
	if err := pl.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Active()[0].Bug != mmbug.DoubleFree {
		t.Fatal("file round trip lost data")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBoundResolution(t *testing.T) {
	pl := NewPool("squid")
	pl.Add(New(mmbug.BufferOverflow, siteA))
	tab := callsite.NewTable()
	b := pl.Bind(tab)

	idA := tab.Intern(siteA)
	if a, ok := b.AllocPatch(idA); !ok || !a.Pad {
		t.Fatalf("AllocPatch = %+v, %v", a, ok)
	}
	other := tab.Intern(callsite.Key{"other", "", ""})
	if _, ok := b.AllocPatch(other); ok {
		t.Fatal("unpatched site matched")
	}
	if _, ok := b.FreePatch(idA); ok {
		t.Fatal("alloc patch matched on free side")
	}

	// Pool growth is picked up without explicit invalidation.
	pl.Add(New(mmbug.DanglingRead, siteB))
	idB := tab.Intern(siteB)
	if a, ok := b.FreePatch(idB); !ok || !a.Delay {
		t.Fatalf("new patch not resolved: %+v %v", a, ok)
	}

	// Revocation requires Invalidate (length unchanged).
	pl.Revoke(1)
	b.Invalidate()
	if _, ok := b.AllocPatch(idA); ok {
		t.Fatal("revoked patch still resolves")
	}

	if p, ok := b.PatchAt(idB); !ok || p.Bug != mmbug.DanglingRead {
		t.Fatalf("PatchAt = %+v, %v", p, ok)
	}
	sites := b.Sites()
	if len(sites) != 1 || sites[0] != idB {
		t.Fatalf("Sites = %v", sites)
	}
}

func TestBoundInternsUnseenSites(t *testing.T) {
	// A pool loaded from disk may reference call-sites the new process
	// has not hit yet; binding must intern them so the first hit matches.
	pl := NewPool("squid")
	pl.Add(New(mmbug.BufferOverflow, siteA))
	tab := callsite.NewTable()
	b := pl.Bind(tab)
	b.resolve()
	if tab.Lookup(siteA) == 0 {
		t.Fatal("patch site not interned at bind time")
	}
}

func TestPatchString(t *testing.T) {
	p := New(mmbug.BufferOverflow, siteA)
	p.ID = 3
	s := p.String()
	for _, want := range []string{"patch 3", "add padding", "buffer overflow", "xmalloc"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// Property: save/load is lossless for arbitrary pools.
func TestQuickPoolRoundTrip(t *testing.T) {
	bugs := []mmbug.Type{mmbug.BufferOverflow, mmbug.DanglingRead, mmbug.DanglingWrite, mmbug.DoubleFree, mmbug.UninitRead}
	f := func(names []string, revoke []bool) bool {
		pl := NewPool("prog")
		for i, n := range names {
			p := pl.Add(New(bugs[i%len(bugs)], callsite.Key{n, "mid", "outer"}))
			if i < len(revoke) && revoke[i] {
				pl.Revoke(p.ID)
			}
		}
		var buf bytes.Buffer
		if err := pl.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		if got.Len() != pl.Len() || len(got.Active()) != len(pl.Active()) {
			return false
		}
		for i, p := range pl.All() {
			q := got.All()[i]
			if p.ID != q.ID || p.Bug != q.Bug || p.Site != q.Site || p.Revoked != q.Revoked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationCountsEveryMutation(t *testing.T) {
	pl := NewPool("apache")
	g0 := pl.Generation()

	p := pl.Add(New(mmbug.BufferOverflow, siteA))
	g1 := pl.Generation()
	if g1 == g0 {
		t.Fatal("Add did not bump generation")
	}
	if !pl.MarkValidated(p.ID) {
		t.Fatal("MarkValidated failed")
	}
	g2 := pl.Generation()
	if g2 == g1 {
		t.Fatal("MarkValidated did not bump generation")
	}
	if !pl.Revoke(p.ID) {
		t.Fatal("Revoke failed")
	}
	g3 := pl.Generation()
	if g3 == g2 {
		t.Fatal("Revoke did not bump generation")
	}
	// Reviving via a duplicate Add is a mutation too.
	pl.Add(New(mmbug.BufferOverflow, siteA))
	if pl.Generation() == g3 {
		t.Fatal("reviving Add did not bump generation")
	}
	// Misses leave the counter alone.
	before := pl.Generation()
	pl.Revoke(999)
	pl.MarkValidated(999)
	if pl.Generation() != before {
		t.Fatal("failed Revoke/MarkValidated bumped generation")
	}
}

func TestSecondBindingSeesLaterPatches(t *testing.T) {
	// Two bindings of one pool model two fleet workers: a patch added
	// after both have resolved (one worker's diagnosis) must show up at
	// the other worker's next allocation without an explicit Invalidate.
	pl := NewPool("apache")
	ta, tb := callsite.NewTable(), callsite.NewTable()
	ba, bb := pl.Bind(ta), pl.Bind(tb)

	if _, ok := ba.AllocPatch(ta.Intern(siteA)); ok {
		t.Fatal("empty pool resolved a patch")
	}
	if _, ok := bb.AllocPatch(tb.Intern(siteA)); ok {
		t.Fatal("empty pool resolved a patch")
	}

	pl.Add(New(mmbug.BufferOverflow, siteA))
	if act, ok := ba.AllocPatch(ta.Intern(siteA)); !ok || !act.Pad {
		t.Fatalf("binding A missed the new patch: %+v %v", act, ok)
	}
	if act, ok := bb.AllocPatch(tb.Intern(siteA)); !ok || !act.Pad {
		t.Fatalf("binding B missed the new patch: %+v %v", act, ok)
	}
}
