// Package proc implements the simulated process on which First-Aid
// operates.
//
// A simulated program is written the way a C program is: it allocates and
// frees explicitly, addresses memory by integer pointer, keeps all mutable
// state in the heap (rooted through a small register file), and maintains a
// virtual call stack so that every allocation and deallocation carries a
// 3-level call-site signature. Memory errors are trapped the way hardware
// and libc would trap them — access violations, allocator aborts, failed
// assertions — and surface as Fault values, which is what First-Aid's
// error monitors catch ("our current implementation is based on assertion
// failures and exceptions", paper §3).
//
// All memory-management requests are routed through an MM implementation;
// the First-Aid allocator extension (package allocext) is one, the raw
// allocator pass-through (RawMM) is the baseline without First-Aid.
package proc

import (
	"errors"
	"fmt"

	"firstaid/internal/callsite"
	"firstaid/internal/heap"
	"firstaid/internal/mmbug"
	"firstaid/internal/trace"
	"firstaid/internal/vmem"
)

// CyclesPerSecond converts the simulated cycle clock to simulated seconds.
// At 10 MHz, the paper's 200 ms checkpoint interval is 2,000,000 cycles.
const CyclesPerSecond = 10_000_000

// Operation costs in cycles, loosely modelling a 2005-era core so that the
// relative weight of allocator work, memory traffic and checkpointing
// matches the paper's overhead breakdown.
const (
	costMalloc = 150
	costFree   = 120
	costAccess = 12 // per access, plus costPerByte
	costByte   = 1  // per 8 bytes accessed
	costEnter  = 4
)

// FaultKind classifies a trap.
type FaultKind int

// Trap classes.
const (
	// AccessViolation: a load or store touched unmapped memory (SIGSEGV).
	AccessViolation FaultKind = iota
	// AssertFailure: the program's own integrity assertion failed.
	AssertFailure
	// HeapCorruption: the allocator found its metadata destroyed (the
	// glibc "corrupted double-linked list" abort).
	HeapCorruption
	// BadFree: free of a pointer that is not an allocated object.
	BadFree
	// OutOfMemory: the address space limit was exceeded.
	OutOfMemory
)

func (k FaultKind) String() string {
	switch k {
	case AccessViolation:
		return "access violation"
	case AssertFailure:
		return "assertion failure"
	case HeapCorruption:
		return "heap corruption"
	case BadFree:
		return "invalid free"
	case OutOfMemory:
		return "out of memory"
	}
	return "unknown fault"
}

// Fault is a trapped error. It carries the virtual stack and instruction
// label at the trap point, the raw material of the core dump in First-Aid's
// bug report.
type Fault struct {
	Kind  FaultKind
	Addr  vmem.Addr
	Msg   string
	Stack []string // outermost first
	Instr string   // instruction label at the fault
	Clock uint64   // simulated cycle time of the fault
	Event int      // replay cursor of the event being processed, set by the supervisor
	// Early marks a fault raised by the eager validation of a protected
	// (sensitive-region) object: the corruption was trapped at the event
	// that caused it rather than at a later use or checkpoint scan.
	Early bool

	// Access marks an access violation that trapped on an unmapped page
	// (vmem.AccessError): the fault is the access itself, not a
	// consequence observed later. AccessWrite/AccessLen carry the access
	// shape for the guard tier's hit classification.
	Access      bool
	AccessWrite bool
	AccessLen   int

	// Guard* are filled by the monitor when the access classifies as a
	// guarded-slot hit: the manifested class, the implicated call-site
	// (alloc site for overflow, free site for dangling) and the process
	// clock of that decisive operation. Diagnosis uses them as evidence
	// to skip the phase-1 checkpoint search.
	GuardBug   mmbug.Type
	GuardSite  callsite.ID
	GuardClock uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%v at %s (addr %#x): %s", f.Kind, f.Instr, f.Addr, f.Msg)
}

// MM is the memory-management interface programs allocate through. The
// site argument is the interned 3-level call-site of the request.
type MM interface {
	Malloc(n uint32, site callsite.ID) (vmem.Addr, error)
	Free(p vmem.Addr, site callsite.ID) error
}

// AccessChecker observes every program load and store; the allocator
// extension implements it in validation mode to trace illegal accesses
// (the paper uses Pin for this, §5).
type AccessChecker interface {
	Access(addr vmem.Addr, n int, write bool, instr string)
}

// RawMM passes requests straight to the underlying allocator — the
// configuration of a program running without First-Aid.
type RawMM struct{ H *heap.Heap }

// Malloc implements MM.
func (m RawMM) Malloc(n uint32, _ callsite.ID) (vmem.Addr, error) { return m.H.Malloc(n) }

// Free implements MM.
func (m RawMM) Free(p vmem.Addr, _ callsite.ID) error { return m.H.Free(p) }

// UserSize reports the chunk capacity (RawMM has no per-object size
// metadata, matching malloc_usable_size semantics).
func (m RawMM) UserSize(a vmem.Addr) (uint32, bool) {
	n, err := m.H.UsableSize(a)
	if err != nil {
		return 0, false
	}
	return n, true
}

// NumRoots is the size of the root register file. Roots are the only
// program state outside the virtual heap; they are saved with every
// checkpoint.
const NumRoots = 64

// State is the process state outside the heap: roots, clock and PRNG. A
// State copy plus heap.State plus a vmem snapshot is a complete checkpoint.
type State struct {
	Roots [NumRoots]uint32
	Clock uint64
	Rng   uint64
}

type frame struct {
	fn    string
	instr string
}

// Proc is a simulated process.
type Proc struct {
	Mem   *vmem.Space
	Sites *callsite.Table

	mm      MM
	checker AccessChecker
	stack   []frame
	st      State
	trc     trace.Emitter

	// siteKey/siteID memoize the last interned call-site: allocation
	// bursts issue from the same call chain back to back, and the frame
	// strings are shared literals, so the key comparison is three
	// pointer-equal string checks — no map hash, no []string copy.
	siteKey callsite.Key
	siteID  callsite.ID
	// siteMemoOff disables the memo (guard benchmarks measure the
	// un-memoized reference path against the live one).
	siteMemoOff bool
}

// New creates a process over mem whose memory requests go to mm. The
// call-site table persists across rollbacks (signatures are stable keys).
func New(mem *vmem.Space, mm MM) *Proc {
	return &Proc{
		Mem:   mem,
		Sites: callsite.NewTable(),
		mm:    mm,
		st:    State{Rng: 0x853C49E6748FEA9B},
	}
}

// SetMM swaps the memory-management layer (e.g. raw allocator vs the
// First-Aid extension, or baselines).
func (p *Proc) SetMM(mm MM) { p.mm = mm }

// SetAccessChecker installs or removes (nil) the access observer.
func (p *Proc) SetAccessChecker(c AccessChecker) { p.checker = c }

// SetTracer wires the process to an execution-trace emitter (the zero
// Emitter detaches). The process is the layer where a request's call-site
// and size are both known, so malloc/free/realloc records are emitted
// here.
func (p *Proc) SetTracer(em trace.Emitter) { p.trc = em }

// State returns a copy of the out-of-heap process state.
func (p *Proc) State() State { return p.st }

// SetState restores process state saved by State; rollback support.
func (p *Proc) SetState(s State) { p.st = s }

// Clock returns the simulated cycle time.
func (p *Proc) Clock() uint64 { return p.st.Clock }

// Tick advances the simulated clock by n cycles; programs use it to model
// computation that does not touch the heap.
func (p *Proc) Tick(n uint64) { p.st.Clock += n }

// Rand returns a deterministic pseudo-random 64-bit value from the process
// PRNG (xorshift64*); its state is part of every checkpoint so replays see
// the same sequence.
func (p *Proc) Rand() uint64 {
	x := p.st.Rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.st.Rng = x
	return x * 0x2545F4914F6CDD1D
}

// --- virtual stack -----------------------------------------------------------

// Enter pushes a stack frame and returns the matching pop:
//
//	defer p.Enter("util_ald_free")()
func (p *Proc) Enter(fn string) func() {
	p.st.Clock += costEnter
	p.stack = append(p.stack, frame{fn: fn})
	return func() { p.stack = p.stack[:len(p.stack)-1] }
}

// At labels the current instruction within the innermost frame. The label
// appears in fault reports and illegal-access traces, standing in for a
// program counter.
func (p *Proc) At(label string) {
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].instr = label
	}
}

// Stack returns a copy of the virtual stack, outermost first.
func (p *Proc) Stack() []string {
	out := make([]string, len(p.stack))
	for i, f := range p.stack {
		out[i] = f.fn
	}
	return out
}

// StackDepth returns the current stack depth.
func (p *Proc) StackDepth() int { return len(p.stack) }

// Instr returns the current instruction label, "fn:label" of the innermost
// frame.
func (p *Proc) Instr() string {
	if len(p.stack) == 0 {
		return "<no frame>"
	}
	f := p.stack[len(p.stack)-1]
	if f.instr == "" {
		return f.fn
	}
	return f.fn + ":" + f.instr
}

// Site interns the current 3-level call-site.
func (p *Proc) Site() callsite.ID {
	var k callsite.Key
	n := len(p.stack)
	for i := 0; i < callsite.Depth && i < n; i++ {
		k[i] = p.stack[n-1-i].fn
	}
	if !p.siteMemoOff && k == p.siteKey && p.siteID != 0 {
		return p.siteID
	}
	id := p.Sites.Intern(k)
	p.siteKey, p.siteID = k, id
	return id
}

// --- faults ------------------------------------------------------------------

// fault raises a trap. Traps unwind via panic and are caught by Catch at
// the event boundary, modelling a signal handler.
func (p *Proc) fault(kind FaultKind, addr vmem.Addr, msg string) {
	panic(&Fault{
		Kind:  kind,
		Addr:  addr,
		Msg:   msg,
		Stack: p.Stack(),
		Instr: p.Instr(),
		Clock: p.st.Clock,
	})
}

// Assert raises an AssertFailure trap if cond is false — the simulated
// assert(3).
func (p *Proc) Assert(cond bool, format string, args ...interface{}) {
	if !cond {
		p.fault(AssertFailure, 0, fmt.Sprintf(format, args...))
	}
}

// Catch runs fn, converting a trap into a returned *Fault. Non-fault panics
// propagate: they are bugs in the simulator, not in the simulated program.
func Catch(fn func()) (f *Fault) {
	defer func() {
		if r := recover(); r != nil {
			if ft, ok := r.(*Fault); ok {
				f = ft
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

// --- roots -------------------------------------------------------------------

// Root returns root register i.
func (p *Proc) Root(i int) uint32 { return p.st.Roots[i] }

// SetRoot stores v in root register i.
func (p *Proc) SetRoot(i int, v uint32) { p.st.Roots[i] = v }

// RootAddr returns root register i as an address.
func (p *Proc) RootAddr(i int) vmem.Addr { return p.st.Roots[i] }

// --- memory management --------------------------------------------------------

// costedMM is implemented by memory managers (the First-Aid allocator
// extension) that consume extra cycles per request; the process charges
// the drained cost to its clock so management overhead is visible in
// simulated time.
type costedMM interface {
	TakeCost() uint64
}

func (p *Proc) chargeMM() {
	if c, ok := p.mm.(costedMM); ok {
		p.st.Clock += c.TakeCost()
	}
}

// Malloc allocates n bytes through the memory-management layer; allocation
// failure traps (C programs that matter here do not check malloc returns
// for the bug classes under study, and OOM is terminal either way).
func (p *Proc) Malloc(n uint32) vmem.Addr {
	p.st.Clock += costMalloc
	site := p.Site()
	a, err := p.mm.Malloc(n, site)
	p.chargeMM()
	if err != nil {
		p.faultFromMMError(err, 0)
	}
	p.trc.Emit(trace.KMalloc, uint64(site), uint64(n))
	return a
}

// Free releases the object at a through the memory-management layer.
func (p *Proc) Free(a vmem.Addr) {
	p.st.Clock += costFree
	site := p.Site()
	err := p.mm.Free(a, site)
	p.chargeMM()
	if err != nil {
		p.faultFromMMError(err, a)
	}
	p.trc.Emit(trace.KFree, uint64(site), 0)
}

// sizedMM is implemented by memory managers that can report an object's
// user size (the allocator extension; RawMM falls back to chunk capacity).
// Realloc needs it to know how much to copy.
type sizedMM interface {
	UserSize(a vmem.Addr) (uint32, bool)
}

// ProtectingMM is implemented by memory managers that support
// Selfie-style sensitive regions: objects the application marks as
// always-canaried and eagerly validated. Protect may relocate the object
// (to gain guard pads) and returns its possibly-new address.
type ProtectingMM interface {
	Protect(a vmem.Addr, site callsite.ID) (vmem.Addr, error)
	Unprotect(a vmem.Addr, site callsite.ID)
	IsProtected(a vmem.Addr) bool
}

// Protect marks the object at a as a sensitive region. If the management
// layer does not support protection this is a no-op; otherwise the object
// may be migrated to a guarded allocation and the new address is returned.
// Programs must treat the returned address as the object's address from
// then on (the simulated API contract mirrors a relocating
// protect_region(3) call).
func (p *Proc) Protect(a vmem.Addr) vmem.Addr {
	pm, ok := p.mm.(ProtectingMM)
	if !ok || a == 0 {
		return a
	}
	p.st.Clock += costMalloc // migration is allocator work
	na, err := pm.Protect(a, p.Site())
	p.chargeMM()
	if err != nil {
		p.faultFromMMError(err, a)
	}
	return na
}

// Unprotect clears the sensitive-region mark on the object at a (no-op if
// unsupported or not protected).
func (p *Proc) Unprotect(a vmem.Addr) {
	pm, ok := p.mm.(ProtectingMM)
	if !ok || a == 0 {
		return
	}
	pm.Unprotect(a, p.Site())
	p.chargeMM()
}

// Calloc allocates n zeroed bytes — the simulated calloc(3). Unlike plain
// Malloc, the returned memory is always defined, so programs that use it
// cannot suffer uninitialized reads (and the paper's zero-fill preventive
// change is exactly "turn malloc into calloc" for the patched site).
func (p *Proc) Calloc(n uint32) vmem.Addr {
	a := p.Malloc(n)
	p.Memset(a, 0, int(n))
	return a
}

// Realloc resizes the object at old to n bytes — the simulated
// realloc(3), implemented as allocate-copy-free through the management
// layer so that runtime patches apply to the replacement object and the
// delayed-free discipline applies to the original. Realloc(0, n) behaves
// like Malloc.
func (p *Proc) Realloc(old vmem.Addr, n uint32) vmem.Addr {
	if old == 0 {
		return p.Malloc(n)
	}
	if p.trc.Enabled() {
		p.trc.Emit(trace.KRealloc, uint64(p.Site()), uint64(n))
	}
	var oldSize uint32
	if s, ok := p.mm.(sizedMM); ok {
		if sz, found := s.UserSize(old); found {
			oldSize = sz
		}
	}
	wasProtected := false
	if pm, ok := p.mm.(ProtectingMM); ok {
		wasProtected = pm.IsProtected(old)
	}
	a := p.Malloc(n)
	if wasProtected {
		// Protection follows the object across realloc: the replacement is
		// protected before the contents move, the original keeps its mark so
		// its free below quarantines it.
		a = p.Protect(a)
	}
	if copyLen := oldSize; copyLen > 0 {
		if copyLen > n {
			copyLen = n
		}
		p.Memcpy(a, old, int(copyLen))
	}
	p.Free(old)
	return a
}

func (p *Proc) faultFromMMError(err error, addr vmem.Addr) {
	switch {
	case errors.Is(err, heap.ErrCorrupt):
		p.fault(HeapCorruption, addr, err.Error())
	case errors.Is(err, heap.ErrBadFree):
		p.fault(BadFree, addr, err.Error())
	case errors.Is(err, vmem.ErrOutOfMemory):
		p.fault(OutOfMemory, addr, err.Error())
	default:
		p.fault(AccessViolation, addr, err.Error())
	}
}

// --- loads and stores ---------------------------------------------------------

func (p *Proc) access(addr vmem.Addr, n int, write bool) {
	p.st.Clock += costAccess + uint64(n)/8*costByte
	if p.checker != nil {
		p.checker.Access(addr, n, write, p.Instr())
	}
}

// accessFault raises the trap for a failed load/store. When the failure is
// an unmapped-page access (vmem.AccessError — a guard page, a quarantined
// slot, an unmapped spill) the fault carries the precise access shape so
// the monitor can classify it against the guard tier's slots.
func (p *Proc) accessFault(err error, addr vmem.Addr) {
	var ae *vmem.AccessError
	if errors.As(err, &ae) {
		panic(&Fault{
			Kind:        AccessViolation,
			Addr:        addr,
			Msg:         err.Error(),
			Stack:       p.Stack(),
			Instr:       p.Instr(),
			Clock:       p.st.Clock,
			Access:      true,
			AccessWrite: ae.Write,
			AccessLen:   ae.Len,
		})
	}
	p.fault(AccessViolation, addr, err.Error())
}

// Load reads n bytes at addr; unmapped memory traps.
func (p *Proc) Load(addr vmem.Addr, n int) []byte {
	p.access(addr, n, false)
	b, err := p.Mem.Read(addr, n)
	if err != nil {
		p.accessFault(err, addr)
	}
	return b
}

// Store writes data at addr; unmapped memory traps.
func (p *Proc) Store(addr vmem.Addr, data []byte) {
	p.access(addr, len(data), true)
	if err := p.Mem.Write(addr, data); err != nil {
		p.accessFault(err, addr)
	}
}

// LoadU32 reads a 32-bit little-endian word.
func (p *Proc) LoadU32(addr vmem.Addr) uint32 {
	p.access(addr, 4, false)
	v, err := p.Mem.ReadU32(addr)
	if err != nil {
		p.accessFault(err, addr)
	}
	return v
}

// StoreU32 writes a 32-bit little-endian word.
func (p *Proc) StoreU32(addr vmem.Addr, v uint32) {
	p.access(addr, 4, true)
	if err := p.Mem.WriteU32(addr, v); err != nil {
		p.accessFault(err, addr)
	}
}

// Memset fills n bytes at addr with b.
func (p *Proc) Memset(addr vmem.Addr, b byte, n int) {
	p.access(addr, n, true)
	if err := p.Mem.Fill(addr, b, n); err != nil {
		p.accessFault(err, addr)
	}
}

// Memcpy copies n bytes from src to dst, the workhorse of every buffer
// overflow in the evaluation.
func (p *Proc) Memcpy(dst, src vmem.Addr, n int) {
	b := p.Load(src, n)
	p.Store(dst, b)
}

// StoreString writes s (no terminator) at addr.
func (p *Proc) StoreString(addr vmem.Addr, s string) { p.Store(addr, []byte(s)) }

// LoadString reads n bytes at addr as a string.
func (p *Proc) LoadString(addr vmem.Addr, n int) string { return string(p.Load(addr, n)) }
