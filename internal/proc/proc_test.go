package proc

import (
	"strings"
	"testing"
	"time"

	"firstaid/internal/callsite"
	"firstaid/internal/heap"
	"firstaid/internal/vmem"
)

func newProc(t testing.TB) *Proc {
	t.Helper()
	mem := vmem.New(64 << 20)
	h := heap.New(mem)
	return New(mem, RawMM{H: h})
}

func TestMallocStoreLoad(t *testing.T) {
	p := newProc(t)
	var a vmem.Addr
	f := Catch(func() {
		defer p.Enter("main")()
		a = p.Malloc(64)
		p.StoreU32(a, 0x1234)
		if v := p.LoadU32(a); v != 0x1234 {
			t.Fatalf("LoadU32 = %#x", v)
		}
		p.StoreString(a+8, "hello")
		if s := p.LoadString(a+8, 5); s != "hello" {
			t.Fatalf("LoadString = %q", s)
		}
		p.Free(a)
	})
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
}

func TestWildLoadTraps(t *testing.T) {
	p := newProc(t)
	f := Catch(func() {
		defer p.Enter("main")()
		p.At("deref")
		p.Load(0, 4) // nil dereference
	})
	if f == nil {
		t.Fatal("no trap")
	}
	if f.Kind != AccessViolation {
		t.Fatalf("kind = %v", f.Kind)
	}
	if f.Instr != "main:deref" {
		t.Fatalf("instr = %q", f.Instr)
	}
	if len(f.Stack) != 1 || f.Stack[0] != "main" {
		t.Fatalf("stack = %v", f.Stack)
	}
}

func TestDoubleFreeTrapsAsBadFree(t *testing.T) {
	p := newProc(t)
	var a vmem.Addr
	if f := Catch(func() {
		defer p.Enter("main")()
		a = p.Malloc(32)
		p.Free(a)
	}); f != nil {
		t.Fatalf("setup fault: %v", f)
	}
	f := Catch(func() {
		defer p.Enter("main")()
		p.Free(a)
	})
	if f == nil || (f.Kind != BadFree && f.Kind != HeapCorruption) {
		t.Fatalf("double free fault = %+v", f)
	}
}

func TestAssert(t *testing.T) {
	p := newProc(t)
	if f := Catch(func() { p.Assert(true, "fine") }); f != nil {
		t.Fatalf("true assert trapped: %v", f)
	}
	f := Catch(func() {
		defer p.Enter("check_magic")()
		p.Assert(false, "bad magic %#x", 0xCDCDCDCD)
	})
	if f == nil || f.Kind != AssertFailure {
		t.Fatalf("fault = %+v", f)
	}
	if !strings.Contains(f.Msg, "0xcdcdcdcd") {
		t.Fatalf("msg = %q", f.Msg)
	}
}

func TestCatchPropagatesNonFaultPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("simulator panic swallowed")
		}
	}()
	Catch(func() { panic("simulator bug") })
}

func TestSiteUsesTopThreeFrames(t *testing.T) {
	p := newProc(t)
	var id callsite.ID
	Catch(func() {
		defer p.Enter("main")()
		defer p.Enter("handle_request")()
		defer p.Enter("cache_insert")()
		defer p.Enter("xmalloc")()
		id = p.Site()
	})
	key := p.Sites.Key(id)
	want := callsite.Key{"xmalloc", "cache_insert", "handle_request"}
	if key != want {
		t.Fatalf("site key = %v, want %v", key, want)
	}
}

func TestSitesStableAcrossCalls(t *testing.T) {
	p := newProc(t)
	alloc := func() callsite.ID {
		defer p.Enter("main")()
		defer p.Enter("wrapper")()
		a := p.Malloc(16)
		id := p.Site()
		p.Free(a)
		return id
	}
	var a, b callsite.ID
	Catch(func() { a = alloc() })
	Catch(func() { b = alloc() })
	if a != b {
		t.Fatalf("same code path interned two sites: %d vs %d", a, b)
	}
}

func TestStateRoundTrip(t *testing.T) {
	p := newProc(t)
	p.SetRoot(3, 0xABCD)
	p.Tick(500)
	p.Rand()
	st := p.State()

	p.SetRoot(3, 1)
	p.Tick(100)
	p.Rand()

	p.SetState(st)
	if p.Root(3) != 0xABCD {
		t.Fatal("root not restored")
	}
	if p.Clock() != st.Clock {
		t.Fatal("clock not restored")
	}
}

func TestRandDeterministicFromState(t *testing.T) {
	p := newProc(t)
	st := p.State()
	a := []uint64{p.Rand(), p.Rand(), p.Rand()}
	p.SetState(st)
	b := []uint64{p.Rand(), p.Rand(), p.Rand()}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PRNG not replayable")
		}
	}
}

func TestClockAdvancesOnOps(t *testing.T) {
	p := newProc(t)
	c0 := p.Clock()
	Catch(func() {
		defer p.Enter("main")()
		a := p.Malloc(64)
		p.Store(a, make([]byte, 64))
		p.Load(a, 64)
		p.Free(a)
	})
	if p.Clock() <= c0 {
		t.Fatal("clock did not advance")
	}
}

func TestMemcpy(t *testing.T) {
	p := newProc(t)
	f := Catch(func() {
		defer p.Enter("main")()
		src := p.Malloc(32)
		dst := p.Malloc(32)
		p.StoreString(src, "copy me")
		p.Memcpy(dst, src, 7)
		if s := p.LoadString(dst, 7); s != "copy me" {
			t.Fatalf("copied %q", s)
		}
	})
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
}

type countingChecker struct {
	reads, writes int
	lastInstr     string
}

func (c *countingChecker) Access(_ vmem.Addr, _ int, write bool, instr string) {
	if write {
		c.writes++
	} else {
		c.reads++
	}
	c.lastInstr = instr
}

func TestAccessCheckerObservesAll(t *testing.T) {
	p := newProc(t)
	ck := &countingChecker{}
	p.SetAccessChecker(ck)
	Catch(func() {
		defer p.Enter("main")()
		a := p.Malloc(16)
		p.At("init")
		p.StoreU32(a, 1)
		p.LoadU32(a)
		p.Memset(a, 0, 16)
	})
	if ck.writes != 2 || ck.reads != 1 {
		t.Fatalf("checker saw %d writes, %d reads", ck.writes, ck.reads)
	}
	p.SetAccessChecker(nil)
	Catch(func() {
		defer p.Enter("main")()
		a := p.Malloc(16)
		p.StoreU32(a, 1)
	})
	if ck.writes != 2 {
		t.Fatal("checker still active after removal")
	}
}

func TestInstrDefaultsToFrameName(t *testing.T) {
	p := newProc(t)
	Catch(func() {
		defer p.Enter("worker")()
		if p.Instr() != "worker" {
			t.Fatalf("Instr = %q", p.Instr())
		}
	})
	if p.Instr() != "<no frame>" {
		t.Fatalf("empty-stack Instr = %q", p.Instr())
	}
}

func BenchmarkMallocFreeThroughProc(b *testing.B) {
	p := newProc(b)
	pop := p.Enter("bench")
	defer pop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := p.Malloc(uint32(16 + i%128))
		p.Free(a)
	}
}

// BenchmarkMallocFreeSpeedupGuard enforces this PR's headline acceptance
// number in-process: the malloc/free hot path with the vmem fast paths
// (micro-TLB word accessors) and the call-site memo must be ≥ 1.5× faster
// than the pre-PR reference path, reconstructed by disabling both. Like
// the repo's other guard benchmarks it times fixed-size runs directly,
// interleaves reference/fast rounds, takes the best of each to shed
// scheduler noise, and re-measures once before failing.
func BenchmarkMallocFreeSpeedupGuard(b *testing.B) {
	const (
		target = 1.5
		ops    = 200_000
		rounds = 5
	)

	run := func(reference bool) time.Duration {
		mem := vmem.New(64 << 20)
		if reference {
			mem.SetFastPaths(false)
		}
		h := heap.New(mem)
		p := New(mem, RawMM{H: h})
		p.siteMemoOff = reference
		pop := p.Enter("bench")
		defer pop()
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			a := p.Malloc(uint32(16 + i%128))
			p.Free(a)
		}
		return time.Since(t0)
	}

	measure := func() float64 {
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var ref, fast time.Duration
		run(true) // warmup
		run(false)
		for r := 0; r < rounds; r++ {
			ref = best(run(true), ref)
			fast = best(run(false), fast)
		}
		return float64(ref) / float64(fast)
	}

	speedup := 0.0
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			speedup = measure()
			if speedup >= target {
				break
			}
		}
	}
	b.ReportMetric(speedup, "speedup-x")
	if speedup < target {
		b.Fatalf("malloc/free fast path is %.2fx the reference, want >= %.1fx", speedup, target)
	}
}
