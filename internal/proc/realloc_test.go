package proc

import (
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/heap"
	"firstaid/internal/vmem"
)

func newExtProc(t testing.TB) (*Proc, *allocext.Ext) {
	t.Helper()
	mem := vmem.New(64 << 20)
	h := heap.New(mem)
	sites := callsite.NewTable()
	ext := allocext.New(h, sites)
	p := New(mem, ext)
	p.Sites = sites
	return p, ext
}

func TestCallocReturnsZeroedMemory(t *testing.T) {
	p, _ := newExtProc(t)
	f := Catch(func() {
		defer p.Enter("main")()
		// Dirty the recycling path first.
		a := p.Malloc(64)
		p.Memset(a, 0xFF, 64)
		p.Free(a)
		b := p.Calloc(64)
		for _, x := range p.Load(b, 64) {
			if x != 0 {
				t.Fatal("calloc returned dirty memory")
			}
		}
	})
	if f != nil {
		t.Fatal(f)
	}
}

func TestReallocGrowPreservesContents(t *testing.T) {
	p, _ := newExtProc(t)
	f := Catch(func() {
		defer p.Enter("main")()
		a := p.Malloc(32)
		p.StoreString(a, "keep this content!")
		b := p.Realloc(a, 256)
		if s := p.LoadString(b, 18); s != "keep this content!" {
			t.Fatalf("contents after grow: %q", s)
		}
		// The old object is gone.
		p.Free(b)
	})
	if f != nil {
		t.Fatal(f)
	}
}

func TestReallocShrinkTruncates(t *testing.T) {
	p, _ := newExtProc(t)
	f := Catch(func() {
		defer p.Enter("main")()
		a := p.Malloc(64)
		p.StoreString(a, "0123456789")
		b := p.Realloc(a, 8)
		if s := p.LoadString(b, 8); s != "01234567" {
			t.Fatalf("contents after shrink: %q", s)
		}
	})
	if f != nil {
		t.Fatal(f)
	}
}

func TestReallocNilIsMalloc(t *testing.T) {
	p, _ := newExtProc(t)
	f := Catch(func() {
		defer p.Enter("main")()
		a := p.Realloc(0, 48)
		p.Memset(a, 1, 48)
		p.Free(a)
	})
	if f != nil {
		t.Fatal(f)
	}
}

func TestReallocFreesOldObject(t *testing.T) {
	p, ext := newExtProc(t)
	var a, b vmem.Addr
	f := Catch(func() {
		defer p.Enter("main")()
		a = p.Malloc(32)
		b = p.Realloc(a, 512)
	})
	if f != nil {
		t.Fatal(f)
	}
	if _, ok := ext.Object(a); ok && a != b {
		t.Fatal("old object still live after realloc")
	}
	if _, ok := ext.Object(b); !ok {
		t.Fatal("new object not tracked")
	}
}

func TestReallocThroughRawMM(t *testing.T) {
	mem := vmem.New(16 << 20)
	h := heap.New(mem)
	p := New(mem, RawMM{H: h})
	f := Catch(func() {
		defer p.Enter("main")()
		a := p.Malloc(32)
		p.StoreString(a, "raw path")
		b := p.Realloc(a, 128)
		if s := p.LoadString(b, 8); s != "raw path" {
			t.Fatalf("raw realloc lost contents: %q", s)
		}
	})
	if f != nil {
		t.Fatal(f)
	}
}

func TestReallocRespectsDelayFreePatch(t *testing.T) {
	// Under a delay-free regime the original object must be delay-freed,
	// not recycled — stale pointers into it keep reading valid data.
	p, ext := newExtProc(t)
	ext.SetMode(allocext.ModeDiagnostic)
	ext.SetChanges(allocext.NewChangeSet().AddFree(nil, allocext.FreeAction{Delay: true}))
	var a vmem.Addr
	f := Catch(func() {
		defer p.Enter("main")()
		a = p.Malloc(32)
		p.StoreString(a, "stale but safe")
		p.Realloc(a, 128)
		// Dangling read through the old pointer: preserved.
		if s := p.LoadString(a, 14); s != "stale but safe" {
			t.Fatalf("delay-freed original corrupted: %q", s)
		}
	})
	if f != nil {
		t.Fatal(f)
	}
	if obj, ok := ext.Object(a); !ok || !obj.Delayed {
		t.Fatal("realloc'd-away object not delay-freed")
	}
}
