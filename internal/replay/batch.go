// Batched recording. The fleet's binary ingest path decodes a whole batch
// of events as byte slices pointing into the request body; AppendBatch
// interns those bytes into log-owned storage without allocating per event,
// so a hot serving path records at memcpy speed while every Event accessor
// stays a plain Go string.

package replay

import "unsafe"

// Item is one event of a batch before it is stamped into a log: the same
// payload as Event, but with byte-slice views (typically into a decoded
// wire buffer) instead of heap strings. The slices are only borrowed —
// AppendBatch copies what it keeps — so the buffer behind them can be
// recycled as soon as the call returns.
type Item struct {
	Kind []byte
	Data []byte
	N    int
}

// arenaChunkSize is the allocation quantum for interned Data payloads.
// Large enough to amortize to well under one allocation per event, small
// enough that Compact releases memory promptly chunk by chunk.
const arenaChunkSize = 64 << 10

// arena carves immutable strings out of chunk-sized byte slabs. Strings
// returned by intern alias the slab they were copied into; a slab is never
// written again past its high-water mark, so the aliasing is safe. Slabs
// are not tracked — once every string cut from a slab is unreachable
// (e.g. after Compact drops the events holding them), the GC reclaims it.
type arena struct {
	cur []byte // len = high-water mark, cap = chunk size
}

// intern copies b into the arena and returns it as a string without
// allocating (beyond the occasional fresh chunk).
func (a *arena) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if cap(a.cur)-len(a.cur) < len(b) {
		size := arenaChunkSize
		if len(b) > size {
			size = len(b)
		}
		a.cur = make([]byte, 0, size)
	}
	off := len(a.cur)
	a.cur = append(a.cur, b...)
	return unsafe.String(&a.cur[off], len(b))
}

// internKind deduplicates handler names: a workload has a handful of
// distinct Kinds repeated across millions of events, so each distinct
// name is materialized as a string once and shared thereafter. The
// map lookup with an in-place []byte→string conversion does not allocate.
func (l *Log) internKind(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := l.kinds[string(b)]; ok {
		return s
	}
	if l.kinds == nil {
		l.kinds = make(map[string]string, 8)
	}
	s := string(b)
	l.kinds[s] = s
	return s
}

// AppendBatch records items at the tail in order and returns the sequence
// number of the first (the tail sequence when items is empty). Kind bytes
// are deduplicated through the log's intern table and Data bytes are
// copied into the log's arena, so steady-state batched recording performs
// zero per-event heap allocations while the resulting Events remain
// indistinguishable from ones recorded by Append.
func (l *Log) AppendBatch(items []Item) int {
	first := l.Len()
	if len(items) == 0 {
		return first
	}
	if n := len(l.events) + len(items); cap(l.events) < n {
		grown := make([]Event, len(l.events), max(n, 2*cap(l.events)))
		copy(grown, l.events)
		l.events = grown
	}
	for i := range items {
		l.events = append(l.events, Event{
			Seq:  first + i,
			Kind: l.internKind(items[i].Kind),
			Data: l.arena.intern(items[i].Data),
			N:    items[i].N,
		})
	}
	return first
}
