package replay

import (
	"bytes"
	"fmt"
	"testing"
)

func batchOf(n int, tag string) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Kind: []byte("req"),
			Data: []byte(fmt.Sprintf("%s-%d", tag, i)),
			N:    i,
		}
	}
	return items
}

func TestAppendBatchMatchesAppend(t *testing.T) {
	a, b := NewLog(), NewLog()
	items := batchOf(20, "x")
	first := b.AppendBatch(items)
	if first != 0 {
		t.Fatalf("first = %d", first)
	}
	for i := range items {
		a.Append(string(items[i].Kind), string(items[i].Data), items[i].N)
	}
	if a.Len() != b.Len() {
		t.Fatalf("len %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("event %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
	// The wire buffer behind the items may be recycled; the log must not
	// observe the mutation.
	items[3].Data[0] = 'Z'
	items[3].Kind[0] = 'Z'
	if ev := b.At(3); ev.Data != "x-3" || ev.Kind != "req" {
		t.Fatalf("event 3 aliases caller bytes: %v", ev)
	}
}

func TestAppendBatchEmptyAndTail(t *testing.T) {
	l := NewLog()
	if first := l.AppendBatch(nil); first != 0 {
		t.Fatalf("empty batch first = %d", first)
	}
	l.Append("a", "", 0)
	if first := l.AppendBatch(batchOf(2, "t")); first != 1 {
		t.Fatalf("first = %d, want 1", first)
	}
	if l.Len() != 3 || l.At(2).Seq != 2 {
		t.Fatalf("len %d, seq %d", l.Len(), l.At(2).Seq)
	}
	// Empty fields intern to empty strings.
	l.AppendBatch([]Item{{Kind: []byte("k")}})
	if ev := l.At(3); ev.Data != "" {
		t.Fatalf("empty data = %q", ev.Data)
	}
}

func TestAppendBatchInternsKinds(t *testing.T) {
	l := NewLog()
	l.AppendBatch(batchOf(3, "a"))
	l.AppendBatch(batchOf(3, "b"))
	// All six events must share one "req" string (interned once).
	if len(l.kinds) != 1 {
		t.Fatalf("kinds table has %d entries", len(l.kinds))
	}
}

func TestAppendBatchLargeData(t *testing.T) {
	l := NewLog()
	big := bytes.Repeat([]byte("y"), 2*arenaChunkSize)
	l.AppendBatch([]Item{{Kind: []byte("k"), Data: big}})
	if got := l.At(0).Data; len(got) != len(big) || got[0] != 'y' {
		t.Fatalf("oversized payload mangled: len %d", len(got))
	}
	// And the arena keeps working for normal payloads after an outsized one.
	l.AppendBatch(batchOf(4, "z"))
	if l.At(2).Data != "z-1" {
		t.Fatalf("post-oversize event = %v", l.At(2))
	}
}

func TestAppendBatchSteadyStateAllocs(t *testing.T) {
	l := NewLog()
	items := batchOf(256, "steady")
	// Warm up: grow the events slice, the intern table, the first chunk.
	for i := 0; i < 64; i++ {
		l.AppendBatch(items)
	}
	const rounds = 100
	avg := testing.AllocsPerRun(rounds, func() { l.AppendBatch(items) })
	perEvent := avg / float64(len(items))
	if perEvent > 0.5 {
		t.Fatalf("AppendBatch allocates %.2f/event (avg %.1f per %d-event batch), want ≤0.5",
			perEvent, avg, len(items))
	}
}

func TestFenceBoundsNextAndPeek(t *testing.T) {
	l := NewLog()
	l.AppendBatch(batchOf(5, "f"))
	l.SetFence(2)
	if f := l.Fence(); f != 2 {
		t.Fatalf("Fence = %d", f)
	}
	if _, ok := l.Peek(); !ok {
		t.Fatal("peek under fence")
	}
	for i := 0; i < 2; i++ {
		if ev, ok := l.Next(); !ok || ev.Seq != i {
			t.Fatalf("next %d: %v %v", i, ev, ok)
		}
	}
	if _, ok := l.Next(); ok {
		t.Fatal("Next crossed the fence")
	}
	if _, ok := l.Peek(); ok {
		t.Fatal("Peek crossed the fence")
	}
	l.SetFence(3)
	if ev, ok := l.Next(); !ok || ev.Seq != 2 {
		t.Fatalf("after advance: %v %v", ev, ok)
	}
	l.ClearFence()
	if l.Fence() != -1 {
		t.Fatalf("cleared fence = %d", l.Fence())
	}
	n := 0
	for _, ok := l.Next(); ok; _, ok = l.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d after clear, want 2", n)
	}
}

func TestFenceBeyondTailIsNoop(t *testing.T) {
	l := NewLog()
	l.Append("a", "", 0)
	l.SetFence(99)
	if _, ok := l.Next(); !ok {
		t.Fatal("fence beyond tail hid the event")
	}
}

func TestCloneTrimsToFence(t *testing.T) {
	l := NewLog()
	l.AppendBatch(batchOf(6, "c"))
	l.Next()
	l.SetFence(3)
	c := l.Clone()
	if c.Len() != 3 || c.Cursor() != 1 {
		t.Fatalf("clone len=%d cursor=%d", c.Len(), c.Cursor())
	}
	if c.Fence() != -1 {
		t.Fatal("clone inherited the fence")
	}
	// The clone must be indistinguishable from a serial-mode clone: it
	// drains to the fence position and no further.
	n := 0
	for _, ok := c.Next(); ok; _, ok = c.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("clone drained %d, want 2", n)
	}
}

func TestCatchUpRespectsFence(t *testing.T) {
	parent := NewLog()
	parent.AppendBatch(batchOf(4, "p"))
	clone := parent.Clone()
	parent.AppendBatch(batchOf(4, "q"))
	parent.SetFence(6)
	clone.CatchUp(parent)
	if clone.Len() != 6 {
		t.Fatalf("clone caught up to %d, want fence 6", clone.Len())
	}
	parent.ClearFence()
	clone.CatchUp(parent)
	if clone.Len() != 8 {
		t.Fatalf("clone caught up to %d, want 8", clone.Len())
	}
	if clone.At(7) != parent.At(7) {
		t.Fatalf("tail event diverges: %v vs %v", clone.At(7), parent.At(7))
	}
}

func TestCompactPreservesAbsoluteSeq(t *testing.T) {
	l := NewLog()
	l.AppendBatch(batchOf(10, "k"))
	l.SetCursor(7)
	if n := l.Compact(5); n != 5 {
		t.Fatalf("compacted %d, want 5", n)
	}
	if l.Base() != 5 || l.Len() != 10 || l.Retained() != 5 {
		t.Fatalf("base=%d len=%d retained=%d", l.Base(), l.Len(), l.Retained())
	}
	if l.Cursor() != 7 || l.At(7).Data != "k-7" {
		t.Fatalf("cursor=%d at7=%v", l.Cursor(), l.At(7))
	}
	if ev, ok := l.Next(); !ok || ev.Seq != 7 {
		t.Fatalf("next after compact: %v %v", ev, ok)
	}
	// Rewinding below base clamps to base.
	l.SetCursor(0)
	if l.Cursor() != 5 {
		t.Fatalf("cursor rewound below base: %d", l.Cursor())
	}
	// Compacting behind the current base, or past the cursor, is a no-op
	// beyond the cursor clamp.
	l.SetCursor(6)
	if n := l.Compact(99); n != 1 {
		t.Fatalf("cursor-clamped compact dropped %d, want 1", n)
	}
	if l.Base() != 6 || l.Compact(3) != 0 {
		t.Fatalf("base=%d", l.Base())
	}
}

func TestCompactBoundsFootprint(t *testing.T) {
	l := NewLog()
	for round := 0; round < 50; round++ {
		l.AppendBatch(batchOf(100, "w"))
		l.SetCursor(l.Len())
		l.Compact(l.Len() - 200)
		if l.Retained() > 300 {
			t.Fatalf("round %d: retained %d", round, l.Retained())
		}
	}
	if l.Len() != 5000 || l.Base() != 4800 {
		t.Fatalf("len=%d base=%d", l.Len(), l.Base())
	}
	if fp := l.Footprint(); fp > 200*16 {
		t.Fatalf("footprint %d bytes for 200 retained events", fp)
	}
}

func TestCompactedSaveLoadRoundTrip(t *testing.T) {
	l := NewLog()
	l.AppendBatch(batchOf(8, "s"))
	l.SetCursor(6)
	l.Compact(4)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Base() != 4 || got.Len() != 8 || got.Cursor() != 6 {
		t.Fatalf("loaded base=%d len=%d cursor=%d", got.Base(), got.Len(), got.Cursor())
	}
	for seq := 4; seq < 8; seq++ {
		if got.At(seq) != l.At(seq) {
			t.Fatalf("event %d: %v vs %v", seq, got.At(seq), l.At(seq))
		}
	}
}

func TestLoadRejectsBadBase(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte(`{"cursor":0,"base":-1,"events":[]}`))); err == nil {
		t.Fatal("negative base accepted")
	}
	bad := `{"cursor":0,"base":2,"events":[{"seq":0,"kind":"a"}]}`
	if _, err := Load(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("seq/base mismatch accepted")
	}
}
