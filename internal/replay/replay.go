// Package replay provides the recorded-input substrate for deterministic
// re-execution.
//
// First-Aid "leverages a network proxy to record network messages during
// normal execution and replay them during re-execution" (§3). In the
// simulated machine a program consumes an ordered log of input events; the
// checkpoint manager saves the log cursor with each checkpoint, and a
// rollback rewinds the cursor so re-execution sees exactly the original
// inputs.
//
// Sequence numbers are absolute for the lifetime of a recording: Compact
// may discard a prefix of events (bounding memory under streaming
// supervision), but every surviving event keeps its original Seq, the
// cursor keeps its original meaning, and At(seq) keeps addressing the same
// event. Code that holds a cursor from a retained checkpoint never
// observes compaction.
package replay

import "fmt"

// Event is one recorded input: a request, a command, a message. Kind
// selects the program's handler; Data and N carry the payload.
type Event struct {
	Seq  int    // position in the log, assigned by Append
	Kind string // handler selector, e.g. "GET", "purge", "mail"
	Data string // payload (request body, file name, expression…)
	N    int    // numeric argument (sizes, counts)
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s(%q,%d)", e.Seq, e.Kind, e.Data, e.N)
}

// Log is an append-only event log with a replay cursor. A Log is built
// either up front by a workload generator or incrementally as "live"
// traffic arrives; consumption through Next never discards events, so any
// earlier cursor position can be replayed (until the owner explicitly
// Compacts a prefix it has proven unreachable).
type Log struct {
	events []Event
	cursor int // absolute: index of the next event to serve
	base   int // Seq of events[0]; >0 after Compact
	fence  int // visibility limit for Next/Peek, stored +1; 0 = none

	kinds map[string]string // AppendBatch: Kind strings deduplicated
	arena arena             // AppendBatch: Data strings, chunk-allocated
}

// NewLog returns an empty log. The zero value is also ready to use.
func NewLog() *Log { return &Log{} }

// Append records an event at the tail and returns its sequence number.
func (l *Log) Append(kind, data string, n int) int {
	seq := l.Len()
	l.events = append(l.events, Event{Seq: seq, Kind: kind, Data: data, N: n})
	return seq
}

// AppendEvent records ev at the tail, reassigning its sequence number to
// the tail position — the recorder primitive of streaming supervision:
// events arriving from a live source are stamped into the rolling log
// before execution, so every live run is replayable offline.
func (l *Log) AppendEvent(ev Event) int {
	ev.Seq = l.Len()
	l.events = append(l.events, ev)
	return ev.Seq
}

// visTail returns the absolute sequence bounding what Next/Peek may serve:
// the fence when one is set (and not beyond the tail), else the tail.
func (l *Log) visTail() int {
	tail := l.Len()
	if l.fence > 0 && l.fence-1 < tail {
		return l.fence - 1
	}
	return tail
}

// Next returns the event under the cursor and advances. ok is false when
// the visible log — bounded by the fence, if set — is exhausted.
func (l *Log) Next() (ev Event, ok bool) {
	if l.cursor >= l.visTail() {
		return Event{}, false
	}
	ev = l.events[l.cursor-l.base]
	l.cursor++
	return ev, true
}

// Peek returns the event under the cursor without advancing.
func (l *Log) Peek() (ev Event, ok bool) {
	if l.cursor >= l.visTail() {
		return Event{}, false
	}
	return l.events[l.cursor-l.base], true
}

// Cursor returns the replay position (the sequence of the next event).
func (l *Log) Cursor() int { return l.cursor }

// SetCursor rewinds (or advances) the replay position; rollback support.
// The cursor is clamped to the retained window: rewinding past a compacted
// prefix is impossible because those events no longer exist.
func (l *Log) SetCursor(c int) {
	if c < l.base {
		c = l.base
	}
	if c > l.Len() {
		c = l.Len()
	}
	l.cursor = c
}

// Len returns the total number of events ever recorded (the tail
// sequence). Compaction does not shrink Len; see Retained.
func (l *Log) Len() int { return l.base + len(l.events) }

// Base returns the sequence of the oldest retained event — 0 until the
// first Compact.
func (l *Log) Base() int { return l.base }

// Retained returns the number of events currently held in memory.
func (l *Log) Retained() int { return len(l.events) }

// SetFence caps the events Next and Peek will serve at absolute sequence
// seq, without hiding anything already recorded from At or Len. Batched
// ingest records a whole batch up front (record-before-execute must cover
// the full batch) and then advances the fence one event at a time, so
// recovery re-execution inside the batch sees exactly the log a serial
// ingest would have built — the tail it runs against is the fence, not the
// batch's end.
func (l *Log) SetFence(seq int) { l.fence = seq + 1 }

// ClearFence removes the visibility cap set by SetFence.
func (l *Log) ClearFence() { l.fence = 0 }

// Fence returns the current visibility cap, or -1 when none is set.
func (l *Log) Fence() int { return l.fence - 1 }

// Clone returns an independent log with the same visible events and
// cursor, for replaying on a forked machine without racing the original.
// Events beyond the fence are not copied and the clone carries no fence:
// a clone taken mid-batch is indistinguishable from one taken at the same
// point of a serial run.
func (l *Log) Clone() *Log {
	vis := l.visTail() - l.base
	return &Log{
		events: append([]Event(nil), l.events[:vis]...),
		cursor: l.cursor,
		base:   l.base,
	}
}

// CatchUp appends the events src has recorded beyond this log's tail. A
// standby clone taken at checkpoint time replays a log frozen then; under
// streaming ingest the parent keeps recording, so the clone's log must be
// brought level before the clone can re-execute the failure window. Only
// src's visible tail is taken: events src has recorded but fenced off are
// not yet part of the observable recording. src must be a descendant of
// the same recording (the shared prefix is not re-checked).
func (l *Log) CatchUp(src *Log) {
	for seq := l.Len(); seq < src.visTail(); seq++ {
		l.events = append(l.events, src.At(seq))
	}
}

// At returns the event with absolute sequence seq. It panics if seq is
// outside the retained window [Base, Len).
func (l *Log) At(seq int) Event { return l.events[seq-l.base] }

// Compact discards every retained event with sequence < keep, freeing the
// prefix for garbage collection while preserving absolute sequence
// numbering for everything that survives. The cut is clamped so the
// cursor-addressed event (and everything after it) always survives.
// Callers are responsible for choosing keep ≤ the oldest cursor they may
// still rewind to — under supervision, the oldest retained checkpoint's
// cursor. Returns the number of events discarded.
func (l *Log) Compact(keep int) int {
	if keep > l.cursor {
		keep = l.cursor
	}
	n := keep - l.base
	if n <= 0 {
		return 0
	}
	// Slide the tail down in place and zero the vacated slots so the
	// discarded events' strings (and the arena chunks behind them) become
	// collectable; re-slicing alone would pin the whole backing array.
	copy(l.events, l.events[n:])
	tail := len(l.events) - n
	clear(l.events[tail:])
	l.events = l.events[:tail]
	l.base = keep
	return n
}

// Footprint returns the payload bytes held by retained events (Kind and
// Data string lengths). It is an accounting aid for tests and telemetry —
// O(Retained) — not a precise heap measure.
func (l *Log) Footprint() int {
	total := 0
	for i := range l.events {
		total += len(l.events[i].Kind) + len(l.events[i].Data)
	}
	return total
}
