// Package replay provides the recorded-input substrate for deterministic
// re-execution.
//
// First-Aid "leverages a network proxy to record network messages during
// normal execution and replay them during re-execution" (§3). In the
// simulated machine a program consumes an ordered log of input events; the
// checkpoint manager saves the log cursor with each checkpoint, and a
// rollback rewinds the cursor so re-execution sees exactly the original
// inputs.
package replay

import "fmt"

// Event is one recorded input: a request, a command, a message. Kind
// selects the program's handler; Data and N carry the payload.
type Event struct {
	Seq  int    // position in the log, assigned by Append
	Kind string // handler selector, e.g. "GET", "purge", "mail"
	Data string // payload (request body, file name, expression…)
	N    int    // numeric argument (sizes, counts)
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s(%q,%d)", e.Seq, e.Kind, e.Data, e.N)
}

// Log is an append-only event log with a replay cursor. A Log is built
// either up front by a workload generator or incrementally as "live"
// traffic arrives; consumption through Next never discards events, so any
// earlier cursor position can be replayed.
type Log struct {
	events []Event
	cursor int
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append records an event at the tail and returns its sequence number.
func (l *Log) Append(kind, data string, n int) int {
	seq := len(l.events)
	l.events = append(l.events, Event{Seq: seq, Kind: kind, Data: data, N: n})
	return seq
}

// AppendEvent records ev at the tail, reassigning its sequence number to
// the tail position — the recorder primitive of streaming supervision:
// events arriving from a live source are stamped into the rolling log
// before execution, so every live run is replayable offline.
func (l *Log) AppendEvent(ev Event) int {
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	return ev.Seq
}

// Next returns the event under the cursor and advances. ok is false when
// the log is exhausted.
func (l *Log) Next() (ev Event, ok bool) {
	if l.cursor >= len(l.events) {
		return Event{}, false
	}
	ev = l.events[l.cursor]
	l.cursor++
	return ev, true
}

// Peek returns the event under the cursor without advancing.
func (l *Log) Peek() (ev Event, ok bool) {
	if l.cursor >= len(l.events) {
		return Event{}, false
	}
	return l.events[l.cursor], true
}

// Cursor returns the replay position (the index of the next event).
func (l *Log) Cursor() int { return l.cursor }

// SetCursor rewinds (or advances) the replay position; rollback support.
func (l *Log) SetCursor(c int) {
	if c < 0 {
		c = 0
	}
	if c > len(l.events) {
		c = len(l.events)
	}
	l.cursor = c
}

// Len returns the total number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Clone returns an independent log with the same recorded events and
// cursor, for replaying on a forked machine without racing the original.
func (l *Log) Clone() *Log {
	return &Log{events: append([]Event(nil), l.events...), cursor: l.cursor}
}

// CatchUp appends the events src has recorded beyond this log's tail. A
// standby clone taken at checkpoint time replays a log frozen then; under
// streaming ingest the parent keeps recording, so the clone's log must be
// brought level before the clone can re-execute the failure window. src
// must be a descendant of the same recording (the shared prefix is not
// re-checked).
func (l *Log) CatchUp(src *Log) {
	if src.Len() > len(l.events) {
		l.events = append(l.events, src.events[len(l.events):]...)
	}
}

// At returns the event at index i.
func (l *Log) At(i int) Event { return l.events[i] }
