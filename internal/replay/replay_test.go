package replay

import "testing"

func TestAppendNext(t *testing.T) {
	l := NewLog()
	if seq := l.Append("GET", "/index.html", 0); seq != 0 {
		t.Fatalf("first seq = %d", seq)
	}
	l.Append("GET", "/a.png", 1)
	ev, ok := l.Next()
	if !ok || ev.Kind != "GET" || ev.Data != "/index.html" || ev.Seq != 0 {
		t.Fatalf("first event = %+v, ok=%v", ev, ok)
	}
	ev, _ = l.Next()
	if ev.Seq != 1 || ev.N != 1 {
		t.Fatalf("second event = %+v", ev)
	}
	if _, ok := l.Next(); ok {
		t.Fatal("exhausted log returned an event")
	}
}

func TestCursorRewindReplaysSameEvents(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Append("op", "", i)
	}
	var first []int
	for {
		ev, ok := l.Next()
		if !ok {
			break
		}
		first = append(first, ev.N)
	}
	l.SetCursor(2)
	if l.Cursor() != 2 {
		t.Fatalf("cursor = %d", l.Cursor())
	}
	var second []int
	for {
		ev, ok := l.Next()
		if !ok {
			break
		}
		second = append(second, ev.N)
	}
	if len(second) != 3 || second[0] != first[2] {
		t.Fatalf("replay = %v, original tail = %v", second, first[2:])
	}
}

func TestSetCursorClamps(t *testing.T) {
	l := NewLog()
	l.Append("x", "", 0)
	l.SetCursor(-5)
	if l.Cursor() != 0 {
		t.Fatal("negative cursor not clamped")
	}
	l.SetCursor(99)
	if l.Cursor() != 1 {
		t.Fatal("overlarge cursor not clamped")
	}
}

func TestPeekDoesNotAdvance(t *testing.T) {
	l := NewLog()
	l.Append("a", "", 0)
	ev, ok := l.Peek()
	if !ok || ev.Kind != "a" || l.Cursor() != 0 {
		t.Fatalf("peek = %+v cursor=%d", ev, l.Cursor())
	}
}

func TestAppendAfterConsumption(t *testing.T) {
	l := NewLog()
	l.Append("a", "", 0)
	l.Next()
	l.Append("b", "", 0)
	ev, ok := l.Next()
	if !ok || ev.Kind != "b" {
		t.Fatalf("live append lost: %+v", ev)
	}
	if l.Len() != 2 || l.At(0).Kind != "a" {
		t.Fatal("history lost")
	}
}

func TestEventString(t *testing.T) {
	l := NewLog()
	l.Append("GET", "/x", 3)
	if s := l.At(0).String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestLogClone(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Append("op", "", i)
	}
	l.Next()
	l.Next()

	c := l.Clone()
	if c.Cursor() != 2 || c.Len() != 5 {
		t.Fatalf("clone cursor=%d len=%d", c.Cursor(), c.Len())
	}
	// Divergent consumption.
	c.Next()
	if l.Cursor() != 2 {
		t.Fatal("clone consumption moved original cursor")
	}
	// Divergent appends.
	l.Append("orig", "", 9)
	if c.Len() != 5 {
		t.Fatal("clone saw original's append")
	}
	ev, ok := c.Next()
	if !ok || ev.N != 3 {
		t.Fatalf("clone replay broken: %+v %v", ev, ok)
	}
}

func TestAppendEventReassignsSeq(t *testing.T) {
	l := NewLog()
	l.Append("boot", "", 0)

	// The recorder primitive: an event arriving from the wire carries
	// whatever Seq its producer stamped; recording reassigns it to the
	// tail so cursor arithmetic (rollback re-execution) stays valid.
	seq := l.AppendEvent(Event{Seq: 999, Kind: "search", Data: "uid=3", N: 3})
	if seq != 1 {
		t.Fatalf("AppendEvent seq = %d, want 1", seq)
	}
	ev, ok := l.Next()
	if !ok || ev.Kind != "boot" {
		t.Fatalf("first event = %+v %v", ev, ok)
	}
	ev, ok = l.Next()
	if !ok || ev.Seq != 1 || ev.Kind != "search" || ev.Data != "uid=3" || ev.N != 3 {
		t.Fatalf("recorded event = %+v %v, want seq 1 with payload intact", ev, ok)
	}
	if _, ok := l.Next(); ok {
		t.Fatal("log should be exhausted")
	}
}
