// Log persistence. The paper's network proxy records messages so they can
// be replayed during re-execution; persisting the log gives the simulated
// equivalent — a workload captured in one run can be re-driven later (or
// attached to a bug report) and replays deterministically.

package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// logFile is the serialized form: the recorded events plus the replay
// cursor. Event payloads must be valid UTF-8 (they are JSON strings).
// Base is the sequence of the first recorded event — non-zero only for
// logs compacted under streaming supervision — and is omitted for the
// common uncompacted case, keeping old files loadable and new files
// readable by anything that ignores unknown fields.
type logFile struct {
	Cursor int     `json:"cursor"`
	Base   int     `json:"base,omitempty"`
	Events []Event `json:"events"`
}

// MarshalJSON renders the event with explicit field tags.
func (e Event) MarshalJSON() ([]byte, error) {
	type wire struct {
		Seq  int    `json:"seq"`
		Kind string `json:"kind"`
		Data string `json:"data,omitempty"`
		N    int    `json:"n,omitempty"`
	}
	return json.Marshal(wire(e))
}

// UnmarshalJSON parses the wire form of MarshalJSON.
func (e *Event) UnmarshalJSON(raw []byte) error {
	type wire struct {
		Seq  int    `json:"seq"`
		Kind string `json:"kind"`
		Data string `json:"data,omitempty"`
		N    int    `json:"n,omitempty"`
	}
	var w wire
	if err := json.Unmarshal(raw, &w); err != nil {
		return err
	}
	*e = Event(w)
	return nil
}

// Save writes the log (events and cursor) as JSON.
func (l *Log) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(logFile{Cursor: l.cursor, Base: l.base, Events: l.events})
}

// Load reads a log written by Save. Event sequence numbers must run
// contiguously from the base (they are assigned by Append, and rollback
// arithmetic depends on seq == base+index); the cursor is clamped to the
// log's retained window.
func Load(r io.Reader) (*Log, error) {
	var lf logFile
	if err := json.NewDecoder(r).Decode(&lf); err != nil {
		return nil, fmt.Errorf("replay: decoding log: %w", err)
	}
	if lf.Base < 0 {
		return nil, fmt.Errorf("replay: negative base %d", lf.Base)
	}
	for i, ev := range lf.Events {
		if ev.Seq != lf.Base+i {
			return nil, fmt.Errorf("replay: event at index %d has seq %d, want %d", i, ev.Seq, lf.Base+i)
		}
	}
	l := &Log{events: lf.Events, base: lf.Base}
	l.SetCursor(lf.Cursor)
	return l, nil
}

// SaveFile writes the log to path.
func (l *Log) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return l.Save(f)
}

// LoadFile reads a log from path.
func LoadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
