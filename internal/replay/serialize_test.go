package replay_test

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"firstaid/internal/apps"
	"firstaid/internal/replay"
)

// TestLogSaveLoadRoundTrip persists every application's real workload and
// checks the reloaded log replays identically, cursor included.
func TestLogSaveLoadRoundTrip(t *testing.T) {
	for _, name := range apps.Names() {
		prog, err := apps.New(name)
		if err != nil {
			t.Fatal(err)
		}
		log := prog.Workload(50, []int{20})
		// A mid-log cursor must survive the round trip (checkpoints save
		// cursor positions, and a persisted log may be mid-replay).
		log.Next()
		log.Next()

		var buf bytes.Buffer
		if err := log.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := replay.Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		assertLogsEqual(t, name, log, back)
	}
}

func TestLoadRejectsCorruptLogs(t *testing.T) {
	for _, tc := range []struct{ name, raw string }{
		{"not json", "][ nonsense"},
		{"seq mismatch", `{"cursor":0,"events":[{"seq":3,"kind":"GET"}]}`},
	} {
		if _, err := replay.Load(strings.NewReader(tc.raw)); err == nil {
			t.Errorf("%s: Load accepted corrupt input", tc.name)
		}
	}
	// An out-of-range cursor is clamped, not rejected: it can arise from a
	// log saved mid-replay and truncated by hand.
	l, err := replay.Load(strings.NewReader(`{"cursor":99,"events":[{"seq":0,"kind":"GET"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if l.Cursor() != 1 {
		t.Fatalf("cursor = %d, want clamped to 1", l.Cursor())
	}
}

// FuzzLogRoundTrip drives Save/Load with arbitrary event payloads. Seeds
// come from the shapes the real workload generators emit.
func FuzzLogRoundTrip(f *testing.F) {
	// Workload-shaped seeds: request kinds, paths/payloads, sizes.
	f.Add("GET", "/index.html", 1024, 0)
	f.Add("log-rotate", "", 0, 1)
	f.Add("purge", "obj-0017", 64, 2)
	f.Add("expr", "3+4*12", -7, 0)
	f.Add("mail", "Subject: hello\r\n\r\nbody", 1<<16, 3)
	f.Add("checkout", "module/dir/file.c,v", 8, 1)
	// Real events from a real generator.
	if prog, err := apps.New("apache"); err == nil {
		log := prog.Workload(8, nil)
		for i := 0; i < log.Len(); i++ {
			ev := log.At(i)
			f.Add(ev.Kind, ev.Data, ev.N, i%4)
		}
	}

	f.Fuzz(func(t *testing.T, kind, data string, n, extra int) {
		if !utf8.ValidString(kind) || !utf8.ValidString(data) {
			t.Skip("payloads are JSON strings: valid UTF-8 only")
		}
		log := replay.NewLog()
		log.Append(kind, data, n)
		log.Append(data, kind, -n)
		log.Append("tail", strings.Repeat("x", extra&0xff), extra)
		// Park the cursor at an arbitrary valid position.
		log.SetCursor(extra & 3)

		var buf bytes.Buffer
		if err := log.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		back, err := replay.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load: %v\n%s", err, buf.Bytes())
		}
		assertLogsEqual(t, "fuzz", log, back)

		// Second generation: a reloaded log must serialize identically.
		var buf2 bytes.Buffer
		if err := back.Save(&buf2); err != nil {
			t.Fatalf("re-save: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("serialization not stable:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
		}
	})
}

func assertLogsEqual(t *testing.T, name string, want, got *replay.Log) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: len = %d, want %d", name, got.Len(), want.Len())
	}
	if got.Cursor() != want.Cursor() {
		t.Fatalf("%s: cursor = %d, want %d", name, got.Cursor(), want.Cursor())
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("%s: event %d = %+v, want %+v", name, i, got.At(i), want.At(i))
		}
	}
}
