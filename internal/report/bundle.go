package report

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"firstaid/internal/ledger"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// BundleInput is everything that goes into one postmortem bundle.
type BundleInput struct {
	D       *ledger.Diagnosis
	Trace   []trace.Record           // the diagnosis's slice of the execution trace
	Spans   []telemetry.SpanSnapshot // span-journal entries for the failing event
	Metrics *telemetry.Snapshot      // telemetry snapshot of the owning worker
	// StripWall zeroes every wall-clock field and drops wall-derived
	// ("_us") histograms, leaving only deterministic content — the form
	// the byte-identity determinism test compares.
	StripWall bool
}

// BundleFor assembles the bundle input for one diagnosis: its trace slice
// (records emitted between TraceFrom and TraceTo on the owning worker's
// tracks), its span-journal entries (matched by failing event) and the
// metrics snapshot. trc and snap may be nil.
func BundleFor(d *ledger.Diagnosis, trc *trace.Tracer, snap *telemetry.Snapshot) BundleInput {
	in := BundleInput{D: d}
	if trc != nil {
		for _, rec := range trc.Since(d.TraceFrom) {
			if d.TraceTo > 0 && rec.Seq >= d.TraceTo {
				break
			}
			if trace.TrackBelongsTo(rec.Worker, d.Worker) {
				in.Trace = append(in.Trace, rec)
			}
		}
	}
	if snap != nil {
		for _, sp := range snap.Spans {
			if sp.Event == d.Event {
				in.Spans = append(in.Spans, sp)
			}
		}
		// metrics.json carries the instruments only; spans.json has the
		// journal slice.
		m := *snap
		m.Spans = nil
		in.Metrics = &m
	}
	return in
}

// sanitized returns the input with wall-clock content removed when
// StripWall is set; otherwise it returns the input unchanged.
func (in BundleInput) sanitized() BundleInput {
	if !in.StripWall {
		return in
	}
	out := in
	if in.D != nil {
		d := *in.D
		d.BeginWallNS, d.EndWallNS = 0, 0
		d.RecoverySec, d.ValidationSec = 0, 0
		d.Conditions = append([]ledger.Condition(nil), in.D.Conditions...)
		for i := range d.Conditions {
			d.Conditions[i].WallNS = 0
		}
		out.D = &d
	}
	out.Trace = append([]trace.Record(nil), in.Trace...)
	for i := range out.Trace {
		out.Trace[i].WallNS = 0
	}
	out.Spans = append([]telemetry.SpanSnapshot(nil), in.Spans...)
	for i := range out.Spans {
		out.Spans[i].Wall = 0
		out.Spans[i].Phases = append([]telemetry.Phase(nil), out.Spans[i].Phases...)
		for j := range out.Spans[i].Phases {
			out.Spans[i].Phases[j].Wall = 0
		}
	}
	if in.Metrics != nil {
		m := *in.Metrics
		m.Histograms = make(map[string]telemetry.HistogramSnapshot, len(in.Metrics.Histograms))
		for name, h := range in.Metrics.Histograms {
			if strings.HasSuffix(name, "_us") {
				continue
			}
			m.Histograms[name] = h
		}
		out.Metrics = &m
	}
	return out
}

// BundleArtifacts generates the bundle's file set in its fixed layout:
//
//	REPRO.txt                 — exact firstaid-run command (chaos sources)
//	diagnosis.json            — the full Diagnosis object
//	diagnosis.canonical.json  — its mode-invariant projection
//	failure.core, diag.log, mm_trace_orig.log,
//	mm_trace_patched.log, illegal_access.log,
//	report.txt                — the Figure-5 report files
//	trace.txt, trace.json     — the trace slice (text + chrome formats)
//	spans.json                — span-journal entries for the event
//	metrics.json              — telemetry snapshot
func BundleArtifacts(in BundleInput) ([]Artifact, error) {
	in = in.sanitized()
	d := in.D
	if d == nil {
		return nil, fmt.Errorf("bundle: no diagnosis")
	}

	var arts []Artifact
	if d.Repro != "" {
		repro := fmt.Sprintf("# reproduces diagnosis #%d (%s, %s mode) offline:\n%s\n", d.ID, d.Source, d.Mode, d.Repro)
		arts = append(arts, Artifact{"REPRO.txt", []byte(repro)})
	}

	full, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bundle: marshal diagnosis: %w", err)
	}
	arts = append(arts, Artifact{"diagnosis.json", append(full, '\n')})
	canon, err := d.Canonical()
	if err != nil {
		return nil, fmt.Errorf("bundle: canonical diagnosis: %w", err)
	}
	arts = append(arts, Artifact{"diagnosis.canonical.json", append(canon, '\n')})

	arts = append(arts, FromDiagnosis(d).Artifacts()...)

	if len(in.Trace) > 0 {
		var txt, chrome bytes.Buffer
		if err := trace.WriteText(&txt, in.Trace); err != nil {
			return nil, fmt.Errorf("bundle: trace text: %w", err)
		}
		if err := trace.ChromeTrace(&chrome, in.Trace); err != nil {
			return nil, fmt.Errorf("bundle: chrome trace: %w", err)
		}
		arts = append(arts, Artifact{"trace.txt", txt.Bytes()}, Artifact{"trace.json", chrome.Bytes()})
	}
	if len(in.Spans) > 0 {
		sp, err := json.MarshalIndent(in.Spans, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("bundle: marshal spans: %w", err)
		}
		arts = append(arts, Artifact{"spans.json", append(sp, '\n')})
	}
	if in.Metrics != nil {
		mb, err := json.MarshalIndent(in.Metrics, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("bundle: marshal metrics: %w", err)
		}
		arts = append(arts, Artifact{"metrics.json", append(mb, '\n')})
	}
	return arts, nil
}

// WriteBundle writes the postmortem bundle as a deterministic tar.gz:
// fixed member order, zeroed timestamps, fixed mode/ownership, so the
// same diagnosis always produces the same bytes.
func WriteBundle(w io.Writer, in BundleInput) error {
	arts, err := BundleArtifacts(in)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(w) // zero ModTime in the gzip header: deterministic
	tw := tar.NewWriter(gz)
	for _, a := range arts {
		hdr := &tar.Header{
			Name:    a.Name,
			Mode:    0o644,
			Size:    int64(len(a.Data)),
			ModTime: time.Unix(0, 0),
			Format:  tar.FormatUSTAR,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("bundle: %s: %w", a.Name, err)
		}
		if _, err := tw.Write(a.Data); err != nil {
			return fmt.Errorf("bundle: %s: %w", a.Name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// BundleFileName is the on-disk name of a diagnosis's bundle.
func BundleFileName(id uint64) string { return fmt.Sprintf("diagnosis-%d.tar.gz", id) }

// WriteBundleFile writes the bundle into dir as diagnosis-<id>.tar.gz and
// returns the path.
func WriteBundleFile(dir string, in BundleInput) (string, error) {
	if in.D == nil {
		return "", fmt.Errorf("bundle: no diagnosis")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, BundleFileName(in.D.ID))
	var buf bytes.Buffer
	if err := WriteBundle(&buf, in); err != nil {
		return "", err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadBundle unpacks a bundle produced by WriteBundle back into its named
// members, for tests and offline inspection.
func ReadBundle(r io.Reader) (map[string][]byte, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	out := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, err
		}
		out[hdr.Name] = data
	}
}
